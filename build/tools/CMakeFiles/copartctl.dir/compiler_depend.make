# Empty compiler generated dependencies file for copartctl.
# This may be replaced when dependencies are built.
