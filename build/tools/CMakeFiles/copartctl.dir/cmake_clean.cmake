file(REMOVE_RECURSE
  "CMakeFiles/copartctl.dir/copartctl.cc.o"
  "CMakeFiles/copartctl.dir/copartctl.cc.o.d"
  "copartctl"
  "copartctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copartctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
