
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifiers.cc" "src/core/CMakeFiles/copart_core.dir/classifiers.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/classifiers.cc.o.d"
  "/root/repo/src/core/dcat_policy.cc" "src/core/CMakeFiles/copart_core.dir/dcat_policy.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/dcat_policy.cc.o.d"
  "/root/repo/src/core/hr_matching.cc" "src/core/CMakeFiles/copart_core.dir/hr_matching.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/hr_matching.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/copart_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/policies.cc.o.d"
  "/root/repo/src/core/resource_manager.cc" "src/core/CMakeFiles/copart_core.dir/resource_manager.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/resource_manager.cc.o.d"
  "/root/repo/src/core/system_state.cc" "src/core/CMakeFiles/copart_core.dir/system_state.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/system_state.cc.o.d"
  "/root/repo/src/core/ucp_policy.cc" "src/core/CMakeFiles/copart_core.dir/ucp_policy.cc.o" "gcc" "src/core/CMakeFiles/copart_core.dir/ucp_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/copart_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/membw/CMakeFiles/copart_membw.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/copart_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/resctrl/CMakeFiles/copart_resctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/copart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/copart_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/copart_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
