file(REMOVE_RECURSE
  "CMakeFiles/copart_core.dir/classifiers.cc.o"
  "CMakeFiles/copart_core.dir/classifiers.cc.o.d"
  "CMakeFiles/copart_core.dir/dcat_policy.cc.o"
  "CMakeFiles/copart_core.dir/dcat_policy.cc.o.d"
  "CMakeFiles/copart_core.dir/hr_matching.cc.o"
  "CMakeFiles/copart_core.dir/hr_matching.cc.o.d"
  "CMakeFiles/copart_core.dir/policies.cc.o"
  "CMakeFiles/copart_core.dir/policies.cc.o.d"
  "CMakeFiles/copart_core.dir/resource_manager.cc.o"
  "CMakeFiles/copart_core.dir/resource_manager.cc.o.d"
  "CMakeFiles/copart_core.dir/system_state.cc.o"
  "CMakeFiles/copart_core.dir/system_state.cc.o.d"
  "CMakeFiles/copart_core.dir/ucp_policy.cc.o"
  "CMakeFiles/copart_core.dir/ucp_policy.cc.o.d"
  "libcopart_core.a"
  "libcopart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
