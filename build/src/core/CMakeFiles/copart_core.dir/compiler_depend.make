# Empty compiler generated dependencies file for copart_core.
# This may be replaced when dependencies are built.
