file(REMOVE_RECURSE
  "libcopart_core.a"
)
