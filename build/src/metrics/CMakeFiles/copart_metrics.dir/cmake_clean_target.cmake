file(REMOVE_RECURSE
  "libcopart_metrics.a"
)
