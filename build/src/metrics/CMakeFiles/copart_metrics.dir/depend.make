# Empty dependencies file for copart_metrics.
# This may be replaced when dependencies are built.
