file(REMOVE_RECURSE
  "CMakeFiles/copart_metrics.dir/fairness.cc.o"
  "CMakeFiles/copart_metrics.dir/fairness.cc.o.d"
  "libcopart_metrics.a"
  "libcopart_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
