# Empty dependencies file for copart_machine.
# This may be replaced when dependencies are built.
