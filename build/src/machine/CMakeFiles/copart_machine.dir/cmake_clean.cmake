file(REMOVE_RECURSE
  "CMakeFiles/copart_machine.dir/shared_cache_validator.cc.o"
  "CMakeFiles/copart_machine.dir/shared_cache_validator.cc.o.d"
  "CMakeFiles/copart_machine.dir/simulated_machine.cc.o"
  "CMakeFiles/copart_machine.dir/simulated_machine.cc.o.d"
  "libcopart_machine.a"
  "libcopart_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
