file(REMOVE_RECURSE
  "libcopart_machine.a"
)
