# Empty dependencies file for copart_pmc.
# This may be replaced when dependencies are built.
