file(REMOVE_RECURSE
  "libcopart_pmc.a"
)
