file(REMOVE_RECURSE
  "CMakeFiles/copart_pmc.dir/perf_monitor.cc.o"
  "CMakeFiles/copart_pmc.dir/perf_monitor.cc.o.d"
  "libcopart_pmc.a"
  "libcopart_pmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_pmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
