file(REMOVE_RECURSE
  "libcopart_common.a"
)
