# Empty dependencies file for copart_common.
# This may be replaced when dependencies are built.
