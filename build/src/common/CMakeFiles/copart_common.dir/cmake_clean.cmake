file(REMOVE_RECURSE
  "CMakeFiles/copart_common.dir/logging.cc.o"
  "CMakeFiles/copart_common.dir/logging.cc.o.d"
  "CMakeFiles/copart_common.dir/rng.cc.o"
  "CMakeFiles/copart_common.dir/rng.cc.o.d"
  "CMakeFiles/copart_common.dir/stats.cc.o"
  "CMakeFiles/copart_common.dir/stats.cc.o.d"
  "CMakeFiles/copart_common.dir/status.cc.o"
  "CMakeFiles/copart_common.dir/status.cc.o.d"
  "libcopart_common.a"
  "libcopart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
