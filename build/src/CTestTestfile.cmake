# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("cache")
subdirs("trace")
subdirs("membw")
subdirs("workload")
subdirs("machine")
subdirs("resctrl")
subdirs("container")
subdirs("cluster")
subdirs("pmc")
subdirs("metrics")
subdirs("core")
subdirs("harness")
