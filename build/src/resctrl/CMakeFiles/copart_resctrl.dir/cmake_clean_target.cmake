file(REMOVE_RECURSE
  "libcopart_resctrl.a"
)
