# Empty dependencies file for copart_resctrl.
# This may be replaced when dependencies are built.
