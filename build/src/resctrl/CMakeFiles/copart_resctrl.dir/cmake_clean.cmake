file(REMOVE_RECURSE
  "CMakeFiles/copart_resctrl.dir/rdt_msr.cc.o"
  "CMakeFiles/copart_resctrl.dir/rdt_msr.cc.o.d"
  "CMakeFiles/copart_resctrl.dir/resctrl.cc.o"
  "CMakeFiles/copart_resctrl.dir/resctrl.cc.o.d"
  "CMakeFiles/copart_resctrl.dir/resctrl_fs.cc.o"
  "CMakeFiles/copart_resctrl.dir/resctrl_fs.cc.o.d"
  "CMakeFiles/copart_resctrl.dir/schemata.cc.o"
  "CMakeFiles/copart_resctrl.dir/schemata.cc.o.d"
  "libcopart_resctrl.a"
  "libcopart_resctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_resctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
