file(REMOVE_RECURSE
  "CMakeFiles/copart_cluster.dir/cluster.cc.o"
  "CMakeFiles/copart_cluster.dir/cluster.cc.o.d"
  "libcopart_cluster.a"
  "libcopart_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
