file(REMOVE_RECURSE
  "libcopart_cluster.a"
)
