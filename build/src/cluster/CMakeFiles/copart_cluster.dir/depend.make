# Empty dependencies file for copart_cluster.
# This may be replaced when dependencies are built.
