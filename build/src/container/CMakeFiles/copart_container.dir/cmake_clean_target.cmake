file(REMOVE_RECURSE
  "libcopart_container.a"
)
