file(REMOVE_RECURSE
  "CMakeFiles/copart_container.dir/container_runtime.cc.o"
  "CMakeFiles/copart_container.dir/container_runtime.cc.o.d"
  "libcopart_container.a"
  "libcopart_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
