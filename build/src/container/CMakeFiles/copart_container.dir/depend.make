# Empty dependencies file for copart_container.
# This may be replaced when dependencies are built.
