file(REMOVE_RECURSE
  "libcopart_cache.a"
)
