
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/miss_ratio_curve.cc" "src/cache/CMakeFiles/copart_cache.dir/miss_ratio_curve.cc.o" "gcc" "src/cache/CMakeFiles/copart_cache.dir/miss_ratio_curve.cc.o.d"
  "/root/repo/src/cache/way_mask.cc" "src/cache/CMakeFiles/copart_cache.dir/way_mask.cc.o" "gcc" "src/cache/CMakeFiles/copart_cache.dir/way_mask.cc.o.d"
  "/root/repo/src/cache/way_partitioned_cache.cc" "src/cache/CMakeFiles/copart_cache.dir/way_partitioned_cache.cc.o" "gcc" "src/cache/CMakeFiles/copart_cache.dir/way_partitioned_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
