file(REMOVE_RECURSE
  "CMakeFiles/copart_cache.dir/miss_ratio_curve.cc.o"
  "CMakeFiles/copart_cache.dir/miss_ratio_curve.cc.o.d"
  "CMakeFiles/copart_cache.dir/way_mask.cc.o"
  "CMakeFiles/copart_cache.dir/way_mask.cc.o.d"
  "CMakeFiles/copart_cache.dir/way_partitioned_cache.cc.o"
  "CMakeFiles/copart_cache.dir/way_partitioned_cache.cc.o.d"
  "libcopart_cache.a"
  "libcopart_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
