# Empty compiler generated dependencies file for copart_cache.
# This may be replaced when dependencies are built.
