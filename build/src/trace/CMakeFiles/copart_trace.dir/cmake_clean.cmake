file(REMOVE_RECURSE
  "CMakeFiles/copart_trace.dir/trace_generator.cc.o"
  "CMakeFiles/copart_trace.dir/trace_generator.cc.o.d"
  "libcopart_trace.a"
  "libcopart_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
