# Empty dependencies file for copart_trace.
# This may be replaced when dependencies are built.
