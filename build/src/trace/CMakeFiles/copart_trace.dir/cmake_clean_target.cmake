file(REMOVE_RECURSE
  "libcopart_trace.a"
)
