file(REMOVE_RECURSE
  "libcopart_workload.a"
)
