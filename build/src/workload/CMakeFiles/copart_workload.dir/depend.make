# Empty dependencies file for copart_workload.
# This may be replaced when dependencies are built.
