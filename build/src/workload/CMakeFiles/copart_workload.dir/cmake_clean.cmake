file(REMOVE_RECURSE
  "CMakeFiles/copart_workload.dir/workload.cc.o"
  "CMakeFiles/copart_workload.dir/workload.cc.o.d"
  "libcopart_workload.a"
  "libcopart_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
