# Empty compiler generated dependencies file for copart_membw.
# This may be replaced when dependencies are built.
