file(REMOVE_RECURSE
  "CMakeFiles/copart_membw.dir/bandwidth_arbiter.cc.o"
  "CMakeFiles/copart_membw.dir/bandwidth_arbiter.cc.o.d"
  "CMakeFiles/copart_membw.dir/mba.cc.o"
  "CMakeFiles/copart_membw.dir/mba.cc.o.d"
  "libcopart_membw.a"
  "libcopart_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
