file(REMOVE_RECURSE
  "libcopart_membw.a"
)
