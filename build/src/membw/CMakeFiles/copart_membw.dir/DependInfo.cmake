
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/membw/bandwidth_arbiter.cc" "src/membw/CMakeFiles/copart_membw.dir/bandwidth_arbiter.cc.o" "gcc" "src/membw/CMakeFiles/copart_membw.dir/bandwidth_arbiter.cc.o.d"
  "/root/repo/src/membw/mba.cc" "src/membw/CMakeFiles/copart_membw.dir/mba.cc.o" "gcc" "src/membw/CMakeFiles/copart_membw.dir/mba.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
