file(REMOVE_RECURSE
  "libcopart_harness.a"
)
