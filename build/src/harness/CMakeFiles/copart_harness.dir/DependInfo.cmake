
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/case_study.cc" "src/harness/CMakeFiles/copart_harness.dir/case_study.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/case_study.cc.o.d"
  "/root/repo/src/harness/csv_writer.cc" "src/harness/CMakeFiles/copart_harness.dir/csv_writer.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/csv_writer.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/copart_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/heatmap.cc" "src/harness/CMakeFiles/copart_harness.dir/heatmap.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/heatmap.cc.o.d"
  "/root/repo/src/harness/mix.cc" "src/harness/CMakeFiles/copart_harness.dir/mix.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/mix.cc.o.d"
  "/root/repo/src/harness/replication.cc" "src/harness/CMakeFiles/copart_harness.dir/replication.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/replication.cc.o.d"
  "/root/repo/src/harness/static_oracle.cc" "src/harness/CMakeFiles/copart_harness.dir/static_oracle.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/static_oracle.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/harness/CMakeFiles/copart_harness.dir/table_printer.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/table_printer.cc.o.d"
  "/root/repo/src/harness/whatif.cc" "src/harness/CMakeFiles/copart_harness.dir/whatif.cc.o" "gcc" "src/harness/CMakeFiles/copart_harness.dir/whatif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/copart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/copart_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/copart_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/resctrl/CMakeFiles/copart_resctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/copart_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/copart_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/copart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/copart_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/membw/CMakeFiles/copart_membw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
