# Empty compiler generated dependencies file for copart_harness.
# This may be replaced when dependencies are built.
