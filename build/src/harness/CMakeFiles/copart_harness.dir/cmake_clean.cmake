file(REMOVE_RECURSE
  "CMakeFiles/copart_harness.dir/case_study.cc.o"
  "CMakeFiles/copart_harness.dir/case_study.cc.o.d"
  "CMakeFiles/copart_harness.dir/csv_writer.cc.o"
  "CMakeFiles/copart_harness.dir/csv_writer.cc.o.d"
  "CMakeFiles/copart_harness.dir/experiment.cc.o"
  "CMakeFiles/copart_harness.dir/experiment.cc.o.d"
  "CMakeFiles/copart_harness.dir/heatmap.cc.o"
  "CMakeFiles/copart_harness.dir/heatmap.cc.o.d"
  "CMakeFiles/copart_harness.dir/mix.cc.o"
  "CMakeFiles/copart_harness.dir/mix.cc.o.d"
  "CMakeFiles/copart_harness.dir/replication.cc.o"
  "CMakeFiles/copart_harness.dir/replication.cc.o.d"
  "CMakeFiles/copart_harness.dir/static_oracle.cc.o"
  "CMakeFiles/copart_harness.dir/static_oracle.cc.o.d"
  "CMakeFiles/copart_harness.dir/table_printer.cc.o"
  "CMakeFiles/copart_harness.dir/table_printer.cc.o.d"
  "CMakeFiles/copart_harness.dir/whatif.cc.o"
  "CMakeFiles/copart_harness.dir/whatif.cc.o.d"
  "libcopart_harness.a"
  "libcopart_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copart_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
