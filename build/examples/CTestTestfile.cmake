# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_comparison "/root/repo/build/examples/policy_comparison" "H-LLC" "4")
set_tests_properties(example_policy_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_container_consolidation "/root/repo/build/examples/container_consolidation")
set_tests_properties(example_container_consolidation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif_advisor "/root/repo/build/examples/whatif_advisor")
set_tests_properties(example_whatif_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_scheduler "/root/repo/build/examples/cluster_scheduler")
set_tests_properties(example_cluster_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
