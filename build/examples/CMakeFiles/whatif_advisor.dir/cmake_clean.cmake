file(REMOVE_RECURSE
  "CMakeFiles/whatif_advisor.dir/whatif_advisor.cpp.o"
  "CMakeFiles/whatif_advisor.dir/whatif_advisor.cpp.o.d"
  "whatif_advisor"
  "whatif_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
