# Empty compiler generated dependencies file for whatif_advisor.
# This may be replaced when dependencies are built.
