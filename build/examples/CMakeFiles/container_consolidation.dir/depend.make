# Empty dependencies file for container_consolidation.
# This may be replaced when dependencies are built.
