file(REMOVE_RECURSE
  "CMakeFiles/container_consolidation.dir/container_consolidation.cpp.o"
  "CMakeFiles/container_consolidation.dir/container_consolidation.cpp.o.d"
  "container_consolidation"
  "container_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
