# Empty compiler generated dependencies file for harness_mix_test.
# This may be replaced when dependencies are built.
