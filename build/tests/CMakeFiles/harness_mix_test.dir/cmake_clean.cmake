file(REMOVE_RECURSE
  "CMakeFiles/harness_mix_test.dir/harness_mix_test.cc.o"
  "CMakeFiles/harness_mix_test.dir/harness_mix_test.cc.o.d"
  "harness_mix_test"
  "harness_mix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_mix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
