# Empty dependencies file for cache_way_mask_test.
# This may be replaced when dependencies are built.
