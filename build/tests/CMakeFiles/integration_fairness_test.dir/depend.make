# Empty dependencies file for integration_fairness_test.
# This may be replaced when dependencies are built.
