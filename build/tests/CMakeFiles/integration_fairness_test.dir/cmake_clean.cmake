file(REMOVE_RECURSE
  "CMakeFiles/integration_fairness_test.dir/integration_fairness_test.cc.o"
  "CMakeFiles/integration_fairness_test.dir/integration_fairness_test.cc.o.d"
  "integration_fairness_test"
  "integration_fairness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
