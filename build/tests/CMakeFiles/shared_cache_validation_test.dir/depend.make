# Empty dependencies file for shared_cache_validation_test.
# This may be replaced when dependencies are built.
