# Empty compiler generated dependencies file for core_hr_matching_test.
# This may be replaced when dependencies are built.
