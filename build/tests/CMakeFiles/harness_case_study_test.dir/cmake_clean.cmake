file(REMOVE_RECURSE
  "CMakeFiles/harness_case_study_test.dir/harness_case_study_test.cc.o"
  "CMakeFiles/harness_case_study_test.dir/harness_case_study_test.cc.o.d"
  "harness_case_study_test"
  "harness_case_study_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_case_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
