# Empty dependencies file for harness_case_study_test.
# This may be replaced when dependencies are built.
