# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for harness_case_study_test.
