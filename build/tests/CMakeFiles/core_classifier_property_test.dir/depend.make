# Empty dependencies file for core_classifier_property_test.
# This may be replaced when dependencies are built.
