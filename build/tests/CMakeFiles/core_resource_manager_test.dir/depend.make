# Empty dependencies file for core_resource_manager_test.
# This may be replaced when dependencies are built.
