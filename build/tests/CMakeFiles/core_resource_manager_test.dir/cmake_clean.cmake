file(REMOVE_RECURSE
  "CMakeFiles/core_resource_manager_test.dir/core_resource_manager_test.cc.o"
  "CMakeFiles/core_resource_manager_test.dir/core_resource_manager_test.cc.o.d"
  "core_resource_manager_test"
  "core_resource_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_resource_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
