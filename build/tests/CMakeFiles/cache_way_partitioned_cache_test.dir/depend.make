# Empty dependencies file for cache_way_partitioned_cache_test.
# This may be replaced when dependencies are built.
