file(REMOVE_RECURSE
  "CMakeFiles/cache_way_partitioned_cache_test.dir/cache_way_partitioned_cache_test.cc.o"
  "CMakeFiles/cache_way_partitioned_cache_test.dir/cache_way_partitioned_cache_test.cc.o.d"
  "cache_way_partitioned_cache_test"
  "cache_way_partitioned_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_way_partitioned_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
