# Empty dependencies file for resctrl_schemata_test.
# This may be replaced when dependencies are built.
