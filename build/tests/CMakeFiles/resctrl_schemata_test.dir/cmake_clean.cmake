file(REMOVE_RECURSE
  "CMakeFiles/resctrl_schemata_test.dir/resctrl_schemata_test.cc.o"
  "CMakeFiles/resctrl_schemata_test.dir/resctrl_schemata_test.cc.o.d"
  "resctrl_schemata_test"
  "resctrl_schemata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_schemata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
