file(REMOVE_RECURSE
  "CMakeFiles/workload_phases_test.dir/workload_phases_test.cc.o"
  "CMakeFiles/workload_phases_test.dir/workload_phases_test.cc.o.d"
  "workload_phases_test"
  "workload_phases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_phases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
