# Empty dependencies file for workload_phases_test.
# This may be replaced when dependencies are built.
