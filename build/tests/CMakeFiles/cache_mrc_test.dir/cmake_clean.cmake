file(REMOVE_RECURSE
  "CMakeFiles/cache_mrc_test.dir/cache_mrc_test.cc.o"
  "CMakeFiles/cache_mrc_test.dir/cache_mrc_test.cc.o.d"
  "cache_mrc_test"
  "cache_mrc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_mrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
