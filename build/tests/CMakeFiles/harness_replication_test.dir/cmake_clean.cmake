file(REMOVE_RECURSE
  "CMakeFiles/harness_replication_test.dir/harness_replication_test.cc.o"
  "CMakeFiles/harness_replication_test.dir/harness_replication_test.cc.o.d"
  "harness_replication_test"
  "harness_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
