# Empty dependencies file for harness_replication_test.
# This may be replaced when dependencies are built.
