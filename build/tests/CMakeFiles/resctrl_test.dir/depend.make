# Empty dependencies file for resctrl_test.
# This may be replaced when dependencies are built.
