file(REMOVE_RECURSE
  "CMakeFiles/resctrl_test.dir/resctrl_test.cc.o"
  "CMakeFiles/resctrl_test.dir/resctrl_test.cc.o.d"
  "resctrl_test"
  "resctrl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
