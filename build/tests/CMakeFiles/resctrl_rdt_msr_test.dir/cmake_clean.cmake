file(REMOVE_RECURSE
  "CMakeFiles/resctrl_rdt_msr_test.dir/resctrl_rdt_msr_test.cc.o"
  "CMakeFiles/resctrl_rdt_msr_test.dir/resctrl_rdt_msr_test.cc.o.d"
  "resctrl_rdt_msr_test"
  "resctrl_rdt_msr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_rdt_msr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
