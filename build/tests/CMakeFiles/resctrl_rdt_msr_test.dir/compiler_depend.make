# Empty compiler generated dependencies file for resctrl_rdt_msr_test.
# This may be replaced when dependencies are built.
