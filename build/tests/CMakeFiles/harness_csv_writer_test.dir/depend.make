# Empty dependencies file for harness_csv_writer_test.
# This may be replaced when dependencies are built.
