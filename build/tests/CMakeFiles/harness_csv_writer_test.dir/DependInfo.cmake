
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness_csv_writer_test.cc" "tests/CMakeFiles/harness_csv_writer_test.dir/harness_csv_writer_test.cc.o" "gcc" "tests/CMakeFiles/harness_csv_writer_test.dir/harness_csv_writer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/copart_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/copart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/copart_container.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/copart_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/membw/CMakeFiles/copart_membw.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/copart_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/copart_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/resctrl/CMakeFiles/copart_resctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/copart_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/copart_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/copart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/copart_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
