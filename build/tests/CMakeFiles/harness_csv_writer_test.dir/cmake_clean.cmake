file(REMOVE_RECURSE
  "CMakeFiles/harness_csv_writer_test.dir/harness_csv_writer_test.cc.o"
  "CMakeFiles/harness_csv_writer_test.dir/harness_csv_writer_test.cc.o.d"
  "harness_csv_writer_test"
  "harness_csv_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_csv_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
