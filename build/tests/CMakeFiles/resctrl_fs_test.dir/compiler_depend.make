# Empty compiler generated dependencies file for resctrl_fs_test.
# This may be replaced when dependencies are built.
