file(REMOVE_RECURSE
  "CMakeFiles/resctrl_fs_test.dir/resctrl_fs_test.cc.o"
  "CMakeFiles/resctrl_fs_test.dir/resctrl_fs_test.cc.o.d"
  "resctrl_fs_test"
  "resctrl_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
