file(REMOVE_RECURSE
  "CMakeFiles/harness_table_printer_test.dir/harness_table_printer_test.cc.o"
  "CMakeFiles/harness_table_printer_test.dir/harness_table_printer_test.cc.o.d"
  "harness_table_printer_test"
  "harness_table_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_table_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
