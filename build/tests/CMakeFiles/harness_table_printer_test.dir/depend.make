# Empty dependencies file for harness_table_printer_test.
# This may be replaced when dependencies are built.
