file(REMOVE_RECURSE
  "CMakeFiles/harness_static_oracle_test.dir/harness_static_oracle_test.cc.o"
  "CMakeFiles/harness_static_oracle_test.dir/harness_static_oracle_test.cc.o.d"
  "harness_static_oracle_test"
  "harness_static_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_static_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
