# Empty compiler generated dependencies file for harness_static_oracle_test.
# This may be replaced when dependencies are built.
