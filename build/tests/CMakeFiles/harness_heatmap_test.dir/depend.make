# Empty dependencies file for harness_heatmap_test.
# This may be replaced when dependencies are built.
