file(REMOVE_RECURSE
  "CMakeFiles/harness_heatmap_test.dir/harness_heatmap_test.cc.o"
  "CMakeFiles/harness_heatmap_test.dir/harness_heatmap_test.cc.o.d"
  "harness_heatmap_test"
  "harness_heatmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_heatmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
