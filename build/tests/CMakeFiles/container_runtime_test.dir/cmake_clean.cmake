file(REMOVE_RECURSE
  "CMakeFiles/container_runtime_test.dir/container_runtime_test.cc.o"
  "CMakeFiles/container_runtime_test.dir/container_runtime_test.cc.o.d"
  "container_runtime_test"
  "container_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
