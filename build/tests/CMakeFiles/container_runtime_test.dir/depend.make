# Empty dependencies file for container_runtime_test.
# This may be replaced when dependencies are built.
