# Empty dependencies file for core_dcat_policy_test.
# This may be replaced when dependencies are built.
