file(REMOVE_RECURSE
  "CMakeFiles/core_telemetry_test.dir/core_telemetry_test.cc.o"
  "CMakeFiles/core_telemetry_test.dir/core_telemetry_test.cc.o.d"
  "core_telemetry_test"
  "core_telemetry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_telemetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
