# Empty dependencies file for membw_test.
# This may be replaced when dependencies are built.
