file(REMOVE_RECURSE
  "CMakeFiles/membw_test.dir/membw_test.cc.o"
  "CMakeFiles/membw_test.dir/membw_test.cc.o.d"
  "membw_test"
  "membw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
