file(REMOVE_RECURSE
  "CMakeFiles/harness_whatif_test.dir/harness_whatif_test.cc.o"
  "CMakeFiles/harness_whatif_test.dir/harness_whatif_test.cc.o.d"
  "harness_whatif_test"
  "harness_whatif_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_whatif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
