file(REMOVE_RECURSE
  "CMakeFiles/pmc_test.dir/pmc_test.cc.o"
  "CMakeFiles/pmc_test.dir/pmc_test.cc.o.d"
  "pmc_test"
  "pmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
