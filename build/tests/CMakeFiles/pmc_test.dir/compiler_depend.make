# Empty compiler generated dependencies file for pmc_test.
# This may be replaced when dependencies are built.
