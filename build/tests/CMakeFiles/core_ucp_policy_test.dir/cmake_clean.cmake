file(REMOVE_RECURSE
  "CMakeFiles/core_ucp_policy_test.dir/core_ucp_policy_test.cc.o"
  "CMakeFiles/core_ucp_policy_test.dir/core_ucp_policy_test.cc.o.d"
  "core_ucp_policy_test"
  "core_ucp_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ucp_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
