# Empty dependencies file for core_ucp_policy_test.
# This may be replaced when dependencies are built.
