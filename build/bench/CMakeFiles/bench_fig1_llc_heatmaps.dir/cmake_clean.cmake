file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_llc_heatmaps.dir/bench_fig1_llc_heatmaps.cc.o"
  "CMakeFiles/bench_fig1_llc_heatmaps.dir/bench_fig1_llc_heatmaps.cc.o.d"
  "bench_fig1_llc_heatmaps"
  "bench_fig1_llc_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_llc_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
