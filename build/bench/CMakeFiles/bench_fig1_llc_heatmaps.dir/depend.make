# Empty dependencies file for bench_fig1_llc_heatmaps.
# This may be replaced when dependencies are built.
