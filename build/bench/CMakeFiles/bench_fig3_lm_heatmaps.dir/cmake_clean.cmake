file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lm_heatmaps.dir/bench_fig3_lm_heatmaps.cc.o"
  "CMakeFiles/bench_fig3_lm_heatmaps.dir/bench_fig3_lm_heatmaps.cc.o.d"
  "bench_fig3_lm_heatmaps"
  "bench_fig3_lm_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lm_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
