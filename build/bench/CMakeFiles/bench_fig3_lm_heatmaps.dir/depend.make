# Empty dependencies file for bench_fig3_lm_heatmaps.
# This may be replaced when dependencies are built.
