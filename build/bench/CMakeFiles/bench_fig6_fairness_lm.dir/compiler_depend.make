# Empty compiler generated dependencies file for bench_fig6_fairness_lm.
# This may be replaced when dependencies are built.
