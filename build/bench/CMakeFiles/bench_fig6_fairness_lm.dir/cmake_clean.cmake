file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fairness_lm.dir/bench_fig6_fairness_lm.cc.o"
  "CMakeFiles/bench_fig6_fairness_lm.dir/bench_fig6_fairness_lm.cc.o.d"
  "bench_fig6_fairness_lm"
  "bench_fig6_fairness_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fairness_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
