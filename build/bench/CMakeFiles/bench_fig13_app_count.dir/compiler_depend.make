# Empty compiler generated dependencies file for bench_fig13_app_count.
# This may be replaced when dependencies are built.
