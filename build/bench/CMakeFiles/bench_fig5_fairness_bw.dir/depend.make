# Empty dependencies file for bench_fig5_fairness_bw.
# This may be replaced when dependencies are built.
