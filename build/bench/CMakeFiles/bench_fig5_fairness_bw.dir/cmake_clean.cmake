file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fairness_bw.dir/bench_fig5_fairness_bw.cc.o"
  "CMakeFiles/bench_fig5_fairness_bw.dir/bench_fig5_fairness_bw.cc.o.d"
  "bench_fig5_fairness_bw"
  "bench_fig5_fairness_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fairness_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
