# Empty dependencies file for bench_cluster_placement.
# This may be replaced when dependencies are built.
