file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_placement.dir/bench_cluster_placement.cc.o"
  "CMakeFiles/bench_cluster_placement.dir/bench_cluster_placement.cc.o.d"
  "bench_cluster_placement"
  "bench_cluster_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
