file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fairness_llc.dir/bench_fig4_fairness_llc.cc.o"
  "CMakeFiles/bench_fig4_fairness_llc.dir/bench_fig4_fairness_llc.cc.o.d"
  "bench_fig4_fairness_llc"
  "bench_fig4_fairness_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fairness_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
