# Empty compiler generated dependencies file for bench_fig4_fairness_llc.
# This may be replaced when dependencies are built.
