# Empty compiler generated dependencies file for bench_fig2_bw_heatmaps.
# This may be replaced when dependencies are built.
