file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bw_heatmaps.dir/bench_fig2_bw_heatmaps.cc.o"
  "CMakeFiles/bench_fig2_bw_heatmaps.dir/bench_fig2_bw_heatmaps.cc.o.d"
  "bench_fig2_bw_heatmaps"
  "bench_fig2_bw_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bw_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
