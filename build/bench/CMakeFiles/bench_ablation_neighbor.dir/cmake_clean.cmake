file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_neighbor.dir/bench_ablation_neighbor.cc.o"
  "CMakeFiles/bench_ablation_neighbor.dir/bench_ablation_neighbor.cc.o.d"
  "bench_ablation_neighbor"
  "bench_ablation_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
