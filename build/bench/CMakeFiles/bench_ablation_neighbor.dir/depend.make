# Empty dependencies file for bench_ablation_neighbor.
# This may be replaced when dependencies are built.
