// Regression guard for the paper's robustness claims (Figs. 13-14): the
// policy ordering must hold at every application count and LLC capacity,
// not just the headline 4-app/11-way point.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/mix.h"

namespace copart {
namespace {

class AppCountSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AppCountSweepTest, CoPartBeatsEqOnSensitiveMixes) {
  const size_t count = GetParam();
  for (MixFamily family :
       {MixFamily::kHighLlc, MixFamily::kHighBw, MixFamily::kModerateLlc}) {
    const WorkloadMix mix = MakeMix(family, count);
    const double copart =
        RunExperiment(mix, CoPartFactory(), {}).unfairness;
    const double eq = RunExperiment(mix, EqFactory(), {}).unfairness;
    // Never meaningfully worse than EQ; and when EQ leaves substantial
    // unfairness on the table, CoPart must recover a real share of it.
    EXPECT_LT(copart, eq * 1.02)
        << mix.name << ": CoPart " << copart << " vs EQ " << eq;
    if (eq > 0.05) {
      EXPECT_LT(copart, eq * 0.95)
          << mix.name << ": CoPart " << copart << " vs EQ " << eq;
    }
  }
}

TEST_P(AppCountSweepTest, CoPartThroughputAtLeastEq) {
  const size_t count = GetParam();
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, count);
  const double copart =
      RunExperiment(mix, CoPartFactory(), {}).throughput_geomean;
  const double eq = RunExperiment(mix, EqFactory(), {}).throughput_geomean;
  EXPECT_GE(copart, eq * 0.98) << mix.name;
}

INSTANTIATE_TEST_SUITE_P(Counts, AppCountSweepTest,
                         ::testing::Values(3, 4, 5, 6));

class CapacitySweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CapacitySweepTest, CoPartBeatsEqAtEveryPoolSize) {
  ExperimentConfig config;
  config.pool = ResourcePool{.first_way = 0, .num_ways = GetParam(),
                             .max_mba_percent = 100};
  for (MixFamily family : {MixFamily::kHighLlc, MixFamily::kHighBw}) {
    const WorkloadMix mix = MakeMix(family, 4);
    const double copart =
        RunExperiment(mix, CoPartFactory(), config).unfairness;
    const double eq = RunExperiment(mix, EqFactory(), config).unfairness;
    EXPECT_LT(copart, eq * 0.95)
        << mix.name << " @ " << GetParam() << " ways";
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CapacitySweepTest,
                         ::testing::Values(7, 8, 9, 10, 11));

}  // namespace
}  // namespace copart
