// FaultInjector: the determinism, independence, and mechanism contracts
// that the chaos harness and every fault-driven regression test rely on.
#include <cstdint>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"

namespace copart {
namespace {

constexpr std::string_view kPointA = "resctrl.set_l3.unavailable";
constexpr std::string_view kPointB = "pmc.sample.dropped";

FaultSpec Prob(double probability, uint32_t burst_length = 1) {
  FaultSpec spec;
  spec.probability = probability;
  spec.burst_length = burst_length;
  return spec;
}

std::vector<bool> Schedule(FaultInjector& injector, std::string_view point,
                           int queries) {
  std::vector<bool> outcomes;
  outcomes.reserve(static_cast<size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    outcomes.push_back(injector.ShouldFail(point));
  }
  return outcomes;
}

TEST(FaultInjectorTest, UnarmedPointNeverFails) {
  FaultInjector injector(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFail(kPointA));
  }
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.total_queries(), 100u);
  EXPECT_EQ(injector.total_failures(), 0u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(7);
  FaultInjector b(7);
  const FaultSpec spec = Prob(0.3);
  a.Arm(kPointA, spec);
  b.Arm(kPointA, spec);
  EXPECT_EQ(Schedule(a, kPointA, 500), Schedule(b, kPointA, 500));
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(7);
  FaultInjector b(8);
  const FaultSpec spec = Prob(0.3);
  a.Arm(kPointA, spec);
  b.Arm(kPointA, spec);
  EXPECT_NE(Schedule(a, kPointA, 500), Schedule(b, kPointA, 500));
}

TEST(FaultInjectorTest, ScheduleIndependentOfArmingOrder) {
  const FaultSpec spec = Prob(0.25);
  FaultInjector ab(99);
  ab.Arm(kPointA, spec);
  ab.Arm(kPointB, spec);
  FaultInjector ba(99);
  ba.Arm(kPointB, spec);
  ba.Arm(kPointA, spec);
  EXPECT_EQ(Schedule(ab, kPointA, 300), Schedule(ba, kPointA, 300));
  EXPECT_EQ(Schedule(ab, kPointB, 300), Schedule(ba, kPointB, 300));
}

TEST(FaultInjectorTest, ScheduleIndependentOfOtherPointsQueries) {
  const FaultSpec spec = Prob(0.25);
  FaultInjector quiet(123);
  quiet.Arm(kPointA, spec);
  FaultInjector busy(123);
  busy.Arm(kPointA, spec);
  busy.Arm(kPointB, spec);
  // Interleave heavy traffic on B; A's stream must not shift.
  std::vector<bool> busy_a;
  for (int i = 0; i < 300; ++i) {
    busy_a.push_back(busy.ShouldFail(kPointA));
    busy.ShouldFail(kPointB);
    busy.ShouldFail(kPointB);
  }
  EXPECT_EQ(busy_a, Schedule(quiet, kPointA, 300));
}

TEST(FaultInjectorTest, ProbabilityRoughlyHonored) {
  FaultInjector injector(2024);
  injector.Arm(kPointA, Prob(0.2));
  const std::vector<bool> outcomes = Schedule(injector, kPointA, 10000);
  int failures = 0;
  for (bool failed : outcomes) {
    failures += failed ? 1 : 0;
  }
  EXPECT_GT(failures, 1600);
  EXPECT_LT(failures, 2400);
  EXPECT_EQ(injector.PointFailures(kPointA),
            static_cast<uint64_t>(failures));
  EXPECT_EQ(injector.PointQueries(kPointA), 10000u);
}

TEST(FaultInjectorTest, BurstFailsConsecutively) {
  FaultInjector injector(5);
  injector.Arm(kPointA, Prob(0.05, 4));
  const std::vector<bool> outcomes = Schedule(injector, kPointA, 2000);
  // Every complete failure run has length >= 4 (a run can exceed 4 when a
  // fresh draw triggers on the first query after a burst ends). The final
  // run may be truncated by the sample window, so only runs followed by a
  // success are checked.
  int run = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i]) {
      ++run;
    } else {
      if (run > 0) {
        EXPECT_GE(run, 4) << "short failure run ending at query " << i;
      }
      run = 0;
    }
  }
  EXPECT_GT(injector.PointFailures(kPointA), 0u);
}

TEST(FaultInjectorTest, OneShotQueriesFireExactly) {
  FaultInjector injector(1);
  FaultSpec spec;
  spec.one_shot_queries = {0, 3, 7};
  injector.Arm(kPointA, spec);
  const std::vector<bool> expected = {true,  false, false, true, false,
                                      false, false, true,  false, false};
  EXPECT_EQ(Schedule(injector, kPointA, 10), expected);
}

TEST(FaultInjectorTest, MaxFailuresBudget) {
  FaultInjector injector(77);
  FaultSpec spec = Prob(1.0);
  spec.max_failures = 5;
  injector.Arm(kPointA, spec);
  const std::vector<bool> outcomes = Schedule(injector, kPointA, 20);
  int failures = 0;
  for (bool failed : outcomes) {
    failures += failed ? 1 : 0;
  }
  EXPECT_EQ(failures, 5);
  // The budget exhausts from the front.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(outcomes[static_cast<size_t>(i)]);
  }
}

TEST(FaultInjectorTest, DisarmStopsFailures) {
  FaultInjector injector(9);
  injector.Arm(kPointA, Prob(1.0));
  EXPECT_TRUE(injector.ShouldFail(kPointA));
  injector.Disarm(kPointA);
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.ShouldFail(kPointA));
  }
}

TEST(FaultInjectorTest, DisarmAllStopsEverything) {
  FaultInjector injector(9);
  injector.Arm(kPointA, Prob(1.0));
  injector.Arm(kPointB, Prob(1.0));
  injector.DisarmAll();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFail(kPointA));
  EXPECT_FALSE(injector.ShouldFail(kPointB));
}

TEST(FaultInjectorTest, RearmResetsTheStream) {
  FaultInjector injector(64);
  const FaultSpec spec = Prob(0.4);
  injector.Arm(kPointA, spec);
  const std::vector<bool> first = Schedule(injector, kPointA, 200);
  injector.Arm(kPointA, spec);  // Re-arm: counts and stream reset.
  EXPECT_EQ(injector.PointQueries(kPointA), 0u);
  EXPECT_EQ(Schedule(injector, kPointA, 200), first);
}

TEST(FaultInjectorTest, HashPointIsPinnedFnv1a64) {
  // Known-answer: FNV-1a 64 of "a" and the empty string. If these move,
  // every armed schedule in every test and chaos seed shifts.
  EXPECT_EQ(FaultInjector::HashPoint(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(FaultInjector::HashPoint("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(FaultInjector::HashPoint(kPointA),
            FaultInjector::HashPoint(kPointB));
}

}  // namespace
}  // namespace copart
