// The simulated machine: lifecycle, partitioning state, counter accounting,
// and the qualitative properties of the epoch performance model.
#include "machine/simulated_machine.h"

#include <gtest/gtest.h>

#include "cache/way_mask.h"
#include "common/units.h"
#include "workload/workload.h"

namespace copart {
namespace {

MachineConfig QuietConfig() {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  return config;
}

TEST(MachineTest, LaunchAndTerminate) {
  SimulatedMachine machine(QuietConfig());
  EXPECT_EQ(machine.FreeCores(), 16u);
  Result<AppId> a = machine.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(a.ok());
  Result<AppId> b = machine.LaunchApp(Ep(), 4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(machine.FreeCores(), 8u);
  EXPECT_EQ(machine.ListApps().size(), 2u);
  EXPECT_TRUE(machine.AppExists(*a));
  ASSERT_TRUE(machine.TerminateApp(*a).ok());
  EXPECT_FALSE(machine.AppExists(*a));
  EXPECT_EQ(machine.FreeCores(), 12u);
  EXPECT_EQ(machine.TerminateApp(*a).code(), StatusCode::kNotFound);
}

TEST(MachineTest, GenerationBumpsOnLifecycleEvents) {
  SimulatedMachine machine(QuietConfig());
  const uint64_t g0 = machine.app_generation();
  Result<AppId> app = machine.LaunchApp(Swaptions(), 2);
  ASSERT_TRUE(app.ok());
  EXPECT_GT(machine.app_generation(), g0);
  const uint64_t g1 = machine.app_generation();
  ASSERT_TRUE(machine.TerminateApp(*app).ok());
  EXPECT_GT(machine.app_generation(), g1);
}

TEST(MachineTest, RejectsCoreOversubscription) {
  SimulatedMachine machine(QuietConfig());
  ASSERT_TRUE(machine.LaunchApp(Swaptions(), 12).ok());
  Result<AppId> overflow = machine.LaunchApp(Ep(), 8);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(machine.LaunchApp(Ep(), 0).ok());
}

TEST(MachineTest, CountersAccumulateLinearly) {
  SimulatedMachine machine(QuietConfig());
  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(1.0);
  const double instr_1s = machine.Counters(*app).instructions;
  machine.AdvanceTime(2.0);
  EXPECT_NEAR(machine.Counters(*app).instructions, 3.0 * instr_1s,
              instr_1s * 1e-9);
  EXPECT_NEAR(machine.now(), 3.0, 1e-12);
}

TEST(MachineTest, CounterRatiosConsistent) {
  SimulatedMachine machine(QuietConfig());
  Result<AppId> app = machine.LaunchApp(OceanCp(), 4);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(1.0);
  const AppCounters& counters = machine.Counters(*app);
  EXPECT_LE(counters.llc_misses, counters.llc_accesses);
  EXPECT_NEAR(counters.llc_accesses,
              counters.instructions * OceanCp().accesses_per_instr, 1.0);
  EXPECT_NEAR(counters.memory_bytes, counters.llc_misses * 64, 64.0);
}

TEST(MachineTest, MoreWaysNeverHurt) {
  for (const WorkloadDescriptor& descriptor : AllTable2Benchmarks()) {
    SimulatedMachine machine(QuietConfig());
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    machine.AssignAppToClos(*app, 1);
    double previous = 0.0;
    for (uint32_t ways = 1; ways <= 11; ++ways) {
      machine.SetClosWayMask(1, WayMask::Contiguous(0, ways));
      machine.AdvanceTime(0.1);
      const double ips = machine.LastEpoch(*app).ips;
      EXPECT_GE(ips, previous - 1e-6) << descriptor.name << " ways=" << ways;
      previous = ips;
    }
  }
}

TEST(MachineTest, BandwidthGrantNeverExceedsTraffic) {
  SimulatedMachine machine(QuietConfig());
  Result<AppId> cg = machine.LaunchApp(Cg(), 4);
  Result<AppId> stream = machine.LaunchApp(Stream(), 4);
  ASSERT_TRUE(cg.ok());
  ASSERT_TRUE(stream.ok());
  machine.AdvanceTime(0.5);
  double total = 0.0;
  for (AppId app : machine.ListApps()) {
    const AppEpochSnapshot& epoch = machine.LastEpoch(app);
    EXPECT_LE(epoch.llc_misses_per_sec * 64,
              epoch.bandwidth_grant_bytes_per_sec * (1.0 + 1e-9));
    total += epoch.bandwidth_grant_bytes_per_sec;
  }
  EXPECT_LE(total, machine.config().total_memory_bandwidth * (1.0 + 1e-9));
}

TEST(MachineTest, StreamCoRunnerSlowsBandwidthBoundApp) {
  SimulatedMachine machine(QuietConfig());
  Result<AppId> cg = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(cg.ok());
  machine.AdvanceTime(0.5);
  const double solo_ips = machine.LastEpoch(*cg).ips;
  // Three STREAM instances saturate the controller.
  ASSERT_TRUE(machine.LaunchApp(Stream(), 4).ok());
  ASSERT_TRUE(machine.LaunchApp(Stream(), 4).ok());
  ASSERT_TRUE(machine.LaunchApp(Stream(), 4).ok());
  machine.AdvanceTime(0.5);
  EXPECT_LT(machine.LastEpoch(*cg).ips, solo_ips * 0.95);
}

TEST(MachineTest, CacheInsensitiveAppUnaffectedByCoRunnerPartition) {
  // With disjoint masks, shrinking a neighbour's partition must not
  // meaningfully change an insensitive app's performance. (A sub-0.1%
  // coupling remains through memory-controller utilization: the squeezed
  // neighbour misses more, raising the queueing delay — real machines
  // behave the same way.)
  SimulatedMachine machine(QuietConfig());
  Result<AppId> sw = machine.LaunchApp(Swaptions(), 4);
  Result<AppId> wn = machine.LaunchApp(WaterNsquared(), 4);
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(wn.ok());
  machine.AssignAppToClos(*sw, 1);
  machine.AssignAppToClos(*wn, 2);
  machine.SetClosWayMask(1, WayMask::Contiguous(0, 1));
  machine.SetClosWayMask(2, WayMask::Contiguous(1, 10));
  machine.AdvanceTime(0.5);
  const double before = machine.LastEpoch(*sw).ips;
  machine.SetClosWayMask(2, WayMask::Contiguous(1, 2));
  machine.AdvanceTime(0.5);
  EXPECT_NEAR(machine.LastEpoch(*sw).ips, before, before * 1e-3);
}

TEST(MachineTest, SharedMaskSplitsCapacityByMissIntensity) {
  // Two identical cache-hungry apps sharing the full mask each see about
  // half the LLC.
  SimulatedMachine machine(QuietConfig());
  Result<AppId> a = machine.LaunchApp(Sp(), 4);
  Result<AppId> b = machine.LaunchApp(Sp(), 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  machine.AdvanceTime(0.5);
  const double total = MiB(22);
  EXPECT_NEAR(machine.LastEpoch(*a).effective_capacity_bytes, total / 2,
              total * 0.05);
  EXPECT_NEAR(machine.LastEpoch(*b).effective_capacity_bytes, total / 2,
              total * 0.05);
}

TEST(MachineTest, RequiredIpsCapsExecution) {
  SimulatedMachine machine(QuietConfig());
  Result<AppId> app = machine.LaunchApp(Memcached(), 8);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(0.5);
  const double uncapped = machine.LastEpoch(*app).ips;
  machine.SetAppRequiredIps(*app, uncapped / 4);
  machine.AdvanceTime(0.5);
  EXPECT_NEAR(machine.LastEpoch(*app).ips, uncapped / 4, uncapped * 0.01);
  EXPECT_NEAR(machine.LastEpoch(*app).ips_capability, uncapped,
              uncapped * 0.01);
  machine.SetAppRequiredIps(*app, std::nullopt);
  machine.AdvanceTime(0.5);
  EXPECT_NEAR(machine.LastEpoch(*app).ips, uncapped, uncapped * 0.01);
}

TEST(MachineTest, NoiseIsDeterministicPerSeed) {
  MachineConfig config;
  config.ips_noise_sigma = 0.02;
  SimulatedMachine a(config), b(config);
  Result<AppId> app_a = a.LaunchApp(Cg(), 4);
  Result<AppId> app_b = b.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app_a.ok());
  ASSERT_TRUE(app_b.ok());
  for (int i = 0; i < 20; ++i) {
    a.AdvanceTime(0.1);
    b.AdvanceTime(0.1);
    EXPECT_DOUBLE_EQ(a.LastEpoch(*app_a).ips, b.LastEpoch(*app_b).ips);
  }
}

TEST(MachineTest, SoloFullResourceIpsMatchesLiveRun) {
  SimulatedMachine machine(QuietConfig());
  for (const WorkloadDescriptor& descriptor : AllTable2Benchmarks()) {
    SimulatedMachine solo(QuietConfig());
    Result<AppId> app = solo.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    solo.AdvanceTime(0.5);
    EXPECT_NEAR(solo.LastEpoch(*app).ips,
                machine.SoloFullResourceIps(descriptor, 4),
                machine.SoloFullResourceIps(descriptor, 4) * 1e-9)
        << descriptor.name;
  }
}

TEST(MachineTest, IpsScalesWithCores) {
  SimulatedMachine machine(QuietConfig());
  EXPECT_NEAR(machine.SoloFullResourceIps(Swaptions(), 8),
              2.0 * machine.SoloFullResourceIps(Swaptions(), 4), 1.0);
}

TEST(MachineDeathTest, InvalidClosAborts) {
  SimulatedMachine machine(QuietConfig());
  EXPECT_DEATH(machine.SetClosMbaLevel(99, MbaLevel()), "Check failed");
  EXPECT_DEATH(machine.SetClosWayMask(0, WayMask()), "at least one way");
}

TEST(MachineDeathTest, UnknownAppAborts) {
  SimulatedMachine machine(QuietConfig());
  EXPECT_DEATH(machine.Counters(AppId(42)), "no such app");
}

}  // namespace
}  // namespace copart
