// The dCat-style dynamic LLC baseline.
#include "core/dcat_policy.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/mix.h"

namespace copart {
namespace {

class DcatTest : public ::testing::Test {
 protected:
  DcatTest() : machine_(MakeConfig()), resctrl_(&machine_),
               monitor_(&machine_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.005;
    return config;
  }

  static ResourcePool FullPool() {
    return ResourcePool{.first_way = 0, .num_ways = 11,
                        .max_mba_percent = 100};
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
};

TEST_F(DcatTest, StartsFromEqualSplitWithFrozenMba) {
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor :
       {WaterNsquared(), Cg(), Swaptions(), Ep()}) {
    apps.push_back(*machine_.LaunchApp(descriptor, 4));
  }
  DcatPolicy policy(&resctrl_, &monitor_, apps, FullPool());
  EXPECT_EQ(policy.name(), "dCat");
  policy.Start();
  const SystemState& state = policy.current_state();
  EXPECT_EQ(state.allocation(0).llc_ways, 3u);
  EXPECT_EQ(state.allocation(3).llc_ways, 2u);
  for (size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(state.allocation(i).mba_level.percent(), 30u);
  }
}

TEST_F(DcatTest, GrowsTheCacheHungryAppOverTime) {
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor :
       {WaterNsquared(), Swaptions()}) {
    apps.push_back(*machine_.LaunchApp(descriptor, 4));
  }
  DcatPolicy policy(&resctrl_, &monitor_, apps, FullPool());
  policy.Start();
  for (int i = 0; i < 100; ++i) {
    machine_.AdvanceTime(0.5);
    policy.Tick();
  }
  const SystemState& state = policy.current_state();
  EXPECT_TRUE(state.Valid());
  // WN (needs 4 ways) ends with more cache than the insensitive app.
  EXPECT_GT(state.allocation(0).llc_ways, state.allocation(1).llc_ways);
  EXPECT_GE(state.allocation(0).llc_ways, 4u);
  // MBA never moved.
  EXPECT_EQ(state.allocation(0).mba_level.percent(), 50u);
}

TEST_F(DcatTest, StateStaysValidUnderLongRuns) {
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor :
       {Sp(), OceanNcp(), Fmm(), Swaptions()}) {
    apps.push_back(*machine_.LaunchApp(descriptor, 4));
  }
  DcatPolicy policy(&resctrl_, &monitor_, apps, FullPool());
  policy.Start();
  for (int i = 0; i < 300; ++i) {
    machine_.AdvanceTime(0.5);
    policy.Tick();
    ASSERT_TRUE(policy.current_state().Valid());
    uint32_t total = 0;
    for (size_t a = 0; a < apps.size(); ++a) {
      total += policy.current_state().allocation(a).llc_ways;
      ASSERT_GE(policy.current_state().allocation(a).llc_ways, 1u);
    }
    ASSERT_EQ(total, 11u);
  }
}

TEST(DcatExperimentTest, BeatsEqOnLlcMixButTrailsCoPartOnCoordination) {
  // As an LLC-only feedback policy, dCat should recover much of the H-LLC
  // unfairness but cannot address the BW-heavy mixes CoPart coordinates.
  const WorkloadMix llc_mix = MakeMix(MixFamily::kHighLlc, 4);
  const ExperimentResult dcat = RunExperiment(llc_mix, DcatFactory(), {});
  const ExperimentResult eq = RunExperiment(llc_mix, EqFactory(), {});
  EXPECT_LT(dcat.unfairness, eq.unfairness * 0.8) << "H-LLC";

  const WorkloadMix bw_mix = MakeMix(MixFamily::kHighBw, 4);
  const ExperimentResult dcat_bw = RunExperiment(bw_mix, DcatFactory(), {});
  const ExperimentResult copart_bw =
      RunExperiment(bw_mix, CoPartFactory(), {});
  EXPECT_GT(dcat_bw.unfairness, copart_bw.unfairness) << "H-BW";
}

}  // namespace
}  // namespace copart
