// Resource allocation states: equal shares, invariants, neighbor moves,
// way-mask packing.
#include "core/system_state.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace copart {
namespace {

ResourcePool FullPool() {
  return ResourcePool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
}

TEST(SystemStateTest, EqualShareDistributesRemainderToEarlierApps) {
  const SystemState state = SystemState::EqualShare(FullPool(), 4);
  EXPECT_EQ(state.allocation(0).llc_ways, 3u);
  EXPECT_EQ(state.allocation(1).llc_ways, 3u);
  EXPECT_EQ(state.allocation(2).llc_ways, 3u);
  EXPECT_EQ(state.allocation(3).llc_ways, 2u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(state.allocation(i).mba_level.percent(), 100u);
  }
  EXPECT_TRUE(state.Valid());
}

TEST(SystemStateTest, EqualShareThrottledDividesMba) {
  EXPECT_EQ(SystemState::EqualShareThrottled(FullPool(), 4)
                .allocation(0)
                .mba_level.percent(),
            30u);  // round10(100/4 = 25) = 30.
  EXPECT_EQ(SystemState::EqualShareThrottled(FullPool(), 5)
                .allocation(0)
                .mba_level.percent(),
            20u);
  EXPECT_EQ(SystemState::EqualShareThrottled(FullPool(), 10)
                .allocation(0)
                .mba_level.percent(),
            10u);
  // Never below the hardware floor.
  EXPECT_EQ(SystemState::EqualShareThrottled(FullPool(), 11)
                .allocation(0)
                .mba_level.percent(),
            10u);
}

TEST(SystemStateTest, EqualShareRespectsPoolCeiling) {
  const ResourcePool pool{.first_way = 3, .num_ways = 8,
                          .max_mba_percent = 50};
  const SystemState state = SystemState::EqualShare(pool, 2);
  EXPECT_EQ(state.allocation(0).llc_ways, 4u);
  EXPECT_EQ(state.allocation(0).mba_level.percent(), 50u);
  EXPECT_TRUE(state.Valid());
}

TEST(SystemStateDeathTest, MoreAppsThanWaysAborts) {
  const ResourcePool pool{.first_way = 0, .num_ways = 3,
                          .max_mba_percent = 100};
  EXPECT_DEATH(SystemState::EqualShare(pool, 4), "fewer ways");
}

TEST(SystemStateTest, ValidityChecks) {
  SystemState state = SystemState::EqualShare(FullPool(), 4);
  EXPECT_TRUE(state.Valid());
  // Way total must match the pool.
  ++state.allocation(0).llc_ways;
  EXPECT_FALSE(state.Valid());
  --state.allocation(0).llc_ways;
  // MBA above the ceiling is invalid.
  const ResourcePool capped{.first_way = 0, .num_ways = 11,
                            .max_mba_percent = 40};
  SystemState capped_state = SystemState::EqualShare(capped, 2);
  EXPECT_TRUE(capped_state.Valid());
  capped_state.allocation(0).mba_level = MbaLevel::FromPercentChecked(50);
  EXPECT_FALSE(capped_state.Valid());
}

TEST(SystemStateTest, WayMaskBitsPackContiguously) {
  const SystemState state = SystemState::EqualShare(FullPool(), 4);
  // (3,3,3,2): masks 0x007, 0x038, 0x1c0, 0x600.
  EXPECT_EQ(state.WayMaskBits(0), 0x007u);
  EXPECT_EQ(state.WayMaskBits(1), 0x038u);
  EXPECT_EQ(state.WayMaskBits(2), 0x1c0u);
  EXPECT_EQ(state.WayMaskBits(3), 0x600u);
}

TEST(SystemStateTest, WayMaskBitsHonorPoolOffset) {
  const ResourcePool pool{.first_way = 4, .num_ways = 6,
                          .max_mba_percent = 100};
  const SystemState state = SystemState::EqualShare(pool, 2);
  EXPECT_EQ(state.WayMaskBits(0), 0x070u);  // Ways 4-6.
  EXPECT_EQ(state.WayMaskBits(1), 0x380u);  // Ways 7-9.
}

TEST(SystemStateTest, ToStringReadable) {
  const SystemState state = SystemState::EqualShare(FullPool(), 2);
  EXPECT_EQ(state.ToString(), "{(6w,100%), (5w,100%)}");
}

// Property: RandomNeighbor always returns a valid state at most one move
// away, and respects the move gates.
class NeighborTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NeighborTest, NeighborsAreValidSingleMoves) {
  Rng rng(GetParam());
  SystemState state = SystemState::EqualShareThrottled(FullPool(), 4);
  for (int step = 0; step < 300; ++step) {
    const SystemState next = state.RandomNeighbor(rng, true, true);
    ASSERT_TRUE(next.Valid()) << next.ToString();
    // Count elementary differences.
    int way_moves = 0, mba_moves = 0;
    for (size_t i = 0; i < 4; ++i) {
      way_moves += std::abs(static_cast<int>(next.allocation(i).llc_ways) -
                            static_cast<int>(state.allocation(i).llc_ways));
      mba_moves +=
          std::abs(static_cast<int>(next.allocation(i).mba_level.percent()) -
                   static_cast<int>(state.allocation(i).mba_level.percent())) /
          10;
    }
    EXPECT_TRUE((way_moves == 2 && mba_moves == 0) ||
                (way_moves == 0 && mba_moves == 1))
        << state.ToString() << " -> " << next.ToString();
    state = next;
  }
}

TEST_P(NeighborTest, GatesRestrictMoveTypes) {
  Rng rng(GetParam());
  const SystemState state = SystemState::EqualShareThrottled(FullPool(), 4);
  for (int step = 0; step < 50; ++step) {
    const SystemState llc_only = state.RandomNeighbor(rng, true, false);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(llc_only.allocation(i).mba_level,
                state.allocation(i).mba_level);
    }
    const SystemState mba_only = state.RandomNeighbor(rng, false, true);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(mba_only.allocation(i).llc_ways,
                state.allocation(i).llc_ways);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeighborTest,
                         ::testing::Values(1, 7, 99, 12345));

TEST(NeighborEdgeTest, NoMovesPossibleReturnsSameState) {
  const SystemState state = SystemState::EqualShare(FullPool(), 2);
  Rng rng(5);
  EXPECT_EQ(state.RandomNeighbor(rng, false, false), state);
  // Single app with 1-way pool at MBA floor: nothing can move.
  const ResourcePool tiny{.first_way = 0, .num_ways = 1,
                          .max_mba_percent = 10};
  const SystemState pinned = SystemState::EqualShare(tiny, 1);
  EXPECT_EQ(pinned.RandomNeighbor(rng, true, true), pinned);
}

}  // namespace
}  // namespace copart
