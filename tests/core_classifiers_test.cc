// The LLC and MBA characteristic classifier FSMs (paper Figs. 8-9).
#include "core/classifiers.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

ClassifierParams Params() { return ClassifierParams{}; }

// Inputs representing a cache-hungry app: busy, high miss ratio.
ClassifierInput CacheHungry() {
  return ClassifierInput{.llc_access_rate = 5e7,
                         .llc_miss_ratio = 0.20,
                         .traffic_ratio = 0.5,
                         .perf_delta = 0.0,
                         .last_event = ResourceEvent::kNone};
}

TEST(LlcFsmTest, LowAccessRateAlwaysSupplies) {
  for (ResourceClass initial :
       {ResourceClass::kDemand, ResourceClass::kMaintain,
        ResourceClass::kSupply}) {
    LlcClassifierFsm fsm(Params(), initial);
    ClassifierInput input = CacheHungry();
    input.llc_access_rate = 1e5;  // Below alpha = 1.5e6.
    EXPECT_EQ(fsm.Update(input), ResourceClass::kSupply)
        << ResourceClassName(initial);
  }
}

TEST(LlcFsmTest, LowMissRatioSupplies) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = CacheHungry();
  input.llc_miss_ratio = 0.005;  // Below beta = 1%.
  EXPECT_EQ(fsm.Update(input), ResourceClass::kSupply);
}

TEST(LlcFsmTest, DemandStaysWhenGainKeepsHelping) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = CacheHungry();
  input.last_event = ResourceEvent::kGainedLlcWay;
  input.perf_delta = 0.10;  // >= deltaP.
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(LlcFsmTest, DemandToMaintainOnMarginalGain) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = CacheHungry();
  input.last_event = ResourceEvent::kGainedLlcWay;
  input.perf_delta = 0.01;  // < deltaP = 5%.
  EXPECT_EQ(fsm.Update(input), ResourceClass::kMaintain);
}

TEST(LlcFsmTest, DemandUnchangedWithoutEvent) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kDemand);
  EXPECT_EQ(fsm.Update(CacheHungry()), ResourceClass::kDemand);
}

TEST(LlcFsmTest, MaintainToDemandOnHighMissRatio) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kMaintain);
  ClassifierInput input = CacheHungry();
  input.llc_miss_ratio = 0.05;  // Above Beta = 3%.
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(LlcFsmTest, MaintainToDemandWhenLossHurts) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kMaintain);
  ClassifierInput input = CacheHungry();
  input.llc_miss_ratio = 0.02;  // Between beta and Beta: no ratio trigger.
  input.last_event = ResourceEvent::kLostLlcWay;
  input.perf_delta = -0.10;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(LlcFsmTest, MaintainHoldsInComfortZone) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kMaintain);
  ClassifierInput input = CacheHungry();
  input.llc_miss_ratio = 0.02;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kMaintain);
}

TEST(LlcFsmTest, SupplyToDemandWhenReclaimHurts) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kSupply);
  ClassifierInput input = CacheHungry();
  input.last_event = ResourceEvent::kLostLlcWay;
  input.perf_delta = -0.12;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(LlcFsmTest, SupplyToMaintainWhenMissesRise) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kSupply);
  ClassifierInput input = CacheHungry();  // Busy and missing a lot.
  input.llc_miss_ratio = 0.05;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kMaintain);
}

TEST(LlcFsmTest, SupplyStableWhenCacheUseless) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kSupply);
  ClassifierInput input = CacheHungry();
  input.llc_miss_ratio = 0.001;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fsm.Update(input), ResourceClass::kSupply);
  }
}

TEST(LlcFsmTest, ResetRestoresInitialState) {
  LlcClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = CacheHungry();
  input.llc_access_rate = 0.0;
  fsm.Update(input);
  EXPECT_EQ(fsm.state(), ResourceClass::kSupply);
  fsm.Reset(ResourceClass::kMaintain);
  EXPECT_EQ(fsm.state(), ResourceClass::kMaintain);
}

// --- MBA FSM ---

ClassifierInput BwHungry() {
  return ClassifierInput{.llc_access_rate = 1e8,
                         .llc_miss_ratio = 0.5,
                         .traffic_ratio = 0.6,
                         .perf_delta = 0.0,
                         .last_event = ResourceEvent::kNone};
}

TEST(MbaFsmTest, LowTrafficAlwaysSupplies) {
  for (ResourceClass initial :
       {ResourceClass::kDemand, ResourceClass::kMaintain,
        ResourceClass::kSupply}) {
    MbaClassifierFsm fsm(Params(), initial);
    ClassifierInput input = BwHungry();
    input.traffic_ratio = 0.05;  // Below gamma = 10%.
    EXPECT_EQ(fsm.Update(input), ResourceClass::kSupply)
        << ResourceClassName(initial);
  }
}

TEST(MbaFsmTest, DemandToMaintainOnMarginalMbaGain) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = BwHungry();
  input.last_event = ResourceEvent::kGainedMba;
  input.perf_delta = 0.01;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kMaintain);
}

TEST(MbaFsmTest, DemandStaysOnMarginalLlcGain) {
  // The paper's §5.3 design note: a small gain from an LLC way must NOT
  // demote the MBA demand.
  MbaClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = BwHungry();
  input.last_event = ResourceEvent::kGainedLlcWay;
  input.perf_delta = 0.01;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(MbaFsmTest, DemandStaysWhenMbaKeepsHelping) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kDemand);
  ClassifierInput input = BwHungry();
  input.last_event = ResourceEvent::kGainedMba;
  input.perf_delta = 0.2;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(MbaFsmTest, MaintainToDemandOnHighTraffic) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kMaintain);
  ClassifierInput input = BwHungry();
  input.traffic_ratio = 0.4;  // Above Gamma = 30%.
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(MbaFsmTest, MaintainToDemandWhenThrottleHurts) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kMaintain);
  ClassifierInput input = BwHungry();
  input.traffic_ratio = 0.2;  // Between gamma and Gamma.
  input.last_event = ResourceEvent::kLostMba;
  input.perf_delta = -0.2;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(MbaFsmTest, MaintainHoldsInComfortZone) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kMaintain);
  ClassifierInput input = BwHungry();
  input.traffic_ratio = 0.2;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kMaintain);
}

TEST(MbaFsmTest, SupplyToDemandWhenReclaimHurts) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kSupply);
  ClassifierInput input = BwHungry();
  input.last_event = ResourceEvent::kLostMba;
  input.perf_delta = -0.1;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
}

TEST(MbaFsmTest, SupplyToMaintainOnHighTraffic) {
  MbaClassifierFsm fsm(Params(), ResourceClass::kSupply);
  ClassifierInput input = BwHungry();
  input.traffic_ratio = 0.5;
  EXPECT_EQ(fsm.Update(input), ResourceClass::kMaintain);
}

TEST(ClassifierParamsTest, ResourceClassNames) {
  EXPECT_STREQ(ResourceClassName(ResourceClass::kSupply), "Supply");
  EXPECT_STREQ(ResourceClassName(ResourceClass::kMaintain), "Maintain");
  EXPECT_STREQ(ResourceClassName(ResourceClass::kDemand), "Demand");
}

}  // namespace
}  // namespace copart
