// Properties of the incremental epoch kernel (DESIGN.md §12).
//
// The machine exposes full_solves() / partial_solves() so these tests can
// observe which tier an epoch took, and the contract is exact:
//   - clean epochs (no observable mutation since the last solve) replay the
//     cached fixed point and increment neither counter;
//   - mutations touching only the bandwidth tier (MBA levels, required-IPS
//     caps) take a partial solve that reuses the cached capacity fixed
//     point;
//   - capacity-tier mutations (way masks, CLOS membership, launch/terminate,
//     phase crossings) force a full solve;
//   - value-identical mutator writes dirty nothing;
//   - the scalar reference kernel and incremental_epochs=false always solve
//     in full.
// Whatever tier an epoch takes, the outputs must be bit-identical across all
// kernel configurations — the twin-machine test at the bottom locks that in
// over a randomized mutation schedule including a phased workload, noise and
// required-IPS flips.
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/way_mask.h"
#include "common/rng.h"
#include "machine/machine_config.h"
#include "machine/simulated_machine.h"
#include "membw/mba.h"
#include "workload/workload.h"

namespace copart {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<AppId> LaunchThreeSteadyApps(SimulatedMachine& machine) {
  const std::vector<WorkloadDescriptor> workloads = {Sp(), Raytrace(),
                                                     AllTable2Benchmarks()[0]};
  std::vector<AppId> apps;
  for (size_t i = 0; i < workloads.size(); ++i) {
    Result<AppId> app = machine.LaunchApp(workloads[i], 2);
    EXPECT_TRUE(app.ok());
    apps.push_back(*app);
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  return apps;
}

MachineConfig VectorizedIncremental() {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.epoch_kernel = EpochKernel::kVectorized;
  config.incremental_epochs = true;
  return config;
}

TEST(MachineIncrementalTest, CleanEpochsReplayWithoutSolving) {
  SimulatedMachine machine(VectorizedIncremental());
  LaunchThreeSteadyApps(machine);
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 1u);
  EXPECT_EQ(machine.partial_solves(), 0u);
  for (int i = 0; i < 50; ++i) {
    machine.AdvanceTime(0.1);
  }
  EXPECT_EQ(machine.full_solves(), 1u)
      << "steady-state epochs must not re-solve";
  EXPECT_EQ(machine.partial_solves(), 0u);
}

TEST(MachineIncrementalTest, BandwidthOnlyMutationsTakePartialSolve) {
  SimulatedMachine machine(VectorizedIncremental());
  const std::vector<AppId> apps = LaunchThreeSteadyApps(machine);
  machine.AdvanceTime(0.1);
  ASSERT_EQ(machine.full_solves(), 1u);

  machine.SetClosMbaLevel(1, MbaLevel::FromPercentChecked(40));
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 1u);
  EXPECT_EQ(machine.partial_solves(), 1u)
      << "an MBA-only change must reuse the capacity fixed point";

  machine.SetAppRequiredIps(apps[0], 1e9);
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 1u);
  EXPECT_EQ(machine.partial_solves(), 2u);

  machine.SetAppRequiredIps(apps[0], std::nullopt);
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 1u);
  EXPECT_EQ(machine.partial_solves(), 3u);
}

TEST(MachineIncrementalTest, CapacityMutationsForceFullSolve) {
  SimulatedMachine machine(VectorizedIncremental());
  const std::vector<AppId> apps = LaunchThreeSteadyApps(machine);
  machine.AdvanceTime(0.1);
  ASSERT_EQ(machine.full_solves(), 1u);

  machine.SetClosWayMask(1, WayMask::Contiguous(0, 4));
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 2u)
      << "a way-mask change invalidates the capacity fixed point";
  EXPECT_EQ(machine.partial_solves(), 0u);

  machine.AssignAppToClos(apps[2], 1);
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 3u);

  Result<AppId> extra = machine.LaunchApp(Raytrace(), 2);
  ASSERT_TRUE(extra.ok());
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 4u);

  ASSERT_TRUE(machine.TerminateApp(*extra).ok());
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 5u);
  EXPECT_EQ(machine.partial_solves(), 0u);
}

TEST(MachineIncrementalTest, MixedMutationsEscalateToFullSolve) {
  // When one epoch sees both a bandwidth-tier and a capacity-tier mutation,
  // the capacity tier wins: the epoch must solve in full.
  SimulatedMachine machine(VectorizedIncremental());
  LaunchThreeSteadyApps(machine);
  machine.AdvanceTime(0.1);
  ASSERT_EQ(machine.full_solves(), 1u);

  machine.SetClosMbaLevel(2, MbaLevel::FromPercentChecked(30));
  machine.SetClosWayMask(2, WayMask::Contiguous(2, 5));
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 2u);
  EXPECT_EQ(machine.partial_solves(), 0u);
}

TEST(MachineIncrementalTest, ValueIdenticalWritesStayClean) {
  SimulatedMachine machine(VectorizedIncremental());
  const std::vector<AppId> apps = LaunchThreeSteadyApps(machine);
  machine.SetClosWayMask(1, WayMask::Contiguous(0, 4));
  machine.SetClosMbaLevel(1, MbaLevel::FromPercentChecked(40));
  machine.SetAppRequiredIps(apps[0], 1e9);
  machine.AdvanceTime(0.1);
  const uint64_t full = machine.full_solves();
  const uint64_t partial = machine.partial_solves();

  // Rewriting the exact same state must not dirty anything.
  machine.SetClosWayMask(1, WayMask::Contiguous(0, 4));
  machine.SetClosMbaLevel(1, MbaLevel::FromPercentChecked(40));
  machine.SetAppRequiredIps(apps[0], 1e9);
  machine.AssignAppToClos(apps[0], machine.AppClos(apps[0]));
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), full)
      << "no-op mutator writes must leave the epoch clean";
  EXPECT_EQ(machine.partial_solves(), partial);
}

TEST(MachineIncrementalTest, IncrementalOffSolvesEveryEpoch) {
  MachineConfig config = VectorizedIncremental();
  config.incremental_epochs = false;
  SimulatedMachine machine(config);
  LaunchThreeSteadyApps(machine);
  for (int i = 0; i < 10; ++i) {
    machine.AdvanceTime(0.1);
  }
  EXPECT_EQ(machine.full_solves(), 10u);
  EXPECT_EQ(machine.partial_solves(), 0u)
      << "the partial tier requires incremental_epochs";
}

TEST(MachineIncrementalTest, ScalarKernelNeverTakesPartialTier) {
  MachineConfig config = VectorizedIncremental();
  config.epoch_kernel = EpochKernel::kScalar;
  SimulatedMachine machine(config);
  LaunchThreeSteadyApps(machine);
  machine.AdvanceTime(0.1);
  ASSERT_EQ(machine.full_solves(), 1u);

  // Clean epochs still replay (the dirty set is kernel-independent)...
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 1u);

  // ...but bandwidth-only dirt re-solves in full: the scalar kernel is the
  // bit-identity reference and takes no shortcuts.
  machine.SetClosMbaLevel(1, MbaLevel::FromPercentChecked(40));
  machine.AdvanceTime(0.1);
  EXPECT_EQ(machine.full_solves(), 2u);
  EXPECT_EQ(machine.partial_solves(), 0u);
}

TEST(MachineIncrementalTest, ForcedDirtyAlwaysResolves) {
  // Alternating a CLOS mask between two values every epoch defeats the
  // cache entirely: every tick must be a fresh full solve, and the counter
  // must track epochs 1:1.
  SimulatedMachine machine(VectorizedIncremental());
  LaunchThreeSteadyApps(machine);
  machine.AdvanceTime(0.1);
  ASSERT_EQ(machine.full_solves(), 1u);
  for (int i = 0; i < 20; ++i) {
    machine.SetClosWayMask(1, WayMask::Contiguous(i % 2 == 0 ? 0 : 4, 4));
    machine.AdvanceTime(0.1);
  }
  EXPECT_EQ(machine.full_solves(), 21u);
}

// Twin-machine bit-identity: four machines with every kernel configuration
// run the same randomized schedule (mask/MBA/required-IPS churn, a phased
// workload crossing boundaries, multiplicative noise) and must agree
// bitwise on every output of every epoch.
class MachineIncrementalTwinTest : public ::testing::TestWithParam<MrcMode> {};

TEST_P(MachineIncrementalTwinTest, AllKernelConfigsBitIdentical) {
  MachineConfig base;
  base.mrc_mode = GetParam();
  base.ips_noise_sigma = 0.01;

  struct Variant {
    const char* name;
    EpochKernel kernel;
    bool incremental;
  };
  const Variant variants[] = {
      {"vectorized_incremental", EpochKernel::kVectorized, true},
      {"vectorized_full", EpochKernel::kVectorized, false},
      {"scalar_incremental", EpochKernel::kScalar, true},
      {"scalar_full", EpochKernel::kScalar, false},
  };

  std::vector<SimulatedMachine> machines;
  std::vector<std::vector<AppId>> apps(4);
  for (const Variant& variant : variants) {
    MachineConfig config = base;
    config.epoch_kernel = variant.kernel;
    config.incremental_epochs = variant.incremental;
    machines.emplace_back(config);
  }
  const std::vector<WorkloadDescriptor> workloads = {
      Sp(), Raytrace(), PhasedScanCompute(/*period_sec=*/1.0)};
  for (size_t m = 0; m < machines.size(); ++m) {
    for (size_t i = 0; i < workloads.size(); ++i) {
      Result<AppId> app = machines[m].LaunchApp(workloads[i], 2);
      ASSERT_TRUE(app.ok());
      apps[m].push_back(*app);
      machines[m].AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
    }
  }

  Rng rng(0xBEEFCAFEULL);
  const uint32_t num_ways = base.llc.num_ways;
  bool cap_on = false;
  for (int epoch = 0; epoch < 400; ++epoch) {
    if (rng.NextBool(0.05)) {
      const uint32_t clos = static_cast<uint32_t>(rng.NextInt(1, 3));
      const uint32_t width = static_cast<uint32_t>(rng.NextInt(2, 5));
      const uint32_t start = static_cast<uint32_t>(
          rng.NextInt(0, static_cast<int64_t>(num_ways - width)));
      for (SimulatedMachine& machine : machines) {
        machine.SetClosWayMask(clos, WayMask::Contiguous(start, width));
      }
    }
    if (rng.NextBool(0.1)) {
      const uint32_t clos = static_cast<uint32_t>(rng.NextInt(1, 3));
      const MbaLevel level = MbaLevel::FromPercentChecked(
          10u * static_cast<uint32_t>(rng.NextInt(1, 10)));
      for (SimulatedMachine& machine : machines) {
        machine.SetClosMbaLevel(clos, level);
      }
    }
    if (rng.NextBool(0.03)) {
      cap_on = !cap_on;
      for (size_t m = 0; m < machines.size(); ++m) {
        machines[m].SetAppRequiredIps(
            apps[m][0], cap_on ? std::optional<double>(2e9) : std::nullopt);
      }
    }
    for (SimulatedMachine& machine : machines) {
      machine.AdvanceTime(0.01);
    }
    for (size_t m = 1; m < machines.size(); ++m) {
      for (size_t i = 0; i < workloads.size(); ++i) {
        const AppEpochSnapshot& ref = machines[0].LastEpoch(apps[0][i]);
        const AppEpochSnapshot& got = machines[m].LastEpoch(apps[m][i]);
        ASSERT_TRUE(SameBits(ref.ips, got.ips) &&
                    SameBits(ref.ips_capability, got.ips_capability) &&
                    SameBits(ref.miss_ratio, got.miss_ratio) &&
                    SameBits(ref.effective_capacity_bytes,
                             got.effective_capacity_bytes) &&
                    SameBits(ref.bandwidth_demand_bytes_per_sec,
                             got.bandwidth_demand_bytes_per_sec) &&
                    SameBits(ref.bandwidth_grant_bytes_per_sec,
                             got.bandwidth_grant_bytes_per_sec))
            << "epoch " << epoch << " app " << i << ": " << variants[m].name
            << " diverged from " << variants[0].name;
      }
    }
  }

  // The schedule must actually have exercised all three tiers on the
  // incremental vectorized machine, or the bit-identity claim above is
  // vacuous.
  EXPECT_GT(machines[0].full_solves(), 0u);
  EXPECT_GT(machines[0].partial_solves(), 0u);
  EXPECT_LT(machines[0].full_solves() + machines[0].partial_solves(), 400u)
      << "expected some clean replay epochs";
  // The full-solve variants solve every epoch.
  EXPECT_EQ(machines[1].full_solves(), 400u);
  EXPECT_EQ(machines[3].full_solves(), 400u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, MachineIncrementalTwinTest,
                         ::testing::Values(MrcMode::kExact, MrcMode::kCompiled),
                         [](const ::testing::TestParamInfo<MrcMode>& info) {
                           return info.param == MrcMode::kExact ? "exact"
                                                                : "compiled";
                         });

}  // namespace
}  // namespace copart
