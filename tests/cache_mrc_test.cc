#include "cache/miss_ratio_curve.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "workload/workload.h"

namespace copart {
namespace {

TEST(ReuseProfileTest, StreamingAlwaysMisses) {
  const ReuseProfile profile = ReuseProfile::Streaming();
  EXPECT_DOUBLE_EQ(profile.MissRatio(0), 1.0);
  EXPECT_DOUBLE_EQ(profile.MissRatio(GiB(1)), 1.0);
}

TEST(ReuseProfileTest, SingleComponentClosedForm) {
  const ReuseProfile profile({{1.0, MiB(8)}}, 0.0);
  EXPECT_DOUBLE_EQ(profile.MissRatio(0), 1.0);
  EXPECT_DOUBLE_EQ(profile.MissRatio(MiB(2)), 0.75);
  EXPECT_DOUBLE_EQ(profile.MissRatio(MiB(4)), 0.5);
  EXPECT_DOUBLE_EQ(profile.MissRatio(MiB(8)), 0.0);
  EXPECT_DOUBLE_EQ(profile.MissRatio(MiB(16)), 0.0);
}

TEST(ReuseProfileTest, ResidualWeightAlwaysHits) {
  // 0.5 to an 8 MiB set, 0.2 streaming, 0.3 resident.
  const ReuseProfile profile({{0.5, MiB(8)}}, 0.2);
  // With ample capacity only the stream misses; the residual 0.3 hits.
  EXPECT_NEAR(profile.MissRatio(GiB(4)), 0.2, 1e-6);
  EXPECT_DOUBLE_EQ(profile.MissRatio(0), 0.7);
  // At exactly the working-set size, stream pollution steals capacity from
  // the component, so the miss ratio sits strictly between the two bounds.
  EXPECT_GT(profile.MissRatio(MiB(8)), 0.2);
  EXPECT_LT(profile.MissRatio(MiB(8)), 0.7);
}

TEST(ReuseProfileTest, MixtureComponentsCompeteForCapacity) {
  // Under Che's model, components share capacity: the mixture's miss ratio
  // at C exceeds the optimistic estimate where each component sees all of C.
  const ReuseProfile profile({{0.4, MiB(4)}, {0.4, MiB(16)}}, 0.1);
  const double independent = 0.4 * 0.0 + 0.4 * (1.0 - 4.0 / 16.0) + 0.1;
  EXPECT_GT(profile.MissRatio(MiB(4)), independent);
  // And stays below the zero-capacity ceiling.
  EXPECT_LT(profile.MissRatio(MiB(4)), 0.9);
}

TEST(ReuseProfileTest, SplittingAComponentIsANoOp) {
  // Two identical half-weight components over disjoint halves of a working
  // set have the same per-line reference rate as the merged component, so
  // Che's model must give identical curves.
  const ReuseProfile merged({{0.8, MiB(16)}}, 0.1);
  const ReuseProfile split({{0.4, MiB(8)}, {0.4, MiB(8)}}, 0.1);
  for (uint64_t capacity : {MiB(2), MiB(6), MiB(12), MiB(20)}) {
    EXPECT_NEAR(merged.MissRatio(capacity), split.MissRatio(capacity), 1e-9)
        << capacity;
  }
}

TEST(ReuseProfileTest, MaxWorkingSet) {
  const ReuseProfile profile({{0.4, MiB(4)}, {0.4, MiB(16)}}, 0.1);
  EXPECT_EQ(profile.MaxWorkingSetBytes(), MiB(16));
  EXPECT_EQ(ReuseProfile::Streaming().MaxWorkingSetBytes(), 0u);
}

TEST(ReuseProfileDeathTest, RejectsOverweight) {
  EXPECT_DEATH(ReuseProfile({{0.9, MiB(1)}}, 0.2), "exceed");
}

TEST(ReuseProfileDeathTest, RejectsZeroWorkingSet) {
  EXPECT_DEATH(ReuseProfile({{0.5, 0}}, 0.0), "working_set");
}

// Property over every Table 2 surrogate: the MRC is monotone non-increasing
// in capacity and bounded in [0, 1].
class MrcMonotoneTest : public ::testing::TestWithParam<WorkloadDescriptor> {};

TEST_P(MrcMonotoneTest, MonotoneAndBounded) {
  const ReuseProfile& profile = GetParam().reuse_profile;
  double previous = 1.0;
  for (uint64_t capacity = 0; capacity <= MiB(24); capacity += MiB(1)) {
    const double miss = profile.MissRatio(capacity);
    EXPECT_GE(miss, 0.0);
    EXPECT_LE(miss, 1.0);
    EXPECT_LE(miss, previous + 1e-12) << "capacity=" << capacity;
    previous = miss;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, MrcMonotoneTest,
    ::testing::ValuesIn(AllTable2Benchmarks()),
    [](const ::testing::TestParamInfo<WorkloadDescriptor>& info) {
      return info.param.short_name;
    });

}  // namespace
}  // namespace copart
