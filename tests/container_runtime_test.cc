// Container front end: lifecycle, isolation state, stats, and interop with
// the CoPart manager.
#include "container/container_runtime.h"

#include <gtest/gtest.h>

#include "core/resource_manager.h"
#include "pmc/perf_monitor.h"
#include "workload/workload.h"

namespace copart {
namespace {

class ContainerTest : public ::testing::Test {
 protected:
  ContainerTest()
      : machine_(MakeConfig()), resctrl_(&machine_),
        runtime_(&machine_, &resctrl_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    return config;
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  ContainerRuntime runtime_;
};

TEST_F(ContainerTest, RunCreatesAppAndGroup) {
  Result<ContainerInfo> info = runtime_.Run("cg0", Cg(), 4);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "cg0");
  EXPECT_EQ(info->cpus, 4u);
  EXPECT_EQ(info->workload_name, "CG");
  EXPECT_TRUE(machine_.AppExists(info->app));
  EXPECT_EQ(machine_.AppClos(info->app), info->group.clos());
  EXPECT_TRUE(resctrl_.FindGroup("container_cg0").ok());
  EXPECT_EQ(machine_.FreeCores(), 12u);
}

TEST_F(ContainerTest, StopTearsDownBoth) {
  Result<ContainerInfo> info = runtime_.Run("x", Swaptions(), 2);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(runtime_.Stop("x").ok());
  EXPECT_FALSE(machine_.AppExists(info->app));
  EXPECT_FALSE(resctrl_.FindGroup("container_x").ok());
  EXPECT_EQ(machine_.FreeCores(), 16u);
  EXPECT_EQ(runtime_.Stop("x").code(), StatusCode::kNotFound);
}

TEST_F(ContainerTest, DuplicateNamesRejected) {
  ASSERT_TRUE(runtime_.Run("dup", Ep(), 2).ok());
  EXPECT_EQ(runtime_.Run("dup", Ep(), 2).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(runtime_.Run("", Ep(), 2).ok());
}

TEST_F(ContainerTest, CoreExhaustionRollsBackCleanly) {
  ASSERT_TRUE(runtime_.Run("big", Swaptions(), 14).ok());
  const size_t groups_before = resctrl_.GroupNames().size();
  EXPECT_EQ(runtime_.Run("overflow", Ep(), 4).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(resctrl_.GroupNames().size(), groups_before);
  EXPECT_EQ(runtime_.List().size(), 1u);
}

TEST_F(ContainerTest, ClosExhaustionRollsBackApp) {
  // Consume all 15 non-default CLOSes, then one more container must fail
  // without leaking its app.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(resctrl_.CreateGroup("g" + std::to_string(i)).ok());
  }
  const size_t apps_before = machine_.ListApps().size();
  EXPECT_EQ(runtime_.Run("late", Ep(), 1).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(machine_.ListApps().size(), apps_before);
}

TEST_F(ContainerTest, ListAndFind) {
  ASSERT_TRUE(runtime_.Run("a", WaterNsquared(), 4).ok());
  ASSERT_TRUE(runtime_.Run("b", Cg(), 4).ok());
  EXPECT_EQ(runtime_.List().size(), 2u);
  EXPECT_TRUE(runtime_.Find("a").ok());
  EXPECT_FALSE(runtime_.Find("c").ok());
}

TEST_F(ContainerTest, StatsReflectMachineState) {
  Result<ContainerInfo> info = runtime_.Run("cg", Cg(), 4);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(resctrl_.SetCacheMask(info->group, 0x3).ok());
  machine_.AdvanceTime(0.5);
  const ContainerStats stats = runtime_.Stats("cg");
  EXPECT_GT(stats.ips, 0.0);
  EXPECT_GT(stats.memory_bandwidth_bytes_per_sec, 1e9);
  EXPECT_LE(stats.llc_occupancy_bytes,
            2.0 * machine_.config().llc.WayBytes() * 1.001);
  EXPECT_EQ(stats.schemata, "L3:0=3;MB:0=100");
}

TEST_F(ContainerTest, CoPartManagesContainerizedApps) {
  PerfMonitor monitor(&machine_);
  Result<ContainerInfo> wn = runtime_.Run("wn", WaterNsquared(), 4);
  Result<ContainerInfo> sw = runtime_.Run("sw", Swaptions(), 4);
  ASSERT_TRUE(wn.ok());
  ASSERT_TRUE(sw.ok());

  ResourceManagerParams params;
  ResourceManager manager(&resctrl_, &monitor, params);
  ASSERT_TRUE(manager.AddApp(wn->app).ok());
  ASSERT_TRUE(manager.AddApp(sw->app).ok());
  for (int i = 0; i < 80; ++i) {
    machine_.AdvanceTime(0.5);
    manager.Tick();
  }
  // The manager re-grouped the apps; the containers still resolve and
  // their stats report the manager's schemata.
  EXPECT_NE(machine_.AppClos(wn->app), wn->group.clos());
  const ContainerStats stats = runtime_.Stats("wn");
  EXPECT_FALSE(stats.schemata.empty());
  // The cache-hungry container ends with more ways than the insensitive one.
  EXPECT_GT(machine_.ClosWayMask(machine_.AppClos(wn->app)).CountWays(),
            machine_.ClosWayMask(machine_.AppClos(sw->app)).CountWays());
}

}  // namespace
}  // namespace copart
