// The MSR-level RDT register emulation: architectural encoding rules,
// fault behaviour, and consistency with the resctrl-level semantics.
#include "resctrl/rdt_msr.h"

#include <gtest/gtest.h>

#include "cache/way_mask.h"
#include "membw/mba.h"

namespace copart {
namespace {

TEST(RdtMsrTest, ResetStateMatchesHardware) {
  RdtMsrBank bank;
  for (uint32_t clos = 0; clos < 16; ++clos) {
    EXPECT_EQ(bank.ClosCacheMask(clos), 0x7FFu) << clos;
    EXPECT_EQ(bank.ClosMbaLevel(clos), 100u) << clos;
  }
  for (uint32_t core = 0; core < 16; ++core) {
    EXPECT_EQ(bank.CoreClos(core), 0u);
  }
}

TEST(RdtMsrTest, L3MaskWriteAndReadBack) {
  RdtMsrBank bank;
  ASSERT_TRUE(bank.Write(kMsrIa32L3QosMaskBase + 3, 0x0F0).ok());
  EXPECT_EQ(bank.ClosCacheMask(3), 0x0F0u);
  Result<uint64_t> raw = bank.Read(kMsrIa32L3QosMaskBase + 3);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, 0x0F0u);
}

TEST(RdtMsrTest, L3MaskFaults) {
  RdtMsrBank bank;
  // Reserved bits (way 11+ on an 11-bit CBM).
  EXPECT_FALSE(bank.Write(kMsrIa32L3QosMaskBase, 0x800).ok());
  // Empty mask.
  EXPECT_FALSE(bank.Write(kMsrIa32L3QosMaskBase, 0x0).ok());
  // Non-contiguous.
  EXPECT_FALSE(bank.Write(kMsrIa32L3QosMaskBase, 0x505).ok());
  // The faulting writes left the register untouched.
  EXPECT_EQ(bank.ClosCacheMask(0), 0x7FFu);
}

TEST(RdtMsrTest, MbaDelayEncoding) {
  RdtMsrBank bank;
  // resctrl level 40 == delay 60.
  ASSERT_TRUE(bank.Write(kMsrIa32MbaThrtlBase + 1, 60).ok());
  EXPECT_EQ(bank.ClosMbaLevel(1), 40u);
  // Delay 0 == unthrottled.
  ASSERT_TRUE(bank.Write(kMsrIa32MbaThrtlBase + 1, 0).ok());
  EXPECT_EQ(bank.ClosMbaLevel(1), 100u);
}

TEST(RdtMsrTest, MbaDelayFaults) {
  RdtMsrBank bank;
  EXPECT_FALSE(bank.Write(kMsrIa32MbaThrtlBase, 100).ok());  // >= 100.
  EXPECT_FALSE(bank.Write(kMsrIa32MbaThrtlBase, 45).ok());   // Granularity.
  EXPECT_EQ(bank.ClosMbaLevel(0), 100u);
}

TEST(RdtMsrTest, UnimplementedMsrsFault) {
  RdtMsrBank bank;
  EXPECT_FALSE(bank.Write(0x123, 1).ok());
  EXPECT_FALSE(bank.Read(0x123).ok());
  // One past the CLOS range.
  EXPECT_FALSE(bank.Write(kMsrIa32L3QosMaskBase + 16, 0x1).ok());
  EXPECT_FALSE(bank.Write(kMsrIa32MbaThrtlBase + 16, 0).ok());
}

TEST(RdtMsrTest, PqrAssocPerCore) {
  RdtMsrBank bank;
  ASSERT_TRUE(bank.WritePqrAssoc(5, 3).ok());
  EXPECT_EQ(bank.CoreClos(5), 3u);
  EXPECT_EQ(bank.CoreClos(4), 0u);
  Result<uint32_t> read = bank.ReadPqrAssoc(5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 3u);
  EXPECT_FALSE(bank.WritePqrAssoc(99, 0).ok());
  EXPECT_FALSE(bank.WritePqrAssoc(0, 16).ok());
  EXPECT_FALSE(bank.Write(kMsrIa32PqrAssoc, 0).ok());
}

TEST(RdtMsrTest, CustomCapabilities) {
  RdtMsrBank bank(RdtCapabilities{.num_clos = 4,
                                  .cbm_bits = 20,
                                  .num_cores = 8,
                                  .mba_granularity = 20});
  EXPECT_EQ(bank.ClosCacheMask(3), (1ULL << 20) - 1);
  EXPECT_TRUE(bank.Write(kMsrIa32L3QosMaskBase, 0xFFFFF).ok());
  EXPECT_TRUE(bank.Write(kMsrIa32MbaThrtlBase, 80).ok());
  EXPECT_FALSE(bank.Write(kMsrIa32MbaThrtlBase, 30).ok());  // Granularity 20.
  EXPECT_FALSE(bank.Write(kMsrIa32L3QosMaskBase + 4, 0x1).ok());
}

// Consistency bridge: every mask/level the resctrl layer accepts must
// encode into a fault-free MSR write, and vice versa for rejections.
TEST(RdtMsrTest, AgreesWithResctrlValidation) {
  RdtMsrBank bank;
  for (uint64_t bits = 0; bits <= 0xFFF; ++bits) {
    const bool resctrl_ok = WayMask::FromBits(bits, 11).ok();
    const bool msr_ok = bank.Write(kMsrIa32L3QosMaskBase, bits).ok();
    EXPECT_EQ(resctrl_ok, msr_ok) << "bits=" << bits;
  }
  for (uint32_t percent = 0; percent <= 120; ++percent) {
    const bool resctrl_ok = MbaLevel::FromPercent(percent).ok();
    // Level -> delay encoding only defined for levels <= 100.
    const bool msr_ok =
        percent <= 100 &&
        bank.Write(kMsrIa32MbaThrtlBase, 100 - percent).ok();
    // resctrl additionally forbids level < 10 (delay > 90); hardware
    // accepts any granular delay below 100. The kernel is the stricter
    // layer, so resctrl-valid must imply MSR-valid.
    if (resctrl_ok) {
      EXPECT_TRUE(msr_ok) << percent;
    }
  }
}

}  // namespace
}  // namespace copart
