// LatencySketch (src/serve/latency_sketch.h): the fixed-bucket log-latency
// histogram's quantiles must track exact sorted percentiles within one
// bucket ratio (10^(1/32), ~7.5% relative), and the edge cases — empty,
// underflow, overflow, merge — must saturate rather than misreport.
#include "serve/latency_sketch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace copart {
namespace {

// Upper/lower edge ratio of adjacent buckets: the sketch's worst-case
// relative error for in-range values.
const double kBucketRatio =
    std::pow(10.0, 1.0 / LatencySketch::kBucketsPerDecade);

TEST(LatencySketchTest, BucketEdgesAreMonotone) {
  double last = 0.0;
  for (int i = 0; i < LatencySketch::kNumBuckets; ++i) {
    const double edge = LatencySketch::BucketUpperEdge(i);
    ASSERT_GE(edge, last) << "bucket " << i;
    if (i >= 1 && i < LatencySketch::kNumBuckets - 1) {
      ASSERT_GT(edge, last) << "bucket " << i;
    }
    last = edge;
  }
  EXPECT_DOUBLE_EQ(LatencySketch::BucketUpperEdge(0),
                   LatencySketch::kMinLatencySec);
  // 8 decades above 1 us: the table tops out at 100 s.
  EXPECT_NEAR(LatencySketch::BucketUpperEdge(LatencySketch::kNumBuckets - 1),
              100.0, 1e-6);
}

TEST(LatencySketchTest, QuantilesMatchExactPercentilesWithinBucketRatio) {
  // 20k exponential sojourn times with a 2 ms mean — the serve engine's
  // native latency scale. The sketch quantile is the upper edge of the
  // bucket holding the rank-ceil(q*n) sample, so it must lie in
  // (exact, exact * ratio].
  Rng rng(42);
  LatencySketch sketch;
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double value = rng.NextExponential(0.002);
    samples.push_back(value);
    sketch.Record(value);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(samples.size()))));
    const double exact = samples[rank - 1];
    const double approx = sketch.Quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact * kBucketRatio * (1.0 + 1e-12)) << "q=" << q;
  }
}

TEST(LatencySketchTest, MergeEqualsRecordingEverything) {
  Rng rng(7);
  LatencySketch combined, a, b;
  for (int i = 0; i < 5000; ++i) {
    const double value = rng.NextExponential(0.01);
    combined.Record(value);
    (i % 2 == 0 ? a : b).Record(value);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencySketchTest, EmptySketchReportsZero) {
  LatencySketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.Quantile(1.0), 0.0);
}

TEST(LatencySketchTest, UnderflowSaturatesAtMinLatency) {
  LatencySketch sketch;
  sketch.Record(1e-9);
  sketch.Record(0.0);
  sketch.Record(-1.0);  // Negative latencies count as 0 (underflow).
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), LatencySketch::kMinLatencySec);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), LatencySketch::kMinLatencySec);
}

TEST(LatencySketchTest, OverflowSaturatesAtLargestEdge) {
  LatencySketch sketch;
  sketch.Record(1e6);  // Way beyond the 100 s table.
  EXPECT_EQ(sketch.overflow(), 1u);
  EXPECT_DOUBLE_EQ(
      sketch.Quantile(1.0),
      LatencySketch::BucketUpperEdge(LatencySketch::kNumBuckets - 1));
}

TEST(LatencySketchTest, ClearResetsEverything) {
  LatencySketch sketch;
  sketch.Record(0.5);
  sketch.Clear();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.Quantile(0.95), 0.0);
}

}  // namespace
}  // namespace copart
