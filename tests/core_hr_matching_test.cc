// The Hospitals/Residents allocation step (paper Algorithm 2).
#include "core/hr_matching.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace copart {
namespace {

ResourcePool FullPool() {
  return ResourcePool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
}

MatchAppInfo App(double slowdown, ResourceClass llc, ResourceClass mba) {
  return MatchAppInfo{.slowdown = slowdown, .llc_class = llc,
                      .mba_class = mba};
}

TEST(HrMatchingTest, SimpleLlcTransfer) {
  const SystemState state = SystemState::EqualShare(FullPool(), 2);
  // App 0 supplies LLC, app 1 demands it.
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kSupply, ResourceClass::kMaintain),
      App(2.0, ResourceClass::kDemand, ResourceClass::kMaintain)};
  Rng rng(1);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  EXPECT_EQ(result.next_state.allocation(0).llc_ways,
            state.allocation(0).llc_ways - 1);
  EXPECT_EQ(result.next_state.allocation(1).llc_ways,
            state.allocation(1).llc_ways + 1);
  ASSERT_EQ(result.transfers.size(), 1u);
  EXPECT_TRUE(result.transfers[0].is_llc);
  EXPECT_EQ(result.transfers[0].producer, 0u);
  EXPECT_EQ(result.transfers[0].consumer, 1u);
}

TEST(HrMatchingTest, SimpleMbaTransfer) {
  SystemState state = SystemState::EqualShare(FullPool(), 2);
  state.allocation(1).mba_level = MbaLevel::FromPercentChecked(50);
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kMaintain, ResourceClass::kSupply),
      App(2.0, ResourceClass::kMaintain, ResourceClass::kDemand)};
  Rng rng(1);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  EXPECT_EQ(result.next_state.allocation(0).mba_level.percent(), 90u);
  EXPECT_EQ(result.next_state.allocation(1).mba_level.percent(), 60u);
}

TEST(HrMatchingTest, NoProducersNoChange) {
  const SystemState state = SystemState::EqualShare(FullPool(), 3);
  const std::vector<MatchAppInfo> apps = {
      App(3.0, ResourceClass::kDemand, ResourceClass::kDemand),
      App(2.0, ResourceClass::kDemand, ResourceClass::kMaintain),
      App(1.5, ResourceClass::kMaintain, ResourceClass::kMaintain)};
  Rng rng(2);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  EXPECT_EQ(result.next_state, state);
  EXPECT_TRUE(result.transfers.empty());
}

TEST(HrMatchingTest, NoConsumersNoChange) {
  const SystemState state = SystemState::EqualShare(FullPool(), 2);
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kSupply, ResourceClass::kSupply),
      App(1.1, ResourceClass::kMaintain, ResourceClass::kMaintain)};
  Rng rng(3);
  EXPECT_EQ(GetNextSystemState(state, apps, rng).next_state, state);
}

TEST(HrMatchingTest, OversubscribedResourceFavorsHighestSlowdown) {
  // One LLC producer, two LLC demanders: the slower app must win.
  const SystemState state = SystemState::EqualShare(FullPool(), 3);
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kSupply, ResourceClass::kMaintain),
      App(1.5, ResourceClass::kDemand, ResourceClass::kMaintain),
      App(3.0, ResourceClass::kDemand, ResourceClass::kMaintain)};
  Rng rng(4);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  EXPECT_EQ(result.next_state.allocation(2).llc_ways,
            state.allocation(2).llc_ways + 1);
  EXPECT_EQ(result.next_state.allocation(1).llc_ways,
            state.allocation(1).llc_ways);
}

TEST(HrMatchingTest, ReclaimFavorsLowestSlowdownProducer) {
  const SystemState state = SystemState::EqualShare(FullPool(), 3);
  const std::vector<MatchAppInfo> apps = {
      App(1.2, ResourceClass::kSupply, ResourceClass::kMaintain),
      App(1.0, ResourceClass::kSupply, ResourceClass::kMaintain),
      App(3.0, ResourceClass::kDemand, ResourceClass::kMaintain)};
  Rng rng(5);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  // The least-slowed producer (app 1) gives up the way.
  EXPECT_EQ(result.next_state.allocation(1).llc_ways,
            state.allocation(1).llc_ways - 1);
  EXPECT_EQ(result.next_state.allocation(0).llc_ways,
            state.allocation(0).llc_ways);
}

TEST(HrMatchingTest, DisplacedConsumerFallsBackToAnyProducer) {
  // One LLC-only producer, one ANY producer, two LLC demanders: both get a
  // way — the displaced one through the ANY hospital.
  const SystemState state = SystemState::EqualShare(FullPool(), 4);
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kSupply, ResourceClass::kMaintain),
      App(1.1, ResourceClass::kSupply, ResourceClass::kSupply),
      App(2.0, ResourceClass::kDemand, ResourceClass::kMaintain),
      App(3.0, ResourceClass::kDemand, ResourceClass::kMaintain)};
  Rng rng(6);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  EXPECT_EQ(result.next_state.allocation(2).llc_ways,
            state.allocation(2).llc_ways + 1);
  EXPECT_EQ(result.next_state.allocation(3).llc_ways,
            state.allocation(3).llc_ways + 1);
  EXPECT_EQ(result.transfers.size(), 2u);
}

TEST(HrMatchingTest, ProducerAtFloorIsNotEligible) {
  // An app in Supply with only 1 way cannot give a way; at MBA 10 it cannot
  // give bandwidth.
  std::vector<AppAllocation> allocations(2);
  allocations[0] = {.llc_ways = 1,
                    .mba_level = MbaLevel::FromPercentChecked(10)};
  allocations[1] = {.llc_ways = 10,
                    .mba_level = MbaLevel::FromPercentChecked(100)};
  const SystemState state(FullPool(), allocations);
  ASSERT_TRUE(state.Valid());
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kSupply, ResourceClass::kSupply),
      App(2.0, ResourceClass::kDemand, ResourceClass::kDemand)};
  Rng rng(7);
  EXPECT_EQ(GetNextSystemState(state, apps, rng).next_state, state);
}

TEST(HrMatchingTest, ConsumerAtMbaCeilingCannotTakeMba) {
  const SystemState state = SystemState::EqualShare(FullPool(), 2);
  // App 1 demands MBA but is already at 100%.
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kMaintain, ResourceClass::kSupply),
      App(2.0, ResourceClass::kMaintain, ResourceClass::kDemand)};
  Rng rng(8);
  EXPECT_EQ(GetNextSystemState(state, apps, rng).next_state, state);
}

TEST(HrMatchingTest, LlcGateBlocksLlcMoves) {
  const SystemState state = SystemState::EqualShare(FullPool(), 2);
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kSupply, ResourceClass::kMaintain),
      App(2.0, ResourceClass::kDemand, ResourceClass::kMaintain)};
  Rng rng(9);
  EXPECT_EQ(GetNextSystemState(state, apps, rng, /*enable_llc=*/false,
                               /*enable_mba=*/true)
                .next_state,
            state);
}

TEST(HrMatchingTest, MbaGateBlocksMbaMoves) {
  SystemState state = SystemState::EqualShare(FullPool(), 2);
  state.allocation(1).mba_level = MbaLevel::FromPercentChecked(50);
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kMaintain, ResourceClass::kSupply),
      App(2.0, ResourceClass::kMaintain, ResourceClass::kDemand)};
  Rng rng(10);
  EXPECT_EQ(GetNextSystemState(state, apps, rng, /*enable_llc=*/true,
                               /*enable_mba=*/false)
                .next_state,
            state);
}

TEST(HrMatchingTest, AnyDemanderTakesWhateverIsAvailable) {
  SystemState state = SystemState::EqualShare(FullPool(), 2);
  state.allocation(1).mba_level = MbaLevel::FromPercentChecked(40);
  // App 1 demands both; app 0 supplies only MBA.
  const std::vector<MatchAppInfo> apps = {
      App(1.0, ResourceClass::kMaintain, ResourceClass::kSupply),
      App(2.0, ResourceClass::kDemand, ResourceClass::kDemand)};
  Rng rng(11);
  const MatchResult result = GetNextSystemState(state, apps, rng);
  EXPECT_EQ(result.next_state.allocation(1).mba_level.percent(), 50u);
  EXPECT_EQ(result.next_state.allocation(0).mba_level.percent(), 90u);
}

// Stability property (the HR guarantee): in the resulting match there is
// no "blocking pair" — no unserved consumer with a strictly higher
// slowdown than some served consumer of a resource type it also asked for.
TEST(HrMatchingStabilityTest, NoBlockingPairs) {
  Rng rng(4242);
  const ResourceClass classes[] = {ResourceClass::kSupply,
                                   ResourceClass::kMaintain,
                                   ResourceClass::kDemand};
  for (int round = 0; round < 400; ++round) {
    const size_t n = 3 + rng.NextUint64(4);
    SystemState state = SystemState::EqualShare(FullPool(), n);
    for (int move = 0; move < 6; ++move) {
      state = state.RandomNeighbor(rng, true, true);
    }
    std::vector<MatchAppInfo> apps(n);
    for (MatchAppInfo& app : apps) {
      app.slowdown = 1.0 + rng.NextDouble() * 3.0;
      app.llc_class = classes[rng.NextUint64(3)];
      app.mba_class = classes[rng.NextUint64(3)];
    }
    const MatchResult result = GetNextSystemState(state, apps, rng);

    // Served = received a transfer of the type they demanded.
    std::vector<bool> served_llc(n, false), served_mba(n, false);
    for (const ResourceTransfer& transfer : result.transfers) {
      (transfer.is_llc ? served_llc : served_mba)[transfer.consumer] = true;
    }
    for (size_t loser = 0; loser < n; ++loser) {
      // An eligible LLC demander that went unserved entirely...
      const bool wanted_llc =
          apps[loser].llc_class == ResourceClass::kDemand;
      const bool wanted_mba =
          apps[loser].mba_class == ResourceClass::kDemand &&
          state.allocation(loser).mba_level.percent() + MbaLevel::kStep <=
              state.pool().max_mba_percent;
      if (!wanted_llc && !wanted_mba) {
        continue;
      }
      if (served_llc[loser] || served_mba[loser]) {
        continue;
      }
      // ...must not be strictly slower than a served consumer that
      // demanded a subset of the loser's demanded types.
      for (size_t winner = 0; winner < n; ++winner) {
        if (winner == loser) {
          continue;
        }
        const bool winner_served_within_losers_demands =
            (served_llc[winner] && wanted_llc) ||
            (served_mba[winner] && wanted_mba);
        if (winner_served_within_losers_demands) {
          EXPECT_LE(apps[loser].slowdown, apps[winner].slowdown + 1e-12)
              << "blocking pair: loser " << loser << " (slowdown "
              << apps[loser].slowdown << ") vs winner " << winner
              << " (slowdown " << apps[winner].slowdown << ")";
        }
      }
    }
  }
}

// Property sweep: for random classification vectors, the matcher always
// yields a valid state, conserves total ways, moves MBA levels only in
// matched producer/consumer pairs, and never moves a gated resource.
class HrMatchingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HrMatchingPropertyTest, InvariantsUnderRandomInputs) {
  Rng rng(GetParam());
  const ResourceClass classes[] = {ResourceClass::kSupply,
                                   ResourceClass::kMaintain,
                                   ResourceClass::kDemand};
  for (int round = 0; round < 300; ++round) {
    const size_t n = 2 + rng.NextUint64(5);  // 2..6 apps.
    SystemState state = SystemState::EqualShare(FullPool(), n);
    // Randomize the starting allocation with a few neighbor moves.
    for (int move = 0; move < 8; ++move) {
      state = state.RandomNeighbor(rng, true, true);
    }
    std::vector<MatchAppInfo> apps(n);
    for (MatchAppInfo& app : apps) {
      app.slowdown = 1.0 + rng.NextDouble() * 3.0;
      app.llc_class = classes[rng.NextUint64(3)];
      app.mba_class = classes[rng.NextUint64(3)];
    }
    const bool enable_llc = rng.NextBool(0.8);
    const bool enable_mba = rng.NextBool(0.8);
    const MatchResult result =
        GetNextSystemState(state, apps, rng, enable_llc, enable_mba);
    ASSERT_TRUE(result.next_state.Valid()) << result.next_state.ToString();

    uint32_t ways_before = 0, ways_after = 0;
    for (size_t i = 0; i < n; ++i) {
      ways_before += state.allocation(i).llc_ways;
      ways_after += result.next_state.allocation(i).llc_ways;
      const auto& before = state.allocation(i);
      const auto& after = result.next_state.allocation(i);
      if (!enable_llc) {
        EXPECT_EQ(before.llc_ways, after.llc_ways);
      }
      if (!enable_mba) {
        EXPECT_EQ(before.mba_level, after.mba_level);
      }
      // A way recipient must have demanded LLC; a way donor must have
      // supplied it. (Maintain apps are never touched.)
      if (after.llc_ways > before.llc_ways) {
        EXPECT_EQ(apps[i].llc_class, ResourceClass::kDemand);
      }
      if (after.llc_ways < before.llc_ways) {
        EXPECT_EQ(apps[i].llc_class, ResourceClass::kSupply);
      }
      if (after.mba_level > before.mba_level) {
        EXPECT_EQ(apps[i].mba_class, ResourceClass::kDemand);
      }
      if (after.mba_level < before.mba_level) {
        EXPECT_EQ(apps[i].mba_class, ResourceClass::kSupply);
      }
    }
    EXPECT_EQ(ways_before, ways_after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HrMatchingPropertyTest,
                         ::testing::Values(21, 42, 63, 84, 105));

}  // namespace
}  // namespace copart
