// Multi-phase workloads: phase programs, machine-side scaling, and the
// controller's drift-triggered re-adaptation (paper §5.4.3).
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/resource_manager.h"
#include "machine/simulated_machine.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

TEST(WorkloadPhaseTest, EmptyProgramIsIdentity) {
  const WorkloadDescriptor d = Cg();
  const WorkloadPhase phase = d.PhaseAt(123.4);
  EXPECT_DOUBLE_EQ(phase.access_intensity_scale, 1.0);
  EXPECT_DOUBLE_EQ(phase.streaming_scale, 1.0);
  EXPECT_DOUBLE_EQ(phase.cpi_exec_scale, 1.0);
}

TEST(WorkloadPhaseTest, ProgramCycles) {
  const WorkloadDescriptor d = PhasedScanCompute(10.0);
  ASSERT_EQ(d.phases.size(), 2u);
  // Phase A for t in [0,10), phase B for [10,20), then wrap.
  EXPECT_DOUBLE_EQ(d.PhaseAt(0.0).streaming_scale, 1.0);
  EXPECT_DOUBLE_EQ(d.PhaseAt(9.9).streaming_scale, 1.0);
  EXPECT_GT(d.PhaseAt(10.1).streaming_scale, 1.0);
  EXPECT_GT(d.PhaseAt(19.9).streaming_scale, 1.0);
  EXPECT_DOUBLE_EQ(d.PhaseAt(20.1).streaming_scale, 1.0);
  EXPECT_GT(d.PhaseAt(31.0).streaming_scale, 1.0);
  // Negative times clamp to the first phase.
  EXPECT_DOUBLE_EQ(d.PhaseAt(-5.0).streaming_scale, 1.0);
}

TEST(WorkloadPhaseTest, MachineAppliesPhaseScaling) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  Result<AppId> app = machine.LaunchApp(PhasedScanCompute(10.0), 4);
  ASSERT_TRUE(app.ok());

  machine.AdvanceTime(5.0);  // Mid phase A.
  const AppEpochSnapshot compute_phase = machine.LastEpoch(*app);
  machine.AdvanceTime(10.0);  // t = 15: mid phase B (scan).
  const AppEpochSnapshot scan_phase = machine.LastEpoch(*app);

  // The scan phase misses more, pulls more bandwidth, and runs slower.
  EXPECT_GT(scan_phase.miss_ratio, compute_phase.miss_ratio * 2.0);
  EXPECT_GT(scan_phase.bandwidth_demand_bytes_per_sec,
            compute_phase.bandwidth_demand_bytes_per_sec * 2.0);
  EXPECT_LT(scan_phase.ips, compute_phase.ips);

  machine.AdvanceTime(10.0);  // t = 25: back in phase A.
  EXPECT_NEAR(machine.LastEpoch(*app).ips, compute_phase.ips,
              compute_phase.ips * 1e-9);
}

TEST(WorkloadPhaseTest, PhaseClockStartsAtLaunch) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  machine.AdvanceTime(7.0);  // Machine time is not app time.
  Result<AppId> app = machine.LaunchApp(PhasedScanCompute(10.0), 4);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(5.0);  // App-relative t = 5: still phase A.
  const double phase_a_miss = machine.LastEpoch(*app).miss_ratio;
  machine.AdvanceTime(10.0);  // App-relative t = 15: phase B.
  EXPECT_GT(machine.LastEpoch(*app).miss_ratio, phase_a_miss * 2.0);
}

TEST(WorkloadPhaseTest, StreamingScaleIsCappedByResidualWeight) {
  // A profile with components summing to 0.9 and stream 0.05: even a 100x
  // phase scale must keep total weight <= 1 (stream capped at 0.1).
  WorkloadDescriptor d;
  d.name = "capped";
  d.reuse_profile = ReuseProfile({{0.90, MiB(4)}}, 0.05);
  d.accesses_per_instr = 0.01;
  d.phases = {WorkloadPhase{.duration_sec = 1.0, .streaming_scale = 100.0}};
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  Result<AppId> app = machine.LaunchApp(d, 4);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(0.5);  // Must not CHECK-fail in ReuseProfile.
  EXPECT_LE(machine.LastEpoch(*app).miss_ratio, 1.0);
}

TEST(WorkloadPhaseTest, MemcachedPhasedRotationDegradesCapability) {
  const WorkloadDescriptor d = MemcachedPhased(15.0);
  ASSERT_EQ(d.phases.size(), 2u);
  // LC identity (service-demand parameters) survives the phase program.
  EXPECT_EQ(d.category, WorkloadCategory::kLatencyCritical);
  EXPECT_GT(d.instructions_per_request, 0.0);
  EXPECT_GT(d.slo_p95_ms, 0.0);

  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  Result<AppId> app = machine.LaunchApp(d, 8);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(7.0);  // Mid steady phase.
  const AppEpochSnapshot steady = machine.LastEpoch(*app);
  machine.AdvanceTime(15.0);  // t = 22: mid hot-set rotation.
  const AppEpochSnapshot rotation = machine.LastEpoch(*app);
  // The rotation phase misses more and retires fewer instructions — the
  // capability dip the phase-blind analytic model cannot see.
  EXPECT_GT(rotation.miss_ratio, steady.miss_ratio * 2.0);
  EXPECT_LT(rotation.ips, steady.ips * 0.9);
}

TEST(WorkloadPhaseTest, CorrelatedPairSharesOnePhaseClock) {
  const CorrelatedPair pair = CorrelatedLcBatchPair(10.0);
  ASSERT_EQ(pair.lc.phases.size(), 2u);
  ASSERT_EQ(pair.batch.phases.size(), 2u);
  EXPECT_EQ(pair.lc.category, WorkloadCategory::kLatencyCritical);
  EXPECT_EQ(pair.batch.category, WorkloadCategory::kBatch);
  // Aligned programs: both halves flip phase at the same boundaries, and
  // the batch scan fires exactly when the LC rotation fires.
  for (double t : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0}) {
    EXPECT_EQ(pair.lc.PhaseIndexAt(t), pair.batch.PhaseIndexAt(t)) << t;
  }
  // Heavy phases coincide: both put more pressure on the memory system.
  EXPECT_GT(pair.lc.PhaseAt(15.0).streaming_scale,
            pair.lc.PhaseAt(5.0).streaming_scale);
  EXPECT_GT(pair.batch.PhaseAt(15.0).streaming_scale,
            pair.batch.PhaseAt(5.0).streaming_scale);
}

TEST(WorkloadPhaseTest, CorrelatedPairPressureCoincidesOnMachine) {
  const CorrelatedPair pair = CorrelatedLcBatchPair(10.0);
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  Result<AppId> lc = machine.LaunchApp(pair.lc, 8);
  Result<AppId> batch = machine.LaunchApp(pair.batch, 4);
  ASSERT_TRUE(lc.ok());
  ASSERT_TRUE(batch.ok());
  machine.AdvanceTime(5.0);  // Quiet phase for both.
  const double lc_quiet_bw =
      machine.LastEpoch(*lc).bandwidth_demand_bytes_per_sec;
  const double batch_quiet_bw =
      machine.LastEpoch(*batch).bandwidth_demand_bytes_per_sec;
  machine.AdvanceTime(10.0);  // t = 15: heavy phase for both.
  EXPECT_GT(machine.LastEpoch(*lc).bandwidth_demand_bytes_per_sec,
            lc_quiet_bw * 1.5);
  EXPECT_GT(machine.LastEpoch(*batch).bandwidth_demand_bytes_per_sec,
            batch_quiet_bw * 1.5);
}

TEST(WorkloadPhaseTest, ManagerReAdaptsOnPhaseChange) {
  // A phased app shares the machine with a steady app. After CoPart settles
  // in idle during the compute phase, the switch to the scan phase drifts
  // the IPS past the idle threshold and must trigger re-adaptation.
  MachineConfig config;
  config.ips_noise_sigma = 0.005;
  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  // Long phases so the controller fully converges inside one phase.
  Result<AppId> phased = machine.LaunchApp(PhasedScanCompute(60.0), 4);
  Result<AppId> steady = machine.LaunchApp(WaterNsquared(), 4);
  ASSERT_TRUE(phased.ok());
  ASSERT_TRUE(steady.ok());

  ResourceManagerParams params;
  ResourceManager manager(&resctrl, &monitor, params);
  ASSERT_TRUE(manager.AddApp(*phased).ok());
  ASSERT_TRUE(manager.AddApp(*steady).ok());

  // Converge within phase A (60 s of 0.5 s periods = phase A entirely).
  auto run = [&](int periods) {
    for (int i = 0; i < periods; ++i) {
      machine.AdvanceTime(params.control_period_sec);
      manager.Tick();
    }
  };
  run(100);  // t = 50 s, still phase A.
  ASSERT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  const uint64_t adaptations_before = manager.adaptations_started();

  run(40);  // Crosses into phase B at t = 60 s.
  EXPECT_GT(manager.adaptations_started(), adaptations_before)
      << "phase change did not re-trigger adaptation";
}

}  // namespace
}  // namespace copart
