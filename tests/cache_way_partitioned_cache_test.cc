// Unit and property tests of the trace-driven way-partitioned LLC — the
// CAT semantics the whole reproduction rests on.
#include "cache/way_partitioned_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"

namespace copart {
namespace {

LlcGeometry SmallGeometry() {
  // 8 sets x 4 ways x 64B = 2 KiB: small enough to reason about exactly.
  return LlcGeometry{.total_bytes = 2048, .num_ways = 4, .line_bytes = 64};
}

TEST(GeometryTest, XeonDefaultsMatchTable1) {
  const LlcGeometry geometry = XeonGold6130Llc();
  EXPECT_EQ(geometry.total_bytes, MiB(22));
  EXPECT_EQ(geometry.num_ways, 11u);
  EXPECT_EQ(geometry.WayBytes(), MiB(2));
  EXPECT_EQ(geometry.NumSets(), MiB(22) / (11 * 64));
}

TEST(GeometryTest, CapacityForWays) {
  const LlcGeometry geometry = XeonGold6130Llc();
  EXPECT_EQ(geometry.CapacityForWays(0), 0u);
  EXPECT_EQ(geometry.CapacityForWays(1), MiB(2));
  EXPECT_EQ(geometry.CapacityForWays(11), MiB(22));
}

TEST(CacheTest, ColdMissThenHit) {
  WayPartitionedCache cache(SmallGeometry(), 1);
  EXPECT_FALSE(cache.Access(0, 0x1000));
  EXPECT_TRUE(cache.Access(0, 0x1000));
  EXPECT_TRUE(cache.Access(0, 0x1000 + 63));  // Same line.
  EXPECT_FALSE(cache.Access(0, 0x1000 + 64 * 8));  // Same set, new tag.
  EXPECT_EQ(cache.stats(0).accesses, 4u);
  EXPECT_EQ(cache.stats(0).hits, 2u);
  EXPECT_EQ(cache.stats(0).misses, 2u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  WayPartitionedCache cache(SmallGeometry(), 1);
  const uint64_t set_stride = 8 * 64;  // 8 sets.
  // Fill all 4 ways of set 0.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.Access(0, i * set_stride));
  }
  // Touch line 0 so line 1 becomes LRU, then insert a 5th line.
  EXPECT_TRUE(cache.Access(0, 0));
  EXPECT_FALSE(cache.Access(0, 4 * set_stride));
  // Line 1 must be the victim; the others survive.
  EXPECT_TRUE(cache.Access(0, 0));
  EXPECT_FALSE(cache.Access(0, 1 * set_stride));
  EXPECT_EQ(cache.stats(0).evictions, 2u);
}

TEST(CacheTest, FillRestrictedToOwnedWays) {
  WayPartitionedCache cache(SmallGeometry(), 2);
  cache.SetMask(0, WayMask::Contiguous(0, 2));
  cache.SetMask(1, WayMask::Contiguous(2, 2));
  const uint64_t set_stride = 8 * 64;
  // CLOS 0 streams 8 lines through set 0: with only 2 ways it keeps at most
  // 2 resident lines.
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Access(0, i * set_stride);
  }
  EXPECT_EQ(cache.OccupancyLines(0), 2u);
  EXPECT_EQ(cache.OccupancyLines(1), 0u);
}

TEST(CacheTest, PartitionIsolation) {
  // An app with a dedicated partition is completely unaffected by a
  // streaming co-runner in a disjoint partition — the core CAT guarantee.
  WayPartitionedCache cache(SmallGeometry(), 2);
  cache.SetMask(0, WayMask::Contiguous(0, 2));
  cache.SetMask(1, WayMask::Contiguous(2, 2));
  const uint64_t set_stride = 8 * 64;

  // CLOS 0 warms two lines per set.
  for (uint64_t set = 0; set < 8; ++set) {
    cache.Access(0, set * 64);
    cache.Access(0, set * 64 + set_stride);
  }
  // CLOS 1 streams heavily over everything.
  for (uint64_t i = 0; i < 10000; ++i) {
    cache.Access(1, GiB(1) + i * 64);
  }
  // CLOS 0's lines all still hit.
  cache.ResetStats();
  for (uint64_t set = 0; set < 8; ++set) {
    EXPECT_TRUE(cache.Access(0, set * 64));
    EXPECT_TRUE(cache.Access(0, set * 64 + set_stride));
  }
  EXPECT_EQ(cache.stats(0).misses, 0u);
}

TEST(CacheTest, HitsAllowedOutsideOwnMask) {
  // CAT constrains fills, not lookups: after a mask shrink, lines cached in
  // now-foreign ways still hit.
  WayPartitionedCache cache(SmallGeometry(), 1);
  cache.SetMask(0, WayMask::Contiguous(0, 4));
  cache.Access(0, 0);  // May fill any way.
  cache.SetMask(0, WayMask::Contiguous(3, 1));
  EXPECT_TRUE(cache.Access(0, 0));
}

TEST(CacheTest, OverlappingMasksShareWays) {
  WayPartitionedCache cache(SmallGeometry(), 2);
  cache.SetMask(0, WayMask::Contiguous(0, 3));
  cache.SetMask(1, WayMask::Contiguous(2, 2));  // Way 2 shared.
  const uint64_t set_stride = 8 * 64;
  // Both CLOSes can allocate; combined occupancy never exceeds 4 ways/set.
  for (uint64_t i = 0; i < 16; ++i) {
    cache.Access(0, i * set_stride);
    cache.Access(1, GiB(2) + i * set_stride);
  }
  EXPECT_LE(cache.OccupancyLines(0) + cache.OccupancyLines(1), 4u);
  EXPECT_GT(cache.OccupancyLines(1), 0u);
}

TEST(CacheTest, EmptyMaskMissesBypass) {
  WayPartitionedCache cache(SmallGeometry(), 1);
  cache.SetMask(0, WayMask());
  EXPECT_FALSE(cache.Access(0, 0));
  EXPECT_FALSE(cache.Access(0, 0));  // Still a miss: nothing allocated.
  EXPECT_EQ(cache.OccupancyLines(0), 0u);
}

TEST(CacheTest, ResetStatsClearsCountsNotContents) {
  WayPartitionedCache cache(SmallGeometry(), 1);
  cache.Access(0, 0);
  cache.ResetStats();
  EXPECT_EQ(cache.stats(0).accesses, 0u);
  EXPECT_TRUE(cache.Access(0, 0));  // Line survived the stats reset.
}

// Property: hits + misses == accesses for every CLOS under random traffic.
class CacheAccountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheAccountingTest, CountsAreConsistent) {
  WayPartitionedCache cache(SmallGeometry(), 3);
  cache.SetMask(0, WayMask::Contiguous(0, 2));
  cache.SetMask(1, WayMask::Contiguous(1, 2));
  cache.SetMask(2, WayMask::Contiguous(3, 1));
  Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    const uint32_t clos = static_cast<uint32_t>(rng.NextUint64(3));
    cache.Access(clos, rng.NextUint64(KiB(64)));
  }
  uint64_t total_occupancy = 0;
  for (uint32_t clos = 0; clos < 3; ++clos) {
    const CacheClosStats& stats = cache.stats(clos);
    EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
    EXPECT_LE(stats.evictions, stats.misses);
    total_occupancy += cache.OccupancyLines(clos);
  }
  // Occupancy can never exceed the cache's line count.
  EXPECT_LE(total_occupancy, SmallGeometry().NumSets() * 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheAccountingTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

// Property: steady-state hit ratio of uniform-random traffic over working
// set W with capacity C approximates min(1, C/W) — the closed form the
// analytic MRC uses.
class CacheHitRatioTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CacheHitRatioTest, UniformTrafficHitRatioMatchesCapacityFraction) {
  const uint32_t ways = GetParam();
  // 64 sets x 4 ways: capacity = ways * 64 lines.
  LlcGeometry geometry{
      .total_bytes = 64 * 4 * 64, .num_ways = 4, .line_bytes = 64};
  WayPartitionedCache cache(geometry, 1);
  cache.SetMask(0, WayMask::Contiguous(0, ways));
  const uint64_t working_set_lines = 512;  // 2x the full cache.
  Rng rng(99);
  // Warm up, then measure.
  for (int i = 0; i < 50000; ++i) {
    cache.Access(0, rng.NextUint64(working_set_lines) * 64);
  }
  cache.ResetStats();
  for (int i = 0; i < 200000; ++i) {
    cache.Access(0, rng.NextUint64(working_set_lines) * 64);
  }
  const double capacity_lines = 64.0 * ways;
  const double expected_hit = capacity_lines / working_set_lines;
  const double measured_hit = 1.0 - cache.stats(0).MissRatio();
  EXPECT_NEAR(measured_hit, expected_hit, 0.05)
      << "ways=" << ways;
}

INSTANTIATE_TEST_SUITE_P(WayCounts, CacheHitRatioTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace copart
