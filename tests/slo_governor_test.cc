// SLO governor registry + implementations (src/slo). Covers the registry
// contract, the threshold walk invariants the extraction preserved, the
// MPC correction learning, and the bandit's deterministic exploration.
#include "slo/slo_governor.h"

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "serve/queue_model.h"
#include "slo/bandit_governor.h"
#include "slo/mpc_governor.h"
#include "slo/threshold_governor.h"

namespace copart {
namespace {

// Linear-in-ways capability: 1 way serves 1000 rps worth of IPS.
LcAppModel LinearModel() {
  LcAppModel model;
  model.slo_p95_ms = 5.0;
  model.instructions_per_request = 1000.0;
  model.capability_ips = [](uint32_t ways) { return 1e6 * ways; };
  return model;
}

SloParams DefaultParams() {
  SloParams params;
  params.enabled = true;
  params.lc_way_floor = 2;
  return params;
}

TEST(SloGovernorRegistryTest, RegisteredNamesConstructEveryGovernor) {
  const auto& names = RegisteredSloGovernorNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "threshold");
  EXPECT_EQ(names[1], "mpc");
  EXPECT_EQ(names[2], "bandit");
  for (const std::string& name : names) {
    std::unique_ptr<SloGovernor> governor =
        MakeSloGovernor(name, DefaultParams(), LinearModel());
    ASSERT_NE(governor, nullptr) << name;
    EXPECT_EQ(governor->name(), name) << name;
  }
}

TEST(SloGovernorRegistryTest, UnknownNameDies) {
  EXPECT_DEATH(MakeSloGovernor("nope", DefaultParams(), LinearModel()),
               "unknown SLO governor");
}

TEST(SloGovernorRegistryTest, EveryGovernorHonorsTheWayFloor) {
  for (const std::string& name : RegisteredSloGovernorNames()) {
    SloParams params = DefaultParams();
    params.lc_way_floor = 3;
    std::unique_ptr<SloGovernor> governor =
        MakeSloGovernor(name, params, LinearModel());
    // Trivial load: the floor still binds.
    const SloDecision wide = governor->Plan(1.0, 10, 0, 100);
    EXPECT_GE(wide.lc_ways, 3u) << name;
    // max_ways below the floor: the effective floor is max_ways.
    const SloDecision narrow = governor->Plan(1.0, 2, 0, 100);
    EXPECT_GE(narrow.lc_ways, 1u) << name;
    EXPECT_LE(narrow.lc_ways, 2u) << name;
  }
}

TEST(SloGovernorRegistryTest, EveryGovernorIsDeterministicPerHistory) {
  for (const std::string& name : RegisteredSloGovernorNames()) {
    auto run = [&name]() {
      std::unique_ptr<SloGovernor> governor =
          MakeSloGovernor(name, DefaultParams(), LinearModel());
      std::string log;
      for (int i = 0; i < 50; ++i) {
        const double offered = 500.0 + 137.0 * (i % 7);
        const SloDecision d = governor->Plan(offered, 12, i == 0 ? 0 : 4, 100);
        SloOutcome outcome;
        outcome.offered_rps = offered;
        outcome.lc_ways = d.lc_ways;
        outcome.batch_mba_percent = d.batch_mba_percent;
        outcome.measured_p95_ms = (i % 5 == 0) ? 9.0 : 1.0;
        outcome.stalled = i % 11 == 0;
        outcome.phase_index = static_cast<size_t>(i % 3);
        governor->ObserveOutcome(outcome);
        log += std::to_string(d.lc_ways) + "," +
               std::to_string(d.batch_mba_percent) + ";";
      }
      return log;
    };
    EXPECT_EQ(run(), run()) << name;
  }
}

TEST(ThresholdGovernorTest, PicksSmallestWidthMeetingSloWithHeadroom) {
  ThresholdSloGovernor governor(DefaultParams(), LinearModel());
  // 1 way serves 1000 rps. At 500 rps offered the floor width (2 ways ->
  // 2000 rps service) gives p95 = -ln(.05)/1500 s ~ 2ms <= 5/1.25 = 4ms.
  const SloDecision d = governor.Plan(500.0, 10, 0, 100);
  EXPECT_EQ(d.lc_ways, 2u);
  EXPECT_TRUE(d.attainable);
  EXPECT_DOUBLE_EQ(d.predicted_p95_ms, PredictedP95Ms(500.0, 2000.0));
  EXPECT_EQ(d.batch_mba_percent, 100u);
}

TEST(ThresholdGovernorTest, UnattainableTakesMaxWaysAndCapsBatchMba) {
  ThresholdSloGovernor governor(DefaultParams(), LinearModel());
  // 50 krps offered but 4 ways serve at most 4000 rps: unattainable.
  const SloDecision d = governor.Plan(50000.0, 4, 0, 100);
  EXPECT_EQ(d.lc_ways, 4u);
  EXPECT_FALSE(d.attainable);
  EXPECT_EQ(d.batch_mba_percent, 50u);  // batch_mba_protect_percent.
}

TEST(ThresholdGovernorTest, ShrinkHysteresisKeepsWidthNearBoundary) {
  SloParams params = DefaultParams();
  params.shrink_load_margin = 1.2;
  ThresholdSloGovernor governor(params, LinearModel());
  // At 3000 rps a fresh plan needs 4 ways (4000-3000 rps of slack gives
  // p95 3ms <= the 4ms target); at 3000*1.2 = 3600 it needs 5 (4 ways
  // leave 400 rps slack -> 7.5ms). Holding 5 ways, a dip to 3000 may
  // shrink only to the guarded width 5 -> keeps 5.
  const SloDecision fresh = governor.Plan(3000.0, 10, 0, 100);
  EXPECT_EQ(fresh.lc_ways, 4u);
  const SloDecision held = governor.Plan(3000.0, 10, 5, 100);
  EXPECT_EQ(held.lc_ways, 5u);
  // A deep dip shrinks: at 300 rps even 1.2x fits the floor width.
  const SloDecision dropped = governor.Plan(300.0, 10, 5, 100);
  EXPECT_EQ(dropped.lc_ways, 2u);
}

TEST(MpcGovernorTest, StartsFromOptimisticPriorThenLearnsCorrection) {
  SloParams params = DefaultParams();
  params.mpc.min_cell_samples = 2;
  MpcSloGovernor governor(params, LinearModel());
  EXPECT_DOUBLE_EQ(governor.CorrectionFor(2, 500.0), 1.0);

  // Feed outcomes where the measured p95 is 3x the analytic prediction.
  const double analytic = PredictedP95Ms(500.0, 2000.0);
  for (int i = 0; i < 20; ++i) {
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = 2;
    outcome.measured_p95_ms = 3.0 * analytic;
    governor.ObserveOutcome(outcome);
  }
  EXPECT_EQ(governor.outcomes_observed(), 20);
  EXPECT_NEAR(governor.CorrectionFor(2, 500.0), 3.0, 1e-6);
  // An unseen width in the same load bucket answers the load marginal.
  EXPECT_NEAR(governor.CorrectionFor(7, 500.0), 3.0, 1e-6);
}

TEST(MpcGovernorTest, LearnedCorrectionWidensThePlan) {
  SloParams params = DefaultParams();
  MpcSloGovernor governor(params, LinearModel());
  const SloDecision before = governor.Plan(500.0, 10, 0, 100);
  EXPECT_EQ(before.lc_ways, 2u);
  // Teach it that p95 at 2 ways/this load runs 3x the analytic value —
  // 3 * 2ms = 6ms > 4ms target, so the corrected walk must widen.
  const double analytic = PredictedP95Ms(500.0, 2000.0);
  for (int i = 0; i < 20; ++i) {
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = 2;
    outcome.measured_p95_ms = 3.0 * analytic;
    governor.ObserveOutcome(outcome);
  }
  const SloDecision after = governor.Plan(500.0, 10, 0, 100);
  EXPECT_GT(after.lc_ways, before.lc_ways);
}

TEST(MpcGovernorTest, StalledOutcomeRecordsMaxCorrection) {
  SloParams params = DefaultParams();
  MpcSloGovernor governor(params, LinearModel());
  for (int i = 0; i < 10; ++i) {
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = 2;
    outcome.measured_p95_ms = 0.0;
    outcome.stalled = true;
    governor.ObserveOutcome(outcome);
  }
  EXPECT_NEAR(governor.CorrectionFor(2, 500.0), params.mpc.max_correction,
              1e-9);
}

TEST(MpcGovernorTest, PredictiveProtectionEngagesOnPessimisticMarginal) {
  SloParams params = DefaultParams();
  params.mpc.protect_correction = 1.5;
  MpcSloGovernor governor(params, LinearModel());
  const double analytic = PredictedP95Ms(500.0, 2000.0);
  // Corrections land at 2.0 > protect_correction, but keep the corrected
  // p95 attainable at wider widths so only the learned signal protects.
  for (int i = 0; i < 10; ++i) {
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = 2;
    outcome.measured_p95_ms = 2.0 * analytic;
    governor.ObserveOutcome(outcome);
  }
  const SloDecision d = governor.Plan(500.0, 10, 0, 100);
  EXPECT_TRUE(d.attainable);
  EXPECT_EQ(d.batch_mba_percent, 50u);
}

TEST(BanditGovernorTest, ExploresArmsInDeclarationOrderThenExploits) {
  SloParams params = DefaultParams();
  BanditSloGovernor governor(params, LinearModel());
  // Same context each period (same load, phase 0): the first four plans
  // walk the arms {0, +1, +2, -1} around the base width 2.
  const uint32_t expected_first_widths[] = {2, 3, 4, 2};  // -1 clamps to floor.
  for (uint32_t expected : expected_first_widths) {
    const SloDecision d = governor.Plan(500.0, 10, 0, 100);
    EXPECT_EQ(d.lc_ways, expected);
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = d.lc_ways;
    outcome.measured_p95_ms = 1.0;  // Meets the 5ms SLO.
    governor.ObserveOutcome(outcome);
  }
  EXPECT_EQ(governor.rewards_observed(), 4);
  // All arms met the SLO; the way_cost shaping prefers the narrowest, so
  // exploitation settles at the base width.
  SloDecision d = governor.Plan(500.0, 10, 0, 100);
  EXPECT_EQ(d.lc_ways, 2u);
}

TEST(BanditGovernorTest, ViolationsSteerTowardWiderArms) {
  SloParams params = DefaultParams();
  params.bandit.exploration_c = 0.1;
  BanditSloGovernor governor(params, LinearModel());
  // Punish every width below 4 ways, reward 4+.
  for (int i = 0; i < 60; ++i) {
    const SloDecision d = governor.Plan(500.0, 10, 0, 100);
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = d.lc_ways;
    outcome.measured_p95_ms = d.lc_ways >= 4 ? 1.0 : 50.0;
    governor.ObserveOutcome(outcome);
  }
  const SloDecision d = governor.Plan(500.0, 10, 0, 100);
  EXPECT_GE(d.lc_ways, 4u);
}

TEST(BanditGovernorTest, PhaseChangeSwitchesContext) {
  SloParams params = DefaultParams();
  BanditSloGovernor governor(params, LinearModel());
  // Converge in phase 0.
  for (int i = 0; i < 20; ++i) {
    const SloDecision d = governor.Plan(500.0, 10, 0, 100);
    SloOutcome outcome;
    outcome.offered_rps = 500.0;
    outcome.lc_ways = d.lc_ways;
    outcome.measured_p95_ms = 1.0;
    outcome.phase_index = 0;
    governor.ObserveOutcome(outcome);
  }
  // First outcome of phase 1 flips the context: the next plan explores
  // the fresh arm table from the first arm again.
  SloOutcome shift;
  shift.offered_rps = 500.0;
  shift.lc_ways = 2;
  shift.measured_p95_ms = 1.0;
  shift.phase_index = 1;
  governor.ObserveOutcome(shift);
  const SloDecision d = governor.Plan(500.0, 10, 0, 100);
  EXPECT_EQ(d.lc_ways, 2u);  // Arm 0 (delta 0) of the unseen context.
}

}  // namespace
}  // namespace copart
