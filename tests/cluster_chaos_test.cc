// Fleet chaos suite (ctest label `chaos`): 200 seeded fault schedules —
// crashes, crash waves, slow nodes, actuation blackouts, overload, live
// migrations with verify/rollback — against the fleet controller's
// robustness invariants:
//
//   - job conservation: submitted == resident + completed + shed + lost,
//     with the per-bucket counters in agreement, on EVERY epoch;
//   - no double admission: a resident job lives on exactly one node, and
//     each alive node's machine runs exactly the fleet's resident jobs
//     plus its quarantined zombies (the census);
//   - LC way floor: every resident latency-critical job on a surviving
//     node holds at least slo.lc_way_floor LLC ways;
//   - determinism: the fleet scenario's metrics are bit-identical across
//     --threads values.
//
// Schedules fan out via the outer ParallelMap; every inner fleet ticks
// with num_threads = 1 (nested parallel regions are forbidden by
// common/parallel), so the suite is deterministic end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "common/fault_injector.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "harness/fleet.h"
#include "obs/obs.h"
#include "workload/workload.h"

namespace copart {
namespace {

constexpr int kSchedules = 200;
constexpr uint64_t kBaseSeed = 0xF1EE7C4A05ULL;

struct ScheduleOutcome {
  uint64_t seed = 0;
  uint64_t invariant_violations = 0;
  std::string first_violation;
  int lc_floor_violations = 0;
  int terminal_state_violations = 0;
  bool ran_epochs = false;
};

ScheduleOutcome RunSchedule(uint64_t seed) {
  ScheduleOutcome outcome;
  outcome.seed = seed;
  Rng rng(seed);

  FleetParams params;
  params.seed = rng.NextUint64();
  params.machine.ips_noise_sigma = 0.005;
  params.manager.slo.enabled = true;
  params.parallel.num_threads = 1;  // Inner fleet: serial (nested region).
  params.crash_recovery_epochs = 3 + static_cast<int>(rng.NextUint64(8));
  params.fault_window_epochs = 4 + static_cast<int>(rng.NextUint64(10));
  params.migrate_trend_window = 3 + static_cast<int>(rng.NextUint64(5));
  params.verify_window_epochs = 2 + static_cast<int>(rng.NextUint64(5));
  params.shed_trend_window = 6 + static_cast<int>(rng.NextUint64(8));
  // A quarter of the schedules squeeze the shed threshold hard enough
  // that overload shedding actually fires.
  if (rng.NextUint64(4) == 0) {
    params.shed_unfairness_threshold = 0.25;
    params.migrate_unfairness_threshold = 0.20;
  }

  FaultInjector injector(rng.NextUint64());
  const auto arm = [&injector](std::string_view point, double probability) {
    FaultSpec spec;
    spec.probability = probability;
    injector.Arm(point, spec);
  };
  arm(fault_points::kNodeCrash,
      0.001 + 0.004 * static_cast<double>(rng.NextUint64(1000)) / 1000.0);
  arm(fault_points::kNodeSlow,
      0.005 * static_cast<double>(rng.NextUint64(1000)) / 1000.0);
  arm(fault_points::kNodeBlackout,
      0.005 * static_cast<double>(rng.NextUint64(1000)) / 1000.0);
  params.injector = &injector;

  const size_t num_nodes = 6 + rng.NextUint64(7);
  FleetController fleet(num_nodes, params);

  const std::vector<WorkloadDescriptor> catalog = AllTable2Benchmarks();
  const int epochs = 50 + static_cast<int>(rng.NextUint64(31));
  const int wave_epoch = 10 + static_cast<int>(rng.NextUint64(20));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // 0-2 arrivals per epoch; ~1 in 6 is latency-critical.
    const uint64_t arrivals = rng.NextUint64(3);
    for (uint64_t a = 0; a < arrivals; ++a) {
      FleetJobSpec spec;
      if (rng.NextUint64(6) == 0) {
        spec.workload = Memcached();
        spec.latency_critical = true;
        spec.offered_rps = 15000.0;
      } else {
        spec.workload = catalog[rng.NextUint64(catalog.size())];
      }
      spec.cores = rng.NextUint64(2) == 0 ? 2 : 4;
      spec.lifetime_epochs = 5 + static_cast<int>(rng.NextUint64(40));
      (void)fleet.Submit(spec);  // Shedding is a legal, accounted outcome.
    }
    // A scripted wave on top of the background crash point.
    if (epoch == wave_epoch) {
      const size_t kills = 1 + rng.NextUint64(num_nodes / 3);
      for (size_t k = 0; k < kills; ++k) {
        fleet.CrashNode(rng.NextUint64(num_nodes));
      }
    }
    fleet.RunEpoch();
    outcome.ran_epochs = true;
  }

  outcome.invariant_violations = fleet.counters().invariant_violations;
  outcome.first_violation = fleet.first_violation();

  for (const FleetJob& job : fleet.jobs()) {
    if (job.state != JobState::kResident) {
      // Terminal jobs must have released their node slot.
      if (job.node != -1) {
        ++outcome.terminal_state_violations;
      }
      continue;
    }
    if (!job.spec.latency_critical) {
      continue;
    }
    // LC floor on surviving nodes: the governor plans at registration and
    // never hands back the floor, wherever the fleet placed the job.
    ClusterNode* node = fleet.node(job.node);
    if (node->managed() &&
        node->manager().LcWays(job.app) < params.manager.slo.lc_way_floor) {
      ++outcome.lc_floor_violations;
    }
  }
  return outcome;
}

TEST(ClusterChaosTest, TwoHundredSeededSchedulesKeepEveryInvariant) {
  ParallelConfig parallel;  // Outer fan-out; inner fleets are serial.
  const std::vector<ScheduleOutcome> outcomes =
      ParallelMap<ScheduleOutcome>(parallel, kSchedules, [&](size_t s) {
        return RunSchedule(kBaseSeed + s);
      });
  ASSERT_EQ(outcomes.size(), static_cast<size_t>(kSchedules));
  for (const ScheduleOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ran_epochs);
    EXPECT_EQ(outcome.invariant_violations, 0u)
        << "seed " << outcome.seed << ": " << outcome.first_violation;
    EXPECT_EQ(outcome.lc_floor_violations, 0) << "seed " << outcome.seed;
    EXPECT_EQ(outcome.terminal_state_violations, 0)
        << "seed " << outcome.seed;
  }
}

TEST(ClusterChaosTest, ScheduleReplaysBitForBitFromItsSeed) {
  // Same seed, two independent runs: byte-identical accounting.
  const ScheduleOutcome a = RunSchedule(kBaseSeed + 17);
  const ScheduleOutcome b = RunSchedule(kBaseSeed + 17);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.first_violation, b.first_violation);
  EXPECT_EQ(a.lc_floor_violations, b.lc_floor_violations);
}

TEST(ClusterChaosTest, FleetMetricsAreBitIdenticalAcrossThreadCounts) {
  auto run = [](uint32_t threads) {
    Observability obs;
    FleetScenarioConfig config;
    config.num_nodes = 24;
    config.epochs = 60;
    config.job_arrivals.base_rate_rps = 4.0;
    config.crash_wave_epoch = 20;
    config.crash_probability = 0.0005;
    config.slow_probability = 0.004;
    config.blackout_probability = 0.004;
    config.parallel.num_threads = threads;
    config.obs = &obs;
    const FleetScenarioResult result = RunFleetScenario(config);
    // Summary + deterministic metrics + the full audit trail: every byte
    // the fleet reports must be independent of the worker count.
    return result.DeterministicSummary() +
           obs.metrics.DumpJson(/*deterministic_only=*/true) +
           obs.audit.ToJson();
  };
  const std::string serial = run(1);
  const std::string threaded = run(4);
  EXPECT_EQ(serial, threaded);
  EXPECT_FALSE(serial.empty());
}

}  // namespace
}  // namespace copart
