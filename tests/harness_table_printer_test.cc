#include "harness/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>

#include "common/logging.h"

namespace copart {
namespace {

// Captures PrintTable/PrintHeatmap output through a tmpfile.
std::string Capture(const std::function<void(std::FILE*)>& body) {
  std::FILE* file = std::tmpfile();
  CHECK_NE(file, nullptr);
  body(file);
  std::fflush(file);
  const long size = std::ftell(file);
  std::string content(static_cast<size_t>(size), '\0');
  std::rewind(file);
  const size_t read = std::fread(content.data(), 1, content.size(), file);
  content.resize(read);
  std::fclose(file);
  return content;
}

TEST(FormatTest, FixedAndScientific) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(3.14159, 0), "3");
  EXPECT_EQ(FormatFixed(-1.5, 1), "-1.5");
  EXPECT_EQ(FormatSci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(FormatSci(0.00123, 1), "1.2e-03");
}

TEST(FormatTest, JoinParen) {
  EXPECT_EQ(JoinParen({5, 3, 2, 1}), "(5,3,2,1)");
  EXPECT_EQ(JoinParen({7}), "(7)");
  EXPECT_EQ(JoinParen({}), "()");
}

TEST(PrintTableTest, AlignsColumns) {
  const std::string out = Capture([](std::FILE* file) {
    PrintTable({"name", "v"}, {{"a", "1.0"}, {"long_name", "2"}}, file);
  });
  // Header, rule, two rows.
  EXPECT_NE(out.find("| name      | v   |"), std::string::npos) << out;
  EXPECT_NE(out.find("| long_name | 2   |"), std::string::npos) << out;
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(PrintTableTest, EmptyRows) {
  const std::string out = Capture([](std::FILE* file) {
    PrintTable({"a", "b"}, {}, file);
  });
  EXPECT_NE(out.find("| a | b |"), std::string::npos);
}

TEST(PrintHeatmapTest, RendersCaptionLabelsAndValues) {
  const std::string out = Capture([](std::FILE* file) {
    PrintHeatmap("caption line", {"r0", "r1"}, {"c0", "c1"},
                 {{1.0, 0.5}, {0.25, 0.126}}, 2, file);
  });
  EXPECT_NE(out.find("caption line"), std::string::npos);
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("c1"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("0.13"), std::string::npos);  // Rounded to precision 2.
}

TEST(PrintTableDeathTest, RowArityMismatchAborts) {
  EXPECT_DEATH(PrintTable({"a", "b"}, {{"only one"}}), "Check failed");
}

}  // namespace
}  // namespace copart
