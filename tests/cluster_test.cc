// Multi-node cluster layer: admission, placement policies, fleet metrics.
#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/fleet.h"
#include "common/fault_injector.h"
#include "harness/fleet.h"
#include "obs/metrics_registry.h"

namespace copart {
namespace {

MachineConfig QuietConfig() {
  MachineConfig config;
  config.ips_noise_sigma = 0.005;
  return config;
}

TEST(ClusterNodeTest, AdmitEvictLifecycle) {
  ClusterNode node("n0", QuietConfig(), {});
  Result<AppId> app = node.Admit(Cg(), 4);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(node.NumJobs(), 1u);
  EXPECT_EQ(node.FreeCores(), 12u);
  EXPECT_EQ(node.ResidentWorkloads().size(), 1u);
  EXPECT_EQ(node.ResidentWorkloads()[0].name, "CG");
  ASSERT_TRUE(node.Evict(*app).ok());
  EXPECT_EQ(node.NumJobs(), 0u);
  EXPECT_EQ(node.FreeCores(), 16u);
}

TEST(ClusterNodeTest, AdmitRollsBackOnManagerFailure) {
  ClusterNode node("n0", QuietConfig(), {});
  // CAT grants at least one way per managed app: the 11-way node accepts
  // 11 jobs, then admission control refuses — without leaking the app the
  // failed admission had already launched.
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(node.Admit(Swaptions(), 1).ok()) << i;
  }
  Result<AppId> overflow = node.Admit(Swaptions(), 1);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(node.NumJobs(), 11u);
  // No orphaned app was left behind by the failed admission.
  EXPECT_EQ(node.machine().ListApps().size(), 11u);
}

TEST(ClusterNodeTest, TickDrivesControllerToConvergence) {
  ClusterNode node("n0", QuietConfig(), {});
  ASSERT_TRUE(node.Admit(WaterNsquared(), 4).ok());
  ASSERT_TRUE(node.Admit(Cg(), 4).ok());
  ASSERT_TRUE(node.Admit(Swaptions(), 4).ok());
  for (int i = 0; i < 120; ++i) {
    node.Tick(0.5);
  }
  EXPECT_EQ(node.manager().phase(), ResourceManager::Phase::kIdle);
  EXPECT_EQ(node.CurrentSlowdowns().size(), 3u);
  EXPECT_GE(node.CurrentUnfairness(), 0.0);
}

TEST(ClusterTest, SubmitRespectsCapacity) {
  Cluster cluster;
  cluster.AddNode("n0", QuietConfig());
  cluster.AddNode("n1", QuietConfig());
  // 8 jobs x 4 cores fill both 16-core nodes.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cluster.Submit(Swaptions(), 4, PlacementPolicy::kFirstFit).ok())
        << i;
  }
  Result<Placement> overflow =
      cluster.Submit(Swaptions(), 4, PlacementPolicy::kFirstFit);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(ClusterTest, FirstFitPacksLeastLoadedSpreads) {
  Cluster cluster;
  ClusterNode* n0 = cluster.AddNode("n0", QuietConfig());
  ClusterNode* n1 = cluster.AddNode("n1", QuietConfig());

  Result<Placement> a =
      cluster.Submit(Swaptions(), 4, PlacementPolicy::kFirstFit);
  Result<Placement> b =
      cluster.Submit(Swaptions(), 4, PlacementPolicy::kFirstFit);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->node, n0);
  EXPECT_EQ(b->node, n0);  // First fit keeps packing node 0.

  Result<Placement> c =
      cluster.Submit(Swaptions(), 4, PlacementPolicy::kLeastLoaded);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->node, n1);  // Least loaded spreads to the empty node.
}

TEST(ClusterTest, WhatIfPlacementAvoidsCacheContention) {
  Cluster cluster;
  ClusterNode* n0 = cluster.AddNode("n0", QuietConfig());
  ClusterNode* n1 = cluster.AddNode("n1", QuietConfig());
  // Seed node 0 with a cache-hungry job and node 1 with an insensitive one
  // (same core load on both).
  ASSERT_TRUE(n0->Admit(Sp(), 4).ok());
  ASSERT_TRUE(n1->Admit(Swaptions(), 4).ok());
  // A second cache-hungry job: the what-if model must route it AWAY from
  // the node already full of cache pressure.
  Result<Placement> placed =
      cluster.Submit(WaterNsquared(), 4, PlacementPolicy::kWhatIfBest);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed->node, n1);
}

TEST(ClusterTest, FleetMetricsAggregate) {
  Cluster cluster;
  cluster.AddNode("n0", QuietConfig());
  cluster.AddNode("n1", QuietConfig());
  ASSERT_TRUE(
      cluster.Submit(WaterNsquared(), 4, PlacementPolicy::kLeastLoaded).ok());
  ASSERT_TRUE(
      cluster.Submit(Cg(), 4, PlacementPolicy::kLeastLoaded).ok());
  ASSERT_TRUE(
      cluster.Submit(Sp(), 4, PlacementPolicy::kLeastLoaded).ok());
  ASSERT_TRUE(
      cluster.Submit(Swaptions(), 4, PlacementPolicy::kLeastLoaded).ok());
  cluster.Tick(0.5);
  EXPECT_EQ(cluster.AllSlowdowns().size(), 4u);
  EXPECT_GE(cluster.MeanNodeUnfairness(), 0.0);
}

TEST(ClusterTest, ExportMetricsPublishesPlacementAndFairnessCounters) {
  Cluster cluster;
  cluster.AddNode("n0", QuietConfig());
  cluster.AddNode("n1", QuietConfig());
  ASSERT_TRUE(
      cluster.Submit(WaterNsquared(), 4, PlacementPolicy::kFirstFit).ok());
  ASSERT_TRUE(cluster.Submit(Cg(), 4, PlacementPolicy::kLeastLoaded).ok());
  ASSERT_TRUE(cluster.Submit(Sp(), 4, PlacementPolicy::kLeastLoaded).ok());
  ASSERT_TRUE(
      cluster.Submit(Swaptions(), 4, PlacementPolicy::kWhatIfBest).ok());
  // Sixteen cores can no longer be free on either node: guaranteed reject.
  EXPECT_FALSE(cluster.Submit(Ep(), 16, PlacementPolicy::kFirstFit).ok());

  EXPECT_EQ(cluster.placements(PlacementPolicy::kFirstFit), 1u);
  EXPECT_EQ(cluster.placements(PlacementPolicy::kLeastLoaded), 2u);
  EXPECT_EQ(cluster.placements(PlacementPolicy::kWhatIfBest), 1u);
  EXPECT_EQ(cluster.placements_rejected(), 1u);

  for (int i = 0; i < 10; ++i) {
    cluster.Tick(0.5);
  }
  MetricsRegistry metrics;
  cluster.ExportMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("copart.cluster.placements.first-fit")->value(),
            1u);
  EXPECT_EQ(
      metrics.GetCounter("copart.cluster.placements.least-loaded")->value(),
      2u);
  EXPECT_EQ(
      metrics.GetCounter("copart.cluster.placements.what-if-best")->value(),
      1u);
  EXPECT_EQ(metrics.GetCounter("copart.cluster.placements.rejected")->value(),
            1u);
  EXPECT_EQ(metrics.GetGauge("copart.cluster.n0.jobs")->value() +
                metrics.GetGauge("copart.cluster.n1.jobs")->value(),
            4.0);
  EXPECT_EQ(metrics.GetGauge("copart.cluster.n0.free_cores")->value() +
                metrics.GetGauge("copart.cluster.n1.free_cores")->value(),
            16.0);
  EXPECT_GE(metrics.GetGauge("copart.cluster.mean_unfairness")->value(), 0.0);
  EXPECT_GE(metrics.GetGauge("copart.cluster.n0.unfairness")->value(), 0.0);
  // Null registry: a no-op, not a crash.
  cluster.ExportMetrics(nullptr);
}

TEST(ClusterNodeTest, EvictUnknownAppReturnsNotFound) {
  ClusterNode node("n0", QuietConfig(), {});
  const Status evicted = node.Evict(AppId{424242});
  EXPECT_EQ(evicted.code(), StatusCode::kNotFound);
}

TEST(ClusterNodeTest, UnmanagedNodeAdmitsAndEvicts) {
  ClusterNode node("n0", QuietConfig(), {}, /*manage=*/false);
  Result<AppId> app = node.Admit(Cg(), 4);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(node.NumJobs(), 1u);
  ASSERT_TRUE(node.Evict(*app).ok());
  EXPECT_EQ(node.NumJobs(), 0u);
  EXPECT_EQ(node.Evict(*app).code(), StatusCode::kNotFound);
}

TEST(ClusterNodeTest, AdmitRollbackQuarantinesWhenTerminateFails) {
  FaultInjector injector(7);
  FaultSpec always;
  always.probability = 1.0;
  injector.Arm(fault_points::kClusterAdmitRollback, always);
  MachineConfig config = QuietConfig();
  config.fault_injector = &injector;
  ClusterNode node("n0", config, {});
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(node.Admit(Swaptions(), 1).ok()) << i;
  }
  Result<AppId> overflow = node.Admit(Swaptions(), 1);
  ASSERT_FALSE(overflow.ok());
  // The caller sees the ORIGINAL admission error, not the terminate
  // failure the rollback swallowed.
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  // The unkillable app is quarantined, still squatting on the machine,
  // and the manager never accepted it.
  ASSERT_EQ(node.quarantined_apps().size(), 1u);
  EXPECT_EQ(node.machine().ListApps().size(), 12u);
  EXPECT_EQ(node.NumJobs(), 11u);
}

FleetParams QuietFleetParams() {
  FleetParams params;
  params.machine = QuietConfig();
  params.parallel.num_threads = 1;
  return params;
}

FleetJobSpec BatchJob(const WorkloadDescriptor& workload, uint32_t cores,
                      int lifetime_epochs = 0) {
  FleetJobSpec spec;
  spec.workload = workload;
  spec.cores = cores;
  spec.lifetime_epochs = lifetime_epochs;
  return spec;
}

TEST(FleetTest, JobsRunToCompletionAndConservationHolds) {
  FleetController fleet(4, QuietFleetParams());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fleet.Submit(BatchJob(Swaptions(), 2, 10)).ok()) << i;
  }
  EXPECT_EQ(fleet.ResidentJobs(), 8u);
  for (int e = 0; e < 30; ++e) {
    fleet.RunEpoch();
  }
  EXPECT_EQ(fleet.counters().completed, 8u);
  EXPECT_EQ(fleet.ResidentJobs(), 0u);
  EXPECT_EQ(fleet.counters().invariant_violations, 0u);
  EXPECT_TRUE(fleet.first_violation().empty()) << fleet.first_violation();
  // All four nodes ticked every epoch.
  EXPECT_EQ(fleet.node_ticks(), 30u * 4u);
}

TEST(FleetTest, AdmissionControlShedsAtTheUtilizationCeiling) {
  FleetController fleet(1, QuietFleetParams());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fleet.Submit(BatchJob(Swaptions(), 4)).ok()) << i;
  }
  // 16/16 cores used >= the 95% ceiling: the front door sheds.
  Result<FleetJobId> shed = fleet.Submit(BatchJob(Swaptions(), 4));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fleet.counters().shed_admission, 1u);
  fleet.RunEpoch();
  EXPECT_EQ(fleet.counters().invariant_violations, 0u);
}

TEST(FleetTest, CrashLosesResidentsAndRebootsEmpty) {
  FleetParams params = QuietFleetParams();
  params.crash_recovery_epochs = 3;
  FleetController fleet(2, params);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fleet.Submit(BatchJob(Swaptions(), 2)).ok()) << i;
  }
  size_t on_node0 = 0;
  for (const FleetJob& job : fleet.jobs()) {
    on_node0 += job.node == 0 ? 1 : 0;
  }
  ASSERT_GT(on_node0, 0u);
  fleet.CrashNode(0);
  EXPECT_EQ(fleet.counters().crashes, 1u);
  EXPECT_EQ(fleet.counters().lost_to_crash, on_node0);
  EXPECT_EQ(fleet.AliveNodes(), 1u);
  EXPECT_EQ(fleet.ResidentJobs(), 4u - on_node0);
  for (int e = 0; e < 4; ++e) {
    fleet.RunEpoch();
  }
  // Recovered: the node is back, empty, on a fresh incarnation.
  EXPECT_EQ(fleet.AliveNodes(), 2u);
  EXPECT_EQ(fleet.counters().reboots, 1u);
  EXPECT_EQ(fleet.node_status(0).reboots, 1u);
  EXPECT_EQ(fleet.node(0)->NumJobs(), 0u);
  EXPECT_EQ(fleet.counters().invariant_violations, 0u);
}

TEST(FleetTest, LatencyCriticalJobKeepsTheGovernorWayFloor) {
  FleetParams params = QuietFleetParams();
  params.manager.slo.enabled = true;
  FleetController fleet(1, params);
  FleetJobSpec lc;
  lc.workload = Memcached();
  lc.cores = 4;
  lc.latency_critical = true;
  lc.offered_rps = 20000.0;
  Result<FleetJobId> id = fleet.Submit(lc);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fleet.Submit(BatchJob(Cg(), 4)).ok());
  for (int e = 0; e < 20; ++e) {
    fleet.RunEpoch();
  }
  const FleetJob& job = fleet.jobs()[*id];
  ASSERT_EQ(job.state, JobState::kResident);
  EXPECT_GE(fleet.node(0)->manager().LcWays(job.app),
            params.manager.slo.lc_way_floor);
  EXPECT_EQ(fleet.counters().invariant_violations, 0u);
}

TEST(FleetScenarioTest, RobustnessScenarioMigratesRecoversAndConserves) {
  // The copartctl `fleet` demo at 1/4 scale: diurnal arrivals, background
  // faults, one 10% crash wave. Everything notable must occur at least
  // once, and the books must balance on every epoch.
  FleetScenarioConfig config;
  config.num_nodes = 64;
  config.epochs = 120;
  config.job_arrivals.base_rate_rps = 0.15 * 64.0;
  config.crash_wave_epoch = 30;
  config.crash_probability = 0.0002;
  config.slow_probability = 0.002;
  config.blackout_probability = 0.002;
  const FleetScenarioResult result = RunFleetScenario(config);
  EXPECT_EQ(result.counters.invariant_violations, 0u);
  EXPECT_TRUE(result.first_violation.empty()) << result.first_violation;
  EXPECT_GE(result.counters.crashes, 6u);  // The wave alone kills 6.
  EXPECT_GE(result.counters.reboots, 6u);
  EXPECT_GE(result.counters.migrations_completed, 1u);
  EXPECT_GE(result.counters.migration_rollbacks, 1u);
  EXPECT_GE(result.recovery_epochs, 0);
  EXPECT_EQ(result.counters.submitted,
            result.resident_jobs + result.counters.completed +
                result.counters.shed_total() + result.counters.lost_to_crash);
}

TEST(FleetScenarioTest, SummaryIsBitIdenticalAcrossThreadCounts) {
  auto run = [](uint32_t threads) {
    FleetScenarioConfig config;
    config.num_nodes = 16;
    config.epochs = 50;
    config.crash_wave_epoch = 15;
    config.slow_probability = 0.004;
    config.blackout_probability = 0.004;
    config.parallel.num_threads = threads;
    return RunFleetScenario(config).DeterministicSummary();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_FALSE(serial.empty());
}

TEST(ClusterTest, WhatIfBeatsFirstFitOnASkewedArrivalSequence) {
  // Small 2-core jobs so first-fit stacks EIGHT jobs — five of them
  // cache-hungry, with way demand far beyond one node's 11 ways — onto
  // node 0 while node 1 idles with the insensitive tail. Per-node CoPart
  // cannot conjure capacity; placement has to. What-if interleaves the
  // hungry jobs across nodes.
  const std::vector<WorkloadDescriptor> arrivals = {
      WaterNsquared(), WaterSpatial(), Sp(),  OceanNcp(), Raytrace(),
      Swaptions(),     Ep(),           Ep(),  Swaptions(), Ep()};
  auto run = [&](PlacementPolicy policy) {
    Cluster cluster;
    cluster.AddNode("n0", QuietConfig());
    cluster.AddNode("n1", QuietConfig());
    for (const WorkloadDescriptor& workload : arrivals) {
      CHECK(cluster.Submit(workload, 2, policy).ok());
    }
    for (int i = 0; i < 200; ++i) {
      cluster.Tick(0.5);
    }
    double sum = 0.0;
    for (double slowdown : cluster.AllSlowdowns()) {
      sum += slowdown;
    }
    return sum / static_cast<double>(cluster.AllSlowdowns().size());
  };
  const double first_fit_mean = run(PlacementPolicy::kFirstFit);
  const double whatif_mean = run(PlacementPolicy::kWhatIfBest);
  EXPECT_LT(whatif_mean, first_fit_mean)
      << "what-if " << whatif_mean << " vs first-fit " << first_fit_mean;
}

}  // namespace
}  // namespace copart
