// The CoPart resource manager: phase machine, profiling, exploration
// convergence, idle-phase change detection (paper §5.4).
#include "core/resource_manager.h"

#include <gtest/gtest.h>

#include "harness/mix.h"
#include "workload/workload.h"

namespace copart {
namespace {

class ResourceManagerTest : public ::testing::Test {
 protected:
  ResourceManagerTest()
      : machine_(MakeConfig()), resctrl_(&machine_), monitor_(&machine_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.005;
    return config;
  }

  AppId Launch(const WorkloadDescriptor& descriptor, uint32_t cores = 4) {
    Result<AppId> app = machine_.LaunchApp(descriptor, cores);
    CHECK(app.ok());
    return *app;
  }

  // Drives `manager` for `periods` control periods.
  void Run(ResourceManager& manager, int periods) {
    for (int i = 0; i < periods; ++i) {
      machine_.AdvanceTime(manager_params_.control_period_sec);
      manager.Tick();
    }
  }

  ResourceManagerParams manager_params_;
  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
};

TEST_F(ResourceManagerTest, AddAppStartsProfiling) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  ASSERT_TRUE(manager.AddApp(Launch(WaterNsquared())).ok());
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kProfiling);
  EXPECT_EQ(manager.NumApps(), 1u);
}

TEST_F(ResourceManagerTest, RejectsUnknownAndDuplicateApps) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  EXPECT_EQ(manager.AddApp(AppId(123)).code(), StatusCode::kNotFound);
  const AppId app = Launch(Swaptions());
  ASSERT_TRUE(manager.AddApp(app).ok());
  EXPECT_EQ(manager.AddApp(app).code(), StatusCode::kAlreadyExists);
}

TEST_F(ResourceManagerTest, ProfilingTakesThreeProbesPerApp) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  ASSERT_TRUE(manager.AddApp(Launch(WaterNsquared())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(Cg())).ok());
  // AddApp restarts profiling; 2 apps x 3 probes = 6 periods.
  Run(manager, 5);
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kProfiling);
  Run(manager, 1);
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kExploration);
}

TEST_F(ResourceManagerTest, ExplorationConvergesToIdle) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  ASSERT_TRUE(manager.AddApp(Launch(WaterNsquared())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(Cg())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(Swaptions())).ok());
  Run(manager, 120);
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  EXPECT_TRUE(manager.current_state().Valid());
}

TEST_F(ResourceManagerTest, ConvergedStateFavorsTheSensitiveApps) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  const AppId wn = Launch(WaterNsquared());
  const AppId cg = Launch(Cg());
  const AppId sw = Launch(Swaptions());
  ASSERT_TRUE(manager.AddApp(wn).ok());
  ASSERT_TRUE(manager.AddApp(cg).ok());
  ASSERT_TRUE(manager.AddApp(sw).ok());
  Run(manager, 120);
  const SystemState& state = manager.current_state();
  // WN (cache-hungry) ends with more ways than SW (insensitive), which is
  // index 2 in registration order.
  EXPECT_GT(state.allocation(0).llc_ways, state.allocation(2).llc_ways);
  // CG keeps a high MBA level (it demands bandwidth).
  EXPECT_GE(state.allocation(1).mba_level.percent(), 70u);
}

TEST_F(ResourceManagerTest, AppliedStateMatchesResctrlSchemata) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  const AppId wn = Launch(WaterNsquared());
  const AppId sw = Launch(Swaptions());
  ASSERT_TRUE(manager.AddApp(wn).ok());
  ASSERT_TRUE(manager.AddApp(sw).ok());
  Run(manager, 80);
  const SystemState& state = manager.current_state();
  EXPECT_EQ(machine_.ClosWayMask(machine_.AppClos(wn)).bits(),
            state.WayMaskBits(0));
  EXPECT_EQ(machine_.ClosWayMask(machine_.AppClos(sw)).bits(),
            state.WayMaskBits(1));
  EXPECT_EQ(machine_.ClosMbaLevel(machine_.AppClos(wn)),
            state.allocation(0).mba_level);
}

TEST_F(ResourceManagerTest, SlowdownEstimatesTrackProfiledReference) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  const AppId wn = Launch(WaterNsquared());
  const AppId sw = Launch(Swaptions());
  ASSERT_TRUE(manager.AddApp(wn).ok());
  ASSERT_TRUE(manager.AddApp(sw).ok());
  Run(manager, 80);
  EXPECT_GE(manager.SlowdownEstimate(wn), 1.0);
  // The insensitive app runs at full speed regardless of allocation.
  EXPECT_NEAR(manager.SlowdownEstimate(sw), 1.0, 0.05);
}

TEST_F(ResourceManagerTest, PoolChangeTriggersReAdaptation) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  ASSERT_TRUE(manager.AddApp(Launch(WaterNsquared())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(Cg())).ok());
  Run(manager, 120);
  ASSERT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  const uint64_t adaptations = manager.adaptations_started();
  manager.SetResourcePool(
      ResourcePool{.first_way = 4, .num_ways = 7, .max_mba_percent = 50});
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kProfiling);
  EXPECT_EQ(manager.adaptations_started(), adaptations + 1);
  Run(manager, 120);
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  // The converged state must live inside the new pool.
  const SystemState& state = manager.current_state();
  EXPECT_EQ(state.pool().first_way, 4u);
  uint32_t total = 0;
  for (size_t i = 0; i < state.NumApps(); ++i) {
    total += state.allocation(i).llc_ways;
    EXPECT_LE(state.allocation(i).mba_level.percent(), 50u);
    EXPECT_EQ(state.WayMaskBits(i) & 0xF, 0u) << "uses ways outside pool";
  }
  EXPECT_EQ(total, 7u);
}

TEST_F(ResourceManagerTest, TerminationDetectedInIdle) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  const AppId wn = Launch(WaterNsquared());
  const AppId cg = Launch(Cg());
  const AppId sw = Launch(Swaptions());
  ASSERT_TRUE(manager.AddApp(wn).ok());
  ASSERT_TRUE(manager.AddApp(cg).ok());
  ASSERT_TRUE(manager.AddApp(sw).ok());
  Run(manager, 120);
  ASSERT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  // The workload terminates; the manager must notice and re-adapt for the
  // remaining two apps.
  ASSERT_TRUE(manager.RemoveApp(sw).ok());
  ASSERT_TRUE(machine_.TerminateApp(sw).ok());
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kProfiling);
  Run(manager, 120);
  EXPECT_EQ(manager.phase(), ResourceManager::Phase::kIdle);
  EXPECT_EQ(manager.current_state().NumApps(), 2u);
}

TEST_F(ResourceManagerTest, ExplorationOverheadIsMicroseconds) {
  ResourceManager manager(&resctrl_, &monitor_, manager_params_);
  ASSERT_TRUE(manager.AddApp(Launch(Sp())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(OceanNcp())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(Fmm())).ok());
  ASSERT_TRUE(manager.AddApp(Launch(Swaptions())).ok());
  Run(manager, 60);
  ASSERT_GT(manager.exploration_time_stats().count(), 0u);
  EXPECT_LT(manager.exploration_time_stats().mean(), 1000.0);
}

TEST_F(ResourceManagerTest, PhaseNames) {
  EXPECT_STREQ(ResourceManager::PhaseName(ResourceManager::Phase::kProfiling),
               "profiling");
  EXPECT_STREQ(
      ResourceManager::PhaseName(ResourceManager::Phase::kExploration),
      "exploration");
  EXPECT_STREQ(ResourceManager::PhaseName(ResourceManager::Phase::kIdle),
               "idle");
}

}  // namespace
}  // namespace copart
