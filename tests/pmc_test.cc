// PAPI-like counter sampling: deltas, rates, attach/detach discipline.
#include "pmc/perf_monitor.h"

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace copart {
namespace {

class PmcTest : public ::testing::Test {
 protected:
  PmcTest() : machine_(QuietConfig()), monitor_(&machine_) {}

  static MachineConfig QuietConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    return config;
  }

  SimulatedMachine machine_;
  PerfMonitor monitor_;
};

TEST_F(PmcTest, SampleReturnsDeltasSinceAttach) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  machine_.AdvanceTime(1.0);  // Pre-attach activity must be excluded.
  monitor_.Attach(*app);
  machine_.AdvanceTime(0.5);
  const PmcSample sample = monitor_.Sample(*app);
  EXPECT_NEAR(sample.interval_sec, 0.5, 1e-12);
  EXPECT_NEAR(sample.instructions, machine_.Counters(*app).instructions / 3,
              1.0);
}

TEST_F(PmcTest, ConsecutiveSamplesChainWindows) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  monitor_.Attach(*app);
  machine_.AdvanceTime(0.5);
  const PmcSample first = monitor_.Sample(*app);
  machine_.AdvanceTime(0.5);
  const PmcSample second = monitor_.Sample(*app);
  EXPECT_NEAR(first.instructions, second.instructions,
              first.instructions * 1e-9);
  EXPECT_NEAR(first.instructions + second.instructions,
              machine_.Counters(*app).instructions, 1.0);
}

TEST_F(PmcTest, DerivedRates) {
  Result<AppId> app = machine_.LaunchApp(OceanCp(), 4);
  ASSERT_TRUE(app.ok());
  monitor_.Attach(*app);
  machine_.AdvanceTime(2.0);
  const PmcSample sample = monitor_.Sample(*app);
  const AppEpochSnapshot& epoch = machine_.LastEpoch(*app);
  EXPECT_NEAR(sample.Ips(), epoch.ips, epoch.ips * 1e-9);
  EXPECT_NEAR(sample.LlcAccessesPerSec(), epoch.llc_accesses_per_sec, 1.0);
  EXPECT_NEAR(sample.LlcMissesPerSec(), epoch.llc_misses_per_sec, 1.0);
  EXPECT_NEAR(sample.LlcMissRatio(), epoch.miss_ratio, 1e-9);
}

TEST_F(PmcTest, ZeroIntervalSampleIsZero) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  monitor_.Attach(*app);
  const PmcSample sample = monitor_.Sample(*app);
  EXPECT_EQ(sample.interval_sec, 0.0);
  EXPECT_EQ(sample.Ips(), 0.0);
  EXPECT_EQ(sample.LlcMissRatio(), 0.0);
}

TEST_F(PmcTest, ReattachResetsBaseline) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  monitor_.Attach(*app);
  machine_.AdvanceTime(5.0);
  monitor_.Attach(*app);  // Restart the window.
  machine_.AdvanceTime(0.5);
  EXPECT_NEAR(monitor_.Sample(*app).interval_sec, 0.5, 1e-12);
}

TEST_F(PmcTest, AttachedDetach) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  EXPECT_FALSE(monitor_.Attached(*app));
  monitor_.Attach(*app);
  EXPECT_TRUE(monitor_.Attached(*app));
  monitor_.Detach(*app);
  EXPECT_FALSE(monitor_.Attached(*app));
}

TEST_F(PmcTest, SampleOnUnattachedAborts) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  EXPECT_DEATH(monitor_.Sample(*app), "unattached");
}

}  // namespace
}  // namespace copart
