#include "cache/way_mask.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

TEST(WayMaskTest, DefaultIsEmpty) {
  WayMask mask;
  EXPECT_TRUE(mask.Empty());
  EXPECT_EQ(mask.CountWays(), 0u);
}

TEST(WayMaskTest, ContiguousBuildsExpectedBits) {
  EXPECT_EQ(WayMask::Contiguous(0, 3).bits(), 0b111u);
  EXPECT_EQ(WayMask::Contiguous(2, 2).bits(), 0b1100u);
  EXPECT_EQ(WayMask::Contiguous(10, 1).bits(), 1ULL << 10);
}

TEST(WayMaskTest, ContiguousFullWidth) {
  const WayMask mask = WayMask::Contiguous(0, 64);
  EXPECT_EQ(mask.bits(), ~0ULL);
  EXPECT_EQ(mask.CountWays(), 64u);
}

TEST(WayMaskTest, FromBitsAcceptsValidMasks) {
  // The kernel's CAT rules: non-zero, in-range, contiguous.
  for (uint64_t bits : {0x1ULL, 0x7ULL, 0x7FFULL, 0x70ULL, 0x400ULL}) {
    Result<WayMask> mask = WayMask::FromBits(bits, 11);
    ASSERT_TRUE(mask.ok()) << "bits=" << bits;
    EXPECT_EQ(mask->bits(), bits);
  }
}

TEST(WayMaskTest, FromBitsRejectsZero) {
  EXPECT_EQ(WayMask::FromBits(0, 11).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WayMaskTest, FromBitsRejectsOutOfRange) {
  EXPECT_FALSE(WayMask::FromBits(1ULL << 11, 11).ok());
  EXPECT_FALSE(WayMask::FromBits(0xFFFULL, 11).ok());
  EXPECT_TRUE(WayMask::FromBits(0x7FFULL, 11).ok());
}

TEST(WayMaskTest, FromBitsRejectsNonContiguous) {
  for (uint64_t bits : {0b101ULL, 0b1001ULL, 0b1011ULL, 0b1101ULL,
                        0b110011ULL}) {
    EXPECT_FALSE(WayMask::FromBits(bits, 11).ok()) << "bits=" << bits;
  }
}

TEST(WayMaskTest, ContainsAndFirstWay) {
  const WayMask mask = WayMask::Contiguous(3, 4);
  EXPECT_EQ(mask.FirstWay(), 3u);
  EXPECT_FALSE(mask.Contains(2));
  EXPECT_TRUE(mask.Contains(3));
  EXPECT_TRUE(mask.Contains(6));
  EXPECT_FALSE(mask.Contains(7));
}

TEST(WayMaskTest, Overlaps) {
  EXPECT_TRUE(
      WayMask::Contiguous(0, 4).Overlaps(WayMask::Contiguous(3, 2)));
  EXPECT_FALSE(
      WayMask::Contiguous(0, 3).Overlaps(WayMask::Contiguous(3, 2)));
  EXPECT_FALSE(WayMask().Overlaps(WayMask::Contiguous(0, 11)));
}

TEST(WayMaskTest, ToHexMatchesResctrlFormat) {
  EXPECT_EQ(WayMask::Contiguous(0, 11).ToHex(), "7ff");
  EXPECT_EQ(WayMask::Contiguous(0, 4).ToHex(), "f");
  EXPECT_EQ(WayMask::Contiguous(4, 4).ToHex(), "f0");
}

TEST(WayMaskDeathTest, ContiguousRejectsZeroCount) {
  EXPECT_DEATH(WayMask::Contiguous(0, 0), "count");
}

TEST(WayMaskDeathTest, FirstWayOnEmptyAborts) {
  WayMask mask;
  EXPECT_DEATH(mask.FirstWay(), "Empty");
}

// Property sweep: every contiguous (first, count) pair round-trips through
// FromBits validation.
class WayMaskRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(WayMaskRoundTripTest, ContiguousMasksValidate) {
  const auto [first, count] = GetParam();
  if (first + count > 11) {
    GTEST_SKIP() << "outside an 11-way cache";
  }
  const WayMask mask = WayMask::Contiguous(first, count);
  Result<WayMask> validated = WayMask::FromBits(mask.bits(), 11);
  ASSERT_TRUE(validated.ok());
  EXPECT_EQ(*validated, mask);
  EXPECT_EQ(mask.CountWays(), count);
  EXPECT_EQ(mask.FirstWay(), first);
}

INSTANTIATE_TEST_SUITE_P(
    AllPositions, WayMaskRoundTripTest,
    ::testing::Combine(::testing::Range(0u, 11u), ::testing::Range(1u, 12u)));

}  // namespace
}  // namespace copart
