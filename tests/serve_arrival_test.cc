// Arrival generators (src/serve/arrival.h): seed determinism down to the
// exact draw sequence, shape correctness of the rate functions, and the
// statistical sanity of the thinned processes.
#include "serve/arrival.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace copart {
namespace {

// Known-answer pins: the first arrivals of a seeded generator are part of
// the determinism contract (goldens and the serve harness depend on the
// stream layout). If an intentional Rng or thinning change shifts these,
// regenerate the serve goldens too.
TEST(ArrivalGeneratorTest, PoissonKnownAnswerSequence) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.base_rate_rps = 1000.0;
  ArrivalGenerator generator(config, Rng(123));
  const double expected[] = {
      0.0016261042669824923, 0.0023865878554015798, 0.0034719439831913616,
      0.0044449047345042729, 0.0047179842589593433, 0.0051453646101030709,
  };
  for (double value : expected) {
    EXPECT_EQ(generator.Next(), value);
  }
}

TEST(ArrivalGeneratorTest, BurstKnownAnswerSequence) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBurst;
  config.base_rate_rps = 500.0;
  config.burst_phases = {{1.0, 1.0}, {1.0, 4.0}};
  ArrivalGenerator generator(config, Rng(7));
  const double expected[] = {
      0.001670392215931772,  0.0021239257586970371, 0.0044671987317274429,
      0.0056952436669343914, 0.0093810325233945543, 0.010140917074460342,
  };
  for (double value : expected) {
    EXPECT_EQ(generator.Next(), value);
  }
}

TEST(ArrivalGeneratorTest, FlashCrowdKnownAnswerSequence) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kFlashCrowd;
  config.base_rate_rps = 1000.0;
  config.flash_start_sec = 0.002;
  config.flash_duration_sec = 0.004;
  config.flash_multiplier = 4.0;
  ArrivalGenerator generator(config, Rng(17));
  const double expected[] = {
      0.0020190084751718481, 0.0022934571225699707, 0.0028943165008006142,
      0.0029109712008757644, 0.0029337590346401759, 0.0031334837687397011,
  };
  for (double value : expected) {
    EXPECT_EQ(generator.Next(), value);
  }
}

TEST(ArrivalGeneratorTest, SameSeedReplaysIdentically) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kDiurnal;
  config.base_rate_rps = 2000.0;
  config.diurnal_period_sec = 10.0;
  config.diurnal_amplitude = 0.8;
  ArrivalGenerator a(config, Rng(99));
  ArrivalGenerator b(config, Rng(99));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "arrival " << i;
  }
}

TEST(ArrivalGeneratorTest, ForkedStreamsAreIndependent) {
  ArrivalConfig config;
  config.base_rate_rps = 1000.0;
  const Rng root(42);
  ArrivalGenerator a(config, root.Fork(0));
  ArrivalGenerator b(config, root.Fork(1));
  int identical = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++identical;
    }
  }
  EXPECT_EQ(identical, 0);
}

TEST(ArrivalGeneratorTest, ArrivalsStrictlyIncreaseForEveryShape) {
  std::vector<ArrivalConfig> configs(4);
  configs[0].kind = ArrivalKind::kPoisson;
  configs[1].kind = ArrivalKind::kDiurnal;
  configs[1].diurnal_period_sec = 5.0;
  configs[1].diurnal_amplitude = 1.0;
  configs[2].kind = ArrivalKind::kBurst;
  configs[2].burst_phases = {{0.5, 2.0}, {0.5, 0.25}};
  configs[3].kind = ArrivalKind::kFlashCrowd;
  configs[3].flash_start_sec = 0.1;
  configs[3].flash_duration_sec = 0.3;
  configs[3].flash_multiplier = 6.0;
  for (ArrivalConfig& config : configs) {
    config.base_rate_rps = 5000.0;
    ArrivalGenerator generator(config, Rng(7));
    double last = 0.0;
    for (int i = 0; i < 5000; ++i) {
      const double t = generator.Next();
      ASSERT_GT(t, last) << "arrival " << i;
      last = t;
    }
  }
}

TEST(ArrivalGeneratorTest, EmpiricalRateMatchesConfiguredRate) {
  // 100 simulated seconds at 1 krps: the count is Poisson(100000), whose
  // +-5 sigma band is well inside +-2%.
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.base_rate_rps = 1000.0;
  ArrivalGenerator generator(config, Rng(42));
  uint64_t count = 0;
  while (generator.Next() < 100.0) {
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), 100000.0, 2000.0);
}

TEST(ArrivalGeneratorTest, ThinningRealizesBurstPhaseRates) {
  // Phases at 1x and 4x the base rate: the per-phase counts must reflect
  // the 1:4 ratio, not the homogeneous envelope the thinning draws from.
  ArrivalConfig config;
  config.kind = ArrivalKind::kBurst;
  config.base_rate_rps = 1000.0;
  config.burst_phases = {{1.0, 1.0}, {1.0, 4.0}};
  ArrivalGenerator generator(config, Rng(3));
  uint64_t low = 0, high = 0;
  for (;;) {
    const double t = generator.Next();
    if (t >= 100.0) {
      break;
    }
    const double offset = t - 2.0 * std::floor(t / 2.0);
    (offset < 1.0 ? low : high) += 1;
  }
  // 50 cycles: ~50k low-phase and ~200k high-phase arrivals.
  EXPECT_NEAR(static_cast<double>(low), 50000.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(high), 200000.0, 5000.0);
}

TEST(ArrivalGeneratorTest, ThinningRealizesFlashCrowdStep) {
  // 100 simulated seconds, flash window [40, 60) at 4x: ~80k arrivals in
  // the window (20 s * 4 krps) and ~80k outside (80 s * 1 krps).
  ArrivalConfig config;
  config.kind = ArrivalKind::kFlashCrowd;
  config.base_rate_rps = 1000.0;
  config.flash_start_sec = 40.0;
  config.flash_duration_sec = 20.0;
  config.flash_multiplier = 4.0;
  ArrivalGenerator generator(config, Rng(5));
  uint64_t inside = 0, outside = 0;
  for (;;) {
    const double t = generator.Next();
    if (t >= 100.0) {
      break;
    }
    (t >= 40.0 && t < 60.0 ? inside : outside) += 1;
  }
  EXPECT_EQ(inside, 80204u);    // Seed-pinned; ~Poisson(80000).
  EXPECT_EQ(outside, 79941u);
  EXPECT_NEAR(static_cast<double>(inside), 80000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(outside), 80000.0, 2000.0);
}

TEST(ArrivalRateAtTest, FlashCrowdStepsExactlyAtWindowBoundaries) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kFlashCrowd;
  config.base_rate_rps = 200.0;
  config.flash_start_sec = 5.0;
  config.flash_duration_sec = 2.0;
  config.flash_multiplier = 3.0;
  EXPECT_EQ(ArrivalRateAt(config, 0.0), 200.0);
  EXPECT_EQ(ArrivalRateAt(config, 4.999), 200.0);
  EXPECT_EQ(ArrivalRateAt(config, 5.0), 600.0);  // Window start inclusive.
  EXPECT_EQ(ArrivalRateAt(config, 6.999), 600.0);
  EXPECT_EQ(ArrivalRateAt(config, 7.0), 200.0);  // Window end exclusive.
  EXPECT_EQ(ArrivalRateAt(config, 100.0), 200.0);  // One-shot: no cycling.
  ArrivalGenerator generator(config, Rng(1));
  EXPECT_DOUBLE_EQ(generator.PeakRate(), 600.0);
}

TEST(ArrivalRateAtTest, BurstPhasesCycleWithExactBoundaries) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBurst;
  config.base_rate_rps = 100.0;
  config.burst_phases = {{2.0, 1.0}, {3.0, 5.0}};
  EXPECT_EQ(ArrivalRateAt(config, 0.0), 100.0);
  EXPECT_EQ(ArrivalRateAt(config, 1.999), 100.0);
  EXPECT_EQ(ArrivalRateAt(config, 2.0), 500.0);   // Boundary starts phase 2.
  EXPECT_EQ(ArrivalRateAt(config, 4.999), 500.0);
  EXPECT_EQ(ArrivalRateAt(config, 5.0), 100.0);   // Cycle wraps.
  EXPECT_EQ(ArrivalRateAt(config, 7.5), 500.0);
  EXPECT_EQ(ArrivalRateAt(config, -1.0), 500.0);  // Negative t wraps too.
}

TEST(ArrivalRateAtTest, BurstWithoutPhasesFallsBackToBaseRate) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBurst;
  config.base_rate_rps = 250.0;
  EXPECT_EQ(ArrivalRateAt(config, 0.0), 250.0);
  EXPECT_EQ(ArrivalRateAt(config, 123.4), 250.0);
}

TEST(ArrivalRateAtTest, DiurnalClampsAtZeroAndPeaksAtAmplitude) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kDiurnal;
  config.base_rate_rps = 1000.0;
  config.diurnal_period_sec = 4.0;
  config.diurnal_amplitude = 1.0;
  EXPECT_DOUBLE_EQ(ArrivalRateAt(config, 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(config, 1.0), 2000.0);  // Peak at T/4.
  EXPECT_NEAR(ArrivalRateAt(config, 3.0), 0.0, 1e-9);    // Trough at 3T/4.
  for (double t = 0.0; t < 8.0; t += 0.01) {
    ASSERT_GE(ArrivalRateAt(config, t), 0.0) << "t=" << t;
  }
  ArrivalGenerator generator(config, Rng(11));
  EXPECT_DOUBLE_EQ(generator.PeakRate(), 2000.0);
  EXPECT_DOUBLE_EQ(generator.RateAt(1.0), 2000.0);
}

}  // namespace
}  // namespace copart
