// Classification accuracy of realistic sensing vs the exact baseline
// (DESIGN.md §10.4): for every paper mix family the A/B harness runs the
// same consolidation under exact, estimated, and estimated+noisy PMCs and
// scores the per-period classifier decisions. This suite commits the
// thresholds the repo promises:
//
//   - at the default sampling/noise parameters, >= 90% of (period, app,
//     resource) decisions match the exact run, for every mix family;
//   - the noisy controller settles within 2x the exact baseline's epochs,
//     and re-converges after the probe app's phase flip;
//   - across a sampling-rate x noise-level sweep the agreement never falls
//     below a documented floor (sensing degrades gracefully, not off a
//     cliff);
//   - the exact convergence-epoch counts are pinned by a golden file
//     (tests/golden/sensing_convergence_golden.json), regenerable with
//     COPART_REGENERATE_GOLDEN=1 after an intended controller change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/mix.h"
#include "harness/sensing.h"

namespace copart {
namespace {

#ifndef COPART_GOLDEN_DIR
#error "COPART_GOLDEN_DIR must be defined by the build"
#endif

// The committed accuracy floors. kDefaultAgreementFloor is the acceptance
// threshold at default sensing parameters; kSweepAgreementFloor bounds the
// worst cell of the stress sweep (4x sparser sampling, 2.5x the noise).
constexpr double kDefaultAgreementFloor = 0.90;
constexpr double kSweepAgreementFloor = 0.75;

SensingConfig BaseConfig(MixFamily family) {
  SensingConfig config;
  config.family = family;
  config.app_count = 3;
  config.duration_sec = 50.0;
  return config;
}

TEST(ClassifierAccuracyTest, DefaultSensingAgreesAtLeast90PctOnEveryMix) {
  for (const MixFamily family : AllMixFamilies()) {
    const SensingComparison comparison =
        RunSensingComparison(BaseConfig(family));
    EXPECT_EQ(comparison.agreement[0], 1.0) << MixFamilyName(family);
    for (size_t mode = 1; mode < kNumSensingModes; ++mode) {
      EXPECT_GE(comparison.agreement[mode], kDefaultAgreementFloor)
          << MixFamilyName(family) << " mode "
          << SensingModeName(static_cast<SensingMode>(mode));
    }
  }
}

TEST(ClassifierAccuracyTest, NoisySensingConvergesWithinTwiceExactEpochs) {
  for (const MixFamily family : AllMixFamilies()) {
    const SensingComparison comparison =
        RunSensingComparison(BaseConfig(family));
    const int exact_epochs = comparison.epochs_to_converge[0];
    ASSERT_GT(exact_epochs, 0) << MixFamilyName(family);
    for (size_t mode = 1; mode < kNumSensingModes; ++mode) {
      const int epochs = comparison.epochs_to_converge[mode];
      EXPECT_GT(epochs, 0) << MixFamilyName(family);
      EXPECT_LE(epochs, 2 * exact_epochs)
          << MixFamilyName(family) << " mode "
          << SensingModeName(static_cast<SensingMode>(mode));
      // The phase flip re-triggered adaptation and it settled again.
      EXPECT_GT(comparison.reconverge_epochs[mode], 0)
          << MixFamilyName(family);
      EXPECT_LE(comparison.reconverge_epochs[mode],
                2 * comparison.reconverge_epochs[0])
          << MixFamilyName(family);
    }
  }
}

TEST(ClassifierAccuracyTest, SamplingRateTimesNoiseSweepDegradesGracefully) {
  const double rates[] = {1.0 / 16.0, 1.0 / 64.0, 1.0 / 256.0};
  const double sigmas[] = {0.0, 0.02, 0.05};
  for (const double rate : rates) {
    for (const double sigma : sigmas) {
      SensingConfig config = BaseConfig(MixFamily::kHighLlc);
      config.sensing.mrc_sampling_rate = rate;
      config.sensing.noise_sigma = sigma;
      const SensingComparison comparison = RunSensingComparison(config);
      for (size_t mode = 1; mode < kNumSensingModes; ++mode) {
        EXPECT_GE(comparison.agreement[mode], kSweepAgreementFloor)
            << "rate=1/" << 1.0 / rate << " sigma=" << sigma << " mode "
            << SensingModeName(static_cast<SensingMode>(mode));
      }
    }
  }
}

// ---- Convergence-epochs golden ----

std::string GoldenPath() {
  return std::string(COPART_GOLDEN_DIR) + "/sensing_convergence_golden.json";
}

std::string ComputeGoldenDocument() {
  std::ostringstream out;
  out << "{\n  \"sensing_convergence_epochs\": [\n";
  const std::vector<MixFamily> families = AllMixFamilies();
  for (size_t f = 0; f < families.size(); ++f) {
    const SensingComparison comparison =
        RunSensingComparison(BaseConfig(families[f]));
    out << "    {\"mix\": \"" << comparison.mix_name << "\", \"converge\": [";
    for (size_t mode = 0; mode < kNumSensingModes; ++mode) {
      out << (mode == 0 ? "" : ", ") << comparison.epochs_to_converge[mode];
    }
    out << "], \"reconverge\": [";
    for (size_t mode = 0; mode < kNumSensingModes; ++mode) {
      out << (mode == 0 ? "" : ", ") << comparison.reconverge_epochs[mode];
    }
    out << "]}" << (f + 1 == families.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

TEST(ClassifierAccuracyTest, ConvergenceEpochsMatchGoldenFile) {
  const std::string actual = ComputeGoldenDocument();
  const std::string path = GoldenPath();

  if (std::getenv("COPART_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with COPART_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(actual, contents.str())
      << "convergence epochs drifted; if intended, regenerate with "
         "COPART_REGENERATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace copart
