#include "common/status.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad mask");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad mask");
  EXPECT_EQ(status.ToString(), "kInvalidArgument: bad mask");
}

TEST(StatusTest, AllErrorFactoriesSetTheirCode) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  std::unique_ptr<int> owned = std::move(result).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperatorReachesValue) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(InternalError("boom"));
  EXPECT_DEATH((void)result.value(), "Result::value");
}

TEST(ResultDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH(Result<int>{Status::Ok()}, "without a value");
}

Status FailsFast() {
  RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return InternalError("unreachable");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsFast().code(), StatusCode::kInvalidArgument);
}

Status Succeeds() {
  RETURN_IF_ERROR(Status::Ok());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  EXPECT_TRUE(Succeeds().ok());
}

}  // namespace
}  // namespace copart
