// Policy conformance suite: every registered partition policy, driven
// through the real ResourceManager against the simulated machine, must
// uphold the driver/policy contract of core/partition_policy.h:
//
//   - the consolidation never uses more CLOSes than ResourceManagerParams::
//     max_clos (the default group plus max_clos - 1 others),
//   - every actuated way mask is non-empty and contiguous (the CAT rule),
//   - every actuated MBA level is legal (10..100, step 10),
//   - every managed app is mapped to exactly one slot of the current state,
//   - the run is a deterministic function of the seed,
//   - the A/B harness built on top serializes bit-identically for every
//     thread count (the common/parallel.h determinism contract).
//
// Parameterized over RegisteredPartitionPolicyNames() so a newly registered
// policy is conformance-checked by construction.
#include <bit>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/partition_policy.h"
#include "core/resource_manager.h"
#include "harness/mix.h"
#include "harness/policy_ab.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

bool ContiguousMask(uint64_t mask) {
  if (mask == 0) {
    return false;
  }
  const uint64_t shifted = mask >> std::countr_zero(mask);
  return (shifted & (shifted + 1)) == 0;
}

struct DriveResult {
  SystemState final_state;
  std::vector<uint32_t> final_slots;
  std::vector<uint32_t> final_clos;  // Actuated CLOS per app, final period.
};

class PolicyConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr int kPeriods = 120;
  static constexpr double kPeriodSec = 0.5;

  static ResourceManagerParams MakeParams(const std::string& policy) {
    ResourceManagerParams params;
    params.partition_policy = policy;
    params.seed = 0xC04F04ULL;
    return params;
  }

  // Drives one consolidation (the H-Both paper mix at 6 apps) under the
  // policy and asserts the per-period invariants; returns the endpoint for
  // determinism comparison.
  DriveResult Drive(const std::string& policy) {
    MachineConfig machine_config;
    machine_config.num_cores = 16;
    machine_config.seed = 0x5EED0001ULL;
    SimulatedMachine machine(machine_config);
    Resctrl resctrl(&machine);
    PerfMonitor monitor(&machine);
    const ResourceManagerParams params = MakeParams(policy);
    ResourceManager manager(&resctrl, &monitor, params);

    const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 6);
    std::vector<AppId> apps;
    for (const WorkloadDescriptor& descriptor : mix.apps) {
      Result<AppId> app = machine.LaunchApp(descriptor, 2);
      CHECK(app.ok());
      CHECK(manager.AddApp(*app).ok());
      apps.push_back(*app);
    }

    DriveResult result;
    for (int period = 0; period < kPeriods; ++period) {
      machine.AdvanceTime(kPeriodSec);
      manager.Tick();
      CheckInvariants(machine, manager, apps, params, policy, period);
    }
    result.final_state = manager.current_state();
    result.final_slots = manager.app_slots();
    for (AppId app : apps) {
      result.final_clos.push_back(machine.AppClos(app));
    }
    return result;
  }

  static void CheckInvariants(const SimulatedMachine& machine,
                              const ResourceManager& manager,
                              const std::vector<AppId>& apps,
                              const ResourceManagerParams& params,
                              const std::string& policy, int period) {
    const SystemState& state = manager.current_state();
    ASSERT_TRUE(state.Valid()) << policy << " period " << period;

    // Slot map: sized for the consolidation, every app in exactly one
    // in-range slot.
    const std::vector<uint32_t>& slots = manager.app_slots();
    ASSERT_EQ(slots.size(), apps.size()) << policy << " period " << period;
    for (size_t i = 0; i < slots.size(); ++i) {
      ASSERT_LT(slots[i], state.NumApps())
          << policy << " period " << period << " app " << i;
    }

    // Planned slots: masks contiguous, MBA levels legal.
    for (size_t slot = 0; slot < state.NumApps(); ++slot) {
      ASSERT_TRUE(ContiguousMask(state.WayMaskBits(slot)))
          << policy << " period " << period << " slot " << slot;
      const uint32_t percent = state.allocation(slot).mba_level.percent();
      ASSERT_GE(percent, 10u) << policy << " period " << period;
      ASSERT_LE(percent, 100u) << policy << " period " << period;
      ASSERT_EQ(percent % 10, 0u) << policy << " period " << period;
    }

    // Actuated surface: the CLOS each app actually runs in holds a
    // non-empty contiguous mask, and the consolidation fits the CLOS
    // budget (the default group plus max_clos - 1 policy groups).
    std::set<uint32_t> used;
    for (AppId app : apps) {
      ASSERT_TRUE(machine.AppExists(app)) << policy << " period " << period;
      const uint32_t clos = machine.AppClos(app);
      used.insert(clos);
      ASSERT_TRUE(ContiguousMask(machine.ClosWayMask(clos).bits()))
          << policy << " period " << period << " clos " << clos;
    }
    ASSERT_LE(used.size(), static_cast<size_t>(params.max_clos))
        << policy << " period " << period;
  }
};

TEST_P(PolicyConformanceTest, InvariantsHoldOverTheWholeRun) {
  Drive(GetParam());
}

TEST_P(PolicyConformanceTest, RunIsDeterministicPerSeed) {
  const DriveResult a = Drive(GetParam());
  const DriveResult b = Drive(GetParam());
  EXPECT_TRUE(a.final_state == b.final_state);
  EXPECT_EQ(a.final_slots, b.final_slots);
  EXPECT_EQ(a.final_clos, b.final_clos);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredPolicies, PolicyConformanceTest,
    ::testing::ValuesIn(RegisteredPartitionPolicyNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '+') {
          c = 'P';  // "lfoc+" -> "lfocP": test names must be identifiers.
        }
      }
      return name;
    });

// The harness built on the policies inherits their determinism: the
// serialized A/B document is bit-identical for every thread count.
TEST(PolicyAbDeterminismTest, JsonIsThreadCountInvariant) {
  PolicyAbConfig config;
  config.paper_mix_app_count = 4;
  config.many_apps = 12;
  config.duration_sec = 5.0;

  config.parallel = ParallelConfig{.num_threads = 1};
  const std::string serial = PolicyAbToJson(RunPolicyAb(config));
  config.parallel = ParallelConfig{.num_threads = 4};
  const std::string threaded = PolicyAbToJson(RunPolicyAb(config));
  EXPECT_EQ(serial, threaded);

  // And the reduced document still covers every registered policy.
  for (const std::string& policy : RegisteredPartitionPolicyNames()) {
    EXPECT_NE(serial.find("\"policy\": \"" + policy + "\""),
              std::string::npos)
        << policy;
  }
}

}  // namespace
}  // namespace copart
