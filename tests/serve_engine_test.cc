// LcServer (src/serve/serve_engine.h): the conservation invariant
// (arrivals == completions + drops + queue depth) after every epoch —
// including overload, zero-capability stalls, and capability steps — plus
// seed determinism of the whole event loop.
#include "serve/serve_engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace copart {
namespace {

void ExpectConservation(const LcServer& server) {
  EXPECT_EQ(server.total_arrivals(), server.total_completions() +
                                         server.total_drops() +
                                         server.queue_depth());
}

TEST(LcServerTest, ConservationHoldsInSteadyState) {
  LcServerConfig config;
  config.arrival.base_rate_rps = 10000.0;
  config.instructions_per_request = 60000.0;
  LcServer server(config, Rng(42));
  // mu = 1.2e9 / 60000 = 20 krps: stable at rho = 0.5.
  for (int epoch = 0; epoch < 100; ++epoch) {
    const EpochServeStats stats = server.AdvanceEpoch(0.1, 1.2e9);
    ExpectConservation(server);
    EXPECT_DOUBLE_EQ(stats.offered_rps,
                     static_cast<double>(stats.arrivals) / 0.1);
  }
  EXPECT_GT(server.total_completions(), 90000u);
  EXPECT_EQ(server.total_drops(), 0u);
  EXPECT_GT(server.cumulative_latency().count(), 0u);
}

TEST(LcServerTest, ConservationHoldsUnderOverloadWithDrops) {
  // A 64-slot queue at 4x overload: the tail must drop, and every dropped
  // request must still be accounted for.
  LcServerConfig config;
  config.arrival.base_rate_rps = 80000.0;
  config.instructions_per_request = 60000.0;
  config.queue_capacity = 64;
  LcServer server(config, Rng(7));
  for (int epoch = 0; epoch < 50; ++epoch) {
    server.AdvanceEpoch(0.1, 1.2e9);  // mu = 20 krps << offered 80 krps.
    ExpectConservation(server);
  }
  EXPECT_GT(server.total_drops(), 0u);
  EXPECT_LE(server.queue_depth(), 64u);
  // The overloaded queue's sojourn times pile up near the high buckets.
  EXPECT_GT(server.cumulative_latency().Quantile(0.95), 1e-4);
}

TEST(LcServerTest, ZeroCapabilityStallsServiceButQueuesArrivals) {
  LcServerConfig config;
  config.arrival.base_rate_rps = 1000.0;
  LcServer server(config, Rng(42));
  for (int epoch = 0; epoch < 10; ++epoch) {
    const EpochServeStats stats = server.AdvanceEpoch(0.1, 0.0);
    EXPECT_EQ(stats.completions, 0u);
    ExpectConservation(server);
  }
  EXPECT_EQ(server.total_completions(), 0u);
  EXPECT_GT(server.queue_depth(), 0u);
  // Service resumes: the backlog drains and conservation still holds.
  const uint64_t backlog = server.queue_depth();
  for (int epoch = 0; epoch < 20; ++epoch) {
    server.AdvanceEpoch(0.1, 1.2e9);
    ExpectConservation(server);
  }
  EXPECT_GT(server.total_completions(), backlog);
  EXPECT_LT(server.queue_depth(), backlog);
}

TEST(LcServerTest, SameSeedIsBitIdentical) {
  LcServerConfig config;
  config.arrival.kind = ArrivalKind::kBurst;
  config.arrival.base_rate_rps = 20000.0;
  config.arrival.burst_phases = {{1.0, 1.0}, {1.0, 3.0}};
  LcServer a(config, Rng(123));
  LcServer b(config, Rng(123));
  for (int epoch = 0; epoch < 60; ++epoch) {
    // A capability schedule with a step keeps the event interleaving
    // non-trivial.
    const double capability = epoch < 30 ? 1.2e9 : 3.6e9;
    const EpochServeStats sa = a.AdvanceEpoch(0.1, capability);
    const EpochServeStats sb = b.AdvanceEpoch(0.1, capability);
    ASSERT_EQ(sa.arrivals, sb.arrivals) << "epoch " << epoch;
    ASSERT_EQ(sa.completions, sb.completions) << "epoch " << epoch;
    ASSERT_EQ(sa.drops, sb.drops) << "epoch " << epoch;
    ASSERT_EQ(sa.p95_ms, sb.p95_ms) << "epoch " << epoch;
  }
  EXPECT_EQ(a.total_arrivals(), b.total_arrivals());
  EXPECT_EQ(a.cumulative_latency().Quantile(0.99),
            b.cumulative_latency().Quantile(0.99));
}

TEST(LcServerTest, CapabilityStepMovesTheTail) {
  // Same arrival stream, twice: the run that gets a mid-run capability
  // boost must complete more and end with lower tail latency — the lever
  // the SLO governor pulls when it widens the LC slice.
  auto run = [](bool boost) {
    LcServerConfig config;
    config.arrival.base_rate_rps = 18000.0;
    LcServer server(config, Rng(5));
    for (int epoch = 0; epoch < 100; ++epoch) {
      const double capability =
          (boost && epoch >= 50) ? 3.6e9 : 1.2e9;  // mu: 20 -> 60 krps.
      server.AdvanceEpoch(0.1, capability);
    }
    return server;
  };
  const LcServer steady = run(false);
  const LcServer boosted = run(true);
  EXPECT_EQ(steady.total_arrivals(), boosted.total_arrivals());
  EXPECT_GE(boosted.total_completions(), steady.total_completions());
  EXPECT_LT(boosted.cumulative_latency().Quantile(0.95),
            steady.cumulative_latency().Quantile(0.95));
}

}  // namespace
}  // namespace copart
