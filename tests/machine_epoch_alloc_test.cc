// The epoch kernel must be allocation-free in steady state: AdvanceTime on a
// warmed-up machine may not touch the heap, whatever the app count or MRC
// mode. This pins the perf work in simulated_machine.cc (member scratch
// buffers, cached EffectiveParams, ArbitrateInto) against regressions that
// would silently reintroduce per-epoch malloc traffic.
//
// Counting is done by overriding the global operator new/delete. gtest
// itself allocates between tests, so the counter is only consulted inside
// tight windows around AdvanceTime calls.
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine_config.h"
#include "machine/simulated_machine.h"
#include "membw/mba.h"
#include "workload/workload.h"

namespace {

std::atomic<long> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace copart {
namespace {

long AllocationsDuringEpochs(SimulatedMachine& machine, int epochs) {
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < epochs; ++i) {
    machine.AdvanceTime(0.5);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// Parameterized over (MRC mode, incremental fast path on/off): the zero-
// allocation property must hold whether steady epochs replay the cached
// fixed point or re-solve in full every tick.
class MachineEpochAllocTest
    : public ::testing::TestWithParam<std::tuple<MrcMode, bool>> {
 protected:
  MachineConfig Config() const {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    config.mrc_mode = std::get<0>(GetParam());
    config.incremental_epochs = std::get<1>(GetParam());
    return config;
  }
};

TEST_P(MachineEpochAllocTest, SteadyStateEpochsDoNotAllocate) {
  const MachineConfig config = Config();
  SimulatedMachine machine(config);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < 6; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    ASSERT_TRUE(app.ok());
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  // Warm up: size the scratch buffers, build the compiled tables, populate
  // the EffectiveParams cache.
  for (int i = 0; i < 16; ++i) {
    machine.AdvanceTime(0.5);
  }
  EXPECT_EQ(AllocationsDuringEpochs(machine, 200), 0)
      << "AdvanceTime allocated on the steady-state path";
}

// Partitioning churn (MBA moves every epoch, way-mask moves periodically)
// must also stay off the heap: the partial and full re-solve paths only
// write into the member scratch/solved arrays.
TEST_P(MachineEpochAllocTest, PartitioningChurnDoesNotAllocate) {
  const MachineConfig config = Config();
  SimulatedMachine machine(config);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < 4; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    ASSERT_TRUE(app.ok());
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  for (int i = 0; i < 16; ++i) {
    machine.AdvanceTime(0.5);
  }
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    machine.SetClosMbaLevel(1u + static_cast<uint32_t>(i % 4),
                            MbaLevel::FromPercentChecked(
                                10u + 10u * static_cast<uint32_t>(i % 10)));
    if (i % 10 == 0) {
      machine.SetClosWayMask(1u + static_cast<uint32_t>(i % 4),
                             WayMask::Contiguous(
                                 static_cast<uint32_t>(i % 4), 4));
    }
    machine.AdvanceTime(0.5);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0)
      << "partitioning churn allocated on the epoch path";
}

TEST_P(MachineEpochAllocTest, LaunchInvalidatesThenSteadyAgain) {
  const MachineConfig config = Config();
  SimulatedMachine machine(config);
  Result<AppId> a = machine.LaunchApp(Sp(), 2);
  ASSERT_TRUE(a.ok());
  for (int i = 0; i < 16; ++i) {
    machine.AdvanceTime(0.5);
  }
  ASSERT_EQ(AllocationsDuringEpochs(machine, 50), 0);

  // Membership changes legitimately rebuild the params cache...
  Result<AppId> b = machine.LaunchApp(Raytrace(), 2);
  ASSERT_TRUE(b.ok());
  machine.AssignAppToClos(*b, 1);
  for (int i = 0; i < 16; ++i) {
    machine.AdvanceTime(0.5);
  }
  // ...but the loop must settle back to zero afterwards.
  EXPECT_EQ(AllocationsDuringEpochs(machine, 50), 0)
      << "epoch loop did not return to allocation-free after LaunchApp";
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MachineEpochAllocTest,
    ::testing::Combine(::testing::Values(MrcMode::kExact, MrcMode::kCompiled),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<MrcMode, bool>>& info) {
      const std::string mode =
          std::get<0>(info.param) == MrcMode::kExact ? "exact" : "compiled";
      return mode + (std::get<1>(info.param) ? "_incremental" : "_full");
    });

}  // namespace
}  // namespace copart
