// The serve harness's headline contract (paper §6.3 on the discrete-event
// engine): with SLO mode on, the memcached surrogate's deterministic p95
// stays under its SLO through the burst while batch unfairness remains
// within 0.10 of a batch-only CoPart run; EqualShare and NoPart violate the
// SLO under the same trace. The full comparison is additionally pinned by
// a byte-exact golden document that must be bit-identical for every
// --threads value.
//
// To regenerate after an INTENDED behavior change:
//   COPART_REGENERATE_GOLDEN=1 ./harness_serve_test
// then review the diff of tests/golden/serve_golden.json.
#include "harness/serve.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "workload/workload.h"

namespace copart {
namespace {

#ifndef COPART_GOLDEN_DIR
#error "COPART_GOLDEN_DIR must be defined by the build"
#endif

std::string GoldenPath() {
  return std::string(COPART_GOLDEN_DIR) + "/serve_golden.json";
}

// The serializer itself lives in harness/serve.h (SerializeServeComparison)
// so `copartctl governors` can run the same byte-exact self-check.
std::string SerializeComparison(const ServeComparisonResult& comparison) {
  return SerializeServeComparison(comparison);
}

// The §6.3 comparison is the most expensive computation in this suite;
// compute the canonical (serial) run once and share it across tests.
const ServeComparisonResult& Comparison() {
  static const ServeComparisonResult comparison = RunServeComparison(
      Section63ServeScenario(), ParallelConfig{.num_threads = 1});
  return comparison;
}

TEST(HarnessServeTest, CopartMeetsSloWhileStaticBaselinesViolate) {
  const ServeComparisonResult& comparison = Comparison();
  const double slo_ms = comparison.copart.lc.front().slo_p95_ms;
  ASSERT_GT(slo_ms, 0.0);

  // CoPart: run-level p95 under the SLO, and almost no violating epochs.
  EXPECT_LT(comparison.copart.lc.front().p95_ms, slo_ms);
  EXPECT_LT(comparison.copart.lc.front().slo_violation_fraction, 0.05);
  EXPECT_EQ(comparison.copart.lc.front().drops, 0u);
  // The governor actually rode the burst: at least one resize each way.
  EXPECT_GT(comparison.copart.slo_resizes, 0u);

  // The static baselines drown during the burst.
  for (const ServeScenarioResult* baseline :
       {&comparison.equal_share, &comparison.no_part}) {
    EXPECT_GT(baseline->lc.front().p95_ms, slo_ms)
        << ServeModeName(baseline->mode);
    EXPECT_GT(baseline->lc.front().slo_violation_fraction, 0.25)
        << ServeModeName(baseline->mode);
  }
}

TEST(HarnessServeTest, BatchUnfairnessStaysNearBatchOnlyCopart) {
  // Reference: the same batch pair under plain CoPart with no LC app at
  // all, measured with the experiment harness's Eq. 1/Eq. 2 methodology.
  const ServeScenarioConfig config = Section63ServeScenario();
  WorkloadMix mix;
  mix.name = "batch_only";
  for (const ServeBatchSpec& spec : config.batch_apps) {
    mix.apps.push_back(spec.workload);
  }
  ExperimentConfig experiment;
  experiment.machine = config.machine;
  experiment.duration_sec = config.duration_sec;
  experiment.control_period_sec = config.control_period_sec;
  experiment.cores_per_app = 4;
  const ExperimentResult batch_only =
      RunExperiment(mix, CoPartFactory(config.copart_params), experiment);

  // Serving memcached through the burst may cost the batch apps some
  // fairness (the governor takes ways and throttles MBA), but no more
  // than 0.10 on the [0, 1] unfairness metric.
  const double delta = Comparison().copart.run_batch_unfairness -
                       batch_only.unfairness;
  EXPECT_LE(std::abs(delta), 0.10)
      << "serve " << Comparison().copart.run_batch_unfairness
      << " vs batch-only " << batch_only.unfairness;
}

TEST(HarnessServeTest, ComparisonMatchesGoldenFile) {
  const std::string actual = SerializeComparison(Comparison());
  const std::string path = GoldenPath();

  if (std::getenv("COPART_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with COPART_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string expected = contents.str();

  if (actual != expected) {
    std::istringstream actual_lines(actual), expected_lines(expected);
    std::string actual_line, expected_line;
    size_t line = 0;
    while (true) {
      ++line;
      const bool have_actual =
          static_cast<bool>(std::getline(actual_lines, actual_line));
      const bool have_expected =
          static_cast<bool>(std::getline(expected_lines, expected_line));
      if (!have_actual && !have_expected) {
        break;
      }
      if (!have_actual || !have_expected || actual_line != expected_line) {
        FAIL() << "golden mismatch at line " << line << "\n  golden: "
               << (have_expected ? expected_line : "<eof>")
               << "\n  actual: " << (have_actual ? actual_line : "<eof>")
               << "\nIf this change is intended, regenerate with "
                  "COPART_REGENERATE_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

TEST(HarnessServeTest, ComparisonIsBitIdenticalAcrossThreadCounts) {
  // The whole golden document — every sampled trajectory point of every
  // mode — must serialize byte-for-byte the same at any --threads value.
  const std::string serial = SerializeComparison(Comparison());
  for (uint32_t threads : {2u, 8u}) {
    const ServeComparisonResult parallel = RunServeComparison(
        Section63ServeScenario(), ParallelConfig{.num_threads = threads});
    EXPECT_EQ(SerializeComparison(parallel), serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace copart
