// The offline ST search: validity, optimality on easy instances, and
// pool-restricted search.
#include "harness/static_oracle.h"

#include <gtest/gtest.h>

#include "metrics/fairness.h"
#include "workload/workload.h"

namespace copart {
namespace {

MachineConfig QuietConfig() {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  return config;
}

TEST(StaticOracleTest, FindsValidStateAndEvaluatesManyCandidates) {
  SimulatedMachine machine(QuietConfig());
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor :
       {WaterNsquared(), Cg(), Swaptions()}) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    apps.push_back(*app);
  }
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  const StaticOracleResult result =
      FindStaticOracleState(machine, apps, pool);
  EXPECT_TRUE(result.best_state.Valid());
  EXPECT_GT(result.states_evaluated, 100u);
  EXPECT_GE(result.best_unfairness, 0.0);
}

TEST(StaticOracleTest, BeatsEqualSplitOnSkewedMix) {
  SimulatedMachine machine(QuietConfig());
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor :
       {WaterNsquared(), WaterSpatial(), Raytrace(), Swaptions()}) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    apps.push_back(*app);
  }
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  const StaticOracleResult result =
      FindStaticOracleState(machine, apps, pool);
  // The oracle must give the insensitive app (index 3) the minimum and the
  // demanding WN more than the equal share.
  EXPECT_EQ(result.best_state.allocation(3).llc_ways, 1u);
  EXPECT_GE(result.best_state.allocation(0).llc_ways, 4u);
  EXPECT_LT(result.best_unfairness, 0.05);
}

TEST(StaticOracleTest, RespectsRestrictedPool) {
  SimulatedMachine machine(QuietConfig());
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : {WaterNsquared(), Cg()}) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    apps.push_back(*app);
  }
  const ResourcePool pool{.first_way = 5, .num_ways = 6,
                          .max_mba_percent = 40};
  const StaticOracleResult result =
      FindStaticOracleState(machine, apps, pool);
  EXPECT_TRUE(result.best_state.Valid());
  EXPECT_EQ(result.best_state.pool().first_way, 5u);
  uint32_t total_ways = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    total_ways += result.best_state.allocation(i).llc_ways;
    EXPECT_LE(result.best_state.allocation(i).mba_level.percent(), 40u);
    EXPECT_EQ(result.best_state.WayMaskBits(i) & 0x1F, 0u);
  }
  EXPECT_EQ(total_ways, 6u);
}

TEST(StaticOracleTest, SearchIsDeterministic) {
  SimulatedMachine machine(QuietConfig());
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : {Sp(), OceanNcp()}) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    apps.push_back(*app);
  }
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  const StaticOracleResult a = FindStaticOracleState(machine, apps, pool);
  const StaticOracleResult b = FindStaticOracleState(machine, apps, pool);
  EXPECT_EQ(a.best_state, b.best_state);
  EXPECT_DOUBLE_EQ(a.best_unfairness, b.best_unfairness);
}

}  // namespace
}  // namespace copart
