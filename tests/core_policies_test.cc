// The policy layer: EQ/ST/NoPart static policies and the CoPart modes.
#include "core/policies.h"

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "workload/workload.h"

namespace copart {
namespace {

class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest() : machine_(MakeConfig()), resctrl_(&machine_),
                   monitor_(&machine_) {
    for (const WorkloadDescriptor& descriptor :
         {WaterNsquared(), Cg(), Sp(), Swaptions()}) {
      Result<AppId> app = machine_.LaunchApp(descriptor, 4);
      CHECK(app.ok());
      apps_.push_back(*app);
    }
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    return config;
  }

  ResourcePool FullPool() const {
    return ResourcePool{.first_way = 0, .num_ways = 11,
                        .max_mba_percent = 100};
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
  std::vector<AppId> apps_;
};

TEST_F(PoliciesTest, EqualPolicyAppliesEqualDisjointPartitions) {
  auto policy = MakeEqualPolicy(&resctrl_, apps_, FullPool());
  EXPECT_EQ(policy->name(), "EQ");
  policy->Start();
  // (3,3,3,2) ways, MBA 30 (= round10(100/4)) each, disjoint masks.
  uint64_t seen = 0;
  for (AppId app : apps_) {
    const uint32_t clos = machine_.AppClos(app);
    EXPECT_NE(clos, 0u);
    const uint64_t bits = machine_.ClosWayMask(clos).bits();
    EXPECT_EQ(seen & bits, 0u) << "masks overlap";
    seen |= bits;
    EXPECT_EQ(machine_.ClosMbaLevel(clos).percent(), 30u);
  }
  EXPECT_EQ(seen, 0x7FFu);
}

TEST_F(PoliciesTest, NoPartitionPolicyLeavesDefaults) {
  NoPartitionPolicy policy(&resctrl_, apps_);
  policy.Start();
  for (AppId app : apps_) {
    EXPECT_EQ(machine_.AppClos(app), 0u);
  }
  EXPECT_EQ(machine_.ClosWayMask(0).bits(), 0x7FFu);
  EXPECT_EQ(machine_.ClosMbaLevel(0).percent(), 100u);
}

TEST_F(PoliciesTest, StaticOraclePolicyAppliesGivenState) {
  std::vector<AppAllocation> allocations(4);
  allocations[0] = {.llc_ways = 5,
                    .mba_level = MbaLevel::FromPercentChecked(100)};
  allocations[1] = {.llc_ways = 3,
                    .mba_level = MbaLevel::FromPercentChecked(80)};
  allocations[2] = {.llc_ways = 2,
                    .mba_level = MbaLevel::FromPercentChecked(60)};
  allocations[3] = {.llc_ways = 1,
                    .mba_level = MbaLevel::FromPercentChecked(10)};
  const SystemState state(FullPool(), allocations);
  auto policy = MakeStaticOraclePolicy(&resctrl_, apps_, state);
  EXPECT_EQ(policy->name(), "ST");
  policy->Start();
  EXPECT_EQ(machine_.ClosWayMask(machine_.AppClos(apps_[0])).bits(), 0x01Fu);
  EXPECT_EQ(machine_.ClosWayMask(machine_.AppClos(apps_[3])).bits(), 0x400u);
  EXPECT_EQ(machine_.ClosMbaLevel(machine_.AppClos(apps_[3])).percent(), 10u);
}

TEST_F(PoliciesTest, StaticPolicyTickRepairsDriftedState) {
  std::vector<AppAllocation> allocations(4);
  for (size_t i = 0; i < 4; ++i) {
    allocations[i] = {.llc_ways = i == 0 ? 5u : 2u,
                      .mba_level = MbaLevel::FromPercentChecked(100)};
  }
  auto policy =
      MakeStaticOraclePolicy(&resctrl_, apps_, SystemState(FullPool(),
                                                           allocations));
  auto* static_policy = static_cast<StaticStatePolicy*>(policy.get());
  policy->Start();
  const uint32_t clos = machine_.AppClos(apps_[0]);
  ASSERT_EQ(machine_.ClosWayMask(clos).bits(), 0x01Fu);

  // A drift-free tick is a no-op.
  policy->Tick();
  EXPECT_EQ(static_policy->drifts_detected(), 0u);

  // External drift (a fault rolled back a write, an operator fat-fingered
  // the schemata): the next tick must detect and repair it.
  machine_.SetClosWayMask(clos, WayMask::Contiguous(0, 1));
  machine_.SetClosMbaLevel(clos, MbaLevel::FromPercentChecked(10));
  policy->Tick();
  EXPECT_EQ(static_policy->drifts_detected(), 1u);
  EXPECT_EQ(static_policy->drifts_repaired(), 1u);
  EXPECT_EQ(machine_.ClosWayMask(clos).bits(), 0x01Fu);
  EXPECT_EQ(machine_.ClosMbaLevel(clos).percent(), 100u);
}

TEST(StaticPolicyFaultTest, TickRetriesRepairUntilTheSubstrateRecovers) {
  FaultInjector injector(0xE44ULL);
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.fault_injector = &injector;
  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : {WaterNsquared(), Cg()}) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    CHECK(app.ok());
    apps.push_back(*app);
  }
  std::vector<AppAllocation> allocations(2);
  allocations[0] = {.llc_ways = 8,
                    .mba_level = MbaLevel::FromPercentChecked(100)};
  allocations[1] = {.llc_ways = 3,
                    .mba_level = MbaLevel::FromPercentChecked(100)};
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  auto policy =
      MakeStaticOraclePolicy(&resctrl, apps, SystemState(pool, allocations));
  auto* static_policy = static_cast<StaticStatePolicy*>(policy.get());
  policy->Start();
  const uint32_t clos = machine.AppClos(apps[0]);

  // Drift the mask while schemata writes are hard-failing: Tick() must
  // count the drift but cannot repair it yet — and must not crash.
  machine.SetClosWayMask(clos, WayMask::Contiguous(0, 1));
  FaultSpec down;
  down.probability = 1.0;
  injector.Arm(fault_points::kResctrlSetL3, down);
  policy->Tick();
  EXPECT_EQ(static_policy->drifts_detected(), 1u);
  EXPECT_EQ(static_policy->drifts_repaired(), 0u);
  EXPECT_EQ(machine.ClosWayMask(clos).bits(), 0x001u);

  // Substrate recovers: the next tick completes the repair.
  injector.DisarmAll();
  policy->Tick();
  EXPECT_EQ(static_policy->drifts_detected(), 2u);
  EXPECT_EQ(static_policy->drifts_repaired(), 1u);
  EXPECT_EQ(machine.ClosWayMask(clos).bits(), 0x0FFu);
}

TEST_F(PoliciesTest, CoPartModesGateTheirResources) {
  {
    CoPartPolicy policy(&resctrl_, &monitor_, apps_, FullPool(), {},
                        CoPartPolicy::Mode::kCatOnly);
    EXPECT_EQ(policy.name(), "CAT-only");
    policy.Start();
    for (int i = 0; i < 200; ++i) {
      machine_.AdvanceTime(0.5);
      policy.Tick();
    }
    // MBA frozen at the equal static share for every app.
    for (size_t i = 0; i < apps_.size(); ++i) {
      EXPECT_EQ(policy.manager().current_state().allocation(i).mba_level
                    .percent(),
                30u);
    }
  }
}

TEST_F(PoliciesTest, MbaOnlyKeepsWaysEqual) {
  CoPartPolicy policy(&resctrl_, &monitor_, apps_, FullPool(), {},
                      CoPartPolicy::Mode::kMbaOnly);
  EXPECT_EQ(policy.name(), "MBA-only");
  policy.Start();
  for (int i = 0; i < 200; ++i) {
    machine_.AdvanceTime(0.5);
    policy.Tick();
  }
  const SystemState& state = policy.manager().current_state();
  EXPECT_EQ(state.allocation(0).llc_ways, 3u);
  EXPECT_EQ(state.allocation(3).llc_ways, 2u);
}

TEST_F(PoliciesTest, CoordinatedModeMovesBothResources) {
  CoPartPolicy policy(&resctrl_, &monitor_, apps_, FullPool(), {},
                      CoPartPolicy::Mode::kCoordinated);
  EXPECT_EQ(policy.name(), "CoPart");
  policy.Start();
  for (int i = 0; i < 200; ++i) {
    machine_.AdvanceTime(0.5);
    policy.Tick();
  }
  const SystemState& state = policy.manager().current_state();
  // The insensitive app (index 3) must have been drained of ways and the
  // LLC split differentiated away from the equal (3,3,3,2) start. (MBA may
  // legitimately stay uniform: with ample bandwidth the fairest levels are
  // all at the ceiling.)
  EXPECT_EQ(state.allocation(3).llc_ways, 1u);
  EXPECT_NE(state.allocation(0).llc_ways, state.allocation(3).llc_ways);
  EXPECT_TRUE(state.Valid());
}

}  // namespace
}  // namespace copart
