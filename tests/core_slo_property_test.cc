// Chaos property for the SLO-aware serving mode (DESIGN.md §9, §15): under
// fault injection on the resctrl actuation surface — transient schemata
// rejections, silent drops, partial applies — the latency-critical app's
// CLOS must NEVER be left narrower than SloParams::lc_way_floor, neither
// in the governor's plan nor in the actuated way mask. The property is
// checked for EVERY registered SloGovernor: the learned governors bias the
// plan through corrections and way-delta arms, and none of that machinery
// may reach below the floor. Runs under `ctest -L chaos` as well as the
// default pass.
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/resource_manager.h"
#include "harness/serve.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "slo/slo_governor.h"
#include "workload/workload.h"

namespace copart {
namespace {

constexpr uint32_t kWayFloor = 2;

// One fault schedule: build the §6.3-style managed machine (memcached LC +
// two batch apps), arm the schemata points, drive a load ramp that forces
// the governor to resize in both directions, and check the floor after
// every control period.
void RunSchedule(const std::string& governor, uint64_t seed) {
  FaultInjector injector(seed);
  MachineConfig machine_config;
  machine_config.fault_injector = &injector;
  SimulatedMachine machine(machine_config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);

  ResourceManagerParams params;
  params.control_period_sec = 0.1;
  params.slo.enabled = true;
  params.slo.governor = governor;
  params.slo.lc_way_floor = kWayFloor;
  params.slo.protect_rps_threshold = 150000.0;
  ResourceManager manager(&resctrl, &monitor, params);

  const WorkloadDescriptor lc_desc = Memcached();
  Result<AppId> lc = machine.LaunchApp(lc_desc, 8);
  ASSERT_TRUE(lc.ok()) << lc.status().ToString();
  LcAppModel model;
  model.slo_p95_ms = lc_desc.slo_p95_ms;
  model.instructions_per_request = lc_desc.instructions_per_request;
  model.capability_ips = [&](uint32_t ways) {
    return PredictLcCapabilityIps(lc_desc, 8, ways, machine_config);
  };
  model.initial_offered_rps = 75000.0;
  ASSERT_TRUE(manager.SetLatencyCriticalApp(*lc, model).ok());
  for (const WorkloadDescriptor& batch : {WordCount(), Kmeans()}) {
    Result<AppId> app = machine.LaunchApp(batch, 4);
    ASSERT_TRUE(app.ok());
    ASSERT_TRUE(manager.AddApp(*app).ok());
  }

  // Arm the actuation faults AFTER registration: registration itself is
  // covered by the chaos suite; this property targets steady-state
  // resizing. Probabilities are high enough that every schedule sees
  // failed and silently-dropped writes (verified below).
  FaultSpec transient;
  transient.probability = 0.2;
  transient.burst_length = 2;
  FaultSpec silent;
  silent.probability = 0.1;
  injector.Arm(fault_points::kResctrlSetL3, transient);
  injector.Arm(fault_points::kResctrlSetMb, transient);
  injector.Arm(fault_points::kResctrlSetL3Silent, silent);
  injector.Arm(fault_points::kResctrlSetMbSilent, silent);
  injector.Arm(fault_points::kResctrlSchemataPartial, silent);

  // Load ramp: quiet -> burst past the protect threshold -> quiet, so the
  // governor grows, protects, and shrinks the slice under fire.
  for (int period = 0; period < 300; ++period) {
    const double t = 0.1 * period;
    const double rps = (t < 10.0 || t >= 20.0) ? 75000.0 : 190000.0;
    // Feed the learned governors a deterministic outcome stream so their
    // update paths (MPC correction cells, bandit arm rewards) run hot:
    // the measured p95 swings around the prediction, with periodic stall
    // reports — the harshest signal, recorded as max_correction.
    const double predicted = manager.LcPredictedP95Ms(*lc);
    const double measured =
        predicted * (period % 3 == 0 ? 4.0 : 0.5) + 0.001;
    const bool stalled = period % 37 == 0;
    manager.ReportLcOutcome(*lc, stalled ? 0.0 : measured, stalled,
                            /*phase_index=*/static_cast<size_t>(period) % 2);
    machine.SetAppRequiredIps(*lc, rps * lc_desc.instructions_per_request);
    manager.SetLcOfferedLoad(*lc, rps);
    machine.AdvanceTime(0.1);
    manager.Tick();

    // The plan never goes below the floor...
    ASSERT_GE(manager.LcWays(*lc), kWayFloor)
        << governor << " seed " << seed << " period " << period;
    // ...and neither does the actuated mask, whatever subset of writes the
    // schedule let through.
    const WayMask actuated = machine.ClosWayMask(machine.AppClos(*lc));
    ASSERT_FALSE(actuated.Empty())
        << governor << " seed " << seed << " period " << period;
    ASSERT_GE(actuated.CountWays(), kWayFloor)
        << governor << " seed " << seed << " period " << period;
  }
  // The schedule actually exercised the fault surface.
  EXPECT_GT(injector.total_failures(), 0u)
      << governor << " seed " << seed;
}

TEST(SloChaosPropertyTest, LcClosNeverDropsBelowFloorUnderFaults) {
  // Every registered governor faces the same fault schedules; the floor is
  // a contract of the SLO mode, not of one governor implementation.
  for (const std::string& governor : RegisteredSloGovernorNames()) {
    SCOPED_TRACE(governor);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      RunSchedule(governor, seed);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

TEST(SloChaosPropertyTest, ThresholdGovernorSurvivesTheFullScheduleSet) {
  // The default governor keeps the original deeper schedule sweep.
  for (uint64_t seed = 7; seed <= 12; ++seed) {
    RunSchedule("threshold", seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace copart
