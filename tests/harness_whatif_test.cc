// The what-if prediction API: consistency with live runs and the evaluator
// semantics downstream schedulers rely on.
#include "harness/whatif.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/mix.h"

namespace copart {
namespace {

ResourcePool FullPool() {
  return ResourcePool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
}

TEST(WhatIfTest, OutcomeShapesAreSane) {
  const std::vector<WorkloadDescriptor> workloads = {WaterNsquared(), Cg()};
  const WhatIfOutcome outcome =
      PredictEqualShareOutcome(workloads, FullPool());
  ASSERT_EQ(outcome.app_names.size(), 2u);
  EXPECT_EQ(outcome.app_names[0], "WN");
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_GT(outcome.predicted_ips[i], 0.0);
    EXPECT_GE(outcome.slowdowns[i], 1.0 - 1e-9);
    EXPECT_LE(outcome.predicted_ips[i],
              outcome.solo_full_ips[i] * (1.0 + 1e-9));
  }
  EXPECT_GE(outcome.unfairness, 0.0);
  EXPECT_GT(outcome.throughput_geomean, 0.0);
}

TEST(WhatIfTest, MatchesLiveStaticExperiment) {
  // A noise-free live run under EQ must land exactly where the predictor
  // says (same model, same allocation).
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  ExperimentConfig config;
  config.machine.ips_noise_sigma = 0.0;
  config.duration_sec = 10.0;
  const ExperimentResult live = RunExperiment(mix, EqFactory(), config);

  const WhatIfOutcome predicted = PredictOutcome(
      mix.apps, SystemState::EqualShareThrottled(FullPool(), mix.apps.size()),
      config.machine);
  ASSERT_EQ(predicted.slowdowns.size(), live.slowdowns.size());
  for (size_t i = 0; i < live.slowdowns.size(); ++i) {
    EXPECT_NEAR(predicted.slowdowns[i], live.slowdowns[i], 1e-6) << i;
  }
  EXPECT_NEAR(predicted.unfairness, live.unfairness, 1e-6);
}

TEST(WhatIfTest, DistinguishesGoodFromBadAllocations) {
  const std::vector<WorkloadDescriptor> workloads = {
      WaterNsquared(), WaterSpatial(), Raytrace(), Swaptions()};
  // The known-good split from Fig. 4 vs starving WN.
  std::vector<AppAllocation> good(4), bad(4);
  const uint32_t good_ways[] = {5, 3, 2, 1};
  const uint32_t bad_ways[] = {1, 4, 3, 3};
  for (size_t i = 0; i < 4; ++i) {
    good[i] = {.llc_ways = good_ways[i], .mba_level = MbaLevel()};
    bad[i] = {.llc_ways = bad_ways[i], .mba_level = MbaLevel()};
  }
  const WhatIfOutcome good_outcome =
      PredictOutcome(workloads, SystemState(FullPool(), good));
  const WhatIfOutcome bad_outcome =
      PredictOutcome(workloads, SystemState(FullPool(), bad));
  EXPECT_LT(good_outcome.unfairness, bad_outcome.unfairness * 0.5);
  // Starving WN shows up in its individual slowdown.
  EXPECT_GT(bad_outcome.slowdowns[0], good_outcome.slowdowns[0] * 1.2);
}

TEST(WhatIfTest, UcpOutcomeBeatsEqualShareForSkewedPairs) {
  // UCP gives WN its working set and strips the insensitive partner, so
  // the predicted outcome dominates the equal split.
  const std::vector<WorkloadDescriptor> workloads = {WaterNsquared(),
                                                     Swaptions()};
  const WhatIfOutcome equal =
      PredictEqualShareOutcome(workloads, FullPool());
  const WhatIfOutcome ucp = PredictUcpOutcome(workloads, FullPool());
  EXPECT_LE(ucp.slowdowns[0], equal.slowdowns[0] + 1e-9);
  EXPECT_NEAR(ucp.slowdowns[1], 1.0, 0.01);  // SW unaffected either way.
  EXPECT_GE(ucp.throughput_geomean, equal.throughput_geomean * 0.999);
}

TEST(WhatIfTest, ZeroCoresPerAppUsesDescriptorThreads) {
  // Heterogeneous core counts through num_threads: an 8-core SW and a
  // 2-core WN must fit the 16-core machine and scale accordingly.
  WorkloadDescriptor big = Swaptions();
  big.num_threads = 8;
  WorkloadDescriptor small = WaterNsquared();
  small.num_threads = 2;
  const WhatIfOutcome outcome =
      PredictEqualShareOutcome({big, small}, FullPool());
  // SW's IPS scales with its 8 cores (vs the 4-core registry default).
  SimulatedMachine reference((MachineConfig()));
  EXPECT_NEAR(outcome.solo_full_ips[0],
              reference.SoloFullResourceIps(Swaptions(), 8), 1.0);
  EXPECT_NEAR(outcome.solo_full_ips[1],
              reference.SoloFullResourceIps(WaterNsquared(), 2), 1.0);
}

TEST(WhatIfTest, DeterministicAcrossCalls) {
  const std::vector<WorkloadDescriptor> workloads = {Sp(), OceanNcp()};
  const WhatIfOutcome a = PredictEqualShareOutcome(workloads, FullPool());
  const WhatIfOutcome b = PredictEqualShareOutcome(workloads, FullPool());
  EXPECT_DOUBLE_EQ(a.unfairness, b.unfairness);
  EXPECT_DOUBLE_EQ(a.predicted_ips[0], b.predicted_ips[0]);
}

// Candidate schedule shaped like a coordinate-descent search: way-split
// rotations, then per-app MBA ladders on a fixed split. The MBA-only runs
// are exactly the moves the evaluator's no-restore fast path optimizes, so
// this doubles as a bit-identity check on that path.
std::vector<SystemState> SearchLikeCandidates(size_t num_apps) {
  const ResourcePool pool = FullPool();
  std::vector<SystemState> candidates;
  std::vector<AppAllocation> allocations(num_apps);
  const uint32_t base_ways[] = {5, 3, 2, 1};
  for (size_t rotation = 0; rotation < num_apps; ++rotation) {
    for (size_t i = 0; i < num_apps; ++i) {
      allocations[i] = {.llc_ways = base_ways[(i + rotation) % num_apps],
                        .mba_level = MbaLevel()};
    }
    candidates.emplace_back(pool, allocations);
    for (size_t app = 0; app < num_apps; ++app) {
      for (uint32_t percent = 10; percent <= 100; percent += 30) {
        allocations[app].mba_level = MbaLevel::FromPercentChecked(percent);
        candidates.emplace_back(pool, allocations);
      }
      allocations[app].mba_level = MbaLevel();
    }
  }
  return candidates;
}

void ExpectBitIdentical(const WhatIfOutcome& a, const WhatIfOutcome& b) {
  auto same_bits = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  ASSERT_EQ(a.predicted_ips.size(), b.predicted_ips.size());
  for (size_t i = 0; i < a.predicted_ips.size(); ++i) {
    EXPECT_TRUE(same_bits(a.predicted_ips[i], b.predicted_ips[i]))
        << "app " << i << ": " << a.predicted_ips[i] << " vs "
        << b.predicted_ips[i];
    EXPECT_TRUE(same_bits(a.slowdowns[i], b.slowdowns[i])) << "app " << i;
    EXPECT_TRUE(same_bits(a.solo_full_ips[i], b.solo_full_ips[i]))
        << "app " << i;
  }
  EXPECT_TRUE(same_bits(a.unfairness, b.unfairness));
  EXPECT_TRUE(same_bits(a.throughput_geomean, b.throughput_geomean));
}

TEST(WhatIfTest, EvaluatorBitIdenticalToPredictOutcome) {
  // The evaluator's amortizations (shared machine, no-restore for phase-free
  // workloads, the machine's partial-solve tier for MBA-only deltas) must be
  // invisible: every candidate scores bit-identically to a from-scratch
  // PredictOutcome, in whatever order the candidates arrive.
  const std::vector<WorkloadDescriptor> workloads = {
      WaterNsquared(), WaterSpatial(), Raytrace(), Swaptions()};
  WhatIfEvaluator evaluator(workloads);
  for (const SystemState& state : SearchLikeCandidates(workloads.size())) {
    SCOPED_TRACE(state.ToString());
    ExpectBitIdentical(evaluator.Evaluate(state),
                       PredictOutcome(workloads, state));
  }
}

TEST(WhatIfTest, EvaluatorBitIdenticalWithPhasedWorkloads) {
  // Phased workloads force the rollback path (candidates must all be scored
  // at the same simulated instant); the contract is the same.
  std::vector<WorkloadDescriptor> workloads = {WaterNsquared(), WaterSpatial(),
                                               Raytrace()};
  workloads.push_back(PhasedScanCompute(/*period_sec=*/0.2));
  WhatIfEvaluator evaluator(workloads);
  for (const SystemState& state : SearchLikeCandidates(workloads.size())) {
    SCOPED_TRACE(state.ToString());
    ExpectBitIdentical(evaluator.Evaluate(state),
                       PredictOutcome(workloads, state));
  }
}

TEST(WhatIfDeathTest, RejectsMismatchedState) {
  const std::vector<WorkloadDescriptor> workloads = {Sp(), OceanNcp()};
  const SystemState three_apps = SystemState::EqualShare(FullPool(), 3);
  EXPECT_DEATH(PredictOutcome(workloads, three_apps), "Check failed");
}

}  // namespace
}  // namespace copart
