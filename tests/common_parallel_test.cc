// The deterministic parallel engine: ThreadPool semantics (bounded queue,
// exception propagation), ParallelFor/ParallelMap correctness, nested-use
// rejection, and sweep observability.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace copart {
namespace {

TEST(ParallelConfigTest, ResolveThreadsDefaultsToHardwareConcurrency) {
  EXPECT_GE(ParallelConfig{}.ResolveThreads(), 1u);
  EXPECT_EQ(ParallelConfig{.num_threads = 1}.ResolveThreads(), 1u);
  EXPECT_EQ(ParallelConfig{.num_threads = 7}.ResolveThreads(), 7u);
}

TEST(ParseThreadsFlagTest, ParsesAndStripsBothSpellings) {
  {
    const char* raw[] = {"bench", "--threads", "6", "extra"};
    char* argv[] = {const_cast<char*>(raw[0]), const_cast<char*>(raw[1]),
                    const_cast<char*>(raw[2]), const_cast<char*>(raw[3])};
    int argc = 4;
    const ParallelConfig config = ParseThreadsFlag(argc, argv);
    EXPECT_EQ(config.num_threads, 6u);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "extra");
  }
  {
    const char* raw[] = {"bench", "--threads=3"};
    char* argv[] = {const_cast<char*>(raw[0]), const_cast<char*>(raw[1])};
    int argc = 2;
    const ParallelConfig config = ParseThreadsFlag(argc, argv);
    EXPECT_EQ(config.num_threads, 3u);
    EXPECT_EQ(argc, 1);
  }
  {
    const char* raw[] = {"bench", "positional"};
    char* argv[] = {const_cast<char*>(raw[0]), const_cast<char*>(raw[1])};
    int argc = 2;
    const ParallelConfig config = ParseThreadsFlag(argc, argv);
    EXPECT_EQ(config.num_threads, 0u);
    EXPECT_EQ(argc, 2);
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> sum{0};
  ThreadPool pool(4);
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressureWithoutLosingTasks) {
  // Capacity 2 with slow-ish tasks forces Submit to block repeatedly; all
  // tasks must still run exactly once.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, /*queue_capacity=*/2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, WaitRethrowsTaskExceptionAndPoolStaysUsable) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error slot is cleared; the pool keeps working.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromWorkerIsRejected) {
  ThreadPool pool(2);
  pool.Submit([&pool] {
    EXPECT_TRUE(ThreadPool::OnWorkerThread());
    EXPECT_THROW(pool.Submit([] {}), std::logic_error);
  });
  pool.Wait();
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr size_t kCells = 1000;
  std::vector<std::atomic<int>> visits(kCells);
  ParallelFor(ParallelConfig{.num_threads = 4}, kCells,
              [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "cell " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  SweepStats stats;
  ParallelFor(
      ParallelConfig{.num_threads = 4}, 0,
      [](size_t) { FAIL() << "body must not run for an empty range"; },
      &stats);
  EXPECT_EQ(stats.cells_completed, 0u);
  EXPECT_EQ(stats.utilization(), 0.0);
}

TEST(ParallelForTest, SingleThreadRunsInlineOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(ParallelConfig{.num_threads = 1}, 8, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(
      ParallelFor(ParallelConfig{.num_threads = 4}, 100,
                  [](size_t i) {
                    if (i == 37) {
                      throw std::runtime_error("cell 37 exploded");
                    }
                  }),
      std::runtime_error);
  try {
    ParallelFor(ParallelConfig{.num_threads = 4}, 100, [](size_t i) {
      if (i == 37) {
        throw std::runtime_error("cell 37 exploded");
      }
    });
    FAIL() << "expected the cell exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "cell 37 exploded");
  }
}

TEST(ParallelForTest, ExceptionSkipsRemainingCells) {
  // After the (only) failing first cell, the fan-out should cancel: far
  // fewer than all cells run. The exact count is scheduling-dependent, so
  // only assert that cancellation is effective at all.
  std::atomic<size_t> ran{0};
  constexpr size_t kCells = 1u << 20;
  EXPECT_THROW(ParallelFor(ParallelConfig{.num_threads = 2}, kCells,
                           [&](size_t i) {
                             ran.fetch_add(1);
                             if (i == 0) {
                               throw std::runtime_error("early failure");
                             }
                           }),
               std::runtime_error);
  EXPECT_LT(ran.load(), kCells);
}

TEST(ParallelForTest, SerialNestingInsideAParallelRegionIsAllowed) {
  std::vector<std::atomic<int>> visits(64);
  ParallelFor(ParallelConfig{.num_threads = 4}, 8, [&](size_t outer) {
    ParallelFor(ParallelConfig{.num_threads = 1}, 8, [&](size_t inner) {
      visits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "cell " << i;
  }
}

TEST(ParallelForTest, ParallelNestingIsRejected) {
  EXPECT_THROW(
      ParallelFor(ParallelConfig{.num_threads = 2}, 4,
                  [](size_t) {
                    ParallelFor(ParallelConfig{.num_threads = 2}, 4,
                                [](size_t) {});
                  }),
      std::logic_error);
}

TEST(ParallelMapTest, ResultsLandInIndexOrderForEveryThreadCount) {
  constexpr size_t kCells = 257;
  std::vector<double> expected(kCells);
  for (size_t i = 0; i < kCells; ++i) {
    expected[i] = static_cast<double>(i * i) + 0.5;
  }
  for (uint32_t threads : {1u, 2u, 5u, 8u}) {
    const std::vector<double> got = ParallelMap<double>(
        ParallelConfig{.num_threads = threads}, kCells,
        [](size_t i) { return static_cast<double>(i * i) + 0.5; });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(SweepStatsTest, RecordsCellsThreadsAndTimings) {
  SweepStats stats;
  ParallelFor(
      ParallelConfig{.num_threads = 2}, 64,
      [](size_t) {
        volatile double sink = 0.0;
        for (int k = 0; k < 10000; ++k) {
          sink = sink + static_cast<double>(k);
        }
      },
      &stats);
  EXPECT_EQ(stats.cells_completed, 64u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.wall_sec, 0.0);
  EXPECT_GE(stats.cpu_sec, 0.0);
  const std::string summary = stats.Summary();
  EXPECT_NE(summary.find("64 cells"), std::string::npos);
  EXPECT_NE(summary.find("2 threads"), std::string::npos);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"cells\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"wall_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
}

TEST(SweepStatsTest, ThreadCountIsClampedToCellCount) {
  SweepStats stats;
  ParallelFor(
      ParallelConfig{.num_threads = 16}, 3, [](size_t) {}, &stats);
  EXPECT_EQ(stats.threads, 3u);
  EXPECT_EQ(stats.cells_completed, 3u);
}

}  // namespace
}  // namespace copart
