// Robustness fuzzing of the resource manager: random interleavings of app
// launches, removals, pool changes and control ticks must never violate the
// controller's invariants (valid states inside the pool, resctrl schemata
// in sync, no crashes).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/resource_manager.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

class ManagerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManagerFuzzTest, RandomLifecycleSequencesKeepInvariants) {
  Rng rng(GetParam());
  MachineConfig config;
  config.ips_noise_sigma = 0.01;
  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  ResourceManagerParams params;
  params.seed = GetParam();
  ResourceManager manager(&resctrl, &monitor, params);

  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  std::vector<AppId> managed;

  auto check_invariants = [&]() {
    if (manager.NumApps() == 0) {
      return;
    }
    const SystemState& state = manager.current_state();
    ASSERT_TRUE(state.Valid()) << state.ToString();
    ASSERT_EQ(state.NumApps(), managed.size());
    const ResourcePool& pool = manager.pool();
    uint64_t pool_bits = ((1ULL << pool.num_ways) - 1) << pool.first_way;
    for (size_t i = 0; i < managed.size(); ++i) {
      // During profiling the manager applies probe masks that legitimately
      // differ from the system state; outside profiling they must match.
      if (manager.phase() != ResourceManager::Phase::kProfiling) {
        EXPECT_EQ(machine.ClosWayMask(machine.AppClos(managed[i])).bits(),
                  state.WayMaskBits(i));
        EXPECT_EQ(state.WayMaskBits(i) & ~pool_bits, 0u)
            << "state uses ways outside the pool";
      }
      EXPECT_GE(manager.SlowdownEstimate(managed[i]), 1.0);
    }
  };

  for (int step = 0; step < 400; ++step) {
    const uint64_t action = rng.NextUint64(100);
    if (action < 6 && managed.size() < 5 && machine.FreeCores() >= 2) {
      Result<AppId> app = machine.LaunchApp(
          registry[rng.NextUint64(registry.size())], 2);
      ASSERT_TRUE(app.ok());
      ASSERT_TRUE(manager.AddApp(*app).ok());
      managed.push_back(*app);
    } else if (action < 9 && managed.size() > 1) {
      const size_t victim = rng.NextUint64(managed.size());
      ASSERT_TRUE(manager.RemoveApp(managed[victim]).ok());
      ASSERT_TRUE(machine.TerminateApp(managed[victim]).ok());
      managed.erase(managed.begin() + static_cast<ptrdiff_t>(victim));
    } else if (action < 12 && managed.size() >= 1) {
      // Random pool resize that still fits every managed app.
      const uint32_t num_ways =
          std::max<uint32_t>(static_cast<uint32_t>(managed.size()),
                             5 + static_cast<uint32_t>(rng.NextUint64(7)));
      const uint32_t first =
          static_cast<uint32_t>(rng.NextUint64(11 - num_ways + 1));
      const uint32_t ceiling =
          50 + 10 * static_cast<uint32_t>(rng.NextUint64(6));
      manager.SetResourcePool({first, num_ways, ceiling});
    } else {
      machine.AdvanceTime(0.5);
      manager.Tick();
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerFuzzTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006));

}  // namespace
}  // namespace copart
