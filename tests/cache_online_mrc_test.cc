// Known-answer tests for the SHARDS-style online MRC estimator against the
// analytic (Che) curves the epoch model uses:
//
//   - at sampling rate 1.0 the ATD is a full shadow directory: its stack-
//     distance estimate at w ways must track an ACTUAL w-way LRU cache
//     replaying the same trace (the inclusion property, tight bound), and
//     stay within the analytic curve's own approximation band (Che vs true
//     LRU is itself only good to ~0.05 — cache_mrc_validation_test.cc);
//   - at the default sparse rate (1/64) the estimate must stay within the
//     analytic value plus the estimator's own published error bound;
//   - structural properties: monotone non-increasing curve, flat tail once
//     the working set fits, exact determinism per seed, ResetCounters()
//     keeping the directory warm, and the ErrorBound() schedule.
#include "cache/online_mrc.h"

#include <gtest/gtest.h>

#include "cache/miss_ratio_curve.h"
#include "cache/way_partitioned_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "trace/trace_generator.h"

namespace copart {
namespace {

// Scaled-down LLC (1/64 of the Xeon), same geometry the trace-driven
// validation uses: keeps replay fast while preserving way granularity.
LlcGeometry ScaledGeometry() {
  return LlcGeometry{
      .total_bytes = MiB(22) / 64, .num_ways = 11, .line_bytes = 64};
}

uint64_t ScaledWayBytes() { return ScaledGeometry().WayBytes(); }

// Feeds `accesses` full-rate trace references through Record(), with a
// warmup pass absorbed by ResetCounters() so cold misses don't bias the
// steady-state estimate.
void FeedTrace(OnlineMrcEstimator& estimator, const ReuseProfile& profile,
               int warmup, int accesses) {
  MixtureTraceGenerator generator(profile, ScaledGeometry().line_bytes,
                                  Rng(4242));
  for (int i = 0; i < warmup; ++i) {
    estimator.Record(generator.Next());
  }
  estimator.ResetCounters();
  for (int i = 0; i < accesses; ++i) {
    estimator.Record(generator.Next());
  }
}

ReuseProfile LlcLikeProfile() {
  const uint64_t way_bytes = ScaledWayBytes();
  return ReuseProfile({{0.3, static_cast<uint64_t>(1.4 * way_bytes)},
                       {0.68, static_cast<uint64_t>(4.1 * way_bytes)}},
                      0.0004);
}

TEST(OnlineMrcTest, FullRateMatchesTraceDrivenLruAndAnalyticChe) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  config.sampling_rate = 1.0;
  OnlineMrcEstimator estimator(config);
  EXPECT_EQ(estimator.atd_sets(), ScaledGeometry().NumSets());

  const ReuseProfile profile = LlcLikeProfile();
  FeedTrace(estimator, profile, 300000, 600000);
  for (uint32_t ways : {1u, 2u, 4u, 8u, 11u}) {
    // The load-bearing known answer: one pass over the shadow directory
    // predicts what a real w-way LRU cache measures on the same trace.
    WayPartitionedCache cache(ScaledGeometry(), 1);
    cache.SetMask(0, WayMask::Contiguous(0, ways));
    MixtureTraceGenerator generator(profile, ScaledGeometry().line_bytes,
                                    Rng(4242));
    for (int i = 0; i < 300000; ++i) {
      cache.Access(0, generator.Next());
    }
    cache.ResetStats();
    for (int i = 0; i < 600000; ++i) {
      cache.Access(0, generator.Next());
    }
    EXPECT_NEAR(estimator.MissRatioAtWays(ways), cache.stats(0).MissRatio(),
                0.03)
        << "ways=" << ways;
    // And the analytic curve agrees up to its own LRU approximation error.
    const double analytic =
        profile.MissRatio(ScaledGeometry().CapacityForWays(ways));
    EXPECT_NEAR(estimator.MissRatioAtWays(ways), analytic, 0.08)
        << "ways=" << ways;
  }
}

TEST(OnlineMrcTest, SparseRateWithinAnalyticPlusErrorBound) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  config.sampling_rate = 1.0 / 64.0;
  OnlineMrcEstimator estimator(config);
  // round(512 / 64) sets shadowed.
  EXPECT_EQ(estimator.atd_sets(), 8u);

  const ReuseProfile profile = LlcLikeProfile();
  FeedTrace(estimator, profile, 300000, 600000);
  // 8 of 512 sets shadowed: ~600k * 8/512 admitted samples.
  EXPECT_GT(estimator.sampled_accesses(), 5000u);
  EXPECT_LT(estimator.sampled_accesses(), 15000u);
  const double bound = 0.08 + 2.0 * estimator.ErrorBound();
  for (uint32_t ways : {1u, 2u, 4u, 8u, 11u}) {
    const double analytic =
        profile.MissRatio(ScaledGeometry().CapacityForWays(ways));
    EXPECT_NEAR(estimator.MissRatioAtWays(ways), analytic, bound)
        << "ways=" << ways;
  }
}

TEST(OnlineMrcTest, CurveIsMonotoneNonIncreasingAndInRange) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  OnlineMrcEstimator estimator(config);
  FeedTrace(estimator, LlcLikeProfile(), 100000, 400000);

  EXPECT_EQ(estimator.MissRatioAtWays(0), 1.0);
  const std::vector<double> curve = estimator.Curve();
  ASSERT_EQ(curve.size(), ScaledGeometry().num_ways);
  double prev = 1.0;
  for (size_t w = 0; w < curve.size(); ++w) {
    EXPECT_GE(curve[w], 0.0) << "ways=" << w + 1;
    EXPECT_LE(curve[w], prev) << "ways=" << w + 1;
    prev = curve[w];
    EXPECT_EQ(curve[w], estimator.MissRatioAtWays(static_cast<uint32_t>(w) + 1));
  }
}

TEST(OnlineMrcTest, FlatTailOnceWorkingSetFits) {
  // A resident set of about three ways plus a sliver of streaming: at one
  // way the three resident lines per set thrash, past three ways extra
  // capacity cannot help, so the curve's tail is flat at roughly the
  // streaming weight.
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  config.sampling_rate = 1.0;
  OnlineMrcEstimator estimator(config);
  const ReuseProfile small({{0.93, 3 * ScaledWayBytes()}}, 0.02);
  FeedTrace(estimator, small, 200000, 400000);

  const std::vector<double> curve = estimator.Curve();
  EXPECT_NEAR(curve[10], curve[4], 0.01);   // Flat across the tail...
  EXPECT_LT(curve[10], 0.10);               // ...and down at streaming level.
  EXPECT_GT(curve[0], curve[10] + 0.05);    // The knee actually exists.
}

TEST(OnlineMrcTest, DeterministicPerSeedAndConfig) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  config.seed = 0xFEED;
  OnlineMrcEstimator a(config);
  OnlineMrcEstimator b(config);
  FeedTrace(a, LlcLikeProfile(), 50000, 200000);
  FeedTrace(b, LlcLikeProfile(), 50000, 200000);

  EXPECT_EQ(a.sampled_accesses(), b.sampled_accesses());
  EXPECT_EQ(a.sampled_hits(), b.sampled_hits());
  const std::vector<double> curve_a = a.Curve();
  const std::vector<double> curve_b = b.Curve();
  for (size_t w = 0; w < curve_a.size(); ++w) {
    EXPECT_EQ(curve_a[w], curve_b[w]) << "ways=" << w + 1;
  }
}

TEST(OnlineMrcTest, ErrorBoundScheduleAndConvergence) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  OnlineMrcEstimator estimator(config);
  EXPECT_EQ(estimator.ErrorBound(), 1.0);
  EXPECT_FALSE(estimator.Converged(0.5));

  for (uint64_t i = 0; i < 400; ++i) {
    estimator.RecordSampled(i * 64);
  }
  EXPECT_EQ(estimator.sampled_accesses(), 400u);
  EXPECT_DOUBLE_EQ(estimator.ErrorBound(), 1.0 / 20.0);  // 1/sqrt(400).
  EXPECT_TRUE(estimator.Converged(0.05));
  EXPECT_FALSE(estimator.Converged(0.049));
}

TEST(OnlineMrcTest, ResetCountersKeepsDirectoryWarm) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  config.sampling_rate = 1.0;
  OnlineMrcEstimator estimator(config);

  const uint64_t address = 0x1000;
  estimator.RecordSampled(address);  // Cold install.
  estimator.ResetCounters();
  EXPECT_EQ(estimator.sampled_accesses(), 0u);
  EXPECT_EQ(estimator.ErrorBound(), 1.0);

  estimator.RecordSampled(address);  // Tag survived: immediate MRU hit.
  EXPECT_EQ(estimator.sampled_hits(), 1u);
  EXPECT_EQ(estimator.MissRatioAtWays(1), 0.0);

  estimator.Reset();  // Full reset drops the tags too.
  estimator.RecordSampled(address);
  EXPECT_EQ(estimator.sampled_hits(), 0u);
}

TEST(OnlineMrcTest, AdmissionFilterIsAFixedAddressFunction) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  config.sampling_rate = 1.0 / 64.0;
  OnlineMrcEstimator estimator(config);
  // Sequential lines: admission should land near the configured rate, and
  // replaying the same addresses must re-admit exactly the same subset.
  for (uint64_t i = 0; i < 64000; ++i) {
    estimator.Record(i * 64);
  }
  EXPECT_EQ(estimator.accesses(), 64000u);
  const uint64_t first_pass = estimator.sampled_accesses();
  EXPECT_GT(first_pass, 500u);
  EXPECT_LT(first_pass, 1500u);
  for (uint64_t i = 0; i < 64000; ++i) {
    estimator.Record(i * 64);
  }
  EXPECT_EQ(estimator.sampled_accesses(), 2 * first_pass);
}

TEST(OnlineMrcTest, MissRatioAtBytesInterpolatesBetweenWays) {
  OnlineMrcConfig config;
  config.geometry = ScaledGeometry();
  OnlineMrcEstimator estimator(config);
  FeedTrace(estimator, LlcLikeProfile(), 100000, 300000);

  const uint64_t way_bytes = ScaledWayBytes();
  EXPECT_DOUBLE_EQ(estimator.MissRatioAtBytes(11 * way_bytes),
                   estimator.MissRatioAtWays(11));
  const double at_4 = estimator.MissRatioAtWays(4);
  const double at_5 = estimator.MissRatioAtWays(5);
  EXPECT_DOUBLE_EQ(
      estimator.MissRatioAtBytes(4 * way_bytes + way_bytes / 2),
      at_4 + 0.5 * (at_5 - at_4));
  // Beyond the modeled capacity the query clamps to the last way point.
  EXPECT_DOUBLE_EQ(estimator.MissRatioAtBytes(40 * way_bytes),
                   estimator.MissRatioAtWays(11));
}

}  // namespace
}  // namespace copart
