// Cross-validation of the analytic miss-ratio curves against the
// trace-driven way-partitioned cache: the closed form the fast epoch model
// uses must agree with actual LRU behaviour on synthetic traces realizing
// the same reuse profile. This is the load-bearing link between the two
// cache models (DESIGN.md §4).
#include <gtest/gtest.h>

#include "cache/miss_ratio_curve.h"
#include "cache/way_partitioned_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "trace/trace_generator.h"

namespace copart {
namespace {

struct ValidationCase {
  std::string name;
  ReuseProfile profile;
  uint32_t ways;
};

class MrcValidationTest : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(MrcValidationTest, TraceDrivenMatchesAnalytic) {
  const ValidationCase& test_case = GetParam();
  // Scaled-down LLC (1/64 of the Xeon) keeps trace replay fast while
  // preserving way granularity; working sets in the profiles below are
  // sized for this geometry.
  const LlcGeometry geometry{
      .total_bytes = MiB(22) / 64, .num_ways = 11, .line_bytes = 64};
  WayPartitionedCache cache(geometry, 1);
  cache.SetMask(0, WayMask::Contiguous(0, test_case.ways));

  MixtureTraceGenerator generator(test_case.profile, geometry.line_bytes,
                                  Rng(4242));
  // Warm up until steady state, then measure.
  for (int i = 0; i < 300000; ++i) {
    cache.Access(0, generator.Next());
  }
  cache.ResetStats();
  for (int i = 0; i < 600000; ++i) {
    cache.Access(0, generator.Next());
  }

  const double analytic =
      test_case.profile.MissRatio(geometry.CapacityForWays(test_case.ways));
  const double measured = cache.stats(0).MissRatio();
  EXPECT_NEAR(measured, analytic, 0.05)
      << test_case.name << " ways=" << test_case.ways;
}

std::vector<ValidationCase> MakeCases() {
  const uint64_t way_bytes = MiB(22) / 64 / 11;  // Scaled way size.
  std::vector<ValidationCase> cases;
  const ReuseProfile llc_like(
      {{0.3, static_cast<uint64_t>(1.4 * way_bytes)},
       {0.68, static_cast<uint64_t>(4.1 * way_bytes)}},
      0.0004);
  const ReuseProfile bw_like({{0.05, static_cast<uint64_t>(1.5 * way_bytes)}},
                             0.94);
  const ReuseProfile both_like({{0.55, 22 * way_bytes}}, 0.25);
  const ReuseProfile resident_heavy({{0.4, 2 * way_bytes}}, 0.05);
  for (uint32_t ways : {1u, 2u, 4u, 8u, 11u}) {
    cases.push_back({"llc_like_w" + std::to_string(ways), llc_like, ways});
    cases.push_back({"bw_like_w" + std::to_string(ways), bw_like, ways});
    cases.push_back({"both_like_w" + std::to_string(ways), both_like, ways});
    cases.push_back(
        {"resident_w" + std::to_string(ways), resident_heavy, ways});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, MrcValidationTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<ValidationCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace copart
