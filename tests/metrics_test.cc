// Slowdown (Eq. 1), unfairness (Eq. 2), throughput metrics.
#include "metrics/fairness.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace copart {
namespace {

TEST(SlowdownTest, Ratio) {
  EXPECT_DOUBLE_EQ(Slowdown(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(Slowdown(100.0, 100.0), 1.0);
}

TEST(SlowdownDeathTest, RejectsNonPositive) {
  EXPECT_DEATH(Slowdown(0.0, 1.0), "Check failed");
  EXPECT_DEATH(Slowdown(1.0, 0.0), "Check failed");
}

TEST(UnfairnessTest, EqualSlowdownsArePerfectlyFair) {
  const std::array<double, 4> slowdowns = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(Unfairness(slowdowns), 0.0);
}

TEST(UnfairnessTest, CoefficientOfVariation) {
  const std::array<double, 2> slowdowns = {1.0, 3.0};
  // mean 2, population stddev 1 -> sigma/mu = 0.5.
  EXPECT_DOUBLE_EQ(Unfairness(slowdowns), 0.5);
}

TEST(UnfairnessTest, ScaleInvariant) {
  const std::array<double, 3> a = {1.0, 2.0, 3.0};
  const std::array<double, 3> b = {2.0, 4.0, 6.0};
  EXPECT_NEAR(Unfairness(a), Unfairness(b), 1e-12);
}

TEST(UnfairnessTest, FewerThanTwoAppsIsZero) {
  EXPECT_EQ(Unfairness({}), 0.0);
  const std::array<double, 1> one = {5.0};
  EXPECT_EQ(Unfairness(one), 0.0);
}

TEST(UnfairnessTest, MoreSpreadIsLessFair) {
  const std::array<double, 4> tight = {1.9, 2.0, 2.0, 2.1};
  const std::array<double, 4> wide = {1.0, 2.0, 2.0, 3.0};
  EXPECT_LT(Unfairness(tight), Unfairness(wide));
}

TEST(UnfairnessTest, FromIpsVectors) {
  const std::array<double, 2> full = {100.0, 200.0};
  const std::array<double, 2> actual = {50.0, 100.0};  // Both slowed 2x.
  EXPECT_DOUBLE_EQ(UnfairnessFromIps(full, actual), 0.0);
  const std::array<double, 2> skewed = {100.0, 50.0};  // 1x vs 4x.
  EXPECT_GT(UnfairnessFromIps(full, skewed), 0.5);
}

TEST(ThroughputTest, GeoMean) {
  const std::array<double, 2> ips = {1e9, 4e9};
  EXPECT_NEAR(GeoMeanThroughput(ips), 2e9, 1.0);
}

}  // namespace
}  // namespace copart
