// Backoff: deterministic replay, exponential growth under the cap, jitter
// bounds, and the Reset() semantics the hardened ResourceManager relies on.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/rng.h"

namespace copart {
namespace {

TEST(BackoffTest, SameSeedReplaysBitForBit) {
  const BackoffOptions options{
      .initial = 1.0, .multiplier = 2.0, .max = 8.0, .jitter = 0.25};
  Backoff a(options, 42);
  Backoff b(options, 42);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextDelay(), b.NextDelay()) << "failure " << i + 1;
  }
}

TEST(BackoffTest, GrowsExponentiallyWithoutJitter) {
  const BackoffOptions options{
      .initial = 1.0, .multiplier = 2.0, .max = 64.0, .jitter = 0.0};
  Backoff backoff(options, 1);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 1.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 2.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 4.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 8.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 16.0);
  EXPECT_EQ(backoff.failures(), 5);
}

TEST(BackoffTest, CapsAtMax) {
  const BackoffOptions options{
      .initial = 1.0, .multiplier = 2.0, .max = 8.0, .jitter = 0.0};
  Backoff backoff(options, 1);
  for (int i = 0; i < 10; ++i) {
    const double delay = backoff.NextDelay();
    EXPECT_LE(delay, 8.0);
  }
  // Well past the knee the schedule sits exactly at the cap.
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 8.0);
}

TEST(BackoffTest, JitterStaysInBounds) {
  const BackoffOptions options{
      .initial = 2.0, .multiplier = 2.0, .max = 16.0, .jitter = 0.25};
  Backoff backoff(options, 7);
  double expected_base = 2.0;
  for (int i = 0; i < 50; ++i) {
    const double delay = backoff.NextDelay();
    EXPECT_GE(delay, expected_base * 0.75) << "failure " << i + 1;
    EXPECT_LE(delay, expected_base * 1.25) << "failure " << i + 1;
    expected_base = std::min(expected_base * 2.0, 16.0);
  }
}

TEST(BackoffTest, JitterActuallyVaries) {
  const BackoffOptions options{
      .initial = 8.0, .multiplier = 2.0, .max = 8.0, .jitter = 0.25};
  Backoff backoff(options, 3);
  // Base delay is pinned at the cap, so any spread comes from jitter.
  double lo = backoff.NextDelay();
  double hi = lo;
  for (int i = 0; i < 100; ++i) {
    const double delay = backoff.NextDelay();
    lo = std::min(lo, delay);
    hi = std::max(hi, delay);
  }
  EXPECT_GT(hi - lo, 1.0);  // 25% jitter on 8.0 spans [6, 10].
}

TEST(BackoffTest, ResetRestartsScheduleButNotJitterStream) {
  const BackoffOptions options{
      .initial = 1.0, .multiplier = 2.0, .max = 8.0, .jitter = 0.25};
  Backoff backoff(options, 11);
  std::vector<double> first = {backoff.NextDelay(), backoff.NextDelay(),
                               backoff.NextDelay()};
  backoff.Reset();
  EXPECT_EQ(backoff.failures(), 0);
  std::vector<double> second = {backoff.NextDelay(), backoff.NextDelay(),
                                backoff.NextDelay()};
  // The base schedule restarted: delay n after Reset uses the same
  // exponent as delay n before it...
  for (size_t i = 0; i < first.size(); ++i) {
    const double base = std::min(8.0, std::ldexp(1.0, static_cast<int>(i)));
    EXPECT_GE(first[i], base * 0.75);
    EXPECT_LE(first[i], base * 1.25);
    EXPECT_GE(second[i], base * 0.75);
    EXPECT_LE(second[i], base * 1.25);
  }
  // ...but the jitter stream advanced, so the two outages differ.
  EXPECT_NE(first, second);
}

TEST(BackoffTest, RngCtorMatchesSeedCtor) {
  const BackoffOptions options{
      .initial = 1.0, .multiplier = 2.0, .max = 8.0, .jitter = 0.25};
  Backoff from_seed(options, 123);
  Backoff from_rng(options, Rng(123));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(from_seed.NextDelay(), from_rng.NextDelay());
  }
}

}  // namespace
}  // namespace copart
