// Golden regression test for the SLO-governor A/B harness: every
// registered governor over the burst / diurnal / flash-crowd / phase-shift
// serving scenarios, serialized with full double precision (%.17g) and
// compared byte-for-byte against tests/golden/governor_ab_golden.json.
// Any change to a governor's decisions — the threshold walk, the MPC
// correction surface, the bandit's arm bookkeeping — or to the serve
// harness plumbing that shifts a cell by one ULP fails here.
//
// To regenerate after an INTENDED behavior change:
//   COPART_REGENERATE_GOLDEN=1 ./harness_governor_ab_golden_test
// then review the diff of tests/golden/governor_ab_golden.json like any
// other code change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "harness/governor_ab.h"

namespace copart {
namespace {

#ifndef COPART_GOLDEN_DIR
#error "COPART_GOLDEN_DIR must be defined by the build"
#endif

std::string GoldenPath() {
  return std::string(COPART_GOLDEN_DIR) + "/governor_ab_golden.json";
}

// Single-threaded pins the canonical execution; the determinism suite
// separately proves other thread counts serialize bit-identically. The
// sweep is the most expensive computation here, so share one run.
const GovernorAbResult& Result() {
  static const GovernorAbResult result = [] {
    GovernorAbConfig config;
    config.parallel = ParallelConfig{.num_threads = 1};
    return RunGovernorAb(config);
  }();
  return result;
}

TEST(GovernorAbGoldenTest, AbTableMatchesGoldenFile) {
  const std::string actual = GovernorAbToJson(Result());
  const std::string path = GoldenPath();

  if (std::getenv("COPART_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with COPART_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string expected = contents.str();

  if (actual != expected) {
    std::istringstream actual_lines(actual), expected_lines(expected);
    std::string actual_line, expected_line;
    size_t line = 0;
    while (true) {
      ++line;
      const bool have_actual =
          static_cast<bool>(std::getline(actual_lines, actual_line));
      const bool have_expected =
          static_cast<bool>(std::getline(expected_lines, expected_line));
      if (!have_actual && !have_expected) {
        break;
      }
      if (!have_actual || !have_expected || actual_line != expected_line) {
        FAIL() << "golden mismatch at line " << line << "\n  golden: "
               << (have_expected ? expected_line : "<eof>")
               << "\n  actual: " << (have_actual ? actual_line : "<eof>")
               << "\nIf this change is intended, regenerate with "
                  "COPART_REGENERATE_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

// The acceptance property the golden document must keep encoding: on the
// two scenarios the phase-blind analytic model cannot track — the
// flash-crowd queue-drain transient and the correlated phase rotation —
// some learned governor strictly beats threshold on violation rate or
// run-level p95.
TEST(GovernorAbGoldenTest, LearnedGovernorBeatsThresholdOffTheModelSurface) {
  for (const char* scenario : {"flash-crowd", "phase-shift"}) {
    const GovernorAbCell* threshold = nullptr;
    bool learned_wins = false;
    for (const GovernorAbCell& cell : Result().cells) {
      if (cell.scenario == scenario && cell.governor == "threshold") {
        threshold = &cell;
      }
    }
    ASSERT_NE(threshold, nullptr) << scenario;
    for (const GovernorAbCell& cell : Result().cells) {
      if (cell.scenario != scenario || cell.governor == "threshold") {
        continue;
      }
      if (cell.slo_violation_rate < threshold->slo_violation_rate ||
          cell.p95_ms < threshold->p95_ms) {
        learned_wins = true;
      }
    }
    EXPECT_TRUE(learned_wins)
        << scenario << ": no learned governor strictly beats threshold "
        << "(threshold viol " << threshold->slo_violation_rate << ", p95 "
        << threshold->p95_ms << " ms)";
  }
}

// On phase-shift specifically the MPC governor's win must be decisive:
// the threshold governor replans from the same phase-blind surface every
// rotation and re-violates, while the learned correction persists.
TEST(GovernorAbGoldenTest, MpcWinsPhaseShiftDecisively) {
  const GovernorAbCell* threshold = nullptr;
  const GovernorAbCell* mpc = nullptr;
  for (const GovernorAbCell& cell : Result().cells) {
    if (cell.scenario != "phase-shift") {
      continue;
    }
    if (cell.governor == "threshold") {
      threshold = &cell;
    } else if (cell.governor == "mpc") {
      mpc = &cell;
    }
  }
  ASSERT_NE(threshold, nullptr);
  ASSERT_NE(mpc, nullptr);
  EXPECT_LT(mpc->slo_violation_rate, 0.5 * threshold->slo_violation_rate);
  EXPECT_LT(mpc->p95_ms, threshold->p95_ms);
}

}  // namespace
}  // namespace copart
