// End-to-end fairness results (paper §6.1-§6.2): CoPart must beat the
// uncoordinated baselines on the sensitive mixes and track the offline
// static oracle. These are the repository's headline invariants — the same
// orderings Figs. 12-14 report.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/experiment.h"
#include "harness/mix.h"

namespace copart {
namespace {

std::map<std::string, ExperimentResult> RunAllPolicies(
    const WorkloadMix& mix, const ExperimentConfig& config) {
  std::map<std::string, ExperimentResult> results;
  for (const auto& [name, factory] : StandardPolicies()) {
    results[name] = RunExperiment(mix, factory, config);
  }
  return results;
}

class MixFairnessTest : public ::testing::TestWithParam<MixFamily> {};

// CoPart achieves (weakly) better fairness than EQ on every sensitive mix,
// with real improvement on the heavily sensitive ones.
TEST_P(MixFairnessTest, CoPartAtLeastAsFairAsEq) {
  const WorkloadMix mix = MakeMix(GetParam(), 4);
  ExperimentConfig config;
  const ExperimentResult copart =
      RunExperiment(mix, CoPartFactory(), config);
  const ExperimentResult eq = RunExperiment(mix, EqFactory(), config);
  SCOPED_TRACE(mix.name + ": CoPart=" + std::to_string(copart.unfairness) +
               " EQ=" + std::to_string(eq.unfairness));
  // Insensitive mixes are near-fair under any policy; allow noise there.
  if (GetParam() == MixFamily::kInsensitive) {
    EXPECT_LE(copart.unfairness, eq.unfairness + 0.02);
  } else {
    EXPECT_LE(copart.unfairness, eq.unfairness * 1.10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, MixFairnessTest,
                         ::testing::ValuesIn(AllMixFamilies()),
                         [](const ::testing::TestParamInfo<MixFamily>& info) {
                           std::string name = MixFamilyName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// The paper's central claims on the four-app mixes (Fig. 12):
//  - CoPart substantially fairer than EQ on the highly sensitive mixes,
//  - CAT-only inadequate on the BW-sensitive mix,
//  - MBA-only inadequate on the LLC-sensitive mix,
//  - CoPart comparable to the static oracle.
TEST(FairnessHeadline, HighlyLlcSensitiveMix) {
  auto results = RunAllPolicies(MakeMix(MixFamily::kHighLlc, 4), {});
  EXPECT_LT(results["CoPart"].unfairness, results["EQ"].unfairness * 0.8);
  EXPECT_LT(results["CoPart"].unfairness,
            results["MBA-only"].unfairness * 0.9);
  EXPECT_LT(results["CoPart"].unfairness, results["ST"].unfairness * 2.0 + 0.05);
}

TEST(FairnessHeadline, HighlyBwSensitiveMix) {
  auto results = RunAllPolicies(MakeMix(MixFamily::kHighBw, 4), {});
  EXPECT_LT(results["CoPart"].unfairness, results["EQ"].unfairness * 0.8);
  EXPECT_LT(results["CoPart"].unfairness,
            results["CAT-only"].unfairness * 0.9);
  EXPECT_LT(results["CoPart"].unfairness, results["ST"].unfairness * 2.0 + 0.05);
}

TEST(FairnessHeadline, HighlyBothSensitiveMix) {
  auto results = RunAllPolicies(MakeMix(MixFamily::kHighBoth, 4), {});
  EXPECT_LT(results["CoPart"].unfairness, results["EQ"].unfairness * 0.8);
  EXPECT_LT(results["CoPart"].unfairness, results["ST"].unfairness * 2.0 + 0.05);
}

// Geometric-mean fairness improvement across all seven mixes must be
// substantial (the paper reports 57.3% vs EQ; shape, not the exact figure).
TEST(FairnessHeadline, AverageImprovementOverEq) {
  double log_ratio_sum = 0.0;
  int count = 0;
  for (MixFamily family : AllMixFamilies()) {
    if (family == MixFamily::kInsensitive) {
      continue;  // Near-zero unfairness: the ratio is noise.
    }
    const WorkloadMix mix = MakeMix(family, 4);
    const double copart =
        RunExperiment(mix, CoPartFactory(), {}).unfairness;
    const double eq = RunExperiment(mix, EqFactory(), {}).unfairness;
    ASSERT_GT(eq, 0.0);
    log_ratio_sum += std::log(std::max(copart, 1e-6) / eq);
    ++count;
  }
  const double geomean_ratio = std::exp(log_ratio_sum / count);
  // >= 30% average unfairness reduction across the sensitive mixes.
  EXPECT_LT(geomean_ratio, 0.7) << "geomean CoPart/EQ = " << geomean_ratio;
}

// Overhead (Fig. 16): mean exploration time stays in the tens of
// microseconds.
TEST(FairnessHeadline, ExplorationOverheadSmall) {
  const ExperimentResult result =
      RunExperiment(MakeMix(MixFamily::kHighBoth, 4), CoPartFactory(), {});
  EXPECT_GT(result.avg_exploration_us, 0.0);
  EXPECT_LT(result.avg_exploration_us, 100.0);
}

}  // namespace
}  // namespace copart
