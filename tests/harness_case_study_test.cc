// The dynamic consolidation case study (paper §6.3, Fig. 15).
#include "harness/case_study.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

CaseStudyConfig ShortConfig() {
  CaseStudyConfig config;
  config.duration_sec = 150.0;
  config.load_steps = {{0.0, 75000.0}, {50.0, 150000.0}, {100.0, 75000.0}};
  return config;
}

TEST(CaseStudyTest, ProducesFullTimeSeries) {
  const CaseStudyResult result = RunCaseStudy(ShortConfig());
  EXPECT_EQ(result.samples.size(), 300u);  // 150 s / 0.5 s.
  for (const CaseStudySample& sample : result.samples) {
    EXPECT_GT(sample.load_rps, 0.0);
    EXPECT_GT(sample.p95_ms, 0.0);
    EXPECT_GE(sample.lc_ways, 1u);
    EXPECT_LE(sample.lc_ways, 9u);
    EXPECT_GE(sample.batch_unfairness, 0.0);
  }
}

TEST(CaseStudyTest, SloHeldThroughLoadSteps) {
  const CaseStudyResult result = RunCaseStudy(ShortConfig());
  EXPECT_LT(result.slo_violation_fraction, 0.05);
}

TEST(CaseStudyTest, HighLoadShrinksBatchSlice) {
  const CaseStudyResult result = RunCaseStudy(ShortConfig());
  // Compare a steady low-load sample with a steady high-load sample.
  const CaseStudySample& low = result.samples[80];    // t = 40 s.
  const CaseStudySample& high = result.samples[180];  // t = 90 s.
  EXPECT_GT(high.lc_ways, low.lc_ways);
  EXPECT_LT(high.batch_max_mba, low.batch_max_mba);
  // And the slice is restored after the load drops back.
  const CaseStudySample& restored = result.samples[290];
  EXPECT_EQ(restored.lc_ways, low.lc_ways);
}

TEST(CaseStudyTest, CoPartReAdaptsOnEveryPoolChange) {
  const CaseStudyResult result = RunCaseStudy(ShortConfig());
  // Initial installation + two load steps = at least 3 adaptations.
  EXPECT_GE(result.copart_adaptations, 3u);
  // After the re-adaptation transient the manager must settle to idle.
  EXPECT_EQ(result.samples.back().copart_phase, "idle");
}

TEST(CaseStudyTest, CoPartFairerThanEqOnBatchApps) {
  CaseStudyConfig copart_config = ShortConfig();
  CaseStudyConfig eq_config = ShortConfig();
  eq_config.use_copart = false;
  const CaseStudyResult copart = RunCaseStudy(copart_config);
  const CaseStudyResult eq = RunCaseStudy(eq_config);
  EXPECT_LT(copart.mean_batch_unfairness, eq.mean_batch_unfairness)
      << "CoPart=" << copart.mean_batch_unfairness
      << " EQ=" << eq.mean_batch_unfairness;
}

TEST(CaseStudyTest, LatencyRisesWithLoad) {
  const CaseStudyResult result = RunCaseStudy(ShortConfig());
  const double low_p95 = result.samples[80].p95_ms;
  const double high_p95 = result.samples[180].p95_ms;
  EXPECT_GT(high_p95, low_p95);
  EXPECT_LT(high_p95, ShortConfig().slo_p95_ms);
}

}  // namespace
}  // namespace copart
