// Failure injection against the resource manager: unexpected app deaths in
// every phase and measurement-noise spikes must not crash the controller or
// leave it in an invalid state.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/resource_manager.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest()
      : machine_(MakeConfig()), resctrl_(&machine_), monitor_(&machine_),
        manager_(&resctrl_, &monitor_, {}) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.01;
    return config;
  }

  AppId Launch(const WorkloadDescriptor& descriptor) {
    Result<AppId> app = machine_.LaunchApp(descriptor, 4);
    CHECK(app.ok());
    CHECK(manager_.AddApp(*app).ok());
    return *app;
  }

  void Run(int periods) {
    for (int i = 0; i < periods; ++i) {
      machine_.AdvanceTime(0.5);
      manager_.Tick();
    }
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
  ResourceManager manager_;
};

TEST_F(FailureInjectionTest, AppDiesDuringProfiling) {
  Launch(WaterNsquared());
  const AppId victim = Launch(Cg());
  Launch(Swaptions());
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kProfiling);
  Run(2);  // Mid-profiling.
  ASSERT_TRUE(machine_.TerminateApp(victim).ok());  // No RemoveApp call.
  Run(120);
  EXPECT_EQ(manager_.NumApps(), 2u);
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  EXPECT_TRUE(manager_.current_state().Valid());
  EXPECT_EQ(manager_.current_state().NumApps(), 2u);
}

TEST_F(FailureInjectionTest, AppDiesDuringExploration) {
  Launch(Sp());
  const AppId victim = Launch(OceanNcp());
  Launch(Swaptions());
  Run(10);  // Past profiling (9 periods), into exploration.
  ASSERT_TRUE(machine_.TerminateApp(victim).ok());
  Run(120);
  EXPECT_EQ(manager_.NumApps(), 2u);
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
}

TEST_F(FailureInjectionTest, AppDiesWhileIdle) {
  const AppId a = Launch(WaterNsquared());
  const AppId b = Launch(Cg());
  Run(120);
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  ASSERT_TRUE(machine_.TerminateApp(a).ok());
  Run(80);
  EXPECT_EQ(manager_.NumApps(), 1u);
  // The survivor's converged state spans the whole pool.
  EXPECT_EQ(manager_.current_state().NumApps(), 1u);
  EXPECT_EQ(manager_.current_state().allocation(0).llc_ways, 11u);
  EXPECT_TRUE(machine_.AppExists(b));
}

TEST_F(FailureInjectionTest, AllAppsDie) {
  const AppId a = Launch(WaterNsquared());
  const AppId b = Launch(Cg());
  Run(20);
  ASSERT_TRUE(machine_.TerminateApp(a).ok());
  ASSERT_TRUE(machine_.TerminateApp(b).ok());
  Run(10);  // Must not crash.
  EXPECT_EQ(manager_.NumApps(), 0u);
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  // The manager's groups were reclaimed: a full set is creatable again.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(resctrl_.CreateGroup("g" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(FailureInjectionTest, DeadAppReplacedByNewOne) {
  Launch(WaterNsquared());
  const AppId victim = Launch(Cg());
  Run(120);
  ASSERT_TRUE(machine_.TerminateApp(victim).ok());
  Run(4);
  Launch(Ft());  // Replacement arrives.
  Run(120);
  EXPECT_EQ(manager_.NumApps(), 2u);
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  EXPECT_TRUE(manager_.current_state().Valid());
}

TEST_F(FailureInjectionTest, NoiseSpikeDoesNotBreakController) {
  const AppId a = Launch(Sp());
  Launch(OceanNcp());
  Launch(Swaptions());
  Run(20);
  // A burst of wild measurement noise (e.g. co-located interference the
  // model does not attribute) mid-exploration.
  machine_.SetIpsNoiseSigma(0.5);
  Run(20);
  machine_.SetIpsNoiseSigma(0.01);
  Run(160);
  EXPECT_TRUE(manager_.current_state().Valid());
  EXPECT_GE(manager_.SlowdownEstimate(a), 1.0);
  // The controller settles again after the disturbance (idle, or still
  // legitimately re-exploring after a drift trigger — but with a valid
  // state either way).
  Run(120);
  EXPECT_TRUE(manager_.current_state().Valid());
}

}  // namespace
}  // namespace copart
