// The headline guarantee of the parallel sweep engine: every fan-out site
// produces bit-identical results regardless of the worker thread count.
// Each comparison is EXPECT_EQ on raw doubles — no tolerance.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/parallel.h"
#include "harness/chaos.h"
#include "harness/experiment.h"
#include "harness/governor_ab.h"
#include "harness/heatmap.h"
#include "harness/mix.h"
#include "harness/replication.h"
#include "harness/sensing.h"
#include "harness/serve.h"
#include "harness/static_oracle.h"
#include "machine/simulated_machine.h"
#include "obs/obs.h"
#include "workload/workload.h"

namespace copart {
namespace {

constexpr uint32_t kThreadCounts[] = {2, 8};

TEST(HarnessDeterminismTest, SoloHeatmapIsBitIdenticalAcrossThreadCounts) {
  const SoloHeatmap serial = SweepSoloPerformance(
      WaterNsquared(), MachineConfig{}, 4, ParallelConfig{.num_threads = 1});
  for (uint32_t threads : kThreadCounts) {
    const SoloHeatmap parallel =
        SweepSoloPerformance(WaterNsquared(), MachineConfig{}, 4,
                             ParallelConfig{.num_threads = threads});
    ASSERT_EQ(parallel.normalized_ips.size(), serial.normalized_ips.size());
    for (size_t w = 0; w < serial.normalized_ips.size(); ++w) {
      for (size_t m = 0; m < serial.normalized_ips[w].size(); ++m) {
        EXPECT_EQ(parallel.normalized_ips[w][m], serial.normalized_ips[w][m])
            << "threads=" << threads << " cell (" << w << ", " << m << ")";
      }
    }
    EXPECT_EQ(parallel.stats.cells_completed, serial.stats.cells_completed);
  }
}

TEST(HarnessDeterminismTest, FairnessGridIsBitIdenticalAcrossThreadCounts) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  // A trimmed grid keeps the test quick while still spanning several cells.
  const std::vector<std::vector<uint32_t>> llc_configs = {
      {5, 3, 2, 1}, {3, 3, 3, 2}, {8, 1, 1, 1}};
  const std::vector<std::vector<uint32_t>> mba_configs = {
      {100, 100, 100, 100}, {20, 10, 100, 10}};
  const FairnessGrid serial =
      SweepMixFairness(mix, llc_configs, mba_configs, MachineConfig{}, 4,
                       ParallelConfig{.num_threads = 1});
  for (uint32_t threads : kThreadCounts) {
    const FairnessGrid parallel =
        SweepMixFairness(mix, llc_configs, mba_configs, MachineConfig{}, 4,
                         ParallelConfig{.num_threads = threads});
    EXPECT_EQ(parallel.nopart_unfairness, serial.nopart_unfairness)
        << "threads=" << threads;
    ASSERT_EQ(parallel.normalized_unfairness.size(),
              serial.normalized_unfairness.size());
    for (size_t l = 0; l < serial.normalized_unfairness.size(); ++l) {
      for (size_t m = 0; m < serial.normalized_unfairness[l].size(); ++m) {
        EXPECT_EQ(parallel.normalized_unfairness[l][m],
                  serial.normalized_unfairness[l][m])
            << "threads=" << threads << " cell (" << l << ", " << m << ")";
      }
    }
  }
}

TEST(HarnessDeterminismTest, ReplicationIsBitIdenticalAcrossThreadCounts) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  const PolicyFactory factory = StandardPolicies()[0].second;
  ExperimentConfig config;
  config.duration_sec = 5.0;
  config.parallel.num_threads = 1;
  const ReplicatedResult serial =
      RunReplicatedExperiment(mix, factory, config, /*replicas=*/4);
  for (uint32_t threads : kThreadCounts) {
    config.parallel.num_threads = threads;
    const ReplicatedResult parallel =
        RunReplicatedExperiment(mix, factory, config, /*replicas=*/4);
    EXPECT_EQ(parallel.unfairness.mean, serial.unfairness.mean)
        << "threads=" << threads;
    EXPECT_EQ(parallel.unfairness.stddev, serial.unfairness.stddev)
        << "threads=" << threads;
    EXPECT_EQ(parallel.unfairness.min, serial.unfairness.min);
    EXPECT_EQ(parallel.unfairness.max, serial.unfairness.max);
    EXPECT_EQ(parallel.throughput_geomean.mean,
              serial.throughput_geomean.mean)
        << "threads=" << threads;
    EXPECT_EQ(parallel.throughput_geomean.stddev,
              serial.throughput_geomean.stddev);
  }
}

TEST(HarnessDeterminismTest, StaticOracleIsBitIdenticalAcrossThreadCounts) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  MachineConfig machine_config;
  machine_config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(machine_config);
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok()) << app.status().ToString();
    apps.push_back(*app);
  }
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  const StaticOracleResult serial = FindStaticOracleState(
      machine, apps, pool, ParallelConfig{.num_threads = 1});
  for (uint32_t threads : kThreadCounts) {
    const StaticOracleResult parallel = FindStaticOracleState(
        machine, apps, pool, ParallelConfig{.num_threads = threads});
    EXPECT_EQ(parallel.best_state.ToString(), serial.best_state.ToString())
        << "threads=" << threads;
    EXPECT_EQ(parallel.best_unfairness, serial.best_unfairness)
        << "threads=" << threads;
    EXPECT_EQ(parallel.states_evaluated, serial.states_evaluated);
  }
}

TEST(HarnessDeterminismTest, ExperimentIsBitIdenticalAcrossEpochKernels) {
  // The epoch fast path (DESIGN.md §12) must be invisible to results: a
  // managed experiment — partitioning churn, phase crossings, noise — lands
  // on the exact same doubles whether the machine uses the vectorized SoA
  // kernel with incremental ticks (the default), the same kernel solving
  // every epoch, or the scalar reference kernel.
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  ExperimentConfig config;
  config.duration_sec = 10.0;
  const ExperimentResult reference = RunExperiment(mix, CoPartFactory(), config);

  struct Variant {
    const char* name;
    EpochKernel kernel;
    bool incremental;
  };
  const Variant variants[] = {
      {"vectorized_full", EpochKernel::kVectorized, false},
      {"scalar_incremental", EpochKernel::kScalar, true},
      {"scalar_full", EpochKernel::kScalar, false},
  };
  for (const Variant& variant : variants) {
    ExperimentConfig cell = config;
    cell.machine.epoch_kernel = variant.kernel;
    cell.machine.incremental_epochs = variant.incremental;
    const ExperimentResult result = RunExperiment(mix, CoPartFactory(), cell);
    EXPECT_EQ(result.unfairness, reference.unfairness) << variant.name;
    EXPECT_EQ(result.throughput_geomean, reference.throughput_geomean)
        << variant.name;
    ASSERT_EQ(result.slowdowns.size(), reference.slowdowns.size());
    for (size_t i = 0; i < reference.slowdowns.size(); ++i) {
      EXPECT_EQ(result.slowdowns[i], reference.slowdowns[i])
          << variant.name << " app " << i;
    }
  }
}

TEST(HarnessDeterminismTest, ChaosSuiteIsBitIdenticalAcrossThreadCounts) {
  // Fault schedules, app churn, backoff jitter, quarantine streaks — the
  // whole hardened control loop must still derive exclusively from the
  // per-schedule seed. A small suite keeps the test quick; the full 200
  // schedules run in core_chaos_property_test.cc.
  ChaosSuiteConfig config;
  config.num_schedules = 8;
  const ChaosSuiteResult serial =
      RunChaosSuite(config, ParallelConfig{.num_threads = 1});
  for (uint32_t threads : kThreadCounts) {
    const ChaosSuiteResult parallel =
        RunChaosSuite(config, ParallelConfig{.num_threads = threads});
    EXPECT_EQ(parallel.num_passed, serial.num_passed)
        << "threads=" << threads;
    EXPECT_EQ(parallel.injected_failures, serial.injected_failures)
        << "threads=" << threads;
    EXPECT_EQ(parallel.actuation_failures, serial.actuation_failures)
        << "threads=" << threads;
    EXPECT_EQ(parallel.rollbacks, serial.rollbacks) << "threads=" << threads;
    EXPECT_EQ(parallel.degraded_entries, serial.degraded_entries)
        << "threads=" << threads;
    EXPECT_EQ(parallel.degraded_recoveries, serial.degraded_recoveries)
        << "threads=" << threads;
    EXPECT_EQ(parallel.quarantines, serial.quarantines)
        << "threads=" << threads;
    ASSERT_EQ(parallel.failures.size(), serial.failures.size());
    for (size_t i = 0; i < serial.failures.size(); ++i) {
      EXPECT_EQ(parallel.failures[i].seed, serial.failures[i].seed);
      EXPECT_EQ(parallel.failures[i].failure, serial.failures[i].failure);
      EXPECT_EQ(parallel.failures[i].failure_period,
                serial.failures[i].failure_period);
    }
  }
}

TEST(HarnessDeterminismTest,
     ChaosSuiteMetricsAreBitIdenticalAcrossThreadCounts) {
  // The merged metrics registry (manager hardening counters + fault
  // injector hit counts, one private registry per schedule, merged serially
  // in index order) must serialize byte-identically for every thread count.
  // Only the deterministic dump is compared: wall-clock gauges measure the
  // host and are excluded from the contract by design.
  ChaosSuiteConfig config;
  config.num_schedules = 8;
  MetricsRegistry serial_metrics;
  const ChaosSuiteResult serial = RunChaosSuite(
      config, ParallelConfig{.num_threads = 1}, &serial_metrics);
  const std::string serial_dump =
      serial_metrics.DumpJson(/*deterministic_only=*/true);
  EXPECT_GT(serial_metrics.size(), 0u);
  for (uint32_t threads : kThreadCounts) {
    MetricsRegistry parallel_metrics;
    const ChaosSuiteResult parallel = RunChaosSuite(
        config, ParallelConfig{.num_threads = threads}, &parallel_metrics);
    EXPECT_EQ(parallel.num_passed, serial.num_passed)
        << "threads=" << threads;
    EXPECT_EQ(parallel_metrics.DumpJson(/*deterministic_only=*/true),
              serial_dump)
        << "threads=" << threads;
  }
}

TEST(HarnessDeterminismTest,
     SensingComparisonIsByteIdenticalAcrossRunsAndThreadCounts) {
  // The sensing A/B table (exact vs estimated vs noisy cells, fanned out
  // over ParallelMap) and its CSV export must be pure functions of the
  // config: per-seed noise streams, SHARDS admission hashes, and the
  // stop-at-target feed schedule all derive from pinned RNG forks, so the
  // rendered artifacts are byte-identical across repeats AND --threads.
  SensingConfig config;
  config.duration_sec = 25.0;  // Trimmed: full runs live in the accuracy suite.

  auto run_once = [&](uint32_t threads) {
    SensingConfig cell = config;
    cell.parallel.num_threads = threads;
    const SensingComparison comparison = RunSensingComparison(cell);
    char path[] = "/tmp/copart_sensing_det_XXXXXX";
    const int fd = mkstemp(path);
    CHECK_GE(fd, 0);
    close(fd);
    CHECK(WriteSensingCsv(comparison, path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    std::remove(path);
    return FormatSensingTable(comparison) + contents.str();
  };

  const std::string reference = run_once(1);
  EXPECT_GT(reference.size(), 0u);
  EXPECT_EQ(run_once(1), reference) << "repeat run diverged";
  for (uint32_t threads : kThreadCounts) {
    EXPECT_EQ(run_once(threads), reference) << "threads=" << threads;
  }
}

TEST(HarnessDeterminismTest,
     ExperimentTraceAndAuditAreByteIdenticalAcrossRuns) {
  // The observability artifacts of a managed experiment — Chrome trace,
  // audit log, deterministic metrics — are pure functions of the seed:
  // repeated runs must serialize byte-for-byte the same documents. (Spans
  // carry virtual-time durations, never wall clock, which is what makes
  // this possible; DESIGN.md §8.)
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  ExperimentConfig config;
  config.duration_sec = 10.0;
  auto run_once = [&](Observability& obs) {
    config.obs = &obs;
    (void)RunExperiment(mix, CoPartFactory(), config);
  };
  Observability reference;
  run_once(reference);
  const std::string reference_trace = reference.tracer.ChromeTraceJson();
  const std::string reference_audit = reference.audit.ToJson();
  EXPECT_GT(reference.tracer.event_count(), 0u);
  EXPECT_GT(reference.audit.size(), 0u);
  for (int repeat = 0; repeat < 2; ++repeat) {
    Observability obs;
    run_once(obs);
    EXPECT_EQ(obs.tracer.ChromeTraceJson(), reference_trace)
        << "repeat=" << repeat;
    EXPECT_EQ(obs.audit.ToJson(), reference_audit) << "repeat=" << repeat;
    EXPECT_EQ(obs.metrics.DumpJson(/*deterministic_only=*/true),
              reference.metrics.DumpJson(/*deterministic_only=*/true))
        << "repeat=" << repeat;
  }
}

TEST(HarnessDeterminismTest,
     ServeArtifactsAreByteIdenticalAcrossRunsAndThreadCounts) {
  // Every artifact the serve harness can export — per-period CSV, Chrome
  // trace, audit log, deterministic metrics — must be a pure function of
  // the scenario seed: byte-identical across repeated runs AND across
  // --threads values (the three comparison cells fan out in parallel).
  ServeScenarioConfig config = Section63ServeScenario();
  config.duration_sec = 10.0;  // Trimmed: the full trace runs elsewhere.

  auto csv_string = [](const ServeScenarioResult& result) {
    char path[] = "/tmp/copart_serve_det_XXXXXX";
    const int fd = mkstemp(path);
    CHECK_GE(fd, 0);
    close(fd);
    CHECK(WriteServeCsv(result, path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    std::remove(path);
    return contents.str();
  };

  struct Artifacts {
    std::string csv, trace, audit, metrics;
  };
  auto run_once = [&](uint32_t threads) {
    Observability obs;
    ServeScenarioConfig cell = config;
    cell.obs = &obs;
    const ServeComparisonResult comparison = RunServeComparison(
        cell, ParallelConfig{.num_threads = threads});
    Artifacts artifacts;
    artifacts.csv = csv_string(comparison.copart) +
                    csv_string(comparison.equal_share) +
                    csv_string(comparison.no_part);
    artifacts.trace = obs.tracer.ChromeTraceJson();
    artifacts.audit = obs.audit.ToJson();
    artifacts.metrics = obs.metrics.DumpJson(/*deterministic_only=*/true);
    return artifacts;
  };

  const Artifacts reference = run_once(1);
  EXPECT_GT(reference.csv.size(), 0u);
  EXPECT_GT(reference.audit.size(), 2u);  // More than "[]".
  EXPECT_GT(reference.metrics.size(), 2u);
  const Artifacts repeat = run_once(1);
  EXPECT_EQ(repeat.csv, reference.csv);
  EXPECT_EQ(repeat.trace, reference.trace);
  EXPECT_EQ(repeat.audit, reference.audit);
  EXPECT_EQ(repeat.metrics, reference.metrics);
  for (uint32_t threads : kThreadCounts) {
    const Artifacts parallel = run_once(threads);
    EXPECT_EQ(parallel.csv, reference.csv) << "threads=" << threads;
    EXPECT_EQ(parallel.trace, reference.trace) << "threads=" << threads;
    EXPECT_EQ(parallel.audit, reference.audit) << "threads=" << threads;
    EXPECT_EQ(parallel.metrics, reference.metrics) << "threads=" << threads;
  }
}

TEST(HarnessDeterminismTest,
     GovernorAbArtifactsAreByteIdenticalAcrossThreadCounts) {
  // The governor A/B sweep (every registered SloGovernor x four serving
  // scenarios, fanned out over ParallelMap) and both of its exports must
  // be pure functions of the scenario seeds: the learned governors carry
  // per-run state (MPC correction cells, bandit arm counts) but no RNG of
  // their own, so the JSON and CSV render byte-identically regardless of
  // --threads.
  auto run_once = [](uint32_t threads) {
    GovernorAbConfig config;
    config.parallel.num_threads = threads;
    const GovernorAbResult result = RunGovernorAb(config);
    char path[] = "/tmp/copart_governor_ab_det_XXXXXX";
    const int fd = mkstemp(path);
    CHECK_GE(fd, 0);
    close(fd);
    CHECK(WriteGovernorAbCsv(result, path).ok());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    std::remove(path);
    return GovernorAbToJson(result) + contents.str();
  };

  const std::string reference = run_once(1);
  EXPECT_GT(reference.size(), 0u);
  for (uint32_t threads : kThreadCounts) {
    EXPECT_EQ(run_once(threads), reference) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace copart
