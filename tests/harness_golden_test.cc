// Golden regression test for the sweep harness: one solo heatmap and one
// fairness grid are serialized with full double precision (%.17g) and
// compared byte-for-byte against tests/golden/sweep_golden.json. Any
// change to the epoch model, the workload surrogates, the RNG splitter, or
// the sweep plumbing that shifts a result by even one ULP fails here.
//
// To regenerate after an INTENDED behavior change:
//   COPART_REGENERATE_GOLDEN=1 ./harness_golden_test
// then review the diff of tests/golden/sweep_golden.json like any other
// code change.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "harness/heatmap.h"
#include "harness/mix.h"
#include "workload/workload.h"

namespace copart {
namespace {

#ifndef COPART_GOLDEN_DIR
#error "COPART_GOLDEN_DIR must be defined by the build"
#endif

std::string GoldenPath() {
  return std::string(COPART_GOLDEN_DIR) + "/sweep_golden.json";
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendGrid(std::ostringstream& out, const std::string& key,
                const std::vector<std::vector<double>>& grid) {
  out << "  \"" << key << "\": [\n";
  for (size_t r = 0; r < grid.size(); ++r) {
    out << "    [";
    for (size_t c = 0; c < grid[r].size(); ++c) {
      out << (c == 0 ? "" : ", ") << FormatDouble(grid[r][c]);
    }
    out << "]" << (r + 1 == grid.size() ? "" : ",") << "\n";
  }
  out << "  ]";
}

// The exact sweeps pinned by the golden file. Single-threaded so the test
// exercises the canonical (reference) execution; the determinism suite
// separately proves other thread counts match it bit-for-bit.
std::string ComputeGoldenDocument() {
  const ParallelConfig serial{.num_threads = 1};
  const SoloHeatmap solo =
      SweepSoloPerformance(WaterNsquared(), MachineConfig{}, 4, serial);

  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  const std::vector<std::vector<uint32_t>> llc_configs = {
      {5, 3, 2, 1}, {3, 3, 3, 2}, {8, 1, 1, 1}};
  const std::vector<std::vector<uint32_t>> mba_configs = {
      {100, 100, 100, 100}, {20, 10, 100, 10}};
  const FairnessGrid grid = SweepMixFairness(mix, llc_configs, mba_configs,
                                             MachineConfig{}, 4, serial);

  std::ostringstream out;
  out << "{\n";
  out << "  \"solo_workload\": \"" << solo.workload << "\",\n";
  AppendGrid(out, "solo_normalized_ips", solo.normalized_ips);
  out << ",\n";
  out << "  \"fairness_mix\": \"" << grid.mix_name << "\",\n";
  out << "  \"nopart_unfairness\": "
      << FormatDouble(grid.nopart_unfairness) << ",\n";
  AppendGrid(out, "fairness_normalized_unfairness",
             grid.normalized_unfairness);
  out << "\n}\n";
  return out.str();
}

TEST(HarnessGoldenTest, SweepResultsMatchGoldenFile) {
  const std::string actual = ComputeGoldenDocument();
  const std::string path = GoldenPath();

  if (std::getenv("COPART_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with COPART_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string expected = contents.str();

  if (actual != expected) {
    // Locate the first differing line for a readable failure.
    std::istringstream actual_lines(actual), expected_lines(expected);
    std::string actual_line, expected_line;
    size_t line = 0;
    while (true) {
      ++line;
      const bool have_actual =
          static_cast<bool>(std::getline(actual_lines, actual_line));
      const bool have_expected =
          static_cast<bool>(std::getline(expected_lines, expected_line));
      if (!have_actual && !have_expected) {
        break;
      }
      if (!have_actual || !have_expected || actual_line != expected_line) {
        FAIL() << "golden mismatch at line " << line << "\n  golden: "
               << (have_expected ? expected_line : "<eof>")
               << "\n  actual: " << (have_actual ? actual_line : "<eof>")
               << "\nIf this change is intended, regenerate with "
                  "COPART_REGENERATE_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace copart
