// Chaos property suite: hundreds of randomized fault schedules against the
// hardened ResourceManager, with safety invariants asserted every control
// period (see harness/chaos.h). A failing schedule prints its seed so it
// can be replayed exactly with `copartctl chaos --seed <seed>`.
#include <cstdio>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "harness/chaos.h"

namespace copart {
namespace {

TEST(ChaosPropertyTest, TwoHundredRandomSchedulesHoldInvariants) {
  ChaosSuiteConfig config;
  config.num_schedules = 200;
  const ChaosSuiteResult suite = RunChaosSuite(config, ParallelConfig{});

  EXPECT_EQ(suite.num_schedules, 200);
  for (const ChaosScheduleResult& failure : suite.failures) {
    ADD_FAILURE() << "chaos schedule failed: seed=0x" << std::hex
                  << failure.seed << std::dec << " period="
                  << failure.failure_period << ": " << failure.failure
                  << " (replay: copartctl chaos --seed 0x" << std::hex
                  << failure.seed << std::dec << ")";
  }
  EXPECT_EQ(suite.num_passed, suite.num_schedules);

  // The suite must actually exercise the hardening machinery — a quiet run
  // where no fault ever lands would pass the invariants vacuously.
  EXPECT_GT(suite.injected_failures, 0u);
  EXPECT_GT(suite.actuation_failures, 0u);
  EXPECT_GT(suite.rollbacks, 0u);
  EXPECT_GT(suite.degraded_entries, 0u);
  EXPECT_GT(suite.degraded_recoveries, 0u);
  EXPECT_GT(suite.quarantines, 0u);
  // Every degraded entry recovered (the invariant also checks this per
  // schedule, but the aggregate makes the contract explicit).
  EXPECT_EQ(suite.degraded_entries, suite.degraded_recoveries);

  std::printf(
      "chaos suite: %d/%d passed; injected=%llu actuation_failures=%llu "
      "rollbacks=%llu degraded=%llu recovered=%llu quarantines=%llu\n",
      suite.num_passed, suite.num_schedules,
      static_cast<unsigned long long>(suite.injected_failures),
      static_cast<unsigned long long>(suite.actuation_failures),
      static_cast<unsigned long long>(suite.rollbacks),
      static_cast<unsigned long long>(suite.degraded_entries),
      static_cast<unsigned long long>(suite.degraded_recoveries),
      static_cast<unsigned long long>(suite.quarantines));
}

TEST(ChaosPropertyTest, SingleScheduleReplaysFromSeed) {
  ChaosScheduleConfig config;
  config.seed = 0xD00DFEEDULL;
  const ChaosScheduleResult a = RunChaosSchedule(config);
  const ChaosScheduleResult b = RunChaosSchedule(config);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.injected_failures, b.injected_failures);
  EXPECT_EQ(a.actuation_failures, b.actuation_failures);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.degraded_entries, b.degraded_entries);
  EXPECT_EQ(a.degraded_recoveries, b.degraded_recoveries);
  EXPECT_EQ(a.quarantines, b.quarantines);
}

TEST(ChaosPropertyTest, ChurnFreeSchedulesAlsoHold) {
  ChaosSuiteConfig config;
  config.base_seed = 0x5AFE5EEDULL;
  config.num_schedules = 20;
  config.schedule.allow_app_churn = false;
  const ChaosSuiteResult suite = RunChaosSuite(config, ParallelConfig{});
  for (const ChaosScheduleResult& failure : suite.failures) {
    ADD_FAILURE() << "churn-free chaos schedule failed: seed=0x" << std::hex
                  << failure.seed << std::dec << ": " << failure.failure;
  }
  EXPECT_EQ(suite.num_passed, suite.num_schedules);
}

}  // namespace
}  // namespace copart
