// Property tests for the compiled (table-interpolated) miss-ratio curves
// against the exact Che solver: tight pointwise agreement across randomized
// reuse mixtures, monotonicity (the invariant UCP-style policies rely on),
// and exact endpoints.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/compiled_mrc.h"
#include "cache/miss_ratio_curve.h"
#include "common/rng.h"
#include "common/units.h"
#include "workload/workload.h"

namespace copart {
namespace {

// The accuracy contract of the compiled fast path: relative error <= 1e-4
// wherever the exact value is non-negligible, absolute error <= 1e-5 below
// that (an MRC tail of 1e-5 is ~zero misses for every model consumer).
void ExpectClose(double compiled, double exact, uint64_t capacity,
                 const char* what) {
  const double error = std::abs(compiled - exact);
  EXPECT_LE(error, std::max(1e-4 * exact, 1e-5))
      << what << " at capacity " << capacity << ": compiled=" << compiled
      << " exact=" << exact;
}

// Log-spaced + random capacities spanning the whole operating range of the
// simulated machines (a fraction of a way up to beyond any footprint).
std::vector<uint64_t> ProbeCapacities(Rng& rng) {
  std::vector<uint64_t> capacities;
  for (uint64_t capacity = 1024; capacity <= GiB(1); capacity *= 2) {
    capacities.push_back(capacity);
    capacities.push_back(capacity + capacity / 3);
  }
  for (int i = 0; i < 200; ++i) {
    capacities.push_back(1024 + rng.NextUint64(MiB(64)));
  }
  return capacities;
}

ReuseProfile RandomProfile(Rng& rng) {
  const size_t num_components = rng.NextUint64(4);  // 0-3 components.
  std::vector<ReuseComponent> components;
  double weight_budget = 1.0;
  for (size_t i = 0; i < num_components; ++i) {
    ReuseComponent component;
    component.weight = weight_budget * (0.1 + 0.6 * rng.NextDouble());
    // Working sets log-uniform in [64 KiB, 64 MiB].
    component.working_set_bytes =
        static_cast<uint64_t>(KiB(64) * std::pow(1024.0, rng.NextDouble()));
    weight_budget -= component.weight;
    components.push_back(component);
  }
  const double streaming = weight_budget * rng.NextDouble();
  return ReuseProfile(std::move(components), streaming);
}

TEST(CompiledMrcPropertyTest, MatchesExactSolveOnRandomProfiles) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 40; ++trial) {
    const ReuseProfile profile = RandomProfile(rng);
    SCOPED_TRACE("trial " + std::to_string(trial));
    for (const uint64_t capacity : ProbeCapacities(rng)) {
      ExpectClose(profile.MissRatio(capacity, MrcMode::kCompiled),
                  profile.MissRatio(capacity), capacity, "random profile");
    }
  }
}

TEST(CompiledMrcPropertyTest, MatchesExactSolveOnWorkloadSurrogates) {
  Rng rng(0xBEEF);
  std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  registry.push_back(Stream());
  registry.push_back(Memcached());
  registry.push_back(WordCount());
  registry.push_back(Kmeans());
  registry.push_back(PhasedScanCompute());
  for (const WorkloadDescriptor& descriptor : registry) {
    SCOPED_TRACE(descriptor.name);
    for (const uint64_t capacity : ProbeCapacities(rng)) {
      ExpectClose(
          descriptor.reuse_profile.MissRatio(capacity, MrcMode::kCompiled),
          descriptor.reuse_profile.MissRatio(capacity), capacity,
          descriptor.name.c_str());
    }
  }
}

TEST(CompiledMrcPropertyTest, MonotoneNonIncreasingInCapacity) {
  Rng rng(0xD1CE);
  for (int trial = 0; trial < 20; ++trial) {
    const ReuseProfile profile = RandomProfile(rng);
    SCOPED_TRACE("trial " + std::to_string(trial));
    double previous = profile.MissRatio(0, MrcMode::kCompiled);
    // Fine-grained ramp: 1% capacity steps catch any interpolation wiggle
    // between nodes, not just node-to-node drops.
    for (uint64_t capacity = 1024; capacity <= MiB(96);
         capacity += std::max<uint64_t>(1024, capacity / 100)) {
      const double miss = profile.MissRatio(capacity, MrcMode::kCompiled);
      EXPECT_LE(miss, previous + 1e-12) << "capacity " << capacity;
      previous = miss;
    }
  }
}

TEST(CompiledMrcPropertyTest, EndpointsExact) {
  Rng rng(0xFACADE);
  for (int trial = 0; trial < 20; ++trial) {
    const ReuseProfile profile = RandomProfile(rng);
    // Capacity 0 and far-beyond-the-grid queries take the exact-solve
    // fallback, so they must agree to the last bit.
    EXPECT_EQ(profile.MissRatio(0, MrcMode::kCompiled),
              profile.MissRatio(0));
    const uint64_t huge = GiB(64);
    EXPECT_EQ(profile.MissRatio(huge, MrcMode::kCompiled),
              profile.MissRatio(huge));
  }
}

TEST(CompiledMrcTest, TableIsSharedAcrossProfileCopies) {
  const ReuseProfile original = Sp().reuse_profile;
  const ReuseProfile copy = original;
  // Same table object, not merely equal contents: compilation is memoized
  // per descriptor.
  EXPECT_EQ(&original.Compiled(), &copy.Compiled());
}

TEST(CompiledMrcTest, HigherDensityTightensTheTable) {
  const ReuseProfile profile({{0.5, MiB(8)}, {0.3, MiB(1)}}, 0.1);
  CompiledMrcOptions coarse;
  coarse.samples_per_decade = 8;
  CompiledMrcOptions fine;
  fine.samples_per_decade = 96;
  const CompiledMrc coarse_table(profile, coarse);
  const CompiledMrc fine_table(profile, fine);
  EXPECT_GT(fine_table.num_samples(), 4 * coarse_table.num_samples());
  // Worst-case interpolation error must shrink with density.
  double coarse_err = 0.0;
  double fine_err = 0.0;
  for (uint64_t capacity = KiB(256); capacity <= MiB(32);
       capacity += KiB(173)) {
    const double exact = profile.MissRatio(capacity);
    coarse_err =
        std::max(coarse_err, std::abs(coarse_table.Evaluate(capacity) - exact));
    fine_err =
        std::max(fine_err, std::abs(fine_table.Evaluate(capacity) - exact));
  }
  EXPECT_LT(fine_err, coarse_err);
  EXPECT_LE(fine_err, 1e-5);
}

TEST(CompiledMrcTest, CoversReportsGridRange)  {
  const ReuseProfile profile({{0.6, MiB(4)}}, 0.2);
  const CompiledMrc& table = profile.Compiled();
  EXPECT_FALSE(table.Covers(0));
  EXPECT_TRUE(table.Covers(table.min_capacity_bytes()));
  EXPECT_TRUE(table.Covers(MiB(22)));
  EXPECT_TRUE(table.Covers(table.max_capacity_bytes()));
  EXPECT_FALSE(table.Covers(table.max_capacity_bytes() + 1));
}

}  // namespace
}  // namespace copart
