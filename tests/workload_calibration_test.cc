// Validates that every workload surrogate lands in its paper category under
// the paper's own classification criteria (§3.3) and reproduces the §4.1
// headline thresholds. These tests pin the calibration: if a surrogate
// parameter drifts, the failure message shows the measured surface.
#include <gtest/gtest.h>

#include "harness/heatmap.h"
#include "machine/machine_config.h"
#include "machine/simulated_machine.h"
#include "workload/workload.h"

namespace copart {
namespace {

class CalibrationTest : public ::testing::TestWithParam<WorkloadDescriptor> {
 protected:
  static SoloHeatmap Sweep(const WorkloadDescriptor& descriptor) {
    return SweepSoloPerformance(descriptor, MachineConfig{}, 4);
  }

  // Performance at (ways, mba) relative to the grid peak.
  static double At(const SoloHeatmap& map, uint32_t ways, uint32_t mba) {
    return map.normalized_ips[ways - 1][mba / 10 - 1];
  }
};

// §3.3: LLC-sensitive iff >=15% degradation from 11 ways -> 1 way at MBA 100.
// BW-sensitive iff >=15% degradation from MBA 100 -> 10 at 11 ways.
// Insensitive iff <1% on both axes.
TEST_P(CalibrationTest, MatchesPaperCategory) {
  const WorkloadDescriptor descriptor = GetParam();
  const SoloHeatmap map = Sweep(descriptor);
  const double full = At(map, 11, 100);
  const double llc_degradation = 1.0 - At(map, 1, 100) / full;
  const double bw_degradation = 1.0 - At(map, 11, 10) / full;

  SCOPED_TRACE(descriptor.name + ": llc_deg=" +
               std::to_string(llc_degradation) +
               " bw_deg=" + std::to_string(bw_degradation));
  switch (descriptor.category) {
    case WorkloadCategory::kLlcSensitive:
      EXPECT_GE(llc_degradation, 0.15);
      EXPECT_LT(bw_degradation, 0.15);
      break;
    case WorkloadCategory::kBwSensitive:
      EXPECT_GE(bw_degradation, 0.15);
      EXPECT_LT(llc_degradation, 0.15);
      break;
    case WorkloadCategory::kBothSensitive:
      EXPECT_GE(llc_degradation, 0.15);
      EXPECT_GE(bw_degradation, 0.15);
      break;
    case WorkloadCategory::kInsensitive:
      EXPECT_LT(llc_degradation, 0.01);
      EXPECT_LT(bw_degradation, 0.01);
      break;
    default:
      FAIL() << "unexpected category for a Table 2 benchmark";
  }
}

// Every benchmark's performance surface must be (weakly) monotone in both
// allocated resources — more ways or a higher MBA level never hurts.
TEST_P(CalibrationTest, PerformanceMonotoneInResources) {
  const SoloHeatmap map = Sweep(GetParam());
  constexpr double kTolerance = 1e-9;
  for (size_t w = 0; w < map.way_counts.size(); ++w) {
    for (size_t m = 0; m < map.mba_percents.size(); ++m) {
      if (w > 0) {
        EXPECT_GE(map.normalized_ips[w][m],
                  map.normalized_ips[w - 1][m] - kTolerance)
            << "ways " << map.way_counts[w] << " mba " << map.mba_percents[m];
      }
      if (m > 0) {
        EXPECT_GE(map.normalized_ips[w][m],
                  map.normalized_ips[w][m - 1] - kTolerance)
            << "ways " << map.way_counts[w] << " mba " << map.mba_percents[m];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CalibrationTest,
    ::testing::ValuesIn(AllTable2Benchmarks()),
    [](const ::testing::TestParamInfo<WorkloadDescriptor>& info) {
      return info.param.short_name;
    });

// §4.1 headline thresholds: WN, WS, RT require 4, 3, 2 ways for 90% of the
// full-resource performance.
TEST(CalibrationThresholds, LlcSensitiveWaysFor90Percent) {
  EXPECT_EQ(SweepSoloPerformance(WaterNsquared(), MachineConfig{})
                .MinWaysForFraction(0.9),
            4u);
  EXPECT_EQ(SweepSoloPerformance(WaterSpatial(), MachineConfig{})
                .MinWaysForFraction(0.9),
            3u);
  EXPECT_EQ(SweepSoloPerformance(Raytrace(), MachineConfig{})
                .MinWaysForFraction(0.9),
            2u);
}

// §4.1: OC, CG, FT require MBA levels 30, 20, 30 for 90%.
TEST(CalibrationThresholds, BwSensitiveMbaFor90Percent) {
  EXPECT_EQ(SweepSoloPerformance(OceanCp(), MachineConfig{})
                .MinMbaForFraction(0.9),
            30u);
  EXPECT_EQ(
      SweepSoloPerformance(Cg(), MachineConfig{}).MinMbaForFraction(0.9),
      20u);
  EXPECT_EQ(
      SweepSoloPerformance(Ft(), MachineConfig{}).MinMbaForFraction(0.9),
      30u);
}

// §4.1: SP reaches similar performance at (8 ways, 20%) and (3 ways, 40%) —
// the multi-state equivalence that motivates coordinated search.
TEST(CalibrationThresholds, SpEquivalentStates) {
  const SoloHeatmap map = SweepSoloPerformance(Sp(), MachineConfig{});
  const double a = map.normalized_ips[8 - 1][20 / 10 - 1];
  const double b = map.normalized_ips[3 - 1][40 / 10 - 1];
  EXPECT_NEAR(a, b, 0.08) << "SP (8w,20%)=" << a << " vs (3w,40%)=" << b;
}

// Table 2 counter signatures at full resources: order-of-magnitude match for
// LLC accesses/s and misses/s (exact rates are testbed-specific; EXPERIMENTS
// .md records the measured values).
TEST(CalibrationTable2, CounterRatesWithinFactorOfPaper) {
  struct Expectation {
    WorkloadDescriptor descriptor;
    double paper_accesses_per_sec;
    double paper_misses_per_sec;
    double factor;  // Allowed multiplicative deviation.
  };
  const std::vector<Expectation> expectations = {
      {WaterNsquared(), 6.91e7, 2.58e4, 3.0},
      {WaterSpatial(), 4.32e7, 9.12e5, 3.0},
      {Raytrace(), 3.76e7, 2.16e4, 3.0},
      {OceanCp(), 5.19e7, 4.88e7, 3.0},
      {Cg(), 3.10e8, 1.12e8, 3.0},
      {Ft(), 2.45e7, 2.00e7, 3.0},
      {Sp(), 1.69e8, 9.21e7, 3.0},
      {OceanNcp(), 9.49e7, 7.89e7, 3.0},
      {Fmm(), 6.12e6, 3.47e6, 4.0},
      {Swaptions(), 1.08e4, 7.98e2, 4.0},
      {Ep(), 7.34e5, 1.79e4, 4.0},
  };
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  for (const Expectation& expectation : expectations) {
    SimulatedMachine machine(config);
    Result<AppId> app = machine.LaunchApp(expectation.descriptor, 4);
    ASSERT_TRUE(app.ok());
    machine.AdvanceTime(1.0);
    const AppEpochSnapshot& epoch = machine.LastEpoch(*app);
    SCOPED_TRACE(expectation.descriptor.name);
    EXPECT_GE(epoch.llc_accesses_per_sec,
              expectation.paper_accesses_per_sec / expectation.factor);
    EXPECT_LE(epoch.llc_accesses_per_sec,
              expectation.paper_accesses_per_sec * expectation.factor);
    EXPECT_GE(epoch.llc_misses_per_sec,
              expectation.paper_misses_per_sec / expectation.factor);
    EXPECT_LE(epoch.llc_misses_per_sec,
              expectation.paper_misses_per_sec * expectation.factor);
  }
}

// STREAM saturates the memory controller at full resources (§3.3 uses it as
// the maximum-traffic reference).
TEST(CalibrationTable2, StreamSaturatesBandwidth) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  Result<AppId> app = machine.LaunchApp(Stream(), 4);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(1.0);
  const AppEpochSnapshot& epoch = machine.LastEpoch(*app);
  EXPECT_NEAR(epoch.bandwidth_grant_bytes_per_sec,
              config.total_memory_bandwidth,
              0.02 * config.total_memory_bandwidth);
}

}  // namespace
}  // namespace copart
