#include "harness/csv_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace copart {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream stream(path);
  std::ostringstream content;
  content << stream.rdbuf();
  return content.str();
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape("1.5"), "1.5");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesSpecialFields) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesRows) {
  const std::string path = TempPath("basic.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    writer.WriteRow({"time", "unfairness", "policy"});
    writer.WriteRow({"0.5", "0.12", "CoPart"});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  EXPECT_EQ(ReadFile(path), "time,unfairness,policy\n0.5,0.12,CoPart\n");
}

TEST(CsvWriterTest, EscapesInRows) {
  const std::string path = TempPath("escaped.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"a,b", "plain"});
  }
  EXPECT_EQ(ReadFile(path), "\"a,b\",plain\n");
}

TEST(CsvWriterTest, NumericRowFormatting) {
  const std::string path = TempPath("numeric.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    const double values[] = {1.0, 0.123456789, 2.8e10};
    writer.WriteNumericRow("row", values);
  }
  EXPECT_EQ(ReadFile(path), "row,1,0.123457,2.8e+10\n");
}

TEST(CsvWriterTest, BadPathReportsStatus) {
  CsvWriter writer("/nonexistent_dir_zz/file.csv");
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvWriterDeathTest, WritingOnBadWriterAborts) {
  CsvWriter writer("/nonexistent_dir_zz/file.csv");
  EXPECT_DEATH(writer.WriteRow({"x"}), "Check failed");
}

}  // namespace
}  // namespace copart
