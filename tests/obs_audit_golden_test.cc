// Golden regression test for the controller decision audit log: one small
// canned CoPart consolidation is run with observability attached and the
// exported audit JSON is compared byte-for-byte against
// tests/golden/audit_golden.json. Any change to the control loop's decision
// sequence — classifications, masks, MBA levels, triggers, phase
// transitions — fails here and must be reviewed as a behavior change.
//
// To regenerate after an INTENDED behavior change:
//   COPART_REGENERATE_GOLDEN=1 ./obs_audit_golden_test
// then review the diff of tests/golden/audit_golden.json like any other
// code change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/mix.h"
#include "obs/obs.h"

namespace copart {
namespace {

#ifndef COPART_GOLDEN_DIR
#error "COPART_GOLDEN_DIR must be defined by the build"
#endif

std::string GoldenPath() {
  return std::string(COPART_GOLDEN_DIR) + "/audit_golden.json";
}

// The exact run pinned by the golden file: CoPart on a 4-app H-Both mix for
// 30 simulated seconds — long enough to cover profiling, exploration, the
// matcher's allocation, and the settle into idle.
std::string ComputeAuditDocument() {
  Observability obs;
  ExperimentConfig config;
  config.duration_sec = 30.0;
  config.obs = &obs;
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  (void)RunExperiment(mix, CoPartFactory(), config);
  return obs.audit.ToJson();
}

TEST(ObsAuditGoldenTest, AuditLogMatchesGoldenFile) {
  const std::string actual = ComputeAuditDocument();
  const std::string path = GoldenPath();

  if (std::getenv("COPART_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with COPART_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string expected = contents.str();

  if (actual != expected) {
    std::istringstream actual_lines(actual), expected_lines(expected);
    std::string actual_line, expected_line;
    size_t line = 0;
    while (true) {
      ++line;
      const bool have_actual =
          static_cast<bool>(std::getline(actual_lines, actual_line));
      const bool have_expected =
          static_cast<bool>(std::getline(expected_lines, expected_line));
      if (!have_actual && !have_expected) {
        break;
      }
      if (!have_actual || !have_expected || actual_line != expected_line) {
        FAIL() << "audit golden mismatch at line " << line << "\n  golden: "
               << (have_expected ? expected_line : "<eof>")
               << "\n  actual: " << (have_actual ? actual_line : "<eof>")
               << "\nIf this change is intended, regenerate with "
                  "COPART_REGENERATE_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

// Two independent runs of the same canned experiment must serialize the
// exact same audit document and Chrome trace — the in-process half of the
// determinism contract (the golden file pins it across builds).
TEST(ObsAuditGoldenTest, AuditAndTraceAreByteStableAcrossRuns) {
  Observability first_obs, second_obs;
  ExperimentConfig config;
  config.duration_sec = 30.0;
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);

  config.obs = &first_obs;
  (void)RunExperiment(mix, CoPartFactory(), config);
  config.obs = &second_obs;
  (void)RunExperiment(mix, CoPartFactory(), config);

  EXPECT_EQ(first_obs.audit.ToJson(), second_obs.audit.ToJson());
  EXPECT_EQ(first_obs.tracer.ChromeTraceJson(),
            second_obs.tracer.ChromeTraceJson());
  EXPECT_EQ(first_obs.metrics.DumpJson(/*deterministic_only=*/true),
            second_obs.metrics.DumpJson(/*deterministic_only=*/true));
}

}  // namespace
}  // namespace copart
