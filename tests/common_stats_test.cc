#include "common/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace copart {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, MeanOfValues) {
  const std::array<double, 4> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  const std::array<double, 3> values = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(StdDev(values), 0.0);
}

TEST(StatsTest, StdDevPopulation) {
  const std::array<double, 4> values = {2.0, 4.0, 4.0, 6.0};
  // mean 4, squared deviations {4,0,0,4}, population variance 2.
  EXPECT_DOUBLE_EQ(StdDev(values), std::sqrt(2.0));
}

TEST(StatsTest, StdDevOfSingletonIsZero) {
  const std::array<double, 1> values = {3.0};
  EXPECT_EQ(StdDev(values), 0.0);
}

TEST(StatsTest, GeoMeanOfValues) {
  const std::array<double, 3> values = {1.0, 10.0, 100.0};
  EXPECT_NEAR(GeoMean(values), 10.0, 1e-9);
}

TEST(StatsTest, GeoMeanEmptyIsZero) { EXPECT_EQ(GeoMean({}), 0.0); }

TEST(StatsDeathTest, GeoMeanRejectsNonPositive) {
  const std::array<double, 2> values = {1.0, 0.0};
  EXPECT_DEATH(GeoMean(values), "positive");
}

TEST(StatsTest, PercentileInterpolates) {
  const std::array<double, 5> values = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 12.5), 15.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::array<double, 4> values = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
}

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  const std::array<double, 6> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  RunningStats stats;
  for (double value : values) {
    stats.Add(value);
  }
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_NEAR(stats.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(stats.stddev(), StdDev(values), 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats stats;
  stats.Add(10.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
}

}  // namespace
}  // namespace copart
