// The resctrl-like partitioning interface: group lifecycle, schemata
// validation (kernel CAT/MBA rules), and task binding.
#include "resctrl/resctrl.h"

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace copart {
namespace {

class ResctrlTest : public ::testing::Test {
 protected:
  ResctrlTest() : machine_(MachineConfig{}), resctrl_(&machine_) {}

  SimulatedMachine machine_;
  Resctrl resctrl_;
};

TEST_F(ResctrlTest, DefaultGroupAlwaysExists) {
  EXPECT_EQ(resctrl_.DefaultGroup().clos(), 0u);
  EXPECT_EQ(resctrl_.ReadSchemata(resctrl_.DefaultGroup()),
            "L3:0=7ff;MB:0=100");
}

TEST_F(ResctrlTest, CreateFindRemoveGroup) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("batch0");
  ASSERT_TRUE(group.ok());
  EXPECT_NE(group->clos(), 0u);
  Result<ResctrlGroupId> found = resctrl_.FindGroup("batch0");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *group);
  EXPECT_EQ(resctrl_.GroupNames().size(), 1u);
  ASSERT_TRUE(resctrl_.RemoveGroup(*group).ok());
  EXPECT_FALSE(resctrl_.FindGroup("batch0").ok());
  EXPECT_EQ(resctrl_.RemoveGroup(*group).code(), StatusCode::kNotFound);
}

TEST_F(ResctrlTest, DuplicateNameRejected) {
  ASSERT_TRUE(resctrl_.CreateGroup("g").ok());
  EXPECT_EQ(resctrl_.CreateGroup("g").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ResctrlTest, EmptyNameRejected) {
  EXPECT_EQ(resctrl_.CreateGroup("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ResctrlTest, GroupCountLimitedByClosCount) {
  // CLOS 0 is the default group; 15 more fit on the modeled CPU.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(resctrl_.CreateGroup("g" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(resctrl_.CreateGroup("overflow").status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ResctrlTest, ClosReusedAfterRemoval) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("a");
  ASSERT_TRUE(group.ok());
  const uint32_t clos = group->clos();
  ASSERT_TRUE(resctrl_.RemoveGroup(*group).ok());
  Result<ResctrlGroupId> reused = resctrl_.CreateGroup("b");
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(reused->clos(), clos);
}

TEST_F(ResctrlTest, CannotRemoveDefaultGroup) {
  EXPECT_EQ(resctrl_.RemoveGroup(resctrl_.DefaultGroup()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ResctrlTest, FreshGroupHasResetSchemata) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("fresh");
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(resctrl_.ReadSchemata(*group), "L3:0=7ff;MB:0=100");
}

TEST_F(ResctrlTest, SetCacheMaskValidatesCatRules) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(resctrl_.SetCacheMask(*group, 0x1).ok());
  EXPECT_TRUE(resctrl_.SetCacheMask(*group, 0x7ff).ok());
  EXPECT_TRUE(resctrl_.SetCacheMask(*group, 0x0f0).ok());
  EXPECT_FALSE(resctrl_.SetCacheMask(*group, 0x0).ok());       // Zero.
  EXPECT_FALSE(resctrl_.SetCacheMask(*group, 0x101).ok());     // Sparse.
  EXPECT_FALSE(resctrl_.SetCacheMask(*group, 0x800).ok());     // Way 11.
  // The machine state reflects the last valid write.
  EXPECT_EQ(machine_.ClosWayMask(group->clos()).bits(), 0x0f0u);
}

TEST_F(ResctrlTest, SetMbaValidatesPlatformRange) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(resctrl_.SetMbaPercent(*group, 10).ok());
  EXPECT_TRUE(resctrl_.SetMbaPercent(*group, 100).ok());
  EXPECT_FALSE(resctrl_.SetMbaPercent(*group, 0).ok());
  EXPECT_FALSE(resctrl_.SetMbaPercent(*group, 45).ok());
  EXPECT_FALSE(resctrl_.SetMbaPercent(*group, 200).ok());
  EXPECT_EQ(machine_.ClosMbaLevel(group->clos()).percent(), 100u);
}

TEST_F(ResctrlTest, SchemataRoundTrip) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(resctrl_.SetCacheMask(*group, 0x1c).ok());
  ASSERT_TRUE(resctrl_.SetMbaPercent(*group, 40).ok());
  EXPECT_EQ(resctrl_.ReadSchemata(*group), "L3:0=1c;MB:0=40");
}

TEST_F(ResctrlTest, AssignAppMovesClosBinding) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(machine_.AppClos(*app), 0u);
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(resctrl_.AssignApp(*group, *app).ok());
  EXPECT_EQ(machine_.AppClos(*app), group->clos());
}

TEST_F(ResctrlTest, AssignRejectsUnknownTargets) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(resctrl_.AssignApp(*group, AppId(999)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(resctrl_.AssignApp(ResctrlGroupId(7), AppId(0)).code(),
            StatusCode::kNotFound);
}

TEST_F(ResctrlTest, RemoveGroupReturnsAppsToDefault) {
  Result<AppId> app = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(resctrl_.AssignApp(*group, *app).ok());
  ASSERT_TRUE(resctrl_.RemoveGroup(*group).ok());
  EXPECT_EQ(machine_.AppClos(*app), 0u);
}

TEST_F(ResctrlTest, MonitoringReportsOccupancyAndBandwidth) {
  Result<AppId> cg = machine_.LaunchApp(Cg(), 4);
  Result<AppId> sw = machine_.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(cg.ok());
  ASSERT_TRUE(sw.ok());
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("mon");
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(resctrl_.AssignApp(*group, *cg).ok());
  ASSERT_TRUE(resctrl_.SetCacheMask(*group, 0x00F).ok());
  machine_.AdvanceTime(0.5);

  // CMT: the group's occupancy equals CG's effective capacity and stays
  // within its 4-way partition.
  const double occupancy = resctrl_.ReadLlcOccupancyBytes(*group);
  EXPECT_NEAR(occupancy, machine_.LastEpoch(*cg).effective_capacity_bytes,
              1.0);
  EXPECT_LE(occupancy, 4.0 * machine_.config().llc.WayBytes() * 1.001);

  // MBM: CG generates GB/s-scale traffic; the swaptions-only default group
  // generates almost none.
  EXPECT_GT(resctrl_.ReadMemoryBandwidth(*group), 1e9);
  EXPECT_LT(resctrl_.ReadMemoryBandwidth(resctrl_.DefaultGroup()), 1e6);
}

TEST_F(ResctrlTest, MonitoringAggregatesOverGroupMembers) {
  Result<AppId> a = machine_.LaunchApp(OceanCp(), 4);
  Result<AppId> b = machine_.LaunchApp(Ft(), 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("pair");
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(resctrl_.AssignApp(*group, *a).ok());
  ASSERT_TRUE(resctrl_.AssignApp(*group, *b).ok());
  machine_.AdvanceTime(0.5);
  const double expected =
      (machine_.LastEpoch(*a).llc_misses_per_sec +
       machine_.LastEpoch(*b).llc_misses_per_sec) *
      machine_.config().llc.line_bytes;
  EXPECT_NEAR(resctrl_.ReadMemoryBandwidth(*group), expected, 1.0);
}

TEST_F(ResctrlTest, OperationsOnRemovedGroupFail) {
  Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(resctrl_.RemoveGroup(*group).ok());
  EXPECT_EQ(resctrl_.SetCacheMask(*group, 0x1).code(), StatusCode::kNotFound);
  EXPECT_EQ(resctrl_.SetMbaPercent(*group, 50).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace copart
