// The kernel-format schemata parser and the transactional WriteSchemata.
#include "resctrl/schemata.h"

#include <gtest/gtest.h>

#include "resctrl/resctrl.h"

namespace copart {
namespace {

TEST(SchemataParseTest, CompactForm) {
  Result<Schemata> schemata = ParseSchemata("L3:0=7ff;MB:0=100");
  ASSERT_TRUE(schemata.ok());
  EXPECT_EQ(schemata->l3_mask, 0x7FFu);
  EXPECT_EQ(schemata->mb_percent, 100u);
}

TEST(SchemataParseTest, KernelNewlineForm) {
  Result<Schemata> schemata = ParseSchemata("L3:0=3f\nMB:0=40\n");
  ASSERT_TRUE(schemata.ok());
  EXPECT_EQ(schemata->l3_mask, 0x3Fu);
  EXPECT_EQ(schemata->mb_percent, 40u);
}

TEST(SchemataParseTest, SingleResourceUpdates) {
  Result<Schemata> l3_only = ParseSchemata("L3:0=f0");
  ASSERT_TRUE(l3_only.ok());
  EXPECT_EQ(l3_only->l3_mask, 0xF0u);
  EXPECT_FALSE(l3_only->mb_percent.has_value());

  Result<Schemata> mb_only = ParseSchemata("MB:0=30");
  ASSERT_TRUE(mb_only.ok());
  EXPECT_FALSE(mb_only->l3_mask.has_value());
  EXPECT_EQ(mb_only->mb_percent, 30u);
}

TEST(SchemataParseTest, ToleratesWhitespaceAndHexPrefix) {
  Result<Schemata> schemata = ParseSchemata("  L3 : 0 = 0x1C \n  MB:0= 50 ");
  ASSERT_TRUE(schemata.ok());
  EXPECT_EQ(schemata->l3_mask, 0x1Cu);
  EXPECT_EQ(schemata->mb_percent, 50u);
}

TEST(SchemataParseTest, UppercaseHexDigits) {
  Result<Schemata> schemata = ParseSchemata("L3:0=7FF");
  ASSERT_TRUE(schemata.ok());
  EXPECT_EQ(schemata->l3_mask, 0x7FFu);
}

TEST(SchemataParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", ";", "L3", "L3:0", "L3:0=", "L3:1=7ff", "L2:0=7ff", "MB:0=abc",
        "L3:0=xyz", "L3:0=7ff;L3:0=3", "MB:0=40;MB:0=50", "=7ff",
        "L3=0:7ff", "MB:0=99999999999"}) {
    Result<Schemata> schemata = ParseSchemata(bad);
    EXPECT_FALSE(schemata.ok()) << "accepted: '" << bad << "'";
    EXPECT_EQ(schemata.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SchemataParseTest, RoundTripsThroughToString) {
  for (const char* text : {"L3:0=7ff;MB:0=100", "L3:0=1", "MB:0=10"}) {
    Result<Schemata> schemata = ParseSchemata(text);
    ASSERT_TRUE(schemata.ok());
    EXPECT_EQ(schemata->ToString(), text);
  }
}

class WriteSchemataTest : public ::testing::Test {
 protected:
  WriteSchemataTest() : machine_(MachineConfig{}), resctrl_(&machine_) {
    Result<ResctrlGroupId> group = resctrl_.CreateGroup("g");
    CHECK(group.ok());
    group_ = *group;
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  ResctrlGroupId group_;
};

TEST_F(WriteSchemataTest, AppliesBothResources) {
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, "L3:0=3f\nMB:0=40").ok());
  EXPECT_EQ(resctrl_.ReadSchemata(group_), "L3:0=3f;MB:0=40");
}

TEST_F(WriteSchemataTest, PartialUpdateKeepsOtherResource) {
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, "L3:0=7;MB:0=40").ok());
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, "MB:0=90").ok());
  EXPECT_EQ(resctrl_.ReadSchemata(group_), "L3:0=7;MB:0=90");
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, "L3:0=70").ok());
  EXPECT_EQ(resctrl_.ReadSchemata(group_), "L3:0=70;MB:0=90");
}

TEST_F(WriteSchemataTest, TransactionalOnValidationFailure) {
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, "L3:0=3f;MB:0=40").ok());
  // Valid L3 but out-of-range MB: NOTHING may change.
  EXPECT_FALSE(resctrl_.WriteSchemata(group_, "L3:0=7;MB:0=45").ok());
  EXPECT_EQ(resctrl_.ReadSchemata(group_), "L3:0=3f;MB:0=40");
  // Non-contiguous CBM with valid MB: same.
  EXPECT_FALSE(resctrl_.WriteSchemata(group_, "L3:0=505;MB:0=100").ok());
  EXPECT_EQ(resctrl_.ReadSchemata(group_), "L3:0=3f;MB:0=40");
}

TEST_F(WriteSchemataTest, ValidatesAgainstGeometry) {
  EXPECT_FALSE(resctrl_.WriteSchemata(group_, "L3:0=800").ok());  // Way 11.
  EXPECT_FALSE(resctrl_.WriteSchemata(group_, "L3:0=0").ok());
  EXPECT_FALSE(resctrl_.WriteSchemata(group_, "MB:0=0").ok());
}

TEST_F(WriteSchemataTest, UnknownGroupFails) {
  EXPECT_EQ(resctrl_.WriteSchemata(ResctrlGroupId(9), "L3:0=1").code(),
            StatusCode::kNotFound);
}

TEST_F(WriteSchemataTest, ReadWriteRoundTrip) {
  // Whatever ReadSchemata renders must be accepted back verbatim.
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, "L3:0=1c0;MB:0=70").ok());
  const std::string schemata = resctrl_.ReadSchemata(group_);
  ASSERT_TRUE(resctrl_.WriteSchemata(group_, schemata).ok());
  EXPECT_EQ(resctrl_.ReadSchemata(group_), schemata);
}

}  // namespace
}  // namespace copart
