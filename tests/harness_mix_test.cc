// Workload mix construction (paper §4.2, §6.1, §6.2).
#include "harness/mix.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

size_t CountCategory(const WorkloadMix& mix, WorkloadCategory category) {
  size_t count = 0;
  for (const WorkloadDescriptor& app : mix.apps) {
    if (app.category == category) {
      ++count;
    }
  }
  return count;
}

TEST(MixTest, HighMixesAreThreePlusOne) {
  const WorkloadMix h_llc = MakeMix(MixFamily::kHighLlc, 4);
  EXPECT_EQ(h_llc.apps.size(), 4u);
  EXPECT_EQ(CountCategory(h_llc, WorkloadCategory::kLlcSensitive), 3u);
  EXPECT_EQ(CountCategory(h_llc, WorkloadCategory::kInsensitive), 1u);

  const WorkloadMix h_bw = MakeMix(MixFamily::kHighBw, 4);
  EXPECT_EQ(CountCategory(h_bw, WorkloadCategory::kBwSensitive), 3u);

  const WorkloadMix h_both = MakeMix(MixFamily::kHighBoth, 4);
  EXPECT_EQ(CountCategory(h_both, WorkloadCategory::kBothSensitive), 3u);
}

TEST(MixTest, ModerateMixesAreTwoPlusTwo) {
  const WorkloadMix m_llc = MakeMix(MixFamily::kModerateLlc, 4);
  EXPECT_EQ(CountCategory(m_llc, WorkloadCategory::kLlcSensitive), 2u);
  EXPECT_EQ(CountCategory(m_llc, WorkloadCategory::kInsensitive), 2u);
}

TEST(MixTest, InsensitiveMixIsAllInsensitive) {
  const WorkloadMix is = MakeMix(MixFamily::kInsensitive, 4);
  EXPECT_EQ(CountCategory(is, WorkloadCategory::kInsensitive), 4u);
}

TEST(MixTest, AppCountSweepMatchesPaperRule) {
  for (size_t count = 3; count <= 6; ++count) {
    const WorkloadMix high = MakeMix(MixFamily::kHighBw, count);
    EXPECT_EQ(high.apps.size(), count);
    EXPECT_EQ(CountCategory(high, WorkloadCategory::kBwSensitive),
              count - 1);
    const WorkloadMix moderate = MakeMix(MixFamily::kModerateBw, count);
    EXPECT_EQ(CountCategory(moderate, WorkloadCategory::kBwSensitive),
              count / 2);
  }
}

TEST(MixTest, CyclesClassBenchmarksWhenCountExceedsClassSize) {
  // 6-app H-LLC: 5 LLC-sensitive slots but only 3 distinct benchmarks.
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 6);
  EXPECT_EQ(CountCategory(mix, WorkloadCategory::kLlcSensitive), 5u);
  EXPECT_EQ(mix.apps[0].short_name, mix.apps[3].short_name);
}

TEST(MixTest, NamesEncodeFamilyAndCount) {
  EXPECT_EQ(MakeMix(MixFamily::kHighLlc, 4).name, "H-LLC-4");
  EXPECT_EQ(MakeMix(MixFamily::kInsensitive, 6).name, "IS-6");
}

TEST(MixTest, CharacterizationMixesMatchPaper) {
  const WorkloadMix llc = LlcSensitiveCharacterizationMix();
  ASSERT_EQ(llc.apps.size(), 4u);
  EXPECT_EQ(llc.apps[0].short_name, "WN");
  EXPECT_EQ(llc.apps[1].short_name, "WS");
  EXPECT_EQ(llc.apps[2].short_name, "RT");
  EXPECT_EQ(llc.apps[3].short_name, "SW");

  const WorkloadMix bw = BwSensitiveCharacterizationMix();
  EXPECT_EQ(bw.apps[0].short_name, "OC");
  EXPECT_EQ(bw.apps[3].short_name, "SW");

  const WorkloadMix both = BothSensitiveCharacterizationMix();
  EXPECT_EQ(both.apps[0].short_name, "SP");
  EXPECT_EQ(both.apps[2].short_name, "FMM");
}

TEST(MixTest, AllFamiliesEnumerated) {
  EXPECT_EQ(AllMixFamilies().size(), 7u);
  EXPECT_STREQ(MixFamilyName(AllMixFamilies()[0]), "H-LLC");
  EXPECT_STREQ(MixFamilyName(AllMixFamilies()[6]), "IS");
}

TEST(MixTest, CoresPerAppDividesMachine) {
  EXPECT_EQ(CoresPerApp(3), 5u);
  EXPECT_EQ(CoresPerApp(4), 4u);
  EXPECT_EQ(CoresPerApp(5), 3u);
  EXPECT_EQ(CoresPerApp(6), 2u);
  EXPECT_EQ(CoresPerApp(16), 1u);
}

}  // namespace
}  // namespace copart
