// Deterministic fault-driven scenarios for the hardened actuation path:
// degraded-mode entry and recovery, verify-readback rollback on silent
// drops, counter quarantine engage/release, and zombie-group retry. The
// randomized complement lives in core_chaos_property_test.cc.
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/resource_manager.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

FaultSpec ProbAlways() {
  FaultSpec spec;
  spec.probability = 1.0;
  return spec;
}

class DegradedModeTest : public ::testing::Test {
 protected:
  DegradedModeTest()
      : injector_(0xFA017), machine_(MakeConfig(&injector_)),
        resctrl_(&machine_), monitor_(&machine_),
        manager_(&resctrl_, &monitor_, {}) {}

  static MachineConfig MakeConfig(FaultInjector* injector) {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    config.fault_injector = injector;
    return config;
  }

  AppId Launch(const WorkloadDescriptor& descriptor) {
    Result<AppId> app = machine_.LaunchApp(descriptor, 4);
    CHECK(app.ok());
    CHECK(manager_.AddApp(*app).ok());
    return *app;
  }

  void Run(int periods) {
    for (int i = 0; i < periods; ++i) {
      machine_.AdvanceTime(0.5);
      manager_.Tick();
    }
  }

  FaultInjector injector_;  // Must outlive the machine.
  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
  ResourceManager manager_;
};

TEST_F(DegradedModeTest, ConsecutiveActuationFailuresEnterDegraded) {
  Launch(WaterNsquared());
  Launch(Cg());
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kProfiling);
  // Every L3 schemata write now fails: each transactional apply errors and
  // rolls back, the retry backs off exponentially, and after
  // max_consecutive_failures (default 5) the manager must give up on
  // adaptation. Backoff delays sum to well under 100 periods.
  injector_.Arm(fault_points::kResctrlSetL3, ProbAlways());
  Run(100);
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kDegraded);
  EXPECT_EQ(manager_.degraded_entries(), 1u);
  EXPECT_GE(manager_.actuation_failures(), 5u);
  EXPECT_EQ(manager_.degraded_recoveries(), 0u);
}

TEST_F(DegradedModeTest, RecoversAndReadaptsOnceFaultsClear) {
  Launch(WaterNsquared());
  Launch(Cg());
  injector_.Arm(fault_points::kResctrlSetL3, ProbAlways());
  Run(100);
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kDegraded);
  injector_.DisarmAll();
  // degraded_recovery_successes (3) clean fair-share applies, spaced by the
  // residual backoff, then adaptation restarts from profiling and converges.
  Run(200);
  EXPECT_NE(manager_.phase(), ResourceManager::Phase::kDegraded);
  EXPECT_EQ(manager_.degraded_recoveries(), 1u);
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  EXPECT_TRUE(manager_.current_state().Valid());
  EXPECT_EQ(manager_.current_state().NumApps(), 2u);
}

TEST_F(DegradedModeTest, SilentDropIsCaughtByReadbackAndRolledBack) {
  Launch(WaterNsquared());
  Launch(Cg());
  Run(2);  // Mid-profiling: the probe (and so app 0's mask) changes every
           // period, so the next L3 write carries a genuinely new value.
  // That write reports success but does not take. Only the transaction's
  // verify-readback can see this; it must roll back, count a failure, and
  // succeed on the backoff retry.
  FaultSpec spec;
  spec.one_shot_queries = {0};
  injector_.Arm(fault_points::kResctrlSetL3Silent, spec);
  Run(148);
  EXPECT_GE(manager_.rollbacks(), 1u);
  EXPECT_GE(manager_.actuation_failures(), 1u);
  EXPECT_EQ(manager_.degraded_entries(), 0u);  // One blip, no spiral.
  EXPECT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  EXPECT_TRUE(manager_.current_state().Valid());
}

TEST_F(DegradedModeTest, BadCountersQuarantineAndRelease) {
  const AppId a = Launch(WaterNsquared());
  const AppId b = Launch(Cg());
  Run(10);  // Past profiling (6 probe periods); exploration and idle both
            // sample every app every period.
  ASSERT_NE(manager_.phase(), ResourceManager::Phase::kProfiling);
  ASSERT_FALSE(manager_.Quarantined(a));
  // Every PMC read now drops. After quarantine_after_bad_samples (3)
  // consecutive bad periods both apps are quarantined; the controller keeps
  // running on conservative placeholders instead of garbage.
  injector_.Arm(fault_points::kPmcDropped, ProbAlways());
  Run(10);
  EXPECT_TRUE(manager_.Quarantined(a));
  EXPECT_TRUE(manager_.Quarantined(b));
  EXPECT_GE(manager_.quarantines(), 2u);
  EXPECT_TRUE(manager_.current_state().Valid());
  // Counters come back: quarantine_release_good_samples (3) healthy periods
  // lift the quarantine.
  injector_.DisarmAll();
  Run(100);
  EXPECT_FALSE(manager_.Quarantined(a));
  EXPECT_FALSE(manager_.Quarantined(b));
  EXPECT_TRUE(manager_.current_state().Valid());
}

TEST_F(DegradedModeTest, SaturatedCountersAlsoQuarantine) {
  const AppId a = Launch(WaterNsquared());
  Launch(Cg());
  Run(10);
  ASSERT_NE(manager_.phase(), ResourceManager::Phase::kProfiling);
  injector_.Arm(fault_points::kPmcSaturated, ProbAlways());
  Run(10);
  EXPECT_TRUE(manager_.Quarantined(a));
  injector_.DisarmAll();
  Run(100);
  EXPECT_FALSE(manager_.Quarantined(a));
}

TEST_F(DegradedModeTest, FailedGroupRemovalIsRetriedAsZombie) {
  Launch(WaterNsquared());
  const AppId victim = Launch(Cg());
  Run(120);
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  // The victim's rmdir fails transiently exactly once; the group must be
  // parked as a zombie and reclaimed on a later tick, not leaked.
  FaultSpec spec;
  spec.one_shot_queries = {0};
  injector_.Arm(fault_points::kResctrlRemoveGroup, spec);
  ASSERT_TRUE(machine_.TerminateApp(victim).ok());
  Run(10);
  EXPECT_EQ(manager_.NumApps(), 1u);
  // Every CLOS the manager ever held is reusable again: with one app
  // managed, 14 of the 15 non-default groups are free.
  std::vector<std::string> names;
  for (int i = 0; i < 14; ++i) {
    names.push_back("probe" + std::to_string(i));
    ASSERT_TRUE(resctrl_.CreateGroup(names.back()).ok()) << i;
  }
}

}  // namespace
}  // namespace copart
