// Replicated experiments: seed independence and the stability of the
// paper's headline conclusion across noise realizations.
#include "harness/replication.h"

#include <gtest/gtest.h>

#include "harness/mix.h"

namespace copart {
namespace {

TEST(ReplicationTest, SummaryShapesAreSane) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  ExperimentConfig config;
  config.duration_sec = 20.0;
  const ReplicatedResult result =
      RunReplicatedExperiment(mix, EqFactory(), config, 5);
  EXPECT_EQ(result.replicas, 5u);
  EXPECT_EQ(result.policy_name, "EQ");
  EXPECT_GT(result.unfairness.mean, 0.0);
  EXPECT_GE(result.unfairness.max, result.unfairness.mean);
  EXPECT_LE(result.unfairness.min, result.unfairness.mean);
  EXPECT_GE(result.unfairness.stddev, 0.0);
  EXPECT_GT(result.throughput_geomean.mean, 0.0);
}

TEST(ReplicationTest, SeedsActuallyVaryTheRuns) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  ExperimentConfig config;
  config.duration_sec = 20.0;
  const ReplicatedResult result =
      RunReplicatedExperiment(mix, CoPartFactory(), config, 5);
  // Different noise streams must produce measurably different outcomes.
  EXPECT_GT(result.unfairness.stddev, 0.0);
  EXPECT_LT(result.unfairness.min, result.unfairness.max);
}

TEST(ReplicationTest, SameBaseSeedReproduces) {
  const WorkloadMix mix = MakeMix(MixFamily::kModerateBw, 4);
  ExperimentConfig config;
  config.duration_sec = 10.0;
  const ReplicatedResult a =
      RunReplicatedExperiment(mix, CoPartFactory(), config, 3, 777);
  const ReplicatedResult b =
      RunReplicatedExperiment(mix, CoPartFactory(), config, 3, 777);
  EXPECT_DOUBLE_EQ(a.unfairness.mean, b.unfairness.mean);
  EXPECT_DOUBLE_EQ(a.unfairness.stddev, b.unfairness.stddev);
}

TEST(ReplicationTest, HeadlineConclusionStableAcrossSeeds) {
  // CoPart's fairness advantage over EQ on the H-LLC mix must hold not just
  // on one seed but with clear separation across replicas.
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  ExperimentConfig config;
  const ReplicatedResult copart =
      RunReplicatedExperiment(mix, CoPartFactory(), config, 5);
  const ReplicatedResult eq =
      RunReplicatedExperiment(mix, EqFactory(), config, 5);
  EXPECT_LT(copart.unfairness.max, eq.unfairness.min)
      << "CoPart worst case (" << copart.unfairness.max
      << ") not separated from EQ best case (" << eq.unfairness.min << ")";
}

}  // namespace
}  // namespace copart
