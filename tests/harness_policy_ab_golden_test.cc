// Golden regression test for the policy A/B harness: a reduced sweep
// (every registered partition policy over the paper mixes at 4 apps plus a
// 24-app consolidation, 10 simulated seconds) is serialized with full
// double precision (%.17g) and compared byte-for-byte against
// tests/golden/policy_ab_golden.json. Any change to a partition policy's
// decisions — CoPart's lending FSM, LFOC's clustering, LFOC+'s split/merge,
// CBP's prefetch throttle — or to the driver plumbing that shifts a cell by
// one ULP fails here.
//
// To regenerate after an INTENDED behavior change:
//   COPART_REGENERATE_GOLDEN=1 ./harness_policy_ab_golden_test
// then review the diff of tests/golden/policy_ab_golden.json like any other
// code change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "harness/policy_ab.h"

namespace copart {
namespace {

#ifndef COPART_GOLDEN_DIR
#error "COPART_GOLDEN_DIR must be defined by the build"
#endif

std::string GoldenPath() {
  return std::string(COPART_GOLDEN_DIR) + "/policy_ab_golden.json";
}

// Reduced relative to the copartctl default (48 apps, 50 s) so the test
// stays fast; single-threaded so it pins the canonical execution. The
// conformance suite separately proves other thread counts serialize
// bit-identically.
PolicyAbConfig GoldenConfig() {
  PolicyAbConfig config;
  config.paper_mix_app_count = 4;
  config.many_apps = 24;
  config.duration_sec = 10.0;
  config.parallel = ParallelConfig{.num_threads = 1};
  return config;
}

TEST(PolicyAbGoldenTest, AbTableMatchesGoldenFile) {
  const PolicyAbResult result = RunPolicyAb(GoldenConfig());
  const std::string actual = PolicyAbToJson(result);
  const std::string path = GoldenPath();

  if (std::getenv("COPART_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with COPART_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string expected = contents.str();

  if (actual != expected) {
    std::istringstream actual_lines(actual), expected_lines(expected);
    std::string actual_line, expected_line;
    size_t line = 0;
    while (true) {
      ++line;
      const bool have_actual =
          static_cast<bool>(std::getline(actual_lines, actual_line));
      const bool have_expected =
          static_cast<bool>(std::getline(expected_lines, expected_line));
      if (!have_actual && !have_expected) {
        break;
      }
      if (!have_actual || !have_expected || actual_line != expected_line) {
        FAIL() << "golden mismatch at line " << line << "\n  golden: "
               << (have_expected ? expected_line : "<eof>")
               << "\n  actual: " << (have_actual ? actual_line : "<eof>")
               << "\nIf this change is intended, regenerate with "
                  "COPART_REGENERATE_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

// The acceptance property the golden document must keep encoding: on the
// many-apps consolidation the best clustered policy strictly beats the
// per-app CoPart fallback on unfairness while leaving nobody unmanaged.
TEST(PolicyAbGoldenTest, ClusteringWinsTheManyAppsScenario) {
  const PolicyAbResult result = RunPolicyAb(GoldenConfig());
  const PolicyAbCell* copart = nullptr;
  const PolicyAbCell* best_clustered = nullptr;
  for (const PolicyAbCell& cell : result.cells) {
    if (cell.scenario.rfind("many-", 0) != 0) {
      continue;
    }
    if (cell.policy == "copart") {
      copart = &cell;
    } else if (best_clustered == nullptr ||
               cell.unfairness < best_clustered->unfairness) {
      best_clustered = &cell;
    }
  }
  ASSERT_NE(copart, nullptr);
  ASSERT_NE(best_clustered, nullptr);
  EXPECT_GT(copart->unmanaged_apps, 0u)
      << "per-app CoPart should refuse most of the consolidation";
  EXPECT_EQ(best_clustered->unmanaged_apps, 0u);
  EXPECT_LT(best_clustered->unfairness, copart->unfairness)
      << best_clustered->policy << " must strictly beat the CoPart fallback";
}

}  // namespace
}  // namespace copart
