// Chaos properties of the realistic-sensing stack (DESIGN.md §10): with
// lognormal counter noise, stale reads, AND resctrl fault injection active
// at the same time,
//
//   1. the latency-critical app's CLOS never drops below the configured
//      way floor — not in the governor's plan, not in the actuated mask —
//      no matter what the noisy miss estimates tell the classifier;
//   2. whenever the unfairness-trend governor engages BACKOFF, the manager
//      re-probes (or enters the degraded phase) within the configured
//      backoff window — noise cannot park the controller forever.
//
// Runs under `ctest -L chaos` as well as the default pass.
#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/resource_manager.h"
#include "harness/serve.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

constexpr uint32_t kWayFloor = 2;

PmcSensingParams NoisySensing(uint64_t seed) {
  PmcSensingParams sensing;
  sensing.enabled = true;
  sensing.noise_sigma = 0.05;       // 2.5x the default sigma.
  sensing.stale_probability = 0.03;
  sensing.seed = seed;
  return sensing;
}

void ArmResctrlFaults(FaultInjector& injector, double probability) {
  FaultSpec transient;
  transient.probability = probability;
  transient.burst_length = 2;
  FaultSpec silent;
  silent.probability = probability / 2.0;
  injector.Arm(fault_points::kResctrlSetL3, transient);
  injector.Arm(fault_points::kResctrlSetMb, transient);
  injector.Arm(fault_points::kResctrlSetL3Silent, silent);
  injector.Arm(fault_points::kResctrlSetMbSilent, silent);
  injector.Arm(fault_points::kResctrlSchemataPartial, silent);
}

// Property 1: the §6.3-style serving consolidation (memcached LC + two
// batch apps) with noisy sensing on top of the schemata fault storm.
void RunLcFloorSchedule(uint64_t seed) {
  FaultInjector injector(seed);
  MachineConfig machine_config;
  machine_config.fault_injector = &injector;
  SimulatedMachine machine(machine_config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  monitor.ConfigureSensing(NoisySensing(seed));

  ResourceManagerParams params;
  params.control_period_sec = 0.1;
  params.slo.enabled = true;
  params.slo.lc_way_floor = kWayFloor;
  params.slo.protect_rps_threshold = 150000.0;
  ResourceManager manager(&resctrl, &monitor, params);

  const WorkloadDescriptor lc_desc = Memcached();
  Result<AppId> lc = machine.LaunchApp(lc_desc, 8);
  ASSERT_TRUE(lc.ok()) << lc.status().ToString();
  LcAppModel model;
  model.slo_p95_ms = lc_desc.slo_p95_ms;
  model.instructions_per_request = lc_desc.instructions_per_request;
  model.capability_ips = [&](uint32_t ways) {
    return PredictLcCapabilityIps(lc_desc, 8, ways, machine_config);
  };
  model.initial_offered_rps = 75000.0;
  ASSERT_TRUE(manager.SetLatencyCriticalApp(*lc, model).ok());
  for (const WorkloadDescriptor& batch : {WordCount(), Kmeans()}) {
    Result<AppId> app = machine.LaunchApp(batch, 4);
    ASSERT_TRUE(app.ok());
    ASSERT_TRUE(manager.AddApp(*app).ok());
  }
  ArmResctrlFaults(injector, 0.2);

  for (int period = 0; period < 300; ++period) {
    const double t = 0.1 * period;
    const double rps = (t < 10.0 || t >= 20.0) ? 75000.0 : 190000.0;
    machine.SetAppRequiredIps(*lc, rps * lc_desc.instructions_per_request);
    manager.SetLcOfferedLoad(*lc, rps);
    machine.AdvanceTime(0.1);
    manager.Tick();

    ASSERT_GE(manager.LcWays(*lc), kWayFloor)
        << "seed " << seed << " period " << period;
    const WayMask actuated = machine.ClosWayMask(machine.AppClos(*lc));
    ASSERT_FALSE(actuated.Empty()) << "seed " << seed << " period " << period;
    ASSERT_GE(actuated.CountWays(), kWayFloor)
        << "seed " << seed << " period " << period;
  }
  // The schedule exercised both hazard sources.
  EXPECT_GT(injector.total_failures(), 0u) << "seed " << seed;
  EXPECT_GT(monitor.sensed_samples(), 0u) << "seed " << seed;
}

TEST(SensingChaosTest, LcClosNeverDropsBelowFloorUnderNoiseAndFaults) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunLcFloorSchedule(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Property 2: a batch consolidation with a hair-trigger trend governor
// (any measured unfairness increase during exploration engages BACKOFF).
// Whenever the FSM is observed in BACKOFF, a re-probe or a degraded entry
// must follow within backoff_periods ticks.
void RunBackoffSchedule(uint64_t seed, uint64_t* total_backoffs) {
  FaultInjector injector(seed);
  MachineConfig machine_config;
  machine_config.fault_injector = &injector;
  SimulatedMachine machine(machine_config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  monitor.ConfigureSensing(NoisySensing(seed ^ 0xB0FFULL));

  ResourceManagerParams params;
  params.trend.enabled = true;
  params.trend.warmup_periods = 1;
  params.trend.increase_factor = 1.0;  // Any rise counts.
  params.trend.max_increasing_intervals = 1;
  params.trend.backoff_periods = 6;
  ResourceManager manager(&resctrl, &monitor, params);

  for (const WorkloadDescriptor& batch :
       {Cg(), OceanCp(), WaterNsquared(), Swaptions()}) {
    Result<AppId> app = machine.LaunchApp(batch, 4);
    ASSERT_TRUE(app.ok());
    ASSERT_TRUE(manager.AddApp(*app).ok());
  }
  ArmResctrlFaults(injector, 0.05);

  int backoff_age = -1;  // Non-degraded periods in BACKOFF; -1 = not in it.
  bool saw_degraded = false;
  uint64_t reprobes_at_entry = 0;
  for (int period = 0; period < 400; ++period) {
    machine.AdvanceTime(0.5);
    manager.Tick();

    if (manager.trend_state() == TrendState::kBackoff) {
      if (manager.phase() == ManagerPhase::kDegraded) {
        // A failed best-state restore pauses the countdown; degraded
        // recovery restarts adaptation (and disarms BACKOFF) itself.
        saw_degraded = true;
        continue;
      }
      if (backoff_age < 0) {
        backoff_age = 0;
        saw_degraded = false;
        reprobes_at_entry = manager.trend_reprobes();
      } else {
        ++backoff_age;
      }
      ASSERT_LE(backoff_age, params.trend.backoff_periods)
          << "seed " << seed << " period " << period
          << ": BACKOFF outlived its window without re-probing";
    } else if (backoff_age >= 0) {
      // Left BACKOFF: via the window-expiry re-probe or via a degraded
      // interlude's recovery, never by silently wedging.
      EXPECT_TRUE(manager.trend_reprobes() > reprobes_at_entry ||
                  saw_degraded)
          << "seed " << seed << " period " << period;
      backoff_age = -1;
    }
  }
  *total_backoffs += manager.trend_backoffs();
}

TEST(SensingChaosTest, BackoffAlwaysReprobesWithinItsWindow) {
  uint64_t total_backoffs = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunBackoffSchedule(seed, &total_backoffs);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The property must not pass vacuously: the hair-trigger governor has to
  // have engaged at least once across the schedules.
  EXPECT_GT(total_backoffs, 0u);
}

}  // namespace
}  // namespace copart
