// The /sys/fs/resctrl filesystem surface.
#include "resctrl/resctrl_fs.h"

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "workload/workload.h"

namespace copart {
namespace {

class ResctrlFsTest : public ::testing::Test {
 protected:
  ResctrlFsTest()
      : machine_(MakeConfig()), resctrl_(&machine_), fs_(&resctrl_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    return config;
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  ResctrlFs fs_;
};

TEST_F(ResctrlFsTest, MkdirRmdirLifecycle) {
  ASSERT_TRUE(fs_.Mkdir("batch0").ok());
  ASSERT_TRUE(fs_.Mkdir("batch1").ok());
  EXPECT_EQ(fs_.ListGroups().size(), 2u);
  EXPECT_EQ(fs_.Mkdir("batch0").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(fs_.Rmdir("batch0").ok());
  EXPECT_EQ(fs_.ListGroups().size(), 1u);
  EXPECT_EQ(fs_.Rmdir("batch0").code(), StatusCode::kNotFound);
}

TEST_F(ResctrlFsTest, RejectsNestedAndReservedDirs) {
  EXPECT_FALSE(fs_.Mkdir("a/b").ok());
  EXPECT_FALSE(fs_.Mkdir("tasks").ok());
  EXPECT_FALSE(fs_.Mkdir("schemata").ok());
  EXPECT_FALSE(fs_.Mkdir("info").ok());
  EXPECT_FALSE(fs_.Mkdir("mon_data").ok());
}

TEST_F(ResctrlFsTest, SchemataReadWrite) {
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  Result<std::string> initial = fs_.ReadFile("g/schemata");
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(*initial, "L3:0=7ff\nMB:0=100\n");  // Kernel line format.
  ASSERT_TRUE(fs_.WriteFile("g/schemata", "L3:0=3f\nMB:0=40\n").ok());
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), "L3:0=3f\nMB:0=40\n");
  // Invalid writes fault and change nothing.
  EXPECT_FALSE(fs_.WriteFile("g/schemata", "L3:0=505").ok());
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), "L3:0=3f\nMB:0=40\n");
}

TEST_F(ResctrlFsTest, RootGroupFilesAddressableWithoutPrefix) {
  Result<std::string> schemata = fs_.ReadFile("schemata");
  ASSERT_TRUE(schemata.ok());
  EXPECT_EQ(*schemata, "L3:0=7ff\nMB:0=100\n");
  EXPECT_TRUE(fs_.ReadFile("/schemata").ok());
}

TEST_F(ResctrlFsTest, TasksBindApps) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  ASSERT_TRUE(
      fs_.WriteFile("g/tasks", std::to_string(app->value()) + "\n").ok());
  Result<std::string> tasks = fs_.ReadFile("g/tasks");
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(*tasks, std::to_string(app->value()) + "\n");
  // The root group's tasks list no longer includes the app.
  EXPECT_EQ(*fs_.ReadFile("tasks"), "");
  // Bad pids fault.
  EXPECT_FALSE(fs_.WriteFile("g/tasks", "notanumber").ok());
  EXPECT_EQ(fs_.WriteFile("g/tasks", "9999").code(), StatusCode::kNotFound);
}

TEST_F(ResctrlFsTest, MonitoringFiles) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  ASSERT_TRUE(
      fs_.WriteFile("g/tasks", std::to_string(app->value())).ok());
  machine_.AdvanceTime(0.5);
  Result<std::string> occupancy =
      fs_.ReadFile("g/mon_data/mon_L3_00/llc_occupancy");
  ASSERT_TRUE(occupancy.ok());
  EXPECT_GT(std::stoll(*occupancy), 0);
  Result<std::string> bandwidth =
      fs_.ReadFile("g/mon_data/mon_L3_00/mbm_total_bytes");
  ASSERT_TRUE(bandwidth.ok());
  EXPECT_GT(std::stod(*bandwidth), 1e9);
}

TEST_F(ResctrlFsTest, InfoFiles) {
  EXPECT_EQ(*fs_.ReadFile("info/L3/cbm_mask"), "7ff");
  EXPECT_EQ(*fs_.ReadFile("info/L3/num_closids"), "16");
  EXPECT_EQ(*fs_.ReadFile("info/MB/bandwidth_gran"), "10");
  EXPECT_EQ(*fs_.ReadFile("info/MB/min_bandwidth"), "10");
  EXPECT_FALSE(fs_.ReadFile("info/L3/nope").ok());
}

TEST_F(ResctrlFsTest, UnknownPathsFail) {
  EXPECT_FALSE(fs_.ReadFile("g/schemata").ok());  // No such group yet.
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  EXPECT_FALSE(fs_.ReadFile("g/unknown_file").ok());
  EXPECT_FALSE(fs_.WriteFile("g/unknown_file", "x").ok());
  EXPECT_FALSE(fs_.WriteFile("g", "x").ok());
}

TEST_F(ResctrlFsTest, SchemataRejectsUnknownResourceLines) {
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  const std::string before = *fs_.ReadFile("g/schemata");
  // An unknown resource tag is rejected outright...
  Status status = fs_.WriteFile("g/schemata", "L2:0=f");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // ...including when it rides alongside valid lines: validation happens
  // before any line is applied, so the MB line must not land either.
  status = fs_.WriteFile("g/schemata", "FOO:0=3\nMB:0=50");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), before);
}

TEST_F(ResctrlFsTest, TasksRejectsTrailingGarbage) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  const std::string pid = std::to_string(app->value());
  // "123abc" must not silently bind pid 123.
  EXPECT_EQ(fs_.WriteFile("g/tasks", pid + "abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_.WriteFile("g/tasks", pid + " 456").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(*fs_.ReadFile("g/tasks"), "");  // Still unbound.
  // Trailing whitespace alone is fine (echo appends a newline).
  EXPECT_TRUE(fs_.WriteFile("g/tasks", pid + " \n").ok());
  EXPECT_EQ(*fs_.ReadFile("g/tasks"), pid + "\n");
}

TEST_F(ResctrlFsTest, RmdirRestoresTasksToRoot) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  ASSERT_TRUE(fs_.WriteFile("g/tasks", std::to_string(app->value())).ok());
  ASSERT_TRUE(fs_.Rmdir("g").ok());
  // Like the kernel: removing a group moves its tasks back to the root.
  EXPECT_EQ(*fs_.ReadFile("tasks"), std::to_string(app->value()) + "\n");
  EXPECT_EQ(machine_.AppClos(*app), 0u);
}

// Fault-injected filesystem surface: the same fixture with an injector
// wired through MachineConfig.
class ResctrlFsFaultTest : public ::testing::Test {
 protected:
  ResctrlFsFaultTest()
      : injector_(0xF5), machine_(MakeConfig(&injector_)),
        resctrl_(&machine_), fs_(&resctrl_) {}

  static MachineConfig MakeConfig(FaultInjector* injector) {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    config.fault_injector = injector;
    return config;
  }

  FaultInjector injector_;  // Must outlive the machine.
  SimulatedMachine machine_;
  Resctrl resctrl_;
  ResctrlFs fs_;
};

TEST_F(ResctrlFsFaultTest, RmdirUnderFaultIsAtomic) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  ASSERT_TRUE(fs_.WriteFile("g/tasks", std::to_string(app->value())).ok());
  FaultSpec spec;
  spec.one_shot_queries = {0};
  injector_.Arm(fault_points::kResctrlRemoveGroup, spec);
  // The failed rmdir must leave the group fully intact: still listed, and
  // every task still bound to it (no half-removed state).
  EXPECT_EQ(fs_.Rmdir("g").code(), StatusCode::kUnavailable);
  EXPECT_EQ(fs_.ListGroups().size(), 1u);
  EXPECT_EQ(*fs_.ReadFile("g/tasks"), std::to_string(app->value()) + "\n");
  EXPECT_NE(machine_.AppClos(*app), 0u);
  // The retry (fault cleared) completes the removal and restores the task.
  EXPECT_TRUE(fs_.Rmdir("g").ok());
  EXPECT_EQ(fs_.ListGroups().size(), 0u);
  EXPECT_EQ(machine_.AppClos(*app), 0u);
}

TEST_F(ResctrlFsFaultTest, WriteFaultPointRejectsBeforeGroupLayer) {
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  const std::string before = *fs_.ReadFile("g/schemata");
  FaultSpec spec;
  spec.one_shot_queries = {0};
  injector_.Arm(fault_points::kResctrlFsWrite, spec);
  EXPECT_EQ(fs_.WriteFile("g/schemata", "L3:0=3f").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), before);
  // The retry goes through.
  EXPECT_TRUE(fs_.WriteFile("g/schemata", "L3:0=3f").ok());
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), "L3:0=3f\nMB:0=100\n");
}

TEST_F(ResctrlFsFaultTest, SchemataPartialApplyLeavesL3ButNotMb) {
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  FaultSpec spec;
  spec.one_shot_queries = {0};
  injector_.Arm(fault_points::kResctrlSchemataPartial, spec);
  // The partial-apply fault models the real race: the L3 line takes effect,
  // then the write errors before the MB line — exactly the torn state the
  // controller's verify-readback/rollback path exists to repair.
  EXPECT_EQ(fs_.WriteFile("g/schemata", "L3:0=3f\nMB:0=40").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), "L3:0=3f\nMB:0=100\n");
}

TEST_F(ResctrlFsTest, EndToEndDriveViaFilesOnly) {
  // A mini-controller using nothing but file operations, the way the
  // paper's prototype works.
  Result<AppId> cache_app = machine_.LaunchApp(WaterNsquared(), 4);
  Result<AppId> bw_app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(cache_app.ok());
  ASSERT_TRUE(bw_app.ok());
  ASSERT_TRUE(fs_.Mkdir("cacheapp").ok());
  ASSERT_TRUE(fs_.Mkdir("bwapp").ok());
  ASSERT_TRUE(fs_.WriteFile("cacheapp/tasks",
                            std::to_string(cache_app->value())).ok());
  ASSERT_TRUE(
      fs_.WriteFile("bwapp/tasks", std::to_string(bw_app->value())).ok());
  ASSERT_TRUE(fs_.WriteFile("cacheapp/schemata", "L3:0=1f\nMB:0=100").ok());
  ASSERT_TRUE(fs_.WriteFile("bwapp/schemata", "L3:0=7e0\nMB:0=50").ok());
  machine_.AdvanceTime(0.5);
  EXPECT_EQ(machine_.ClosWayMask(machine_.AppClos(*cache_app)).bits(),
            0x1Fu);
  EXPECT_EQ(machine_.ClosMbaLevel(machine_.AppClos(*bw_app)).percent(), 50u);
}

}  // namespace
}  // namespace copart
