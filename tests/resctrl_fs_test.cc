// The /sys/fs/resctrl filesystem surface.
#include "resctrl/resctrl_fs.h"

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace copart {
namespace {

class ResctrlFsTest : public ::testing::Test {
 protected:
  ResctrlFsTest()
      : machine_(MakeConfig()), resctrl_(&machine_), fs_(&resctrl_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    return config;
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  ResctrlFs fs_;
};

TEST_F(ResctrlFsTest, MkdirRmdirLifecycle) {
  ASSERT_TRUE(fs_.Mkdir("batch0").ok());
  ASSERT_TRUE(fs_.Mkdir("batch1").ok());
  EXPECT_EQ(fs_.ListGroups().size(), 2u);
  EXPECT_EQ(fs_.Mkdir("batch0").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(fs_.Rmdir("batch0").ok());
  EXPECT_EQ(fs_.ListGroups().size(), 1u);
  EXPECT_EQ(fs_.Rmdir("batch0").code(), StatusCode::kNotFound);
}

TEST_F(ResctrlFsTest, RejectsNestedAndReservedDirs) {
  EXPECT_FALSE(fs_.Mkdir("a/b").ok());
  EXPECT_FALSE(fs_.Mkdir("tasks").ok());
  EXPECT_FALSE(fs_.Mkdir("schemata").ok());
  EXPECT_FALSE(fs_.Mkdir("info").ok());
  EXPECT_FALSE(fs_.Mkdir("mon_data").ok());
}

TEST_F(ResctrlFsTest, SchemataReadWrite) {
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  Result<std::string> initial = fs_.ReadFile("g/schemata");
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(*initial, "L3:0=7ff\nMB:0=100\n");  // Kernel line format.
  ASSERT_TRUE(fs_.WriteFile("g/schemata", "L3:0=3f\nMB:0=40\n").ok());
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), "L3:0=3f\nMB:0=40\n");
  // Invalid writes fault and change nothing.
  EXPECT_FALSE(fs_.WriteFile("g/schemata", "L3:0=505").ok());
  EXPECT_EQ(*fs_.ReadFile("g/schemata"), "L3:0=3f\nMB:0=40\n");
}

TEST_F(ResctrlFsTest, RootGroupFilesAddressableWithoutPrefix) {
  Result<std::string> schemata = fs_.ReadFile("schemata");
  ASSERT_TRUE(schemata.ok());
  EXPECT_EQ(*schemata, "L3:0=7ff\nMB:0=100\n");
  EXPECT_TRUE(fs_.ReadFile("/schemata").ok());
}

TEST_F(ResctrlFsTest, TasksBindApps) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  ASSERT_TRUE(
      fs_.WriteFile("g/tasks", std::to_string(app->value()) + "\n").ok());
  Result<std::string> tasks = fs_.ReadFile("g/tasks");
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(*tasks, std::to_string(app->value()) + "\n");
  // The root group's tasks list no longer includes the app.
  EXPECT_EQ(*fs_.ReadFile("tasks"), "");
  // Bad pids fault.
  EXPECT_FALSE(fs_.WriteFile("g/tasks", "notanumber").ok());
  EXPECT_EQ(fs_.WriteFile("g/tasks", "9999").code(), StatusCode::kNotFound);
}

TEST_F(ResctrlFsTest, MonitoringFiles) {
  Result<AppId> app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  ASSERT_TRUE(
      fs_.WriteFile("g/tasks", std::to_string(app->value())).ok());
  machine_.AdvanceTime(0.5);
  Result<std::string> occupancy =
      fs_.ReadFile("g/mon_data/mon_L3_00/llc_occupancy");
  ASSERT_TRUE(occupancy.ok());
  EXPECT_GT(std::stoll(*occupancy), 0);
  Result<std::string> bandwidth =
      fs_.ReadFile("g/mon_data/mon_L3_00/mbm_total_bytes");
  ASSERT_TRUE(bandwidth.ok());
  EXPECT_GT(std::stod(*bandwidth), 1e9);
}

TEST_F(ResctrlFsTest, InfoFiles) {
  EXPECT_EQ(*fs_.ReadFile("info/L3/cbm_mask"), "7ff");
  EXPECT_EQ(*fs_.ReadFile("info/L3/num_closids"), "16");
  EXPECT_EQ(*fs_.ReadFile("info/MB/bandwidth_gran"), "10");
  EXPECT_EQ(*fs_.ReadFile("info/MB/min_bandwidth"), "10");
  EXPECT_FALSE(fs_.ReadFile("info/L3/nope").ok());
}

TEST_F(ResctrlFsTest, UnknownPathsFail) {
  EXPECT_FALSE(fs_.ReadFile("g/schemata").ok());  // No such group yet.
  ASSERT_TRUE(fs_.Mkdir("g").ok());
  EXPECT_FALSE(fs_.ReadFile("g/unknown_file").ok());
  EXPECT_FALSE(fs_.WriteFile("g/unknown_file", "x").ok());
  EXPECT_FALSE(fs_.WriteFile("g", "x").ok());
}

TEST_F(ResctrlFsTest, EndToEndDriveViaFilesOnly) {
  // A mini-controller using nothing but file operations, the way the
  // paper's prototype works.
  Result<AppId> cache_app = machine_.LaunchApp(WaterNsquared(), 4);
  Result<AppId> bw_app = machine_.LaunchApp(Cg(), 4);
  ASSERT_TRUE(cache_app.ok());
  ASSERT_TRUE(bw_app.ok());
  ASSERT_TRUE(fs_.Mkdir("cacheapp").ok());
  ASSERT_TRUE(fs_.Mkdir("bwapp").ok());
  ASSERT_TRUE(fs_.WriteFile("cacheapp/tasks",
                            std::to_string(cache_app->value())).ok());
  ASSERT_TRUE(
      fs_.WriteFile("bwapp/tasks", std::to_string(bw_app->value())).ok());
  ASSERT_TRUE(fs_.WriteFile("cacheapp/schemata", "L3:0=1f\nMB:0=100").ok());
  ASSERT_TRUE(fs_.WriteFile("bwapp/schemata", "L3:0=7e0\nMB:0=50").ok());
  machine_.AdvanceTime(0.5);
  EXPECT_EQ(machine_.ClosWayMask(machine_.AppClos(*cache_app)).bits(),
            0x1Fu);
  EXPECT_EQ(machine_.ClosMbaLevel(machine_.AppClos(*bw_app)).percent(), 50u);
}

}  // namespace
}  // namespace copart
