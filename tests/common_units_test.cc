#include "common/units.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

TEST(UnitsTest, ByteQuantities) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(1), 1024u * 1024u);
  EXPECT_EQ(GiB(1), 1024ULL * 1024u * 1024u);
  EXPECT_EQ(MiB(22), 22u * 1024u * 1024u);
  EXPECT_EQ(KiB(0), 0u);
}

TEST(UnitsTest, DecimalBandwidth) {
  EXPECT_DOUBLE_EQ(GBps(28.0), 28e9);
  EXPECT_DOUBLE_EQ(GBps(0.5), 5e8);
}

TEST(UnitsTest, TimeHelpers) {
  EXPECT_DOUBLE_EQ(Milliseconds(500), 0.5);
  EXPECT_DOUBLE_EQ(Microseconds(250), 2.5e-4);
}

TEST(UnitsTest, ConstexprUsable) {
  static_assert(MiB(2) == 2097152, "constexpr evaluation");
  static_assert(KiB(64) == 65536, "constexpr evaluation");
}

}  // namespace
}  // namespace copart
