// M/M/1 predictor edge cases (src/serve/queue_model.h). The prediction is
// the input to every SLO governor, so its saturation behavior — +infinity
// at utilization >= 1 and at degenerate service rates — is part of the
// governor contract: an unstable width must never look attainable.
#include "serve/queue_model.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace copart {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(QueueModelTest, StableQueueMatchesClosedForm) {
  // mu - lambda = 500/s: p95 sojourn = -ln(0.05)/500 s.
  const double expected_sec = -std::log(1.0 - 0.95) / 500.0;
  EXPECT_DOUBLE_EQ(PredictedSojournSec(1500.0, 2000.0, 0.95), expected_sec);
  EXPECT_DOUBLE_EQ(PredictedP95Ms(1500.0, 2000.0), 1e3 * expected_sec);
}

TEST(QueueModelTest, UtilizationAtOneIsUnstable) {
  EXPECT_EQ(PredictedSojournSec(1000.0, 1000.0, 0.95), kInf);
  EXPECT_EQ(PredictedP95Ms(1000.0, 1000.0), kInf);
}

TEST(QueueModelTest, UtilizationAboveOneIsUnstable) {
  EXPECT_EQ(PredictedSojournSec(2000.0, 1000.0, 0.95), kInf);
  EXPECT_EQ(PredictedSojournSec(1000.0 + 1e-9, 1000.0, 0.5), kInf);
}

TEST(QueueModelTest, ZeroServiceRateIsUnstable) {
  EXPECT_EQ(PredictedSojournSec(0.0, 0.0, 0.95), kInf);
  EXPECT_EQ(PredictedP95Ms(100.0, 0.0), kInf);
}

TEST(QueueModelTest, NegativeServiceRateIsUnstable) {
  EXPECT_EQ(PredictedSojournSec(100.0, -5.0, 0.95), kInf);
}

TEST(QueueModelTest, NearZeroServiceRateIsFiniteButEnormous) {
  // A barely-positive service rate with zero offered load is a stable
  // (empty) queue, but the sojourn is 1/mu scaled — enormous, not inf.
  const double tiny = 1e-12;
  const double p95_sec = PredictedSojournSec(0.0, tiny, 0.95);
  EXPECT_TRUE(std::isfinite(p95_sec));
  EXPECT_GT(p95_sec, 1e12);  // -ln(0.05)/1e-12 ~ 3e12 s.
  // Any offered load at all saturates it.
  EXPECT_EQ(PredictedSojournSec(tiny, tiny, 0.95), kInf);
}

TEST(QueueModelTest, NegativeOfferedLoadClampsToEmptyQueue) {
  EXPECT_DOUBLE_EQ(PredictedSojournSec(-100.0, 1000.0, 0.95),
                   PredictedSojournSec(0.0, 1000.0, 0.95));
}

TEST(QueueModelTest, SojournIncreasesMonotonicallyTowardSaturation) {
  const double service = 1000.0;
  double last = 0.0;
  for (double offered = 0.0; offered < service; offered += 50.0) {
    const double p95 = PredictedSojournSec(offered, service, 0.95);
    ASSERT_TRUE(std::isfinite(p95)) << "offered=" << offered;
    ASSERT_GT(p95, last) << "offered=" << offered;
    last = p95;
  }
  // The limit of the ramp is the unstable point.
  EXPECT_EQ(PredictedSojournSec(service, service, 0.95), kInf);
}

TEST(QueueModelTest, RequiredServiceRpsInvertsThePredictor) {
  const double offered = 1200.0;
  const double target_sec = 0.004;
  const double required = RequiredServiceRps(offered, target_sec, 0.95);
  EXPECT_GT(required, offered);
  EXPECT_NEAR(PredictedSojournSec(offered, required, 0.95), target_sec,
              1e-12);
  // Zero offered load still needs a positive service rate to hit a
  // finite target.
  EXPECT_GT(RequiredServiceRps(0.0, target_sec, 0.95), 0.0);
}

}  // namespace
}  // namespace copart
