// The UCP extension baseline: marginal-utility way allocation.
#include "core/ucp_policy.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/mix.h"
#include "workload/workload.h"

namespace copart {
namespace {

MachineConfig QuietConfig() {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  return config;
}

ResourcePool FullPool() {
  return ResourcePool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
}

class UcpTest : public ::testing::Test {
 protected:
  UcpTest() : machine_(QuietConfig()) {}

  std::vector<AppId> Launch(const std::vector<WorkloadDescriptor>& apps) {
    std::vector<AppId> ids;
    for (const WorkloadDescriptor& descriptor : apps) {
      Result<AppId> app = machine_.LaunchApp(descriptor, 4);
      CHECK(app.ok());
      ids.push_back(*app);
    }
    return ids;
  }

  SimulatedMachine machine_;
};

TEST_F(UcpTest, AllocationIsValidAndExhaustsPool) {
  const std::vector<AppId> apps =
      Launch({WaterNsquared(), Cg(), Sp(), Swaptions()});
  const SystemState state = ComputeUcpAllocation(machine_, apps, FullPool());
  EXPECT_TRUE(state.Valid());
  uint32_t total = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    total += state.allocation(i).llc_ways;
    EXPECT_EQ(state.allocation(i).mba_level.percent(), 100u);
  }
  EXPECT_EQ(total, 11u);
}

TEST_F(UcpTest, CacheHungryAppsWinWays) {
  // WN saves many misses per extra way; SW saves none.
  const std::vector<AppId> apps = Launch({WaterNsquared(), Swaptions()});
  const SystemState state = ComputeUcpAllocation(machine_, apps, FullPool());
  EXPECT_GE(state.allocation(0).llc_ways, 4u);
  EXPECT_EQ(state.allocation(1).llc_ways, 1u);
}

TEST_F(UcpTest, UtilityOrdersCompetingApps) {
  // Two cache-sensitive apps: the one with the higher access intensity and
  // larger marginal gains (WN) should get at least as many ways as RT,
  // whose working set saturates at 2 ways.
  const std::vector<AppId> apps = Launch({WaterNsquared(), Raytrace()});
  const SystemState state = ComputeUcpAllocation(machine_, apps, FullPool());
  EXPECT_GT(state.allocation(0).llc_ways, state.allocation(1).llc_ways);
  // RT still gets what it needs to cover its 4.1 MB footprint.
  EXPECT_GE(state.allocation(1).llc_ways, 2u);
}

TEST_F(UcpTest, RespectsPoolBounds) {
  const std::vector<AppId> apps = Launch({Sp(), OceanNcp()});
  const ResourcePool pool{.first_way = 4, .num_ways = 5,
                          .max_mba_percent = 60};
  const SystemState state = ComputeUcpAllocation(machine_, apps, pool);
  EXPECT_TRUE(state.Valid());
  EXPECT_EQ(state.allocation(0).llc_ways + state.allocation(1).llc_ways, 5u);
  EXPECT_EQ(state.allocation(0).mba_level.percent(), 60u);
  EXPECT_EQ(state.WayMaskBits(0) & 0xF, 0u);
}

TEST(UcpPolicyTest, AppliesThroughResctrl) {
  SimulatedMachine machine(QuietConfig());
  Resctrl resctrl(&machine);
  Result<AppId> wn = machine.LaunchApp(WaterNsquared(), 4);
  Result<AppId> sw = machine.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(wn.ok());
  ASSERT_TRUE(sw.ok());
  UcpPolicy policy(&resctrl, {*wn, *sw}, FullPool());
  EXPECT_EQ(policy.name(), "UCP");
  policy.Start();
  EXPECT_NE(machine.AppClos(*wn), 0u);
  EXPECT_EQ(machine.ClosWayMask(machine.AppClos(*sw)).CountWays(), 1u);
  EXPECT_FALSE(machine.ClosWayMask(machine.AppClos(*wn))
                   .Overlaps(machine.ClosWayMask(machine.AppClos(*sw))));
}

TEST(UcpPolicyTest, StrongStaticBaselineOnLlcMix) {
  // With oracle miss curves (unlike hardware UCP's noisy UMON samples),
  // UCP acts as a strong static LLC allocator on this substrate: at least
  // EQ's throughput and far better than EQ's fairness on the H-LLC mix.
  // CoPart — purely online, no oracle curves — must land in the same
  // fairness regime (well under EQ, within a small factor of UCP).
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  const ExperimentResult ucp = RunExperiment(mix, UcpFactory(), {});
  const ExperimentResult eq = RunExperiment(mix, EqFactory(), {});
  const ExperimentResult copart = RunExperiment(mix, CoPartFactory(), {});
  EXPECT_GE(ucp.throughput_geomean, eq.throughput_geomean * 0.98);
  EXPECT_LT(ucp.unfairness, eq.unfairness * 0.5);
  EXPECT_LT(copart.unfairness, eq.unfairness * 0.5);
  EXPECT_LE(copart.unfairness, ucp.unfairness * 3.0);
}

}  // namespace
}  // namespace copart
