// Metrics registry semantics: histogram bucket-edge placement (inclusive
// upper edges, overflow above the last), find-or-create identity, merge by
// sum, and the deterministic-only dump filtering that defines the
// byte-compared determinism surface.
#include <array>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace copart {
namespace {

constexpr std::array<double, 3> kEdges = {1.0, 2.0, 4.0};

TEST(HistogramTest, ValuesLandInFirstBucketWithValueAtMostEdge) {
  Histogram histogram({1.0, 2.0, 4.0});
  EXPECT_EQ(histogram.BucketFor(0.5), 0u);
  EXPECT_EQ(histogram.BucketFor(1.5), 1u);
  EXPECT_EQ(histogram.BucketFor(3.0), 2u);
  EXPECT_EQ(histogram.BucketFor(9.0), 3u);  // Overflow bucket.
}

TEST(HistogramTest, ExactEdgeValuesAreInclusive) {
  // v <= edge: a value exactly on an upper edge belongs to that bucket,
  // never the next one.
  Histogram histogram({1.0, 2.0, 4.0});
  EXPECT_EQ(histogram.BucketFor(1.0), 0u);
  EXPECT_EQ(histogram.BucketFor(2.0), 1u);
  EXPECT_EQ(histogram.BucketFor(4.0), 2u);
  // The first value past the last edge overflows.
  EXPECT_EQ(histogram.BucketFor(4.0000001), 3u);
}

TEST(HistogramTest, ObserveCountsSumAndOverflow) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 4.0, 100.0, 200.0}) {
    histogram.Observe(v);
  }
  EXPECT_EQ(histogram.bucket(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(histogram.bucket(1), 1u);  // 1.5
  EXPECT_EQ(histogram.bucket(2), 1u);  // 4.0
  EXPECT_EQ(histogram.overflow(), 2u);  // 100, 200
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 307.0);
}

TEST(MetricsRegistryTest, GetIsFindOrCreate) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("copart.test.counter");
  counter->Increment(3);
  // Same name -> same object; the value persists.
  EXPECT_EQ(registry.GetCounter("copart.test.counter"), counter);
  EXPECT_EQ(registry.GetCounter("copart.test.counter")->value(), 3u);

  Gauge* gauge = registry.GetGauge("copart.test.gauge");
  gauge->Set(2.5);
  EXPECT_EQ(registry.GetGauge("copart.test.gauge"), gauge);

  Histogram* histogram = registry.GetHistogram("copart.test.histo", kEdges);
  EXPECT_EQ(registry.GetHistogram("copart.test.histo", kEdges), histogram);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, MergeSumsCountersGaugesAndBuckets) {
  MetricsRegistry a, b;
  a.GetCounter("shared.counter")->Increment(2);
  b.GetCounter("shared.counter")->Increment(5);
  b.GetCounter("only.in.b")->Increment(7);
  a.GetGauge("shared.gauge")->Set(1.5);
  b.GetGauge("shared.gauge")->Set(2.0);
  a.GetHistogram("shared.histo", kEdges)->Observe(0.5);
  b.GetHistogram("shared.histo", kEdges)->Observe(0.5);
  b.GetHistogram("shared.histo", kEdges)->Observe(100.0);

  a.Merge(b);
  EXPECT_EQ(a.GetCounter("shared.counter")->value(), 7u);
  // Metrics absent in the destination are created by the merge.
  EXPECT_EQ(a.GetCounter("only.in.b")->value(), 7u);
  // Gauges merge by sum (per-cell timings become sweep totals).
  EXPECT_DOUBLE_EQ(a.GetGauge("shared.gauge")->value(), 3.5);
  Histogram* merged = a.GetHistogram("shared.histo", kEdges);
  EXPECT_EQ(merged->bucket(0), 2u);
  EXPECT_EQ(merged->overflow(), 1u);
  EXPECT_EQ(merged->count(), 3u);
}

TEST(MetricsRegistryTest, MergeIsOrderInsensitiveOnDisjointSets) {
  MetricsRegistry left, right, a, b;
  a.GetCounter("x")->Increment(1);
  b.GetCounter("y")->Increment(2);
  left.Merge(a);
  left.Merge(b);
  right.Merge(b);
  right.Merge(a);
  // The dump sorts by name, so disjoint merges in either order dump
  // identically — the property the chaos suite's serial reduction relies on.
  EXPECT_EQ(left.DumpJson(), right.DumpJson());
}

TEST(MetricsRegistryTest, DeterministicOnlyDumpExcludesHostMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("det.counter")->Increment(1);
  registry.GetGauge("host.wall_sec", /*deterministic=*/false)->Set(123.4);
  registry.GetHistogram("det.histo", kEdges)->Observe(1.0);

  const std::string full = registry.DumpJson(/*deterministic_only=*/false);
  EXPECT_NE(full.find("host.wall_sec"), std::string::npos);
  const std::string det = registry.DumpJson(/*deterministic_only=*/true);
  EXPECT_EQ(det.find("host.wall_sec"), std::string::npos);
  EXPECT_NE(det.find("det.counter"), std::string::npos);
  EXPECT_NE(det.find("det.histo"), std::string::npos);

  const std::string text = registry.DumpText(/*deterministic_only=*/true);
  EXPECT_EQ(text.find("host.wall_sec"), std::string::npos);
  EXPECT_NE(text.find("det.counter"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpTextListsSortedNameValueLines) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(2);
  registry.GetCounter("a.counter")->Increment(1);
  const std::string text = registry.DumpText();
  const size_t a_pos = text.find("a.counter");
  const size_t b_pos = text.find("b.counter");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  EXPECT_LT(a_pos, b_pos);
}

}  // namespace
}  // namespace copart
