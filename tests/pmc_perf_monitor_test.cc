// Realistic-sensing behaviour of the PMC monitor (ConfigureSensing):
// noise-model determinism (per seed, per app, independent of attach
// order), stale repeats, estimator substitution and fallback, the
// stop-at-target feed schedule and its restart at workload phase changes,
// interaction with injected counter faults, and warm re-Attach. The exact
// (sensing-off) sampling discipline is covered by pmc_test.cc.
#include "pmc/perf_monitor.h"

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "workload/workload.h"

namespace copart {
namespace {

MachineConfig QuietConfig() {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  return config;
}

PmcSensingParams EstimatorOnlyParams() {
  PmcSensingParams params;
  params.enabled = true;
  params.noise_sigma = 0.0;
  params.interval_jitter = 0.0;
  params.stale_probability = 0.0;
  return params;
}

TEST(PmcSensingTest, DisabledSensingReportsExactCounters) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor monitor(&machine);
  EXPECT_FALSE(monitor.sensing_params().enabled);
  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  machine.AdvanceTime(0.5);
  const PmcSample sample = monitor.Sample(*app);
  EXPECT_NEAR(sample.llc_misses,
              machine.Counters(*app).llc_misses, 1e-6);
  EXPECT_EQ(monitor.sensed_samples(), 0u);
  EXPECT_EQ(monitor.estimator(*app), nullptr);
}

TEST(PmcSensingTest, EstimatorSubstitutesConvergedMissRatio) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor exact_monitor(&machine);
  PerfMonitor sensing_monitor(&machine);
  sensing_monitor.ConfigureSensing(EstimatorOnlyParams());

  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  exact_monitor.Attach(*app);
  sensing_monitor.Attach(*app);
  machine.AdvanceTime(0.5);
  const PmcSample exact = exact_monitor.Sample(*app);
  const PmcSample sensed = sensing_monitor.Sample(*app);

  // Non-miss counters pass through untouched (no noise configured)...
  EXPECT_EQ(sensed.instructions, exact.instructions);
  EXPECT_EQ(sensed.llc_accesses, exact.llc_accesses);
  EXPECT_EQ(sensed.interval_sec, exact.interval_sec);
  // ...while the miss delta is reconstructed from the estimator at the
  // app's current way allocation.
  const OnlineMrcEstimator* estimator = sensing_monitor.estimator(*app);
  ASSERT_NE(estimator, nullptr);
  const uint32_t ways =
      machine.ClosWayMask(machine.AppClos(*app)).CountWays();
  EXPECT_DOUBLE_EQ(sensed.llc_misses,
                   sensed.llc_accesses * estimator->MissRatioAtWays(ways));
  EXPECT_EQ(sensing_monitor.sensed_samples(), 1u);
  EXPECT_EQ(sensing_monitor.estimator_fallbacks(), 0u);
}

TEST(PmcSensingTest, ColdDirectoryFallsBackToRawCounters) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor exact_monitor(&machine);
  PerfMonitor sensing_monitor(&machine);
  PmcSensingParams params = EstimatorOnlyParams();
  params.estimator_accesses_per_sample = 16;  // 1/sqrt(16) = 0.25 bound.
  params.max_error_bound = 0.02;              // Needs 2500 samples.
  params.target_error_bound = 0.02;
  sensing_monitor.ConfigureSensing(params);

  Result<AppId> app = machine.LaunchApp(Swaptions(), 4);
  ASSERT_TRUE(app.ok());
  exact_monitor.Attach(*app);
  sensing_monitor.Attach(*app);
  machine.AdvanceTime(0.5);
  const PmcSample exact = exact_monitor.Sample(*app);
  const PmcSample sensed = sensing_monitor.Sample(*app);
  EXPECT_EQ(sensed.llc_misses, exact.llc_misses);
  EXPECT_EQ(sensing_monitor.estimator_fallbacks(), 1u);
}

TEST(PmcSensingTest, FeedStopsAtTargetErrorBound) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor monitor(&machine);
  PmcSensingParams params = EstimatorOnlyParams();
  // 256 samples reach 1/16 = 0.0625 exactly: one sample's feed suffices.
  params.target_error_bound = 0.0625;
  monitor.ConfigureSensing(params);

  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  for (int i = 0; i < 5; ++i) {
    machine.AdvanceTime(0.5);
    (void)monitor.Sample(*app);
  }
  // Fed exactly once, then the stationary-phase cut-off held.
  EXPECT_EQ(monitor.estimator(*app)->sampled_accesses(), 256u);
}

TEST(PmcSensingTest, PhaseChangeRestartsTheFeed) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor monitor(&machine);
  PmcSensingParams params = EstimatorOnlyParams();
  params.max_error_bound = 0.02;  // 2500 samples: ~10 samples of feeding.
  params.target_error_bound = 0.02;
  monitor.ConfigureSensing(params);

  // Phase flip at t = 2.0: the feed must drop its counters and restart.
  // (Sampling stops at t = 3.5 — t = 4.0 would wrap back to phase A and
  // legitimately reset a second time.)
  Result<AppId> app = machine.LaunchApp(PhasedScanCompute(2.0), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  std::vector<uint64_t> sampled;
  for (int i = 0; i < 7; ++i) {
    machine.AdvanceTime(0.5);
    (void)monitor.Sample(*app);
    sampled.push_back(monitor.estimator(*app)->sampled_accesses());
  }
  // Monotone 256-per-sample growth in phase A...
  EXPECT_EQ(sampled[0], 256u);
  EXPECT_EQ(sampled[1], 512u);
  // ...broken by exactly one ResetCounters + refeed at the flip.
  int resets = 0;
  for (size_t i = 1; i < sampled.size(); ++i) {
    if (sampled[i] < sampled[i - 1]) {
      ++resets;
      EXPECT_EQ(sampled[i], 256u) << "restart at sample " << i;
    }
  }
  EXPECT_EQ(resets, 1);
  // The restarted directory is below the trust bound again.
  EXPECT_GT(monitor.estimator_fallbacks(), 4u);
}

TEST(PmcSensingTest, NoiseIsDeterministicAndAttachOrderIndependent) {
  auto build = [](bool reversed) {
    auto machine = std::make_unique<SimulatedMachine>(QuietConfig());
    auto monitor = std::make_unique<PerfMonitor>(machine.get());
    PmcSensingParams params;
    params.enabled = true;  // Full noise model, default seed.
    monitor->ConfigureSensing(params);
    Result<AppId> first = machine->LaunchApp(Cg(), 4);
    Result<AppId> second = machine->LaunchApp(Swaptions(), 4);
    CHECK(first.ok() && second.ok());
    if (reversed) {
      monitor->Attach(*second);
      monitor->Attach(*first);
    } else {
      monitor->Attach(*first);
      monitor->Attach(*second);
    }
    return std::tuple(std::move(machine), std::move(monitor), *first,
                      *second);
  };
  auto [machine_a, monitor_a, a1, a2] = build(false);
  auto [machine_b, monitor_b, b1, b2] = build(true);
  for (int i = 0; i < 10; ++i) {
    machine_a->AdvanceTime(0.5);
    machine_b->AdvanceTime(0.5);
    const PmcSample first_a = monitor_a->Sample(a1);
    const PmcSample second_a = monitor_a->Sample(a2);
    // Opposite sampling order as well as opposite attach order.
    const PmcSample second_b = monitor_b->Sample(b2);
    const PmcSample first_b = monitor_b->Sample(b1);
    EXPECT_EQ(first_a.instructions, first_b.instructions) << "tick " << i;
    EXPECT_EQ(first_a.llc_misses, first_b.llc_misses) << "tick " << i;
    EXPECT_EQ(first_a.interval_sec, first_b.interval_sec) << "tick " << i;
    EXPECT_EQ(second_a.instructions, second_b.instructions) << "tick " << i;
    EXPECT_EQ(second_a.llc_misses, second_b.llc_misses) << "tick " << i;
  }
}

TEST(PmcSensingTest, NoiseStaysWithinConfiguredMagnitudes) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor exact_monitor(&machine);
  PerfMonitor noisy_monitor(&machine);
  PmcSensingParams params;
  params.enabled = true;
  params.estimate_miss_ratio = false;  // Isolate the noise model.
  params.stale_probability = 0.0;
  noisy_monitor.ConfigureSensing(params);

  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  exact_monitor.Attach(*app);
  noisy_monitor.Attach(*app);
  const double sigma_cap = std::exp(6.0 * params.noise_sigma);  // 6-sigma.
  for (int i = 0; i < 50; ++i) {
    machine.AdvanceTime(0.5);
    const PmcSample exact = exact_monitor.Sample(*app);
    const PmcSample noisy = noisy_monitor.Sample(*app);
    EXPECT_GT(noisy.instructions, exact.instructions / sigma_cap);
    EXPECT_LT(noisy.instructions, exact.instructions * sigma_cap);
    EXPECT_GE(noisy.interval_sec,
              exact.interval_sec * (1.0 - params.interval_jitter));
    EXPECT_LE(noisy.interval_sec,
              exact.interval_sec * (1.0 + params.interval_jitter));
  }
}

TEST(PmcSensingTest, StaleReadRepeatsThePreviousReport) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor monitor(&machine);
  PmcSensingParams params = EstimatorOnlyParams();
  params.stale_probability = 1.0;  // Every read after the first is stale.
  monitor.ConfigureSensing(params);

  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  machine.AdvanceTime(0.5);
  const PmcSample first = monitor.Sample(*app);
  EXPECT_EQ(monitor.stale_reports(), 0u);  // Nothing to repeat yet.
  machine.AdvanceTime(0.5);
  const PmcSample second = monitor.Sample(*app);
  EXPECT_EQ(monitor.stale_reports(), 1u);
  EXPECT_EQ(second.interval_sec, first.interval_sec);
  EXPECT_EQ(second.instructions, first.instructions);
  EXPECT_EQ(second.llc_accesses, first.llc_accesses);
  EXPECT_EQ(second.llc_misses, first.llc_misses);
}

TEST(PmcSensingTest, InjectedFaultPathsBypassTheSensingTransform) {
  FaultInjector injector(0xBAD);
  MachineConfig config = QuietConfig();
  config.fault_injector = &injector;
  SimulatedMachine machine(config);
  PerfMonitor monitor(&machine);
  monitor.ConfigureSensing(EstimatorOnlyParams());

  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  machine.AdvanceTime(0.5);

  FaultSpec always;
  always.probability = 1.0;

  // A dropped read produces no sample, so nothing is sensed.
  injector.Arm(fault_points::kPmcDropped, always);
  EXPECT_FALSE(monitor.TrySample(*app).ok());
  EXPECT_EQ(monitor.sensed_samples(), 0u);

  // An injected-stale read reports raw zero deltas — the quarantine logic
  // must see the fault signature, not a noised-up version of it.
  injector.Disarm(fault_points::kPmcDropped);
  injector.Arm(fault_points::kPmcStale, always);
  Result<PmcSample> stale = monitor.TrySample(*app);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->instructions, 0.0);
  EXPECT_EQ(monitor.sensed_samples(), 0u);

  // Clean reads sense again.
  injector.DisarmAll();
  machine.AdvanceTime(0.5);
  ASSERT_TRUE(monitor.TrySample(*app).ok());
  EXPECT_EQ(monitor.sensed_samples(), 1u);
}

TEST(PmcSensingTest, ReattachKeepsTheWarmDirectory) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor monitor(&machine);
  monitor.ConfigureSensing(EstimatorOnlyParams());
  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  machine.AdvanceTime(0.5);
  (void)monitor.Sample(*app);
  const OnlineMrcEstimator* estimator = monitor.estimator(*app);
  ASSERT_NE(estimator, nullptr);
  const uint64_t fed = estimator->sampled_accesses();
  EXPECT_GT(fed, 0u);

  monitor.Attach(*app);  // Baseline restart; sensing state survives.
  EXPECT_EQ(monitor.estimator(*app), estimator);
  EXPECT_EQ(monitor.estimator(*app)->sampled_accesses(), fed);

  monitor.Detach(*app);  // Detach drops it.
  EXPECT_EQ(monitor.estimator(*app), nullptr);
}

TEST(PmcSensingTest, ReconfigureRebuildsColdStates) {
  SimulatedMachine machine(QuietConfig());
  PerfMonitor monitor(&machine);
  monitor.ConfigureSensing(EstimatorOnlyParams());
  Result<AppId> app = machine.LaunchApp(Cg(), 4);
  ASSERT_TRUE(app.ok());
  monitor.Attach(*app);
  machine.AdvanceTime(0.5);
  (void)monitor.Sample(*app);
  EXPECT_GT(monitor.estimator(*app)->sampled_accesses(), 0u);

  monitor.ConfigureSensing(EstimatorOnlyParams());
  ASSERT_NE(monitor.estimator(*app), nullptr);
  EXPECT_EQ(monitor.estimator(*app)->sampled_accesses(), 0u);

  PmcSensingParams off;
  off.enabled = false;
  monitor.ConfigureSensing(off);
  EXPECT_EQ(monitor.estimator(*app), nullptr);
}

}  // namespace
}  // namespace copart
