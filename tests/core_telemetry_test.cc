// The ResourceManager's telemetry observer: record contents, cadence, and
// consistency with the controller's public state.
#include <gtest/gtest.h>

#include "core/resource_manager.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  TelemetryTest() : machine_(MakeConfig()), resctrl_(&machine_),
                    monitor_(&machine_), manager_(&resctrl_, &monitor_, {}) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.ips_noise_sigma = 0.005;
    return config;
  }

  void AddApps() {
    for (const WorkloadDescriptor& descriptor :
         {WaterNsquared(), Cg(), Swaptions()}) {
      Result<AppId> app = machine_.LaunchApp(descriptor, 4);
      CHECK(app.ok());
      CHECK(manager_.AddApp(*app).ok());
    }
  }

  void Run(int periods) {
    for (int i = 0; i < periods; ++i) {
      machine_.AdvanceTime(0.5);
      manager_.Tick();
    }
  }

  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
  ResourceManager manager_;
};

TEST_F(TelemetryTest, RecordsEveryExplorationTick) {
  std::vector<ManagerTickRecord> records;
  manager_.SetObserver(
      [&](const ManagerTickRecord& record) { records.push_back(record); });
  AddApps();
  Run(120);
  ASSERT_FALSE(records.empty());
  // Records carry one entry per app and a valid state.
  for (const ManagerTickRecord& record : records) {
    EXPECT_EQ(record.slowdown_estimates.size(), 3u);
    EXPECT_EQ(record.llc_classes.size(), 3u);
    EXPECT_EQ(record.mba_classes.size(), 3u);
    EXPECT_TRUE(record.state.Valid());
    EXPECT_GT(record.time, 0.0);
    EXPECT_GE(record.exploration_us, 0.0);
    for (double slowdown : record.slowdown_estimates) {
      EXPECT_GE(slowdown, 1.0);
    }
  }
  // Timestamps strictly increase.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].time, records[i - 1].time);
  }
  // Algorithm 1 ends after theta unproductive neighbor steps, so neighbor
  // perturbations must appear near the end of the exploration.
  int neighbors = 0;
  for (const ManagerTickRecord& record : records) {
    neighbors += record.used_neighbor_state ? 1 : 0;
  }
  EXPECT_GE(neighbors, 1);
}

TEST_F(TelemetryTest, NoRecordsDuringProfilingOrIdle) {
  std::vector<double> record_times;
  manager_.SetObserver([&](const ManagerTickRecord& record) {
    record_times.push_back(record.time);
  });
  AddApps();
  // Profiling: 3 apps x 3 probes = 9 periods with no exploration records.
  Run(9);
  EXPECT_TRUE(record_times.empty());
  // Run to convergence; once idle, no further records arrive.
  Run(150);
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  const size_t after_convergence = record_times.size();
  Run(20);
  EXPECT_EQ(record_times.size(), after_convergence);
}

TEST_F(TelemetryTest, ObserverCanBeCleared) {
  int calls = 0;
  manager_.SetObserver([&](const ManagerTickRecord&) { ++calls; });
  AddApps();
  Run(12);
  const int before = calls;
  EXPECT_GT(before, 0);
  manager_.SetObserver(nullptr);
  Run(12);
  EXPECT_EQ(calls, before);
}

}  // namespace
}  // namespace copart
