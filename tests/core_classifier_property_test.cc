// Exhaustive transition-relation checks on the classifier FSMs: for every
// (state x input-grid) combination the machines must respect the global
// guarantees the resource manager depends on.
#include <gtest/gtest.h>

#include <vector>

#include "core/classifiers.h"

namespace copart {
namespace {

const ResourceClass kStates[] = {ResourceClass::kSupply,
                                 ResourceClass::kMaintain,
                                 ResourceClass::kDemand};
const ResourceEvent kEvents[] = {
    ResourceEvent::kNone, ResourceEvent::kGainedLlcWay,
    ResourceEvent::kLostLlcWay, ResourceEvent::kGainedMba,
    ResourceEvent::kLostMba};

std::vector<ClassifierInput> InputGrid() {
  std::vector<ClassifierInput> inputs;
  for (double access_rate : {1e5, 1e7}) {         // Below / above alpha.
    for (double miss_ratio : {0.005, 0.02, 0.1}) {  // <beta, mid, >Beta.
      for (double traffic : {0.05, 0.2, 0.5}) {     // <gamma, mid, >Gamma.
        for (double delta : {-0.2, -0.01, 0.0, 0.01, 0.2}) {
          for (ResourceEvent event : kEvents) {
            inputs.push_back({access_rate, miss_ratio, traffic, delta,
                              event});
          }
        }
      }
    }
  }
  return inputs;
}

TEST(LlcFsmPropertyTest, CacheUselessWinsUnlessReclaimJustHurt) {
  const ClassifierParams params;
  for (ResourceClass initial : kStates) {
    for (ClassifierInput input : InputGrid()) {
      if (input.llc_access_rate >= params.llc_access_rate_floor &&
          input.llc_miss_ratio >= params.llc_miss_ratio_low) {
        continue;
      }
      LlcClassifierFsm fsm(params, initial);
      const ResourceClass next = fsm.Update(input);
      if (input.last_event == ResourceEvent::kLostLlcWay &&
          input.perf_delta <= -params.perf_delta) {
        // Direct evidence outranks the uselessness heuristic.
        EXPECT_EQ(next, ResourceClass::kDemand);
      } else {
        EXPECT_EQ(next, ResourceClass::kSupply)
            << ResourceClassName(initial);
      }
    }
  }
}

TEST(LlcFsmPropertyTest, NoDemotionToSupplyWhileCacheIsUseful) {
  // A busy, missing app must never be classified as an LLC supplier.
  const ClassifierParams params;
  for (ResourceClass initial : {ResourceClass::kMaintain,
                                ResourceClass::kDemand}) {
    for (ClassifierInput input : InputGrid()) {
      if (input.llc_access_rate < params.llc_access_rate_floor ||
          input.llc_miss_ratio < params.llc_miss_ratio_low) {
        continue;
      }
      LlcClassifierFsm fsm(params, initial);
      EXPECT_NE(fsm.Update(input), ResourceClass::kSupply)
          << ResourceClassName(initial) << " delta=" << input.perf_delta;
      // (Direct-evidence Demand transitions are allowed; Supply is not.)
    }
  }
}

TEST(LlcFsmPropertyTest, TransitionsOnlyOnRelevantEvidence) {
  // From Demand, the only exits are Supply (cache useless) or Maintain
  // (a gained way that did not help).
  const ClassifierParams params;
  for (ClassifierInput input : InputGrid()) {
    LlcClassifierFsm fsm(params, ResourceClass::kDemand);
    const ResourceClass next = fsm.Update(input);
    if (next == ResourceClass::kMaintain) {
      EXPECT_EQ(input.last_event, ResourceEvent::kGainedLlcWay);
      EXPECT_LT(input.perf_delta, params.perf_delta);
    }
  }
}

TEST(LlcFsmPropertyTest, MbaEventsNeverMoveTheLlcFsm) {
  const ClassifierParams params;
  for (ResourceClass initial : kStates) {
    for (ClassifierInput base : InputGrid()) {
      if (base.last_event != ResourceEvent::kGainedMba &&
          base.last_event != ResourceEvent::kLostMba) {
        continue;
      }
      ClassifierInput none = base;
      none.last_event = ResourceEvent::kNone;
      LlcClassifierFsm with_event(params, initial);
      LlcClassifierFsm without_event(params, initial);
      EXPECT_EQ(with_event.Update(base), without_event.Update(none));
    }
  }
}

TEST(MbaFsmPropertyTest, LowTrafficWinsUnlessThrottleJustHurt) {
  const ClassifierParams params;
  for (ResourceClass initial : kStates) {
    for (ClassifierInput input : InputGrid()) {
      if (input.traffic_ratio >= params.traffic_ratio_low) {
        continue;
      }
      MbaClassifierFsm fsm(params, initial);
      const ResourceClass next = fsm.Update(input);
      if (input.last_event == ResourceEvent::kLostMba &&
          input.perf_delta <= -params.perf_delta) {
        EXPECT_EQ(next, ResourceClass::kDemand);
      } else {
        EXPECT_EQ(next, ResourceClass::kSupply);
      }
    }
  }
}

TEST(MbaFsmPropertyTest, HighTrafficNeverEndsInSupply) {
  const ClassifierParams params;
  for (ResourceClass initial : kStates) {
    for (ClassifierInput input : InputGrid()) {
      if (input.traffic_ratio <= params.traffic_ratio_high) {
        continue;
      }
      MbaClassifierFsm fsm(params, initial);
      EXPECT_NE(fsm.Update(input), ResourceClass::kSupply)
          << ResourceClassName(initial);
    }
  }
}

TEST(MbaFsmPropertyTest, LlcGainNeverDemotesDemand) {
  // The §5.3 interaction rule, across the whole input grid.
  const ClassifierParams params;
  for (ClassifierInput input : InputGrid()) {
    if (input.last_event != ResourceEvent::kGainedLlcWay ||
        input.traffic_ratio < params.traffic_ratio_low) {
      continue;
    }
    MbaClassifierFsm fsm(params, ResourceClass::kDemand);
    EXPECT_EQ(fsm.Update(input), ResourceClass::kDemand);
  }
}

TEST(FsmPropertyTest, DeterministicGivenSameInputs) {
  const ClassifierParams params;
  for (ResourceClass initial : kStates) {
    for (ClassifierInput input : InputGrid()) {
      LlcClassifierFsm a(params, initial), b(params, initial);
      EXPECT_EQ(a.Update(input), b.Update(input));
      MbaClassifierFsm c(params, initial), d(params, initial);
      EXPECT_EQ(c.Update(input), d.Update(input));
    }
  }
}

}  // namespace
}  // namespace copart
