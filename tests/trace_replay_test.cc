// Trace-replay adapter (src/trace/trace_replay.h): round-trip of a
// captured profile into WorkloadDescriptor + ArrivalConfig, schema
// rejection paths, and replay on the simulated machine / serve engine.
#include "trace/trace_replay.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "machine/simulated_machine.h"

namespace copart {
namespace {

const char kFullDocument[] = R"({
  "schema": "copart-trace-v1",
  "name": "captured_kv",
  "short_name": "KV",
  "category": "latency_critical",
  "reuse": {
    "streaming_weight": 0.05,
    "components": [
      {"weight": 0.8, "working_set_bytes": 12582912},
      {"weight": 0.1, "working_set_bytes": 1048576}
    ]
  },
  "cpu": {
    "accesses_per_instr": 0.008,
    "cpi_exec": 1.2,
    "mem_latency_cycles": 180.0,
    "mlp": 2.5,
    "mba_kappa": 0.1,
    "num_threads": 8
  },
  "phases": [
    {"duration_sec": 15.0},
    {"duration_sec": 15.0, "access_intensity_scale": 2.0,
     "streaming_scale": 8.0, "cpi_exec_scale": 1.1}
  ],
  "serve": {
    "instructions_per_request": 60000.0,
    "slo_p95_ms": 1.0,
    "arrival": {
      "kind": "flash_crowd",
      "base_rate_rps": 75000.0,
      "flash_start_sec": 40.0,
      "flash_duration_sec": 20.0,
      "flash_multiplier": 4.0
    }
  }
})";

TEST(TraceReplayTest, FullDocumentRoundTrips) {
  Result<TraceReplay> replay = ParseTraceReplay(kFullDocument);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  const WorkloadDescriptor& w = replay->workload;
  EXPECT_EQ(w.name, "captured_kv");
  EXPECT_EQ(w.short_name, "KV");
  EXPECT_EQ(w.category, WorkloadCategory::kLatencyCritical);
  ASSERT_EQ(w.reuse_profile.components().size(), 2u);
  EXPECT_DOUBLE_EQ(w.reuse_profile.components()[0].weight, 0.8);
  EXPECT_EQ(w.reuse_profile.components()[0].working_set_bytes, MiB(12));
  EXPECT_DOUBLE_EQ(w.reuse_profile.streaming_weight(), 0.05);
  EXPECT_DOUBLE_EQ(w.accesses_per_instr, 0.008);
  EXPECT_DOUBLE_EQ(w.cpi_exec, 1.2);
  EXPECT_DOUBLE_EQ(w.mem_latency_cycles, 180.0);
  EXPECT_DOUBLE_EQ(w.mlp, 2.5);
  EXPECT_DOUBLE_EQ(w.mba_kappa, 0.1);
  EXPECT_EQ(w.num_threads, 8u);
  ASSERT_EQ(w.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(w.phases[1].streaming_scale, 8.0);
  EXPECT_DOUBLE_EQ(w.instructions_per_request, 60000.0);
  EXPECT_DOUBLE_EQ(w.slo_p95_ms, 1.0);
  ASSERT_TRUE(replay->has_arrival);
  EXPECT_EQ(replay->arrival.kind, ArrivalKind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(replay->arrival.base_rate_rps, 75000.0);
  EXPECT_DOUBLE_EQ(replay->arrival.flash_multiplier, 4.0);
}

TEST(TraceReplayTest, MinimalBatchDocumentParses) {
  const char kMinimal[] = R"({
    "schema": "copart-trace-v1",
    "name": "captured_batch",
    "reuse": {"components": [{"weight": 0.5, "working_set_bytes": 4194304}]},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 0.9}
  })";
  Result<TraceReplay> replay = ParseTraceReplay(kMinimal);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->workload.short_name, "captured_batch");
  EXPECT_EQ(replay->workload.category, WorkloadCategory::kInsensitive);
  EXPECT_FALSE(replay->has_arrival);
  EXPECT_TRUE(replay->workload.phases.empty());
}

TEST(TraceReplayTest, ReplayedWorkloadRunsOnTheMachine) {
  Result<TraceReplay> replay = ParseTraceReplay(kFullDocument);
  ASSERT_TRUE(replay.ok());
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  Result<AppId> app =
      machine.LaunchApp(replay->workload, replay->workload.num_threads);
  ASSERT_TRUE(app.ok());
  machine.AdvanceTime(7.0);  // Steady phase.
  const double steady_ips = machine.LastEpoch(*app).ips;
  EXPECT_GT(steady_ips, 0.0);
  machine.AdvanceTime(15.0);  // Hot-set rotation phase.
  EXPECT_LT(machine.LastEpoch(*app).ips, steady_ips);
}

TEST(TraceReplayTest, ReplayedArrivalDrivesAGenerator) {
  Result<TraceReplay> replay = ParseTraceReplay(kFullDocument);
  ASSERT_TRUE(replay.ok());
  ArrivalGenerator generator(replay->arrival, Rng(3));
  EXPECT_DOUBLE_EQ(generator.PeakRate(), 300000.0);
  EXPECT_DOUBLE_EQ(generator.RateAt(50.0), 300000.0);  // Inside the flash.
  EXPECT_DOUBLE_EQ(generator.RateAt(70.0), 75000.0);
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = generator.Next();
    ASSERT_GT(t, last);
    last = t;
  }
}

TEST(TraceReplayTest, LoadsFromFile) {
  const std::string path = ::testing::TempDir() + "/trace_replay_test.json";
  {
    std::ofstream out(path);
    out << kFullDocument;
  }
  Result<TraceReplay> replay = LoadTraceReplayFile(path);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  std::remove(path.c_str());
  Result<TraceReplay> missing = LoadTraceReplayFile(path);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// --- Rejection paths: every schema violation must fail loudly. ---

TEST(TraceReplayTest, RejectsMalformedJson) {
  Result<TraceReplay> replay = ParseTraceReplay("{\"schema\": ");
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceReplayTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseTraceReplay("{} extra").ok());
}

TEST(TraceReplayTest, RejectsWrongSchemaTag) {
  const char kDoc[] = R"({
    "schema": "copart-trace-v9",
    "name": "x",
    "reuse": {"components": []},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0}
  })";
  Result<TraceReplay> replay = ParseTraceReplay(kDoc);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("unsupported schema"),
            std::string::npos);
}

TEST(TraceReplayTest, RejectsUnknownKeys) {
  const char kDoc[] = R"({
    "schema": "copart-trace-v1",
    "name": "x",
    "reuse": {"components": [], "streeming_weight": 0.1},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0}
  })";
  Result<TraceReplay> replay = ParseTraceReplay(kDoc);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("streeming_weight"),
            std::string::npos);
}

TEST(TraceReplayTest, RejectsDuplicateKeys) {
  EXPECT_FALSE(
      ParseTraceReplay(R"({"schema": "a", "schema": "b"})").ok());
}

TEST(TraceReplayTest, RejectsOverweightReuseProfile) {
  const char kDoc[] = R"({
    "schema": "copart-trace-v1",
    "name": "x",
    "reuse": {
      "streaming_weight": 0.5,
      "components": [{"weight": 0.8, "working_set_bytes": 1048576}]
    },
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0}
  })";
  Result<TraceReplay> replay = ParseTraceReplay(kDoc);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("exceed 1"), std::string::npos);
}

TEST(TraceReplayTest, RejectsLatencyCriticalWithoutServeSection) {
  const char kDoc[] = R"({
    "schema": "copart-trace-v1",
    "name": "x",
    "category": "latency_critical",
    "reuse": {"components": [{"weight": 0.5, "working_set_bytes": 1048576}]},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0}
  })";
  EXPECT_FALSE(ParseTraceReplay(kDoc).ok());
}

TEST(TraceReplayTest, RejectsBadArrivalKindAndRanges) {
  const char kBadKind[] = R"({
    "schema": "copart-trace-v1",
    "name": "x",
    "reuse": {"components": [{"weight": 0.5, "working_set_bytes": 1048576}]},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0},
    "serve": {
      "instructions_per_request": 1000.0, "slo_p95_ms": 1.0,
      "arrival": {"kind": "tsunami", "base_rate_rps": 100.0}
    }
  })";
  EXPECT_FALSE(ParseTraceReplay(kBadKind).ok());
  const char kBadRate[] = R"({
    "schema": "copart-trace-v1",
    "name": "x",
    "reuse": {"components": [{"weight": 0.5, "working_set_bytes": 1048576}]},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0},
    "serve": {
      "instructions_per_request": 1000.0, "slo_p95_ms": 1.0,
      "arrival": {"kind": "poisson", "base_rate_rps": -5.0}
    }
  })";
  EXPECT_FALSE(ParseTraceReplay(kBadRate).ok());
}

TEST(TraceReplayTest, RejectsNonPositivePhaseDuration) {
  const char kDoc[] = R"({
    "schema": "copart-trace-v1",
    "name": "x",
    "reuse": {"components": [{"weight": 0.5, "working_set_bytes": 1048576}]},
    "cpu": {"accesses_per_instr": 0.01, "cpi_exec": 1.0},
    "phases": [{"duration_sec": 0.0}]
  })";
  EXPECT_FALSE(ParseTraceReplay(kDoc).ok());
}

}  // namespace
}  // namespace copart
