// Chaos suite for the clustered rival policies (LFOC / LFOC+ / CBP): 100
// seeded fault schedules per policy, each driving a managed consolidation —
// one SLO-governed latency-critical app plus a churning batch population —
// through a warmup / resctrl-fault-storm / recovery arc. Asserted every
// control period:
//
//   - the latency-critical CLOS never plans OR actuates below
//     SloParams::lc_way_floor, whatever subset of writes the storm drops,
//   - the manager's state stays valid with contiguous non-empty masks on
//     every slot and on every live app's actuated CLOS,
//   - cluster membership never leaks a terminated app: the manager's app
//     count and slot map track exactly the live admitted batch population.
//
// Every schedule derives from its seed (failures replay bit-for-bit) and
// the suite fans out under the common/parallel.h determinism contract.
// Runs in the default ctest pass AND under `ctest -L chaos`.
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/resource_manager.h"
#include "harness/serve.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

constexpr uint32_t kWayFloor = 2;
constexpr int kWarmupPeriods = 20;
constexpr int kStormPeriods = 60;
constexpr int kRecoveryPeriods = 120;
constexpr double kPeriodSec = 0.5;
constexpr int kSchedulesPerPolicy = 100;

constexpr std::string_view kStormPoints[] = {
    fault_points::kResctrlCreateGroup,
    fault_points::kResctrlCreateGroupExhausted,
    fault_points::kResctrlRemoveGroup,
    fault_points::kResctrlSetL3,
    fault_points::kResctrlSetMb,
    fault_points::kResctrlSetL3Silent,
    fault_points::kResctrlSetMbSilent,
    fault_points::kResctrlAssignApp,
    fault_points::kPrefetchWrite,
    fault_points::kPrefetchWriteSilent,
    fault_points::kPmcDropped,
    fault_points::kPmcStale,
    fault_points::kPmcSaturated,
};

WorkloadDescriptor RosterPick(Rng& rng) {
  switch (rng.NextUint64(8)) {
    case 0: return WaterNsquared();
    case 1: return Cg();
    case 2: return Sp();
    case 3: return OceanNcp();
    case 4: return Swaptions();
    case 5: return Ft();
    case 6: return Raytrace();
    default: return OceanCp();
  }
}

bool ContiguousMask(uint64_t mask) {
  if (mask == 0) {
    return false;
  }
  const uint64_t shifted = mask >> std::countr_zero(mask);
  return (shifted & (shifted + 1)) == 0;
}

struct ScheduleResult {
  uint64_t seed = 0;
  bool passed = false;
  std::string failure;
  uint64_t injected_failures = 0;
};

// One schedule, deterministic in (policy, seed).
ScheduleResult RunSchedule(const std::string& policy, uint64_t seed) {
  ScheduleResult result;
  result.seed = seed;

  Rng rng = Rng(seed);
  FaultInjector injector(rng.NextUint64());
  MachineConfig machine_config;
  machine_config.num_cores = 16;
  machine_config.seed = rng.NextUint64();
  machine_config.fault_injector = &injector;
  SimulatedMachine machine(machine_config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);

  ResourceManagerParams params;
  params.partition_policy = policy;
  params.seed = rng.NextUint64();
  params.control_period_sec = kPeriodSec;
  params.slo.enabled = true;
  params.slo.lc_way_floor = kWayFloor;
  ResourceManager manager(&resctrl, &monitor, params);

  // The latency-critical tenant (registered fault-free).
  const WorkloadDescriptor lc_desc = Memcached();
  Result<AppId> lc = machine.LaunchApp(lc_desc, 4);
  CHECK(lc.ok());
  LcAppModel model;
  model.slo_p95_ms = lc_desc.slo_p95_ms;
  model.instructions_per_request = lc_desc.instructions_per_request;
  model.capability_ips = [&machine_config, lc_desc](uint32_t ways) {
    return PredictLcCapabilityIps(lc_desc, 4, ways, machine_config);
  };
  model.initial_offered_rps = 75000.0;
  CHECK(manager.SetLatencyCriticalApp(*lc, model).ok());

  // Initial batch consolidation.
  const int num_batch = 3 + static_cast<int>(rng.NextUint64(3));
  std::vector<AppId> admitted;
  for (int i = 0; i < num_batch; ++i) {
    Result<AppId> app = machine.LaunchApp(RosterPick(rng), 2);
    if (!app.ok()) {
      break;
    }
    if (manager.AddApp(*app).ok()) {
      admitted.push_back(*app);
    } else {
      (void)machine.TerminateApp(*app);
    }
  }

  int period = 0;
  auto check = [&]() -> std::string {
    // LC floor: the plan and the actuated mask both respect it.
    if (manager.LcWays(*lc) < kWayFloor) {
      return "LC plan below floor: " + std::to_string(manager.LcWays(*lc));
    }
    const WayMask lc_mask = machine.ClosWayMask(machine.AppClos(*lc));
    if (lc_mask.CountWays() < kWayFloor) {
      return "LC actuated mask below floor: " +
             std::to_string(lc_mask.CountWays()) + " ways";
    }
    // No terminated app lingers in the manager's books.
    if (manager.NumApps() != admitted.size()) {
      return "membership leak: manager tracks " +
             std::to_string(manager.NumApps()) + " batch apps, " +
             std::to_string(admitted.size()) + " are alive";
    }
    if (manager.NumApps() == 0) {
      return "";
    }
    const SystemState& state = manager.current_state();
    if (!state.Valid()) {
      return "system state invalid";
    }
    const std::vector<uint32_t>& slots = manager.app_slots();
    if (slots.size() != manager.NumApps()) {
      return "slot map sized " + std::to_string(slots.size()) + " for " +
             std::to_string(manager.NumApps()) + " apps";
    }
    for (uint32_t slot : slots) {
      if (slot >= state.NumApps()) {
        return "slot index out of range";
      }
    }
    for (size_t slot = 0; slot < state.NumApps(); ++slot) {
      if (!ContiguousMask(state.WayMaskBits(slot))) {
        return "bad planned mask on slot " + std::to_string(slot);
      }
    }
    for (AppId app : admitted) {
      if (!ContiguousMask(machine.ClosWayMask(machine.AppClos(app)).bits())) {
        return "live app actuated in a CLOS with a bad mask";
      }
    }
    return "";
  };

  auto run_period = [&]() -> bool {
    machine.AdvanceTime(kPeriodSec);
    manager.Tick();
    std::erase_if(admitted,
                  [&](AppId app) { return !machine.AppExists(app); });
    const std::string violation = check();
    ++period;
    if (!violation.empty()) {
      result.failure =
          violation + " (period " + std::to_string(period) + ")";
      return false;
    }
    return true;
  };

  auto finish = [&]() { result.injected_failures = injector.total_failures(); };

  for (int i = 0; i < kWarmupPeriods; ++i) {
    if (!run_period()) {
      finish();
      return result;
    }
  }

  // Storm: arm a random subset of the substrate's fault points, churn the
  // batch population, and burst the LC load past its quiet level.
  bool any_armed = false;
  for (std::string_view point : kStormPoints) {
    if (rng.NextBool(0.45)) {
      FaultSpec spec;
      spec.probability = 0.05 + 0.6 * rng.NextDouble();
      spec.burst_length = 1 + static_cast<uint32_t>(rng.NextUint64(4));
      injector.Arm(point, spec);
      any_armed = true;
    }
  }
  if (!any_armed) {
    FaultSpec fallback;
    fallback.probability = 0.5;
    injector.Arm(fault_points::kResctrlSetL3, fallback);
  }
  for (int i = 0; i < kStormPeriods; ++i) {
    const double rps = (i % 20 < 10) ? 75000.0 : 150000.0;
    machine.SetAppRequiredIps(*lc, rps * lc_desc.instructions_per_request);
    manager.SetLcOfferedLoad(*lc, rps);
    if (rng.NextBool(0.08) && admitted.size() > 1) {
      // Unannounced death: the policy's cluster must not keep the corpse.
      (void)machine.TerminateApp(admitted[rng.NextUint64(admitted.size())]);
    }
    if (rng.NextBool(0.08) && admitted.size() < 6) {
      Result<AppId> app = machine.LaunchApp(RosterPick(rng), 2);
      if (app.ok()) {
        if (manager.AddApp(*app).ok()) {
          admitted.push_back(*app);
        } else {
          (void)machine.TerminateApp(*app);
        }
      }
    }
    if (!run_period()) {
      finish();
      return result;
    }
  }

  injector.DisarmAll();
  for (int i = 0; i < kRecoveryPeriods; ++i) {
    if (!run_period()) {
      finish();
      return result;
    }
  }

  finish();
  result.passed = true;
  return result;
}

class PolicyChaosTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyChaosTest, HundredSchedulesHoldInvariants) {
  const std::string policy = GetParam();
  const Rng seeder(0xC1A05ULL + std::hash<std::string>{}(policy));
  const std::vector<ScheduleResult> results = ParallelMap<ScheduleResult>(
      ParallelConfig{}, kSchedulesPerPolicy, [&](size_t i) {
        return RunSchedule(policy, seeder.Fork(i).NextUint64());
      });

  uint64_t injected = 0;
  int passed = 0;
  for (const ScheduleResult& result : results) {
    if (result.passed) {
      ++passed;
    } else {
      ADD_FAILURE() << policy << " schedule failed: seed=0x" << std::hex
                    << result.seed << std::dec << ": " << result.failure;
    }
    injected += result.injected_failures;
  }
  EXPECT_EQ(passed, kSchedulesPerPolicy);
  // A quiet suite would pass vacuously: the storms must actually land.
  EXPECT_GT(injected, 0u) << policy;
}

INSTANTIATE_TEST_SUITE_P(
    RivalPolicies, PolicyChaosTest,
    ::testing::Values(std::string("lfoc"), std::string("lfoc+"),
                      std::string("cbp")),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '+') {
          c = 'P';
        }
      }
      return name;
    });

}  // namespace
}  // namespace copart
