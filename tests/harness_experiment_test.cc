// The experiment runner: metrics plumbing, policy factories, determinism.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "harness/mix.h"

namespace copart {
namespace {

TEST(ExperimentTest, ResultFieldsPopulated) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  const ExperimentResult result = RunExperiment(mix, EqFactory(), {});
  EXPECT_EQ(result.policy_name, "EQ");
  EXPECT_EQ(result.mix_name, "H-LLC-4");
  ASSERT_EQ(result.avg_ips.size(), 4u);
  ASSERT_EQ(result.slowdowns.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GT(result.avg_ips[i], 0.0);
    EXPECT_GE(result.slowdowns[i], 0.99);
    EXPECT_NEAR(result.slowdowns[i],
                result.solo_full_ips[i] / result.avg_ips[i], 1e-9);
  }
  EXPECT_GT(result.throughput_geomean, 0.0);
  EXPECT_EQ(result.avg_exploration_us, 0.0);  // Static policy.
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighBoth, 4);
  const ExperimentResult a = RunExperiment(mix, CoPartFactory(), {});
  const ExperimentResult b = RunExperiment(mix, CoPartFactory(), {});
  EXPECT_DOUBLE_EQ(a.unfairness, b.unfairness);
  for (size_t i = 0; i < a.avg_ips.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.avg_ips[i], b.avg_ips[i]);
  }
}

TEST(ExperimentTest, CoresDerivedFromMixSize) {
  const WorkloadMix mix = MakeMix(MixFamily::kInsensitive, 5);
  ExperimentConfig config;
  config.duration_sec = 2.0;
  // 16/5 = 3 cores per app: solo-full references must use the same count.
  const ExperimentResult result = RunExperiment(mix, EqFactory(), config);
  SimulatedMachine machine(config.machine);
  EXPECT_NEAR(result.solo_full_ips[0],
              machine.SoloFullResourceIps(mix.apps[0], 3), 1.0);
}

TEST(ExperimentTest, RestrictedPoolIsHonored) {
  const WorkloadMix mix = MakeMix(MixFamily::kHighLlc, 4);
  ExperimentConfig config;
  config.pool = ResourcePool{.first_way = 0, .num_ways = 7,
                             .max_mba_percent = 100};
  config.duration_sec = 10.0;
  const ExperimentResult full = RunExperiment(mix, EqFactory(), {});
  const ExperimentResult restricted =
      RunExperiment(mix, EqFactory(), config);
  // Less cache -> strictly slower cache-sensitive apps.
  EXPECT_LT(restricted.avg_ips[0], full.avg_ips[0]);
}

TEST(ExperimentTest, StandardPoliciesHavePaperNames) {
  const auto policies = StandardPolicies();
  ASSERT_EQ(policies.size(), 5u);
  EXPECT_EQ(policies[0].first, "EQ");
  EXPECT_EQ(policies[1].first, "ST");
  EXPECT_EQ(policies[2].first, "CAT-only");
  EXPECT_EQ(policies[3].first, "MBA-only");
  EXPECT_EQ(policies[4].first, "CoPart");
}

TEST(ExperimentTest, CoPartReportsExplorationOverhead) {
  const ExperimentResult result =
      RunExperiment(MakeMix(MixFamily::kHighLlc, 4), CoPartFactory(), {});
  EXPECT_GT(result.avg_exploration_us, 0.0);
}

TEST(ExperimentTest, NoPartBaselineRuns) {
  const ExperimentResult result =
      RunExperiment(MakeMix(MixFamily::kHighLlc, 4), NoPartFactory(), {});
  EXPECT_EQ(result.policy_name, "NoPart");
  EXPECT_GT(result.unfairness, 0.0);
}

}  // namespace
}  // namespace copart
