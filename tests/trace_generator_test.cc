#include "trace/trace_generator.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/units.h"

namespace copart {
namespace {

TEST(UniformWorkingSetGeneratorTest, StaysInRangeAndLineAligned) {
  UniformWorkingSetGenerator generator(MiB(1), KiB(64), 64, Rng(1));
  for (int i = 0; i < 10000; ++i) {
    const uint64_t address = generator.Next();
    EXPECT_GE(address, MiB(1));
    EXPECT_LT(address, MiB(1) + KiB(64));
    EXPECT_EQ((address - MiB(1)) % 64, 0u);
  }
}

TEST(UniformWorkingSetGeneratorTest, CoversAllLines) {
  constexpr uint64_t kLines = 32;
  UniformWorkingSetGenerator generator(0, kLines * 64, 64, Rng(2));
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(generator.Next() / 64);
  }
  EXPECT_EQ(seen.size(), kLines);
}

TEST(UniformWorkingSetGeneratorTest, TinyWorkingSetClampsToOneLine) {
  UniformWorkingSetGenerator generator(0, 8, 64, Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(generator.Next(), 0u);
  }
}

TEST(StreamingGeneratorTest, StrictlyIncreasingByLine) {
  StreamingGenerator generator(GiB(4), 64);
  uint64_t previous = generator.Next();
  EXPECT_EQ(previous, GiB(4));
  for (int i = 0; i < 1000; ++i) {
    const uint64_t address = generator.Next();
    EXPECT_EQ(address, previous + 64);
    previous = address;
  }
}

TEST(MixtureTraceGeneratorTest, RespectsComponentWeights) {
  // 60% to a 1 MiB set, 40% streaming: classify draws by address region.
  const ReuseProfile profile({{0.6, MiB(1)}}, 0.4);
  MixtureTraceGenerator generator(profile, 64, Rng(7));
  int in_component = 0, streaming = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t address = generator.Next();
    if (address < MiB(1)) {
      ++in_component;
    } else {
      ++streaming;
    }
  }
  EXPECT_NEAR(in_component / static_cast<double>(kDraws), 0.6, 0.02);
  EXPECT_NEAR(streaming / static_cast<double>(kDraws), 0.4, 0.02);
}

TEST(MixtureTraceGeneratorTest, ComponentRangesAreDisjoint) {
  const ReuseProfile profile({{0.4, MiB(2)}, {0.4, MiB(2)}}, 0.2);
  MixtureTraceGenerator generator(profile, 64, Rng(11));
  // Draws from the two components and the stream must never collide on the
  // same cache line.
  std::unordered_map<uint64_t, int> region_of_line;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t address = generator.Next();
    int region;
    if (address < MiB(2)) {
      region = 0;
    } else if (address < GiB(2)) {
      region = 1;
    } else {
      region = 2;
    }
    auto [it, inserted] = region_of_line.try_emplace(address / 64, region);
    EXPECT_EQ(it->second, region);
  }
}

TEST(MixtureTraceGeneratorTest, ResidualWeightDrawsSingleResidentLine) {
  // 0.5 component + 0.2 stream leaves 0.3 residual -> one hot line.
  const ReuseProfile profile({{0.5, MiB(1)}}, 0.2);
  MixtureTraceGenerator generator(profile, 64, Rng(13));
  std::set<uint64_t> resident_lines;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t address = generator.Next();
    if (address >= GiB(200)) {
      resident_lines.insert(address / 64);
    }
  }
  EXPECT_EQ(resident_lines.size(), 1u);
}

TEST(MixtureTraceGeneratorTest, DeterministicForSameSeed) {
  const ReuseProfile profile({{0.7, MiB(1)}}, 0.3);
  MixtureTraceGenerator a(profile, 64, Rng(17));
  MixtureTraceGenerator b(profile, 64, Rng(17));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

}  // namespace
}  // namespace copart
