// Characterization sweeps: solo heatmaps (Figs. 1-3) and mix fairness
// grids (Figs. 4-6).
#include "harness/heatmap.h"

#include <gtest/gtest.h>

#include "membw/mba.h"
#include "workload/workload.h"

namespace copart {
namespace {

TEST(SoloHeatmapTest, GridShapeAndNormalization) {
  const SoloHeatmap map = SweepSoloPerformance(WaterNsquared(), {});
  EXPECT_EQ(map.way_counts.size(), 11u);
  EXPECT_EQ(map.mba_percents.size(), 10u);
  double peak = 0.0;
  for (const std::vector<double>& row : map.normalized_ips) {
    for (double value : row) {
      EXPECT_GT(value, 0.0);
      EXPECT_LE(value, 1.0 + 1e-12);
      peak = std::max(peak, value);
    }
  }
  EXPECT_NEAR(peak, 1.0, 1e-12);
}

TEST(SoloHeatmapTest, LlcSensitiveShapeVariesAlongWaysOnly) {
  const SoloHeatmap map = SweepSoloPerformance(WaterNsquared(), {});
  // Strong gradient along ways at MBA 100...
  EXPECT_LT(map.normalized_ips[0][9], 0.6);
  EXPECT_GT(map.normalized_ips[10][9], 0.99);
  // ...but nearly flat along MBA at 11 ways.
  EXPECT_GT(map.normalized_ips[10][0], 0.95);
}

TEST(SoloHeatmapTest, BwSensitiveShapeVariesAlongMbaOnly) {
  const SoloHeatmap map = SweepSoloPerformance(Cg(), {});
  EXPECT_LT(map.normalized_ips[10][0], 0.85);
  EXPECT_GT(map.normalized_ips[0][9], 0.90);
}

TEST(SoloHeatmapTest, ThresholdHelpers) {
  const SoloHeatmap wn = SweepSoloPerformance(WaterNsquared(), {});
  EXPECT_EQ(wn.MinWaysForFraction(0.9), 4u);
  EXPECT_EQ(wn.MinMbaForFraction(0.9), 10u);  // BW-insensitive.
  const SoloHeatmap cg = SweepSoloPerformance(Cg(), {});
  EXPECT_EQ(cg.MinWaysForFraction(0.9), 1u);  // LLC-insensitive.
  EXPECT_EQ(cg.MinMbaForFraction(0.9), 20u);
}

TEST(FairnessGridTest, DefaultConfigsCoverFourApps) {
  for (const std::vector<uint32_t>& config : DefaultLlcConfigs()) {
    ASSERT_EQ(config.size(), 4u);
    uint32_t total = 0;
    for (uint32_t ways : config) {
      EXPECT_GE(ways, 1u);
      total += ways;
    }
    EXPECT_EQ(total, 11u);
  }
  for (const std::vector<uint32_t>& config : DefaultMbaConfigs()) {
    ASSERT_EQ(config.size(), 4u);
    for (uint32_t level : config) {
      EXPECT_TRUE(MbaLevel::FromPercent(level).ok());
    }
  }
}

TEST(FairnessGridTest, LlcMixFairnessVariesWithLlcPartitioning) {
  const FairnessGrid grid =
      SweepMixFairness(LlcSensitiveCharacterizationMix(),
                       DefaultLlcConfigs(), DefaultMbaConfigs(), {});
  EXPECT_GT(grid.nopart_unfairness, 0.0);
  ASSERT_EQ(grid.normalized_unfairness.size(), DefaultLlcConfigs().size());
  // The paper's observation: the balanced (5,3,2,1) row at permissive MBA
  // beats starving WN with (1,1,1,8) or (2,2,2,5).
  const size_t balanced = 1;  // (5,3,2,1)
  const size_t starved = 9;   // (1,1,1,8)
  EXPECT_LT(grid.normalized_unfairness[balanced][0],
            grid.normalized_unfairness[starved][0]);
}

TEST(FairnessGridTest, BwMixFairnessVariesWithMbaPartitioning) {
  const FairnessGrid grid =
      SweepMixFairness(BwSensitiveCharacterizationMix(),
                       DefaultLlcConfigs(), DefaultMbaConfigs(), {});
  // For a fixed LLC row, throttling OC/CG to 10% ((10,10,10,100), col 8)
  // must be much less fair than no MBA partitioning (col 0).
  const size_t row = 5;  // (3,3,3,2): near-equal LLC.
  EXPECT_GT(grid.normalized_unfairness[row][8],
            grid.normalized_unfairness[row][0] * 2.0);
  // And LLC partitioning barely matters at permissive MBA: compare two rows.
  EXPECT_NEAR(grid.normalized_unfairness[1][0],
              grid.normalized_unfairness[8][0],
              0.35 * std::max(grid.normalized_unfairness[1][0], 0.05));
}

TEST(FairnessGridTest, GridValuesNormalizedToNoPart) {
  const FairnessGrid grid =
      SweepMixFairness(BothSensitiveCharacterizationMix(),
                       DefaultLlcConfigs(), DefaultMbaConfigs(), {});
  // At least one partitioned configuration beats no-partitioning...
  double best = 1e9;
  for (const std::vector<double>& row : grid.normalized_unfairness) {
    for (double value : row) {
      best = std::min(best, value);
    }
  }
  EXPECT_LT(best, 1.0);
}

}  // namespace
}  // namespace copart
