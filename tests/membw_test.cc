// MBA level semantics and the memory-controller arbitration model.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "common/units.h"
#include "membw/bandwidth_arbiter.h"
#include "membw/mba.h"
#include "membw/mba_throttle_model.h"

namespace copart {
namespace {

TEST(MbaLevelTest, DefaultIsUnthrottled) {
  EXPECT_EQ(MbaLevel().percent(), 100u);
  EXPECT_DOUBLE_EQ(MbaLevel().Fraction(), 1.0);
}

TEST(MbaLevelTest, ValidLevels) {
  for (uint32_t percent = 10; percent <= 100; percent += 10) {
    Result<MbaLevel> level = MbaLevel::FromPercent(percent);
    ASSERT_TRUE(level.ok()) << percent;
    EXPECT_EQ(level->percent(), percent);
  }
}

TEST(MbaLevelTest, RejectsOutOfRangeAndOffStep) {
  EXPECT_FALSE(MbaLevel::FromPercent(0).ok());
  EXPECT_FALSE(MbaLevel::FromPercent(5).ok());
  EXPECT_FALSE(MbaLevel::FromPercent(110).ok());
  EXPECT_FALSE(MbaLevel::FromPercent(25).ok());
  EXPECT_EQ(MbaLevel::FromPercent(25).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MbaLevel::FromPercent(110).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MbaLevelTest, StepMovement) {
  MbaLevel level = MbaLevel::FromPercentChecked(50);
  EXPECT_TRUE(level.CanIncrease());
  EXPECT_TRUE(level.CanDecrease());
  EXPECT_EQ(level.Increased().percent(), 60u);
  EXPECT_EQ(level.Decreased().percent(), 40u);
  EXPECT_FALSE(MbaLevel::FromPercentChecked(10).CanDecrease());
  EXPECT_FALSE(MbaLevel::FromPercentChecked(100).CanIncrease());
  EXPECT_EQ(MbaLevel::FromPercentChecked(10).StepsAboveMin(), 0u);
  EXPECT_EQ(MbaLevel::FromPercentChecked(100).StepsAboveMin(), 9u);
}

TEST(MbaLevelDeathTest, SteppingPastBoundsAborts) {
  EXPECT_DEATH(MbaLevel::FromPercentChecked(100).Increased(), "CanIncrease");
  EXPECT_DEATH(MbaLevel::FromPercentChecked(10).Decreased(), "CanDecrease");
}

TEST(MbaThrottleModelTest, EndpointsAndMonotonicity) {
  const MbaThrottleModel model;
  EXPECT_DOUBLE_EQ(model.CapFraction(MbaLevel()), 1.0);
  double previous = 0.0;
  for (uint32_t percent = 10; percent <= 100; percent += 10) {
    const double fraction =
        model.CapFraction(MbaLevel::FromPercentChecked(percent));
    EXPECT_GT(fraction, previous);
    previous = fraction;
  }
  // Sub-linear exponent -> low levels under-throttle relative to linear.
  EXPECT_GT(model.CapFraction(MbaLevel::FromPercentChecked(10)), 0.10);
}

std::vector<BandwidthRequest> MakeRequests(
    std::initializer_list<std::pair<double, double>> demand_cap) {
  std::vector<BandwidthRequest> requests;
  for (const auto& [demand, cap] : demand_cap) {
    requests.push_back({demand, cap});
  }
  return requests;
}

TEST(ArbiterTest, UncontendedDemandsFullyGranted) {
  BandwidthArbiter arbiter(GBps(28));
  const auto grants = arbiter.Arbitrate(
      MakeRequests({{GBps(3), GBps(28)}, {GBps(5), GBps(28)}}));
  EXPECT_DOUBLE_EQ(grants[0], GBps(3));
  EXPECT_DOUBLE_EQ(grants[1], GBps(5));
}

TEST(ArbiterTest, MbaCapBindsBeforeContention) {
  BandwidthArbiter arbiter(GBps(28));
  const auto grants =
      arbiter.Arbitrate(MakeRequests({{GBps(10), GBps(4)}}));
  EXPECT_DOUBLE_EQ(grants[0], GBps(4));
}

TEST(ArbiterTest, SaturationSplitsEvenlyAmongElephants) {
  BandwidthArbiter arbiter(GBps(28));
  const auto grants = arbiter.Arbitrate(MakeRequests(
      {{GBps(20), GBps(28)}, {GBps(20), GBps(28)}, {GBps(20), GBps(28)}}));
  for (double grant : grants) {
    EXPECT_NEAR(grant, GBps(28) / 3, 1.0);
  }
}

TEST(ArbiterTest, MaxMinProtectsMice) {
  BandwidthArbiter arbiter(GBps(28));
  // A 1 GB/s mouse among two elephants keeps its full demand.
  const auto grants = arbiter.Arbitrate(MakeRequests(
      {{GBps(1), GBps(28)}, {GBps(30), GBps(28)}, {GBps(30), GBps(28)}}));
  EXPECT_DOUBLE_EQ(grants[0], GBps(1));
  EXPECT_NEAR(grants[1], GBps(13.5), 1.0);
  EXPECT_NEAR(grants[2], GBps(13.5), 1.0);
}

TEST(ArbiterTest, EmptyRequestVector) {
  BandwidthArbiter arbiter(GBps(28));
  EXPECT_TRUE(arbiter.Arbitrate({}).empty());
}

TEST(ArbiterTest, ZeroDemandGetsZero) {
  BandwidthArbiter arbiter(GBps(28));
  const auto grants = arbiter.Arbitrate(
      MakeRequests({{0.0, GBps(28)}, {GBps(40), GBps(28)}}));
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_NEAR(grants[1], GBps(28), 1.0);
}

// Properties under randomized loads: grants never exceed demand, cap, or
// total; max-min fairness holds (an app granted less than min(demand, cap)
// implies every other app's grant <= its grant + epsilon).
class ArbiterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArbiterPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  BandwidthArbiter arbiter(GBps(28));
  for (int round = 0; round < 200; ++round) {
    const size_t n = 1 + rng.NextUint64(8);
    std::vector<BandwidthRequest> requests(n);
    for (BandwidthRequest& request : requests) {
      request.demand_bytes_per_sec = rng.NextDouble() * GBps(15);
      request.cap_bytes_per_sec = GBps(2.8) + rng.NextDouble() * GBps(25.2);
    }
    const std::vector<double> grants = arbiter.Arbitrate(requests);
    ASSERT_EQ(grants.size(), n);
    double total = 0.0;
    constexpr double kEpsilon = 1.0;  // 1 byte/s slack for float error.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(grants[i], requests[i].demand_bytes_per_sec + kEpsilon);
      EXPECT_LE(grants[i], requests[i].cap_bytes_per_sec + kEpsilon);
      EXPECT_GE(grants[i], -kEpsilon);
      total += grants[i];
    }
    EXPECT_LE(total, GBps(28) + kEpsilon * static_cast<double>(n));
    for (size_t i = 0; i < n; ++i) {
      const double want = std::min(requests[i].demand_bytes_per_sec,
                                   requests[i].cap_bytes_per_sec);
      if (grants[i] < want - kEpsilon) {
        // i was rationed: nobody may hold more than i's grant.
        for (size_t j = 0; j < n; ++j) {
          EXPECT_LE(grants[j], grants[i] + kEpsilon)
              << "max-min violated: " << j << " over " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbiterPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace copart
