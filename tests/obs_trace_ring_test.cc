// SPSC trace ring: wraparound across many push/drain cycles, the
// drop-new-on-full policy with exact drop counting, and the publication
// sequence numbers the exporter uses as a total-order tie-break.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_ring.h"

namespace copart {
namespace {

TraceEvent Named(const char* name, uint64_t ts) {
  TraceEvent event;
  event.name = name;
  event.ts_us = ts;
  return event;
}

TEST(TraceRingTest, PushThenDrainRoundTrips) {
  TraceRing ring(8);
  EXPECT_EQ(ring.size(), 0u);
  ASSERT_TRUE(ring.Push(Named("a", 1)));
  ASSERT_TRUE(ring.Push(Named("b", 2)));
  EXPECT_EQ(ring.size(), 2u);

  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_STREQ(out[0].name, "a");
  EXPECT_STREQ(out[1].name, "b");
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, DrainAppendsToExistingOutput) {
  TraceRing ring(4);
  ASSERT_TRUE(ring.Push(Named("x", 1)));
  std::vector<TraceEvent> out = {Named("sentinel", 0)};
  EXPECT_EQ(ring.Drain(out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_STREQ(out[0].name, "sentinel");
  EXPECT_STREQ(out[1].name, "x");
}

TEST(TraceRingTest, FullRingDropsNewEventsAndCountsThem) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.Push(Named("kept", i)));
  }
  // The ring is full: the NEW events are the ones dropped (never the old
  // ones — overwriting would corrupt span ordering silently).
  EXPECT_FALSE(ring.Push(Named("dropped", 100)));
  EXPECT_FALSE(ring.Push(Named("dropped", 101)));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(out), 4u);
  for (const TraceEvent& event : out) {
    EXPECT_STREQ(event.name, "kept");
  }
  // Draining frees capacity again; drop count is cumulative.
  EXPECT_TRUE(ring.Push(Named("after", 200)));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(TraceRingTest, WrapsAroundAcrossManyDrainCycles) {
  TraceRing ring(8);
  uint64_t next_ts = 0;
  std::vector<TraceEvent> out;
  // 100 cycles of 5 pushes through a capacity-8 ring crosses the wrap
  // boundary at every alignment of the free-running cursors.
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.Push(Named("e", next_ts++)));
    }
    EXPECT_EQ(ring.Drain(out), 5u);
  }
  ASSERT_EQ(out.size(), 500u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ts_us, i) << "event " << i << " out of order";
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.published(), 500u);
}

TEST(TraceRingTest, AssignsMonotonicSequenceNumbers) {
  TraceRing ring(4);
  std::vector<TraceEvent> out;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.Push(Named("e", 0)));
    ASSERT_EQ(ring.Drain(out), 1u);
  }
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i);
  }
  // Dropped events must not consume sequence numbers: the seq stream stays
  // dense over the events that actually published.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.Push(Named("e", 0)));
  }
  EXPECT_FALSE(ring.Push(Named("e", 0)));
  out.clear();
  ring.Drain(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.back().seq, 13u);
  EXPECT_EQ(ring.published(), 14u);
}

}  // namespace
}  // namespace copart
