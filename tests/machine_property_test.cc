// Randomized invariant checks on the full machine model: for arbitrary
// partitioning states and workload placements, the epoch solve must respect
// physical constraints (bandwidth conservation, capacity bounds, positive
// rates) and the documented monotonicities.
#include <gtest/gtest.h>

#include "cache/way_mask.h"
#include "common/rng.h"
#include "machine/simulated_machine.h"
#include "workload/workload.h"

namespace copart {
namespace {

class MachinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

WayMask RandomMask(Rng& rng, uint32_t num_ways) {
  const uint32_t count = 1 + static_cast<uint32_t>(rng.NextUint64(num_ways));
  const uint32_t first =
      static_cast<uint32_t>(rng.NextUint64(num_ways - count + 1));
  return WayMask::Contiguous(first, count);
}

TEST_P(MachinePropertyTest, PhysicalInvariantsUnderRandomConfigs) {
  Rng rng(GetParam());
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);

  // Random consolidation: 2-4 apps from the full registry.
  std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  registry.push_back(Stream());
  const size_t num_apps = 2 + rng.NextUint64(3);
  std::vector<AppId> apps;
  for (size_t i = 0; i < num_apps; ++i) {
    const WorkloadDescriptor& descriptor =
        registry[rng.NextUint64(registry.size())];
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    ASSERT_TRUE(app.ok());
    apps.push_back(*app);
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }

  for (int round = 0; round < 60; ++round) {
    // Random (possibly overlapping) masks and MBA levels.
    for (size_t i = 0; i < num_apps; ++i) {
      machine.SetClosWayMask(static_cast<uint32_t>(i + 1),
                             RandomMask(rng, config.llc.num_ways));
      machine.SetClosMbaLevel(
          static_cast<uint32_t>(i + 1),
          MbaLevel::FromPercentChecked(
              10 * (1 + static_cast<uint32_t>(rng.NextUint64(10)))));
    }
    machine.AdvanceTime(0.25);

    double total_grant = 0.0;
    double total_capacity = 0.0;
    for (AppId app : apps) {
      const AppEpochSnapshot& epoch = machine.LastEpoch(app);
      // Rates are finite and non-negative; miss ratio is a probability.
      EXPECT_GT(epoch.ips, 0.0);
      EXPECT_GE(epoch.llc_misses_per_sec, 0.0);
      EXPECT_LE(epoch.llc_misses_per_sec,
                epoch.llc_accesses_per_sec * (1.0 + 1e-9));
      EXPECT_GE(epoch.miss_ratio, 0.0);
      EXPECT_LE(epoch.miss_ratio, 1.0);
      // Achieved traffic never exceeds the grant; grants never exceed caps.
      EXPECT_LE(epoch.llc_misses_per_sec * config.llc.line_bytes,
                epoch.bandwidth_grant_bytes_per_sec + 1.0);
      EXPECT_LE(epoch.bandwidth_grant_bytes_per_sec,
                epoch.bandwidth_demand_bytes_per_sec + 1.0);
      total_grant += epoch.bandwidth_grant_bytes_per_sec;
      total_capacity += epoch.effective_capacity_bytes;
      EXPECT_LE(epoch.effective_capacity_bytes,
                static_cast<double>(config.llc.total_bytes) * (1 + 1e-9));
    }
    // Conservation: bandwidth within the controller limit, capacities
    // within the cache.
    EXPECT_LE(total_grant,
              config.total_memory_bandwidth * (1.0 + 1e-9));
    EXPECT_LE(total_capacity,
              static_cast<double>(config.llc.total_bytes) * (1.0 + 1e-9));
  }
}

TEST_P(MachinePropertyTest, WideningOwnMaskNeverHurts) {
  Rng rng(GetParam() ^ 0xABCDEF);
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  const WorkloadDescriptor subject =
      registry[rng.NextUint64(registry.size())];
  const WorkloadDescriptor neighbor =
      registry[rng.NextUint64(registry.size())];
  Result<AppId> a = machine.LaunchApp(subject, 4);
  Result<AppId> b = machine.LaunchApp(neighbor, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  machine.AssignAppToClos(*a, 1);
  machine.AssignAppToClos(*b, 2);
  // Fixed neighbor partition at the top; the subject's mask grows from the
  // bottom without ever overlapping it.
  machine.SetClosWayMask(2, WayMask::Contiguous(8, 3));
  double previous = 0.0;
  for (uint32_t ways = 1; ways <= 8; ++ways) {
    machine.SetClosWayMask(1, WayMask::Contiguous(0, ways));
    machine.AdvanceTime(0.25);
    const double ips = machine.LastEpoch(*a).ips;
    EXPECT_GE(ips, previous * (1.0 - 1e-6))
        << subject.name << " vs " << neighbor.name << " at " << ways;
    previous = ips;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachinePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace copart
