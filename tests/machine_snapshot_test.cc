// Snapshot/rollback correctness: Restore() must put the machine in a state
// whose *subsequent epochs* are byte-identical to a fresh machine that
// replayed the same schedule and never diverged. This is the contract
// harness/whatif.h and the SLO governor's prediction path rely on — a
// rollback is indistinguishable from never having simulated the divergent
// branch, including the per-epoch noise stream (the RNG is part of the
// snapshot).
//
// Comparisons are bitwise (memcmp on doubles), not EXPECT_DOUBLE_EQ: the
// fast path's claim is exact replay, so any drift — even one ULP — is a bug.
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cache/way_mask.h"
#include "common/rng.h"
#include "machine/machine_config.h"
#include "machine/simulated_machine.h"
#include "membw/mba.h"
#include "workload/workload.h"

namespace copart {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

#define EXPECT_SAME_BITS(a, b) \
  EXPECT_TRUE(SameBits((a), (b))) << #a " != " #b ": " << (a) << " vs " << (b)

void ExpectAppBitIdentical(const SimulatedMachine& lhs,
                           const SimulatedMachine& rhs, AppId app) {
  const AppEpochSnapshot& le = lhs.LastEpoch(app);
  const AppEpochSnapshot& re = rhs.LastEpoch(app);
  EXPECT_SAME_BITS(le.ips, re.ips);
  EXPECT_SAME_BITS(le.ips_capability, re.ips_capability);
  EXPECT_SAME_BITS(le.llc_accesses_per_sec, re.llc_accesses_per_sec);
  EXPECT_SAME_BITS(le.llc_misses_per_sec, re.llc_misses_per_sec);
  EXPECT_SAME_BITS(le.miss_ratio, re.miss_ratio);
  EXPECT_SAME_BITS(le.effective_capacity_bytes, re.effective_capacity_bytes);
  EXPECT_SAME_BITS(le.bandwidth_demand_bytes_per_sec,
                   re.bandwidth_demand_bytes_per_sec);
  EXPECT_SAME_BITS(le.bandwidth_grant_bytes_per_sec,
                   re.bandwidth_grant_bytes_per_sec);
  const AppCounters& lc = lhs.Counters(app);
  const AppCounters& rc = rhs.Counters(app);
  EXPECT_SAME_BITS(lc.instructions, rc.instructions);
  EXPECT_SAME_BITS(lc.llc_accesses, rc.llc_accesses);
  EXPECT_SAME_BITS(lc.llc_misses, rc.llc_misses);
  EXPECT_SAME_BITS(lc.memory_bytes, rc.memory_bytes);
}

// One scheduled mutation + tick. Precomputed as plain data so the same
// schedule can be applied to several machines (and re-applied after a
// rollback) without worrying about shared RNG state.
struct Step {
  bool set_mask = false;
  uint32_t mask_clos = 0;
  uint32_t mask_start = 0;
  uint32_t mask_width = 0;
  bool set_mba = false;
  uint32_t mba_clos = 0;
  uint32_t mba_percent = 100;
  bool flip_required_ips = false;  // toggles app 0's cap between 1e9 and off
  double dt = 0.05;
};

std::vector<Step> MakeSchedule(size_t num_steps, uint64_t seed,
                               uint32_t num_ways, uint32_t num_clos) {
  Rng rng(seed);
  std::vector<Step> steps(num_steps);
  for (Step& step : steps) {
    if (rng.NextBool(0.25)) {
      step.set_mask = true;
      step.mask_clos = static_cast<uint32_t>(rng.NextInt(1, num_clos));
      step.mask_width =
          static_cast<uint32_t>(rng.NextInt(2, static_cast<int64_t>(
                                                   num_ways / 2)));
      step.mask_start = static_cast<uint32_t>(
          rng.NextInt(0, static_cast<int64_t>(num_ways - step.mask_width)));
    }
    if (rng.NextBool(0.4)) {
      step.set_mba = true;
      step.mba_clos = static_cast<uint32_t>(rng.NextInt(1, num_clos));
      step.mba_percent = 10u * static_cast<uint32_t>(rng.NextInt(1, 10));
    }
    step.flip_required_ips = rng.NextBool(0.1);
  }
  return steps;
}

void ApplyStep(SimulatedMachine& machine, const std::vector<AppId>& apps,
               const Step& step, bool* required_ips_on) {
  if (step.set_mask) {
    machine.SetClosWayMask(step.mask_clos,
                           WayMask::Contiguous(step.mask_start,
                                               step.mask_width));
  }
  if (step.set_mba) {
    machine.SetClosMbaLevel(step.mba_clos,
                            MbaLevel::FromPercentChecked(step.mba_percent));
  }
  if (step.flip_required_ips) {
    *required_ips_on = !*required_ips_on;
    machine.SetAppRequiredIps(
        apps[0], *required_ips_on ? std::optional<double>(1e9) : std::nullopt);
  }
  machine.AdvanceTime(step.dt);
}

// Parameterized over (MRC mode, phased workload present). Noise is always on
// so the tests also pin the RNG being part of the snapshot: a machine whose
// RNG was restored must draw the exact same per-epoch noise as the fresh
// replay.
class MachineSnapshotTest
    : public ::testing::TestWithParam<std::tuple<MrcMode, bool>> {
 protected:
  MachineConfig Config() const {
    MachineConfig config;
    config.mrc_mode = std::get<0>(GetParam());
    config.ips_noise_sigma = 0.02;
    return config;
  }

  bool WithPhases() const { return std::get<1>(GetParam()); }

  std::vector<AppId> LaunchApps(SimulatedMachine& machine) const {
    std::vector<WorkloadDescriptor> workloads = {Sp(), Raytrace(),
                                                 AllTable2Benchmarks()[0]};
    if (WithPhases()) {
      workloads.push_back(PhasedScanCompute(/*period_sec=*/2.0));
    }
    std::vector<AppId> apps;
    for (size_t i = 0; i < workloads.size(); ++i) {
      Result<AppId> app = machine.LaunchApp(workloads[i], 2);
      EXPECT_TRUE(app.ok());
      apps.push_back(*app);
      machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
    }
    return apps;
  }
};

TEST_P(MachineSnapshotTest, RestoreMatchesFreshReplay) {
  const MachineConfig config = Config();
  const uint32_t num_ways = config.llc.num_ways;

  // Prefix runs on both machines; the divergent branch only on the restored
  // one; the tail is then replayed on both and must match epoch by epoch.
  const std::vector<Step> prefix = MakeSchedule(20, 0x5EED01, num_ways, 4);
  const std::vector<Step> divergence = MakeSchedule(15, 0x5EED02, num_ways, 4);
  const std::vector<Step> tail = MakeSchedule(30, 0x5EED03, num_ways, 4);

  SimulatedMachine restored(config);
  const std::vector<AppId> apps = LaunchApps(restored);
  bool restored_cap = false;
  for (const Step& step : prefix) {
    ApplyStep(restored, apps, step, &restored_cap);
  }
  const MachineSnapshot snapshot = restored.Snapshot();
  const bool cap_at_snapshot = restored_cap;

  // Diverge: different partitioning walk, different number of epochs, then
  // roll back.
  for (const Step& step : divergence) {
    ApplyStep(restored, apps, step, &restored_cap);
  }
  restored.Restore(snapshot);
  restored_cap = cap_at_snapshot;

  // Fresh machine replays the prefix only — it has never seen the divergent
  // branch.
  SimulatedMachine fresh(config);
  const std::vector<AppId> fresh_apps = LaunchApps(fresh);
  ASSERT_EQ(fresh_apps.size(), apps.size());
  bool fresh_cap = false;
  for (const Step& step : prefix) {
    ApplyStep(fresh, fresh_apps, step, &fresh_cap);
  }

  ASSERT_TRUE(SameBits(restored.now(), fresh.now()));
  for (size_t i = 0; i < apps.size(); ++i) {
    ExpectAppBitIdentical(restored, fresh, apps[i]);
  }

  for (size_t s = 0; s < tail.size(); ++s) {
    ApplyStep(restored, apps, tail[s], &restored_cap);
    ApplyStep(fresh, fresh_apps, tail[s], &fresh_cap);
    ASSERT_TRUE(SameBits(restored.now(), fresh.now())) << "step " << s;
    for (size_t i = 0; i < apps.size(); ++i) {
      SCOPED_TRACE("step " + std::to_string(s) + " app " + std::to_string(i));
      ExpectAppBitIdentical(restored, fresh, apps[i]);
    }
  }
}

TEST_P(MachineSnapshotTest, RepeatedRestoreIsIdempotent) {
  // The what-if evaluator restores the same baseline once per candidate:
  // restoring N times and advancing must give the same epoch every time.
  const MachineConfig config = Config();
  SimulatedMachine machine(config);
  const std::vector<AppId> apps = LaunchApps(machine);
  for (int i = 0; i < 8; ++i) {
    machine.AdvanceTime(0.05);
  }
  const MachineSnapshot snapshot = machine.Snapshot();

  machine.AdvanceTime(0.05);
  std::vector<AppEpochSnapshot> reference;
  for (AppId app : apps) {
    reference.push_back(machine.LastEpoch(app));
  }

  for (int round = 0; round < 5; ++round) {
    machine.Restore(snapshot);
    // Vary the divergence before the measured epoch so the restore has real
    // work to undo.
    if (round % 2 == 1) {
      machine.SetClosMbaLevel(1, MbaLevel::FromPercentChecked(20));
      machine.AdvanceTime(0.5);
      machine.Restore(snapshot);
    }
    machine.AdvanceTime(0.05);
    for (size_t i = 0; i < apps.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " app " +
                   std::to_string(i));
      const AppEpochSnapshot& epoch = machine.LastEpoch(apps[i]);
      EXPECT_SAME_BITS(epoch.ips, reference[i].ips);
      EXPECT_SAME_BITS(epoch.miss_ratio, reference[i].miss_ratio);
      EXPECT_SAME_BITS(epoch.bandwidth_grant_bytes_per_sec,
                       reference[i].bandwidth_grant_bytes_per_sec);
    }
  }
}

TEST_P(MachineSnapshotTest, RestoreRevertsPartitioningState) {
  const MachineConfig config = Config();
  SimulatedMachine machine(config);
  const std::vector<AppId> apps = LaunchApps(machine);
  machine.SetClosWayMask(1, WayMask::Contiguous(0, 4));
  machine.SetClosMbaLevel(2, MbaLevel::FromPercentChecked(40));
  machine.AdvanceTime(0.05);
  const MachineSnapshot snapshot = machine.Snapshot();
  const uint64_t mask_bits = machine.ClosWayMask(1).bits();
  const uint32_t mba_percent = machine.ClosMbaLevel(2).percent();

  machine.SetClosWayMask(1, WayMask::Contiguous(4, 6));
  machine.SetClosMbaLevel(2, MbaLevel::FromPercentChecked(90));
  machine.AssignAppToClos(apps[0], 3);
  machine.AdvanceTime(0.05);

  machine.Restore(snapshot);
  EXPECT_EQ(machine.ClosWayMask(1).bits(), mask_bits);
  EXPECT_EQ(machine.ClosMbaLevel(2).percent(), mba_percent);
  EXPECT_EQ(machine.AppClos(apps[0]), 1u);
  EXPECT_TRUE(SameBits(machine.now(), snapshot.now));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MachineSnapshotTest,
    ::testing::Combine(::testing::Values(MrcMode::kExact, MrcMode::kCompiled),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<MrcMode, bool>>& info) {
      const std::string mode =
          std::get<0>(info.param) == MrcMode::kExact ? "exact" : "compiled";
      return mode + (std::get<1>(info.param) ? "_phased" : "_steady");
    });

}  // namespace
}  // namespace copart
