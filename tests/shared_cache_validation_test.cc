// End-to-end validation of the shared-capacity fixed point against the
// trace-driven cache, including overlapping CAT masks — the configuration
// the no-partitioning baseline and profiling probes rely on.
#include "machine/shared_cache_validator.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace copart {
namespace {

SharedCacheValidationConfig FastConfig() {
  SharedCacheValidationConfig config;
  config.warmup_accesses = 200000;
  config.measured_accesses = 400000;
  return config;
}

TEST(SharedCacheValidationTest, DisjointPartitionsMatchSoloCurves) {
  // Two apps in disjoint partitions: sharing plays no role, so both models
  // must agree closely.
  const SharedCacheValidationResult result = ValidateSharedCache(
      {WaterNsquared(), Cg()},
      {WayMask::Contiguous(0, 6), WayMask::Contiguous(6, 5)}, FastConfig());
  EXPECT_LT(result.max_miss_ratio_error, 0.06);
}

TEST(SharedCacheValidationTest, IdenticalAppsSplitSharedCacheEvenly) {
  // Two identical cache-hungry apps sharing the full mask: the fixed point
  // predicts a ~50/50 split; the trace-driven cache must agree.
  const SharedCacheValidationResult result = ValidateSharedCache(
      {Sp(), Sp()},
      {WayMask::Contiguous(0, 11), WayMask::Contiguous(0, 11)}, FastConfig());
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_NEAR(result.apps[0].measured_occupancy_fraction,
              result.apps[1].measured_occupancy_fraction, 0.08);
  EXPECT_LT(result.max_miss_ratio_error, 0.08);
  EXPECT_LT(result.max_occupancy_error, 0.12);
}

TEST(SharedCacheValidationTest, StreamerVsResidentSharing) {
  // A streaming app sharing the full cache with a small-working-set app:
  // the analytic fixed point must track how much capacity the stream
  // actually steals under LRU.
  const SharedCacheValidationResult result = ValidateSharedCache(
      {OceanCp(), Kmeans()},
      {WayMask::Contiguous(0, 11), WayMask::Contiguous(0, 11)}, FastConfig());
  EXPECT_LT(result.max_miss_ratio_error, 0.10);
  // The resident app keeps a meaningful share in both models.
  EXPECT_GT(result.apps[1].measured_occupancy_fraction, 0.1);
  EXPECT_GT(result.apps[1].analytic_capacity_fraction, 0.1);
}

TEST(SharedCacheValidationTest, PartialOverlapThreeApps) {
  // Mask layout: [0-5], [4-8], [8-10] — pairwise partial overlaps.
  const SharedCacheValidationResult result = ValidateSharedCache(
      {WaterNsquared(), OceanNcp(), Raytrace()},
      {WayMask::Contiguous(0, 6), WayMask::Contiguous(4, 5),
       WayMask::Contiguous(8, 3)},
      FastConfig());
  EXPECT_LT(result.max_miss_ratio_error, 0.12);
  EXPECT_LT(result.max_occupancy_error, 0.15);
}

TEST(SharedCacheValidationTest, ResultShapesAreSane) {
  const SharedCacheValidationResult result = ValidateSharedCache(
      {Swaptions(), Ft()},
      {WayMask::Contiguous(0, 11), WayMask::Contiguous(0, 11)}, FastConfig());
  ASSERT_EQ(result.apps.size(), 2u);
  for (const AppValidationResult& app : result.apps) {
    EXPECT_GE(app.measured_miss_ratio, 0.0);
    EXPECT_LE(app.measured_miss_ratio, 1.0);
    EXPECT_GE(app.measured_occupancy_fraction, 0.0);
    EXPECT_LE(app.measured_occupancy_fraction, 1.0);
  }
}

}  // namespace
}  // namespace copart
