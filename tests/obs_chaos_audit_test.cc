// The audit log under injected faults: degraded-mode entry/exit records
// must appear exactly when the hardened controller's own counters say the
// transitions happened (the scenarios of core_degraded_mode_test.cc), and
// the same holds for rollback and quarantine annotations. Runs under the
// chaos label alongside the property suite.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/resource_manager.h"
#include "obs/obs.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

FaultSpec ProbAlways() {
  FaultSpec spec;
  spec.probability = 1.0;
  return spec;
}

// Same machine/seed setup as core_degraded_mode_test.cc, plus an attached
// observability bundle.
class ChaosAuditTest : public ::testing::Test {
 protected:
  ChaosAuditTest()
      : injector_(0xFA017), machine_(MakeConfig(&injector_)),
        resctrl_(&machine_), monitor_(&machine_),
        manager_(&resctrl_, &monitor_, {}) {
    manager_.SetObservability(&obs_);
  }

  static MachineConfig MakeConfig(FaultInjector* injector) {
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    config.fault_injector = injector;
    return config;
  }

  AppId Launch(const WorkloadDescriptor& descriptor) {
    Result<AppId> app = machine_.LaunchApp(descriptor, 4);
    CHECK(app.ok());
    CHECK(manager_.AddApp(*app).ok());
    return *app;
  }

  void Run(int periods) {
    for (int i = 0; i < periods; ++i) {
      machine_.AdvanceTime(0.5);
      manager_.Tick();
    }
  }

  size_t CountPhaseDetail(const char* detail) const {
    size_t count = 0;
    for (const AuditRecord& record :
         obs_.audit.Filter(AuditKind::kPhaseTransition)) {
      if (std::strcmp(record.detail, detail) == 0) {
        ++count;
      }
    }
    return count;
  }

  size_t CountQuarantineTrigger(const char* trigger) const {
    size_t count = 0;
    for (const AuditRecord& record :
         obs_.audit.Filter(AuditKind::kQuarantineChange)) {
      if (std::strcmp(record.trigger, trigger) == 0) {
        ++count;
      }
    }
    return count;
  }

  Observability obs_;
  FaultInjector injector_;  // Must outlive the machine.
  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
  ResourceManager manager_;
};

TEST_F(ChaosAuditTest, DegradedEntryAndRecoveryAreAuditedExactlyOnce) {
  Launch(WaterNsquared());
  Launch(Cg());
  // Storm: every L3 write fails until the manager gives up on adaptation.
  injector_.Arm(fault_points::kResctrlSetL3, ProbAlways());
  Run(100);
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kDegraded);
  ASSERT_EQ(manager_.degraded_entries(), 1u);
  EXPECT_EQ(CountPhaseDetail("degraded_enter"), manager_.degraded_entries());
  EXPECT_EQ(CountPhaseDetail("degraded_recovery"), 0u);

  // Faults clear: exactly one audited recovery, matching the counter.
  injector_.DisarmAll();
  Run(200);
  ASSERT_EQ(manager_.phase(), ResourceManager::Phase::kIdle);
  ASSERT_EQ(manager_.degraded_recoveries(), 1u);
  EXPECT_EQ(CountPhaseDetail("degraded_enter"), manager_.degraded_entries());
  EXPECT_EQ(CountPhaseDetail("degraded_recovery"),
            manager_.degraded_recoveries());
}

TEST_F(ChaosAuditTest, ActuationFailureRecordsCarryRollbackAnnotations) {
  Launch(WaterNsquared());
  Launch(Cg());
  injector_.Arm(fault_points::kResctrlSetL3, ProbAlways());
  Run(100);
  const std::vector<AuditRecord> failures =
      obs_.audit.Filter(AuditKind::kActuationFailure);
  ASSERT_EQ(failures.size(), manager_.actuation_failures());
  ASSERT_GE(failures.size(), 5u);
  int32_t max_streak = 0;
  for (const AuditRecord& record : failures) {
    EXPECT_TRUE(record.rollback);
    max_streak = std::max(max_streak, record.failure_streak);
  }
  // The streak annotation climbs toward the degraded threshold: the record
  // that tripped degraded entry carries streak max_consecutive_failures-1
  // (the streak *before* that failure; degraded-phase retries restart at 0).
  EXPECT_EQ(max_streak, 4);

  // Faults clear: the recovery fair-share applies succeed while the phase
  // is still degraded, and those allocations are flagged as such.
  injector_.DisarmAll();
  Run(200);
  bool saw_degraded_allocation = false;
  for (const AuditRecord& record :
       obs_.audit.Filter(AuditKind::kAllocation)) {
    if (record.degraded) {
      saw_degraded_allocation = true;
      EXPECT_STREQ(record.trigger, "degraded_fair_share");
    }
  }
  EXPECT_TRUE(saw_degraded_allocation);
}

TEST_F(ChaosAuditTest, QuarantineEngageAndReleaseAreAudited) {
  const AppId a = Launch(WaterNsquared());
  const AppId b = Launch(Cg());
  Run(10);
  ASSERT_NE(manager_.phase(), ResourceManager::Phase::kProfiling);
  injector_.Arm(fault_points::kPmcDropped, ProbAlways());
  Run(10);
  ASSERT_TRUE(manager_.Quarantined(a));
  ASSERT_TRUE(manager_.Quarantined(b));
  EXPECT_EQ(CountQuarantineTrigger("quarantine_engage"),
            manager_.quarantines());
  EXPECT_EQ(CountQuarantineTrigger("quarantine_release"), 0u);

  injector_.DisarmAll();
  Run(100);
  ASSERT_FALSE(manager_.Quarantined(a));
  ASSERT_FALSE(manager_.Quarantined(b));
  EXPECT_EQ(CountQuarantineTrigger("quarantine_release"), 2u);
}

TEST_F(ChaosAuditTest, FaultFreeRunsAuditNoHardeningEvents) {
  Launch(WaterNsquared());
  Launch(Cg());
  Run(120);
  EXPECT_EQ(obs_.audit.Filter(AuditKind::kActuationFailure).size(), 0u);
  EXPECT_EQ(CountPhaseDetail("degraded_enter"), 0u);
  EXPECT_EQ(obs_.audit.Filter(AuditKind::kQuarantineChange).size(), 0u);
  // But the normal decision flow is fully audited: adaptation start,
  // exploration entry, and the idle settle each left a phase record.
  EXPECT_GE(CountPhaseDetail("enter_profiling"), 1u);
  EXPECT_GE(CountPhaseDetail("enter_exploration"), 1u);
  EXPECT_GE(CountPhaseDetail("enter_idle"), 1u);
  EXPECT_GT(obs_.audit.Filter(AuditKind::kAllocation).size(), 0u);
}

}  // namespace
}  // namespace copart
