// Chrome-trace and audit-log export edge cases: unwritable output paths
// must surface as UnavailableError (never a crash or silent success), an
// empty trace must still be a well-formed document, and ring overflow must
// leave an explicit trace_overflow marker rather than silent truncation.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "obs/audit_log.h"
#include "obs/tracer.h"

namespace copart {
namespace {

// Minimal structural JSON check: brace/bracket balance outside strings and
// legal string escapes. Enough to catch every malformed-emitter bug this
// suite guards against without a JSON dependency.
bool StructurallyValidJson(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) {
          return false;
        }
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(TraceExportTest, UnwritablePathReturnsUnavailable) {
  Tracer tracer;
  TraceTick tick(&tracer, 0);
  tick.Instant("lonely");
  const Status status =
      tracer.ExportChromeTrace("/nonexistent-dir/subdir/trace.json");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST(TraceExportTest, ZeroEventsStillProducesValidDocument) {
  Tracer tracer;
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_TRUE(StructurallyValidJson(json)) << json;
  // The document keeps its envelope and process metadata even when empty.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(json.find("trace_overflow"), std::string::npos);
}

TEST(TraceExportTest, RingOverflowEmitsExplicitMarker) {
  TracerOptions options;
  options.ring_capacity = 4;
  Tracer tracer(options);
  // Eight instants with no intervening drain: four publish, four drop.
  TraceTick tick(&tracer, 10);
  for (int i = 0; i < 8; ++i) {
    tick.Instant("burst");
  }
  EXPECT_EQ(tracer.dropped_events(), 4u);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_TRUE(StructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"trace_overflow\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 4"), std::string::npos);
  EXPECT_EQ(tracer.event_count(), 4u);
}

TEST(TraceExportTest, DisabledTracerPublishesNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  TraceTick tick(&tracer, 0);
  // The tick binds to a disabled tracer as inactive: spans, instants, and
  // counters all no-op, and none of them count as drops.
  EXPECT_FALSE(tick.active());
  { auto span = tick.MakeSpan("ignored"); }
  tick.Instant("ignored");
  tick.CounterSample("ignored", 7);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TraceExportTest, SpansAdvanceTheVirtualCursorSequentially) {
  Tracer tracer;
  TraceTick tick(&tracer, 1000);
  {
    auto span = tick.MakeSpan("first");
    span.set_cost(3);
  }
  {
    auto span = tick.MakeSpan("second");  // Default cost: 1 unit.
  }
  tick.Instant("after");
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_TRUE(StructurallyValidJson(json)) << json;
  // first: [1000, 1003), second: [1003, 1004), instant at 1004.
  EXPECT_NE(json.find("\"name\": \"first\", \"cat\": \"copart\", "
                      "\"ph\": \"X\", \"ts\": 1000, \"dur\": 3"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"second\", \"cat\": \"copart\", "
                      "\"ph\": \"X\", \"ts\": 1003, \"dur\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"after\", \"cat\": \"copart\", "
                      "\"ph\": \"i\", \"ts\": 1004"),
            std::string::npos)
      << json;
}

TEST(AuditExportTest, UnwritablePathReturnsError) {
  AuditLog audit;
  AuditRecord record;
  record.trigger = "test";
  audit.Append(record);
  const Status status =
      audit.ExportJson("/nonexistent-dir/subdir/audit.json");
  EXPECT_FALSE(status.ok());
}

TEST(AuditExportTest, OverflowAppendsMarkerLine) {
  AuditLog audit(/*capacity=*/2);
  AuditRecord record;
  for (int i = 0; i < 5; ++i) {
    record.epoch = static_cast<uint64_t>(i);
    audit.Append(record);
  }
  EXPECT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit.dropped(), 3u);
  const std::string json = audit.ToJson();
  EXPECT_TRUE(StructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"audit_overflow\": 3"), std::string::npos) << json;
}

TEST(AuditExportTest, DisabledAppendsAreNotCountedAsDrops) {
  AuditLog audit;
  audit.set_enabled(false);
  audit.Append(AuditRecord{});
  EXPECT_EQ(audit.size(), 0u);
  EXPECT_EQ(audit.dropped(), 0u);
  audit.set_enabled(true);
  audit.Append(AuditRecord{});
  EXPECT_EQ(audit.size(), 1u);
}

}  // namespace
}  // namespace copart
