#include "common/logging.h"

#include <gtest/gtest.h>

namespace copart {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMinLogSeverity(LogSeverity::kInfo); }
};

TEST_F(LoggingTest, SeverityFilterRoundTrips) {
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(LogSeverity::kDebug);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kDebug);
}

TEST_F(LoggingTest, LogStatementsCompileAndStream) {
  // Emission goes to stderr; this exercises the statement forms.
  SetMinLogSeverity(LogSeverity::kFatal);  // Silence everything non-fatal.
  LOG_DEBUG << "debug " << 1;
  LOG_INFO << "info " << 2.5;
  LOG_WARNING << "warning " << "text";
  LOG_ERROR << "error " << 'c';
}

TEST_F(LoggingTest, ChecksPassOnTrueConditions) {
  CHECK(true) << "unused";
  CHECK_EQ(1, 1);
  CHECK_NE(1, 2);
  CHECK_LT(1, 2);
  CHECK_LE(2, 2);
  CHECK_GT(3, 2);
  CHECK_GE(3, 3);
}

TEST_F(LoggingTest, CheckEvaluatesConditionOnce) {
  int calls = 0;
  auto bump = [&]() {
    ++calls;
    return true;
  };
  CHECK(bump());
  EXPECT_EQ(calls, 1);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CHECK(false) << "boom", "Check failed: false boom");
}

TEST(LoggingDeathTest, CheckOpReportsOperands) {
  const int lhs = 3, rhs = 4;
  EXPECT_DEATH(CHECK_EQ(lhs, rhs), "lhs=3, rhs=4");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(LOG_FATAL << "fatal message", "fatal message");
}

}  // namespace
}  // namespace copart
