#include "common/rng.h"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

namespace copart {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() != b.NextUint64()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 30);
}

TEST(RngTest, BoundedDrawsStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedDrawsCoverRange) {
  Rng rng(7);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextUint64(8)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 700);  // ~1000 expected per bucket.
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t value = rng.NextInt(-3, 3);
    ASSERT_GE(value, -3);
    ASSERT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolRespectsEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(19);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    trues += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double value = rng.NextExponential(4.0);
    ASSERT_GE(value, 0.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.2);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0.0, sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double value = rng.NextGaussian();
    sum += value;
    sq += value * value;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must be deterministic given the parent's seed and draw point.
  Rng parent2(31);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.NextUint64(), child2.NextUint64());
  }
}

TEST(RngForkStreamTest, ReproducibleAcrossParentsWithSameSeed) {
  const Rng a(123), b(123);
  for (uint64_t stream : {0ull, 1ull, 7ull, 1000000ull}) {
    Rng child_a = a.Fork(stream);
    Rng child_b = b.Fork(stream);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64())
          << "stream " << stream;
    }
  }
}

TEST(RngForkStreamTest, DoesNotAdvanceTheParent) {
  Rng forked(123);
  Rng untouched(123);
  (void)forked.Fork(0);
  (void)forked.Fork(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(forked.NextUint64(), untouched.NextUint64());
  }
}

TEST(RngForkStreamTest, StreamsAreMutuallyIndependent) {
  const Rng parent(55);
  // Adjacent and distant streams must all produce different sequences.
  const uint64_t streams[] = {0, 1, 2, 3, 100, 101, 1u << 20};
  for (size_t i = 0; i < std::size(streams); ++i) {
    for (size_t j = i + 1; j < std::size(streams); ++j) {
      Rng a = parent.Fork(streams[i]);
      Rng b = parent.Fork(streams[j]);
      int differences = 0;
      for (int k = 0; k < 32; ++k) {
        differences += a.NextUint64() != b.NextUint64() ? 1 : 0;
      }
      EXPECT_GT(differences, 30)
          << "streams " << streams[i] << " and " << streams[j];
    }
  }
}

TEST(RngForkStreamTest, DiffersFromParentContinuation) {
  const Rng parent(77);
  Rng child = parent.Fork(0);
  Rng continuation(77);
  int differences = 0;
  for (int k = 0; k < 32; ++k) {
    differences += child.NextUint64() != continuation.NextUint64() ? 1 : 0;
  }
  EXPECT_GT(differences, 30);
}

TEST(RngForkStreamTest, AdvancedParentForksDifferently) {
  // Fork(stream) keys off the parent's current state, so the same stream
  // index forked before and after a draw yields different children.
  Rng parent(91);
  Rng early = parent.Fork(5);
  (void)parent.NextUint64();
  Rng late = parent.Fork(5);
  int differences = 0;
  for (int k = 0; k < 32; ++k) {
    differences += early.NextUint64() != late.NextUint64() ? 1 : 0;
  }
  EXPECT_GT(differences, 30);
}

TEST(RngForkStreamTest, KnownAnswers) {
  // Pins the Fork(stream) derivation. If this test fails, the splitter
  // algorithm changed and every golden sweep result shifts — do NOT update
  // these constants casually; see the contract in rng.h.
  const Rng parent(0x5EEDu);
  EXPECT_EQ(parent.Fork(0).NextUint64(), 0x7DC9B226A0070A0Aull);
  EXPECT_EQ(parent.Fork(1).NextUint64(), 0x027B8707BCCF77D2ull);
  EXPECT_EQ(parent.Fork(2).NextUint64(), 0x2AB8C0488E35743Cull);
  const Rng zero_parent(0);
  EXPECT_EQ(zero_parent.Fork(0).NextUint64(), 0xB0744BEEAD3A5230ull);
  EXPECT_EQ(zero_parent.Fork(0xFFFFFFFFFFFFFFFFull).NextUint64(),
            0x742BA29715AE4CFCull);
}

TEST(RngDeathTest, ZeroBoundAborts) {
  Rng rng(37);
  EXPECT_DEATH(rng.NextUint64(0), "bound");
}

}  // namespace
}  // namespace copart
