// Container-based consolidation, mirroring the paper's deployment model:
// each application runs in its own container (dedicated cores + resctrl
// group), CoPart manages the containers, and a late-arriving container
// triggers re-adaptation (§5.4.3).
//
// Build & run:  ./build/examples/container_consolidation
#include <cstdio>

#include "container/container_runtime.h"
#include "core/resource_manager.h"
#include "machine/simulated_machine.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace {

void PrintContainers(copart::ContainerRuntime& runtime) {
  std::printf("  %-8s %-16s %5s %12s %14s  %s\n", "NAME", "WORKLOAD", "CPUS",
              "IPS", "MEM BW (GB/s)", "SCHEMATA");
  for (const copart::ContainerInfo& info : runtime.List()) {
    const copart::ContainerStats stats = runtime.Stats(info.name);
    std::printf("  %-8s %-16s %5u %12.3g %14.2f  %s\n", info.name.c_str(),
                info.workload_name.c_str(), info.cpus, stats.ips,
                stats.memory_bandwidth_bytes_per_sec / 1e9,
                stats.schemata.c_str());
  }
}

}  // namespace

int main() {
  using namespace copart;
  SimulatedMachine machine(MachineConfig{});
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  ContainerRuntime runtime(&machine, &resctrl);

  // "docker run" three containers.
  Result<ContainerInfo> water = runtime.Run("water", WaterNsquared(), 4);
  Result<ContainerInfo> cg = runtime.Run("cg", Cg(), 4);
  Result<ContainerInfo> swap = runtime.Run("swap", Swaptions(), 4);
  CHECK(water.ok());
  CHECK(cg.ok());
  CHECK(swap.ok());

  ResourceManagerParams params;
  ResourceManager manager(&resctrl, &monitor, params);
  CHECK(manager.AddApp(water->app).ok());
  CHECK(manager.AddApp(cg->app).ok());
  CHECK(manager.AddApp(swap->app).ok());

  auto run = [&](double seconds) {
    const int periods =
        static_cast<int>(seconds / params.control_period_sec);
    for (int i = 0; i < periods; ++i) {
      machine.AdvanceTime(params.control_period_sec);
      manager.Tick();
    }
  };

  run(30.0);
  std::printf("after 30s (CoPart %s):\n",
              ResourceManager::PhaseName(manager.phase()));
  PrintContainers(runtime);

  // A fourth container arrives; CoPart detects it and re-adapts.
  std::printf("\nlaunching container 'sp' (SP, LLC- & BW-sensitive)...\n");
  Result<ContainerInfo> sp = runtime.Run("sp", Sp(), 4);
  CHECK(sp.ok());
  CHECK(manager.AddApp(sp->app).ok());
  run(30.0);
  std::printf("after 30 more seconds (CoPart %s):\n",
              ResourceManager::PhaseName(manager.phase()));
  PrintContainers(runtime);

  // One container finishes; its cores and ways return to the pool.
  std::printf("\nstopping container 'cg'...\n");
  CHECK(manager.RemoveApp(cg->app).ok());
  CHECK(runtime.Stop("cg").ok());
  run(30.0);
  std::printf("after 30 more seconds (CoPart %s):\n",
              ResourceManager::PhaseName(manager.phase()));
  PrintContainers(runtime);
  return 0;
}
