// Colocation advisor: use the what-if API to answer a scheduler's question
// before placing work — "which batch job can I colocate with this cache-
// sensitive service, and what partitioning should CoPart be expected to
// reach?".
//
// For every candidate partner the advisor predicts (a) the naive equal-
// share outcome and (b) the offline-optimal static outcome, then ranks
// candidates by how little they hurt the service.
//
// Build & run:  ./build/examples/whatif_advisor
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/static_oracle.h"
#include "harness/table_printer.h"
#include "harness/whatif.h"
#include "machine/simulated_machine.h"
#include "workload/workload.h"

int main() {
  using namespace copart;
  const WorkloadDescriptor service = WaterNsquared();  // The protected app.
  const std::vector<WorkloadDescriptor> candidates = {
      Cg(), OceanCp(), Ft(), Sp(), OceanNcp(), Fmm(), Swaptions(), Ep()};
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};

  std::printf("colocation candidates for %s (4 cores each):\n\n",
              service.name.c_str());

  struct Row {
    std::string name;
    double service_slowdown_eq;
    double service_slowdown_best;
    double pair_unfairness_best;
  };
  std::vector<Row> rows;
  for (const WorkloadDescriptor& candidate : candidates) {
    const std::vector<WorkloadDescriptor> pair = {service, candidate};
    const WhatIfOutcome equal = PredictEqualShareOutcome(pair, pool);

    // Offline-best static state for the pair (what a converged CoPart
    // should approximate).
    MachineConfig config;
    config.ips_noise_sigma = 0.0;
    SimulatedMachine machine(config);
    std::vector<AppId> apps;
    for (const WorkloadDescriptor& descriptor : pair) {
      apps.push_back(*machine.LaunchApp(descriptor, 4));
    }
    const StaticOracleResult oracle =
        FindStaticOracleState(machine, apps, pool);
    const WhatIfOutcome best = PredictOutcome(pair, oracle.best_state);

    rows.push_back({candidate.name, equal.slowdowns[0], best.slowdowns[0],
                    best.unfairness});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.service_slowdown_best < b.service_slowdown_best;
  });

  std::vector<std::vector<std::string>> table;
  for (const Row& row : rows) {
    table.push_back({row.name, FormatFixed(row.service_slowdown_eq, 3),
                     FormatFixed(row.service_slowdown_best, 3),
                     FormatFixed(row.pair_unfairness_best, 4)});
  }
  PrintTable({"candidate", "svc slowdown (equal split)",
              "svc slowdown (best static)", "pair unfairness (best)"},
             table);
  std::printf(
      "\nbest partner: %s — the service keeps %.1f%% of its solo "
      "performance under the predicted partitioning\n",
      rows.front().name.c_str(), 100.0 / rows.front().service_slowdown_best);
  return 0;
}
