// Defining and characterizing a custom workload.
//
// Shows how a user extends the library with their own application model: a
// reuse profile (hot working set + streaming fraction), an access
// intensity, and a memory-stall model — then characterizes it with the same
// (ways x MBA) sweep the paper uses in §4.1 and consolidates it with CoPart
// against a noisy neighbour.
//
// Build & run:  ./build/examples/custom_workload
#include <cstdio>

#include "common/units.h"
#include "core/resource_manager.h"
#include "harness/heatmap.h"
#include "harness/table_printer.h"
#include "machine/simulated_machine.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

int main() {
  using namespace copart;

  // An "analytics service": 6 MiB hot index (85% of LLC accesses), 10%
  // streaming scan, moderate access intensity, some MLP.
  WorkloadDescriptor analytics;
  analytics.name = "analytics_service";
  analytics.short_name = "AS";
  analytics.reuse_profile = ReuseProfile({{0.85, MiB(6)}},
                                         /*streaming_weight=*/0.10);
  analytics.accesses_per_instr = 0.012;
  analytics.cpi_exec = 0.9;
  analytics.mem_latency_cycles = 200.0;
  analytics.mlp = 2.0;
  analytics.mba_kappa = 0.05;

  // Characterize it exactly like the paper characterizes Table 2 apps.
  const SoloHeatmap map = SweepSoloPerformance(analytics, MachineConfig{});
  const double full = map.normalized_ips[10][9];
  const double llc_degradation = 1.0 - map.normalized_ips[0][9] / full;
  const double bw_degradation = 1.0 - map.normalized_ips[10][0] / full;
  std::printf("characterization of %s:\n", analytics.name.c_str());
  std::printf("  degradation 11->1 ways @ MBA 100: %.1f%%\n",
              100.0 * llc_degradation);
  std::printf("  degradation MBA 100->10 @ 11 ways: %.1f%%\n",
              100.0 * bw_degradation);
  std::printf("  ways for 90%% of peak: %u, MBA level for 90%%: %u%%\n",
              map.MinWaysForFraction(0.9), map.MinMbaForFraction(0.9));
  const char* category =
      llc_degradation >= 0.15 && bw_degradation >= 0.15
          ? "LLC- & memory BW-sensitive"
          : (llc_degradation >= 0.15
                 ? "LLC-sensitive"
                 : (bw_degradation >= 0.15 ? "memory BW-sensitive"
                                           : "insensitive"));
  std::printf("  paper-criteria category: %s\n\n", category);

  // Consolidate it with a bandwidth hog and let CoPart sort it out.
  SimulatedMachine machine(MachineConfig{});
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  Result<AppId> service = machine.LaunchApp(analytics, 8);
  Result<AppId> hog = machine.LaunchApp(Stream(), 8);
  CHECK(service.ok());
  CHECK(hog.ok());

  ResourceManagerParams params;
  ResourceManager manager(&resctrl, &monitor, params);
  CHECK(manager.AddApp(*service).ok());
  CHECK(manager.AddApp(*hog).ok());
  for (int period = 0; period < 100; ++period) {
    machine.AdvanceTime(params.control_period_sec);
    manager.Tick();
  }
  std::printf("consolidated with STREAM under CoPart -> state %s\n",
              manager.current_state().ToString().c_str());
  std::printf("  %s IPS: %.3g (solo-full %.3g)\n", analytics.name.c_str(),
              machine.LastEpoch(*service).ips,
              machine.SoloFullResourceIps(analytics, 8));
  return 0;
}
