// Datacenter consolidation scenario (the paper's §6.3 case study): a
// latency-critical memcached surrogate with a 1 ms p95 SLO shares the
// server with two batch analytics jobs. A Heracles-style outer manager
// sizes the LC slice as the offered load steps up and down; CoPart keeps
// the batch slice fair through every re-size.
//
// Usage:  ./build/examples/datacenter_consolidation [--eq]
//   --eq replaces CoPart with the equal-split baseline for comparison.
#include <cstdio>
#include <cstring>

#include "harness/case_study.h"

int main(int argc, char** argv) {
  using namespace copart;
  CaseStudyConfig config;
  config.use_copart = !(argc > 1 && std::strcmp(argv[1], "--eq") == 0);

  std::printf(
      "workloads: memcached (8 cores, LC, SLO p95 <= %.1f ms), "
      "word_count (4 cores), kmeans (4 cores)\n"
      "load trace: 75k rps -> 150k rps @ t=99.4s -> 75k rps @ t=299.4s\n"
      "batch manager: %s\n\n",
      config.slo_p95_ms, config.use_copart ? "CoPart" : "EQ");

  const CaseStudyResult result = RunCaseStudy(config);

  std::printf("t(s)   load    p95(ms)  LC-ways  batch-MBA  batch-unfairness\n");
  double last_load = -1.0;
  uint32_t last_ways = 0;
  for (const CaseStudySample& sample : result.samples) {
    // Print on every slice change plus a 20 s heartbeat.
    const bool changed =
        sample.load_rps != last_load || sample.lc_ways != last_ways;
    const bool heartbeat =
        static_cast<long long>(sample.time * 10) % 200 == 0;
    if (changed || heartbeat) {
      std::printf("%6.1f  %5.0fk  %7.3f  %7u  %9u  %8.4f  %s\n", sample.time,
                  sample.load_rps / 1000.0, sample.p95_ms, sample.lc_ways,
                  sample.batch_max_mba, sample.batch_unfairness,
                  sample.copart_phase.c_str());
    }
    last_load = sample.load_rps;
    last_ways = sample.lc_ways;
  }

  std::printf("\nmean batch unfairness: %.4f\n", result.mean_batch_unfairness);
  std::printf("SLO violations: %.1f%% of samples\n",
              100.0 * result.slo_violation_fraction);
  if (config.use_copart) {
    std::printf("CoPart re-adaptations: %llu\n",
                static_cast<unsigned long long>(result.copart_adaptations));
  }
  return 0;
}
