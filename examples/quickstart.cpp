// Quickstart: consolidate four applications on the simulated 16-core
// server and let CoPart partition the LLC and memory bandwidth among them.
//
// Walks the public API end to end:
//   1. SimulatedMachine  — the server (Table 1 configuration by default).
//   2. LaunchApp         — start workloads on dedicated cores.
//   3. Resctrl           — the partitioning interface CoPart actuates.
//   4. PerfMonitor       — PMC sampling.
//   5. ResourceManager   — the CoPart controller itself.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/resource_manager.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

int main() {
  using namespace copart;

  // 1. The simulated server: Xeon Gold 6130-like, 22MB/11-way LLC, ~28GB/s.
  SimulatedMachine machine(MachineConfig{});
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);

  // 2. Four consolidated applications, four dedicated cores each: one
  //    cache-hungry, one bandwidth-hungry, one sensitive to both, one
  //    insensitive.
  std::vector<AppId> apps;
  std::vector<WorkloadDescriptor> descriptors = {WaterNsquared(), Cg(), Sp(),
                                                 Swaptions()};
  for (const WorkloadDescriptor& descriptor : descriptors) {
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
    std::printf("launched %-14s (%s)\n", descriptor.name.c_str(),
                WorkloadCategoryName(descriptor.category));
  }

  // 3-5. Hand the apps to CoPart and run 50 seconds of simulated time with
  //      a 500 ms control period.
  ResourceManagerParams params;
  ResourceManager manager(&resctrl, &monitor, params);
  for (AppId app : apps) {
    CHECK(manager.AddApp(app).ok());
  }
  for (int period = 0; period < 100; ++period) {
    machine.AdvanceTime(params.control_period_sec);
    manager.Tick();
  }

  // Report what CoPart converged to and how fair the outcome is.
  std::printf("\nCoPart phase after 50s: %s\n",
              ResourceManager::PhaseName(manager.phase()));
  std::printf("converged system state: %s\n",
              manager.current_state().ToString().c_str());

  std::vector<double> slowdowns;
  for (size_t i = 0; i < apps.size(); ++i) {
    const double solo = machine.SoloFullResourceIps(descriptors[i], 4);
    const double now = machine.LastEpoch(apps[i]).ips;
    slowdowns.push_back(Slowdown(solo, now));
    std::printf("  %-14s slowdown %.2fx  (schemata %s)\n",
                descriptors[i].name.c_str(), slowdowns.back(),
                resctrl
                    .ReadSchemata(ResctrlGroupId(machine.AppClos(apps[i])))
                    .c_str());
  }
  std::printf("unfairness (sigma/mu, lower is better): %.4f\n",
              Unfairness(slowdowns));
  return 0;
}
