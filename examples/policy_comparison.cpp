// Compares the five resource allocation policies from the paper (EQ, ST,
// CAT-only, MBA-only, CoPart) on a workload mix chosen on the command line.
//
// Usage:  ./build/examples/policy_comparison [H-LLC|H-BW|H-Both|M-LLC|M-BW|
//                                            M-Both|IS] [app_count]
// Defaults to H-Both with 4 apps.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

namespace {

copart::MixFamily ParseFamily(const char* name) {
  using copart::MixFamily;
  for (MixFamily family : copart::AllMixFamilies()) {
    if (std::strcmp(name, copart::MixFamilyName(family)) == 0) {
      return family;
    }
  }
  std::fprintf(stderr, "unknown mix '%s'; expected one of", name);
  for (MixFamily family : copart::AllMixFamilies()) {
    std::fprintf(stderr, " %s", copart::MixFamilyName(family));
  }
  std::fprintf(stderr, "\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace copart;
  const MixFamily family = argc > 1 ? ParseFamily(argv[1])
                                    : MixFamily::kHighBoth;
  const size_t count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const WorkloadMix mix = MakeMix(family, count);

  std::printf("mix %s:", mix.name.c_str());
  for (const WorkloadDescriptor& app : mix.apps) {
    std::printf(" %s", app.short_name.c_str());
  }
  std::printf("  (%u cores each, 50s run)\n\n", CoresPerApp(count));

  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, factory] : StandardPolicies()) {
    const ExperimentResult result = RunExperiment(mix, factory, {});
    std::string slowdowns;
    for (size_t i = 0; i < result.slowdowns.size(); ++i) {
      slowdowns += (i > 0 ? " " : "") + FormatFixed(result.slowdowns[i], 2);
    }
    rows.push_back({name, FormatFixed(result.unfairness, 4),
                    FormatSci(result.throughput_geomean), slowdowns});
  }
  PrintTable({"policy", "unfairness", "geomean IPS", "per-app slowdowns"},
             rows);
  return 0;
}
