// Fleet-level consolidation: three simulated servers, each running its own
// CoPart instance, receiving a stream of jobs. Placement quality and
// partitioning quality compose: the what-if placement keeps cache pressure
// balanced across nodes, and per-node CoPart partitions whatever lands.
//
// Usage:  ./build/examples/cluster_scheduler [first-fit|least-loaded|
//                                             what-if-best]
#include <cstdio>
#include <cstring>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  using namespace copart;
  PlacementPolicy policy = PlacementPolicy::kWhatIfBest;
  if (argc > 1) {
    if (std::strcmp(argv[1], "first-fit") == 0) {
      policy = PlacementPolicy::kFirstFit;
    } else if (std::strcmp(argv[1], "least-loaded") == 0) {
      policy = PlacementPolicy::kLeastLoaded;
    } else if (std::strcmp(argv[1], "what-if-best") != 0) {
      std::fprintf(stderr, "unknown policy '%s'\n", argv[1]);
      return 1;
    }
  }

  Cluster cluster;
  for (const char* name : {"node0", "node1", "node2"}) {
    MachineConfig config;
    cluster.AddNode(name, config);
  }

  // A mixed arrival stream: cache-hungry, bandwidth-hungry, and filler.
  const std::vector<WorkloadDescriptor> arrivals = {
      WaterNsquared(), Cg(), Sp(),        Swaptions(), WaterSpatial(),
      OceanCp(),       Ep(), OceanNcp(),  Raytrace(),  Ft(),
      Fmm(),           Ep()};

  std::printf("placement policy: %s\n\n", PlacementPolicyName(policy));
  for (const WorkloadDescriptor& workload : arrivals) {
    Result<Placement> placed = cluster.Submit(workload, 4, policy);
    if (!placed.ok()) {
      std::printf("  %-16s -> REJECTED (%s)\n", workload.name.c_str(),
                  placed.status().ToString().c_str());
      continue;
    }
    std::printf("  %-16s -> %s\n", workload.name.c_str(),
                placed->node->name().c_str());
    // Let the fleet settle a little between arrivals, as it would live.
    cluster.Tick(0.5);
  }

  // Converge every node's controller.
  for (int i = 0; i < 160; ++i) {
    cluster.Tick(0.5);
  }

  std::printf("\nfleet after convergence:\n");
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < cluster.NumNodes(); ++i) {
    ClusterNode* node = cluster.node(i);
    std::string jobs;
    for (const WorkloadDescriptor& workload : node->ResidentWorkloads()) {
      jobs += (jobs.empty() ? "" : " ") + workload.short_name;
    }
    rows.push_back({node->name(), std::to_string(node->NumJobs()),
                    ResourceManager::PhaseName(node->manager().phase()),
                    FormatFixed(node->CurrentUnfairness(), 4), jobs});
  }
  PrintTable({"node", "jobs", "copart", "unfairness", "resident"}, rows);

  const std::vector<double> slowdowns = cluster.AllSlowdowns();
  std::printf("\ncluster-wide slowdowns: mean %.3f, worst %.3f\n",
              Mean(slowdowns),
              *std::max_element(slowdowns.begin(), slowdowns.end()));
  std::printf("mean node unfairness: %.4f\n", cluster.MeanNodeUnfairness());
  return 0;
}
