// Figure 16: overhead of CoPart — the wall-clock time of one system state
// space exploration step (getNextSystemState) as the application count
// grows from 3 to 6 (plus larger counts to expose the O(N^2) trend).
// Expected shape: tens of microseconds or less, growing mildly with the
// app count. (The paper reports 10.6/11.8/12.7/14.4 us for 3/4/5/6 apps.)
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/hr_matching.h"
#include "core/system_state.h"

namespace copart {
namespace {

void BM_GetNextSystemState(benchmark::State& state) {
  const size_t num_apps = static_cast<size_t>(state.range(0));
  const ResourcePool pool{
      .first_way = 0,
      .num_ways = std::max<uint32_t>(11, static_cast<uint32_t>(num_apps)),
      .max_mba_percent = 100};
  Rng rng(12345);
  SystemState system_state = SystemState::EqualShare(pool, num_apps);
  // Mixed classification: cycle Supply/Maintain/Demand across apps for a
  // worst-ish case with real matching work.
  std::vector<MatchAppInfo> infos(num_apps);
  const ResourceClass classes[] = {ResourceClass::kSupply,
                                   ResourceClass::kMaintain,
                                   ResourceClass::kDemand};
  for (size_t i = 0; i < num_apps; ++i) {
    infos[i].slowdown = 1.0 + 0.3 * static_cast<double>(i);
    infos[i].llc_class = classes[i % 3];
    infos[i].mba_class = classes[(i + 1) % 3];
  }
  for (auto _ : state) {
    MatchResult result = GetNextSystemState(system_state, infos, rng);
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_GetNextSystemState)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_RandomNeighbor(benchmark::State& state) {
  const size_t num_apps = static_cast<size_t>(state.range(0));
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  Rng rng(777);
  const SystemState system_state = SystemState::EqualShare(pool, num_apps);
  for (auto _ : state) {
    SystemState next = system_state.RandomNeighbor(rng, true, true);
    benchmark::DoNotOptimize(next);
  }
}

BENCHMARK(BM_RandomNeighbor)->Arg(3)->Arg(6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace copart

BENCHMARK_MAIN();
