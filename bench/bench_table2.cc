// Reproduces Table 1 (system configuration) and Table 2 (evaluated
// benchmarks and their characteristics): per-benchmark category, LLC
// accesses/s and LLC misses/s with four threads and full resources.
#include <cstdio>

#include "harness/table_printer.h"
#include "machine/simulated_machine.h"
#include "workload/workload.h"

namespace copart {
namespace {

void PrintTable1(const MachineConfig& config) {
  std::printf("== Table 1: system configuration (simulated) ==\n");
  PrintTable(
      {"Component", "Description"},
      {{"Processor", "Simulated Xeon Gold 6130 @ 2.1GHz, " +
                         std::to_string(config.num_cores) + " cores"},
       {"L3 cache", "Shared, 22MB, 11 ways (way-partitioned, CAT)"},
       {"Memory", "~28GB/s total bandwidth (MBA-throttled)"},
       {"OS", "In-process resctrl + PMC simulation"}});
  std::printf("\n");
}

void PrintTable2() {
  std::printf(
      "== Table 2: evaluated benchmarks and their characteristics ==\n"
      "(surrogates, 4 threads, full resources; paper values in parens)\n");
  struct PaperRow {
    double accesses;
    double misses;
  };
  const PaperRow paper[] = {
      {6.91e7, 2.58e4}, {4.32e7, 9.12e5}, {3.76e7, 2.16e4},
      {5.19e7, 4.88e7}, {3.10e8, 1.12e8}, {2.45e7, 2.00e7},
      {1.69e8, 9.21e7}, {9.49e7, 7.89e7}, {6.12e6, 3.47e6},
      {1.08e4, 7.98e2}, {7.34e5, 1.79e4}};
  std::vector<std::vector<std::string>> rows;
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  size_t index = 0;
  for (const WorkloadDescriptor& descriptor : AllTable2Benchmarks()) {
    SimulatedMachine machine(config);
    Result<AppId> app = machine.LaunchApp(descriptor, 4);
    CHECK(app.ok());
    machine.AdvanceTime(1.0);
    const AppEpochSnapshot& epoch = machine.LastEpoch(*app);
    rows.push_back(
        {descriptor.name + " (" + descriptor.short_name + ")",
         WorkloadCategoryName(descriptor.category),
         FormatSci(epoch.llc_accesses_per_sec) + " (" +
             FormatSci(paper[index].accesses) + ")",
         FormatSci(epoch.llc_misses_per_sec) + " (" +
             FormatSci(paper[index].misses) + ")"});
    ++index;
  }
  PrintTable({"Benchmark", "Category", "LLC accesses/s", "LLC misses/s"},
             rows);
}

}  // namespace
}  // namespace copart

int main() {
  copart::PrintTable1(copart::MachineConfig{});
  copart::PrintTable2();
  return 0;
}
