// Ablation/validation: the machine's shared-LLC occupancy fixed point vs
// trace-driven ground truth with overlapping CAT masks (DESIGN.md §4).
// Prints analytic vs measured miss ratios and capacity fractions for
// representative sharing scenarios.
#include <cstdio>

#include "harness/table_printer.h"
#include "machine/shared_cache_validator.h"

namespace copart {
namespace {

void RunScenario(const std::string& title,
                 const std::vector<WorkloadDescriptor>& workloads,
                 const std::vector<WayMask>& masks) {
  const SharedCacheValidationResult result =
      ValidateSharedCache(workloads, masks);
  std::printf("-- %s --\n", title.c_str());
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < result.apps.size(); ++i) {
    const AppValidationResult& app = result.apps[i];
    rows.push_back({app.name, masks[i].ToHex(),
                    FormatFixed(app.analytic_miss_ratio, 3),
                    FormatFixed(app.measured_miss_ratio, 3),
                    FormatFixed(app.analytic_capacity_fraction, 3),
                    FormatFixed(app.measured_occupancy_fraction, 3)});
  }
  PrintTable({"app", "mask", "mr (model)", "mr (trace)", "cap (model)",
              "cap (trace)"},
             rows);
  std::printf("max |mr error| = %.3f, max |occupancy error| = %.3f\n\n",
              result.max_miss_ratio_error, result.max_occupancy_error);
}

}  // namespace
}  // namespace copart

int main() {
  using namespace copart;
  std::printf(
      "== Ablation: shared-cache occupancy fixed point vs trace-driven "
      "LRU ==\n(1/64-scale geometry; masks may overlap)\n\n");
  RunScenario("disjoint partitions (WN | CG)", {WaterNsquared(), Cg()},
              {WayMask::Contiguous(0, 6), WayMask::Contiguous(6, 5)});
  RunScenario("full sharing, identical apps (SP + SP)", {Sp(), Sp()},
              {WayMask::Contiguous(0, 11), WayMask::Contiguous(0, 11)});
  RunScenario("full sharing, streamer vs resident (OC + KM)",
              {OceanCp(), Kmeans()},
              {WayMask::Contiguous(0, 11), WayMask::Contiguous(0, 11)});
  RunScenario("partial overlap (WN[0-5], ON[4-8], RT[8-10])",
              {WaterNsquared(), OceanNcp(), Raytrace()},
              {WayMask::Contiguous(0, 6), WayMask::Contiguous(4, 5),
               WayMask::Contiguous(8, 3)});
  return 0;
}
