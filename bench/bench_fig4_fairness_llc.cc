// Figure 4: fairness impact of LLC and memory bandwidth partitioning with
// the LLC-sensitive workload mix (WN, WS, RT, SW). Expected shape: fairness
// driven primarily by the LLC split — starving WN (e.g. rows giving it 1-2
// ways) is unfair — with secondary variation along the MBA axis because
// cache-starved apps compete for bandwidth.
#include <cstdio>

#include "bench/fairness_grid_util.h"
#include "harness/mix.h"

int main(int argc, char** argv) {
  const copart::ParallelConfig parallel =
      copart::ParseThreadsFlag(argc, argv);
  std::printf("== Figure 4: LLC-sensitive workload mix ==\n\n");
  copart::PrintFairnessGrid(copart::LlcSensitiveCharacterizationMix(), parallel);
  return 0;
}
