// Figure 17: performance (throughput) results — the geometric mean of the
// per-app IPS under each policy, averaged across the seven mixes at each
// application count and normalized to EQ. Expected shape: CoPart comparable
// to or slightly better than the other policies (fairness does not cost
// throughput).
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf(
      "== Figure 17: throughput (geomean IPS across mixes, normalized to "
      "EQ) ==\n\n");

  const auto policies = StandardPolicies();
  std::vector<std::string> headers = {"apps"};
  for (const auto& [name, factory] : policies) {
    headers.push_back(name);
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t count = 3; count <= 6; ++count) {
    std::vector<std::string> row = {std::to_string(count)};
    std::vector<std::vector<double>> per_policy(policies.size());
    for (MixFamily family : AllMixFamilies()) {
      const WorkloadMix mix = MakeMix(family, count);
      double eq_throughput = 0.0;
      for (size_t p = 0; p < policies.size(); ++p) {
        const ExperimentResult result =
            RunExperiment(mix, policies[p].second, {});
        if (policies[p].first == "EQ") {
          eq_throughput = result.throughput_geomean;
        }
        per_policy[p].push_back(result.throughput_geomean / eq_throughput);
      }
    }
    for (size_t p = 0; p < policies.size(); ++p) {
      row.push_back(FormatFixed(GeoMean(per_policy[p]), 3));
    }
    rows.push_back(std::move(row));
  }
  PrintTable(headers, rows);
  return 0;
}
