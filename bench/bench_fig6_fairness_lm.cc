// Figure 6: fairness impact of LLC and memory bandwidth partitioning with
// the LLC- and memory bandwidth-sensitive (LM) workload mix (SP, ON, FMM,
// SW). Expected shape: fairness depends on BOTH axes — the motivation for
// coordinated partitioning.
#include <cstdio>

#include "bench/fairness_grid_util.h"
#include "harness/mix.h"

int main(int argc, char** argv) {
  const copart::ParallelConfig parallel =
      copart::ParseThreadsFlag(argc, argv);
  std::printf("== Figure 6: LLC- & memory BW-sensitive workload mix ==\n\n");
  copart::PrintFairnessGrid(copart::BothSensitiveCharacterizationMix(), parallel);
  return 0;
}
