// Figure 5: fairness impact of LLC and memory bandwidth partitioning with
// the memory bandwidth-sensitive workload mix (OC, CG, FT, SW). Expected
// shape: fairness driven by the MBA split (throttling OC/CG to 10% is very
// unfair), with little variation along the LLC axis.
#include <cstdio>

#include "bench/fairness_grid_util.h"
#include "harness/mix.h"

int main(int argc, char** argv) {
  const copart::ParallelConfig parallel =
      copart::ParseThreadsFlag(argc, argv);
  std::printf("== Figure 5: memory bandwidth-sensitive workload mix ==\n\n");
  copart::PrintFairnessGrid(copart::BwSensitiveCharacterizationMix(), parallel);
  return 0;
}
