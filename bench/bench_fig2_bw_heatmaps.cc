// Figure 2: performance impact of LLC and memory bandwidth partitioning on
// the memory-bandwidth-sensitive benchmarks (OC, CG, FT). Expected shape:
// gradient along the MBA axis, near-flat along ways; OC/CG/FT reach 90% of
// peak at MBA levels 30/20/30.
#include <cstdio>

#include "bench/solo_heatmap_util.h"

int main(int argc, char** argv) {
  const copart::ParallelConfig parallel =
      copart::ParseThreadsFlag(argc, argv);
  std::printf("== Figure 2: memory bandwidth-sensitive benchmarks ==\n\n");
  copart::PrintSoloHeatmap(copart::OceanCp(), parallel);
  copart::PrintSoloHeatmap(copart::Cg(), parallel);
  copart::PrintSoloHeatmap(copart::Ft(), parallel);
  return 0;
}
