// Figure 1: performance impact of LLC and memory bandwidth partitioning on
// the LLC-sensitive benchmarks (WN, WS, RT). Expected shape: strong
// gradient along the ways axis, near-flat along the MBA axis; WN/WS/RT
// reach 90% of peak at 4/3/2 ways.
#include <cstdio>

#include "bench/solo_heatmap_util.h"

int main(int argc, char** argv) {
  const copart::ParallelConfig parallel =
      copart::ParseThreadsFlag(argc, argv);
  std::printf("== Figure 1: LLC-sensitive benchmarks ==\n\n");
  copart::PrintSoloHeatmap(copart::WaterNsquared(), parallel);
  copart::PrintSoloHeatmap(copart::WaterSpatial(), parallel);
  copart::PrintSoloHeatmap(copart::Raytrace(), parallel);
  return 0;
}
