// Figure 15: runtime behaviour of CoPart in the dynamic server
// consolidation case study (§6.3). A memcached surrogate (latency-critical,
// 1 ms p95 SLO) is consolidated with Word Count and Kmeans surrogates; the
// offered load steps up at t=99.4 s and back down at t=299.4 s. Expected
// shape: the batch slice shrinks at high load, CoPart re-adapts after each
// step (with a short transient of lower fairness) and keeps the batch
// unfairness well below the EQ split throughout.
// With an argument, additionally dumps the full-resolution time series to
// that CSV path (columns: time, load, p95, lc_ways, batch_mba,
// unfairness_copart, unfairness_eq, phase).
#include <cstdio>

#include "harness/case_study.h"
#include "harness/csv_writer.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  using namespace copart;
  std::printf("== Figure 15: runtime behavior of CoPart (case study) ==\n\n");

  CaseStudyConfig config;
  const CaseStudyResult copart = RunCaseStudy(config);
  config.use_copart = false;
  const CaseStudyResult eq = RunCaseStudy(config);

  std::printf(
      "time series (5 s samples): load, p95, LC ways, batch MBA ceiling, "
      "batch unfairness (CoPart vs EQ), CoPart phase\n");
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < copart.samples.size(); i += 10) {
    const CaseStudySample& sample = copart.samples[i];
    rows.push_back({FormatFixed(sample.time, 1),
                    FormatFixed(sample.load_rps / 1000.0, 0) + "k",
                    FormatFixed(sample.p95_ms, 3),
                    std::to_string(sample.lc_ways),
                    std::to_string(sample.batch_max_mba),
                    FormatFixed(sample.batch_unfairness, 4),
                    FormatFixed(eq.samples[i].batch_unfairness, 4),
                    sample.copart_phase});
  }
  PrintTable({"t(s)", "load", "p95(ms)", "LC ways", "batch MBA",
              "unfair(CoPart)", "unfair(EQ)", "phase"},
             rows);

  if (argc > 1) {
    CsvWriter csv(argv[1]);
    if (!csv.ok()) {
      std::fprintf(stderr, "%s\n", csv.status().ToString().c_str());
      return 1;
    }
    csv.WriteRow({"time_s", "load_rps", "p95_ms", "lc_ways", "batch_mba",
                  "unfairness_copart", "unfairness_eq", "phase"});
    for (size_t i = 0; i < copart.samples.size(); ++i) {
      const CaseStudySample& sample = copart.samples[i];
      csv.WriteRow({FormatFixed(sample.time, 1),
                    FormatFixed(sample.load_rps, 0),
                    FormatFixed(sample.p95_ms, 4),
                    std::to_string(sample.lc_ways),
                    std::to_string(sample.batch_max_mba),
                    FormatFixed(sample.batch_unfairness, 5),
                    FormatFixed(eq.samples[i].batch_unfairness, 5),
                    sample.copart_phase});
    }
    std::printf("\nwrote %zu samples to %s\n", copart.samples.size(),
                argv[1]);
  }

  std::printf("\nmean batch unfairness: CoPart %.4f vs EQ %.4f\n",
              copart.mean_batch_unfairness, eq.mean_batch_unfairness);
  std::printf("p95 SLO (1 ms) violations: CoPart %.1f%% of samples\n",
              100.0 * copart.slo_violation_fraction);
  std::printf("CoPart re-adaptations triggered: %llu\n",
              static_cast<unsigned long long>(copart.copart_adaptations));
  return 0;
}
