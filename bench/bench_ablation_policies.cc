// Extension study: fairness vs throughput across ALL policies, including
// the two related-work baselines beyond the paper's four: the idealized
// miss-minimizing UCP (core/ucp_policy.h, oracle miss curves) and the
// dCat-style feedback partitioner (core/dcat_policy.h, LLC-only, online).
// Expected shape: UCP matches the static oracle (perfect curves make a
// static partitioner strong on this substrate); dCat lands near CAT-only
// (a dynamic LLC-only policy cannot fix bandwidth-driven unfairness);
// CoPart remains the best purely-online coordinated policy.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf(
      "== Extension: fairness vs throughput, all policies ==\n\n");

  auto policies = StandardPolicies();
  policies.emplace_back("UCP", UcpFactory());
  policies.emplace_back("dCat", DcatFactory());

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> unfairness(policies.size()),
      throughput(policies.size());
  for (MixFamily family : AllMixFamilies()) {
    const WorkloadMix mix = MakeMix(family, 4);
    double eq_unfairness = 0.0, eq_throughput = 0.0;
    for (size_t p = 0; p < policies.size(); ++p) {
      const ExperimentResult result =
          RunExperiment(mix, policies[p].second, {});
      if (policies[p].first == "EQ") {
        eq_unfairness = std::max(result.unfairness, 1e-4);
        eq_throughput = result.throughput_geomean;
      }
      unfairness[p].push_back(std::max(result.unfairness, 1e-4) /
                              eq_unfairness);
      throughput[p].push_back(result.throughput_geomean / eq_throughput);
    }
  }
  for (size_t p = 0; p < policies.size(); ++p) {
    rows.push_back({policies[p].first,
                    FormatFixed(GeoMean(unfairness[p]), 3),
                    FormatFixed(GeoMean(throughput[p]), 3)});
  }
  PrintTable({"policy", "norm. unfairness (geomean)",
              "norm. throughput (geomean)"},
             rows);
  std::printf(
      "\n(normalized to EQ across the seven 4-app mixes; unfairness lower "
      "is better, throughput higher is better)\n");
  return 0;
}
