// Figure 13: sensitivity to the application count (3-6 apps). Each bar is
// the geometric-mean unfairness of a policy across the seven mixes at that
// count, normalized to EQ. Expected shape: CoPart's advantage grows with
// the app count (more contention). (The paper reports 23.3% improvement
// over EQ at 3 apps and 70.6% at 6.)
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf(
      "== Figure 13: sensitivity to the application count "
      "(geomean across mixes, normalized to EQ) ==\n\n");

  const auto policies = StandardPolicies();
  std::vector<std::string> headers = {"apps"};
  for (const auto& [name, factory] : policies) {
    headers.push_back(name);
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t count = 3; count <= 6; ++count) {
    std::vector<std::string> row = {std::to_string(count)};
    std::vector<std::vector<double>> per_policy(policies.size());
    for (MixFamily family : AllMixFamilies()) {
      const WorkloadMix mix = MakeMix(family, count);
      double eq_unfairness = 0.0;
      for (size_t p = 0; p < policies.size(); ++p) {
        const ExperimentResult result =
            RunExperiment(mix, policies[p].second, {});
        if (policies[p].first == "EQ") {
          eq_unfairness = std::max(result.unfairness, 1e-4);
        }
        per_policy[p].push_back(std::max(result.unfairness, 1e-4) /
                                eq_unfairness);
      }
    }
    for (size_t p = 0; p < policies.size(); ++p) {
      row.push_back(FormatFixed(GeoMean(per_policy[p]), 3));
    }
    rows.push_back(std::move(row));
  }
  PrintTable(headers, rows);
  return 0;
}
