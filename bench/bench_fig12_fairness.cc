// Figure 12: unfairness (lower is better) of EQ, ST, CAT-only, MBA-only and
// CoPart across the seven four-app workload mixes, normalized to EQ, plus
// the geometric mean. Expected shape: CoPart well below EQ on every
// sensitive mix, far below CAT-only on BW-leaning mixes and below MBA-only
// on LLC-leaning mixes, and comparable to ST throughout. (The paper reports
// 57.3% / 28.6% / 56.4% average improvement over EQ / CAT-only / MBA-only.)
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf("== Figure 12: fairness results (normalized to EQ) ==\n\n");

  const auto policies = StandardPolicies();
  std::vector<std::string> headers = {"mix"};
  for (const auto& [name, factory] : policies) {
    headers.push_back(name);
  }
  std::vector<std::vector<std::string>> rows;
  std::map<std::string, std::vector<double>> normalized;
  std::map<std::string, std::vector<double>> raw;

  for (MixFamily family : AllMixFamilies()) {
    const WorkloadMix mix = MakeMix(family, 4);
    double eq_unfairness = 0.0;
    std::vector<std::string> row = {mix.name};
    for (const auto& [name, factory] : policies) {
      const ExperimentResult result = RunExperiment(mix, factory, {});
      raw[name].push_back(result.unfairness);
      if (name == "EQ") {
        eq_unfairness = std::max(result.unfairness, 1e-4);
      }
      const double value =
          std::max(result.unfairness, 1e-4) / eq_unfairness;
      normalized[name].push_back(value);
      row.push_back(FormatFixed(value, 3));
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> geomean_row = {"geomean"};
  for (const auto& [name, factory] : policies) {
    geomean_row.push_back(FormatFixed(GeoMean(normalized[name]), 3));
  }
  rows.push_back(geomean_row);
  PrintTable(headers, rows);

  const double copart = GeoMean(normalized["CoPart"]);
  std::printf(
      "\nCoPart average fairness improvement: %.1f%% vs EQ, %.1f%% vs "
      "CAT-only, %.1f%% vs MBA-only\n(paper: 57.3%%, 28.6%%, 56.4%%)\n",
      100.0 * (1.0 - copart),
      100.0 * (1.0 - copart / GeoMean(normalized["CAT-only"])),
      100.0 * (1.0 - copart / GeoMean(normalized["MBA-only"])));
  return 0;
}
