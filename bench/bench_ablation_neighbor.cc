// Ablation: the neighbor-state perturbation budget theta (Algorithm 1,
// lines 11-14). theta = 0 disables the random restarts entirely; larger
// values let the controller escape matcher fixpoints at the cost of extra
// exploration churn. Expected shape: small positive theta helps (or at
// least never hurts) relative to theta = 0, with diminishing returns.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf(
      "== Ablation: neighbor-perturbation retries theta "
      "(geomean unfairness across mixes) ==\n\n");

  std::vector<std::vector<std::string>> rows;
  for (int theta : {0, 1, 3, 5, 8}) {
    ResourceManagerParams params;
    params.theta = theta;
    std::vector<double> values;
    for (MixFamily family : AllMixFamilies()) {
      const ExperimentResult result =
          RunExperiment(MakeMix(family, 4), CoPartFactory(params), {});
      values.push_back(std::max(result.unfairness, 1e-4));
    }
    rows.push_back({std::to_string(theta), FormatFixed(GeoMean(values), 4)});
  }
  PrintTable({"theta", "geomean unfairness"}, rows);
  std::printf("\n(the paper uses theta = 3)\n");
  return 0;
}
