// Extension study: placement policy x per-node partitioning on a two-node
// fleet. A skewed arrival stream (big insensitive jobs first, then small
// cache-hungry ones) is submitted under each placement policy, with the
// nodes either unmanaged (everything shares the LLC) or running CoPart.
//
// Expected shape: on unmanaged nodes placement is all that stands between
// the fleet and heavy contention, so cache-aware (what-if) placement beats
// first-fit clearly; per-node CoPart then absorbs most of the remaining
// damage, shrinking the gap between placement policies — the controller
// makes the fleet robust to placement mistakes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "harness/table_printer.h"

namespace copart {
namespace {

struct FleetOutcome {
  double mean_slowdown = 0.0;
  double worst_slowdown = 0.0;
  double mean_node_unfairness = 0.0;
};

FleetOutcome RunFleet(PlacementPolicy policy, bool manage,
                      const ParallelConfig& parallel) {
  // Big insensitive jobs first so core-count balancing and cache-pressure
  // balancing disagree.
  const std::vector<std::pair<WorkloadDescriptor, uint32_t>> arrivals = {
      {Swaptions(), 8}, {WaterNsquared(), 2}, {WaterSpatial(), 2},
      {Sp(), 2},        {Ep(), 8},            {Raytrace(), 2},
      {OceanNcp(), 2},  {Fmm(), 2},           {Ft(), 2},
      {Ep(), 2}};
  Cluster cluster;
  cluster.set_parallel(parallel);
  cluster.AddNode("n0", {}, {}, manage);
  cluster.AddNode("n1", {}, {}, manage);
  for (const auto& [workload, cores] : arrivals) {
    CHECK(cluster.Submit(workload, cores, policy).ok());
  }
  for (int i = 0; i < 200; ++i) {
    cluster.Tick(0.5);
  }
  const std::vector<double> slowdowns = cluster.AllSlowdowns();
  return FleetOutcome{
      Mean(slowdowns),
      *std::max_element(slowdowns.begin(), slowdowns.end()),
      cluster.MeanNodeUnfairness()};
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  using namespace copart;
  const ParallelConfig parallel = ParseThreadsFlag(argc, argv);
  std::printf(
      "== Extension: placement policy x per-node partitioning "
      "(2 nodes) ==\n\n");
  for (bool manage : {false, true}) {
    std::printf("-- nodes %s --\n",
                manage ? "running CoPart" : "unmanaged (shared LLC)");
    std::vector<std::vector<std::string>> rows;
    for (PlacementPolicy policy :
         {PlacementPolicy::kFirstFit, PlacementPolicy::kLeastLoaded,
          PlacementPolicy::kWhatIfBest}) {
      const FleetOutcome outcome = RunFleet(policy, manage, parallel);
      rows.push_back({PlacementPolicyName(policy),
                      FormatFixed(outcome.mean_slowdown, 3),
                      FormatFixed(outcome.worst_slowdown, 3),
                      FormatFixed(outcome.mean_node_unfairness, 4)});
    }
    PrintTable({"placement", "mean slowdown", "worst slowdown",
                "mean node unfairness"},
               rows);
    std::printf("\n");
  }
  return 0;
}
