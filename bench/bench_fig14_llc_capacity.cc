// Figure 14: sensitivity to the total LLC capacity, sweeping the pool from
// 7 to 11 ways (the outer slice an operator might grant). Each bar is the
// geometric-mean unfairness across the seven four-app mixes, normalized to
// EQ at the same capacity. Expected shape: CoPart stays well below EQ /
// CAT-only / MBA-only and comparable to ST at every capacity.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf(
      "== Figure 14: sensitivity to the total LLC capacity "
      "(geomean across mixes, normalized to EQ) ==\n\n");

  const auto policies = StandardPolicies();
  std::vector<std::string> headers = {"ways"};
  for (const auto& [name, factory] : policies) {
    headers.push_back(name);
  }
  std::vector<std::vector<std::string>> rows;
  for (uint32_t ways = 7; ways <= 11; ++ways) {
    ExperimentConfig config;
    config.pool =
        ResourcePool{.first_way = 0, .num_ways = ways, .max_mba_percent = 100};
    std::vector<std::string> row = {std::to_string(ways)};
    std::vector<std::vector<double>> per_policy(policies.size());
    for (MixFamily family : AllMixFamilies()) {
      const WorkloadMix mix = MakeMix(family, 4);
      double eq_unfairness = 0.0;
      for (size_t p = 0; p < policies.size(); ++p) {
        const ExperimentResult result =
            RunExperiment(mix, policies[p].second, config);
        if (policies[p].first == "EQ") {
          eq_unfairness = std::max(result.unfairness, 1e-4);
        }
        per_policy[p].push_back(std::max(result.unfairness, 1e-4) /
                                eq_unfairness);
      }
    }
    for (size_t p = 0; p < policies.size(); ++p) {
      row.push_back(FormatFixed(GeoMean(per_policy[p]), 3));
    }
    rows.push_back(std::move(row));
  }
  PrintTable(headers, rows);
  return 0;
}
