// Ablation: the memory-controller queueing coupling
// (MachineConfig::queueing_delay_factor). With factor 0 the controller is
// purely max-min fair and a bandwidth hog cannot hurt co-runners that get
// their max-min share; with larger factors DRAM latency stretches with
// utilization, so uncoordinated policies leave more unfairness on the
// bandwidth-heavy mixes. Reported: geomean unfairness (normalized to EQ at
// the same factor) for EQ/CAT-only/MBA-only/CoPart.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

int main() {
  using namespace copart;
  std::printf(
      "== Ablation: memory-controller queueing factor "
      "(geomean unfairness across mixes, normalized to EQ) ==\n\n");

  const std::vector<std::pair<std::string, PolicyFactory>> policies = {
      {"EQ", EqFactory()},
      {"CAT-only", CatOnlyFactory()},
      {"MBA-only", MbaOnlyFactory()},
      {"CoPart", CoPartFactory()}};

  std::vector<std::vector<std::string>> rows;
  for (double factor : {0.0, 0.5, 1.0, 2.0}) {
    ExperimentConfig config;
    config.machine.queueing_delay_factor = factor;
    std::vector<std::string> row = {FormatFixed(factor, 1)};
    std::vector<std::vector<double>> per_policy(policies.size());
    for (MixFamily family : AllMixFamilies()) {
      const WorkloadMix mix = MakeMix(family, 4);
      double eq_unfairness = 0.0;
      for (size_t p = 0; p < policies.size(); ++p) {
        const ExperimentResult result =
            RunExperiment(mix, policies[p].second, config);
        if (policies[p].first == "EQ") {
          eq_unfairness = std::max(result.unfairness, 1e-4);
        }
        per_policy[p].push_back(std::max(result.unfairness, 1e-4) /
                                eq_unfairness);
      }
    }
    for (size_t p = 0; p < policies.size(); ++p) {
      row.push_back(FormatFixed(GeoMean(per_policy[p]), 3));
    }
    rows.push_back(std::move(row));
  }
  PrintTable({"queueing factor", "EQ", "CAT-only", "MBA-only", "CoPart"},
             rows);
  std::printf("\n(the default machine model uses factor 1.0)\n");
  return 0;
}
