// Shared rendering for the solo-performance heatmap benches (Figs. 1-3).
#ifndef COPART_BENCH_SOLO_HEATMAP_UTIL_H_
#define COPART_BENCH_SOLO_HEATMAP_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "harness/heatmap.h"
#include "harness/table_printer.h"
#include "machine/machine_config.h"
#include "workload/workload.h"

namespace copart {

// Sweeps and prints one benchmark's normalized IPS over (ways, MBA level),
// plus the 90%-of-peak thresholds the paper quotes in §4.1. The sweep fans
// out across `parallel` threads (output is thread-count-invariant).
inline void PrintSoloHeatmap(const WorkloadDescriptor& descriptor,
                             const ParallelConfig& parallel = {}) {
  const SoloHeatmap map =
      SweepSoloPerformance(descriptor, MachineConfig{}, 4, parallel);
  std::vector<std::string> row_labels, col_labels;
  for (uint32_t ways : map.way_counts) {
    row_labels.push_back(std::to_string(ways) + "w");
  }
  for (uint32_t mba : map.mba_percents) {
    col_labels.push_back(std::to_string(mba) + "%");
  }
  PrintHeatmap("-- " + descriptor.name + " (" + descriptor.short_name +
                   "): normalized IPS, rows = LLC ways, cols = MBA level --",
               row_labels, col_labels, map.normalized_ips);
  std::printf("   90%% of peak at >= %u ways (MBA 100), >= %u%% MBA (11 ways)\n",
              map.MinWaysForFraction(0.9), map.MinMbaForFraction(0.9));
  std::printf("   sweep: %s\n", map.stats.Summary().c_str());
  std::printf("   sweep_stats_json: {\"sweep\": \"solo/%s\", %s\n\n",
              descriptor.short_name.c_str(),
              map.stats.ToJson().substr(1).c_str());
}

}  // namespace copart

#endif  // COPART_BENCH_SOLO_HEATMAP_UTIL_H_
