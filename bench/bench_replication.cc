// Statistical robustness of the Fig. 12 comparison: every policy on the
// three highly-sensitive mixes, replicated over 10 machine seeds, reported
// as mean +/- stddev of the raw unfairness. Expected shape: the policy
// ordering (CoPart ~ ST < CAT-only/MBA-only < EQ on their respective weak
// mixes) is stable — the error bars do not overlap across the headline
// gaps.
#include <cstdio>

#include "common/parallel.h"
#include "harness/mix.h"
#include "harness/replication.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  using namespace copart;
  const ParallelConfig parallel = ParseThreadsFlag(argc, argv);
  std::printf(
      "== Replication: unfairness mean +/- stddev over 10 seeds ==\n\n");
  constexpr size_t kReplicas = 10;
  ExperimentConfig config;
  config.parallel = parallel;
  for (MixFamily family :
       {MixFamily::kHighLlc, MixFamily::kHighBw, MixFamily::kHighBoth}) {
    const WorkloadMix mix = MakeMix(family, 4);
    std::vector<std::vector<std::string>> rows;
    SweepStats mix_stats;
    for (const auto& [name, factory] : StandardPolicies()) {
      const ReplicatedResult result =
          RunReplicatedExperiment(mix, factory, config, kReplicas);
      mix_stats.cells_completed += result.stats.cells_completed;
      mix_stats.threads = result.stats.threads;
      mix_stats.wall_sec += result.stats.wall_sec;
      mix_stats.cpu_sec += result.stats.cpu_sec;
      rows.push_back({name,
                      FormatFixed(result.unfairness.mean, 4) + " +/- " +
                          FormatFixed(result.unfairness.stddev, 4),
                      "[" + FormatFixed(result.unfairness.min, 4) + ", " +
                          FormatFixed(result.unfairness.max, 4) + "]"});
    }
    std::printf("-- %s --\n", mix.name.c_str());
    PrintTable({"policy", "unfairness", "range"}, rows);
    std::printf("sweep: %s\n", mix_stats.Summary().c_str());
    std::printf("sweep_stats_json: {\"sweep\": \"replication/%s\", %s\n\n",
                mix.name.c_str(), mix_stats.ToJson().substr(1).c_str());
  }
  return 0;
}
