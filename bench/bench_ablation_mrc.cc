// Ablation/validation: the analytic Che-approximation miss-ratio curves
// used by the fast epoch model vs. ground truth from the trace-driven
// way-partitioned cache, on the calibrated Table 2 reuse profiles (scaled
// to a 1/64-size LLC so trace replay stays cheap). Reports per-point error
// and the throughput advantage of the analytic model.
#include <chrono>
#include <cstdio>
#include <vector>

#include "cache/way_partitioned_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "harness/table_printer.h"
#include "trace/trace_generator.h"
#include "workload/workload.h"

int main() {
  using namespace copart;
  std::printf(
      "== Ablation: analytic MRC (Che approximation) vs trace-driven "
      "cache ==\n(profiles scaled to a 1/64 LLC)\n\n");

  const LlcGeometry geometry{
      .total_bytes = MiB(22) / 64, .num_ways = 11, .line_bytes = 64};
  const double scale = 1.0 / 64.0;

  std::vector<std::vector<std::string>> rows;
  double worst_error = 0.0;
  double analytic_ns = 0.0, trace_ns = 0.0;
  for (const WorkloadDescriptor& descriptor : AllTable2Benchmarks()) {
    // Scale the profile's working sets to the small geometry.
    std::vector<ReuseComponent> components;
    for (const ReuseComponent& component :
         descriptor.reuse_profile.components()) {
      components.push_back(
          {component.weight,
           std::max<uint64_t>(
               64, static_cast<uint64_t>(
                       static_cast<double>(component.working_set_bytes) *
                       scale))});
    }
    const ReuseProfile profile(components,
                               descriptor.reuse_profile.streaming_weight());
    for (uint32_t ways : {2u, 8u}) {
      const auto t0 = std::chrono::steady_clock::now();
      const double analytic = profile.MissRatio(geometry.CapacityForWays(ways));
      const auto t1 = std::chrono::steady_clock::now();

      WayPartitionedCache cache(geometry, 1);
      cache.SetMask(0, WayMask::Contiguous(0, ways));
      MixtureTraceGenerator generator(profile, geometry.line_bytes, Rng(7));
      for (int i = 0; i < 200000; ++i) {
        cache.Access(0, generator.Next());
      }
      cache.ResetStats();
      constexpr int kMeasured = 400000;
      for (int i = 0; i < kMeasured; ++i) {
        cache.Access(0, generator.Next());
      }
      const auto t2 = std::chrono::steady_clock::now();
      const double measured = cache.stats(0).MissRatio();
      const double error = std::abs(measured - analytic);
      worst_error = std::max(worst_error, error);
      analytic_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
      trace_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
      rows.push_back({descriptor.short_name, std::to_string(ways),
                      FormatFixed(analytic, 4), FormatFixed(measured, 4),
                      FormatFixed(error, 4)});
    }
  }
  PrintTable({"bench", "ways", "analytic", "trace-driven", "abs error"},
             rows);
  std::printf("\nworst-case abs error: %.4f\n", worst_error);
  std::printf("analytic model speedup over trace replay: %.0fx\n",
              trace_ns / std::max(analytic_ns, 1.0));
  return 0;
}
