// Ablation: the Hospitals/Residents matcher (Algorithm 2) vs a naive greedy
// allocator that performs only the single steepest transfer per period
// (highest-slowdown consumer takes from the lowest-slowdown producer).
// Expected shape: HR converges at least as fair and usually faster — it
// resolves ALL matchable producer/consumer pairs per period with stable
// preferences, while greedy moves one resource at a time.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "core/hr_matching.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

namespace copart {
namespace {

// One steepest transfer per period: the most-slowed demander takes its
// demanded resource from the least-slowed supplier.
MatchResult GreedySingleMove(const SystemState& state,
                             const std::vector<MatchAppInfo>& apps, Rng& rng,
                             bool enable_llc, bool enable_mba) {
  MatchResult result;
  result.next_state = state;
  double best_gap = 0.0;
  ssize_t best_producer = -1, best_consumer = -1;
  bool best_is_llc = false;
  for (size_t c = 0; c < apps.size(); ++c) {
    for (size_t p = 0; p < apps.size(); ++p) {
      if (p == c) {
        continue;
      }
      const double gap = apps[c].slowdown - apps[p].slowdown;
      if (gap <= best_gap) {
        continue;
      }
      const bool llc_ok = enable_llc &&
                          apps[c].llc_class == ResourceClass::kDemand &&
                          apps[p].llc_class == ResourceClass::kSupply &&
                          state.allocation(p).llc_ways > 1;
      const bool mba_ok =
          enable_mba && apps[c].mba_class == ResourceClass::kDemand &&
          apps[p].mba_class == ResourceClass::kSupply &&
          state.allocation(p).mba_level.CanDecrease() &&
          state.allocation(c).mba_level.percent() + MbaLevel::kStep <=
              state.pool().max_mba_percent;
      if (!llc_ok && !mba_ok) {
        continue;
      }
      best_gap = gap;
      best_producer = static_cast<ssize_t>(p);
      best_consumer = static_cast<ssize_t>(c);
      best_is_llc = llc_ok && (!mba_ok || rng.NextBool(0.5));
    }
  }
  if (best_producer >= 0) {
    AppAllocation& from = result.next_state.allocation(
        static_cast<size_t>(best_producer));
    AppAllocation& to = result.next_state.allocation(
        static_cast<size_t>(best_consumer));
    if (best_is_llc) {
      --from.llc_ways;
      ++to.llc_ways;
    } else {
      from.mba_level = from.mba_level.Decreased();
      to.mba_level = to.mba_level.Increased();
    }
    result.transfers.push_back({best_is_llc,
                                static_cast<size_t>(best_producer),
                                static_cast<size_t>(best_consumer)});
  }
  return result;
}

}  // namespace
}  // namespace copart

int main() {
  using namespace copart;
  std::printf(
      "== Ablation: HR matching (Algorithm 2) vs greedy single-move ==\n\n");

  ResourceManagerParams greedy_params;
  greedy_params.matcher = GreedySingleMove;

  std::vector<std::vector<std::string>> rows;
  std::vector<double> hr_values, greedy_values;
  for (MixFamily family : AllMixFamilies()) {
    const WorkloadMix mix = MakeMix(family, 4);
    const ExperimentResult hr = RunExperiment(mix, CoPartFactory(), {});
    const ExperimentResult greedy =
        RunExperiment(mix, CoPartFactory(greedy_params), {});
    rows.push_back({mix.name, FormatFixed(hr.unfairness, 4),
                    FormatFixed(greedy.unfairness, 4)});
    hr_values.push_back(std::max(hr.unfairness, 1e-4));
    greedy_values.push_back(std::max(greedy.unfairness, 1e-4));
  }
  rows.push_back({"geomean", FormatFixed(GeoMean(hr_values), 4),
                  FormatFixed(GeoMean(greedy_values), 4)});
  PrintTable({"mix", "HR unfairness", "greedy unfairness"}, rows);
  return 0;
}
