// Throughput of the request-serving subsystem (src/serve + the SLO-mode
// control loop): how many requests/sec the discrete-event engine can
// simulate, and epochs/sec of the full serve scenario — machine epoch,
// LC queue service, governor re-plan, CoPart tick — with SLO mode on.
// Emits a machine-readable BENCH_serve.json (committed at the repo root as
// the baseline); tools/run_perf_smoke.sh fails CI when either point
// regresses >20% against it.
//
// Flags:
//   --json=PATH         where to write the JSON report
//                       (default BENCH_serve.json in the CWD — run from
//                       the repo root to refresh the baseline)
//   --min-seconds=S     measurement time per data point (default 0.25)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "harness/serve.h"
#include "serve/serve_engine.h"
#include "workload/workload.h"

namespace copart {
namespace {

using Clock = std::chrono::steady_clock;

double Elapsed(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Raw engine speed: one LC queue at high offered load and fixed service
// capability, no machine or controller attached. Reports simulated
// requests (completions) per wall-clock second.
double MeasureRequestsPerSec(double min_seconds) {
  LcServerConfig config;
  config.name = "bench";
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.base_rate_rps = 200000.0;
  config.instructions_per_request = 60000.0;
  LcServer server(config, Rng(42));
  const double capability_ips = 1.68e10;  // mu ~ 280 krps: stable queue.
  for (int i = 0; i < 16; ++i) {
    server.AdvanceEpoch(0.1, capability_ips);  // Warm up.
  }
  const uint64_t warm = server.total_completions();
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 64; ++i) {
      server.AdvanceEpoch(0.1, capability_ips);
    }
    elapsed = Elapsed(start);
  } while (elapsed < min_seconds);
  const uint64_t simulated = server.total_completions() - warm;
  return static_cast<double>(simulated) / elapsed;
}

// Epochs/sec of the full SLO-mode serve loop: the §6.3 machine (memcached
// surrogate + two batch apps) under a steady Poisson load, driven through
// RunServeScenario — machine epoch, queue service, governor re-plan and
// CoPart tick per epoch, exactly the product path.
double MeasureSloEpochsPerSec(double min_seconds) {
  ServeScenarioConfig config = Section63ServeScenario();
  config.lc_apps[0].arrival.kind = ArrivalKind::kPoisson;
  config.lc_apps[0].arrival.base_rate_rps = 120000.0;
  config.lc_apps[0].arrival.burst_phases.clear();
  config.duration_sec = 60.0;
  config.mode = ServeMode::kCopartSlo;
  const double epochs_per_run =
      config.duration_sec / config.control_period_sec;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    const ServeScenarioResult result = RunServeScenario(config);
    CHECK_EQ(result.samples.size(), static_cast<size_t>(epochs_per_run));
    epochs += static_cast<long>(epochs_per_run);
    elapsed = Elapsed(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

int Run(const std::string& json_path, double min_seconds) {
  const double requests_per_sec = MeasureRequestsPerSec(min_seconds);
  std::printf("serve: engine_requests_per_sec=%.0f\n", requests_per_sec);
  const double slo_epochs_per_sec = MeasureSloEpochsPerSec(min_seconds);
  std::printf("serve: slo_loop_epochs_per_sec=%.0f\n", slo_epochs_per_sec);

  // One result object per line so the smoke script can grep/awk it without
  // a JSON parser (same convention as bench_sim_throughput).
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(out, "  \"results\": [\n");
  std::fprintf(out,
               "    {\"point\": \"engine_requests_per_sec\", "
               "\"value\": %.1f},\n",
               requests_per_sec);
  std::fprintf(out,
               "    {\"point\": \"slo_loop_epochs_per_sec\", "
               "\"value\": %.1f}\n",
               slo_epochs_per_sec);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("serve: wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  double min_seconds = 0.25;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
      if (min_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --min-seconds\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--min-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }
  return copart::Run(json_path, min_seconds);
}
