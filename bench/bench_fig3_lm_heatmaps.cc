// Figure 3: performance impact of LLC and memory bandwidth partitioning on
// the LLC- and memory-bandwidth-sensitive benchmarks (SP, ON, FMM).
// Expected shape: gradients along BOTH axes, with multiple (ways, MBA)
// states giving similar performance (e.g. SP at (8w, 20%) vs (3w, 40%)).
#include <cstdio>

#include "bench/solo_heatmap_util.h"
#include "harness/heatmap.h"

int main(int argc, char** argv) {
  const copart::ParallelConfig parallel =
      copart::ParseThreadsFlag(argc, argv);
  std::printf("== Figure 3: LLC- & memory BW-sensitive benchmarks ==\n\n");
  copart::PrintSoloHeatmap(copart::Sp(), parallel);
  copart::PrintSoloHeatmap(copart::OceanNcp(), parallel);
  copart::PrintSoloHeatmap(copart::Fmm(), parallel);

  const copart::SoloHeatmap sp = copart::SweepSoloPerformance(
      copart::Sp(), copart::MachineConfig{}, 4, parallel);
  std::printf("SP multi-state equivalence: (8w,20%%)=%.3f vs (3w,40%%)=%.3f\n",
              sp.normalized_ips[7][1], sp.normalized_ips[2][3]);
  return 0;
}
