// Figure 3: performance impact of LLC and memory bandwidth partitioning on
// the LLC- and memory-bandwidth-sensitive benchmarks (SP, ON, FMM).
// Expected shape: gradients along BOTH axes, with multiple (ways, MBA)
// states giving similar performance (e.g. SP at (8w, 20%) vs (3w, 40%)).
#include <cstdio>

#include "bench/solo_heatmap_util.h"
#include "harness/heatmap.h"

int main() {
  std::printf("== Figure 3: LLC- & memory BW-sensitive benchmarks ==\n\n");
  copart::PrintSoloHeatmap(copart::Sp());
  copart::PrintSoloHeatmap(copart::OceanNcp());
  copart::PrintSoloHeatmap(copart::Fmm());

  const copart::SoloHeatmap sp =
      copart::SweepSoloPerformance(copart::Sp(), copart::MachineConfig{});
  std::printf("SP multi-state equivalence: (8w,20%%)=%.3f vs (3w,40%%)=%.3f\n",
              sp.normalized_ips[7][1], sp.normalized_ips[2][3]);
  return 0;
}
