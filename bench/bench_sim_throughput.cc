// Microbenchmarks of the simulation substrate itself: epoch-solve cost vs
// app count, the Che MRC solver, the shared-capacity fixed point (via
// overlapping masks), and the trace-driven cache's access rate. These
// quantify why the analytic epoch model is the right default (DESIGN.md §4)
// and guard against performance regressions in the hot paths the paper
// sweeps hammer.
#include <benchmark/benchmark.h>

#include "cache/way_partitioned_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "machine/simulated_machine.h"
#include "workload/workload.h"

namespace copart {
namespace {

void BM_MachineEpoch(benchmark::State& state) {
  const size_t num_apps = static_cast<size_t>(state.range(0));
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  for (auto _ : state) {
    machine.AdvanceTime(0.5);
    benchmark::DoNotOptimize(machine.now());
  }
}
BENCHMARK(BM_MachineEpoch)->Arg(2)->Arg(4)->Arg(6)->Unit(
    benchmark::kMicrosecond);

void BM_MachineEpochOverlappingMasks(benchmark::State& state) {
  // Full-mask sharing forces the occupancy fixed point to do real work.
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  for (const WorkloadDescriptor& descriptor :
       {Sp(), OceanNcp(), WaterNsquared(), Cg()}) {
    CHECK(machine.LaunchApp(descriptor, 4).ok());
  }
  for (auto _ : state) {
    machine.AdvanceTime(0.5);
    benchmark::DoNotOptimize(machine.now());
  }
}
BENCHMARK(BM_MachineEpochOverlappingMasks)->Unit(benchmark::kMicrosecond);

void BM_MissRatioCurve(benchmark::State& state) {
  const ReuseProfile& profile = Sp().reuse_profile;  // Needs the solver.
  uint64_t capacity = MiB(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.MissRatio(capacity));
    capacity = capacity % MiB(22) + MiB(2);
  }
}
BENCHMARK(BM_MissRatioCurve);

void BM_TraceCacheAccess(benchmark::State& state) {
  const LlcGeometry geometry{
      .total_bytes = MiB(22) / 64, .num_ways = 11, .line_bytes = 64};
  WayPartitionedCache cache(geometry, 2);
  cache.SetMask(0, WayMask::Contiguous(0, 6));
  cache.SetMask(1, WayMask::Contiguous(4, 7));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Access(static_cast<uint32_t>(rng.NextUint64(2)),
                     rng.NextUint64(MiB(1))));
  }
}
BENCHMARK(BM_TraceCacheAccess);

void BM_SoloFullResourceIps(benchmark::State& state) {
  MachineConfig config;
  SimulatedMachine machine(config);
  const WorkloadDescriptor descriptor = OceanNcp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.SoloFullResourceIps(descriptor, 4));
  }
}
BENCHMARK(BM_SoloFullResourceIps);

}  // namespace
}  // namespace copart

BENCHMARK_MAIN();
