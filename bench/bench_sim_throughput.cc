// Throughput of the simulation substrate itself: epochs/sec of the machine
// model in exact vs compiled MRC modes, plus microbenchmarks of the two
// MissRatio paths and the trace-driven cache. Every sweep in this repository
// is built out of these epochs, so this binary is the first point of the
// perf trajectory: it emits a machine-readable BENCH_sim_throughput.json
// (committed at the repo root as the baseline) and tools/run_perf_smoke.sh
// fails CI when epochs/sec regresses >20% against it.
//
// Flags:
//   --json=PATH         where to write the JSON report
//                       (default BENCH_sim_throughput.json in the CWD —
//                       run from the repo root to refresh the baseline)
//   --min-seconds=S     measurement time per data point (default 0.25)
//   --fault-injector    attach a FaultInjector with no points armed — pins
//                       the "compiled in but disabled" cost of the fault
//                       substrate (tools/run_perf_smoke.sh runs this mode
//                       against the same 20%% regression gate)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/compiled_mrc.h"
#include "cache/way_partitioned_cache.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/resource_manager.h"
#include "machine/simulated_machine.h"
#include "obs/obs.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

const char* ModeName(MrcMode mode) {
  return mode == MrcMode::kExact ? "exact" : "compiled";
}

struct ThroughputPoint {
  MrcMode mode;
  size_t num_apps;
  double epochs_per_sec;
};

// Epochs/sec of a consolidated machine: `num_apps` Table 2 apps, each in
// its own CLOS with the default full mask, so the shared-capacity fixed
// point does real work every epoch.
double MeasureEpochsPerSec(MrcMode mode, size_t num_apps, double min_seconds,
                           FaultInjector* injector) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.mrc_mode = mode;
  config.fault_injector = injector;  // Null unless --fault-injector.
  SimulatedMachine machine(config);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  // Warm up: compile the MRC tables and size the epoch scratch.
  for (int i = 0; i < 32; ++i) {
    machine.AdvanceTime(0.5);
  }

  using Clock = std::chrono::steady_clock;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 200; ++i) {
      machine.AdvanceTime(0.5);
    }
    epochs += 200;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

// Epochs/sec of the full managed control loop: machine + resctrl + PMC +
// resource manager, ticked every epoch. `obs` is forwarded to the manager,
// so the same measurement pins both the no-observability baseline and the
// attached-but-disabled configuration (tools/run_perf_smoke.sh holds their
// ratio under 2% — the "zero measurable cost when off" gate).
double MeasureManagedEpochsPerSec(size_t num_apps, double min_seconds,
                                  Observability* obs) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.mrc_mode = MrcMode::kCompiled;
  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  ResourceManager manager(&resctrl, &monitor, {});
  manager.SetObservability(obs);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    CHECK(manager.AddApp(*app).ok());
  }
  // Warm up past profiling and exploration into the idle steady state.
  for (int i = 0; i < 64; ++i) {
    machine.AdvanceTime(0.5);
    manager.Tick();
  }

  using Clock = std::chrono::steady_clock;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 200; ++i) {
      machine.AdvanceTime(0.5);
      manager.Tick();
    }
    epochs += 200;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

// Best-of-`rounds` managed epochs/sec, interleaving would-be-noisy host
// effects out of the comparison.
double BestManagedEpochsPerSec(size_t num_apps, double min_seconds,
                               Observability* obs, int rounds) {
  double best = 0.0;
  for (int i = 0; i < rounds; ++i) {
    const double eps = MeasureManagedEpochsPerSec(num_apps, min_seconds, obs);
    if (eps > best) {
      best = eps;
    }
  }
  return best;
}

// ns/query of one MissRatio path, swept over capacities like the epoch
// kernel would.
double MeasureMissRatioNs(MrcMode mode, double min_seconds) {
  const ReuseProfile& profile = Sp().reuse_profile;  // Needs the solver.
  (void)profile.MissRatio(MiB(2), mode);  // Warm the compiled table.
  using Clock = std::chrono::steady_clock;
  long queries = 0;
  double elapsed = 0.0;
  double sink = 0.0;
  uint64_t capacity = MiB(2);
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 1000; ++i) {
      sink += profile.MissRatio(capacity, mode);
      capacity = capacity % MiB(22) + MiB(2);
    }
    queries += 1000;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  if (sink < 0.0) {  // Defeat dead-code elimination.
    std::fprintf(stderr, "%f\n", sink);
  }
  return elapsed / static_cast<double>(queries) * 1e9;
}

int Run(const std::string& json_path, double min_seconds,
        bool with_injector) {
  // Armed with nothing, the injector must be free on the epoch path; the
  // smoke script compares this configuration against the same baseline.
  FaultInjector injector;
  FaultInjector* injector_ptr = with_injector ? &injector : nullptr;
  if (with_injector) {
    std::printf("sim_throughput: fault injector attached (no points armed)\n");
  }
  const std::vector<size_t> app_counts = {2, 4, 6};
  std::vector<ThroughputPoint> points;
  for (const MrcMode mode : {MrcMode::kExact, MrcMode::kCompiled}) {
    for (const size_t num_apps : app_counts) {
      const double eps =
          MeasureEpochsPerSec(mode, num_apps, min_seconds, injector_ptr);
      points.push_back({mode, num_apps, eps});
      std::printf("sim_throughput: mode=%s apps=%zu epochs_per_sec=%.0f\n",
                  ModeName(mode), num_apps, eps);
    }
  }
  const double exact_ns = MeasureMissRatioNs(MrcMode::kExact, min_seconds);
  const double compiled_ns =
      MeasureMissRatioNs(MrcMode::kCompiled, min_seconds);
  std::printf("miss_ratio_query: exact_ns=%.1f compiled_ns=%.1f\n",
              exact_ns, compiled_ns);

  // Managed control loop, no observability wired: the regression-gated
  // point. Then the same loop with a bundle attached but disabled — its
  // entire cost must be the null/enabled checks at the instrumented sites.
  const size_t managed_apps = 4;
  const double managed_eps =
      BestManagedEpochsPerSec(managed_apps, min_seconds, nullptr, 3);
  std::printf("sim_throughput: mode=managed apps=%zu epochs_per_sec=%.0f\n",
              managed_apps, managed_eps);
  Observability disabled_obs;
  disabled_obs.set_enabled(false);
  const double disabled_eps =
      BestManagedEpochsPerSec(managed_apps, min_seconds, &disabled_obs, 3);
  const double obs_overhead_pct =
      managed_eps > 0.0 ? (managed_eps / disabled_eps - 1.0) * 100.0 : 0.0;
  std::printf(
      "sim_throughput: managed_obs_disabled epochs_per_sec=%.0f "
      "overhead_pct=%.2f\n",
      disabled_eps, obs_overhead_pct);

  // Speedup at the heaviest consolidation (the sweep-relevant regime).
  double exact_eps = 0.0;
  double compiled_eps = 0.0;
  for (const ThroughputPoint& point : points) {
    if (point.num_apps == app_counts.back()) {
      (point.mode == MrcMode::kExact ? exact_eps : compiled_eps) =
          point.epochs_per_sec;
    }
  }
  const double speedup = exact_eps > 0.0 ? compiled_eps / exact_eps : 0.0;
  std::printf("sim_throughput: speedup_compiled_over_exact=%.2f\n", speedup);

  // One result object per line so the smoke script can grep/awk it without
  // a JSON parser.
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(
        out,
        "    {\"mode\": \"%s\", \"apps\": %zu, \"epochs_per_sec\": %.1f}%s\n",
        ModeName(points[i].mode), points[i].num_apps,
        points[i].epochs_per_sec, i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(out, "    ,{\"mode\": \"managed\", \"apps\": %zu, "
                    "\"epochs_per_sec\": %.1f}\n",
               managed_apps, managed_eps);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"miss_ratio_query_ns\": "
                    "{\"exact\": %.1f, \"compiled\": %.1f},\n",
               exact_ns, compiled_ns);
  std::fprintf(out, "  \"obs_disabled_overhead_pct\": %.2f,\n",
               obs_overhead_pct);
  std::fprintf(out, "  \"speedup_compiled_over_exact\": %.2f\n}\n", speedup);
  std::fclose(out);
  std::printf("sim_throughput: wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  double min_seconds = 0.25;
  bool with_injector = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
      if (min_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --min-seconds\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--fault-injector") == 0) {
      with_injector = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--json=PATH] [--min-seconds=S] [--fault-injector]\n",
          argv[0]);
      return 2;
    }
  }
  return copart::Run(json_path, min_seconds, with_injector);
}
