// Throughput of the simulation substrate itself: epochs/sec of the machine
// model in exact vs compiled MRC modes, plus microbenchmarks of the two
// MissRatio paths and the what-if evaluator. Every sweep in this repository
// is built out of these epochs, so this binary is the first point of the
// perf trajectory: it emits a machine-readable BENCH_sim_throughput.json
// (committed at the repo root as the baseline) and tools/run_perf_smoke.sh
// fails CI when epochs/sec regresses >20% against it.
//
// Flags:
//   --json=PATH         where to write the JSON report
//                       (default BENCH_sim_throughput.json in the CWD —
//                       run from the repo root to refresh the baseline)
//   --min-seconds=S     measurement time per data point (default 0.25)
//   --fault-injector    attach a FaultInjector with no points armed — pins
//                       the "compiled in but disabled" cost of the fault
//                       substrate (tools/run_perf_smoke.sh runs this mode
//                       against the same 20%% regression gate)
//   --scalar-check      no measurement: lockstep-run the vectorized,
//                       scalar and incremental epoch kernels over a seeded
//                       mutation schedule (mask/MBA/CLOS/required flips,
//                       phase crossings, snapshot/rollback, what-if parity)
//                       and exit non-zero on any bitwise divergence.
//                       tools/run_perf_smoke.sh runs this so vectorization
//                       can never silently change results.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/compiled_mrc.h"
#include "cache/way_mask.h"
#include "cache/way_partitioned_cache.h"
#include "common/fault_injector.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/resource_manager.h"
#include "core/system_state.h"
#include "harness/whatif.h"
#include "machine/simulated_machine.h"
#include "membw/mba.h"
#include "obs/obs.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

const char* ModeName(MrcMode mode) {
  return mode == MrcMode::kExact ? "exact" : "compiled";
}

struct ThroughputPoint {
  const char* mode;
  size_t num_apps;
  double epochs_per_sec;
};

// Epochs/sec of a consolidated machine: `num_apps` Table 2 apps, each in
// its own CLOS with the default full mask, so the shared-capacity fixed
// point does real work every epoch. `incremental` off forces the full
// coupled solve every epoch (the historical meaning of these points);
// on, steady-state epochs take the replay fast path.
double MeasureEpochsPerSec(MrcMode mode, size_t num_apps, double min_seconds,
                           FaultInjector* injector, bool incremental) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.mrc_mode = mode;
  config.incremental_epochs = incremental;
  config.fault_injector = injector;  // Null unless --fault-injector.
  SimulatedMachine machine(config);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  // Warm up: compile the MRC tables and size the epoch scratch.
  for (int i = 0; i < 32; ++i) {
    machine.AdvanceTime(0.5);
  }

  using Clock = std::chrono::steady_clock;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 200; ++i) {
      machine.AdvanceTime(0.5);
    }
    epochs += 200;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

// Epochs/sec of the full managed control loop: machine + resctrl + PMC +
// resource manager, ticked every epoch. `obs` is forwarded to the manager,
// so the same measurement pins both the no-observability baseline and the
// attached-but-disabled configuration (tools/run_perf_smoke.sh holds their
// ratio under 2% — the "zero measurable cost when off" gate).
double MeasureManagedEpochsPerSec(size_t num_apps, double min_seconds,
                                  Observability* obs,
                                  const PmcSensingParams* sensing,
                                  bool incremental,
                                  const char* policy = nullptr) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.mrc_mode = MrcMode::kCompiled;
  config.incremental_epochs = incremental;
  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  if (sensing != nullptr) {
    monitor.ConfigureSensing(*sensing);
  }
  ResourceManagerParams params;
  if (policy != nullptr) {
    params.partition_policy = policy;
  }
  ResourceManager manager(&resctrl, &monitor, params);
  manager.SetObservability(obs);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    CHECK(manager.AddApp(*app).ok());
  }
  // Warm up past profiling and exploration into the idle steady state.
  for (int i = 0; i < 64; ++i) {
    machine.AdvanceTime(0.5);
    manager.Tick();
  }

  using Clock = std::chrono::steady_clock;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 200; ++i) {
      machine.AdvanceTime(0.5);
      manager.Tick();
    }
    epochs += 200;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

// ns/query of one MissRatio path, swept over capacities like the epoch
// kernel would.
double MeasureMissRatioNs(MrcMode mode, double min_seconds) {
  const ReuseProfile& profile = Sp().reuse_profile;  // Needs the solver.
  (void)profile.MissRatio(MiB(2), mode);  // Warm the compiled table.
  using Clock = std::chrono::steady_clock;
  long queries = 0;
  double elapsed = 0.0;
  double sink = 0.0;
  uint64_t capacity = MiB(2);
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 1000; ++i) {
      sink += profile.MissRatio(capacity, mode);
      capacity = capacity % MiB(22) + MiB(2);
    }
    queries += 1000;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  if (sink < 0.0) {  // Defeat dead-code elimination.
    std::fprintf(stderr, "%f\n", sink);
  }
  return elapsed / static_cast<double>(queries) * 1e9;
}

// The deterministic candidate-allocation schedule both what-if measurements
// score. It mirrors how the repo's heaviest what-if consumer
// (harness/static_oracle.cc) actually walks states: pick a way composition,
// then sweep an MBA coordinate-descent ladder app by app — so the large
// majority of consecutive candidates differ only in one MBA level. A
// snapshot-reusing evaluator can serve those from the machine's cached
// capacity fixed point; a fresh machine per candidate pays full price
// either way.
std::vector<SystemState> WhatIfCandidates(size_t num_apps) {
  ResourcePool pool;  // Whole machine: all ways, MBA 100.
  std::vector<uint32_t> base(num_apps, pool.num_ways /
                                           static_cast<uint32_t>(num_apps));
  for (size_t i = 0; i < pool.num_ways % num_apps; ++i) {
    ++base[i];
  }
  std::vector<SystemState> candidates;
  for (size_t rotation = 0; rotation < num_apps; ++rotation) {
    std::vector<AppAllocation> allocations(num_apps);
    for (size_t i = 0; i < num_apps; ++i) {
      allocations[i].llc_ways = base[(i + rotation) % num_apps];
      allocations[i].mba_level = MbaLevel::FromPercentChecked(100);
    }
    for (size_t i = 0; i < num_apps; ++i) {
      for (uint32_t percent = 10; percent <= 100; percent += 10) {
        allocations[i].mba_level = MbaLevel::FromPercentChecked(percent);
        candidates.emplace_back(pool, allocations);
      }
    }
  }
  return candidates;
}

// Candidate evaluations/sec of the what-if oracle. `use_snapshot` scores
// through one WhatIfEvaluator (snapshot/rollback, machine built once);
// off reconstructs a fresh machine per candidate via PredictOutcome —
// the pre-snapshot cost this bench exists to retire.
double MeasureWhatIfEvalsPerSec(bool use_snapshot, double min_seconds) {
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  const size_t num_apps = 4;
  const std::vector<WorkloadDescriptor> workloads(
      registry.begin(), registry.begin() + static_cast<ptrdiff_t>(num_apps));
  const std::vector<SystemState> candidates = WhatIfCandidates(num_apps);
  const MachineConfig config;
  double sink = 0.0;
  using Clock = std::chrono::steady_clock;
  long evals = 0;
  double elapsed = 0.0;
  if (use_snapshot) {
    WhatIfEvaluator evaluator(workloads, config, /*cores_per_app=*/2);
    WhatIfOutcome outcome;
    // Warm the evaluator (compiles MRC tables, sizes outcome storage).
    evaluator.EvaluateInto(candidates[0], &outcome);
    const Clock::time_point start = Clock::now();
    do {
      for (const SystemState& candidate : candidates) {
        evaluator.EvaluateInto(candidate, &outcome);
        sink += outcome.unfairness;
      }
      evals += static_cast<long>(candidates.size());
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
  } else {
    sink += PredictOutcome(workloads, candidates[0], config, 2).unfairness;
    const Clock::time_point start = Clock::now();
    do {
      for (const SystemState& candidate : candidates) {
        sink += PredictOutcome(workloads, candidate, config, 2).unfairness;
      }
      evals += static_cast<long>(candidates.size());
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
  }
  if (sink < 0.0) {  // Defeat dead-code elimination.
    std::fprintf(stderr, "%f\n", sink);
  }
  return static_cast<double>(evals) / elapsed;
}

// --- --scalar-check: bitwise equivalence of the epoch kernels ---

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool CompareApp(const char* what, AppId id, const SimulatedMachine& reference,
                const SimulatedMachine& candidate) {
  const AppEpochSnapshot& re = reference.LastEpoch(id);
  const AppEpochSnapshot& ce = candidate.LastEpoch(id);
  const AppCounters& rc = reference.Counters(id);
  const AppCounters& cc = candidate.Counters(id);
  const bool ok =
      SameBits(re.ips, ce.ips) &&
      SameBits(re.ips_capability, ce.ips_capability) &&
      SameBits(re.llc_accesses_per_sec, ce.llc_accesses_per_sec) &&
      SameBits(re.llc_misses_per_sec, ce.llc_misses_per_sec) &&
      SameBits(re.miss_ratio, ce.miss_ratio) &&
      SameBits(re.effective_capacity_bytes, ce.effective_capacity_bytes) &&
      SameBits(re.bandwidth_demand_bytes_per_sec,
               ce.bandwidth_demand_bytes_per_sec) &&
      SameBits(re.bandwidth_grant_bytes_per_sec,
               ce.bandwidth_grant_bytes_per_sec) &&
      SameBits(rc.instructions, cc.instructions) &&
      SameBits(rc.llc_accesses, cc.llc_accesses) &&
      SameBits(rc.llc_misses, cc.llc_misses) &&
      SameBits(rc.memory_bytes, cc.memory_bytes);
  if (!ok) {
    std::fprintf(stderr,
                 "scalar-check: MISMATCH [%s] app=%u ips %.17g vs %.17g\n",
                 what, id.value(), re.ips, ce.ips);
  }
  return ok;
}

// Lockstep-runs three machines — vectorized+incremental (the default),
// vectorized+full-solve, and scalar+full-solve — through a seeded schedule
// of partitioning churn and phase crossings, comparing every epoch output
// bitwise. Also exercises snapshot/rollback replay and what-if parity.
int RunScalarCheck() {
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  std::vector<WorkloadDescriptor> workloads(registry.begin(),
                                            registry.begin() + 3);
  workloads.push_back(PhasedScanCompute());

  auto make_machine = [&](EpochKernel kernel, bool incremental) {
    MachineConfig config;
    config.ips_noise_sigma = 0.01;  // Exercise the noise stream too.
    config.epoch_kernel = kernel;
    config.incremental_epochs = incremental;
    return SimulatedMachine(config);
  };
  SimulatedMachine fast = make_machine(EpochKernel::kVectorized, true);
  SimulatedMachine full = make_machine(EpochKernel::kVectorized, false);
  SimulatedMachine scalar = make_machine(EpochKernel::kScalar, false);
  SimulatedMachine* machines[] = {&fast, &full, &scalar};

  std::vector<AppId> apps;
  for (size_t i = 0; i < workloads.size(); ++i) {
    for (SimulatedMachine* machine : machines) {
      Result<AppId> app = machine->LaunchApp(workloads[i], 2);
      CHECK(app.ok());
      machine->AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
      if (machine == &fast) {
        apps.push_back(*app);
      }
    }
  }

  const uint32_t num_ways = fast.config().llc.num_ways;
  Rng rng(0xD15EA5EULL);
  int failures = 0;
  for (int epoch = 0; epoch < 2000; ++epoch) {
    // Seeded partitioning churn, applied identically to all machines. Low
    // rates keep long steady stretches so the incremental fast path is
    // genuinely exercised between mutations.
    if (rng.NextBool(0.04)) {
      const uint32_t clos =
          static_cast<uint32_t>(rng.NextInt(1, static_cast<int64_t>(
                                                   workloads.size())));
      const uint32_t first =
          static_cast<uint32_t>(rng.NextInt(0, num_ways - 1));
      const uint32_t count = static_cast<uint32_t>(
          rng.NextInt(1, static_cast<int64_t>(num_ways - first)));
      const WayMask mask = WayMask::Contiguous(first, count);
      for (SimulatedMachine* machine : machines) {
        machine->SetClosWayMask(clos, mask);
      }
    }
    if (rng.NextBool(0.04)) {
      const uint32_t clos =
          static_cast<uint32_t>(rng.NextInt(1, static_cast<int64_t>(
                                                   workloads.size())));
      const MbaLevel level = MbaLevel::FromPercentChecked(
          static_cast<uint32_t>(rng.NextInt(1, 10)) * 10);
      for (SimulatedMachine* machine : machines) {
        machine->SetClosMbaLevel(clos, level);
      }
    }
    if (rng.NextBool(0.02)) {
      const std::optional<double> cap =
          rng.NextBool(0.5) ? std::optional<double>(1e9) : std::nullopt;
      for (SimulatedMachine* machine : machines) {
        machine->SetAppRequiredIps(apps[0], cap);
      }
    }
    for (SimulatedMachine* machine : machines) {
      machine->AdvanceTime(0.01);  // Small dt: PhasedScanCompute crosses.
    }
    for (const AppId id : apps) {
      if (!CompareApp("vectorized-vs-full", id, full, fast) ||
          !CompareApp("vectorized-vs-scalar", id, full, scalar)) {
        ++failures;
      }
    }
    if (failures > 0) {
      std::fprintf(stderr, "scalar-check: diverged at epoch %d\n", epoch);
      return 1;
    }
  }
  CHECK_GT(fast.full_solves(), 0u);
  CHECK_LT(fast.full_solves(), full.full_solves())
      << "incremental fast path never engaged";
  CHECK_GT(fast.partial_solves(), 0u)
      << "bandwidth-tier partial solve never engaged";

  // Snapshot/rollback replay: captured mid-run state must reproduce the
  // exact epochs a non-diverged machine produces.
  const MachineSnapshot snap = fast.Snapshot();
  std::vector<AppEpochSnapshot> replay;
  for (int epoch = 0; epoch < 10; ++epoch) {
    fast.AdvanceTime(0.01);
    for (const AppId id : apps) {
      replay.push_back(fast.LastEpoch(id));
    }
  }
  fast.Restore(snap);
  size_t cursor = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    fast.AdvanceTime(0.01);
    for (const AppId id : apps) {
      const AppEpochSnapshot& expect = replay[cursor++];
      if (!SameBits(expect.ips, fast.LastEpoch(id).ips)) {
        std::fprintf(stderr,
                     "scalar-check: MISMATCH [rollback-replay] epoch %d\n",
                     epoch);
        return 1;
      }
    }
  }

  // What-if parity: the snapshot evaluator must match fresh PredictOutcome.
  const std::vector<WorkloadDescriptor> whatif_workloads(
      registry.begin(), registry.begin() + 4);
  const std::vector<SystemState> candidates = WhatIfCandidates(4);
  WhatIfEvaluator evaluator(whatif_workloads, MachineConfig{}, 2);
  for (const SystemState& candidate : candidates) {
    const WhatIfOutcome fresh =
        PredictOutcome(whatif_workloads, candidate, MachineConfig{}, 2);
    const WhatIfOutcome reused = evaluator.Evaluate(candidate);
    for (size_t i = 0; i < fresh.predicted_ips.size(); ++i) {
      if (!SameBits(fresh.predicted_ips[i], reused.predicted_ips[i]) ||
          !SameBits(fresh.slowdowns[i], reused.slowdowns[i])) {
        std::fprintf(stderr, "scalar-check: MISMATCH [whatif] app=%zu\n", i);
        return 1;
      }
    }
    if (!SameBits(fresh.unfairness, reused.unfairness)) {
      std::fprintf(stderr, "scalar-check: MISMATCH [whatif] unfairness\n");
      return 1;
    }
  }

  std::printf(
      "scalar-check: OK (2000 churned epochs bit-identical across "
      "vectorized/scalar/incremental kernels; %llu fast-path epochs; "
      "rollback replay and what-if parity exact)\n",
      static_cast<unsigned long long>(full.full_solves() -
                                      fast.full_solves()));
  return 0;
}

int Run(const std::string& json_path, double min_seconds,
        bool with_injector) {
  // Armed with nothing, the injector must be free on the epoch path; the
  // smoke script compares this configuration against the same baseline.
  FaultInjector injector;
  FaultInjector* injector_ptr = with_injector ? &injector : nullptr;
  if (with_injector) {
    std::printf("sim_throughput: fault injector attached (no points armed)\n");
  }
  const std::vector<size_t> app_counts = {2, 4, 6};
  std::vector<ThroughputPoint> points;
  for (const MrcMode mode : {MrcMode::kExact, MrcMode::kCompiled}) {
    for (const size_t num_apps : app_counts) {
      // Best-of-3: a co-tenant burst on a small CI host can halve a single
      // window, but not three spaced ones (same rationale as the paired
      // managed rounds below). Incremental off: these points price the
      // full coupled solve, their meaning since PR 2.
      double eps = 0.0;
      for (int round = 0; round < 3; ++round) {
        eps = std::max(
            eps, MeasureEpochsPerSec(mode, num_apps, min_seconds,
                                     injector_ptr, /*incremental=*/false));
      }
      points.push_back({ModeName(mode), num_apps, eps});
      std::printf("sim_throughput: mode=%s apps=%zu epochs_per_sec=%.0f\n",
                  ModeName(mode), num_apps, eps);
    }
  }
  // The machine-only fast path: steady-state epochs replaying the cached
  // fixed point (ROADMAP's "10M epochs/sec" trajectory point).
  {
    double eps = 0.0;
    for (int round = 0; round < 3; ++round) {
      eps = std::max(eps, MeasureEpochsPerSec(MrcMode::kCompiled, 4,
                                              min_seconds, injector_ptr,
                                              /*incremental=*/true));
    }
    points.push_back({"compiled_incremental", 4, eps});
    std::printf(
        "sim_throughput: mode=compiled_incremental apps=4 "
        "epochs_per_sec=%.0f\n",
        eps);
  }
  const double exact_ns = MeasureMissRatioNs(MrcMode::kExact, min_seconds);
  const double compiled_ns =
      MeasureMissRatioNs(MrcMode::kCompiled, min_seconds);
  std::printf("miss_ratio_query: exact_ns=%.1f compiled_ns=%.1f\n",
              exact_ns, compiled_ns);

  // Managed control loop in six configurations:
  //   managed          — the default config (incremental fast path on), no
  //                      observability, no sensing: the gated headline,
  //                      also held to an absolute floor by the smoke script;
  //   managed_incremental
  //                    — incremental explicitly on; pins the fast-path
  //                      configuration even if defaults ever change;
  //   managed_full_solve
  //                    — incremental off, a full coupled solve every epoch.
  //                      The *base* of every overhead ratio below: the
  //                      obs/sensing gates price instrumentation against a
  //                      solving tick (their meaning since PR 4/6), not
  //                      against the ~100ns replay tick, which would turn
  //                      any fixed per-tick cost into tens of percent;
  //   obs-disabled     — full solve + an Observability bundle attached but
  //                      disabled, so its entire cost must be the
  //                      null/enabled checks at the instrumented sites
  //                      (smoke gate: < 2%);
  //   sensing          — full solve + the estimator on the sample path at
  //                      the default sampling budget, noise model off
  //                      (smoke gate: < 10%);
  //   sensing-noisy    — full sensing realism (estimator + lognormal
  //                      counter noise + jitter + stale repeats).
  //                      Informational, not gated.
  // Rounds are INTERLEAVED across the configurations and every overhead is
  // a PAIRED ratio against the same round's base run, reported as the
  // minimum over rounds: the smoke script gates the ratios, and on a small
  // CI host another process's burst can depress any single measurement
  // window by 10%+ — but it cannot depress every round, while a real
  // hot-path regression shows up in all of them. Epochs/sec points are
  // best-of-rounds as usual.
  const size_t managed_apps = 4;
  Observability disabled_obs;
  disabled_obs.set_enabled(false);
  PmcSensingParams sensing;
  sensing.enabled = true;
  sensing.noise_sigma = 0.0;
  sensing.interval_jitter = 0.0;
  sensing.stale_probability = 0.0;
  PmcSensingParams noisy;
  noisy.enabled = true;
  double managed_eps = 0.0;
  double incremental_eps = 0.0;
  double full_solve_eps = 0.0;
  double disabled_eps = 0.0;
  double sensing_eps = 0.0;
  double noisy_eps = 0.0;
  double obs_overhead_pct = 0.0;
  double sensing_overhead_pct = 0.0;
  double noisy_overhead_pct = 0.0;
  double incremental_speedup = 0.0;
  bool have_overheads = false;
  for (int round = 0; round < 5; ++round) {
    const double m = MeasureManagedEpochsPerSec(
        managed_apps, min_seconds, nullptr, nullptr, /*incremental=*/true);
    const double mi = MeasureManagedEpochsPerSec(
        managed_apps, min_seconds, nullptr, nullptr, /*incremental=*/true);
    const double f = MeasureManagedEpochsPerSec(
        managed_apps, min_seconds, nullptr, nullptr, /*incremental=*/false);
    const double d = MeasureManagedEpochsPerSec(
        managed_apps, min_seconds, &disabled_obs, nullptr,
        /*incremental=*/false);
    const double s = MeasureManagedEpochsPerSec(
        managed_apps, min_seconds, nullptr, &sensing, /*incremental=*/false);
    const double n = MeasureManagedEpochsPerSec(
        managed_apps, min_seconds, nullptr, &noisy, /*incremental=*/false);
    managed_eps = std::max(managed_eps, m);
    incremental_eps = std::max(incremental_eps, mi);
    full_solve_eps = std::max(full_solve_eps, f);
    disabled_eps = std::max(disabled_eps, d);
    sensing_eps = std::max(sensing_eps, s);
    noisy_eps = std::max(noisy_eps, n);
    const double obs_pct = d > 0.0 ? (f / d - 1.0) * 100.0 : 0.0;
    const double sensing_pct = s > 0.0 ? (f / s - 1.0) * 100.0 : 0.0;
    const double noisy_pct = n > 0.0 ? (f / n - 1.0) * 100.0 : 0.0;
    const double inc_speedup = f > 0.0 ? mi / f : 0.0;
    if (!have_overheads) {
      have_overheads = true;
      obs_overhead_pct = obs_pct;
      sensing_overhead_pct = sensing_pct;
      noisy_overhead_pct = noisy_pct;
      incremental_speedup = inc_speedup;
    } else {
      obs_overhead_pct = std::min(obs_overhead_pct, obs_pct);
      sensing_overhead_pct = std::min(sensing_overhead_pct, sensing_pct);
      noisy_overhead_pct = std::min(noisy_overhead_pct, noisy_pct);
      incremental_speedup = std::min(incremental_speedup, inc_speedup);
    }
  }
  std::printf("sim_throughput: mode=managed apps=%zu epochs_per_sec=%.0f\n",
              managed_apps, managed_eps);
  std::printf(
      "sim_throughput: mode=managed_incremental apps=%zu "
      "epochs_per_sec=%.0f speedup_vs_full_solve=%.2f\n",
      managed_apps, incremental_eps, incremental_speedup);
  std::printf(
      "sim_throughput: mode=managed_full_solve apps=%zu "
      "epochs_per_sec=%.0f\n",
      managed_apps, full_solve_eps);

  // The clustered-policy control loop (LFOC+ driving shared-CLOS slots
  // through the same transactional actuation path). Gated like every other
  // managed point: the pluggable-policy dispatch and the cluster slot
  // bookkeeping must not tax the tick.
  double clustered_eps = 0.0;
  for (int round = 0; round < 3; ++round) {
    clustered_eps = std::max(
        clustered_eps,
        MeasureManagedEpochsPerSec(managed_apps, min_seconds, nullptr,
                                   nullptr, /*incremental=*/true, "lfoc+"));
  }
  std::printf(
      "sim_throughput: mode=managed_clustered apps=%zu epochs_per_sec=%.0f\n",
      managed_apps, clustered_eps);
  std::printf(
      "sim_throughput: managed_obs_disabled epochs_per_sec=%.0f "
      "overhead_pct=%.2f\n",
      disabled_eps, obs_overhead_pct);
  std::printf(
      "sim_throughput: mode=managed_sensing apps=%zu epochs_per_sec=%.0f "
      "overhead_pct=%.2f\n",
      managed_apps, sensing_eps, sensing_overhead_pct);
  std::printf(
      "sim_throughput: mode=managed_sensing_noisy apps=%zu "
      "epochs_per_sec=%.0f overhead_pct=%.2f\n",
      managed_apps, noisy_eps, noisy_overhead_pct);

  // What-if oracle: candidate evaluations/sec, fresh machine per candidate
  // vs snapshot/rollback through one WhatIfEvaluator (gated >= 10x).
  double whatif_fresh = 0.0;
  double whatif_snapshot = 0.0;
  for (int round = 0; round < 3; ++round) {
    whatif_fresh = std::max(
        whatif_fresh, MeasureWhatIfEvalsPerSec(false, min_seconds));
    whatif_snapshot = std::max(
        whatif_snapshot, MeasureWhatIfEvalsPerSec(true, min_seconds));
  }
  const double whatif_speedup =
      whatif_fresh > 0.0 ? whatif_snapshot / whatif_fresh : 0.0;
  std::printf(
      "sim_throughput: whatif fresh_evals_per_sec=%.0f "
      "snapshot_evals_per_sec=%.0f speedup=%.2f\n",
      whatif_fresh, whatif_snapshot, whatif_speedup);

  // Speedup at the heaviest consolidation (the sweep-relevant regime).
  double exact_eps = 0.0;
  double compiled_eps = 0.0;
  for (const ThroughputPoint& point : points) {
    if (point.num_apps == app_counts.back()) {
      if (std::strcmp(point.mode, "exact") == 0) {
        exact_eps = point.epochs_per_sec;
      } else if (std::strcmp(point.mode, "compiled") == 0) {
        compiled_eps = point.epochs_per_sec;
      }
    }
  }
  const double speedup = exact_eps > 0.0 ? compiled_eps / exact_eps : 0.0;
  std::printf("sim_throughput: speedup_compiled_over_exact=%.2f\n", speedup);

  // One result object per line so the smoke script can grep/sed it without
  // a JSON parser.
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  JsonWriter writer(out);
  writer.BeginObject();
  writer.String("bench", "sim_throughput");
  writer.BeginArray("results");
  auto result_point = [&writer](const char* mode, size_t apps, double eps) {
    writer.BeginInlineObject();
    writer.String("mode", mode);
    writer.Uint("apps", apps);
    writer.Double("epochs_per_sec", eps, 1);
    writer.EndInlineObject();
  };
  for (const ThroughputPoint& point : points) {
    result_point(point.mode, point.num_apps, point.epochs_per_sec);
  }
  result_point("managed", managed_apps, managed_eps);
  result_point("managed_incremental", managed_apps, incremental_eps);
  result_point("managed_clustered", managed_apps, clustered_eps);
  result_point("managed_full_solve", managed_apps, full_solve_eps);
  result_point("managed_sensing", managed_apps, sensing_eps);
  result_point("managed_sensing_noisy", managed_apps, noisy_eps);
  writer.EndArray();
  writer.BeginInlineObject("miss_ratio_query_ns");
  writer.Double("exact", exact_ns, 1);
  writer.Double("compiled", compiled_ns, 1);
  writer.EndInlineObject();
  writer.Double("obs_disabled_overhead_pct", obs_overhead_pct, 2);
  writer.Double("sensing_overhead_pct", sensing_overhead_pct, 2);
  writer.Double("sensing_noisy_overhead_pct", noisy_overhead_pct, 2);
  writer.Double("managed_incremental_speedup", incremental_speedup, 2);
  writer.Double("whatif_fresh_evals_per_sec", whatif_fresh, 1);
  writer.Double("whatif_snapshot_evals_per_sec", whatif_snapshot, 1);
  writer.Double("whatif_snapshot_speedup", whatif_speedup, 2);
  writer.Double("speedup_compiled_over_exact", speedup, 2);
  writer.EndDocument();
  std::fclose(out);
  std::printf("sim_throughput: wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  double min_seconds = 0.25;
  bool with_injector = false;
  bool scalar_check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
      if (min_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --min-seconds\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--fault-injector") == 0) {
      with_injector = true;
    } else if (std::strcmp(arg, "--scalar-check") == 0) {
      scalar_check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--min-seconds=S] "
                   "[--fault-injector] [--scalar-check]\n",
                   argv[0]);
      return 2;
    }
  }
  if (scalar_check) {
    return copart::RunScalarCheck();
  }
  return copart::Run(json_path, min_seconds, with_injector);
}
