// Throughput of the simulation substrate itself: epochs/sec of the machine
// model in exact vs compiled MRC modes, plus microbenchmarks of the two
// MissRatio paths and the trace-driven cache. Every sweep in this repository
// is built out of these epochs, so this binary is the first point of the
// perf trajectory: it emits a machine-readable BENCH_sim_throughput.json
// (committed at the repo root as the baseline) and tools/run_perf_smoke.sh
// fails CI when epochs/sec regresses >20% against it.
//
// Flags:
//   --json=PATH         where to write the JSON report
//                       (default BENCH_sim_throughput.json in the CWD —
//                       run from the repo root to refresh the baseline)
//   --min-seconds=S     measurement time per data point (default 0.25)
//   --fault-injector    attach a FaultInjector with no points armed — pins
//                       the "compiled in but disabled" cost of the fault
//                       substrate (tools/run_perf_smoke.sh runs this mode
//                       against the same 20%% regression gate)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/compiled_mrc.h"
#include "cache/way_partitioned_cache.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/resource_manager.h"
#include "machine/simulated_machine.h"
#include "obs/obs.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

const char* ModeName(MrcMode mode) {
  return mode == MrcMode::kExact ? "exact" : "compiled";
}

struct ThroughputPoint {
  MrcMode mode;
  size_t num_apps;
  double epochs_per_sec;
};

// Epochs/sec of a consolidated machine: `num_apps` Table 2 apps, each in
// its own CLOS with the default full mask, so the shared-capacity fixed
// point does real work every epoch.
double MeasureEpochsPerSec(MrcMode mode, size_t num_apps, double min_seconds,
                           FaultInjector* injector) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.mrc_mode = mode;
  config.fault_injector = injector;  // Null unless --fault-injector.
  SimulatedMachine machine(config);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
  }
  // Warm up: compile the MRC tables and size the epoch scratch.
  for (int i = 0; i < 32; ++i) {
    machine.AdvanceTime(0.5);
  }

  using Clock = std::chrono::steady_clock;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 200; ++i) {
      machine.AdvanceTime(0.5);
    }
    epochs += 200;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

// Epochs/sec of the full managed control loop: machine + resctrl + PMC +
// resource manager, ticked every epoch. `obs` is forwarded to the manager,
// so the same measurement pins both the no-observability baseline and the
// attached-but-disabled configuration (tools/run_perf_smoke.sh holds their
// ratio under 2% — the "zero measurable cost when off" gate).
double MeasureManagedEpochsPerSec(size_t num_apps, double min_seconds,
                                  Observability* obs,
                                  const PmcSensingParams* sensing = nullptr) {
  MachineConfig config;
  config.ips_noise_sigma = 0.0;
  config.mrc_mode = MrcMode::kCompiled;
  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  if (sensing != nullptr) {
    monitor.ConfigureSensing(*sensing);
  }
  ResourceManager manager(&resctrl, &monitor, {});
  manager.SetObservability(obs);
  const std::vector<WorkloadDescriptor> registry = AllTable2Benchmarks();
  for (size_t i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(registry[i % registry.size()], 2);
    CHECK(app.ok());
    CHECK(manager.AddApp(*app).ok());
  }
  // Warm up past profiling and exploration into the idle steady state.
  for (int i = 0; i < 64; ++i) {
    machine.AdvanceTime(0.5);
    manager.Tick();
  }

  using Clock = std::chrono::steady_clock;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 200; ++i) {
      machine.AdvanceTime(0.5);
      manager.Tick();
    }
    epochs += 200;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

// ns/query of one MissRatio path, swept over capacities like the epoch
// kernel would.
double MeasureMissRatioNs(MrcMode mode, double min_seconds) {
  const ReuseProfile& profile = Sp().reuse_profile;  // Needs the solver.
  (void)profile.MissRatio(MiB(2), mode);  // Warm the compiled table.
  using Clock = std::chrono::steady_clock;
  long queries = 0;
  double elapsed = 0.0;
  double sink = 0.0;
  uint64_t capacity = MiB(2);
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 1000; ++i) {
      sink += profile.MissRatio(capacity, mode);
      capacity = capacity % MiB(22) + MiB(2);
    }
    queries += 1000;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  if (sink < 0.0) {  // Defeat dead-code elimination.
    std::fprintf(stderr, "%f\n", sink);
  }
  return elapsed / static_cast<double>(queries) * 1e9;
}

int Run(const std::string& json_path, double min_seconds,
        bool with_injector) {
  // Armed with nothing, the injector must be free on the epoch path; the
  // smoke script compares this configuration against the same baseline.
  FaultInjector injector;
  FaultInjector* injector_ptr = with_injector ? &injector : nullptr;
  if (with_injector) {
    std::printf("sim_throughput: fault injector attached (no points armed)\n");
  }
  const std::vector<size_t> app_counts = {2, 4, 6};
  std::vector<ThroughputPoint> points;
  for (const MrcMode mode : {MrcMode::kExact, MrcMode::kCompiled}) {
    for (const size_t num_apps : app_counts) {
      // Best-of-3: a co-tenant burst on a small CI host can halve a single
      // window, but not three spaced ones (same rationale as the paired
      // managed rounds below).
      double eps = 0.0;
      for (int round = 0; round < 3; ++round) {
        eps = std::max(
            eps, MeasureEpochsPerSec(mode, num_apps, min_seconds,
                                     injector_ptr));
      }
      points.push_back({mode, num_apps, eps});
      std::printf("sim_throughput: mode=%s apps=%zu epochs_per_sec=%.0f\n",
                  ModeName(mode), num_apps, eps);
    }
  }
  const double exact_ns = MeasureMissRatioNs(MrcMode::kExact, min_seconds);
  const double compiled_ns =
      MeasureMissRatioNs(MrcMode::kCompiled, min_seconds);
  std::printf("miss_ratio_query: exact_ns=%.1f compiled_ns=%.1f\n",
              exact_ns, compiled_ns);

  // Managed control loop in four configurations:
  //   managed          — no observability, no sensing: the gated baseline;
  //   obs-disabled     — an Observability bundle attached but disabled, so
  //                      its entire cost must be the null/enabled checks at
  //                      the instrumented sites (smoke gate: < 2%);
  //   sensing          — the SHARDS estimator on the sample path at the
  //                      default sampling budget, noise model off. The feed
  //                      stops at target_error_bound, so the steady state
  //                      measured is the estimator query path only (smoke
  //                      gate: < 10%). Sensing fully off is the `managed`
  //                      point itself — one bool test on the sample path;
  //   sensing-noisy    — full sensing realism (estimator + lognormal
  //                      counter noise + jitter + stale repeats).
  //                      Informational, not gated: three Box-Muller draws
  //                      and three exp() per app-sample by construction
  //                      dominate a ~1.3us managed tick, a fidelity knob
  //                      for studies rather than a hot-path default.
  // Rounds are INTERLEAVED across the configurations and every overhead is
  // a PAIRED ratio against the same round's managed run, reported as the
  // minimum over rounds: the smoke script gates the ratios, and on a small
  // CI host another process's burst can depress any single measurement
  // window by 10%+ — but it cannot depress every round, while a real
  // hot-path regression shows up in all of them. Epochs/sec points are
  // best-of-rounds as usual.
  const size_t managed_apps = 4;
  Observability disabled_obs;
  disabled_obs.set_enabled(false);
  PmcSensingParams sensing;
  sensing.enabled = true;
  sensing.noise_sigma = 0.0;
  sensing.interval_jitter = 0.0;
  sensing.stale_probability = 0.0;
  PmcSensingParams noisy;
  noisy.enabled = true;
  double managed_eps = 0.0;
  double disabled_eps = 0.0;
  double sensing_eps = 0.0;
  double noisy_eps = 0.0;
  double obs_overhead_pct = 0.0;
  double sensing_overhead_pct = 0.0;
  double noisy_overhead_pct = 0.0;
  bool have_overheads = false;
  for (int round = 0; round < 5; ++round) {
    const double m =
        MeasureManagedEpochsPerSec(managed_apps, min_seconds, nullptr);
    const double d =
        MeasureManagedEpochsPerSec(managed_apps, min_seconds, &disabled_obs);
    const double s = MeasureManagedEpochsPerSec(managed_apps, min_seconds,
                                                nullptr, &sensing);
    const double n =
        MeasureManagedEpochsPerSec(managed_apps, min_seconds, nullptr, &noisy);
    managed_eps = std::max(managed_eps, m);
    disabled_eps = std::max(disabled_eps, d);
    sensing_eps = std::max(sensing_eps, s);
    noisy_eps = std::max(noisy_eps, n);
    const double obs_pct = d > 0.0 ? (m / d - 1.0) * 100.0 : 0.0;
    const double sensing_pct = s > 0.0 ? (m / s - 1.0) * 100.0 : 0.0;
    const double noisy_pct = n > 0.0 ? (m / n - 1.0) * 100.0 : 0.0;
    if (!have_overheads) {
      have_overheads = true;
      obs_overhead_pct = obs_pct;
      sensing_overhead_pct = sensing_pct;
      noisy_overhead_pct = noisy_pct;
    } else {
      obs_overhead_pct = std::min(obs_overhead_pct, obs_pct);
      sensing_overhead_pct = std::min(sensing_overhead_pct, sensing_pct);
      noisy_overhead_pct = std::min(noisy_overhead_pct, noisy_pct);
    }
  }
  std::printf("sim_throughput: mode=managed apps=%zu epochs_per_sec=%.0f\n",
              managed_apps, managed_eps);
  std::printf(
      "sim_throughput: managed_obs_disabled epochs_per_sec=%.0f "
      "overhead_pct=%.2f\n",
      disabled_eps, obs_overhead_pct);
  std::printf(
      "sim_throughput: mode=managed_sensing apps=%zu epochs_per_sec=%.0f "
      "overhead_pct=%.2f\n",
      managed_apps, sensing_eps, sensing_overhead_pct);
  std::printf(
      "sim_throughput: mode=managed_sensing_noisy apps=%zu "
      "epochs_per_sec=%.0f overhead_pct=%.2f\n",
      managed_apps, noisy_eps, noisy_overhead_pct);

  // Speedup at the heaviest consolidation (the sweep-relevant regime).
  double exact_eps = 0.0;
  double compiled_eps = 0.0;
  for (const ThroughputPoint& point : points) {
    if (point.num_apps == app_counts.back()) {
      (point.mode == MrcMode::kExact ? exact_eps : compiled_eps) =
          point.epochs_per_sec;
    }
  }
  const double speedup = exact_eps > 0.0 ? compiled_eps / exact_eps : 0.0;
  std::printf("sim_throughput: speedup_compiled_over_exact=%.2f\n", speedup);

  // One result object per line so the smoke script can grep/awk it without
  // a JSON parser.
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(
        out,
        "    {\"mode\": \"%s\", \"apps\": %zu, \"epochs_per_sec\": %.1f}%s\n",
        ModeName(points[i].mode), points[i].num_apps,
        points[i].epochs_per_sec, i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(out, "    ,{\"mode\": \"managed\", \"apps\": %zu, "
                    "\"epochs_per_sec\": %.1f}\n",
               managed_apps, managed_eps);
  std::fprintf(out, "    ,{\"mode\": \"managed_sensing\", \"apps\": %zu, "
                    "\"epochs_per_sec\": %.1f}\n",
               managed_apps, sensing_eps);
  std::fprintf(out, "    ,{\"mode\": \"managed_sensing_noisy\", \"apps\": %zu, "
                    "\"epochs_per_sec\": %.1f}\n",
               managed_apps, noisy_eps);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"miss_ratio_query_ns\": "
                    "{\"exact\": %.1f, \"compiled\": %.1f},\n",
               exact_ns, compiled_ns);
  std::fprintf(out, "  \"obs_disabled_overhead_pct\": %.2f,\n",
               obs_overhead_pct);
  std::fprintf(out, "  \"sensing_overhead_pct\": %.2f,\n",
               sensing_overhead_pct);
  std::fprintf(out, "  \"sensing_noisy_overhead_pct\": %.2f,\n",
               noisy_overhead_pct);
  std::fprintf(out, "  \"speedup_compiled_over_exact\": %.2f\n}\n", speedup);
  std::fclose(out);
  std::printf("sim_throughput: wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_throughput.json";
  double min_seconds = 0.25;
  bool with_injector = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
      if (min_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --min-seconds\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--fault-injector") == 0) {
      with_injector = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--json=PATH] [--min-seconds=S] [--fault-injector]\n",
          argv[0]);
      return 2;
    }
  }
  return copart::Run(json_path, min_seconds, with_injector);
}
