// Throughput of the pluggable SLO governors (src/slo, DESIGN.md §15):
// epochs/sec of the full SLO-mode serve loop — machine epoch, LC queue
// service, governor re-plan, outcome feedback, CoPart tick — once per
// registered governor under the same steady Poisson scenario. Emits a
// machine-readable BENCH_governor.json (committed at the repo root as the
// baseline); tools/run_perf_smoke.sh fails CI when any per-governor point
// regresses >20% against it, and separately gates the learned governors'
// managed-loop overhead versus the threshold loop at <10% — the learned
// bookkeeping (MPC correction cells, bandit arm tables) must stay a
// rounding error next to the epoch solve itself.
//
// Flags:
//   --json=PATH         where to write the JSON report
//                       (default BENCH_governor.json in the CWD — run from
//                       the repo root to refresh the baseline)
//   --min-seconds=S     measurement time per data point (default 0.25)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "harness/serve.h"
#include "slo/slo_governor.h"
#include "workload/workload.h"

namespace copart {
namespace {

using Clock = std::chrono::steady_clock;

double Elapsed(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Epochs/sec of the SLO-mode serve loop with the named governor planning
// the LC slice. Same machine and load as bench_serve's slo_loop point so
// the threshold number here stays comparable to that baseline.
double MeasureGovernorEpochsPerSec(const std::string& governor,
                                   double min_seconds) {
  ServeScenarioConfig config = Section63ServeScenario();
  config.lc_apps[0].arrival.kind = ArrivalKind::kPoisson;
  config.lc_apps[0].arrival.base_rate_rps = 120000.0;
  config.lc_apps[0].arrival.burst_phases.clear();
  config.duration_sec = 60.0;
  config.mode = ServeMode::kCopartSlo;
  config.copart_params.slo.governor = governor;
  const double epochs_per_run =
      config.duration_sec / config.control_period_sec;
  long epochs = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    const ServeScenarioResult result = RunServeScenario(config);
    CHECK_EQ(result.samples.size(), static_cast<size_t>(epochs_per_run));
    epochs += static_cast<long>(epochs_per_run);
    elapsed = Elapsed(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(epochs) / elapsed;
}

int Run(const std::string& json_path, double min_seconds) {
  const std::vector<std::string> governors = RegisteredSloGovernorNames();
  CHECK(!governors.empty());

  std::vector<double> epochs_per_sec;
  double threshold_eps = 0.0;
  for (const std::string& governor : governors) {
    const double eps = MeasureGovernorEpochsPerSec(governor, min_seconds);
    std::printf("governor: %s_epochs_per_sec=%.0f\n", governor.c_str(), eps);
    epochs_per_sec.push_back(eps);
    if (governor == "threshold") {
      threshold_eps = eps;
    }
  }
  CHECK_GT(threshold_eps, 0.0);

  // The headline overhead: the SLOWEST learned governor's managed loop
  // priced against the threshold loop. Positive = learned is slower.
  double worst_overhead_pct = 0.0;
  for (size_t i = 0; i < governors.size(); ++i) {
    if (governors[i] == "threshold") {
      continue;
    }
    const double pct = 100.0 * (threshold_eps / epochs_per_sec[i] - 1.0);
    if (pct > worst_overhead_pct) {
      worst_overhead_pct = pct;
    }
  }
  std::printf("governor: learned_overhead_pct=%.2f\n", worst_overhead_pct);

  // One result object per line so the smoke script can grep/awk it without
  // a JSON parser (same convention as bench_serve).
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"governor\",\n");
  std::fprintf(out, "  \"learned_overhead_pct\": %.2f,\n",
               worst_overhead_pct);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < governors.size(); ++i) {
    std::fprintf(out,
                 "    {\"point\": \"%s_epochs_per_sec\", \"value\": %.1f}%s\n",
                 governors[i].c_str(), epochs_per_sec[i],
                 i + 1 == governors.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("governor: wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  std::string json_path = "BENCH_governor.json";
  double min_seconds = 0.25;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
      if (min_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --min-seconds\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--min-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }
  return copart::Run(json_path, min_seconds);
}
