// Figure 11: sensitivity of CoPart to its three key design parameters —
// (a) the performance threshold deltaP, (b) the LLC miss ratio threshold
// (capital) Beta, (c) the memory traffic ratio threshold (capital) Gamma.
// Each series reports the geometric-mean unfairness across the sensitive
// four-app mixes, normalized to the paper's default setting (deltaP = 5%,
// Beta = 3%, Gamma = 30%). Expected shape: a shallow U — both very small
// and very large values lose fairness.
#include <cstdio>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/mix.h"
#include "harness/table_printer.h"

namespace copart {
namespace {

double GeoMeanUnfairness(const ResourceManagerParams& params) {
  std::vector<double> values;
  ExperimentConfig config;
  // The threshold parameters exist to reject measurement noise, so this
  // sweep runs with hardware-like run-to-run variability (2%); the default
  // simulator setting (1%) flattens the left side of the U.
  config.machine.ips_noise_sigma = 0.02;
  for (MixFamily family :
       {MixFamily::kHighLlc, MixFamily::kHighBw, MixFamily::kHighBoth,
        MixFamily::kModerateLlc, MixFamily::kModerateBw,
        MixFamily::kModerateBoth}) {
    const ExperimentResult result =
        RunExperiment(MakeMix(family, 4), CoPartFactory(params), config);
    values.push_back(std::max(result.unfairness, 1e-4));
  }
  return GeoMean(values);
}

void SweepParameter(
    const std::string& title, const std::vector<double>& values,
    double default_value,
    const std::function<void(ResourceManagerParams&, double)>& apply) {
  ResourceManagerParams defaults;
  apply(defaults, default_value);
  const double baseline = GeoMeanUnfairness(defaults);
  std::vector<std::vector<std::string>> rows;
  for (double value : values) {
    ResourceManagerParams params;
    apply(params, value);
    const double unfairness = GeoMeanUnfairness(params);
    rows.push_back({FormatFixed(value * 100, 0) + "%",
                    FormatFixed(unfairness / baseline, 3)});
  }
  std::printf("-- %s (normalized to the default) --\n", title.c_str());
  PrintTable({"value", "norm. unfairness"}, rows);
  std::printf("\n");
}

}  // namespace
}  // namespace copart

int main() {
  using copart::ResourceManagerParams;
  std::printf("== Figure 11: sensitivity to the design parameters ==\n\n");
  copart::SweepParameter(
      "(a) performance threshold deltaP", {0.01, 0.03, 0.05, 0.10, 0.20},
      0.05, [](ResourceManagerParams& params, double value) {
        params.classifier.perf_delta = value;
      });
  copart::SweepParameter(
      "(b) LLC miss ratio threshold Beta", {0.01, 0.02, 0.03, 0.05, 0.10},
      0.03, [](ResourceManagerParams& params, double value) {
        params.classifier.llc_miss_ratio_high = value;
      });
  copart::SweepParameter(
      "(c) memory traffic ratio threshold Gamma",
      {0.10, 0.20, 0.30, 0.50, 0.70}, 0.30,
      [](ResourceManagerParams& params, double value) {
        params.classifier.traffic_ratio_high = value;
      });
  return 0;
}
