// Partition-policy A/B comparison (DESIGN.md §14): every registered policy
// — per-app CoPart plus the clustered LFOC / LFOC+ / CBP rivals — over the
// paper's seven mix families and the many-apps consolidation that per-app
// CoPart structurally cannot cover. Prints the unfairness / throughput /
// SLO-violation table with the many-apps verdict line, and optionally
// writes the full-precision JSON document (the same serialization pinned
// by tests/harness_policy_ab_golden_test.cc).
//
// Flags:
//   --json=PATH     also write the %.17g JSON document
//   --many=N        app count of the many-apps scenario (default 48)
//   --apps=N        apps per paper mix (default 6)
//   --duration=S    simulated seconds per cell (default 50)
//   --threads=N     sweep threads (default 0 = hardware concurrency)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "harness/policy_ab.h"

int main(int argc, char** argv) {
  copart::PolicyAbConfig config;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--many=", 7) == 0) {
      config.many_apps = static_cast<size_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--apps=", 7) == 0) {
      config.paper_mix_app_count = static_cast<size_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--duration=", 11) == 0) {
      config.duration_sec = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.parallel.num_threads =
          static_cast<size_t>(std::atoi(arg + 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--many=N] [--apps=N] "
                   "[--duration=S] [--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }

  const copart::PolicyAbResult result = copart::RunPolicyAb(config);
  copart::PrintPolicyAbTable(result);
  std::printf("sweep: %s\n", result.stats.Summary().c_str());
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = copart::PolicyAbToJson(result);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("policy_ab: wrote %s\n", json_path.c_str());
  }
  return 0;
}
