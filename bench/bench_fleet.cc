// Throughput and robustness outcomes of the fleet layer (src/cluster/fleet
// + harness/fleet): node-ticks/sec of the parallel fleet control loop, and
// the deterministic outcome of the canonical robustness scenario — fleet
// p99 slowdown, migration/rollback counts, and crash-wave recovery time.
// Emits a machine-readable BENCH_fleet.json (committed at the repo root as
// the baseline); tools/run_perf_smoke.sh band-gates the throughput point
// (>20% regression fails) and EXACT-gates the outcome points: they are
// pure functions of the seed, so any drift is a behavior change that must
// be a deliberate baseline refresh, not noise.
//
// Flags:
//   --json=PATH         where to write the JSON report
//                       (default BENCH_fleet.json in the CWD — run from
//                       the repo root to refresh the baseline)
//   --min-seconds=S     measurement time for the throughput point
//                       (default 0.25)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/fleet.h"
#include "harness/fleet.h"
#include "workload/workload.h"

namespace copart {
namespace {

using Clock = std::chrono::steady_clock;

double Elapsed(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The canonical robustness scenario: the copartctl `fleet` demo at 128
// nodes — diurnal arrivals, background faults, a 10% crash wave — whose
// outcome fields are deterministic and exact-gated.
FleetScenarioConfig CanonicalScenario() {
  FleetScenarioConfig config;
  config.num_nodes = 128;
  config.epochs = 180;
  config.job_arrivals.base_rate_rps =
      0.15 * static_cast<double>(config.num_nodes);
  config.crash_wave_epoch = 45;
  config.crash_probability = 0.0002;
  config.slow_probability = 0.002;
  config.blackout_probability = 0.002;
  return config;
}

// Alive-node ticks per wall-clock second of the parallel fleet control
// loop, measured on a steadily loaded fleet with no faults (so the work
// per epoch is stable and the number is comparable across runs).
double MeasureNodeTicksPerSec(double min_seconds) {
  FleetParams params;
  params.machine.ips_noise_sigma = 0.005;
  FleetController fleet(128, params);
  FleetJobSpec spec;
  spec.workload = Swaptions();
  spec.cores = 2;
  for (size_t i = 0; i < 4 * fleet.NumNodes(); ++i) {
    if (!fleet.Submit(spec).ok()) {
      break;
    }
  }
  for (int i = 0; i < 4; ++i) {
    fleet.RunEpoch();  // Warm up (manager profiling phases).
  }
  const uint64_t warm = fleet.node_ticks();
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    for (int i = 0; i < 8; ++i) {
      fleet.RunEpoch();
    }
    elapsed = Elapsed(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(fleet.node_ticks() - warm) / elapsed;
}

int Run(const std::string& json_path, double min_seconds) {
  const double node_ticks_per_sec = MeasureNodeTicksPerSec(min_seconds);
  std::printf("fleet: node_ticks_per_sec=%.0f\n", node_ticks_per_sec);

  const FleetScenarioResult r = RunFleetScenario(CanonicalScenario());
  std::printf(
      "fleet: p99_slowdown=%.4f migrations=%llu rollbacks=%llu "
      "recovery_epochs=%d violations=%llu\n",
      r.fleet_p99_slowdown,
      static_cast<unsigned long long>(r.counters.migrations_completed),
      static_cast<unsigned long long>(r.counters.migration_rollbacks),
      r.recovery_epochs,
      static_cast<unsigned long long>(r.counters.invariant_violations));
  if (r.counters.invariant_violations > 0) {
    std::fprintf(stderr, "fleet: invariant violations in the canonical "
                         "scenario: %s\n",
                 r.first_violation.c_str());
    return 1;
  }

  // One result object per line so the smoke script can grep/sed it without
  // a JSON parser (same convention as bench_sim_throughput).
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"fleet\",\n");
  std::fprintf(out, "  \"results\": [\n");
  std::fprintf(out,
               "    {\"point\": \"fleet_node_ticks_per_sec\", "
               "\"value\": %.1f},\n",
               node_ticks_per_sec);
  std::fprintf(out,
               "    {\"point\": \"fleet_p99_slowdown\", \"value\": %.4f},\n",
               r.fleet_p99_slowdown);
  std::fprintf(out,
               "    {\"point\": \"fleet_migrations\", \"value\": %llu},\n",
               static_cast<unsigned long long>(
                   r.counters.migrations_completed));
  std::fprintf(
      out, "    {\"point\": \"fleet_migration_rollbacks\", \"value\": %llu},\n",
      static_cast<unsigned long long>(r.counters.migration_rollbacks));
  std::fprintf(out,
               "    {\"point\": \"fleet_recovery_epochs\", \"value\": %d}\n",
               r.recovery_epochs);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("fleet: wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fleet.json";
  double min_seconds = 0.25;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
      if (min_seconds <= 0.0) {
        std::fprintf(stderr, "invalid --min-seconds\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--min-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }
  return copart::Run(json_path, min_seconds);
}
