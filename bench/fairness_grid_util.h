// Shared rendering for the mix-fairness grid benches (Figs. 4-6).
#ifndef COPART_BENCH_FAIRNESS_GRID_UTIL_H_
#define COPART_BENCH_FAIRNESS_GRID_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "harness/heatmap.h"
#include "harness/table_printer.h"

namespace copart {

// Sweeps the mix over the default LLC x MBA partitioning grid and prints
// the unfairness normalized to the unpartitioned run (lower is better).
// The grid fans out across `parallel` threads (output is
// thread-count-invariant).
inline void PrintFairnessGrid(const WorkloadMix& mix,
                              const ParallelConfig& parallel = {}) {
  const FairnessGrid grid =
      SweepMixFairness(mix, DefaultLlcConfigs(), DefaultMbaConfigs(),
                       MachineConfig{}, 4, parallel);
  std::string apps;
  for (const std::string& name : grid.app_names) {
    apps += (apps.empty() ? "" : ", ") + name;
  }
  std::vector<std::string> row_labels, col_labels;
  for (const std::vector<uint32_t>& config : grid.llc_configs) {
    row_labels.push_back(JoinParen(config));
  }
  for (const std::vector<uint32_t>& config : grid.mba_configs) {
    col_labels.push_back(JoinParen(config));
  }
  PrintHeatmap("-- " + grid.mix_name + " mix (" + apps +
                   "): unfairness normalized to no partitioning --\n"
                   "   rows = LLC ways per app, cols = MBA level per app",
               row_labels, col_labels, grid.normalized_unfairness);
  std::printf("   unpartitioned (raw) unfairness: %.4f\n",
              grid.nopart_unfairness);
  std::printf("   sweep: %s\n", grid.stats.Summary().c_str());
  std::printf("   sweep_stats_json: {\"sweep\": \"fairness/%s\", %s\n\n",
              grid.mix_name.c_str(), grid.stats.ToJson().substr(1).c_str());
}

}  // namespace copart

#endif  // COPART_BENCH_FAIRNESS_GRID_UTIL_H_
