#!/usr/bin/env bash
# Line-coverage gate for the cache-model, cluster/fleet, controller,
# observability, sensing, serving, and SLO-governor layers.
#
# Builds with gcc's --coverage instrumentation, runs the full ctest suite,
# extracts line coverage for src/cache, src/cluster, src/core, src/obs,
# src/pmc, src/serve, and src/slo with `gcov --json-format` (parsed by the
# embedded python3 — no
# gcovr/lcov dependency), and fails if any directory's coverage drops below the
# committed baseline (tools/coverage_baseline.txt) by more than SLACK_PCT.
#
# Usage:
#   tools/run_coverage.sh [build-dir]          # gate against the baseline
#   COPART_COVERAGE_UPDATE=1 tools/run_coverage.sh [build-dir]
#                                              # refresh the baseline
#
# The gate is per-directory: raising coverage elsewhere cannot mask a drop
# in the controller. New code is expected to keep the recorded floor; after
# an intended change (e.g. adding hard-to-reach defensive branches), refresh
# the baseline and review the diff like any other code change.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-cov}"
BASELINE="tools/coverage_baseline.txt"
SLACK_PCT=0.5   # Absolute percentage points of allowed noise.

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Run gcov over every object that carries profile data for the gated
# directories, collecting the gzipped JSON reports in a scratch dir.
GCOV_OUT="$(mktemp -d /tmp/copart_gcov.XXXXXX)"
trap 'rm -rf "$GCOV_OUT"' EXIT
find "$BUILD_DIR/src/cache" "$BUILD_DIR/src/cluster" "$BUILD_DIR/src/core" \
  "$BUILD_DIR/src/obs" "$BUILD_DIR/src/pmc" "$BUILD_DIR/src/serve" \
  "$BUILD_DIR/src/slo" \
  -name '*.gcda' |
  while IFS= read -r gcda; do
    (cd "$GCOV_OUT" && gcov --json-format "$OLDPWD/$gcda" >/dev/null)
  done

REPORT="$(python3 - "$GCOV_OUT" <<'EOF'
# Aggregates gcov's JSON reports into per-directory line coverage.
# A line is covered if any report saw a non-zero count (the same .cc is
# profiled once per linked test binary).
import glob, gzip, json, os, sys

gcov_dir = sys.argv[1]
# dir -> file -> line -> covered
gated = {"src/cache": {}, "src/cluster": {}, "src/core": {}, "src/obs": {},
         "src/pmc": {}, "src/serve": {}, "src/slo": {}}

for path in glob.glob(os.path.join(gcov_dir, "*.gcov.json.gz")):
    with gzip.open(path, "rt") as handle:
        report = json.load(handle)
    for entry in report.get("files", []):
        name = entry["file"]
        for prefix in gated:
            # gcov reports absolute paths; match on the repo-relative part.
            marker = "/" + prefix + "/"
            if marker not in name and not name.startswith(prefix + "/"):
                continue
            lines = gated[prefix].setdefault(name, {})
            for line in entry.get("lines", []):
                number = line["line_number"]
                lines[number] = lines.get(number, False) or line["count"] > 0

for prefix in sorted(gated):
    total = sum(len(lines) for lines in gated[prefix].values())
    covered = sum(sum(flags.values()) for flags in gated[prefix].values())
    if total == 0:
        print(f"{prefix} ERROR-no-data")
    else:
        print(f"{prefix} {100.0 * covered / total:.2f}")
EOF
)"

echo "run_coverage: current line coverage"
echo "$REPORT" | sed 's/^/  /'
if echo "$REPORT" | grep -q "ERROR-no-data"; then
  echo "run_coverage: FAIL — no profile data found (did ctest run?)" >&2
  exit 1
fi

if [[ "${COPART_COVERAGE_UPDATE:-}" == 1 ]]; then
  echo "$REPORT" > "$BASELINE"
  echo "run_coverage: baseline refreshed at $BASELINE — review the diff"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "run_coverage: no baseline at $BASELINE;" \
    "run with COPART_COVERAGE_UPDATE=1 to record one" >&2
  exit 1
fi

fail=0
while read -r dir base; do
  now="$(echo "$REPORT" | awk -v d="$dir" '$1 == d { print $2 }')"
  if [[ -z "$now" ]]; then
    echo "run_coverage: FAIL $dir missing from current report"
    fail=1
    continue
  fi
  verdict="$(awk -v n="$now" -v b="$base" -v s="$SLACK_PCT" \
    'BEGIN { print (n < b - s) }')"
  if [[ "$verdict" == 1 ]]; then
    echo "run_coverage: FAIL $dir line coverage ${now}% <" \
      "baseline ${base}% - ${SLACK_PCT}"
    fail=1
  else
    echo "run_coverage: ok   $dir line coverage ${now}% (baseline ${base}%)"
  fi
done < "$BASELINE"

if [[ "$fail" != 0 ]]; then
  echo "run_coverage: COVERAGE REGRESSION — add tests or refresh the" \
    "baseline with COPART_COVERAGE_UPDATE=1 and justify the drop"
  exit 1
fi
echo "run_coverage: src/cache, src/cluster, src/core, src/obs, src/pmc," \
  "src/serve, and src/slo hold the baseline"
