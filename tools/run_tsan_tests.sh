#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
#
# Usage: tools/run_tsan_tests.sh [build-dir]
#
# The parallel sweep engine is the only multi-threaded code in the tree, so
# this focuses on the tests that exercise it: the pool/ParallelFor unit
# tests, the cross-thread-count determinism suite, the golden sweep, and
# the RNG splitter. Set COPART_SANITIZE=address via -DCOPART_SANITIZE in a
# separate build dir for an ASan/UBSan pass instead.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOPART_SANITIZE=thread

TESTS=(
  # The fleet controller ticks hundreds of nodes on the pool every epoch
  # and scores migration candidates with a parallel what-if fan-out; the
  # chaos suite additionally fans 200 whole fleet schedules out on the
  # outer pool. Both must stay race-free and thread-count-invariant.
  cluster_test
  cluster_chaos_test
  common_parallel_test
  common_rng_test
  core_chaos_property_test
  # Sensing: the accuracy harness fans its A/B cells out on the pool, and
  # the sensing chaos suite drives noisy PMCs + resctrl faults through the
  # hardened control loop; both must stay race-free. The determinism suite
  # below also pins the sensing comparison byte-identical across thread
  # counts.
  core_classifier_accuracy_test
  core_sensing_chaos_test
  # Partition policies: the conformance suite pins thread-count invariance
  # of the policy A/B harness, the policy chaos suite fans 100 fault
  # schedules per rival policy out on the pool, and the A/B golden suite is
  # the serialized cross-thread contract.
  core_policy_conformance_test
  core_policy_chaos_test
  harness_policy_ab_golden_test
  # SLO governors: the governor A/B harness fans scenario x governor cells
  # out on the pool (learned-governor state is per-cell, never shared), the
  # chaos floor property runs every registered governor under fault
  # schedules, and the new surrogate/trace-replay suites back the scenarios
  # the A/B grid is built from. The determinism suite below also pins the
  # A/B JSON + CSV byte-identical across thread counts.
  slo_governor_test
  core_slo_property_test
  harness_governor_ab_golden_test
  serve_queue_model_test
  workload_phases_test
  trace_replay_test
  harness_determinism_test
  harness_golden_test
  harness_heatmap_test
  harness_replication_test
  # The serve harness fans the three comparison cells out on the pool and
  # must stay race-free; its golden suite is the cross-thread contract.
  harness_serve_test
  harness_static_oracle_test
  # Epoch fast-path invariants (incremental tick tiers, snapshot/rollback
  # bit-identity): the machine itself is single-threaded, but the oracle and
  # determinism suites drive it from pool workers, so the kernel-config
  # equivalence must hold under TSan instrumentation too.
  machine_incremental_test
  machine_snapshot_test
  # Observability: the SPSC trace ring and the tracer's per-thread ring
  # registration are lock-free code on the sweep workers' hot path, and the
  # chaos-audit suite drives them through the full hardened control loop.
  obs_audit_golden_test
  obs_chaos_audit_test
  obs_metrics_registry_test
  obs_trace_export_test
  obs_trace_ring_test
)

cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

FILTER="$(IFS='|'; echo "${TESTS[*]}")"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -R "^(${FILTER})$"
