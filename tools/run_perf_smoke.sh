#!/usr/bin/env bash
# Perf smoke test: build Release, run bench_sim_throughput, and fail if any
# epochs/sec point regresses more than 20% against the committed baseline
# (BENCH_sim_throughput.json at the repo root). The bench runs twice — once
# plain and once with --fault-injector (a FaultInjector attached but with no
# points armed) — and BOTH runs are held to the same gate, pinning the
# fault-injection substrate's compiled-in-but-disabled cost at ~zero.
#
# The bench also measures the managed control loop with an observability
# bundle attached but disabled; the reported obs_disabled_overhead_pct must
# stay under OBS_OVERHEAD_PCT (2%) — disabled instrumentation is one branch
# per site and must never grow a measurable cost (DESIGN.md §8). Both obs
# and sensing overheads are paired against the managed_full_solve
# configuration (incremental fast path off), so the ratios keep pricing
# instrumentation against a solving control tick rather than against the
# ~100ns replay tick, where any fixed cost would read as tens of percent.
#
# Likewise for realistic sensing (DESIGN.md §10): sensing_overhead_pct — the
# managed loop with the online MRC estimator on the sample path at the
# default sampling budget, noise model off — must stay under
# SENSING_OVERHEAD_PCT (10%). Sensing disabled is priced by the plain
# managed point itself (one bool test), and the full noise model's cost is
# reported as sensing_noisy_overhead_pct but not gated.
#
# The epoch fast path (DESIGN.md §12) is held to two absolute floors on top
# of the relative gates: the default managed loop must sustain at least
# MANAGED_FLOOR epochs/sec at 4 apps, and snapshot-based what-if evaluation
# must be at least WHATIF_SPEEDUP_MIN times faster than fresh-machine
# re-simulation over the oracle-style candidate schedule. The bench's
# --scalar-check mode (vectorized vs scalar vs incremental kernels, bitwise)
# runs first: a divergence there is a correctness bug, and perf numbers from
# a wrong kernel are meaningless.
#
# bench_serve (the request-serving subsystem, DESIGN.md §9) is gated the
# same way against BENCH_serve.json: simulated requests/sec of the raw
# discrete-event engine and epochs/sec of the SLO-mode control loop.
#
# bench_governor (the pluggable SLO governors, DESIGN.md §15) is gated
# against BENCH_governor.json: epochs/sec of the SLO-mode serve loop per
# registered governor gets the usual 20% band, and the fresh run's
# learned_overhead_pct — the slowest learned governor's managed loop priced
# against the threshold loop — must stay under GOVERNOR_OVERHEAD_PCT (10%).
#
# bench_fleet (the fault-tolerant fleet layer, DESIGN.md §13) is gated
# against BENCH_fleet.json: node-ticks/sec of the parallel fleet control
# loop gets the usual 20% band, but the canonical robustness scenario's
# outcome points (fleet p99 slowdown, completed migrations, verified
# rollbacks, crash-wave recovery epochs) are pure functions of the seed
# and are gated EXACTLY — any drift there is a behavior change, not noise,
# and must arrive as a deliberate baseline refresh.
#
# Usage: tools/run_perf_smoke.sh [build-dir]
#
# The threshold is deliberately loose — CI machines are noisy — so a failure
# here means a real algorithmic regression (e.g. reintroducing per-epoch
# allocations or exact solves on the hot path), not jitter. Refresh the
# baselines by running the benches from the repo root on a quiet machine:
#   ./<build-dir>/bench/bench_sim_throughput --min-seconds=1
#   ./<build-dir>/bench/bench_serve --min-seconds=1
#   ./<build-dir>/bench/bench_governor --min-seconds=1
#   ./<build-dir>/bench/bench_fleet --min-seconds=1
# If the machine shows run-to-run swings approaching the gate (the exact-MRC
# points are the most boost-state-sensitive), run the bench a few times and
# commit the per-point MINIMUM as the baseline — a conservative baseline
# still catches algorithmic regressions, while a lucky fast run would turn
# the gate into a frequency-governor test.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"
BASELINE="BENCH_sim_throughput.json"
SERVE_BASELINE="BENCH_serve.json"
GOVERNOR_BASELINE="BENCH_governor.json"
FLEET_BASELINE="BENCH_fleet.json"
REGRESSION_PCT=20
OBS_OVERHEAD_PCT=2
SENSING_OVERHEAD_PCT=10
GOVERNOR_OVERHEAD_PCT=10
MANAGED_FLOOR=3200000
WHATIF_SPEEDUP_MIN=10

for baseline in "$BASELINE" "$SERVE_BASELINE" "$GOVERNOR_BASELINE" \
    "$FLEET_BASELINE"; do
  if [[ ! -f "$baseline" ]]; then
    echo "run_perf_smoke: no committed baseline at $baseline" >&2
    exit 1
  fi
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_sim_throughput bench_serve \
  bench_governor bench_fleet -j "$(nproc)"

FRESH="$(mktemp /tmp/bench_sim_throughput.XXXXXX.json)"
FRESH_INJ="$(mktemp /tmp/bench_sim_throughput_inj.XXXXXX.json)"
FRESH_SERVE="$(mktemp /tmp/bench_serve.XXXXXX.json)"
FRESH_GOVERNOR="$(mktemp /tmp/bench_governor.XXXXXX.json)"
FRESH_FLEET="$(mktemp /tmp/bench_fleet.XXXXXX.json)"
trap 'rm -f "$FRESH" "$FRESH_INJ" "$FRESH_SERVE" "$FRESH_GOVERNOR" \
  "$FRESH_FLEET"' EXIT
# Correctness first: the kernels must agree bitwise before their speed
# means anything (set -e aborts on divergence).
"$BUILD_DIR/bench/bench_sim_throughput" --scalar-check
"$BUILD_DIR/bench/bench_sim_throughput" --json="$FRESH" --min-seconds=0.5
"$BUILD_DIR/bench/bench_sim_throughput" --json="$FRESH_INJ" \
  --min-seconds=0.5 --fault-injector
"$BUILD_DIR/bench/bench_serve" --json="$FRESH_SERVE" --min-seconds=0.5
"$BUILD_DIR/bench/bench_governor" --json="$FRESH_GOVERNOR" --min-seconds=0.5
# Exits non-zero if the canonical fleet scenario violates job conservation
# (set -e aborts): an invariant break makes the perf numbers moot.
"$BUILD_DIR/bench/bench_fleet" --json="$FRESH_FLEET" --min-seconds=0.5

# The bench emits one result object per line:
#   {"mode": "exact", "apps": 2, "epochs_per_sec": 12345.6},
# so plain grep/sed suffice — no JSON parser needed.
point_value() {  # point_value FILE MODE APPS -> epochs_per_sec (or empty)
  grep "\"mode\": \"$2\", \"apps\": $3," "$1" |
    sed -n 's/.*"epochs_per_sec": \([0-9.]*\).*/\1/p'
}

fail=0
check_run() {  # check_run FILE LABEL — gate every baseline point in FILE
  local file="$1" label="$2"
  while IFS= read -r line; do
    mode="$(printf '%s\n' "$line" | sed -n 's/.*"mode": "\([a-z_]*\)".*/\1/p')"
    apps="$(printf '%s\n' "$line" | sed -n 's/.*"apps": \([0-9]*\).*/\1/p')"
    base="$(printf '%s\n' "$line" |
      sed -n 's/.*"epochs_per_sec": \([0-9.]*\).*/\1/p')"
    [[ -n "$mode" && -n "$apps" && -n "$base" ]] || continue
    now="$(point_value "$file" "$mode" "$apps")"
    if [[ -z "$now" ]]; then
      echo "run_perf_smoke: FAIL [$label] mode=$mode apps=$apps" \
        "missing from fresh run"
      fail=1
      continue
    fi
    # now < base * (1 - pct/100) ?
    floor="$(awk -v b="$base" -v p="$REGRESSION_PCT" \
      'BEGIN { printf "%.1f", b * (1 - p / 100) }')"
    verdict="$(awk -v n="$now" -v f="$floor" 'BEGIN { print (n < f) }')"
    if [[ "$verdict" == 1 ]]; then
      echo "run_perf_smoke: FAIL [$label] mode=$mode apps=$apps" \
        "epochs_per_sec=$now < floor=$floor (baseline=$base)"
      fail=1
    else
      echo "run_perf_smoke: ok   [$label] mode=$mode apps=$apps" \
        "epochs_per_sec=$now (baseline=$base, floor=$floor)"
    fi
  done < <(grep '"epochs_per_sec"' "$BASELINE")
}

check_run "$FRESH" "plain"
check_run "$FRESH_INJ" "injector-disarmed"

# bench_serve points: {"point": "engine_requests_per_sec", "value": 123.4}
serve_point_value() {  # serve_point_value FILE POINT -> value (or empty)
  grep "\"point\": \"$2\"" "$1" |
    sed -n 's/.*"value": \([0-9.]*\).*/\1/p'
}

check_serve_run() {  # check_serve_run FILE LABEL
  local file="$1" label="$2"
  while IFS= read -r line; do
    point="$(printf '%s\n' "$line" |
      sed -n 's/.*"point": "\([a-z_]*\)".*/\1/p')"
    base="$(printf '%s\n' "$line" |
      sed -n 's/.*"value": \([0-9.]*\).*/\1/p')"
    [[ -n "$point" && -n "$base" ]] || continue
    now="$(serve_point_value "$file" "$point")"
    if [[ -z "$now" ]]; then
      echo "run_perf_smoke: FAIL [$label] point=$point missing from fresh run"
      fail=1
      continue
    fi
    floor="$(awk -v b="$base" -v p="$REGRESSION_PCT" \
      'BEGIN { printf "%.1f", b * (1 - p / 100) }')"
    verdict="$(awk -v n="$now" -v f="$floor" 'BEGIN { print (n < f) }')"
    if [[ "$verdict" == 1 ]]; then
      echo "run_perf_smoke: FAIL [$label] point=$point" \
        "value=$now < floor=$floor (baseline=$base)"
      fail=1
    else
      echo "run_perf_smoke: ok   [$label] point=$point" \
        "value=$now (baseline=$base, floor=$floor)"
    fi
  done < <(grep '"point"' "$SERVE_BASELINE")
}

check_serve_run "$FRESH_SERVE" "serve"

# bench_governor points share bench_serve's one-object-per-line shape:
#   {"point": "mpc_epochs_per_sec", "value": 123.4}
check_governor_run() {  # check_governor_run FILE LABEL
  local file="$1" label="$2"
  while IFS= read -r line; do
    point="$(printf '%s\n' "$line" |
      sed -n 's/.*"point": "\([a-z_]*\)".*/\1/p')"
    base="$(printf '%s\n' "$line" |
      sed -n 's/.*"value": \([0-9.]*\).*/\1/p')"
    [[ -n "$point" && -n "$base" ]] || continue
    now="$(serve_point_value "$file" "$point")"
    if [[ -z "$now" ]]; then
      echo "run_perf_smoke: FAIL [$label] point=$point missing from fresh run"
      fail=1
      continue
    fi
    floor="$(awk -v b="$base" -v p="$REGRESSION_PCT" \
      'BEGIN { printf "%.1f", b * (1 - p / 100) }')"
    verdict="$(awk -v n="$now" -v f="$floor" 'BEGIN { print (n < f) }')"
    if [[ "$verdict" == 1 ]]; then
      echo "run_perf_smoke: FAIL [$label] point=$point" \
        "value=$now < floor=$floor (baseline=$base)"
      fail=1
    else
      echo "run_perf_smoke: ok   [$label] point=$point" \
        "value=$now (baseline=$base, floor=$floor)"
    fi
  done < <(grep '"point"' "$GOVERNOR_BASELINE")
}

check_governor_run "$FRESH_GOVERNOR" "governor"

check_governor_overhead() {  # check_governor_overhead FILE LABEL
  local file="$1" label="$2" pct verdict
  pct="$(sed -n 's/.*"learned_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
    "$file")"
  if [[ -z "$pct" ]]; then
    echo "run_perf_smoke: FAIL [$label] learned_overhead_pct" \
      "missing from fresh run"
    fail=1
    return
  fi
  verdict="$(awk -v p="$pct" -v max="$GOVERNOR_OVERHEAD_PCT" \
    'BEGIN { print (p >= max) }')"
  if [[ "$verdict" == 1 ]]; then
    echo "run_perf_smoke: FAIL [$label] learned-governor managed-loop" \
      "overhead ${pct}% >= ${GOVERNOR_OVERHEAD_PCT}% vs threshold"
    fail=1
  else
    echo "run_perf_smoke: ok   [$label] learned-governor managed-loop" \
      "overhead ${pct}% < ${GOVERNOR_OVERHEAD_PCT}% vs threshold"
  fi
}

check_governor_overhead "$FRESH_GOVERNOR" "governor"

# bench_fleet points: same one-object-per-line shape as bench_serve, but
# point names carry digits (fleet_p99_slowdown), and the outcome points are
# deterministic — gated on exact equality rather than a band.
fleet_point_value() {  # fleet_point_value FILE POINT -> value (or empty)
  grep "\"point\": \"$2\"" "$1" |
    sed -n 's/.*"value": \(-\{0,1\}[0-9.]*\).*/\1/p'
}

check_fleet_run() {  # check_fleet_run FILE LABEL
  local file="$1" label="$2"
  while IFS= read -r line; do
    point="$(printf '%s\n' "$line" |
      sed -n 's/.*"point": "\([a-z0-9_]*\)".*/\1/p')"
    base="$(printf '%s\n' "$line" |
      sed -n 's/.*"value": \(-\{0,1\}[0-9.]*\).*/\1/p')"
    [[ -n "$point" && -n "$base" ]] || continue
    now="$(fleet_point_value "$file" "$point")"
    if [[ -z "$now" ]]; then
      echo "run_perf_smoke: FAIL [$label] point=$point missing from fresh run"
      fail=1
      continue
    fi
    if [[ "$point" == "fleet_node_ticks_per_sec" ]]; then
      # Throughput: the usual one-sided regression band.
      floor="$(awk -v b="$base" -v p="$REGRESSION_PCT" \
        'BEGIN { printf "%.1f", b * (1 - p / 100) }')"
      verdict="$(awk -v n="$now" -v f="$floor" 'BEGIN { print (n < f) }')"
      if [[ "$verdict" == 1 ]]; then
        echo "run_perf_smoke: FAIL [$label] point=$point" \
          "value=$now < floor=$floor (baseline=$base)"
        fail=1
      else
        echo "run_perf_smoke: ok   [$label] point=$point" \
          "value=$now (baseline=$base, floor=$floor)"
      fi
    else
      # Deterministic outcome: exact match, both directions.
      if [[ "$now" != "$base" ]]; then
        echo "run_perf_smoke: FAIL [$label] point=$point" \
          "value=$now != baseline=$base (deterministic point drifted —" \
          "behavior change, refresh the baseline deliberately)"
        fail=1
      else
        echo "run_perf_smoke: ok   [$label] point=$point" \
          "value=$now (exact match)"
      fi
    fi
  done < <(grep '"point"' "$FLEET_BASELINE")
}

check_fleet_run "$FRESH_FLEET" "fleet"

check_obs_overhead() {  # check_obs_overhead FILE LABEL
  local file="$1" label="$2" pct
  pct="$(sed -n 's/.*"obs_disabled_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
    "$file")"
  if [[ -z "$pct" ]]; then
    echo "run_perf_smoke: FAIL [$label] obs_disabled_overhead_pct" \
      "missing from fresh run"
    fail=1
    return
  fi
  local verdict
  verdict="$(awk -v p="$pct" -v max="$OBS_OVERHEAD_PCT" \
    'BEGIN { print (p >= max) }')"
  if [[ "$verdict" == 1 ]]; then
    echo "run_perf_smoke: FAIL [$label] disabled-observability overhead" \
      "${pct}% >= ${OBS_OVERHEAD_PCT}%"
    fail=1
  else
    echo "run_perf_smoke: ok   [$label] disabled-observability overhead" \
      "${pct}% < ${OBS_OVERHEAD_PCT}%"
  fi
}
check_obs_overhead "$FRESH" "plain"

check_sensing_overhead() {  # check_sensing_overhead FILE LABEL
  local file="$1" label="$2" pct
  pct="$(sed -n 's/.*"sensing_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
    "$file")"
  if [[ -z "$pct" ]]; then
    echo "run_perf_smoke: FAIL [$label] sensing_overhead_pct" \
      "missing from fresh run"
    fail=1
    return
  fi
  local verdict
  verdict="$(awk -v p="$pct" -v max="$SENSING_OVERHEAD_PCT" \
    'BEGIN { print (p >= max) }')"
  if [[ "$verdict" == 1 ]]; then
    echo "run_perf_smoke: FAIL [$label] sensing estimator overhead" \
      "${pct}% >= ${SENSING_OVERHEAD_PCT}%"
    fail=1
  else
    echo "run_perf_smoke: ok   [$label] sensing estimator overhead" \
      "${pct}% < ${SENSING_OVERHEAD_PCT}%"
  fi
}
check_sensing_overhead "$FRESH" "plain"

check_absolute_floor() {  # check_absolute_floor FILE LABEL MODE APPS FLOOR
  local file="$1" label="$2" mode="$3" apps="$4" floor="$5" now verdict
  now="$(point_value "$file" "$mode" "$apps")"
  if [[ -z "$now" ]]; then
    echo "run_perf_smoke: FAIL [$label] mode=$mode apps=$apps" \
      "missing from fresh run"
    fail=1
    return
  fi
  verdict="$(awk -v n="$now" -v f="$floor" 'BEGIN { print (n < f) }')"
  if [[ "$verdict" == 1 ]]; then
    echo "run_perf_smoke: FAIL [$label] mode=$mode apps=$apps" \
      "epochs_per_sec=$now < absolute floor=$floor"
    fail=1
  else
    echo "run_perf_smoke: ok   [$label] mode=$mode apps=$apps" \
      "epochs_per_sec=$now >= absolute floor=$floor"
  fi
}
check_absolute_floor "$FRESH" "plain" managed 4 "$MANAGED_FLOOR"

check_whatif_speedup() {  # check_whatif_speedup FILE LABEL
  local file="$1" label="$2" speedup verdict
  speedup="$(sed -n 's/.*"whatif_snapshot_speedup": \([0-9.]*\).*/\1/p' \
    "$file")"
  if [[ -z "$speedup" ]]; then
    echo "run_perf_smoke: FAIL [$label] whatif_snapshot_speedup" \
      "missing from fresh run"
    fail=1
    return
  fi
  verdict="$(awk -v s="$speedup" -v min="$WHATIF_SPEEDUP_MIN" \
    'BEGIN { print (s < min) }')"
  if [[ "$verdict" == 1 ]]; then
    echo "run_perf_smoke: FAIL [$label] what-if snapshot speedup" \
      "${speedup}x < ${WHATIF_SPEEDUP_MIN}x over fresh re-simulation"
    fail=1
  else
    echo "run_perf_smoke: ok   [$label] what-if snapshot speedup" \
      "${speedup}x >= ${WHATIF_SPEEDUP_MIN}x over fresh re-simulation"
  fi
}
check_whatif_speedup "$FRESH" "plain"

if [[ "$fail" != 0 ]]; then
  echo "run_perf_smoke: REGRESSION DETECTED (>${REGRESSION_PCT}% below baseline)"
  exit 1
fi
echo "run_perf_smoke: all points within ${REGRESSION_PCT}% of baseline"
