// copartctl — command-line front end for the CoPart library.
//
// Subcommands:
//   benchmarks                       list the built-in workload surrogates
//   characterize <bench>             (ways x MBA) sweep + category (§4.1)
//   run <mix> <policy> [count] [s]   one consolidation experiment
//   compare <mix> [count]            all policies side by side
//   oracle <mix> [count]             show the offline ST search result
//   casestudy [--eq]                 the §6.3 LC + batch scenario
//   serve [--csv p] [--out p]        §6.3 burst trace served by the
//                                    discrete-event engine under CoPart SLO
//                                    mode vs. EqualShare vs. NoPart
//   sensing [mix] [count] [s]        exact vs. estimated vs. noisy PMC
//                                    sensing A/B table (DESIGN.md §10)
//   chaos [schedules] [base_seed]    randomized fault schedules vs. the
//                                    hardened controller (DESIGN.md §7)
//   fleet [nodes] [epochs]           fault-tolerant fleet serving: diurnal
//                                    job arrivals over N nodes, background
//                                    node faults, one crash wave, live
//                                    migration with verify/rollback
//   policies [--many N] [--apps N] [--duration s] [--json path]
//                                    partition-policy A/B table: CoPart vs
//                                    the clustered LFOC / LFOC+ / CBP
//                                    rivals over the paper mixes plus the
//                                    many-apps scenario (DESIGN.md §14)
//   governors [--json p] [--csv p] [--out p]
//                                    SLO-governor A/B table: threshold vs
//                                    the learned MPC / bandit governors
//                                    over burst, diurnal, flash-crowd and
//                                    phase-shift arrivals (DESIGN.md §15).
//                                    Self-checks the extracted threshold
//                                    governor against the serve golden
//                                    first; exits non-zero on divergence.
//   trace <mix|casestudy|serve|cluster> [count] [s]  run CoPart (or the
//                                    casestudy / serve / cluster demo
//                                    scenario) with observability on
//                                    and export <prefix>.trace.json (Chrome
//                                    trace), .audit.json, .metrics.json
//
// Mixes: H-LLC H-BW H-Both M-LLC M-BW M-Both IS
// Policies: EQ ST CAT-only MBA-only CoPart UCP NoPart
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/cluster.h"
#include "common/parallel.h"
#include "harness/case_study.h"
#include "harness/chaos.h"
#include "harness/experiment.h"
#include "harness/fleet.h"
#include "harness/governor_ab.h"
#include "harness/heatmap.h"
#include "harness/mix.h"
#include "harness/policy_ab.h"
#include "harness/sensing.h"
#include "harness/serve.h"
#include "harness/static_oracle.h"
#include "harness/table_printer.h"
#include "machine/simulated_machine.h"
#include "obs/obs.h"
#include "workload/workload.h"

namespace copart {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: copartctl [--threads N] <command> [args]\n"
      "  benchmarks\n"
      "  characterize <bench>\n"
      "  run <mix> <policy> [app_count] [duration_sec]\n"
      "  compare <mix> [app_count]\n"
      "  oracle <mix> [app_count]\n"
      "  casestudy [--eq]\n"
      "  serve [--csv prefix] [--out prefix]\n"
      "  sensing [mix] [app_count] [duration_sec] [--csv path]\n"
      "  chaos [schedules] [base_seed] | chaos --seed <schedule_seed>\n"
      "  fleet [nodes] [epochs] [--seed S] [--wave epoch] [--out prefix]\n"
      "  policies [--many N] [--apps N] [--duration s] [--json path]\n"
      "  governors [--json path] [--csv path] [--out prefix]\n"
      "  trace <mix|casestudy|serve|cluster> [app_count] [duration_sec] "
      "[--out prefix]\n"
      "mixes: H-LLC H-BW H-Both M-LLC M-BW M-Both IS\n"
      "policies: EQ ST CAT-only MBA-only CoPart UCP NoPart\n"
      "--threads N: fan sweeps (characterize, oracle) out over N worker\n"
      "             threads; default = hardware concurrency. Results are\n"
      "             identical for every thread count.\n");
  return 2;
}

Result<WorkloadDescriptor> FindBenchmark(const std::string& name) {
  std::vector<WorkloadDescriptor> all = AllTable2Benchmarks();
  all.push_back(Stream());
  all.push_back(Memcached());
  all.push_back(WordCount());
  all.push_back(Kmeans());
  all.push_back(PhasedScanCompute());
  for (WorkloadDescriptor& descriptor : all) {
    if (descriptor.name == name || descriptor.short_name == name) {
      return descriptor;
    }
  }
  return NotFoundError("unknown benchmark: " + name);
}

Result<MixFamily> FindMix(const std::string& name) {
  for (MixFamily family : AllMixFamilies()) {
    if (name == MixFamilyName(family)) {
      return family;
    }
  }
  return NotFoundError("unknown mix: " + name);
}

Result<PolicyFactory> FindPolicy(const std::string& name) {
  for (auto& [policy_name, factory] : StandardPolicies()) {
    if (name == policy_name) {
      return factory;
    }
  }
  if (name == "UCP") {
    return UcpFactory();
  }
  if (name == "NoPart") {
    return NoPartFactory();
  }
  return NotFoundError("unknown policy: " + name);
}

int CmdBenchmarks() {
  std::vector<std::vector<std::string>> rows;
  for (const WorkloadDescriptor& d : AllTable2Benchmarks()) {
    rows.push_back({d.short_name, d.name, WorkloadCategoryName(d.category)});
  }
  for (const WorkloadDescriptor& d :
       {Stream(), Memcached(), WordCount(), Kmeans(), PhasedScanCompute()}) {
    rows.push_back({d.short_name, d.name, WorkloadCategoryName(d.category)});
  }
  PrintTable({"id", "name", "category"}, rows);
  return 0;
}

int CmdCharacterize(const std::string& name, const ParallelConfig& parallel) {
  Result<WorkloadDescriptor> descriptor = FindBenchmark(name);
  if (!descriptor.ok()) {
    std::fprintf(stderr, "%s\n", descriptor.status().ToString().c_str());
    return 1;
  }
  const SoloHeatmap map =
      SweepSoloPerformance(*descriptor, MachineConfig{}, 4, parallel);
  std::vector<std::string> row_labels, col_labels;
  for (uint32_t ways : map.way_counts) {
    row_labels.push_back(std::to_string(ways) + "w");
  }
  for (uint32_t mba : map.mba_percents) {
    col_labels.push_back(std::to_string(mba) + "%");
  }
  PrintHeatmap(descriptor->name + ": normalized IPS (rows = ways, cols = MBA)",
               row_labels, col_labels, map.normalized_ips);
  std::printf("90%% of peak: >= %u ways (at MBA 100), >= %u%% MBA (at 11 ways)\n",
              map.MinWaysForFraction(0.9), map.MinMbaForFraction(0.9));
  std::printf("sweep: %s\n", map.stats.Summary().c_str());
  return 0;
}

void PrintExperiment(const ExperimentResult& result) {
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < result.app_names.size(); ++i) {
    rows.push_back({result.app_names[i], FormatSci(result.avg_ips[i]),
                    FormatSci(result.solo_full_ips[i]),
                    FormatFixed(result.slowdowns[i], 3)});
  }
  PrintTable({"app", "avg IPS", "solo-full IPS", "slowdown"}, rows);
  std::printf("unfairness: %.4f   throughput (geomean IPS): %.3e\n",
              result.unfairness, result.throughput_geomean);
  if (result.avg_exploration_us > 0.0) {
    std::printf("mean exploration step: %.2f us\n",
                result.avg_exploration_us);
  }
}

int CmdRun(const std::string& mix_name, const std::string& policy_name,
           size_t count, double duration) {
  Result<MixFamily> family = FindMix(mix_name);
  Result<PolicyFactory> factory = FindPolicy(policy_name);
  if (!family.ok() || !factory.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!family.ok() ? family.status() : factory.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  ExperimentConfig config;
  config.duration_sec = duration;
  const WorkloadMix mix = MakeMix(*family, count);
  std::printf("%s on %s (%zu apps, %.0fs):\n", policy_name.c_str(),
              mix.name.c_str(), mix.apps.size(), duration);
  PrintExperiment(RunExperiment(mix, *factory, config));
  return 0;
}

int CmdCompare(const std::string& mix_name, size_t count) {
  Result<MixFamily> family = FindMix(mix_name);
  if (!family.ok()) {
    std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
    return 1;
  }
  const WorkloadMix mix = MakeMix(*family, count);
  auto policies = StandardPolicies();
  policies.emplace_back("UCP", UcpFactory());
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, factory] : policies) {
    const ExperimentResult result = RunExperiment(mix, factory, {});
    rows.push_back({name, FormatFixed(result.unfairness, 4),
                    FormatSci(result.throughput_geomean)});
  }
  std::printf("mix %s:\n", mix.name.c_str());
  PrintTable({"policy", "unfairness", "geomean IPS"}, rows);
  return 0;
}

int CmdOracle(const std::string& mix_name, size_t count,
              const ParallelConfig& parallel) {
  Result<MixFamily> family = FindMix(mix_name);
  if (!family.ok()) {
    std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
    return 1;
  }
  const WorkloadMix mix = MakeMix(*family, count);
  MachineConfig machine_config;
  machine_config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(machine_config);
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    Result<AppId> app =
        machine.LaunchApp(descriptor, CoresPerApp(mix.apps.size()));
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
  }
  const ResourcePool pool{.first_way = 0, .num_ways = 11,
                          .max_mba_percent = 100};
  const StaticOracleResult oracle =
      FindStaticOracleState(machine, apps, pool, parallel);
  std::printf("mix %s: best static state %s\n", mix.name.c_str(),
              oracle.best_state.ToString().c_str());
  std::printf("predicted unfairness %.4f (%zu states evaluated)\n",
              oracle.best_unfairness, oracle.states_evaluated);
  std::printf("sweep: %s\n", oracle.stats.Summary().c_str());
  return 0;
}

int CmdCaseStudy(bool use_eq) {
  CaseStudyConfig config;
  config.use_copart = !use_eq;
  const CaseStudyResult result = RunCaseStudy(config);
  std::printf("manager: %s\n",
              use_eq ? "EqualShare (static split, no SLO awareness)"
                     : "CoPart (SLO mode)");
  std::printf("mean batch unfairness: %.4f\n", result.mean_batch_unfairness);
  std::printf("LC run p95: %.3f ms (%llu/%llu requests completed, "
              "%llu dropped)\n",
              result.lc_run_p95_ms,
              static_cast<unsigned long long>(result.lc_completions),
              static_cast<unsigned long long>(result.lc_arrivals),
              static_cast<unsigned long long>(result.lc_drops));
  std::printf("p95 SLO violations: %.1f%% of samples\n",
              100.0 * result.slo_violation_fraction);
  if (!use_eq) {
    std::printf("re-adaptations: %llu\n",
                static_cast<unsigned long long>(result.copart_adaptations));
  }
  return 0;
}

// The §6.3 burst scenario served by the discrete-event engine under all
// three modes. --csv writes one per-epoch series per mode; --out attaches
// the observability bundle to the CoPart cell and exports its artifacts.
int CmdServe(const std::string& csv_prefix, const std::string& obs_prefix,
             const ParallelConfig& parallel) {
  Observability obs;
  ServeScenarioConfig config = Section63ServeScenario();
  if (!obs_prefix.empty()) {
    config.obs = &obs;
  }
  const ServeComparisonResult result = RunServeComparison(config, parallel);

  auto fmt = [](const char* spec, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, value);
    return std::string(buf);
  };
  std::vector<std::vector<std::string>> rows;
  for (const ServeScenarioResult* mode :
       {&result.copart, &result.equal_share, &result.no_part}) {
    const ServeLcResult& lc = mode->lc.front();
    rows.push_back({ServeModeName(mode->mode),
                    fmt("%.1f%%", 100.0 * lc.slo_violation_fraction),
                    fmt("%.3f", lc.p50_ms), fmt("%.3f", lc.p95_ms),
                    fmt("%.3f", lc.p99_ms), std::to_string(lc.drops),
                    fmt("%.4f", mode->run_batch_unfairness)});
  }
  PrintTable({"mode", "slo_viol", "p50_ms", "p95_ms", "p99_ms", "drops",
              "batch_unfairness"},
             rows);
  const ServeLcResult& lc = result.copart.lc.front();
  std::printf("SLO: p95 <= %.1f ms; CoPart resizes: %llu, re-adaptations: "
              "%llu\n",
              lc.slo_p95_ms,
              static_cast<unsigned long long>(result.copart.slo_resizes),
              static_cast<unsigned long long>(result.copart.copart_adaptations));

  if (!csv_prefix.empty()) {
    for (const ServeScenarioResult* mode :
         {&result.copart, &result.equal_share, &result.no_part}) {
      const std::string path =
          csv_prefix + "_" + ServeModeName(mode->mode) + ".csv";
      const Status status = WriteServeCsv(*mode, path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("series -> %s\n", path.c_str());
    }
  }
  if (!obs_prefix.empty()) {
    const Status status = obs.ExportAll(obs_prefix);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("observability -> %s.{trace,audit,metrics}.json\n",
                obs_prefix.c_str());
  }
  return 0;
}

int CmdSensing(const std::string& mix_name, size_t count, double duration,
               const std::string& csv_path, const ParallelConfig& parallel) {
  Result<MixFamily> family = FindMix(mix_name);
  if (!family.ok()) {
    std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
    return 1;
  }
  SensingConfig config;
  config.family = *family;
  config.app_count = count;
  config.duration_sec = duration;
  config.parallel = parallel;
  const SensingComparison comparison = RunSensingComparison(config);
  std::fputs(FormatSensingTable(comparison).c_str(), stdout);
  if (!csv_path.empty()) {
    const Status status = WriteSensingCsv(comparison, csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("csv -> %s\n", csv_path.c_str());
  }
  return 0;
}

int CmdChaos(int num_schedules, uint64_t base_seed,
             const ParallelConfig& parallel) {
  ChaosSuiteConfig config;
  config.num_schedules = num_schedules;
  config.base_seed = base_seed;
  const ChaosSuiteResult suite = RunChaosSuite(config, parallel);
  std::printf("chaos: %d/%d schedules passed (base seed 0x%llx)\n",
              suite.num_passed, suite.num_schedules,
              static_cast<unsigned long long>(base_seed));
  std::printf(
      "injected failures: %llu  actuation failures: %llu  rollbacks: %llu\n",
      static_cast<unsigned long long>(suite.injected_failures),
      static_cast<unsigned long long>(suite.actuation_failures),
      static_cast<unsigned long long>(suite.rollbacks));
  std::printf(
      "degraded entries: %llu  recoveries: %llu  quarantines: %llu\n",
      static_cast<unsigned long long>(suite.degraded_entries),
      static_cast<unsigned long long>(suite.degraded_recoveries),
      static_cast<unsigned long long>(suite.quarantines));
  for (const ChaosScheduleResult& failure : suite.failures) {
    std::fprintf(stderr,
                 "FAILED schedule seed 0x%llx at period %d: %s\n"
                 "  replay: copartctl chaos --seed 0x%llx\n",
                 static_cast<unsigned long long>(failure.seed),
                 failure.failure_period, failure.failure.c_str(),
                 static_cast<unsigned long long>(failure.seed));
  }
  return suite.failures.empty() ? 0 : 1;
}

int CmdChaosReplay(uint64_t seed) {
  ChaosScheduleConfig config;
  config.seed = seed;
  const ChaosScheduleResult result = RunChaosSchedule(config);
  std::printf("schedule seed 0x%llx: %s\n",
              static_cast<unsigned long long>(seed),
              result.passed ? "PASSED" : "FAILED");
  if (!result.passed) {
    std::printf("  period %d: %s\n", result.failure_period,
                result.failure.c_str());
  }
  std::printf(
      "injected failures: %llu  actuation failures: %llu  rollbacks: %llu\n"
      "degraded entries: %llu  recoveries: %llu  quarantines: %llu\n",
      static_cast<unsigned long long>(result.injected_failures),
      static_cast<unsigned long long>(result.actuation_failures),
      static_cast<unsigned long long>(result.rollbacks),
      static_cast<unsigned long long>(result.degraded_entries),
      static_cast<unsigned long long>(result.degraded_recoveries),
      static_cast<unsigned long long>(result.quarantines));
  return result.passed ? 0 : 1;
}

// Runs a CoPart experiment with the full observability bundle attached and
// exports the three artifacts next to `prefix`. The controller trace, audit
// log, and the deterministic section of the metrics dump depend only on the
// mix and machine seed — see DESIGN.md §8.
int CmdTrace(const std::string& target, size_t count, double duration,
             const std::string& prefix) {
  Observability obs;
  if (target == "casestudy") {
    // The §6.3 case study with CoPart managing the batch slice.
    CaseStudyConfig config;
    config.obs = &obs;
    const CaseStudyResult result = RunCaseStudy(config);
    std::printf("case study (CoPart batch manager), observability on:\n");
    std::printf("mean batch unfairness: %.4f   re-adaptations: %llu\n",
                result.mean_batch_unfairness,
                static_cast<unsigned long long>(result.copart_adaptations));
  } else if (target == "serve") {
    // The §6.3 burst scenario, CoPart SLO-mode cell only.
    ServeScenarioConfig config = Section63ServeScenario();
    config.mode = ServeMode::kCopartSlo;
    config.obs = &obs;
    const ServeScenarioResult result = RunServeScenario(config);
    const ServeLcResult& lc = result.lc.front();
    std::printf("serve scenario (CoPart SLO mode), observability on:\n");
    std::printf("LC run p95: %.3f ms   SLO violations: %.1f%%   "
                "batch unfairness: %.4f\n",
                lc.p95_ms, 100.0 * lc.slo_violation_fraction,
                result.run_batch_unfairness);
  } else if (target == "cluster") {
    // A small placement demo: two managed nodes, six jobs placed by the
    // what-if policy, run to convergence. Node 0's controller carries the
    // trace/audit streams; the cluster dumps fleet gauges and placement
    // counters into the shared metrics registry.
    Cluster cluster;
    ClusterNode* n0 = cluster.AddNode("n0");
    cluster.AddNode("n1");
    n0->manager().SetObservability(&obs);
    const WorkloadDescriptor jobs[] = {WaterNsquared(), Cg(),  Sp(),
                                       Swaptions(),     Fmm(), Ep()};
    for (const WorkloadDescriptor& job : jobs) {
      const Result<Placement> placed =
          cluster.Submit(job, 4, PlacementPolicy::kWhatIfBest);
      if (!placed.ok()) {
        std::fprintf(stderr, "%s\n", placed.status().ToString().c_str());
        return 1;
      }
    }
    for (int tick = 0; tick < 40; ++tick) {
      cluster.Tick(0.5);
    }
    cluster.ExportMetrics(ObsMetrics(&obs));
    std::printf("cluster (2 nodes, 6 jobs, what-if placement), "
                "observability on node n0:\n");
    std::printf("mean node unfairness: %.4f   what-if placements: %llu\n",
                cluster.MeanNodeUnfairness(),
                static_cast<unsigned long long>(
                    cluster.placements(PlacementPolicy::kWhatIfBest)));
  } else {
    Result<MixFamily> family = FindMix(target);
    if (!family.ok()) {
      std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
      return 1;
    }
    ExperimentConfig config;
    config.duration_sec = duration;
    config.obs = &obs;
    const WorkloadMix mix = MakeMix(*family, count);
    std::printf("CoPart on %s (%zu apps, %.0fs), observability on:\n",
                mix.name.c_str(), mix.apps.size(), duration);
    PrintExperiment(RunExperiment(mix, CoPartFactory(), config));
  }
  const Status status = obs.ExportAll(prefix);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "trace: %zu events (%llu dropped) -> %s.trace.json\n"
      "audit: %zu records (%llu dropped) -> %s.audit.json\n"
      "metrics -> %s.metrics.json\n",
      obs.tracer.event_count(),
      static_cast<unsigned long long>(obs.tracer.dropped_events()),
      prefix.c_str(), obs.audit.size(),
      static_cast<unsigned long long>(obs.audit.dropped()), prefix.c_str(),
      prefix.c_str());
  return 0;
}

int CmdFleet(size_t nodes, int epochs, uint64_t seed, int wave_epoch,
             const std::string& obs_prefix, const ParallelConfig& parallel) {
  Observability obs;
  FleetScenarioConfig config;
  config.seed = seed;
  config.num_nodes = nodes;
  config.epochs = epochs;
  config.crash_wave_epoch = wave_epoch;
  // Offered load scales with the fleet so any size runs near the same
  // per-node pressure (the harness default is tuned for ~64 nodes).
  config.job_arrivals.base_rate_rps = 0.15 * static_cast<double>(nodes);
  config.crash_probability = 0.0002;
  config.slow_probability = 0.002;
  config.blackout_probability = 0.002;
  config.parallel = parallel;
  config.obs = &obs;
  std::printf("fleet: %zu nodes, %d epochs, crash wave at epoch %d, seed "
              "%llu\n",
              nodes, epochs, wave_epoch,
              static_cast<unsigned long long>(seed));
  const FleetScenarioResult r = RunFleetScenario(config);
  const FleetCounters& c = r.counters;
  std::printf(
      "jobs: %llu submitted, %llu completed, %zu resident, "
      "%llu shed (%llu admission / %llu overload / %llu migration), "
      "%llu lost to crashes\n",
      static_cast<unsigned long long>(c.submitted),
      static_cast<unsigned long long>(c.completed), r.resident_jobs,
      static_cast<unsigned long long>(c.shed_total()),
      static_cast<unsigned long long>(c.shed_admission),
      static_cast<unsigned long long>(c.shed_overload),
      static_cast<unsigned long long>(c.shed_migration),
      static_cast<unsigned long long>(c.lost_to_crash));
  std::printf(
      "faults: %llu crashes, %llu reboots, %llu slow episodes, "
      "%llu blackouts; alive %zu/%zu, recovery %d epochs\n",
      static_cast<unsigned long long>(c.crashes),
      static_cast<unsigned long long>(c.reboots),
      static_cast<unsigned long long>(c.slow_episodes),
      static_cast<unsigned long long>(c.blackout_episodes), r.alive_nodes,
      nodes, r.recovery_epochs);
  std::printf(
      "migrations: %llu planned, %llu verified, %llu rolled back, "
      "%llu failed\n",
      static_cast<unsigned long long>(c.migrations_planned),
      static_cast<unsigned long long>(c.migrations_completed),
      static_cast<unsigned long long>(c.migration_rollbacks),
      static_cast<unsigned long long>(c.migration_failures));
  std::printf("fleet p99 slowdown %.3f, mean node unfairness %.4f, "
              "%llu node-ticks\n",
              r.fleet_p99_slowdown, r.mean_node_unfairness,
              static_cast<unsigned long long>(r.node_ticks));
  if (c.invariant_violations > 0) {
    std::printf("INVARIANT VIOLATIONS: %llu (first: %s)\n",
                static_cast<unsigned long long>(c.invariant_violations),
                r.first_violation.c_str());
  } else {
    std::printf("job conservation: %llu checks, 0 violations\n",
                static_cast<unsigned long long>(c.conservation_checks));
  }
  if (!obs_prefix.empty()) {
    const Status status = obs.ExportAll(obs_prefix);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("audit: %zu records -> %s.audit.json, metrics -> "
                "%s.metrics.json\n",
                obs.audit.size(), obs_prefix.c_str(), obs_prefix.c_str());
  }
  return c.invariant_violations > 0 ? 1 : 0;
}

// The partition-policy A/B table (DESIGN.md §14): every registered policy
// over the paper's mixes plus the many-apps consolidation that per-app
// CoPart cannot cover. --json writes the full-precision serialization the
// golden test pins.
int CmdPolicies(size_t many_apps, size_t paper_apps, double duration,
                const std::string& json_path, const ParallelConfig& parallel) {
  PolicyAbConfig config;
  config.many_apps = many_apps;
  config.paper_mix_app_count = paper_apps;
  config.duration_sec = duration;
  config.parallel = parallel;
  const PolicyAbResult result = RunPolicyAb(config);
  PrintPolicyAbTable(result);
  std::printf("sweep: %s\n", result.stats.Summary().c_str());
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = PolicyAbToJson(result);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("json -> %s\n", json_path.c_str());
  }
  return 0;
}

// SLO-governor A/B comparison (DESIGN.md §15). Before trusting the table,
// verifies the extracted threshold governor still reproduces the §6.3
// serve golden byte-for-byte — if the registry's "threshold" has drifted
// from the behavior the golden pins, every baseline column is suspect.
int CmdGovernors(const std::string& json_path, const std::string& csv_path,
                 const std::string& obs_prefix,
                 const ParallelConfig& parallel) {
  const std::string golden_path =
      std::string(COPART_GOLDEN_DIR) + "/serve_golden.json";
  std::ifstream golden_in(golden_path, std::ios::binary);
  if (golden_in.good()) {
    std::ostringstream golden;
    golden << golden_in.rdbuf();
    const ServeComparisonResult canonical = RunServeComparison(
        Section63ServeScenario(), ParallelConfig{.num_threads = 1});
    if (SerializeServeComparison(canonical) != golden.str()) {
      std::fprintf(stderr,
                   "governors: threshold governor diverges from %s — the "
                   "extracted walk no longer matches the golden baseline\n",
                   golden_path.c_str());
      return 1;
    }
    std::printf("threshold governor matches %s\n", golden_path.c_str());
  } else {
    std::fprintf(stderr, "governors: warning: golden %s unreadable, "
                 "skipping threshold self-check\n", golden_path.c_str());
  }

  GovernorAbConfig config;
  config.parallel = parallel;
  const GovernorAbResult result = RunGovernorAb(config);
  PrintGovernorAbTable(result);
  std::printf("sweep: %s\n", result.stats.Summary().c_str());

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = GovernorAbToJson(result);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("json -> %s\n", json_path.c_str());
  }
  if (!csv_path.empty()) {
    const Status status = WriteGovernorAbCsv(result, csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("csv -> %s\n", csv_path.c_str());
  }
  if (!obs_prefix.empty()) {
    // Export the observability artifacts of the most instructive cell:
    // the MPC governor riding the phase-shift scenario, whose audit log
    // carries the new governor_outcome records alongside the resizes.
    Observability obs;
    for (GovernorAbScenario& scenario : GovernorAbScenarios()) {
      if (scenario.name != "phase-shift") {
        continue;
      }
      scenario.config.mode = ServeMode::kCopartSlo;
      scenario.config.copart_params.slo.governor = "mpc";
      scenario.config.obs = &obs;
      RunServeScenario(scenario.config);
    }
    const Status status = obs.ExportAll(obs_prefix);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("observability (phase-shift/mpc) -> "
                "%s.{trace,audit,metrics}.json\n",
                obs_prefix.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  const ParallelConfig parallel = ParseThreadsFlag(argc, argv);
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "benchmarks") {
    return CmdBenchmarks();
  }
  if (command == "characterize" && argc >= 3) {
    return CmdCharacterize(argv[2], parallel);
  }
  if (command == "run" && argc >= 4) {
    const size_t count = argc >= 5 ? std::strtoul(argv[4], nullptr, 10) : 4;
    const double duration = argc >= 6 ? std::strtod(argv[5], nullptr) : 50.0;
    return CmdRun(argv[2], argv[3], count, duration);
  }
  if (command == "compare" && argc >= 3) {
    const size_t count = argc >= 4 ? std::strtoul(argv[3], nullptr, 10) : 4;
    return CmdCompare(argv[2], count);
  }
  if (command == "oracle" && argc >= 3) {
    const size_t count = argc >= 4 ? std::strtoul(argv[3], nullptr, 10) : 4;
    return CmdOracle(argv[2], count, parallel);
  }
  if (command == "casestudy") {
    return CmdCaseStudy(argc >= 3 && std::strcmp(argv[2], "--eq") == 0);
  }
  if (command == "serve") {
    std::string csv_prefix;
    std::string obs_prefix;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        csv_prefix = argv[++i];
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        obs_prefix = argv[++i];
      } else {
        return Usage();
      }
    }
    return CmdServe(csv_prefix, obs_prefix, parallel);
  }
  if (command == "sensing") {
    std::string mix = "H-LLC";
    std::string csv_path;
    size_t count = 3;
    double duration = 50.0;
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        csv_path = argv[++i];
      } else if (positional == 0) {
        mix = argv[i];
        ++positional;
      } else if (positional == 1) {
        count = std::strtoul(argv[i], nullptr, 10);
        ++positional;
      } else if (positional == 2) {
        duration = std::strtod(argv[i], nullptr);
        ++positional;
      } else {
        return Usage();
      }
    }
    return CmdSensing(mix, count, duration, csv_path, parallel);
  }
  if (command == "chaos") {
    if (argc >= 4 && std::strcmp(argv[2], "--seed") == 0) {
      return CmdChaosReplay(std::strtoull(argv[3], nullptr, 0));
    }
    const int schedules =
        argc >= 3 ? static_cast<int>(std::strtol(argv[2], nullptr, 0)) : 200;
    const uint64_t base_seed =
        argc >= 4 ? std::strtoull(argv[3], nullptr, 0) : 0xC0CA05ULL;
    if (schedules <= 0) {
      std::fprintf(stderr, "chaos: schedule count must be positive\n");
      return 2;
    }
    return CmdChaos(schedules, base_seed, parallel);
  }
  if (command == "fleet") {
    size_t nodes = 256;
    int epochs = 240;
    uint64_t seed = 0xF1EE7ULL;
    int wave_epoch = 60;
    std::string obs_prefix;
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 0);
      } else if (std::strcmp(argv[i], "--wave") == 0 && i + 1 < argc) {
        wave_epoch = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        obs_prefix = argv[++i];
      } else if (positional == 0) {
        nodes = std::strtoul(argv[i], nullptr, 10);
        ++positional;
      } else if (positional == 1) {
        epochs = static_cast<int>(std::strtol(argv[i], nullptr, 10));
        ++positional;
      } else {
        return Usage();
      }
    }
    if (nodes == 0 || epochs <= 0) {
      std::fprintf(stderr, "fleet: nodes and epochs must be positive\n");
      return 2;
    }
    return CmdFleet(nodes, epochs, seed, wave_epoch, obs_prefix, parallel);
  }
  if (command == "policies") {
    size_t many_apps = 48;
    size_t paper_apps = 6;
    double duration = 50.0;
    std::string json_path;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--many") == 0 && i + 1 < argc) {
        many_apps = std::strtoul(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--apps") == 0 && i + 1 < argc) {
        paper_apps = std::strtoul(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
        duration = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path = argv[++i];
      } else {
        return Usage();
      }
    }
    return CmdPolicies(many_apps, paper_apps, duration, json_path, parallel);
  }
  if (command == "governors") {
    std::string json_path;
    std::string csv_path;
    std::string obs_prefix;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
        csv_path = argv[++i];
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        obs_prefix = argv[++i];
      } else {
        return Usage();
      }
    }
    return CmdGovernors(json_path, csv_path, obs_prefix, parallel);
  }
  if (command == "trace" && argc >= 3) {
    std::string prefix = "copart_trace";
    size_t count = 4;
    double duration = 50.0;
    int positional = 0;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        prefix = argv[++i];
      } else if (positional == 0) {
        count = std::strtoul(argv[i], nullptr, 10);
        ++positional;
      } else if (positional == 1) {
        duration = std::strtod(argv[i], nullptr);
        ++positional;
      }
    }
    return CmdTrace(argv[2], count, duration, prefix);
  }
  return Usage();
}

}  // namespace
}  // namespace copart

int main(int argc, char** argv) { return copart::Main(argc, argv); }
