// Opaque identifier for a consolidated application instance.
#ifndef COPART_MACHINE_APP_ID_H_
#define COPART_MACHINE_APP_ID_H_

#include <cstdint>
#include <functional>

namespace copart {

class AppId {
 public:
  AppId() = default;
  explicit AppId(uint32_t value) : value_(value) {}

  uint32_t value() const { return value_; }
  bool valid() const { return value_ != kInvalid; }

  bool operator==(const AppId& other) const = default;
  auto operator<=>(const AppId& other) const = default;

 private:
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
  uint32_t value_ = kInvalid;
};

}  // namespace copart

template <>
struct std::hash<copart::AppId> {
  size_t operator()(const copart::AppId& id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};

#endif  // COPART_MACHINE_APP_ID_H_
