#include "machine/shared_cache_validator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "cache/way_partitioned_cache.h"
#include "common/logging.h"
#include "common/rng.h"
#include "machine/simulated_machine.h"
#include "trace/trace_generator.h"

namespace copart {
namespace {

// Scales a reuse profile's working sets by 1/scale (minimum one line).
ReuseProfile ScaleProfile(const ReuseProfile& profile, uint32_t scale,
                          uint32_t line_bytes) {
  std::vector<ReuseComponent> components;
  for (const ReuseComponent& component : profile.components()) {
    components.push_back(
        {component.weight,
         std::max<uint64_t>(line_bytes, component.working_set_bytes / scale)});
  }
  return ReuseProfile(components, profile.streaming_weight());
}

}  // namespace

SharedCacheValidationResult ValidateSharedCache(
    const std::vector<WorkloadDescriptor>& workloads,
    const std::vector<WayMask>& masks,
    const SharedCacheValidationConfig& config) {
  CHECK_EQ(workloads.size(), masks.size());
  CHECK(!workloads.empty());
  const size_t n = workloads.size();

  // --- Analytic side: a full-scale machine with the given masks. ---
  MachineConfig machine_config = config.machine;
  machine_config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(machine_config);
  std::vector<AppId> apps;
  for (size_t i = 0; i < n; ++i) {
    // Keep every app at one core so more than four apps fit if needed; the
    // capacity fixed point scales rates per core uniformly anyway.
    Result<AppId> app = machine.LaunchApp(workloads[i], 1);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
    machine.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
    machine.SetClosWayMask(static_cast<uint32_t>(i + 1), masks[i]);
  }
  machine.AdvanceTime(0.1);

  // --- Measured side: scaled trace replay through the real LRU cache. ---
  const LlcGeometry scaled{
      .total_bytes = machine_config.llc.total_bytes / config.scale,
      .num_ways = machine_config.llc.num_ways,
      .line_bytes = machine_config.llc.line_bytes};
  WayPartitionedCache cache(scaled, static_cast<uint32_t>(n));
  Rng rng(config.seed);
  std::vector<std::unique_ptr<MixtureTraceGenerator>> generators;
  std::vector<double> weights(n);
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cache.SetMask(static_cast<uint32_t>(i), masks[i]);
    // Distinct 16 TB address spaces so apps never alias each other's lines.
    generators.push_back(std::make_unique<MixtureTraceGenerator>(
        ScaleProfile(workloads[i].reuse_profile, config.scale,
                     scaled.line_bytes),
        scaled.line_bytes, rng.Fork(), static_cast<uint64_t>(i + 1) << 44));
    // Interleave accesses in proportion to nominal LLC access rates (the
    // same weighting the analytic fixed point uses for its fill rates).
    weights[i] = workloads[i].accesses_per_instr / workloads[i].cpi_exec;
    total_weight += weights[i];
  }
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += weights[i] / total_weight;
    cumulative[i] = acc;
  }
  auto pick_app = [&]() {
    const double draw = rng.NextDouble();
    for (size_t i = 0; i < n; ++i) {
      if (draw < cumulative[i]) {
        return i;
      }
    }
    return n - 1;
  };
  for (uint64_t step = 0; step < config.warmup_accesses; ++step) {
    const size_t i = pick_app();
    cache.Access(static_cast<uint32_t>(i), generators[i]->Next());
  }
  cache.ResetStats();
  for (uint64_t step = 0; step < config.measured_accesses; ++step) {
    const size_t i = pick_app();
    cache.Access(static_cast<uint32_t>(i), generators[i]->Next());
  }

  // --- Compare. ---
  SharedCacheValidationResult result;
  const double total_lines = static_cast<double>(
      scaled.NumSets() * scaled.num_ways);
  for (size_t i = 0; i < n; ++i) {
    AppValidationResult app_result;
    app_result.name = workloads[i].name;
    const AppEpochSnapshot& epoch = machine.LastEpoch(apps[i]);
    app_result.analytic_miss_ratio = epoch.miss_ratio;
    // The model's effective capacity is the app's *available* share; the
    // trace measures actual footprint. An app whose components fit inside
    // its share only occupies its footprint plus however many streamed
    // lines the measurement window let it park there.
    double footprint_lines =
        static_cast<double>(workloads[i].reuse_profile.streaming_weight()) *
        (weights[i] / total_weight) *
        static_cast<double>(config.warmup_accesses +
                            config.measured_accesses);
    for (const ReuseComponent& component :
         workloads[i].reuse_profile.components()) {
      footprint_lines += static_cast<double>(component.working_set_bytes) /
                         config.scale / scaled.line_bytes;
    }
    const double share_lines = epoch.effective_capacity_bytes /
                               machine_config.llc.total_bytes * total_lines;
    app_result.analytic_capacity_fraction =
        std::min(share_lines, footprint_lines) / total_lines;
    app_result.measured_miss_ratio =
        cache.stats(static_cast<uint32_t>(i)).MissRatio();
    app_result.measured_occupancy_fraction =
        static_cast<double>(cache.OccupancyLines(static_cast<uint32_t>(i))) /
        total_lines;
    result.max_miss_ratio_error = std::max(
        result.max_miss_ratio_error,
        std::abs(app_result.measured_miss_ratio -
                 app_result.analytic_miss_ratio));
    result.max_occupancy_error = std::max(
        result.max_occupancy_error,
        std::abs(app_result.measured_occupancy_fraction -
                 app_result.analytic_capacity_fraction));
    result.apps.push_back(std::move(app_result));
  }
  return result;
}

}  // namespace copart
