#include "machine/simulated_machine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace copart {
namespace {

// Below this misses-per-instruction the app is treated as generating no
// memory traffic (avoids 0/0 in the roofline division).
constexpr double kNegligibleMpi = 1e-15;

// Fixed-point iterations for the shared-capacity solve. Occupancy converges
// geometrically; four rounds are plenty for the accuracy the model needs.
constexpr int kCapacityIterations = 4;

constexpr double kUncapped = std::numeric_limits<double>::infinity();

}  // namespace

SimulatedMachine::SimulatedMachine(const MachineConfig& config)
    : config_(config),
      throttle_model_(config.mba_cap_exponent),
      arbiter_(config.total_memory_bandwidth),
      rng_(config.seed) {
  CHECK_GT(config_.num_cores, 0u);
  CHECK_GT(config_.num_clos, 0u);
  clos_.resize(config_.num_clos);
  for (ClosSetting& state : clos_) {
    state.way_mask = WayMask::Contiguous(0, config_.llc.num_ways);
    state.mba_level = MbaLevel();  // 100%
  }
}

Result<AppId> SimulatedMachine::LaunchApp(const WorkloadDescriptor& descriptor,
                                          std::optional<uint32_t> num_cores) {
  const uint32_t cores = num_cores.value_or(descriptor.num_threads);
  if (cores == 0) {
    return InvalidArgumentError("app must use at least one core");
  }
  if (used_cores_ + cores > config_.num_cores) {
    return ResourceExhaustedError("not enough free cores for " +
                                  descriptor.name);
  }
  App app;
  app.id = AppId(next_app_id_++);
  app.descriptor = descriptor;
  app.num_cores = cores;
  app.launch_time = now_;
  used_cores_ += cores;
  ++app_generation_;
  ++input_generation_;
  ++capacity_generation_;
  app_index_[app.id] = apps_.size();
  apps_.push_back(std::move(app));
  app_clos_.push_back(0);
  required_ips_.push_back(kUncapped);
  prefetch_percent_.push_back(100);
  counters_.emplace_back();
  last_epoch_.emplace_back();
  return apps_.back().id;
}

Status SimulatedMachine::TerminateApp(AppId id) {
  const auto it = app_index_.find(id);
  if (it == app_index_.end()) {
    return NotFoundError("no such app");
  }
  const size_t index = it->second;
  used_cores_ -= apps_[index].num_cores;
  apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(index));
  app_clos_.erase(app_clos_.begin() + static_cast<ptrdiff_t>(index));
  required_ips_.erase(required_ips_.begin() + static_cast<ptrdiff_t>(index));
  prefetch_percent_.erase(prefetch_percent_.begin() +
                          static_cast<ptrdiff_t>(index));
  counters_.erase(counters_.begin() + static_cast<ptrdiff_t>(index));
  last_epoch_.erase(last_epoch_.begin() + static_cast<ptrdiff_t>(index));
  app_index_.erase(it);
  // The erase shifted every later app down one slot.
  for (auto& [app_id, app_pos] : app_index_) {
    if (app_pos > index) {
      --app_pos;
    }
  }
  ++app_generation_;
  ++input_generation_;
  ++capacity_generation_;
  return Status::Ok();
}

std::vector<AppId> SimulatedMachine::ListApps() const {
  std::vector<AppId> ids;
  ids.reserve(apps_.size());
  for (const App& app : apps_) {
    ids.push_back(app.id);
  }
  return ids;
}

bool SimulatedMachine::AppExists(AppId id) const {
  return app_index_.find(id) != app_index_.end();
}

size_t SimulatedMachine::IndexOf(AppId id) const {
  const auto it = app_index_.find(id);
  if (it == app_index_.end()) {
    LOG_FATAL << "no such app: " << id.value();
    __builtin_unreachable();
  }
  return it->second;
}

const SimulatedMachine::App& SimulatedMachine::GetApp(AppId id) const {
  return apps_[IndexOf(id)];
}

const WorkloadDescriptor& SimulatedMachine::Descriptor(AppId id) const {
  return GetApp(id).descriptor;
}

uint32_t SimulatedMachine::AppCores(AppId id) const {
  return GetApp(id).num_cores;
}

double SimulatedMachine::AppLaunchTime(AppId id) const {
  return GetApp(id).launch_time;
}

void SimulatedMachine::SetClosWayMask(uint32_t clos, const WayMask& mask) {
  CHECK_LT(clos, clos_.size());
  CHECK(!mask.Empty()) << "CLOS way mask must keep at least one way";
  CHECK_LE(mask.FirstWay() + mask.CountWays(), config_.llc.num_ways);
  if (clos_[clos].way_mask == mask) {
    return;  // No observable change: keep the cached solve valid.
  }
  clos_[clos].way_mask = mask;
  ++input_generation_;
  ++capacity_generation_;
}

void SimulatedMachine::SetClosMbaLevel(uint32_t clos, MbaLevel level) {
  CHECK_LT(clos, clos_.size());
  if (clos_[clos].mba_level == level) {
    return;
  }
  clos_[clos].mba_level = level;
  ++input_generation_;
}

void SimulatedMachine::AssignAppToClos(AppId id, uint32_t clos) {
  CHECK_LT(clos, clos_.size());
  const size_t index = IndexOf(id);
  if (app_clos_[index] == clos) {
    return;
  }
  app_clos_[index] = clos;
  ++input_generation_;
  ++capacity_generation_;
}

const WayMask& SimulatedMachine::ClosWayMask(uint32_t clos) const {
  CHECK_LT(clos, clos_.size());
  return clos_[clos].way_mask;
}

MbaLevel SimulatedMachine::ClosMbaLevel(uint32_t clos) const {
  CHECK_LT(clos, clos_.size());
  return clos_[clos].mba_level;
}

uint32_t SimulatedMachine::AppClos(AppId id) const {
  return app_clos_[IndexOf(id)];
}

void SimulatedMachine::SetAppRequiredIps(AppId id,
                                         std::optional<double> required_ips) {
  if (required_ips.has_value()) {
    CHECK_GT(*required_ips, 0.0);
  }
  const size_t index = IndexOf(id);
  const double cap = required_ips.value_or(kUncapped);
  if (required_ips_[index] == cap) {
    return;
  }
  required_ips_[index] = cap;
  ++input_generation_;
}

void SimulatedMachine::SetAppPrefetchPercent(AppId id, uint32_t percent) {
  CHECK_LE(percent, 100u);
  const size_t index = IndexOf(id);
  if (prefetch_percent_[index] == percent) {
    return;
  }
  prefetch_percent_[index] = percent;
  // Bandwidth tier only: the latency/demand factors never feed the capacity
  // fixed point, so the incremental tick keeps the cached capacities.
  ++input_generation_;
}

uint32_t SimulatedMachine::AppPrefetchPercent(AppId id) const {
  return prefetch_percent_[IndexOf(id)];
}

double SimulatedMachine::UnconstrainedCpi(const WorkloadDescriptor& d,
                                          double cpi_exec, double mpi,
                                          MbaLevel level, double contention,
                                          double prefetch_lat) {
  const double stall_per_miss =
      contention * d.mem_latency_cycles / d.mlp * prefetch_lat;
  const double throttle_stretch =
      1.0 + d.mba_kappa * (100.0 / level.percent() - 1.0);
  return cpi_exec + mpi * stall_per_miss * throttle_stretch;
}

SimulatedMachine::EffectiveParams SimulatedMachine::EffectiveParamsFor(
    const App& app, size_t phase_index) const {
  const WorkloadDescriptor& d = app.descriptor;
  const WorkloadPhase phase =
      d.phases.empty() ? WorkloadPhase{} : d.phases[phase_index];
  EffectiveParams params;
  params.accesses_per_instr =
      d.accesses_per_instr * phase.access_intensity_scale;
  params.cpi_exec = d.cpi_exec * phase.cpi_exec_scale;
  params.phase_index = phase_index;
  if (phase.streaming_scale == 1.0) {
    params.profile = d.reuse_profile;
  } else {
    // Scale the streaming share of the profile, stealing from / returning
    // to the residual (always-hit) weight so the total never exceeds 1.
    double component_weight = 0.0;
    for (const ReuseComponent& component : d.reuse_profile.components()) {
      component_weight += component.weight;
    }
    const double scaled = std::min(
        d.reuse_profile.streaming_weight() * phase.streaming_scale,
        1.0 - component_weight);
    params.profile = ReuseProfile(d.reuse_profile.components(), scaled);
  }
  return params;
}

void SimulatedMachine::RefreshEffectiveParams() {
  const size_t n = apps_.size();
  if (params_generation_ != app_generation_) {
    params_cache_.clear();
    params_cache_.reserve(n);
    phased_apps_.clear();
    for (size_t i = 0; i < n; ++i) {
      const App& app = apps_[i];
      params_cache_.push_back(EffectiveParamsFor(
          app, app.descriptor.PhaseIndexAt(now_ - app.launch_time)));
      if (!app.descriptor.phases.empty()) {
        phased_apps_.push_back(i);
      }
    }
    params_generation_ = app_generation_;
    return;
  }
  for (const size_t i : phased_apps_) {
    const App& app = apps_[i];
    const size_t phase_index =
        app.descriptor.PhaseIndexAt(now_ - app.launch_time);
    if (phase_index != params_cache_[i].phase_index) {
      params_cache_[i] = EffectiveParamsFor(app, phase_index);
      // A phase crossing changes the solve inputs, including the profile
      // and access intensity the capacity fixed point reads.
      ++input_generation_;
      ++capacity_generation_;
    }
  }
}

void SimulatedMachine::RefreshSoaInputs() {
  if (soa_input_generation_ == input_generation_ &&
      soa_app_generation_ == app_generation_) {
    return;
  }
  const size_t n = apps_.size();
  soa_cores_hz_.resize(n);
  soa_api_.resize(n);
  soa_cpi_exec_.resize(n);
  soa_mem_lat_.resize(n);
  soa_mlp_.resize(n);
  soa_kappa_.resize(n);
  soa_mba_term_.resize(n);
  soa_cap_bps_.resize(n);
  soa_pf_lat_.resize(n);
  soa_pf_bw_.resize(n);
  solved_ips_.resize(n);
  solved_capability_.resize(n);
  solved_miss_ratio_.resize(n);
  solved_capacity_.resize(n);
  solved_demand_.resize(n);
  solved_grant_.resize(n);
  solved_mpi_.resize(n);
  solved_api_.resize(n);
  clos_mask_bits_.resize(clos_.size());
  for (size_t c = 0; c < clos_.size(); ++c) {
    clos_mask_bits_[c] = clos_[c].way_mask.bits();
  }
  for (size_t i = 0; i < n; ++i) {
    const App& app = apps_[i];
    soa_cores_hz_[i] = app.num_cores * config_.core_freq_hz;
    soa_api_[i] = params_cache_[i].accesses_per_instr;
    soa_cpi_exec_[i] = params_cache_[i].cpi_exec;
    soa_mem_lat_[i] = app.descriptor.mem_latency_cycles;
    soa_mlp_[i] = app.descriptor.mlp;
    soa_kappa_[i] = app.descriptor.mba_kappa;
    const MbaLevel level = clos_[app_clos_[i]].mba_level;
    soa_mba_term_[i] = 100.0 / level.percent() - 1.0;
    soa_cap_bps_[i] =
        throttle_model_.CapFraction(level) * config_.total_memory_bandwidth;
    const double throttled = 1.0 - prefetch_percent_[i] / 100.0;
    soa_pf_lat_[i] = 1.0 + config_.prefetch_latency_penalty * throttled;
    soa_pf_bw_[i] = 1.0 - config_.prefetch_bw_share * throttled;
  }
  soa_input_generation_ = input_generation_;
  soa_app_generation_ = app_generation_;
}

void SimulatedMachine::SolveEffectiveCapacities() {
  const size_t n = apps_.size();
  scratch_capacities_.assign(n, 0.0);
  if (n == 0) {
    return;
  }
  const double way_bytes = static_cast<double>(config_.llc.WayBytes());

  // The CLOSes that actually host apps this epoch; the way split only has
  // to iterate these, not all apps (all sharers of a CLOS see one mask).
  scratch_clos_weight_.assign(clos_.size(), 0.0);
  scratch_clos_capacity_.assign(clos_.size(), 0.0);
  scratch_active_clos_.clear();
  for (const uint32_t clos : app_clos_) {
    if (scratch_clos_weight_[clos] == 0.0) {
      scratch_active_clos_.push_back(clos);
      scratch_clos_weight_[clos] = 1.0;  // Presence marker.
    }
  }

  // Fill-intensity weights; initialized equal, refined by the fixed point.
  scratch_weights_.assign(n, 1.0);
  for (int iteration = 0; iteration <= kCapacityIterations; ++iteration) {
    // Split each way among the CLOSes that may allocate into it, then give
    // every app its fill-weight share of its CLOS's cut.
    for (const uint32_t clos : scratch_active_clos_) {
      scratch_clos_weight_[clos] = 0.0;
      scratch_clos_capacity_[clos] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_clos_weight_[app_clos_[i]] += scratch_weights_[i];
    }
    for (uint32_t way = 0; way < config_.llc.num_ways; ++way) {
      double total_weight = 0.0;
      for (const uint32_t clos : scratch_active_clos_) {
        if (clos_[clos].way_mask.Contains(way)) {
          total_weight += scratch_clos_weight_[clos];
        }
      }
      if (total_weight <= 0.0) {
        continue;
      }
      for (const uint32_t clos : scratch_active_clos_) {
        if (clos_[clos].way_mask.Contains(way)) {
          scratch_clos_capacity_[clos] +=
              way_bytes * scratch_clos_weight_[clos] / total_weight;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_capacities_[i] = scratch_clos_capacity_[app_clos_[i]] *
                               scratch_weights_[i] /
                               scratch_clos_weight_[app_clos_[i]];
    }
    if (iteration == kCapacityIterations) {
      break;
    }
    // Refine weights: occupancy under LRU is proportional to fill (miss)
    // intensity. Use the nominal (stall-free) instruction rate as the scale.
    for (size_t i = 0; i < n; ++i) {
      const double miss_ratio = params_cache_[i].profile.MissRatio(
          static_cast<uint64_t>(scratch_capacities_[i]), config_.mrc_mode);
      const double nominal_ips = apps_[i].num_cores * config_.core_freq_hz /
                                 params_cache_[i].cpi_exec;
      scratch_weights_[i] =
          nominal_ips * params_cache_[i].accesses_per_instr * miss_ratio +
          1e-6;
    }
  }
}

void SimulatedMachine::SolveEffectiveCapacitiesVectorized() {
  const size_t n = apps_.size();
  scratch_capacities_.assign(n, 0.0);
  if (n == 0) {
    return;
  }
  const double way_bytes = static_cast<double>(config_.llc.WayBytes());

  scratch_clos_weight_.assign(clos_.size(), 0.0);
  scratch_clos_capacity_.assign(clos_.size(), 0.0);
  scratch_active_clos_.clear();
  for (const uint32_t clos : app_clos_) {
    if (scratch_clos_weight_[clos] == 0.0) {
      scratch_active_clos_.push_back(clos);
      scratch_clos_weight_[clos] = 1.0;  // Presence marker.
    }
  }

  scratch_miss_ratios_.resize(n);
  scratch_weights_.assign(n, 1.0);
  for (int iteration = 0; iteration <= kCapacityIterations; ++iteration) {
    for (const uint32_t clos : scratch_active_clos_) {
      scratch_clos_weight_[clos] = 0.0;
      scratch_clos_capacity_[clos] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_clos_weight_[app_clos_[i]] += scratch_weights_[i];
    }
    for (uint32_t way = 0; way < config_.llc.num_ways; ++way) {
      double total_weight = 0.0;
      for (const uint32_t clos : scratch_active_clos_) {
        if ((clos_mask_bits_[clos] >> way) & 1u) {
          total_weight += scratch_clos_weight_[clos];
        }
      }
      if (total_weight <= 0.0) {
        continue;
      }
      for (const uint32_t clos : scratch_active_clos_) {
        if ((clos_mask_bits_[clos] >> way) & 1u) {
          scratch_clos_capacity_[clos] +=
              way_bytes * scratch_clos_weight_[clos] / total_weight;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_capacities_[i] = scratch_clos_capacity_[app_clos_[i]] *
                               scratch_weights_[i] /
                               scratch_clos_weight_[app_clos_[i]];
    }
    if (iteration == kCapacityIterations) {
      break;
    }
    // Miss-ratio queries stay a scalar loop (table walk per app); the weight
    // refinement is elementwise over the flat arrays.
    for (size_t i = 0; i < n; ++i) {
      scratch_miss_ratios_[i] = params_cache_[i].profile.MissRatio(
          static_cast<uint64_t>(scratch_capacities_[i]), config_.mrc_mode);
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_weights_[i] = soa_cores_hz_[i] / soa_cpi_exec_[i] * soa_api_[i] *
                                scratch_miss_ratios_[i] +
                            1e-6;
    }
  }
}

void SimulatedMachine::SolveEpochScalar() {
  const size_t n = apps_.size();
  SolveEffectiveCapacities();
  const std::vector<EffectiveParams>& params = params_cache_;
  const std::vector<double>& capacities = scratch_capacities_;

  // Pass 1: contention-free IPS and bandwidth demands.
  scratch_miss_ratios_.resize(n);
  scratch_mpis_.resize(n);
  scratch_requests_.resize(n);
  std::vector<double>& miss_ratios = scratch_miss_ratios_;
  std::vector<double>& mpis = scratch_mpis_;
  std::vector<BandwidthRequest>& requests = scratch_requests_;
  for (size_t i = 0; i < n; ++i) {
    const App& app = apps_[i];
    const WorkloadDescriptor& d = app.descriptor;
    const MbaLevel level = clos_[app_clos_[i]].mba_level;
    miss_ratios[i] = params[i].profile.MissRatio(
        static_cast<uint64_t>(capacities[i]), config_.mrc_mode);
    mpis[i] = params[i].accesses_per_instr * miss_ratios[i];
    const double cpi = UnconstrainedCpi(d, params[i].cpi_exec, mpis[i], level,
                                        /*contention=*/1.0, soa_pf_lat_[i]);
    double ips = app.num_cores * config_.core_freq_hz / cpi;
    ips = std::min(ips, required_ips_[i]);
    requests[i].demand_bytes_per_sec =
        ips * mpis[i] * config_.llc.line_bytes * soa_pf_bw_[i];
    requests[i].cap_bytes_per_sec =
        throttle_model_.CapFraction(level) * config_.total_memory_bandwidth;
  }

  arbiter_.ArbitrateInto(requests, &scratch_grants_);
  const std::vector<double>& grants = scratch_grants_;

  // Controller utilization -> queueing delay stretch on every miss.
  double total_grant = 0.0;
  for (const double grant : grants) {
    total_grant += grant;
  }
  const double rho =
      std::min(1.0, total_grant / config_.total_memory_bandwidth);
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;

  // Pass 2: contention-adjusted IPS, bounded by the bandwidth grant.
  for (size_t i = 0; i < n; ++i) {
    const App& app = apps_[i];
    const WorkloadDescriptor& d = app.descriptor;
    const MbaLevel level = clos_[app_clos_[i]].mba_level;
    const double cpi = UnconstrainedCpi(d, params[i].cpi_exec, mpis[i], level,
                                        contention, soa_pf_lat_[i]);
    double ips = app.num_cores * config_.core_freq_hz / cpi;
    solved_capability_[i] = ips;
    ips = std::min(ips, required_ips_[i]);
    if (mpis[i] > kNegligibleMpi) {
      ips = std::min(ips, grants[i] / (mpis[i] * config_.llc.line_bytes *
                                       soa_pf_bw_[i]));
    }
    solved_ips_[i] = ips;
    solved_miss_ratio_[i] = miss_ratios[i];
    solved_capacity_[i] = capacities[i];
    solved_demand_[i] = requests[i].demand_bytes_per_sec;
    solved_grant_[i] = grants[i];
    solved_mpi_[i] = mpis[i];
    solved_api_[i] = params[i].accesses_per_instr;
  }
}

void SimulatedMachine::SolveEpochVectorized(bool capacity_clean) {
  const size_t n = apps_.size();
  const double line_bytes = config_.llc.line_bytes;

  // Capacity tier: the fixed point and the miss-ratio table walks. When
  // only bandwidth-tier inputs moved (capacity_clean), the cached
  // solved_capacity_/solved_miss_ratio_ are exactly what re-running this
  // block would produce (the fixed point is a pure function of masks,
  // membership and phase params), so skip it.
  if (!capacity_clean) {
    SolveEffectiveCapacitiesVectorized();
    for (size_t i = 0; i < n; ++i) {
      solved_miss_ratio_[i] = params_cache_[i].profile.MissRatio(
          static_cast<uint64_t>(scratch_capacities_[i]), config_.mrc_mode);
    }
    for (size_t i = 0; i < n; ++i) {
      solved_capacity_[i] = scratch_capacities_[i];
    }
  }

  // Pass 1: contention-free IPS and bandwidth demands. Everything below is
  // elementwise over the flat arrays with the exact expression shapes of
  // the scalar kernel, so the compiler may vectorize across apps without
  // changing a single bit.
  scratch_capped_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double mpi = soa_api_[i] * solved_miss_ratio_[i];
    const double stall_per_miss =
        soa_mem_lat_[i] / soa_mlp_[i] * soa_pf_lat_[i];
    const double throttle_stretch = 1.0 + soa_kappa_[i] * soa_mba_term_[i];
    const double cpi =
        soa_cpi_exec_[i] + mpi * stall_per_miss * throttle_stretch;
    double ips = soa_cores_hz_[i] / cpi;
    ips = std::min(ips, required_ips_[i]);
    solved_mpi_[i] = mpi;
    solved_demand_[i] = ips * mpi * line_bytes * soa_pf_bw_[i];
    scratch_capped_[i] = std::min(solved_demand_[i], soa_cap_bps_[i]);
  }

  arbiter_.ArbitrateCappedInto(scratch_capped_, &scratch_grants_);
  const std::vector<double>& grants = scratch_grants_;

  double total_grant = 0.0;
  for (const double grant : grants) {
    total_grant += grant;
  }
  const double rho =
      std::min(1.0, total_grant / config_.total_memory_bandwidth);
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;

  // Pass 2: contention-adjusted IPS, bounded by the bandwidth grant.
  for (size_t i = 0; i < n; ++i) {
    const double mpi = solved_mpi_[i];
    const double stall_per_miss =
        contention * soa_mem_lat_[i] / soa_mlp_[i] * soa_pf_lat_[i];
    const double throttle_stretch = 1.0 + soa_kappa_[i] * soa_mba_term_[i];
    const double cpi =
        soa_cpi_exec_[i] + mpi * stall_per_miss * throttle_stretch;
    double ips = soa_cores_hz_[i] / cpi;
    solved_capability_[i] = ips;
    ips = std::min(ips, required_ips_[i]);
    const double roofline_ips =
        grants[i] / (mpi * line_bytes * soa_pf_bw_[i]);
    ips = mpi > kNegligibleMpi ? std::min(ips, roofline_ips) : ips;
    solved_ips_[i] = ips;
    solved_grant_[i] = grants[i];
    solved_api_[i] = soa_api_[i];
  }
}

void SimulatedMachine::CommitEpoch(double dt) {
  const size_t n = apps_.size();
  const double line_bytes = config_.llc.line_bytes;
  const bool noisy = config_.ips_noise_sigma > 0.0;
  for (size_t i = 0; i < n; ++i) {
    double ips = solved_ips_[i];
    if (noisy) {
      const double factor =
          std::max(0.1, 1.0 + config_.ips_noise_sigma * rng_.NextGaussian());
      ips *= factor;
    }
    AppEpochSnapshot& epoch = last_epoch_[i];
    epoch.ips = ips;
    epoch.ips_capability = solved_capability_[i];
    epoch.llc_accesses_per_sec = ips * solved_api_[i];
    epoch.llc_misses_per_sec = ips * solved_mpi_[i];
    epoch.miss_ratio = solved_miss_ratio_[i];
    epoch.effective_capacity_bytes = solved_capacity_[i];
    epoch.bandwidth_demand_bytes_per_sec = solved_demand_[i];
    epoch.bandwidth_grant_bytes_per_sec = solved_grant_[i];

    AppCounters& counters = counters_[i];
    counters.instructions += ips * dt;
    counters.llc_accesses += ips * solved_api_[i] * dt;
    counters.llc_misses += ips * solved_mpi_[i] * dt;
    counters.memory_bytes += ips * solved_mpi_[i] * line_bytes * dt;
  }
}

void SimulatedMachine::AdvanceTime(double dt) {
  CHECK_GT(dt, 0.0);
  now_ += dt;
  if (apps_.empty()) {
    return;
  }

  RefreshEffectiveParams();
  if (!config_.incremental_epochs || !solved_valid_ ||
      solved_input_generation_ != input_generation_) {
    RefreshSoaInputs();
    if (config_.epoch_kernel == EpochKernel::kScalar) {
      SolveEpochScalar();
      ++full_solves_;
    } else {
      // Bandwidth-only dirt (MBA / required-IPS moves) keeps the capacity
      // fixed point valid; re-run just the elementwise passes against it.
      const bool capacity_clean =
          config_.incremental_epochs && solved_valid_ &&
          solved_capacity_generation_ == capacity_generation_;
      SolveEpochVectorized(capacity_clean);
      if (capacity_clean) {
        ++partial_solves_;
      } else {
        ++full_solves_;
      }
    }
    solved_input_generation_ = input_generation_;
    solved_capacity_generation_ = capacity_generation_;
    solved_valid_ = true;
  }
  CommitEpoch(dt);
}

MachineSnapshot SimulatedMachine::Snapshot() const {
  MachineSnapshot s;
  s.now = now_;
  s.app_generation = app_generation_;
  s.input_generation = input_generation_;
  s.capacity_generation = capacity_generation_;
  s.solved_input_generation = solved_input_generation_;
  s.solved_capacity_generation = solved_capacity_generation_;
  s.solved_valid = solved_valid_;
  s.ips_noise_sigma = config_.ips_noise_sigma;
  s.rng = rng_;
  s.clos = clos_;
  s.app_clos = app_clos_;
  s.required_ips = required_ips_;
  s.prefetch_percent = prefetch_percent_;
  s.counters = counters_;
  s.last_epoch = last_epoch_;
  s.solved_ips = solved_ips_;
  s.solved_capability = solved_capability_;
  s.solved_miss_ratio = solved_miss_ratio_;
  s.solved_capacity = solved_capacity_;
  s.solved_demand = solved_demand_;
  s.solved_grant = solved_grant_;
  s.solved_mpi = solved_mpi_;
  s.solved_api = solved_api_;
  return s;
}

void SimulatedMachine::Restore(const MachineSnapshot& snapshot) {
  CHECK_EQ(snapshot.app_generation, app_generation_)
      << "snapshot was taken against a different app set";
  CHECK_EQ(snapshot.clos.size(), clos_.size());
  CHECK_EQ(snapshot.app_clos.size(), apps_.size());
  now_ = snapshot.now;
  input_generation_ = snapshot.input_generation;
  capacity_generation_ = snapshot.capacity_generation;
  solved_input_generation_ = snapshot.solved_input_generation;
  solved_capacity_generation_ = snapshot.solved_capacity_generation;
  solved_valid_ = snapshot.solved_valid;
  config_.ips_noise_sigma = snapshot.ips_noise_sigma;
  rng_ = snapshot.rng;
  clos_ = snapshot.clos;
  app_clos_ = snapshot.app_clos;
  required_ips_ = snapshot.required_ips;
  prefetch_percent_ = snapshot.prefetch_percent;
  counters_ = snapshot.counters;
  last_epoch_ = snapshot.last_epoch;
  solved_ips_ = snapshot.solved_ips;
  solved_capability_ = snapshot.solved_capability;
  solved_miss_ratio_ = snapshot.solved_miss_ratio;
  solved_capacity_ = snapshot.solved_capacity;
  solved_demand_ = snapshot.solved_demand;
  solved_grant_ = snapshot.solved_grant;
  solved_mpi_ = snapshot.solved_mpi;
  solved_api_ = snapshot.solved_api;
  // The SoA input caches and phase-adjusted params may reflect mutations
  // made after the snapshot; invalidate the stamps so the next dirty solve
  // rebuilds them. (Phase entries re-validate against the restored clock in
  // RefreshEffectiveParams.)
  soa_input_generation_ = ~0ull;
  soa_app_generation_ = ~0ull;
  for (const size_t i : phased_apps_) {
    // Force the phase check to recompute against the restored clock even if
    // a post-snapshot crossing left the cache on another phase.
    const App& app = apps_[i];
    const size_t phase_index =
        app.descriptor.PhaseIndexAt(now_ - app.launch_time);
    if (phase_index != params_cache_[i].phase_index) {
      params_cache_[i] = EffectiveParamsFor(app, phase_index);
    }
  }
}

const AppCounters& SimulatedMachine::Counters(AppId id) const {
  return counters_[IndexOf(id)];
}

const AppEpochSnapshot& SimulatedMachine::LastEpoch(AppId id) const {
  return last_epoch_[IndexOf(id)];
}

double SimulatedMachine::SoloFullResourceIps(
    const WorkloadDescriptor& descriptor,
    std::optional<uint32_t> num_cores) const {
  const uint32_t cores = num_cores.value_or(descriptor.num_threads);
  const double capacity = static_cast<double>(config_.llc.total_bytes);
  const double miss_ratio = descriptor.reuse_profile.MissRatio(
      static_cast<uint64_t>(capacity), config_.mrc_mode);
  const double mpi = descriptor.accesses_per_instr * miss_ratio;
  // Mirror AdvanceTime's two-pass scheme exactly: pass 1 computes the
  // contention-free demand, whose (capped) grant sets the controller
  // utilization; pass 2 applies the queueing stretch and the grant bound.
  const double cpi_free = UnconstrainedCpi(descriptor, descriptor.cpi_exec,
                                           mpi, MbaLevel(),
                                           /*contention=*/1.0,
                                           /*prefetch_lat=*/1.0);
  const double ips_free = cores * config_.core_freq_hz / cpi_free;
  const double grant =
      std::min(ips_free * mpi * config_.llc.line_bytes,
               config_.total_memory_bandwidth);
  const double rho = grant / config_.total_memory_bandwidth;
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;
  const double cpi = UnconstrainedCpi(descriptor, descriptor.cpi_exec, mpi,
                                      MbaLevel(), contention,
                                      /*prefetch_lat=*/1.0);
  double ips = cores * config_.core_freq_hz / cpi;
  if (mpi > kNegligibleMpi) {
    ips = std::min(ips, grant / (mpi * config_.llc.line_bytes));
  }
  return ips;
}

uint32_t SimulatedMachine::FreeCores() const {
  return config_.num_cores - used_cores_;
}

void SimulatedMachine::SetIpsNoiseSigma(double sigma) {
  CHECK_GE(sigma, 0.0);
  config_.ips_noise_sigma = sigma;
}

}  // namespace copart
