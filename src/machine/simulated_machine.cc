#include "machine/simulated_machine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace copart {
namespace {

// Below this misses-per-instruction the app is treated as generating no
// memory traffic (avoids 0/0 in the roofline division).
constexpr double kNegligibleMpi = 1e-15;

// Fixed-point iterations for the shared-capacity solve. Occupancy converges
// geometrically; four rounds are plenty for the accuracy the model needs.
constexpr int kCapacityIterations = 4;

}  // namespace

SimulatedMachine::SimulatedMachine(const MachineConfig& config)
    : config_(config),
      throttle_model_(config.mba_cap_exponent),
      arbiter_(config.total_memory_bandwidth),
      rng_(config.seed) {
  CHECK_GT(config_.num_cores, 0u);
  CHECK_GT(config_.num_clos, 0u);
  clos_.resize(config_.num_clos);
  for (ClosState& state : clos_) {
    state.way_mask = WayMask::Contiguous(0, config_.llc.num_ways);
    state.mba_level = MbaLevel();  // 100%
  }
}

Result<AppId> SimulatedMachine::LaunchApp(const WorkloadDescriptor& descriptor,
                                          std::optional<uint32_t> num_cores) {
  const uint32_t cores = num_cores.value_or(descriptor.num_threads);
  if (cores == 0) {
    return InvalidArgumentError("app must use at least one core");
  }
  if (used_cores_ + cores > config_.num_cores) {
    return ResourceExhaustedError("not enough free cores for " +
                                  descriptor.name);
  }
  App app;
  app.id = AppId(next_app_id_++);
  app.descriptor = descriptor;
  app.num_cores = cores;
  app.clos = 0;
  app.launch_time = now_;
  used_cores_ += cores;
  ++app_generation_;
  app_index_[app.id] = apps_.size();
  apps_.push_back(std::move(app));
  return apps_.back().id;
}

Status SimulatedMachine::TerminateApp(AppId id) {
  const auto it = app_index_.find(id);
  if (it == app_index_.end()) {
    return NotFoundError("no such app");
  }
  const size_t index = it->second;
  used_cores_ -= apps_[index].num_cores;
  apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(index));
  app_index_.erase(it);
  // The erase shifted every later app down one slot.
  for (auto& [app_id, app_pos] : app_index_) {
    if (app_pos > index) {
      --app_pos;
    }
  }
  ++app_generation_;
  return Status::Ok();
}

std::vector<AppId> SimulatedMachine::ListApps() const {
  std::vector<AppId> ids;
  ids.reserve(apps_.size());
  for (const App& app : apps_) {
    ids.push_back(app.id);
  }
  return ids;
}

bool SimulatedMachine::AppExists(AppId id) const {
  return app_index_.find(id) != app_index_.end();
}

const SimulatedMachine::App& SimulatedMachine::GetApp(AppId id) const {
  const auto it = app_index_.find(id);
  if (it == app_index_.end()) {
    LOG_FATAL << "no such app: " << id.value();
    __builtin_unreachable();
  }
  return apps_[it->second];
}

SimulatedMachine::App& SimulatedMachine::GetApp(AppId id) {
  return const_cast<App&>(
      static_cast<const SimulatedMachine*>(this)->GetApp(id));
}

const WorkloadDescriptor& SimulatedMachine::Descriptor(AppId id) const {
  return GetApp(id).descriptor;
}

uint32_t SimulatedMachine::AppCores(AppId id) const {
  return GetApp(id).num_cores;
}

double SimulatedMachine::AppLaunchTime(AppId id) const {
  return GetApp(id).launch_time;
}

void SimulatedMachine::SetClosWayMask(uint32_t clos, const WayMask& mask) {
  CHECK_LT(clos, clos_.size());
  CHECK(!mask.Empty()) << "CLOS way mask must keep at least one way";
  CHECK_LE(mask.FirstWay() + mask.CountWays(), config_.llc.num_ways);
  clos_[clos].way_mask = mask;
}

void SimulatedMachine::SetClosMbaLevel(uint32_t clos, MbaLevel level) {
  CHECK_LT(clos, clos_.size());
  clos_[clos].mba_level = level;
}

void SimulatedMachine::AssignAppToClos(AppId id, uint32_t clos) {
  CHECK_LT(clos, clos_.size());
  GetApp(id).clos = clos;
}

const WayMask& SimulatedMachine::ClosWayMask(uint32_t clos) const {
  CHECK_LT(clos, clos_.size());
  return clos_[clos].way_mask;
}

MbaLevel SimulatedMachine::ClosMbaLevel(uint32_t clos) const {
  CHECK_LT(clos, clos_.size());
  return clos_[clos].mba_level;
}

uint32_t SimulatedMachine::AppClos(AppId id) const { return GetApp(id).clos; }

void SimulatedMachine::SetAppRequiredIps(AppId id,
                                         std::optional<double> required_ips) {
  if (required_ips.has_value()) {
    CHECK_GT(*required_ips, 0.0);
  }
  GetApp(id).required_ips = required_ips;
}

double SimulatedMachine::UnconstrainedCpi(const WorkloadDescriptor& d,
                                          double cpi_exec, double mpi,
                                          MbaLevel level, double contention) {
  const double stall_per_miss = contention * d.mem_latency_cycles / d.mlp;
  const double throttle_stretch =
      1.0 + d.mba_kappa * (100.0 / level.percent() - 1.0);
  return cpi_exec + mpi * stall_per_miss * throttle_stretch;
}

SimulatedMachine::EffectiveParams SimulatedMachine::EffectiveParamsFor(
    const App& app, size_t phase_index) const {
  const WorkloadDescriptor& d = app.descriptor;
  const WorkloadPhase phase =
      d.phases.empty() ? WorkloadPhase{} : d.phases[phase_index];
  EffectiveParams params;
  params.accesses_per_instr =
      d.accesses_per_instr * phase.access_intensity_scale;
  params.cpi_exec = d.cpi_exec * phase.cpi_exec_scale;
  params.phase_index = phase_index;
  if (phase.streaming_scale == 1.0) {
    params.profile = d.reuse_profile;
  } else {
    // Scale the streaming share of the profile, stealing from / returning
    // to the residual (always-hit) weight so the total never exceeds 1.
    double component_weight = 0.0;
    for (const ReuseComponent& component : d.reuse_profile.components()) {
      component_weight += component.weight;
    }
    const double scaled = std::min(
        d.reuse_profile.streaming_weight() * phase.streaming_scale,
        1.0 - component_weight);
    params.profile = ReuseProfile(d.reuse_profile.components(), scaled);
  }
  return params;
}

void SimulatedMachine::RefreshEffectiveParams() {
  const size_t n = apps_.size();
  if (params_generation_ != app_generation_) {
    params_cache_.clear();
    params_cache_.reserve(n);
    for (const App& app : apps_) {
      params_cache_.push_back(EffectiveParamsFor(
          app, app.descriptor.PhaseIndexAt(now_ - app.launch_time)));
    }
    params_generation_ = app_generation_;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const App& app = apps_[i];
    if (app.descriptor.phases.empty()) {
      continue;  // Steady workload: params never change after launch.
    }
    const size_t phase_index =
        app.descriptor.PhaseIndexAt(now_ - app.launch_time);
    if (phase_index != params_cache_[i].phase_index) {
      params_cache_[i] = EffectiveParamsFor(app, phase_index);
    }
  }
}

void SimulatedMachine::SolveEffectiveCapacities() {
  const size_t n = apps_.size();
  scratch_capacities_.assign(n, 0.0);
  if (n == 0) {
    return;
  }
  const double way_bytes = static_cast<double>(config_.llc.WayBytes());

  // The CLOSes that actually host apps this epoch; the way split only has
  // to iterate these, not all apps (all sharers of a CLOS see one mask).
  scratch_clos_weight_.assign(clos_.size(), 0.0);
  scratch_clos_capacity_.assign(clos_.size(), 0.0);
  scratch_active_clos_.clear();
  for (const App& app : apps_) {
    if (scratch_clos_weight_[app.clos] == 0.0) {
      scratch_active_clos_.push_back(app.clos);
      scratch_clos_weight_[app.clos] = 1.0;  // Presence marker.
    }
  }

  // Fill-intensity weights; initialized equal, refined by the fixed point.
  scratch_weights_.assign(n, 1.0);
  for (int iteration = 0; iteration <= kCapacityIterations; ++iteration) {
    // Split each way among the CLOSes that may allocate into it, then give
    // every app its fill-weight share of its CLOS's cut.
    for (const uint32_t clos : scratch_active_clos_) {
      scratch_clos_weight_[clos] = 0.0;
      scratch_clos_capacity_[clos] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_clos_weight_[apps_[i].clos] += scratch_weights_[i];
    }
    for (uint32_t way = 0; way < config_.llc.num_ways; ++way) {
      double total_weight = 0.0;
      for (const uint32_t clos : scratch_active_clos_) {
        if (clos_[clos].way_mask.Contains(way)) {
          total_weight += scratch_clos_weight_[clos];
        }
      }
      if (total_weight <= 0.0) {
        continue;
      }
      for (const uint32_t clos : scratch_active_clos_) {
        if (clos_[clos].way_mask.Contains(way)) {
          scratch_clos_capacity_[clos] +=
              way_bytes * scratch_clos_weight_[clos] / total_weight;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      scratch_capacities_[i] = scratch_clos_capacity_[apps_[i].clos] *
                               scratch_weights_[i] /
                               scratch_clos_weight_[apps_[i].clos];
    }
    if (iteration == kCapacityIterations) {
      break;
    }
    // Refine weights: occupancy under LRU is proportional to fill (miss)
    // intensity. Use the nominal (stall-free) instruction rate as the scale.
    for (size_t i = 0; i < n; ++i) {
      const double miss_ratio = params_cache_[i].profile.MissRatio(
          static_cast<uint64_t>(scratch_capacities_[i]), config_.mrc_mode);
      const double nominal_ips = apps_[i].num_cores * config_.core_freq_hz /
                                 params_cache_[i].cpi_exec;
      scratch_weights_[i] =
          nominal_ips * params_cache_[i].accesses_per_instr * miss_ratio +
          1e-6;
    }
  }
}

void SimulatedMachine::AdvanceTime(double dt) {
  CHECK_GT(dt, 0.0);
  const size_t n = apps_.size();
  now_ += dt;
  if (n == 0) {
    return;
  }

  RefreshEffectiveParams();
  SolveEffectiveCapacities();
  const std::vector<EffectiveParams>& params = params_cache_;
  const std::vector<double>& capacities = scratch_capacities_;

  // Pass 1: contention-free IPS and bandwidth demands.
  scratch_miss_ratios_.resize(n);
  scratch_mpis_.resize(n);
  scratch_requests_.resize(n);
  std::vector<double>& miss_ratios = scratch_miss_ratios_;
  std::vector<double>& mpis = scratch_mpis_;
  std::vector<BandwidthRequest>& requests = scratch_requests_;
  for (size_t i = 0; i < n; ++i) {
    const App& app = apps_[i];
    const WorkloadDescriptor& d = app.descriptor;
    const MbaLevel level = clos_[app.clos].mba_level;
    miss_ratios[i] = params[i].profile.MissRatio(
        static_cast<uint64_t>(capacities[i]), config_.mrc_mode);
    mpis[i] = params[i].accesses_per_instr * miss_ratios[i];
    const double cpi = UnconstrainedCpi(d, params[i].cpi_exec, mpis[i], level,
                                        /*contention=*/1.0);
    double ips = app.num_cores * config_.core_freq_hz / cpi;
    if (app.required_ips.has_value()) {
      ips = std::min(ips, *app.required_ips);
    }
    requests[i].demand_bytes_per_sec = ips * mpis[i] * config_.llc.line_bytes;
    requests[i].cap_bytes_per_sec =
        throttle_model_.CapFraction(level) * config_.total_memory_bandwidth;
  }

  arbiter_.ArbitrateInto(requests, &scratch_grants_);
  const std::vector<double>& grants = scratch_grants_;

  // Controller utilization -> queueing delay stretch on every miss.
  double total_grant = 0.0;
  for (double grant : grants) {
    total_grant += grant;
  }
  const double rho =
      std::min(1.0, total_grant / config_.total_memory_bandwidth);
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;

  // Pass 2: contention-adjusted IPS, bounded by the bandwidth grant.
  for (size_t i = 0; i < n; ++i) {
    App& app = apps_[i];
    const WorkloadDescriptor& d = app.descriptor;
    const MbaLevel level = clos_[app.clos].mba_level;
    const double cpi = UnconstrainedCpi(d, params[i].cpi_exec, mpis[i], level,
                                        contention);
    double ips = app.num_cores * config_.core_freq_hz / cpi;
    app.last_epoch.ips_capability = ips;
    if (app.required_ips.has_value()) {
      ips = std::min(ips, *app.required_ips);
    }
    if (mpis[i] > kNegligibleMpi) {
      ips = std::min(ips, grants[i] / (mpis[i] * config_.llc.line_bytes));
    }
    if (config_.ips_noise_sigma > 0.0) {
      const double factor =
          std::max(0.1, 1.0 + config_.ips_noise_sigma * rng_.NextGaussian());
      ips *= factor;
    }
    app.last_epoch.ips = ips;
    app.last_epoch.llc_accesses_per_sec = ips * params[i].accesses_per_instr;
    app.last_epoch.llc_misses_per_sec = ips * mpis[i];
    app.last_epoch.miss_ratio = miss_ratios[i];
    app.last_epoch.effective_capacity_bytes = capacities[i];
    app.last_epoch.bandwidth_demand_bytes_per_sec =
        requests[i].demand_bytes_per_sec;
    app.last_epoch.bandwidth_grant_bytes_per_sec = grants[i];

    app.counters.instructions += ips * dt;
    app.counters.llc_accesses += ips * params[i].accesses_per_instr * dt;
    app.counters.llc_misses += ips * mpis[i] * dt;
    app.counters.memory_bytes += ips * mpis[i] * config_.llc.line_bytes * dt;
  }
}

const AppCounters& SimulatedMachine::Counters(AppId id) const {
  return GetApp(id).counters;
}

const AppEpochSnapshot& SimulatedMachine::LastEpoch(AppId id) const {
  return GetApp(id).last_epoch;
}

double SimulatedMachine::SoloFullResourceIps(
    const WorkloadDescriptor& descriptor,
    std::optional<uint32_t> num_cores) const {
  const uint32_t cores = num_cores.value_or(descriptor.num_threads);
  const double capacity = static_cast<double>(config_.llc.total_bytes);
  const double miss_ratio = descriptor.reuse_profile.MissRatio(
      static_cast<uint64_t>(capacity), config_.mrc_mode);
  const double mpi = descriptor.accesses_per_instr * miss_ratio;
  // Mirror AdvanceTime's two-pass scheme exactly: pass 1 computes the
  // contention-free demand, whose (capped) grant sets the controller
  // utilization; pass 2 applies the queueing stretch and the grant bound.
  const double cpi_free = UnconstrainedCpi(descriptor, descriptor.cpi_exec,
                                           mpi, MbaLevel(),
                                           /*contention=*/1.0);
  const double ips_free = cores * config_.core_freq_hz / cpi_free;
  const double grant =
      std::min(ips_free * mpi * config_.llc.line_bytes,
               config_.total_memory_bandwidth);
  const double rho = grant / config_.total_memory_bandwidth;
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;
  const double cpi = UnconstrainedCpi(descriptor, descriptor.cpi_exec, mpi,
                                      MbaLevel(), contention);
  double ips = cores * config_.core_freq_hz / cpi;
  if (mpi > kNegligibleMpi) {
    ips = std::min(ips, grant / (mpi * config_.llc.line_bytes));
  }
  return ips;
}

uint32_t SimulatedMachine::FreeCores() const {
  return config_.num_cores - used_cores_;
}

void SimulatedMachine::SetIpsNoiseSigma(double sigma) {
  CHECK_GE(sigma, 0.0);
  config_.ips_noise_sigma = sigma;
}

}  // namespace copart
