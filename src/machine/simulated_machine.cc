#include "machine/simulated_machine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace copart {
namespace {

// Below this misses-per-instruction the app is treated as generating no
// memory traffic (avoids 0/0 in the roofline division).
constexpr double kNegligibleMpi = 1e-15;

// Fixed-point iterations for the shared-capacity solve. Occupancy converges
// geometrically; four rounds are plenty for the accuracy the model needs.
constexpr int kCapacityIterations = 4;

}  // namespace

SimulatedMachine::SimulatedMachine(const MachineConfig& config)
    : config_(config),
      throttle_model_(config.mba_cap_exponent),
      arbiter_(config.total_memory_bandwidth),
      rng_(config.seed) {
  CHECK_GT(config_.num_cores, 0u);
  CHECK_GT(config_.num_clos, 0u);
  clos_.resize(config_.num_clos);
  for (ClosState& state : clos_) {
    state.way_mask = WayMask::Contiguous(0, config_.llc.num_ways);
    state.mba_level = MbaLevel();  // 100%
  }
}

Result<AppId> SimulatedMachine::LaunchApp(const WorkloadDescriptor& descriptor,
                                          std::optional<uint32_t> num_cores) {
  const uint32_t cores = num_cores.value_or(descriptor.num_threads);
  if (cores == 0) {
    return InvalidArgumentError("app must use at least one core");
  }
  if (used_cores_ + cores > config_.num_cores) {
    return ResourceExhaustedError("not enough free cores for " +
                                  descriptor.name);
  }
  App app;
  app.id = AppId(next_app_id_++);
  app.descriptor = descriptor;
  app.num_cores = cores;
  app.clos = 0;
  app.launch_time = now_;
  used_cores_ += cores;
  ++app_generation_;
  apps_.push_back(std::move(app));
  return apps_.back().id;
}

Status SimulatedMachine::TerminateApp(AppId id) {
  for (size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].id == id) {
      used_cores_ -= apps_[i].num_cores;
      apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(i));
      ++app_generation_;
      return Status::Ok();
    }
  }
  return NotFoundError("no such app");
}

std::vector<AppId> SimulatedMachine::ListApps() const {
  std::vector<AppId> ids;
  ids.reserve(apps_.size());
  for (const App& app : apps_) {
    ids.push_back(app.id);
  }
  return ids;
}

bool SimulatedMachine::AppExists(AppId id) const {
  for (const App& app : apps_) {
    if (app.id == id) {
      return true;
    }
  }
  return false;
}

const SimulatedMachine::App& SimulatedMachine::GetApp(AppId id) const {
  for (const App& app : apps_) {
    if (app.id == id) {
      return app;
    }
  }
  LOG_FATAL << "no such app: " << id.value();
  __builtin_unreachable();
}

SimulatedMachine::App& SimulatedMachine::GetApp(AppId id) {
  return const_cast<App&>(
      static_cast<const SimulatedMachine*>(this)->GetApp(id));
}

const WorkloadDescriptor& SimulatedMachine::Descriptor(AppId id) const {
  return GetApp(id).descriptor;
}

uint32_t SimulatedMachine::AppCores(AppId id) const {
  return GetApp(id).num_cores;
}

void SimulatedMachine::SetClosWayMask(uint32_t clos, const WayMask& mask) {
  CHECK_LT(clos, clos_.size());
  CHECK(!mask.Empty()) << "CLOS way mask must keep at least one way";
  CHECK_LE(mask.FirstWay() + mask.CountWays(), config_.llc.num_ways);
  clos_[clos].way_mask = mask;
}

void SimulatedMachine::SetClosMbaLevel(uint32_t clos, MbaLevel level) {
  CHECK_LT(clos, clos_.size());
  clos_[clos].mba_level = level;
}

void SimulatedMachine::AssignAppToClos(AppId id, uint32_t clos) {
  CHECK_LT(clos, clos_.size());
  GetApp(id).clos = clos;
}

const WayMask& SimulatedMachine::ClosWayMask(uint32_t clos) const {
  CHECK_LT(clos, clos_.size());
  return clos_[clos].way_mask;
}

MbaLevel SimulatedMachine::ClosMbaLevel(uint32_t clos) const {
  CHECK_LT(clos, clos_.size());
  return clos_[clos].mba_level;
}

uint32_t SimulatedMachine::AppClos(AppId id) const { return GetApp(id).clos; }

void SimulatedMachine::SetAppRequiredIps(AppId id,
                                         std::optional<double> required_ips) {
  if (required_ips.has_value()) {
    CHECK_GT(*required_ips, 0.0);
  }
  GetApp(id).required_ips = required_ips;
}

double SimulatedMachine::UnconstrainedCpi(const WorkloadDescriptor& d,
                                          double cpi_exec, double mpi,
                                          MbaLevel level, double contention) {
  const double stall_per_miss = contention * d.mem_latency_cycles / d.mlp;
  const double throttle_stretch =
      1.0 + d.mba_kappa * (100.0 / level.percent() - 1.0);
  return cpi_exec + mpi * stall_per_miss * throttle_stretch;
}

SimulatedMachine::EffectiveParams SimulatedMachine::EffectiveParamsFor(
    const App& app) const {
  const WorkloadDescriptor& d = app.descriptor;
  const WorkloadPhase phase = d.PhaseAt(now_ - app.launch_time);
  EffectiveParams params;
  params.accesses_per_instr =
      d.accesses_per_instr * phase.access_intensity_scale;
  params.cpi_exec = d.cpi_exec * phase.cpi_exec_scale;
  if (phase.streaming_scale == 1.0) {
    params.profile = d.reuse_profile;
  } else {
    // Scale the streaming share of the profile, stealing from / returning
    // to the residual (always-hit) weight so the total never exceeds 1.
    double component_weight = 0.0;
    for (const ReuseComponent& component : d.reuse_profile.components()) {
      component_weight += component.weight;
    }
    const double scaled = std::min(
        d.reuse_profile.streaming_weight() * phase.streaming_scale,
        1.0 - component_weight);
    params.profile = ReuseProfile(d.reuse_profile.components(), scaled);
  }
  return params;
}

std::vector<double> SimulatedMachine::SolveEffectiveCapacities(
    const std::vector<EffectiveParams>& params) const {
  const size_t n = apps_.size();
  std::vector<double> capacities(n, 0.0);
  if (n == 0) {
    return capacities;
  }
  const double way_bytes = static_cast<double>(config_.llc.WayBytes());

  // Fill-intensity weights; initialized equal, refined by the fixed point.
  std::vector<double> weights(n, 1.0);
  for (int iteration = 0; iteration <= kCapacityIterations; ++iteration) {
    // Split each way among the CLOSes that may allocate into it.
    for (size_t i = 0; i < n; ++i) {
      capacities[i] = 0.0;
    }
    for (uint32_t way = 0; way < config_.llc.num_ways; ++way) {
      double total_weight = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (clos_[apps_[i].clos].way_mask.Contains(way)) {
          total_weight += weights[i];
        }
      }
      if (total_weight <= 0.0) {
        continue;
      }
      for (size_t i = 0; i < n; ++i) {
        if (clos_[apps_[i].clos].way_mask.Contains(way)) {
          capacities[i] += way_bytes * weights[i] / total_weight;
        }
      }
    }
    if (iteration == kCapacityIterations) {
      break;
    }
    // Refine weights: occupancy under LRU is proportional to fill (miss)
    // intensity. Use the nominal (stall-free) instruction rate as the scale.
    for (size_t i = 0; i < n; ++i) {
      const double miss_ratio =
          params[i].profile.MissRatio(static_cast<uint64_t>(capacities[i]));
      const double nominal_ips =
          apps_[i].num_cores * config_.core_freq_hz / params[i].cpi_exec;
      weights[i] =
          nominal_ips * params[i].accesses_per_instr * miss_ratio + 1e-6;
    }
  }
  return capacities;
}

void SimulatedMachine::AdvanceTime(double dt) {
  CHECK_GT(dt, 0.0);
  const size_t n = apps_.size();
  now_ += dt;
  if (n == 0) {
    return;
  }

  std::vector<EffectiveParams> params;
  params.reserve(n);
  for (const App& app : apps_) {
    params.push_back(EffectiveParamsFor(app));
  }
  const std::vector<double> capacities = SolveEffectiveCapacities(params);

  // Pass 1: contention-free IPS and bandwidth demands.
  std::vector<double> miss_ratios(n), mpis(n);
  std::vector<BandwidthRequest> requests(n);
  for (size_t i = 0; i < n; ++i) {
    const App& app = apps_[i];
    const WorkloadDescriptor& d = app.descriptor;
    const MbaLevel level = clos_[app.clos].mba_level;
    miss_ratios[i] =
        params[i].profile.MissRatio(static_cast<uint64_t>(capacities[i]));
    mpis[i] = params[i].accesses_per_instr * miss_ratios[i];
    const double cpi = UnconstrainedCpi(d, params[i].cpi_exec, mpis[i], level,
                                        /*contention=*/1.0);
    double ips = app.num_cores * config_.core_freq_hz / cpi;
    if (app.required_ips.has_value()) {
      ips = std::min(ips, *app.required_ips);
    }
    requests[i].demand_bytes_per_sec = ips * mpis[i] * config_.llc.line_bytes;
    requests[i].cap_bytes_per_sec =
        throttle_model_.CapFraction(level) * config_.total_memory_bandwidth;
  }

  const std::vector<double> grants = arbiter_.Arbitrate(requests);

  // Controller utilization -> queueing delay stretch on every miss.
  double total_grant = 0.0;
  for (double grant : grants) {
    total_grant += grant;
  }
  const double rho =
      std::min(1.0, total_grant / config_.total_memory_bandwidth);
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;

  // Pass 2: contention-adjusted IPS, bounded by the bandwidth grant.
  for (size_t i = 0; i < n; ++i) {
    App& app = apps_[i];
    const WorkloadDescriptor& d = app.descriptor;
    const MbaLevel level = clos_[app.clos].mba_level;
    const double cpi = UnconstrainedCpi(d, params[i].cpi_exec, mpis[i], level,
                                        contention);
    double ips = app.num_cores * config_.core_freq_hz / cpi;
    app.last_epoch.ips_capability = ips;
    if (app.required_ips.has_value()) {
      ips = std::min(ips, *app.required_ips);
    }
    if (mpis[i] > kNegligibleMpi) {
      ips = std::min(ips, grants[i] / (mpis[i] * config_.llc.line_bytes));
    }
    if (config_.ips_noise_sigma > 0.0) {
      const double factor =
          std::max(0.1, 1.0 + config_.ips_noise_sigma * rng_.NextGaussian());
      ips *= factor;
    }
    app.last_epoch.ips = ips;
    app.last_epoch.llc_accesses_per_sec = ips * params[i].accesses_per_instr;
    app.last_epoch.llc_misses_per_sec = ips * mpis[i];
    app.last_epoch.miss_ratio = miss_ratios[i];
    app.last_epoch.effective_capacity_bytes = capacities[i];
    app.last_epoch.bandwidth_demand_bytes_per_sec =
        requests[i].demand_bytes_per_sec;
    app.last_epoch.bandwidth_grant_bytes_per_sec = grants[i];

    app.counters.instructions += ips * dt;
    app.counters.llc_accesses += ips * params[i].accesses_per_instr * dt;
    app.counters.llc_misses += ips * mpis[i] * dt;
    app.counters.memory_bytes += ips * mpis[i] * config_.llc.line_bytes * dt;
  }
}

const AppCounters& SimulatedMachine::Counters(AppId id) const {
  return GetApp(id).counters;
}

const AppEpochSnapshot& SimulatedMachine::LastEpoch(AppId id) const {
  return GetApp(id).last_epoch;
}

double SimulatedMachine::SoloFullResourceIps(
    const WorkloadDescriptor& descriptor,
    std::optional<uint32_t> num_cores) const {
  const uint32_t cores = num_cores.value_or(descriptor.num_threads);
  const double capacity = static_cast<double>(config_.llc.total_bytes);
  const double miss_ratio =
      descriptor.reuse_profile.MissRatio(static_cast<uint64_t>(capacity));
  const double mpi = descriptor.accesses_per_instr * miss_ratio;
  // Mirror AdvanceTime's two-pass scheme exactly: pass 1 computes the
  // contention-free demand, whose (capped) grant sets the controller
  // utilization; pass 2 applies the queueing stretch and the grant bound.
  const double cpi_free = UnconstrainedCpi(descriptor, descriptor.cpi_exec,
                                           mpi, MbaLevel(),
                                           /*contention=*/1.0);
  const double ips_free = cores * config_.core_freq_hz / cpi_free;
  const double grant =
      std::min(ips_free * mpi * config_.llc.line_bytes,
               config_.total_memory_bandwidth);
  const double rho = grant / config_.total_memory_bandwidth;
  const double contention =
      1.0 + config_.queueing_delay_factor * rho * rho;
  const double cpi = UnconstrainedCpi(descriptor, descriptor.cpi_exec, mpi,
                                      MbaLevel(), contention);
  double ips = cores * config_.core_freq_hz / cpi;
  if (mpi > kNegligibleMpi) {
    ips = std::min(ips, grant / (mpi * config_.llc.line_bytes));
  }
  return ips;
}

uint32_t SimulatedMachine::FreeCores() const {
  return config_.num_cores - used_cores_;
}

void SimulatedMachine::SetIpsNoiseSigma(double sigma) {
  CHECK_GE(sigma, 0.0);
  config_.ips_noise_sigma = sigma;
}

}  // namespace copart
