// Cross-validation of the epoch model's shared-LLC occupancy solver.
//
// SimulatedMachine splits overlapping ways among CLOSes with a
// fill-intensity fixed point (SolveEffectiveCapacities) and evaluates each
// app's miss ratio at its effective capacity. This module builds the
// ground truth for that approximation: it replays an interleaved synthetic
// access stream (one MixtureTraceGenerator per app, interleaved in
// proportion to the apps' nominal access rates) through the trace-driven
// WayPartitionedCache under the same CAT masks, and reports the measured
// per-app miss ratios and occupancies next to the analytic ones.
//
// To keep replay affordable the validation runs on a geometry-scaled cache
// (default 1/64 of the Xeon LLC) with working sets scaled by the same
// factor — way-granularity and all sharing effects are preserved.
//
// Used by tests/shared_cache_validation_test.cc and
// bench_ablation_shared_cache.
#ifndef COPART_MACHINE_SHARED_CACHE_VALIDATOR_H_
#define COPART_MACHINE_SHARED_CACHE_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "cache/way_mask.h"
#include "machine/machine_config.h"
#include "workload/workload.h"

namespace copart {

struct SharedCacheValidationConfig {
  MachineConfig machine;
  // Geometry/working-set scale factor (1/scale of the real LLC).
  uint32_t scale = 64;
  // Warmup and measured accesses for the trace replay.
  uint64_t warmup_accesses = 300000;
  uint64_t measured_accesses = 600000;
  uint64_t seed = 20260706;
};

struct AppValidationResult {
  std::string name;
  double analytic_miss_ratio = 0.0;
  double measured_miss_ratio = 0.0;
  // Fractions of the total (scaled) cache capacity.
  double analytic_capacity_fraction = 0.0;
  double measured_occupancy_fraction = 0.0;
};

struct SharedCacheValidationResult {
  std::vector<AppValidationResult> apps;
  double max_miss_ratio_error = 0.0;
  double max_occupancy_error = 0.0;
};

// Runs one validation: `masks[i]` is the CAT mask of `workloads[i]`
// (masks may overlap arbitrarily). Analytic values come from a
// SimulatedMachine configured identically (full scale); measured values
// from the scaled trace replay.
SharedCacheValidationResult ValidateSharedCache(
    const std::vector<WorkloadDescriptor>& workloads,
    const std::vector<WayMask>& masks,
    const SharedCacheValidationConfig& config = {});

}  // namespace copart

#endif  // COPART_MACHINE_SHARED_CACHE_VALIDATOR_H_
