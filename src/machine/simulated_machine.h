// The simulated commodity server.
//
// SimulatedMachine hosts consolidated applications (each pinned to dedicated
// cores and bound to a CLOS) and advances simulated time in epochs. Each
// epoch it solves the coupled performance model:
//
//   1. *Effective LLC capacity* per app: ways owned exclusively contribute
//      fully; ways shared by several CLOSes are split in proportion to each
//      sharer's fill (miss) intensity, computed as a short fixed point —
//      the standard occupancy approximation for shared LRU caches.
//   2. *Miss ratio* from the app's ReuseProfile at that capacity.
//   3. *Unconstrained IPS* from the CPI model:
//        CPI = cpi_exec + MPI * (Lmem/mlp) * (1 + kappa*(100/level - 1))
//      where MPI = accesses_per_instr * miss_ratio; the kappa term is the
//      per-request MBA throttle delay (see membw/mba_throttle_model.h).
//   4. *Bandwidth demand* = IPS * MPI * line_bytes, arbitrated max-min
//      against the MBA caps and the controller's total bandwidth.
//   5. *Achieved IPS* = min(unconstrained, grant-limited) (roofline), with
//      optional multiplicative noise modeling run-to-run variation.
//
// Per-app counters (instructions, LLC accesses, LLC misses) accumulate each
// epoch; the pmc module samples them exactly like PAPI would on hardware.
//
// Partitioning state (per-CLOS way mask + MBA level) is mutated only through
// the resctrl module, mirroring the paper's user-level prototype.
//
// Epoch fast path (DESIGN.md §12). The solve above is memoryless: its output
// depends only on (descriptors, phases, masks, MBA levels, CLOS membership,
// required-IPS caps), never on prior epochs. The machine therefore keeps all
// hot per-app state in flat structure-of-arrays vectors, tracks an
// input_generation_ that every observable mutation bumps (mutators compare
// values first, so rewriting identical state stays clean), and when a tick
// arrives with an unchanged generation it skips the coupled solve entirely
// and replays the stored fixed point (CommitEpoch) — bit-identical to
// re-solving, including the per-epoch noise stream. The dirty set is
// two-tier: the shared-capacity fixed point (step 1, all the miss-ratio
// queries) reads only masks, CLOS membership and phase params, so a
// mutation touching nothing but MBA levels or required-IPS caps re-runs
// just the cheap elementwise CPI/arbitration passes against the cached
// capacities and miss ratios — bit-identical to a full solve, at a
// fraction of the cost (this is the common move in MBA coordinate-descent
// searches). Fully dirty ticks run either the vectorized SoA kernel or the
// scalar reference kernel (MachineConfig::epoch_kernel); both produce
// bit-identical results.
// Snapshot()/Restore() copy the mutable value state (partitioning, counters,
// RNG, last solved fixed point) in O(apps + clos), independent of simulated
// history, so what-if evaluation can roll one machine back instead of
// reconstructing and re-simulating from scratch.
#ifndef COPART_MACHINE_SIMULATED_MACHINE_H_
#define COPART_MACHINE_SIMULATED_MACHINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/way_mask.h"
#include "common/rng.h"
#include "common/status.h"
#include "machine/app_id.h"
#include "machine/machine_config.h"
#include "membw/bandwidth_arbiter.h"
#include "membw/mba.h"
#include "membw/mba_throttle_model.h"
#include "workload/workload.h"

namespace copart {

// Cumulative hardware counters for one app (since launch).
struct AppCounters {
  double instructions = 0.0;
  double llc_accesses = 0.0;
  double llc_misses = 0.0;
  double memory_bytes = 0.0;
};

// Model outputs of the most recent epoch for one app.
struct AppEpochSnapshot {
  double ips = 0.0;
  // IPS the app could sustain at its current allocation ignoring the
  // bandwidth grant and any required-IPS cap; the latency-critical harness
  // uses it as the service capacity of a queueing model.
  double ips_capability = 0.0;
  double llc_accesses_per_sec = 0.0;
  double llc_misses_per_sec = 0.0;
  double miss_ratio = 0.0;
  double effective_capacity_bytes = 0.0;
  double bandwidth_demand_bytes_per_sec = 0.0;
  double bandwidth_grant_bytes_per_sec = 0.0;
};

// Per-CLOS partitioning state.
struct ClosSetting {
  WayMask way_mask;
  MbaLevel mba_level;
};

// Value snapshot of a machine's mutable epoch state: simulated clock,
// partitioning, per-app counters/outputs, RNG, generation counters and the
// last converged solve. Treat the contents as opaque — capture with
// SimulatedMachine::Snapshot(), apply with Restore(). A snapshot is only
// restorable into a machine with the same app set (same app_generation);
// Restore CHECK-fails otherwise.
struct MachineSnapshot {
  double now = 0.0;
  uint64_t app_generation = 0;
  uint64_t input_generation = 0;
  uint64_t capacity_generation = 0;
  uint64_t solved_input_generation = 0;
  uint64_t solved_capacity_generation = 0;
  bool solved_valid = false;
  double ips_noise_sigma = 0.0;
  Rng rng{0};
  std::vector<ClosSetting> clos;
  std::vector<uint32_t> app_clos;
  std::vector<double> required_ips;
  std::vector<uint32_t> prefetch_percent;
  std::vector<AppCounters> counters;
  std::vector<AppEpochSnapshot> last_epoch;
  std::vector<double> solved_ips;
  std::vector<double> solved_capability;
  std::vector<double> solved_miss_ratio;
  std::vector<double> solved_capacity;
  std::vector<double> solved_demand;
  std::vector<double> solved_grant;
  std::vector<double> solved_mpi;
  std::vector<double> solved_api;
};

class SimulatedMachine {
 public:
  explicit SimulatedMachine(const MachineConfig& config);

  // --- App lifecycle ---

  // Launches `descriptor` on `num_cores` dedicated cores (defaults to the
  // descriptor's thread count). Fails if not enough free cores remain.
  // The app starts in CLOS 0 (the default group, full resources).
  Result<AppId> LaunchApp(const WorkloadDescriptor& descriptor,
                          std::optional<uint32_t> num_cores = std::nullopt);
  Status TerminateApp(AppId id);

  std::vector<AppId> ListApps() const;
  bool AppExists(AppId id) const;
  const WorkloadDescriptor& Descriptor(AppId id) const;
  uint32_t AppCores(AppId id) const;
  // Simulated time at which the app launched; with Descriptor().PhaseIndexAt
  // this lets external sensors (pmc/perf_monitor's estimator feed) track the
  // app's current execution phase.
  double AppLaunchTime(AppId id) const;

  // Monotonic counter bumped on every launch/termination; the controller's
  // idle phase polls it to detect consolidation changes (paper §5.4.3).
  uint64_t app_generation() const { return app_generation_; }

  // --- Partitioning state (called by the resctrl module) ---

  void SetClosWayMask(uint32_t clos, const WayMask& mask);
  void SetClosMbaLevel(uint32_t clos, MbaLevel level);
  void AssignAppToClos(AppId id, uint32_t clos);

  const WayMask& ClosWayMask(uint32_t clos) const;
  MbaLevel ClosMbaLevel(uint32_t clos) const;
  uint32_t AppClos(AppId id) const;

  // --- Work limiting (latency-critical apps) ---

  // Caps the app's executed IPS at `required_ips` (open-loop offered load);
  // nullopt removes the cap. Used by the case-study harness.
  void SetAppRequiredIps(AppId id, std::optional<double> required_ips);

  // --- Prefetch throttling (CBP-style third actuator) ---

  // Sets the app's prefetcher aggressiveness percent in [0, 100]; 100 (the
  // launch default) is the hardware reset state and leaves the epoch solve
  // bit-identical to a machine without the prefetch model. Lower values
  // stretch the per-miss stall and shrink the bandwidth demand (see
  // MachineConfig::prefetch_bw_share / prefetch_latency_penalty). Mutated
  // through the resctrl module in managed runs (Resctrl::SetAppPrefetch).
  void SetAppPrefetchPercent(AppId id, uint32_t percent);
  uint32_t AppPrefetchPercent(AppId id) const;

  // --- Time ---

  // Advances simulated time by `dt` seconds as a single epoch.
  void AdvanceTime(double dt);
  double now() const { return now_; }

  // --- Snapshot / rollback ---

  // Captures the machine's mutable epoch state as a plain value copy,
  // O(apps + clos) regardless of how much time has been simulated.
  MachineSnapshot Snapshot() const;

  // Rolls the machine back to `snapshot`. The app set must be unchanged
  // since the snapshot was taken (CHECK on app_generation); partitioning,
  // counters, clock, RNG and the cached solve all revert. Subsequent epochs
  // are bit-identical to a machine that never diverged.
  void Restore(const MachineSnapshot& snapshot);

  // Number of full coupled solves since construction. Steady-state epochs
  // served by the incremental fast path do not increment it.
  uint64_t full_solves() const { return full_solves_; }

  // Number of partial re-solves: epochs whose inputs changed only in the
  // bandwidth tier (MBA levels, required-IPS caps), which reuse the cached
  // capacity fixed point and re-run just the elementwise passes. Only the
  // vectorized kernel takes this tier; the scalar reference always solves
  // in full.
  uint64_t partial_solves() const { return partial_solves_; }

  // --- Observation ---

  const AppCounters& Counters(AppId id) const;
  const AppEpochSnapshot& LastEpoch(AppId id) const;

  // IPS the descriptor would achieve running alone with all ways, MBA 100
  // and an uncontended memory controller — the IPS_full reference of Eq. 1.
  // Deterministic (no noise).
  double SoloFullResourceIps(const WorkloadDescriptor& descriptor,
                             std::optional<uint32_t> num_cores =
                                 std::nullopt) const;

  const MachineConfig& config() const { return config_; }
  uint32_t FreeCores() const;

  // Overrides the per-epoch IPS noise, e.g. to make an offline-search clone
  // of the machine deterministic. SimulatedMachine is copyable precisely to
  // support such what-if clones (harness/static_oracle.h).
  void SetIpsNoiseSigma(double sigma);

 private:
  struct App {
    AppId id;
    WorkloadDescriptor descriptor;
    uint32_t num_cores = 0;
    double launch_time = 0.0;
  };

  // Phase-adjusted model parameters for one epoch (workload phases scale
  // the baseline access intensity, streaming traffic and execution CPI).
  struct EffectiveParams {
    double accesses_per_instr = 0.0;
    double cpi_exec = 1.0;
    ReuseProfile profile{{}, 0.0};
    // Phase the params were computed for; the cache in AdvanceTime is
    // invalidated when the app crosses into another phase.
    size_t phase_index = 0;
  };

  size_t IndexOf(AppId id) const;
  const App& GetApp(AppId id) const;

  EffectiveParams EffectiveParamsFor(const App& app,
                                     size_t phase_index) const;

  // Brings params_cache_ up to date for the current now_: rebuilt from
  // scratch when app_generation_ moved (launch/terminate reorders apps_),
  // and per app when it crossed a phase boundary (which dirties the solve).
  // Steady-state epochs reuse the cached entries untouched — zero heap
  // allocations.
  void RefreshEffectiveParams();

  // Rebuilds the flat SoA model-input arrays (per-app constants, phase
  // params, per-CLOS-derived MBA terms and caps) when input_generation_
  // moved since the last rebuild. Only dirty epochs pay this; it is O(apps).
  void RefreshSoaInputs();

  // Shared-capacity fixed point across the current CLOS masks; leaves the
  // per-app result in scratch_capacities_. Aggregates the way-splitting
  // loop per CLOS (all sharers of a CLOS see the same mask), so each
  // fixed-point round costs O(ways * active_clos + apps) instead of
  // O(ways * apps). Scalar reference implementation.
  void SolveEffectiveCapacities();
  // Same fixed point over the flat SoA arrays (cached mask bits, split
  // elementwise loops); bit-identical to the scalar version.
  void SolveEffectiveCapacitiesVectorized();

  // Full coupled solve for the current inputs; writes the pre-noise fixed
  // point into the solved_* arrays. The scalar kernel mirrors the original
  // app-at-a-time code as the bit-identity reference; the vectorized kernel
  // runs the same math as flat elementwise loops with identical expression
  // shapes (so the compiler may vectorize across apps without changing
  // results).
  // `capacity_clean` skips the capacity fixed point and its miss-ratio
  // queries, reusing solved_capacity_/solved_miss_ratio_ from the previous
  // solve — valid exactly when no capacity-tier input changed since
  // (solved_capacity_generation_ == capacity_generation_) and bit-identical
  // to a full solve because the fixed point is a pure function of those
  // inputs.
  void SolveEpochScalar();
  void SolveEpochVectorized(bool capacity_clean);

  // Applies the stored fixed point for one epoch of length dt: draws the
  // per-app noise (identical RNG stream on fast and slow paths), publishes
  // last_epoch_ and accumulates counters_.
  void CommitEpoch(double dt);

  // CPI at the given miss-per-instruction and MBA level (no grant bound).
  // cpi_exec is passed separately so phase scaling can adjust it;
  // `contention` is the queueing-delay stretch on the miss stall and
  // `prefetch_lat` the prefetch-throttle stretch (1.0 = prefetch fully on).
  static double UnconstrainedCpi(const WorkloadDescriptor& d, double cpi_exec,
                                 double mpi, MbaLevel level, double contention,
                                 double prefetch_lat);

  MachineConfig config_;
  MbaThrottleModel throttle_model_;
  BandwidthArbiter arbiter_;
  Rng rng_;
  double now_ = 0.0;
  uint32_t next_app_id_ = 0;
  uint64_t app_generation_ = 0;
  uint32_t used_cores_ = 0;
  std::vector<App> apps_;
  std::vector<ClosSetting> clos_;
  // id -> index into apps_; maintained by every operation that bumps
  // app_generation_ so GetApp/AppExists are O(1) instead of a linear scan.
  std::unordered_map<AppId, size_t> app_index_;

  // --- Per-app mutable state, SoA (index-parallel with apps_) ---
  std::vector<uint32_t> app_clos_;
  // Required-IPS cap; +inf means uncapped (min(x, +inf) == x bit-exactly,
  // so the solve needs no branch).
  std::vector<double> required_ips_;
  // Prefetcher aggressiveness percent, 100 at launch (factors become exactly
  // 1.0, so untouched apps cost nothing and change nothing).
  std::vector<uint32_t> prefetch_percent_;
  std::vector<AppCounters> counters_;
  std::vector<AppEpochSnapshot> last_epoch_;

  // Cached phase-adjusted params, one per app in apps_ order; valid while
  // params_generation_ == app_generation_ and each app stays in the phase
  // recorded in its entry.
  std::vector<EffectiveParams> params_cache_;
  uint64_t params_generation_ = ~0ull;
  // Indices of apps with a non-empty phase schedule; the per-epoch phase
  // check only walks these (empty for purely steady workloads).
  std::vector<size_t> phased_apps_;

  // --- Dirty tracking for the incremental tick ---
  // Bumped by every mutation that can change the epoch solve: launch/
  // terminate, way mask / MBA / CLOS-membership / required-IPS changes
  // (value-compared first) and phase crossings.
  uint64_t input_generation_ = 0;
  // Bumped by the subset of mutations that can change the capacity fixed
  // point (masks, membership, launch/terminate, phase crossings) — NOT by
  // MBA or required-IPS changes, which only affect the bandwidth tier.
  uint64_t capacity_generation_ = 0;
  // Generations the solved_* arrays were computed at, and whether they hold
  // a converged fixed point at all.
  uint64_t solved_input_generation_ = 0;
  uint64_t solved_capacity_generation_ = 0;
  bool solved_valid_ = false;
  uint64_t full_solves_ = 0;
  uint64_t partial_solves_ = 0;

  // --- SoA model inputs (valid while the stamps below match) ---
  std::vector<double> soa_cores_hz_;   // num_cores * core_freq_hz
  std::vector<double> soa_api_;        // accesses_per_instr (phase-adjusted)
  std::vector<double> soa_cpi_exec_;   // cpi_exec (phase-adjusted)
  std::vector<double> soa_mem_lat_;    // mem_latency_cycles
  std::vector<double> soa_mlp_;        // mlp
  std::vector<double> soa_kappa_;      // mba_kappa
  std::vector<double> soa_mba_term_;   // 100/level - 1 for the app's CLOS
  std::vector<double> soa_cap_bps_;    // MBA bandwidth cap for the app's CLOS
  std::vector<double> soa_pf_lat_;     // prefetch latency stretch (1.0 @ 100)
  std::vector<double> soa_pf_bw_;      // prefetch demand scale (1.0 @ 100)
  std::vector<uint64_t> clos_mask_bits_;
  uint64_t soa_input_generation_ = ~0ull;
  uint64_t soa_app_generation_ = ~0ull;

  // --- Last converged solve (pre-noise), replayed by the fast path ---
  std::vector<double> solved_ips_;
  std::vector<double> solved_capability_;
  std::vector<double> solved_miss_ratio_;
  std::vector<double> solved_capacity_;
  std::vector<double> solved_demand_;
  std::vector<double> solved_grant_;
  std::vector<double> solved_mpi_;
  std::vector<double> solved_api_;

  // Epoch scratch, reused across AdvanceTime calls so steady-state epochs
  // never touch the heap (tests/machine_epoch_alloc_test.cc pins this).
  std::vector<double> scratch_capacities_;
  std::vector<double> scratch_weights_;
  std::vector<double> scratch_clos_weight_;
  std::vector<double> scratch_clos_capacity_;
  std::vector<uint32_t> scratch_active_clos_;
  std::vector<double> scratch_miss_ratios_;
  std::vector<double> scratch_mpis_;
  std::vector<BandwidthRequest> scratch_requests_;
  std::vector<double> scratch_capped_;
  std::vector<double> scratch_grants_;
};

}  // namespace copart

#endif  // COPART_MACHINE_SIMULATED_MACHINE_H_
