// The simulated commodity server.
//
// SimulatedMachine hosts consolidated applications (each pinned to dedicated
// cores and bound to a CLOS) and advances simulated time in epochs. Each
// epoch it solves the coupled performance model:
//
//   1. *Effective LLC capacity* per app: ways owned exclusively contribute
//      fully; ways shared by several CLOSes are split in proportion to each
//      sharer's fill (miss) intensity, computed as a short fixed point —
//      the standard occupancy approximation for shared LRU caches.
//   2. *Miss ratio* from the app's ReuseProfile at that capacity.
//   3. *Unconstrained IPS* from the CPI model:
//        CPI = cpi_exec + MPI * (Lmem/mlp) * (1 + kappa*(100/level - 1))
//      where MPI = accesses_per_instr * miss_ratio; the kappa term is the
//      per-request MBA throttle delay (see membw/mba_throttle_model.h).
//   4. *Bandwidth demand* = IPS * MPI * line_bytes, arbitrated max-min
//      against the MBA caps and the controller's total bandwidth.
//   5. *Achieved IPS* = min(unconstrained, grant-limited) (roofline), with
//      optional multiplicative noise modeling run-to-run variation.
//
// Per-app counters (instructions, LLC accesses, LLC misses) accumulate each
// epoch; the pmc module samples them exactly like PAPI would on hardware.
//
// Partitioning state (per-CLOS way mask + MBA level) is mutated only through
// the resctrl module, mirroring the paper's user-level prototype.
#ifndef COPART_MACHINE_SIMULATED_MACHINE_H_
#define COPART_MACHINE_SIMULATED_MACHINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/way_mask.h"
#include "common/rng.h"
#include "common/status.h"
#include "machine/app_id.h"
#include "machine/machine_config.h"
#include "membw/bandwidth_arbiter.h"
#include "membw/mba.h"
#include "membw/mba_throttle_model.h"
#include "workload/workload.h"

namespace copart {

// Cumulative hardware counters for one app (since launch).
struct AppCounters {
  double instructions = 0.0;
  double llc_accesses = 0.0;
  double llc_misses = 0.0;
  double memory_bytes = 0.0;
};

// Model outputs of the most recent epoch for one app.
struct AppEpochSnapshot {
  double ips = 0.0;
  // IPS the app could sustain at its current allocation ignoring the
  // bandwidth grant and any required-IPS cap; the latency-critical harness
  // uses it as the service capacity of a queueing model.
  double ips_capability = 0.0;
  double llc_accesses_per_sec = 0.0;
  double llc_misses_per_sec = 0.0;
  double miss_ratio = 0.0;
  double effective_capacity_bytes = 0.0;
  double bandwidth_demand_bytes_per_sec = 0.0;
  double bandwidth_grant_bytes_per_sec = 0.0;
};

class SimulatedMachine {
 public:
  explicit SimulatedMachine(const MachineConfig& config);

  // --- App lifecycle ---

  // Launches `descriptor` on `num_cores` dedicated cores (defaults to the
  // descriptor's thread count). Fails if not enough free cores remain.
  // The app starts in CLOS 0 (the default group, full resources).
  Result<AppId> LaunchApp(const WorkloadDescriptor& descriptor,
                          std::optional<uint32_t> num_cores = std::nullopt);
  Status TerminateApp(AppId id);

  std::vector<AppId> ListApps() const;
  bool AppExists(AppId id) const;
  const WorkloadDescriptor& Descriptor(AppId id) const;
  uint32_t AppCores(AppId id) const;
  // Simulated time at which the app launched; with Descriptor().PhaseIndexAt
  // this lets external sensors (pmc/perf_monitor's estimator feed) track the
  // app's current execution phase.
  double AppLaunchTime(AppId id) const;

  // Monotonic counter bumped on every launch/termination; the controller's
  // idle phase polls it to detect consolidation changes (paper §5.4.3).
  uint64_t app_generation() const { return app_generation_; }

  // --- Partitioning state (called by the resctrl module) ---

  void SetClosWayMask(uint32_t clos, const WayMask& mask);
  void SetClosMbaLevel(uint32_t clos, MbaLevel level);
  void AssignAppToClos(AppId id, uint32_t clos);

  const WayMask& ClosWayMask(uint32_t clos) const;
  MbaLevel ClosMbaLevel(uint32_t clos) const;
  uint32_t AppClos(AppId id) const;

  // --- Work limiting (latency-critical apps) ---

  // Caps the app's executed IPS at `required_ips` (open-loop offered load);
  // nullopt removes the cap. Used by the case-study harness.
  void SetAppRequiredIps(AppId id, std::optional<double> required_ips);

  // --- Time ---

  // Advances simulated time by `dt` seconds as a single epoch.
  void AdvanceTime(double dt);
  double now() const { return now_; }

  // --- Observation ---

  const AppCounters& Counters(AppId id) const;
  const AppEpochSnapshot& LastEpoch(AppId id) const;

  // IPS the descriptor would achieve running alone with all ways, MBA 100
  // and an uncontended memory controller — the IPS_full reference of Eq. 1.
  // Deterministic (no noise).
  double SoloFullResourceIps(const WorkloadDescriptor& descriptor,
                             std::optional<uint32_t> num_cores =
                                 std::nullopt) const;

  const MachineConfig& config() const { return config_; }
  uint32_t FreeCores() const;

  // Overrides the per-epoch IPS noise, e.g. to make an offline-search clone
  // of the machine deterministic. SimulatedMachine is copyable precisely to
  // support such what-if clones (harness/static_oracle.h).
  void SetIpsNoiseSigma(double sigma);

 private:
  struct ClosState {
    WayMask way_mask;
    MbaLevel mba_level;
  };

  struct App {
    AppId id;
    WorkloadDescriptor descriptor;
    uint32_t num_cores = 0;
    uint32_t clos = 0;
    double launch_time = 0.0;
    std::optional<double> required_ips;
    AppCounters counters;
    AppEpochSnapshot last_epoch;
  };

  // Phase-adjusted model parameters for one epoch (workload phases scale
  // the baseline access intensity, streaming traffic and execution CPI).
  struct EffectiveParams {
    double accesses_per_instr = 0.0;
    double cpi_exec = 1.0;
    ReuseProfile profile{{}, 0.0};
    // Phase the params were computed for; the cache in AdvanceTime is
    // invalidated when the app crosses into another phase.
    size_t phase_index = 0;
  };

  const App& GetApp(AppId id) const;
  App& GetApp(AppId id);

  EffectiveParams EffectiveParamsFor(const App& app,
                                     size_t phase_index) const;

  // Brings params_cache_ up to date for the current now_: rebuilt from
  // scratch when app_generation_ moved (launch/terminate reorders apps_),
  // and per app when it crossed a phase boundary. Steady-state epochs reuse
  // the cached entries untouched — zero heap allocations.
  void RefreshEffectiveParams();

  // Shared-capacity fixed point across the current CLOS masks; leaves the
  // per-app result in scratch_capacities_. Aggregates the way-splitting
  // loop per CLOS (all sharers of a CLOS see the same mask), so each
  // fixed-point round costs O(ways * active_clos + apps) instead of
  // O(ways * apps).
  void SolveEffectiveCapacities();

  // CPI at the given miss-per-instruction and MBA level (no grant bound).
  // cpi_exec is passed separately so phase scaling can adjust it;
  // `contention` is the queueing-delay stretch on the miss stall.
  static double UnconstrainedCpi(const WorkloadDescriptor& d, double cpi_exec,
                                 double mpi, MbaLevel level,
                                 double contention);

  MachineConfig config_;
  MbaThrottleModel throttle_model_;
  BandwidthArbiter arbiter_;
  Rng rng_;
  double now_ = 0.0;
  uint32_t next_app_id_ = 0;
  uint64_t app_generation_ = 0;
  uint32_t used_cores_ = 0;
  std::vector<App> apps_;
  std::vector<ClosState> clos_;
  // id -> index into apps_; maintained by every operation that bumps
  // app_generation_ so GetApp/AppExists are O(1) instead of a linear scan.
  std::unordered_map<AppId, size_t> app_index_;

  // Cached phase-adjusted params, one per app in apps_ order; valid while
  // params_generation_ == app_generation_ and each app stays in the phase
  // recorded in its entry.
  std::vector<EffectiveParams> params_cache_;
  uint64_t params_generation_ = ~0ull;

  // Epoch scratch, reused across AdvanceTime calls so steady-state epochs
  // never touch the heap (tests/machine_epoch_alloc_test.cc pins this).
  std::vector<double> scratch_capacities_;
  std::vector<double> scratch_weights_;
  std::vector<double> scratch_clos_weight_;
  std::vector<double> scratch_clos_capacity_;
  std::vector<uint32_t> scratch_active_clos_;
  std::vector<double> scratch_miss_ratios_;
  std::vector<double> scratch_mpis_;
  std::vector<BandwidthRequest> scratch_requests_;
  std::vector<double> scratch_grants_;
};

}  // namespace copart

#endif  // COPART_MACHINE_SIMULATED_MACHINE_H_
