// Configuration of the simulated commodity server.
//
// Defaults reproduce the paper's evaluation platform (Table 1): a 16-core
// Xeon Gold 6130 at 2.1 GHz with a 22 MB / 11-way shared LLC and ~28 GB/s of
// memory bandwidth, Hyper-Threading and Turbo Boost disabled.
#ifndef COPART_MACHINE_MACHINE_CONFIG_H_
#define COPART_MACHINE_MACHINE_CONFIG_H_

#include <cstdint>

#include "cache/llc_geometry.h"
#include "cache/miss_ratio_curve.h"
#include "common/units.h"

namespace copart {

class FaultInjector;

// Which implementation solves the coupled epoch model (see
// machine/simulated_machine.h). Both produce bit-identical results by
// construction; kScalar is the straight-line reference kept for
// cross-checking the vectorized path (bench_sim_throughput --scalar-check).
enum class EpochKernel : uint8_t {
  kVectorized,
  kScalar,
};

struct MachineConfig {
  uint32_t num_cores = 16;
  double core_freq_hz = 2.1e9;
  LlcGeometry llc;
  double total_memory_bandwidth = GBps(28.0);
  // CLOS count of the modeled CPU (Xeon Gold 6130 exposes 16 for L3 CAT).
  uint32_t num_clos = 16;
  // MBA cap curve exponent (see MbaThrottleModel).
  double mba_cap_exponent = 0.7;
  // Memory-controller queueing: effective DRAM latency stretches with
  // controller utilization rho as Lmem * (1 + factor * rho^2). This is what
  // makes throttling a bandwidth hog genuinely help latency-bound
  // co-runners (as on real memory controllers); 0 disables the coupling
  // (bench_ablation_queueing sweeps it).
  double queueing_delay_factor = 1.0;
  // Multiplicative per-epoch IPS noise (sigma of a lognormal-ish
  // perturbation); models run-to-run variation on real hardware that the
  // controller's thresholds (deltaP etc.) must tolerate. 0 disables.
  double ips_noise_sigma = 0.01;
  // Prefetch-throttle model (the CBP-style third actuator; DESIGN.md §14).
  // Each app carries a prefetcher-aggressiveness percent p (100 = fully
  // enabled, the hardware reset state). Prefetching hides miss latency but
  // fetches speculative lines, so throttling trades the two: at aggressiveness
  // p the per-miss stall is stretched by
  //   pf_lat = 1 + prefetch_latency_penalty * (1 - p/100)
  // and the bandwidth demand is scaled by
  //   pf_bw  = 1 - prefetch_bw_share * (1 - p/100).
  // Both factors are exactly 1.0 at p = 100, so runs that never touch the
  // knob are bit-identical to a machine without the model.
  double prefetch_bw_share = 0.25;
  double prefetch_latency_penalty = 0.6;
  // Miss-ratio curve evaluation for the epoch model: kCompiled (default)
  // answers queries from each profile's precompiled monotone table
  // (cache/compiled_mrc.h, ~1e-5 relative error, ~50x cheaper); kExact runs
  // the reference bisection per query. Results are deterministic for a
  // fixed mode; numerics differ slightly between modes, so comparisons
  // against goldens must pin one.
  MrcMode mrc_mode = MrcMode::kCompiled;
  // Epoch solve kernel: kVectorized iterates flat structure-of-arrays state
  // with SIMD-friendly loops; kScalar is the reference implementation.
  EpochKernel epoch_kernel = EpochKernel::kVectorized;
  // Reuse the last converged epoch solve while nothing observable changed
  // (way masks, MBA levels, CLOS membership, app arrivals/departures,
  // required-IPS caps, workload phases) — the steady-state common case in
  // managed runs. The fast path is bit-identical to re-solving because the
  // epoch model is memoryless in those inputs. Disable to force a full
  // solve every epoch.
  bool incremental_epochs = true;
  uint64_t seed = 0x5EED5EEDULL;
  // Optional fault injection for the actuation/monitoring substrate
  // (common/fault_injector.h). Not owned; must outlive every component
  // constructed against this config. Copies of the config (and machine
  // clones) share the injector. Null — the default — disables injection
  // entirely at the cost of one pointer compare per instrumented call.
  FaultInjector* fault_injector = nullptr;
};

}  // namespace copart

#endif  // COPART_MACHINE_MACHINE_CONFIG_H_
