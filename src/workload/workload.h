// Workload descriptors: compact performance models of the consolidated
// applications.
//
// The paper evaluates 11 multithreaded benchmarks from PARSEC/SPLASH/NPB
// (Table 2) plus STREAM, memcached, and two Spark batch jobs. None of those
// can run here, so each is replaced by a surrogate described by:
//
//   - a ReuseProfile, which yields the LLC miss ratio as a function of the
//     allocated cache capacity (drives CAT sensitivity),
//   - `accesses_per_instr`, the post-L2 LLC access intensity,
//   - a memory-stall model (`mem_latency_cycles`, `mlp`) that converts
//     misses into CPI,
//   - `mba_kappa`, the per-app sensitivity to MBA throttle delay (real MBA
//     inserts inter-request delays whose perf impact depends on each app's
//     memory-level parallelism; kappa captures that idiosyncrasy).
//
// The surrogate parameters are calibrated (tests/workload_calibration_test)
// so that every app lands in the paper's sensitivity category and reproduces
// the paper's headline thresholds: WN/WS/RT need 4/3/2 ways for 90% of full
// performance; OC/CG/FT need MBA levels 30/20/30 (§4.1).
#ifndef COPART_WORKLOAD_WORKLOAD_H_
#define COPART_WORKLOAD_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/miss_ratio_curve.h"

namespace copart {

// Sensitivity categories from Table 2, plus roles used by the case study.
enum class WorkloadCategory {
  kLlcSensitive,
  kBwSensitive,
  kBothSensitive,
  kInsensitive,
  kLatencyCritical,
  kBatch,
};

const char* WorkloadCategoryName(WorkloadCategory category);

// One execution phase of a multi-phase application. Phases scale the
// descriptor's baseline parameters; real applications alternate between
// e.g. compute-dense and scan phases, and CoPart's idle phase must detect
// the resulting IPS drift and re-adapt (§5.4.3).
struct WorkloadPhase {
  double duration_sec = 0.0;
  // Multipliers applied to the baseline descriptor during this phase.
  double access_intensity_scale = 1.0;  // accesses_per_instr
  double streaming_scale = 1.0;         // streaming weight of the profile
  double cpi_exec_scale = 1.0;
};

struct WorkloadDescriptor {
  std::string name;        // e.g. "water_nsquared"
  std::string short_name;  // e.g. "WN"
  WorkloadCategory category = WorkloadCategory::kInsensitive;

  ReuseProfile reuse_profile{{}, 0.0};

  // LLC accesses per dynamically executed instruction (post-L2 filter).
  double accesses_per_instr = 0.0;

  // Cycles per instruction with all LLC hits and no throttling.
  double cpi_exec = 1.0;

  // DRAM access latency in core cycles.
  double mem_latency_cycles = 200.0;

  // Average memory-level parallelism: how many misses overlap. Effective
  // stall per miss = mem_latency_cycles / mlp.
  double mlp = 1.0;

  // MBA delay sensitivity: the throttle adds
  // mba_kappa * (100/level - 1) * mem_latency_cycles / mlp
  // stall cycles per miss (0 at level 100).
  double mba_kappa = 0.0;

  // Threads == dedicated cores (the paper pins one thread per core).
  uint32_t num_threads = 4;

  // --- LC service-demand parameters (kLatencyCritical only) ---
  // Mean instructions retired per request; converts offered load
  // (requests/s) into required IPS and IPS capability into a service rate
  // for the serve engine (src/serve). 0 for batch workloads.
  double instructions_per_request = 0.0;
  // Default tail-latency SLO the §6.3 case study and serve harness apply
  // to this workload (95th percentile sojourn, ms). 0 for batch.
  double slo_p95_ms = 0.0;

  // Optional phase program, cycled for the lifetime of the app; empty means
  // a single steady phase with the baseline parameters.
  std::vector<WorkloadPhase> phases;

  // Phase in effect at time `t` since app launch (cycles through `phases`);
  // the identity phase when none are defined.
  WorkloadPhase PhaseAt(double t) const;

  // Index into `phases` of the phase in effect at `t` (0 when no phases are
  // defined). The machine's epoch kernel caches its phase-adjusted
  // parameters and recomputes them only when this index moves.
  size_t PhaseIndexAt(double t) const;
};

// A two-phase synthetic app that alternates between a cache-friendly
// compute phase and a bandwidth-heavy scan phase every `period_sec`
// seconds; used to exercise CoPart's drift-triggered re-adaptation.
WorkloadDescriptor PhasedScanCompute(double period_sec = 20.0);

// Phase-changing memcached (DESIGN.md §15): the §6.3 LC surrogate with a
// periodic working-set shift — a steady key-churn phase at the baseline
// parameters followed by a hot-set-rotation phase where the access
// intensity doubles and streaming traffic surges (cold objects faulting
// through the LLC). The analytic capability model reads only the baseline
// descriptor, so during the rotation phase it over-estimates capability —
// exactly the modelling error the learned governors exist to absorb.
WorkloadDescriptor MemcachedPhased(double period_sec = 15.0);

// A correlated LC + batch surrogate pair sharing one phase clock: when
// the LC app rotates its hot set (heavy phase), the batch job
// simultaneously enters its scan phase (e.g. a pipeline stage handing
// data from the serving tier to the analytics tier). The correlated
// pressure makes LC capability dip exactly when batch contention peaks,
// so classification and the learned p95 model must re-converge together.
struct CorrelatedPair {
  WorkloadDescriptor lc;
  WorkloadDescriptor batch;
};
CorrelatedPair CorrelatedLcBatchPair(double period_sec = 15.0);

// --- Table 2 surrogates (paper §3.3) ---
WorkloadDescriptor WaterNsquared();  // WN, LLC-sensitive
WorkloadDescriptor WaterSpatial();   // WS, LLC-sensitive
WorkloadDescriptor Raytrace();       // RT, LLC-sensitive
WorkloadDescriptor OceanCp();        // OC, BW-sensitive
WorkloadDescriptor Cg();             // CG, BW-sensitive
WorkloadDescriptor Ft();             // FT, BW-sensitive
WorkloadDescriptor Sp();             // SP, LLC- & BW-sensitive
WorkloadDescriptor OceanNcp();       // ON, LLC- & BW-sensitive
WorkloadDescriptor Fmm();            // FMM, LLC- & BW-sensitive
WorkloadDescriptor Swaptions();      // SW, insensitive
WorkloadDescriptor Ep();             // EP, insensitive

// STREAM: pure streaming; the paper uses it as the maximum-memory-traffic
// reference for the memory-traffic ratio (§3.3, §5.3).
WorkloadDescriptor Stream();

// --- Case-study surrogates (paper §6.3) ---
// memcached-like latency-critical app (CloudSuite data-caching).
WorkloadDescriptor Memcached();
// Spark Word Count-like batch job: scan-heavy, bandwidth-leaning.
WorkloadDescriptor WordCount();
// Spark Kmeans-like batch job: iterative, cache-leaning.
WorkloadDescriptor Kmeans();

// All 11 Table 2 benchmarks in the paper's order.
std::vector<WorkloadDescriptor> AllTable2Benchmarks();

// Benchmarks of one category, in Table 2 order.
std::vector<WorkloadDescriptor> BenchmarksByCategory(
    WorkloadCategory category);

}  // namespace copart

#endif  // COPART_WORKLOAD_WORKLOAD_H_
