#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace copart {

const char* WorkloadCategoryName(WorkloadCategory category) {
  switch (category) {
    case WorkloadCategory::kLlcSensitive:
      return "LLC-sensitive";
    case WorkloadCategory::kBwSensitive:
      return "Memory bandwidth-sensitive";
    case WorkloadCategory::kBothSensitive:
      return "LLC- & memory BW-sensitive";
    case WorkloadCategory::kInsensitive:
      return "Insensitive";
    case WorkloadCategory::kLatencyCritical:
      return "Latency-critical";
    case WorkloadCategory::kBatch:
      return "Batch";
  }
  return "?";
}

// Calibration notes (all validated by tests/workload_calibration_test.cc):
// every surrogate must land in its Table 2 category under the paper's
// criteria (>=15% degradation from 11->1 way at MBA 100 for LLC sensitivity;
// >=15% from MBA 100->10 at 11 ways for BW sensitivity; <1% on both axes for
// the insensitive apps), and the headline thresholds of §4.1 must hold:
// WN/WS/RT reach 90% of full performance at 4/3/2 ways, OC/CG/FT at MBA
// levels 30/20/30.

WorkloadDescriptor WaterNsquared() {
  WorkloadDescriptor d;
  d.name = "water_nsquared";
  d.short_name = "WN";
  d.category = WorkloadCategory::kLlcSensitive;
  // High-locality 8.2 MB footprint: needs 4 ways (8 MB) for ~full speed,
  // degrades drastically below 2 ways; nearly zero residual misses at full
  // capacity (Table 2: 2.58e4 misses/s vs 6.91e7 accesses/s).
  d.reuse_profile = ReuseProfile(
      {{0.98, static_cast<uint64_t>(8.2 * 1024 * 1024)}},
      /*streaming_weight=*/4.0e-4);
  d.accesses_per_instr = 8.2e-3;
  d.cpi_exec = 1.0;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.03;
  return d;
}

WorkloadDescriptor WaterSpatial() {
  WorkloadDescriptor d;
  d.name = "water_spatial";
  d.short_name = "WS";
  d.category = WorkloadCategory::kLlcSensitive;
  // 6.15 MB footprint -> needs 3 ways; larger residual stream than WN
  // (Table 2: 9.12e5 misses/s).
  d.reuse_profile = ReuseProfile(
      {{0.95, static_cast<uint64_t>(6.15 * 1024 * 1024)}},
      /*streaming_weight=*/0.021);
  d.accesses_per_instr = 5.1e-3;
  d.cpi_exec = 1.0;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.03;
  return d;
}

WorkloadDescriptor Raytrace() {
  WorkloadDescriptor d;
  d.name = "raytrace";
  d.short_name = "RT";
  d.category = WorkloadCategory::kLlcSensitive;
  // 4.1 MB scene footprint -> needs 2 ways.
  d.reuse_profile = ReuseProfile(
      {{0.95, static_cast<uint64_t>(4.1 * 1024 * 1024)}},
      /*streaming_weight=*/5.7e-4);
  d.accesses_per_instr = 4.5e-3;
  d.cpi_exec = 1.0;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.03;
  return d;
}

WorkloadDescriptor OceanCp() {
  WorkloadDescriptor d;
  d.name = "ocean_cp";
  d.short_name = "OC";
  d.category = WorkloadCategory::kBwSensitive;
  // Grid sweeps with little temporal locality: 94% of LLC accesses stream.
  // Moderate traffic (~3 GB/s) but latency-exposed (mlp 2), so the MBA
  // delay (kappa) is what makes it need level 30 for 90% performance.
  d.reuse_profile =
      ReuseProfile({{0.05, MiB(3)}}, /*streaming_weight=*/0.94);
  d.accesses_per_instr = 1.02e-2;
  d.cpi_exec = 0.8;
  d.mem_latency_cycles = 200.0;
  d.mlp = 2.0;
  d.mba_kappa = 0.07;
  return d;
}

WorkloadDescriptor Cg() {
  WorkloadDescriptor d;
  d.name = "CG";
  d.short_name = "CG";
  d.category = WorkloadCategory::kBwSensitive;
  // Sparse matrix-vector: the heaviest traffic in Table 2 (~7.5 GB/s) but
  // high MLP, so it tolerates the MBA delay; its level-10 degradation comes
  // from the bandwidth cap itself (needs level 20 for 90%).
  d.reuse_profile = ReuseProfile({{0.55, MiB(1)}},
                                 /*streaming_weight=*/0.361);
  d.accesses_per_instr = 4.2e-2;
  d.cpi_exec = 0.7;
  d.mem_latency_cycles = 200.0;
  d.mlp = 8.0;
  d.mba_kappa = 0.015;
  return d;
}

WorkloadDescriptor Ft() {
  WorkloadDescriptor d;
  d.name = "FT";
  d.short_name = "FT";
  d.category = WorkloadCategory::kBwSensitive;
  // 3-D FFT transposes: low traffic (~1.3 GB/s) but serial dependent misses
  // (mlp 1), so MBA delay dominates -> needs level 30.
  d.reuse_profile = ReuseProfile({{0.10, MiB(4)}}, /*streaming_weight=*/0.80);
  d.accesses_per_instr = 4.7e-3;
  d.cpi_exec = 0.9;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.08;
  return d;
}

WorkloadDescriptor Sp() {
  WorkloadDescriptor d;
  d.name = "SP";
  d.short_name = "SP";
  d.category = WorkloadCategory::kBothSensitive;
  // Penta-diagonal solver: 44 MB footprint (twice the LLC) gives a smooth
  // miss-ratio gradient across every way count, plus a 25% stream -> both
  // axes matter, and multiple (ways, MBA) states give similar performance.
  d.reuse_profile = ReuseProfile({{0.55, MiB(44)}}, /*streaming_weight=*/0.25);
  d.accesses_per_instr = 8.0e-2;
  d.cpi_exec = 0.7;
  d.mem_latency_cycles = 200.0;
  d.mlp = 2.0;
  d.mba_kappa = 0.06;
  return d;
}

WorkloadDescriptor OceanNcp() {
  WorkloadDescriptor d;
  d.name = "ocean_ncp";
  d.short_name = "ON";
  d.category = WorkloadCategory::kBothSensitive;
  // Non-contiguous grids: heavy stream plus a 28 MB reusable region.
  d.reuse_profile = ReuseProfile({{0.35, MiB(8)}}, /*streaming_weight=*/0.64);
  d.accesses_per_instr = 4.5e-2;
  d.cpi_exec = 0.8;
  d.mem_latency_cycles = 200.0;
  d.mlp = 2.0;
  d.mba_kappa = 0.05;
  return d;
}

WorkloadDescriptor Fmm() {
  WorkloadDescriptor d;
  d.name = "FMM";
  d.short_name = "FMM";
  d.category = WorkloadCategory::kBothSensitive;
  // Fast multipole: low access intensity (Table 2: 6.12e6 accesses/s) but
  // serial pointer-chasing misses (high latency, no MLP) make both resources
  // matter despite the light traffic.
  d.reuse_profile = ReuseProfile({{0.45, MiB(10)}}, /*streaming_weight=*/0.42);
  d.accesses_per_instr = 6.0e-3;
  d.cpi_exec = 3.0;
  d.mem_latency_cycles = 450.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.10;
  return d;
}

WorkloadDescriptor Swaptions() {
  WorkloadDescriptor d;
  d.name = "swaptions";
  d.short_name = "SW";
  d.category = WorkloadCategory::kInsensitive;
  // Monte-Carlo pricing: essentially register/L2-resident (Table 2:
  // 1.08e4 LLC accesses/s).
  d.reuse_profile = ReuseProfile({}, /*streaming_weight=*/0.07);
  d.accesses_per_instr = 1.3e-6;
  d.cpi_exec = 0.55;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.0;
  return d;
}

WorkloadDescriptor Ep() {
  WorkloadDescriptor d;
  d.name = "EP";
  d.short_name = "EP";
  d.category = WorkloadCategory::kInsensitive;
  // Embarrassingly parallel random-number kernel.
  d.reuse_profile = ReuseProfile({}, /*streaming_weight=*/0.024);
  d.accesses_per_instr = 8.7e-5;
  d.cpi_exec = 0.8;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.0;
  d.mba_kappa = 0.0;
  return d;
}

WorkloadDescriptor Stream() {
  WorkloadDescriptor d;
  d.name = "STREAM";
  d.short_name = "STREAM";
  d.category = WorkloadCategory::kBwSensitive;
  // Pure streaming with maximal MLP; saturates the memory controller and
  // serves as the maximum-traffic reference for the memory traffic ratio.
  d.reuse_profile = ReuseProfile::Streaming();
  d.accesses_per_instr = 0.5;
  d.cpi_exec = 0.4;
  d.mem_latency_cycles = 200.0;
  d.mlp = 16.0;
  d.mba_kappa = 0.0;
  return d;
}

WorkloadDescriptor Memcached() {
  WorkloadDescriptor d;
  d.name = "memcached";
  d.short_name = "MC";
  d.category = WorkloadCategory::kLatencyCritical;
  // In-memory key-value store: hot object set of ~12 MB, light streaming
  // (logging, connection churn). Latency model lives in the harness.
  d.reuse_profile = ReuseProfile({{0.90, MiB(12)}}, /*streaming_weight=*/0.02);
  d.accesses_per_instr = 8.0e-3;
  d.cpi_exec = 1.2;
  d.mem_latency_cycles = 200.0;
  d.mlp = 2.0;
  d.mba_kappa = 0.10;
  // Service demand: ~60k instructions per request (get/set with parsing
  // and hashing), 1 ms p95 SLO (§6.3).
  d.instructions_per_request = 60000.0;
  d.slo_p95_ms = 1.0;
  return d;
}

WorkloadDescriptor WordCount() {
  WorkloadDescriptor d;
  d.name = "word_count";
  d.short_name = "WC";
  d.category = WorkloadCategory::kBatch;
  // Scan-heavy Spark job over a 64 GB dataset: bandwidth-leaning.
  d.reuse_profile = ReuseProfile({{0.30, MiB(10)}}, /*streaming_weight=*/0.60);
  d.accesses_per_instr = 3.0e-2;
  d.cpi_exec = 0.8;
  d.mem_latency_cycles = 200.0;
  d.mlp = 4.0;
  d.mba_kappa = 0.05;
  return d;
}

WorkloadDescriptor Kmeans() {
  WorkloadDescriptor d;
  d.name = "kmeans";
  d.short_name = "KM";
  d.category = WorkloadCategory::kBatch;
  // Iterative clustering over a 4 GB dataset with a 9 MB hot centroid/point
  // block: cache-leaning.
  d.reuse_profile = ReuseProfile({{0.80, MiB(9)}}, /*streaming_weight=*/0.05);
  d.accesses_per_instr = 1.2e-2;
  d.cpi_exec = 0.9;
  d.mem_latency_cycles = 200.0;
  d.mlp = 1.5;
  d.mba_kappa = 0.08;
  return d;
}

WorkloadPhase WorkloadDescriptor::PhaseAt(double t) const {
  if (phases.empty()) {
    return WorkloadPhase{};
  }
  return phases[PhaseIndexAt(t)];
}

size_t WorkloadDescriptor::PhaseIndexAt(double t) const {
  if (phases.empty()) {
    return 0;
  }
  double cycle = 0.0;
  for (const WorkloadPhase& phase : phases) {
    CHECK_GT(phase.duration_sec, 0.0);
    cycle += phase.duration_sec;
  }
  double offset = std::fmod(std::max(t, 0.0), cycle);
  for (size_t i = 0; i < phases.size(); ++i) {
    if (offset < phases[i].duration_sec) {
      return i;
    }
    offset -= phases[i].duration_sec;
  }
  return phases.size() - 1;
}

WorkloadDescriptor PhasedScanCompute(double period_sec) {
  WorkloadDescriptor d;
  d.name = "phased_scan_compute";
  d.short_name = "PH";
  d.category = WorkloadCategory::kBothSensitive;
  // Baseline: a cache-friendly 6 MB kernel with a small stream.
  d.reuse_profile = ReuseProfile({{0.80, MiB(6)}}, /*streaming_weight=*/0.05);
  d.accesses_per_instr = 1.0e-2;
  d.cpi_exec = 0.9;
  d.mem_latency_cycles = 200.0;
  d.mlp = 2.0;
  d.mba_kappa = 0.05;
  // Phase A: the compute/kernel phase (baseline). Phase B: a scan phase —
  // 6x the streaming traffic and higher access intensity.
  d.phases = {
      WorkloadPhase{.duration_sec = period_sec},
      WorkloadPhase{.duration_sec = period_sec,
                    .access_intensity_scale = 2.0,
                    .streaming_scale = 6.0,
                    .cpi_exec_scale = 0.9},
  };
  return d;
}

WorkloadDescriptor MemcachedPhased(double period_sec) {
  WorkloadDescriptor d = Memcached();
  d.name = "memcached_phased";
  d.short_name = "MCP";
  // Phase A: steady key churn (baseline). Phase B: hot-set rotation —
  // cold objects fault through the LLC, doubling the access intensity and
  // multiplying the streaming component while the request path itself
  // stays the same (instructions_per_request is phase-invariant).
  d.phases = {
      WorkloadPhase{.duration_sec = period_sec},
      WorkloadPhase{.duration_sec = period_sec,
                    .access_intensity_scale = 2.0,
                    .streaming_scale = 8.0,
                    .cpi_exec_scale = 1.1},
  };
  return d;
}

CorrelatedPair CorrelatedLcBatchPair(double period_sec) {
  CorrelatedPair pair;
  pair.lc = MemcachedPhased(period_sec);
  // The batch half: WordCount whose scan phase fires in lockstep with the
  // LC hot-set rotation — the pipeline stage that drains the serving
  // tier's freshly rotated data. Its quiet phase is compute-leaning.
  pair.batch = WordCount();
  pair.batch.name = "word_count_correlated";
  pair.batch.short_name = "WCC";
  pair.batch.phases = {
      WorkloadPhase{.duration_sec = period_sec,
                    .access_intensity_scale = 0.6,
                    .streaming_scale = 0.4,
                    .cpi_exec_scale = 1.1},
      WorkloadPhase{.duration_sec = period_sec,
                    .access_intensity_scale = 1.5,
                    .streaming_scale = 1.6,
                    .cpi_exec_scale = 0.9},
  };
  return pair;
}

std::vector<WorkloadDescriptor> AllTable2Benchmarks() {
  return {WaterNsquared(), WaterSpatial(), Raytrace(), OceanCp(),
          Cg(),            Ft(),           Sp(),       OceanNcp(),
          Fmm(),           Swaptions(),    Ep()};
}

std::vector<WorkloadDescriptor> BenchmarksByCategory(
    WorkloadCategory category) {
  std::vector<WorkloadDescriptor> result;
  for (WorkloadDescriptor& d : AllTable2Benchmarks()) {
    if (d.category == category) {
      result.push_back(std::move(d));
    }
  }
  return result;
}

}  // namespace copart
