#include "core/partition_policy.h"

#include "common/logging.h"
#include "core/cbp_policy.h"
#include "core/copart_partition_policy.h"
#include "core/lfoc_policy.h"

namespace copart {

std::unique_ptr<PartitionPolicy> MakePartitionPolicy(
    const std::string& name, const ResourceManagerParams& params) {
  if (name.empty() || name == "copart") {
    return std::make_unique<CoPartPartitionPolicy>(params);
  }
  if (name == "lfoc") {
    return std::make_unique<LfocPolicy>(params, /*plus=*/false);
  }
  if (name == "lfoc+") {
    return std::make_unique<LfocPolicy>(params, /*plus=*/true);
  }
  if (name == "cbp") {
    return std::make_unique<CbpPolicy>(params);
  }
  LOG_FATAL << "unknown partition policy: " << name;
  __builtin_unreachable();
}

const std::vector<std::string>& RegisteredPartitionPolicyNames() {
  static const std::vector<std::string> names = {"copart", "lfoc", "lfoc+",
                                                 "cbp"};
  return names;
}

}  // namespace copart
