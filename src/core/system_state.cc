#include "core/system_state.h"

#include <algorithm>

#include "common/logging.h"

namespace copart {
namespace {

uint32_t RoundToMbaStep(uint32_t percent) {
  const uint32_t step = MbaLevel::kStep;
  uint32_t rounded = (percent + step / 2) / step * step;
  return std::clamp(rounded, MbaLevel::kMin, MbaLevel::kMax);
}

}  // namespace

SystemState::SystemState(ResourcePool pool,
                         std::vector<AppAllocation> allocations)
    : pool_(pool), allocations_(std::move(allocations)) {}

SystemState SystemState::EqualShare(const ResourcePool& pool,
                                    size_t num_apps) {
  CHECK_GT(num_apps, 0u);
  CHECK_GE(pool.num_ways, num_apps) << "fewer ways than apps";
  std::vector<AppAllocation> allocations(num_apps);
  const uint32_t base = pool.num_ways / static_cast<uint32_t>(num_apps);
  uint32_t remainder = pool.num_ways % static_cast<uint32_t>(num_apps);
  for (AppAllocation& allocation : allocations) {
    allocation.llc_ways = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) {
      --remainder;
    }
    allocation.mba_level = MbaLevel::FromPercentChecked(
        RoundToMbaStep(pool.max_mba_percent));
  }
  return SystemState(pool, std::move(allocations));
}

SystemState SystemState::EqualShareThrottled(const ResourcePool& pool,
                                             size_t num_apps) {
  SystemState state = EqualShare(pool, num_apps);
  const uint32_t share = RoundToMbaStep(
      pool.max_mba_percent / static_cast<uint32_t>(num_apps));
  for (AppAllocation& allocation : state.allocations_) {
    allocation.mba_level = MbaLevel::FromPercentChecked(share);
  }
  return state;
}

const AppAllocation& SystemState::allocation(size_t app) const {
  CHECK_LT(app, allocations_.size());
  return allocations_[app];
}

AppAllocation& SystemState::allocation(size_t app) {
  CHECK_LT(app, allocations_.size());
  return allocations_[app];
}

bool SystemState::Valid() const {
  uint32_t total_ways = 0;
  for (const AppAllocation& allocation : allocations_) {
    if (allocation.llc_ways < 1) {
      return false;
    }
    if (allocation.mba_level.percent() > pool_.max_mba_percent) {
      return false;
    }
    total_ways += allocation.llc_ways;
  }
  return total_ways == pool_.num_ways;
}

SystemState SystemState::RandomNeighbor(Rng& rng, bool allow_llc_moves,
                                        bool allow_mba_moves) const {
  const size_t n = allocations_.size();
  if (n == 0) {
    return *this;
  }
  // Enumerate feasible single moves, then draw one uniformly.
  struct Move {
    bool is_llc;
    size_t from;  // LLC: way donor. MBA: the app whose level steps.
    size_t to;    // LLC: way recipient. MBA: 1 = up, 0 = down.
  };
  std::vector<Move> moves;
  if (allow_llc_moves) {
    for (size_t from = 0; from < n; ++from) {
      if (allocations_[from].llc_ways <= 1) {
        continue;
      }
      for (size_t to = 0; to < n; ++to) {
        if (to != from) {
          moves.push_back({true, from, to});
        }
      }
    }
  }
  if (allow_mba_moves) {
    for (size_t i = 0; i < n; ++i) {
      if (allocations_[i].mba_level.CanDecrease()) {
        moves.push_back({false, i, 0});
      }
      if (allocations_[i].mba_level.CanIncrease() &&
          allocations_[i].mba_level.percent() + MbaLevel::kStep <=
              pool_.max_mba_percent) {
        moves.push_back({false, i, 1});
      }
    }
  }
  if (moves.empty()) {
    return *this;
  }
  const Move& move = moves[rng.NextUint64(moves.size())];
  SystemState next = *this;
  if (move.is_llc) {
    --next.allocations_[move.from].llc_ways;
    ++next.allocations_[move.to].llc_ways;
  } else if (move.to == 1) {
    next.allocations_[move.from].mba_level =
        next.allocations_[move.from].mba_level.Increased();
  } else {
    next.allocations_[move.from].mba_level =
        next.allocations_[move.from].mba_level.Decreased();
  }
  return next;
}

uint64_t SystemState::WayMaskBits(size_t app) const {
  CHECK_LT(app, allocations_.size());
  uint32_t offset = pool_.first_way;
  for (size_t i = 0; i < app; ++i) {
    offset += allocations_[i].llc_ways;
  }
  const uint32_t count = allocations_[app].llc_ways;
  const uint64_t ones = count == 64 ? ~0ULL : ((1ULL << count) - 1ULL);
  return ones << offset;
}

std::string SystemState::ToString() const {
  std::string result = "{";
  for (size_t i = 0; i < allocations_.size(); ++i) {
    if (i > 0) {
      result += ", ";
    }
    result += "(" + std::to_string(allocations_[i].llc_ways) + "w," +
              std::to_string(allocations_[i].mba_level.percent()) + "%)";
  }
  result += "}";
  return result;
}

}  // namespace copart
