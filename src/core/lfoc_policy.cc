#include "core/lfoc_policy.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace copart {

LfocPolicy::LfocPolicy(const ResourceManagerParams& params, bool plus)
    : params_(params), plus_(plus) {}

void LfocPolicy::OnAppAdded() {
  // New apps start sensitive: they keep cache capacity until the signals
  // show they are light or streaming (the conservative default — taking
  // capacity away from a sensitive app hurts more than lending it to a
  // light one).
  classes_.push_back(AppClass::kSensitive);
  pressure_.push_back(0.0);
  traffic_ratios_.push_back(0.0);
}

void LfocPolicy::OnAppRemoved(size_t index) {
  const ptrdiff_t i = static_cast<ptrdiff_t>(index);
  classes_.erase(classes_.begin() + i);
  pressure_.erase(pressure_.begin() + i);
  traffic_ratios_.erase(traffic_ratios_.begin() + i);
}

PartitionDecision LfocPolicy::StartExploration(const ResourcePool& pool,
                                               size_t num_apps) {
  CHECK_EQ(num_apps, classes_.size());
  num_sensitive_clusters_ = 1;
  resize_cooldown_remaining_ = 0;
  return FairShare(pool, num_apps);
}

PartitionDecision LfocPolicy::FairShare(const ResourcePool& pool,
                                        size_t num_apps) const {
  // One shared slot spanning the whole pool: no isolation, but also no way
  // a broken substrate or a transient class flap can starve anyone.
  SystemState state(pool, {AppAllocation{
                              .llc_ways = pool.num_ways,
                              .mba_level = MbaLevel::FromPercentChecked(
                                  pool.max_mba_percent)}});
  PartitionDecision decision;
  decision.state = std::move(state);
  decision.app_slot.assign(num_apps, 0u);
  return decision;
}

void LfocPolicy::Classify(const std::vector<PolicySignals>& signals) {
  CHECK_EQ(signals.size(), classes_.size());
  for (size_t i = 0; i < signals.size(); ++i) {
    const PolicySignals& s = signals[i];
    if (s.quarantined) {
      // Untrusted counters: keep the class, report no pressure.
      pressure_[i] = 0.0;
      continue;
    }
    if (!s.healthy) {
      continue;  // Sticky: last trusted class and pressure stand.
    }
    if (s.llc_access_rate < params_.classifier.llc_access_rate_floor) {
      classes_[i] = AppClass::kLight;
    } else if (s.llc_miss_ratio >= params_.classifier.llc_miss_ratio_high &&
               s.traffic_ratio >= params_.classifier.traffic_ratio_high) {
      classes_[i] = AppClass::kStreaming;
    } else {
      classes_[i] = AppClass::kSensitive;
    }
    traffic_ratios_[i] = s.traffic_ratio;
    // Miss pressure: how much miss traffic the app generates under its
    // current allocation. The online gradient the clustering follows.
    pressure_[i] = std::max(0.0, s.llc_access_rate * s.llc_miss_ratio);
  }
}

PartitionDecision LfocPolicy::Allocate(
    const SystemState& current, const std::vector<PolicySignals>& signals,
    Rng& rng) {
  (void)signals;  // Consumed by Classify.
  (void)rng;      // Deterministic: LFOC never draws randomness.
  const ResourcePool& pool = current.pool();
  const size_t n = classes_.size();

  std::vector<size_t> lights, streams, sens;
  for (size_t i = 0; i < n; ++i) {
    switch (classes_[i]) {
      case AppClass::kLight:
        lights.push_back(i);
        break;
      case AppClass::kStreaming:
        streams.push_back(i);
        break;
      case AppClass::kSensitive:
        sens.push_back(i);
        break;
    }
  }

  // LFOC+ resizing: watch the miss-pressure spread inside the sensitive
  // class. A wide spread means one shared cluster is mixing starved apps
  // with satisfied ones.
  if (plus_ && !sens.empty()) {
    if (resize_cooldown_remaining_ > 0) {
      --resize_cooldown_remaining_;
    } else {
      double lo = std::numeric_limits<double>::infinity();
      double hi = 0.0;
      for (size_t i : sens) {
        lo = std::min(lo, pressure_[i]);
        hi = std::max(hi, pressure_[i]);
      }
      // lo == 0 with hi > 0 is maximal spread (a zero-pressure app shares
      // a cluster with a missing one): treat as split-worthy.
      const double spread = lo > 0.0 ? hi / lo - 1.0
                            : hi > 0.0
                                ? std::numeric_limits<double>::infinity()
                                : 0.0;
      if (spread > params_.lfoc.split_spread) {
        ++num_sensitive_clusters_;
        resize_cooldown_remaining_ = params_.lfoc.resize_cooldown_periods;
      } else if (spread < params_.lfoc.merge_spread &&
                 num_sensitive_clusters_ > 1) {
        --num_sensitive_clusters_;
        resize_cooldown_remaining_ = params_.lfoc.resize_cooldown_periods;
      }
    }
  }

  // Way budget. Pools too narrow for the class slots collapse to the single
  // shared slot — safe, and only reachable on tiny configurations.
  uint32_t light_ways =
      lights.empty() ? 0 : std::max(params_.lfoc.light_ways, 1u);
  uint32_t stream_ways =
      streams.empty() ? 0 : std::max(params_.lfoc.streaming_ways, 1u);
  const uint32_t sens_reserve = sens.empty() ? 0 : 1;
  const uint32_t side_slots =
      (lights.empty() ? 0u : 1u) + (streams.empty() ? 0u : 1u);
  const uint32_t slot_budget = std::max(
      1u, std::min(params_.max_clos > 0 ? params_.max_clos - 1 : 1u,
                   pool.num_ways));
  if (light_ways + stream_ways + sens_reserve > pool.num_ways ||
      side_slots + sens_reserve > slot_budget) {
    PartitionDecision fallback = FairShare(pool, n);
    fallback.llc_classes.assign(n, ResourceClass::kMaintain);
    fallback.mba_classes.assign(n, ResourceClass::kMaintain);
    return fallback;
  }
  uint32_t rest_ways = pool.num_ways - light_ways - stream_ways;

  // CLOS budget: one slot per cluster, all within max_clos minus the
  // default group. The conformance suite pins that the decision never uses
  // more slots than this.
  uint32_t k = 0;
  if (!sens.empty()) {
    const uint32_t sens_budget =
        slot_budget > side_slots ? slot_budget - side_slots : 1u;
    k = std::min({static_cast<uint32_t>(num_sensitive_clusters_),
                  static_cast<uint32_t>(sens.size()), rest_ways, sens_budget});
    k = std::max(k, 1u);
  } else if (!lights.empty()) {
    light_ways += rest_ways;  // Nobody sensitive: hand the bulk to lights.
    rest_ways = 0;
  } else {
    stream_ways += rest_ways;
    rest_ways = 0;
  }
  num_sensitive_clusters_ = std::max(k, 1u);

  // Sort sensitive apps highest-pressure first (index ascending on ties)
  // and cut the order into k contiguous clusters of near-equal population;
  // cluster 0 holds the most-starved apps.
  std::vector<size_t> order = sens;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (pressure_[a] != pressure_[b]) {
      return pressure_[a] > pressure_[b];
    }
    return a < b;
  });
  std::vector<std::vector<size_t>> clusters(k);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    clusters[pos * k / order.size()].push_back(order[pos]);
  }

  // Ways per sensitive cluster: one each, then the remainder proportional
  // to the cluster's miss-pressure mass (largest remainder, ties to the
  // lower cluster index — the more-starved one).
  std::vector<uint32_t> cluster_ways(k, 0);
  if (k > 0) {
    for (uint32_t c = 0; c < k; ++c) {
      cluster_ways[c] = 1;
    }
    uint32_t spare = rest_ways - k;
    std::vector<double> weight(k, 0.0);
    double total_weight = 0.0;
    for (uint32_t c = 0; c < k; ++c) {
      for (size_t i : clusters[c]) {
        weight[c] += pressure_[i];
      }
      total_weight += weight[c];
    }
    if (total_weight <= 0.0) {
      total_weight = static_cast<double>(k);
      weight.assign(k, 1.0);
    }
    std::vector<double> fraction(k, 0.0);
    uint32_t given = 0;
    for (uint32_t c = 0; c < k; ++c) {
      const double share = spare * weight[c] / total_weight;
      const uint32_t base = static_cast<uint32_t>(share);
      cluster_ways[c] += base;
      given += base;
      fraction[c] = share - base;
    }
    std::vector<uint32_t> by_fraction(k);
    std::iota(by_fraction.begin(), by_fraction.end(), 0u);
    std::stable_sort(by_fraction.begin(), by_fraction.end(),
                     [&](uint32_t a, uint32_t b) {
                       if (fraction[a] != fraction[b]) {
                         return fraction[a] > fraction[b];
                       }
                       return a < b;
                     });
    for (uint32_t r = 0; given < spare; ++r) {
      ++cluster_ways[by_fraction[r % k]];
      ++given;
    }
  }

  // Slot layout: sensitive clusters first, then the light slot, then the
  // streaming slot. WayMaskBits packs slots left to right in this order.
  const MbaLevel pool_mba = MbaLevel::FromPercentChecked(pool.max_mba_percent);
  const uint32_t stream_mba_percent = std::max(
      MbaLevel::kMin,
      std::min(params_.lfoc.streaming_mba_percent / MbaLevel::kStep *
                   MbaLevel::kStep,
               pool.max_mba_percent));
  std::vector<AppAllocation> slots;
  PartitionDecision decision;
  decision.app_slot.assign(n, 0u);
  for (uint32_t c = 0; c < k; ++c) {
    for (size_t i : clusters[c]) {
      decision.app_slot[i] = static_cast<uint32_t>(slots.size());
    }
    slots.push_back(
        AppAllocation{.llc_ways = cluster_ways[c], .mba_level = pool_mba});
  }
  if (!lights.empty()) {
    for (size_t i : lights) {
      decision.app_slot[i] = static_cast<uint32_t>(slots.size());
    }
    slots.push_back(
        AppAllocation{.llc_ways = light_ways, .mba_level = pool_mba});
  }
  if (!streams.empty()) {
    for (size_t i : streams) {
      decision.app_slot[i] = static_cast<uint32_t>(slots.size());
    }
    slots.push_back(AppAllocation{
        .llc_ways = stream_ways,
        .mba_level = MbaLevel::FromPercentChecked(stream_mba_percent)});
  }
  decision.state = SystemState(pool, std::move(slots));

  // Telemetry classes: sensitive apps demand cache; streaming apps demand
  // bandwidth but supply cache; light apps supply both.
  decision.llc_classes.resize(n);
  decision.mba_classes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    decision.llc_classes[i] = classes_[i] == AppClass::kSensitive
                                  ? ResourceClass::kDemand
                                  : ResourceClass::kSupply;
    decision.mba_classes[i] = classes_[i] == AppClass::kStreaming
                                  ? ResourceClass::kDemand
                              : classes_[i] == AppClass::kLight
                                  ? ResourceClass::kSupply
                                  : ResourceClass::kMaintain;
  }
  return decision;
}

ResourceClass LfocPolicy::LlcClassOf(size_t app) const {
  return classes_[app] == AppClass::kSensitive ? ResourceClass::kDemand
                                               : ResourceClass::kSupply;
}

ResourceClass LfocPolicy::MbaClassOf(size_t app) const {
  switch (classes_[app]) {
    case AppClass::kStreaming:
      return ResourceClass::kDemand;
    case AppClass::kLight:
      return ResourceClass::kSupply;
    case AppClass::kSensitive:
      break;
  }
  return ResourceClass::kMaintain;
}

}  // namespace copart
