#include "core/classifiers.h"

namespace copart {

const char* ResourceClassName(ResourceClass state) {
  switch (state) {
    case ResourceClass::kSupply:
      return "Supply";
    case ResourceClass::kMaintain:
      return "Maintain";
    case ResourceClass::kDemand:
      return "Demand";
  }
  return "?";
}

LlcClassifierFsm::LlcClassifierFsm(const ClassifierParams& params,
                                   ResourceClass initial)
    : params_(params), state_(initial) {}

void LlcClassifierFsm::Reset(ResourceClass initial) { state_ = initial; }

ResourceClass LlcClassifierFsm::Update(const ClassifierInput& input) {
  const bool cache_useless =
      input.llc_access_rate < params_.llc_access_rate_floor ||
      input.llc_miss_ratio < params_.llc_miss_ratio_low;
  const bool miss_ratio_high =
      input.llc_miss_ratio > params_.llc_miss_ratio_high;
  const bool gained_way = input.last_event == ResourceEvent::kGainedLlcWay;
  const bool lost_way = input.last_event == ResourceEvent::kLostLlcWay;
  const bool improved = input.perf_delta >= params_.perf_delta;
  const bool degraded = input.perf_delta <= -params_.perf_delta;

  // Priority 1 — direct evidence beats rate heuristics: a measured
  // degradation right after losing a way means the way was needed,
  // whatever the counters suggest.
  if (lost_way && degraded) {
    state_ = ResourceClass::kDemand;
    return state_;
  }
  // Priority 2 — an app that barely touches the LLC (below alpha) or
  // barely misses (below beta) has no use for capacity: Supply.
  if (cache_useless) {
    state_ = ResourceClass::kSupply;
    return state_;
  }
  // Priority 3 — state-specific transitions.
  switch (state_) {
    case ResourceClass::kDemand:
      if (gained_way && !improved) {
        // An additional way bought little: the demand is satisfied.
        state_ = ResourceClass::kMaintain;
      }
      break;
    case ResourceClass::kMaintain:
      if (miss_ratio_high) {
        state_ = ResourceClass::kDemand;
      }
      break;
    case ResourceClass::kSupply:
      if (miss_ratio_high) {
        state_ = ResourceClass::kMaintain;
      }
      break;
  }
  return state_;
}

MbaClassifierFsm::MbaClassifierFsm(const ClassifierParams& params,
                                   ResourceClass initial)
    : params_(params), state_(initial) {}

void MbaClassifierFsm::Reset(ResourceClass initial) { state_ = initial; }

ResourceClass MbaClassifierFsm::Update(const ClassifierInput& input) {
  const bool traffic_low = input.traffic_ratio < params_.traffic_ratio_low;
  const bool traffic_high = input.traffic_ratio > params_.traffic_ratio_high;
  const bool gained_mba = input.last_event == ResourceEvent::kGainedMba;
  const bool lost_mba = input.last_event == ResourceEvent::kLostMba;
  const bool gained_llc = input.last_event == ResourceEvent::kGainedLlcWay;
  const bool improved = input.perf_delta >= params_.perf_delta;
  const bool degraded = input.perf_delta <= -params_.perf_delta;

  // Priority 1 — direct evidence: the throttle we just tightened hurt.
  if (lost_mba && degraded) {
    state_ = ResourceClass::kDemand;
    return state_;
  }
  // Priority 2 — negligible memory traffic relative to STREAM: Supply.
  if (traffic_low) {
    state_ = ResourceClass::kSupply;
    return state_;
  }
  // Priority 3 — state-specific transitions.
  switch (state_) {
    case ResourceClass::kDemand:
      if (gained_mba && !improved) {
        state_ = ResourceClass::kMaintain;
      } else if (gained_llc && !improved) {
        // Paper §5.3: a small gain from an LLC way says nothing about
        // bandwidth sensitivity — remain in Demand.
      }
      break;
    case ResourceClass::kMaintain:
      if (traffic_high) {
        state_ = ResourceClass::kDemand;
      }
      break;
    case ResourceClass::kSupply:
      if (traffic_high) {
        state_ = ResourceClass::kMaintain;
      }
      break;
  }
  return state_;
}

}  // namespace copart
