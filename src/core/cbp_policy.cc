#include "core/cbp_policy.h"

namespace copart {

CbpPolicy::CbpPolicy(const ResourceManagerParams& params)
    : LfocPolicy(params, /*plus=*/true) {}

void CbpPolicy::OnAppAdded() {
  LfocPolicy::OnAppAdded();
  throttled_.push_back(false);
}

void CbpPolicy::OnAppRemoved(size_t index) {
  LfocPolicy::OnAppRemoved(index);
  throttled_.erase(throttled_.begin() + static_cast<ptrdiff_t>(index));
}

PartitionDecision CbpPolicy::Allocate(
    const SystemState& current, const std::vector<PolicySignals>& signals,
    Rng& rng) {
  PartitionDecision decision = LfocPolicy::Allocate(current, signals, rng);
  decision.prefetch_percent.resize(throttled_.size());
  for (size_t i = 0; i < throttled_.size(); ++i) {
    if (!throttled_[i]) {
      if (classes_[i] == AppClass::kStreaming &&
          traffic_ratios_[i] >= params_.classifier.traffic_ratio_high) {
        throttled_[i] = true;
      }
    } else if (classes_[i] != AppClass::kStreaming ||
               traffic_ratios_[i] < params_.cbp.release_traffic_ratio) {
      throttled_[i] = false;
    }
    decision.prefetch_percent[i] =
        throttled_[i] ? params_.cbp.throttled_prefetch_percent : 100u;
  }
  return decision;
}

}  // namespace copart
