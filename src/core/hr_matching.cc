#include "core/hr_matching.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace copart {
namespace {

enum ResourceType : size_t { kLlc = 0, kMba = 1, kAny = 2, kNumTypes = 3 };

struct Consumer {
  size_t app = 0;
  double slowdown = 1.0;
  ResourceType demanded = kAny;          // What the app's FSMs demand.
  std::deque<ResourceType> preferences;  // Hospitals left to propose to.
};

// Removes and returns the index (into `members`) of the extreme-slowdown
// element; `lowest` selects min (victims / producers) vs. max.
template <typename GetSlowdown>
size_t ExtremeIndex(const std::vector<size_t>& members,
                    GetSlowdown get_slowdown, bool lowest) {
  CHECK(!members.empty());
  size_t best = 0;
  for (size_t i = 1; i < members.size(); ++i) {
    const double a = get_slowdown(members[i]);
    const double b = get_slowdown(members[best]);
    if (lowest ? a < b : a > b) {
      best = i;
    }
  }
  return best;
}

}  // namespace

MatchResult GetNextSystemState(const SystemState& state,
                               const std::vector<MatchAppInfo>& apps,
                               Rng& rng, bool enable_llc, bool enable_mba) {
  CHECK_EQ(apps.size(), state.NumApps());
  MatchResult result;
  result.next_state = state;
  SystemState& next = result.next_state;
  const size_t n = apps.size();

  // --- Bucket the producers (Algorithm 2, lines 2-5). ---
  // An app that can supply exactly one resource type lands in that bucket;
  // an app that can supply both is an ANY producer. Feasibility is part of
  // eligibility: an app at 1 way cannot give a way, an app at the MBA floor
  // cannot throttle further.
  std::vector<size_t> producers[kNumTypes];
  for (size_t i = 0; i < n; ++i) {
    const bool supplies_llc = enable_llc &&
                              apps[i].llc_class == ResourceClass::kSupply &&
                              state.allocation(i).llc_ways > 1;
    const bool supplies_mba = enable_mba &&
                              apps[i].mba_class == ResourceClass::kSupply &&
                              state.allocation(i).mba_level.CanDecrease();
    if (supplies_llc && supplies_mba) {
      producers[kAny].push_back(i);
    } else if (supplies_llc) {
      producers[kLlc].push_back(i);
    } else if (supplies_mba) {
      producers[kMba].push_back(i);
    }
  }

  // --- Build the consumers and their preference lists (lines 6-18). ---
  std::vector<Consumer> consumers;
  for (size_t i = 0; i < n; ++i) {
    const bool can_take_mba =
        state.allocation(i).mba_level.percent() + MbaLevel::kStep <=
        state.pool().max_mba_percent;
    const bool demands_llc =
        enable_llc && apps[i].llc_class == ResourceClass::kDemand;
    const bool demands_mba = enable_mba &&
                             apps[i].mba_class == ResourceClass::kDemand &&
                             can_take_mba;
    if (!demands_llc && !demands_mba) {
      continue;
    }
    Consumer consumer;
    consumer.app = i;
    consumer.slowdown = apps[i].slowdown;
    if (demands_llc && demands_mba) {
      consumer.demanded = kAny;
      // Randomized priority between the two specific types (paper: avoids
      // converging to a local optimum), then the ANY hospital.
      if (rng.NextBool(0.5)) {
        consumer.preferences = {kLlc, kMba, kAny};
      } else {
        consumer.preferences = {kMba, kLlc, kAny};
      }
    } else if (demands_llc) {
      consumer.demanded = kLlc;
      consumer.preferences = {kLlc, kAny};
    } else {
      consumer.demanded = kMba;
      consumer.preferences = {kMba, kAny};
    }
    consumers.push_back(std::move(consumer));
  }

  // --- Step 1: decide which consumers receive which resource type. ---
  // Proposal with displacement: an oversubscribed hospital rejects its
  // lowest-slowdown tentative resident, who then proposes further down its
  // own preference list (instability chaining).
  std::vector<size_t> accepted[kNumTypes];  // Indices into `consumers`.
  for (size_t c = 0; c < consumers.size(); ++c) {
    size_t current = c;
    while (true) {
      Consumer& consumer = consumers[current];
      if (consumer.preferences.empty()) {
        break;  // Exhausted all hospitals; stays unmatched this round.
      }
      const ResourceType t = consumer.preferences.front();
      consumer.preferences.pop_front();
      if (producers[t].empty()) {
        continue;  // Hospital with zero capacity: try the next preference.
      }
      accepted[t].push_back(current);
      if (accepted[t].size() > producers[t].size()) {
        const size_t victim_pos = ExtremeIndex(
            accepted[t],
            [&](size_t idx) { return consumers[idx].slowdown; },
            /*lowest=*/true);
        const size_t victim = accepted[t][victim_pos];
        accepted[t].erase(accepted[t].begin() +
                          static_cast<ptrdiff_t>(victim_pos));
        if (victim == current) {
          continue;  // Rejected immediately; keep walking our own list.
        }
        current = victim;  // Displaced consumer re-proposes.
        continue;
      }
      break;
    }
  }

  // --- Step 2: reclaim from producers, favoring low slowdowns (19-29). ---
  for (size_t t = 0; t < kNumTypes; ++t) {
    for (size_t consumer_idx : accepted[t]) {
      const Consumer& consumer = consumers[consumer_idx];
      bool take_llc;
      if (t != kAny) {
        take_llc = (t == kLlc);
      } else if (consumer.demanded != kAny) {
        take_llc = (consumer.demanded == kLlc);
      } else {
        take_llc = rng.NextBool(0.5);
      }
      // An ANY producer supplies both types, so any choice is feasible for
      // the producer; re-check the consumer side for MBA headroom (it can
      // have been consumed by an earlier transfer this round).
      if (!take_llc) {
        const AppAllocation& a = next.allocation(consumer.app);
        if (a.mba_level.percent() + MbaLevel::kStep >
            state.pool().max_mba_percent) {
          if (t == kAny || consumer.demanded == kAny) {
            take_llc = true;
          } else {
            continue;
          }
        }
      }
      CHECK(!producers[t].empty());
      const size_t producer_pos = ExtremeIndex(
          producers[t], [&](size_t app) { return apps[app].slowdown; },
          /*lowest=*/true);
      const size_t producer = producers[t][producer_pos];
      producers[t].erase(producers[t].begin() +
                         static_cast<ptrdiff_t>(producer_pos));

      if (take_llc) {
        AppAllocation& from = next.allocation(producer);
        AppAllocation& to = next.allocation(consumer.app);
        CHECK_GT(from.llc_ways, 1u);
        --from.llc_ways;
        ++to.llc_ways;
      } else {
        AppAllocation& from = next.allocation(producer);
        AppAllocation& to = next.allocation(consumer.app);
        CHECK(from.mba_level.CanDecrease());
        from.mba_level = from.mba_level.Decreased();
        to.mba_level = to.mba_level.Increased();
      }
      result.transfers.push_back(
          {.is_llc = take_llc, .producer = producer, .consumer = consumer.app});
    }
  }

  CHECK(next.Valid()) << "matcher produced invalid state " << next.ToString();
  return result;
}

}  // namespace copart
