// LFOC-style cache clustering as a PartitionPolicy.
//
// LFOC ("Lightweight Fairness-Oriented Cache clustering") classifies each
// app as *light* (too few LLC accesses to benefit from capacity),
// *streaming* (high miss ratio plus high memory traffic: thrashes any
// capacity it gets), or *sensitive* (benefits from cache), then packs the
// classes into SHARED CLOSes: one light cluster on a sliver of ways, one
// MBA-throttled streaming cluster, and the sensitive apps across one or
// more clusters holding the bulk of the pool. Because apps share CLOSes,
// the policy scales to many more apps than the hardware CLOS count — the
// regime where per-app CoPart stops admitting (one CLOS and one way per
// app).
//
// The LFOC+ refinement ("lfoc+") resizes the sensitive-cluster count
// online: when the max/min miss-pressure spread inside the sensitive class
// exceeds LfocParams::split_spread, another cluster is opened so the
// most-starved apps get isolated capacity; when the spread collapses below
// merge_spread, clusters merge back to free CLOSes. Plain "lfoc" keeps a
// single sensitive cluster.
//
// No profiling probes and no RNG: the clustering signal is each app's
// *miss pressure* — LLC accesses/sec x miss ratio, i.e. the miss traffic it
// generates under its current allocation. Unlike a peak-IPS slowdown proxy
// (which is flat when every observation happens under the same contended
// allocation), miss pressure separates a starved cache-sensitive app from a
// satisfied one using nothing but the online PMCs, so splitting and
// way-weighting have a real gradient to follow. Every clustering decision
// is a deterministic function of the signal history.
#ifndef COPART_CORE_LFOC_POLICY_H_
#define COPART_CORE_LFOC_POLICY_H_

#include <string>
#include <vector>

#include "core/partition_policy.h"

namespace copart {

class LfocPolicy : public PartitionPolicy {
 public:
  LfocPolicy(const ResourceManagerParams& params, bool plus);

  std::string name() const override { return plus_ ? "lfoc+" : "lfoc"; }
  bool per_app_groups() const override { return false; }
  bool needs_profiling() const override { return false; }
  bool restore_best_state() const override { return false; }

  void OnAppAdded() override;
  void OnAppRemoved(size_t index) override;

  PartitionDecision StartExploration(const ResourcePool& pool,
                                     size_t num_apps) override;
  PartitionDecision FairShare(const ResourcePool& pool,
                              size_t num_apps) const override;

  void Classify(const std::vector<PolicySignals>& signals) override;
  PartitionDecision Allocate(const SystemState& current,
                             const std::vector<PolicySignals>& signals,
                             Rng& rng) override;

  ResourceClass LlcClassOf(size_t app) const override;
  ResourceClass MbaClassOf(size_t app) const override;

 protected:
  enum class AppClass { kLight, kStreaming, kSensitive };

  ResourceManagerParams params_;
  bool plus_;
  // Per-app state, index-parallel with the driver's apps_. Classes are
  // sticky across unhealthy/quarantined periods.
  std::vector<AppClass> classes_;
  // Last healthy miss pressure: llc_access_rate x llc_miss_ratio.
  std::vector<double> pressure_;
  // Last healthy memory-traffic ratio (CbpPolicy's hysteresis input).
  std::vector<double> traffic_ratios_;
  // LFOC+ sensitive-cluster sizing.
  uint32_t num_sensitive_clusters_ = 1;
  int resize_cooldown_remaining_ = 0;
};

}  // namespace copart

#endif  // COPART_CORE_LFOC_POLICY_H_
