// CoPart's classification/allocation logic as a PartitionPolicy.
//
// This is the paper's controller (§5.2-§5.4) factored out of the driver:
// two classifier FSMs per app seeded from the profiling probes, the HR
// matcher for the allocation step, and Algorithm 1's theta-bounded random
// neighbor retry. One CLOS per app, profiling on, best-state restore on —
// byte-identical to the pre-refactor ResourceManager (the golden experiment
// suites pin this).
#ifndef COPART_CORE_COPART_PARTITION_POLICY_H_
#define COPART_CORE_COPART_PARTITION_POLICY_H_

#include <string>
#include <vector>

#include "core/classifiers.h"
#include "core/hr_matching.h"
#include "core/partition_policy.h"

namespace copart {

class CoPartPartitionPolicy : public PartitionPolicy {
 public:
  explicit CoPartPartitionPolicy(const ResourceManagerParams& params);

  std::string name() const override { return "copart"; }
  bool per_app_groups() const override { return true; }
  bool needs_profiling() const override { return true; }
  bool restore_best_state() const override { return true; }

  void OnAppAdded() override;
  void OnAppRemoved(size_t index) override;

  void ObserveProbe(size_t app, ProbeKind kind,
                    const ProbeSignal& signal) override;
  void ObserveProbeSkipped(size_t app) override;

  PartitionDecision StartExploration(const ResourcePool& pool,
                                     size_t num_apps) override;
  PartitionDecision FairShare(const ResourcePool& pool,
                              size_t num_apps) const override;

  void Classify(const std::vector<PolicySignals>& signals) override;
  PartitionDecision Allocate(const SystemState& current,
                             const std::vector<PolicySignals>& signals,
                             Rng& rng) override;

  ResourceClass LlcClassOf(size_t app) const override;
  ResourceClass MbaClassOf(size_t app) const override;

 private:
  struct AppState {
    // Initial FSM states selected by the profiling probes (§5.4.1).
    ResourceClass llc_initial = ResourceClass::kMaintain;
    ResourceClass mba_initial = ResourceClass::kMaintain;
    LlcClassifierFsm llc_fsm;
    MbaClassifierFsm mba_fsm;
  };

  ResourceManagerParams params_;
  std::vector<AppState> apps_;
  // Matcher inputs assembled by Classify (consumed by Allocate same period).
  std::vector<MatchAppInfo> infos_;
  // Resource events of the last adopted transition; FSM inputs next period.
  std::vector<ResourceEvent> llc_events_;
  std::vector<ResourceEvent> mba_events_;
  int retry_count_ = 0;
};

}  // namespace copart

#endif  // COPART_CORE_COPART_PARTITION_POLICY_H_
