// Utility-based Cache Partitioning (UCP) baseline.
//
// An extension beyond the paper's four baselines: the classic
// miss-minimizing allocator of Qureshi & Patt [MICRO'06], which the paper
// cites as representative prior LLC-partitioning work [34]. UCP assigns
// ways greedily by marginal *utility* — the reduction in aggregate miss
// rate per extra way — and does not partition memory bandwidth (MBA stays
// at the pool ceiling). It optimizes throughput, not fairness, which is
// exactly the contrast the CoPart comparison needs:
// bench_ablation_policies shows UCP matching or beating the others on raw
// throughput while losing badly on unfairness for skewed mixes.
//
// On hardware UCP samples miss curves with shadow-tag UMON monitors; here
// the per-app miss-ratio curves come from the workload descriptors, i.e.
// this is an idealized (oracle-curve) UCP, like ST is an oracle search.
#ifndef COPART_CORE_UCP_POLICY_H_
#define COPART_CORE_UCP_POLICY_H_

#include <vector>

#include "core/policies.h"
#include "core/system_state.h"
#include "machine/app_id.h"
#include "resctrl/resctrl.h"

namespace copart {

// Computes the UCP way allocation for the given apps within `pool`:
// every app starts with one way; each remaining way goes to the app with
// the highest marginal miss-rate reduction (misses/sec at the nominal
// instruction rate). MBA levels are set to the pool ceiling.
SystemState ComputeUcpAllocation(const SimulatedMachine& machine,
                                 const std::vector<AppId>& apps,
                                 const ResourcePool& pool);

class UcpPolicy : public ConsolidationPolicy {
 public:
  UcpPolicy(Resctrl* resctrl, std::vector<AppId> apps, ResourcePool pool);

  std::string name() const override { return "UCP"; }
  void Start() override;
  void Tick() override {}

  const SystemState& allocation() const { return state_; }

 private:
  Resctrl* resctrl_;
  std::vector<AppId> apps_;
  ResourcePool pool_;
  SystemState state_;
};

}  // namespace copart

#endif  // COPART_CORE_UCP_POLICY_H_
