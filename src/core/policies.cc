#include "core/policies.h"

#include "common/logging.h"

namespace copart {

StaticStatePolicy::StaticStatePolicy(Resctrl* resctrl, std::vector<AppId> apps,
                                     SystemState state, std::string name)
    : resctrl_(resctrl),
      apps_(std::move(apps)),
      state_(std::move(state)),
      name_(std::move(name)) {
  CHECK_NE(resctrl, nullptr);
  CHECK_EQ(apps_.size(), state_.NumApps());
}

void StaticStatePolicy::Start() {
  CHECK(state_.Valid());
  groups_.clear();
  for (size_t i = 0; i < apps_.size(); ++i) {
    Result<ResctrlGroupId> group = resctrl_->CreateGroup(
        name_ + "_app_" + std::to_string(apps_[i].value()));
    CHECK(group.ok()) << group.status().ToString();
    groups_.push_back(*group);
    Status status = resctrl_->AssignApp(*group, apps_[i]);
    CHECK(status.ok()) << status.ToString();
    status = resctrl_->SetCacheMask(*group, state_.WayMaskBits(i));
    CHECK(status.ok()) << status.ToString();
    status = resctrl_->SetMbaPercent(*group,
                                     state_.allocation(i).mba_level.percent());
    CHECK(status.ok()) << status.ToString();
  }
}

void StaticStatePolicy::Tick() {
  const SimulatedMachine& machine = resctrl_->machine();
  for (size_t i = 0; i < apps_.size(); ++i) {
    // An app the machine no longer knows (terminated mid-run) has nothing
    // to verify.
    if (!machine.AppExists(apps_[i])) {
      continue;
    }
    const uint32_t clos = machine.AppClos(apps_[i]);
    const uint32_t group_clos = groups_[i].clos();
    const bool assignment_ok = clos == group_clos;
    const bool mask_ok =
        machine.ClosWayMask(group_clos).bits() == state_.WayMaskBits(i);
    const bool mba_ok = machine.ClosMbaLevel(group_clos) ==
                        state_.allocation(i).mba_level;
    if (assignment_ok && mask_ok && mba_ok) {
      continue;
    }
    ++drifts_detected_;
    // Best-effort re-apply: the same fault window that rolled the state
    // back may still be open, so a failed repair is retried next tick
    // rather than escalated.
    bool repaired = true;
    if (!assignment_ok) {
      repaired &= resctrl_->AssignApp(groups_[i], apps_[i]).ok();
    }
    if (!mask_ok) {
      repaired &=
          resctrl_->SetCacheMask(groups_[i], state_.WayMaskBits(i)).ok();
    }
    if (!mba_ok) {
      repaired &= resctrl_
                      ->SetMbaPercent(groups_[i],
                                      state_.allocation(i).mba_level.percent())
                      .ok();
    }
    if (repaired) {
      ++drifts_repaired_;
    }
  }
}

std::unique_ptr<ConsolidationPolicy> MakeEqualPolicy(
    Resctrl* resctrl, std::vector<AppId> apps, const ResourcePool& pool) {
  SystemState state = SystemState::EqualShareThrottled(pool, apps.size());
  return std::make_unique<StaticStatePolicy>(resctrl, std::move(apps),
                                             std::move(state), "EQ");
}

std::unique_ptr<ConsolidationPolicy> MakeStaticOraclePolicy(
    Resctrl* resctrl, std::vector<AppId> apps, SystemState best_state) {
  return std::make_unique<StaticStatePolicy>(resctrl, std::move(apps),
                                             std::move(best_state), "ST");
}

NoPartitionPolicy::NoPartitionPolicy(Resctrl* resctrl, std::vector<AppId> apps)
    : resctrl_(resctrl), apps_(std::move(apps)) {
  CHECK_NE(resctrl, nullptr);
}

void NoPartitionPolicy::Start() {
  // Leave every app in the default group: full mask, MBA 100 — exactly how
  // an unmanaged machine runs.
  for (AppId app : apps_) {
    Status status = resctrl_->AssignApp(resctrl_->DefaultGroup(), app);
    CHECK(status.ok()) << status.ToString();
  }
}

ManagedPartitionPolicy::ManagedPartitionPolicy(Resctrl* resctrl,
                                               PerfMonitor* monitor,
                                               std::vector<AppId> apps,
                                               const ResourcePool& pool,
                                               ResourceManagerParams params)
    : apps_(std::move(apps)),
      pool_(pool),
      policy_name_(params.partition_policy.empty() ? "copart"
                                                   : params.partition_policy) {
  manager_ = std::make_unique<ResourceManager>(resctrl, monitor, params);
}

std::string ManagedPartitionPolicy::name() const { return policy_name_; }

void ManagedPartitionPolicy::Start() {
  manager_->SetResourcePool(pool_);
  unmanaged_apps_ = 0;
  for (AppId app : apps_) {
    if (!manager_->AddApp(app).ok()) {
      // Rejected (way/CLOS budget exhausted): the app keeps running in the
      // default group, unpartitioned.
      ++unmanaged_apps_;
    }
  }
}

void ManagedPartitionPolicy::Tick() {
  if (manager_->NumApps() > 0) {
    manager_->Tick();
  }
}

CoPartPolicy::CoPartPolicy(Resctrl* resctrl, PerfMonitor* monitor,
                           std::vector<AppId> apps, const ResourcePool& pool,
                           ResourceManagerParams params, Mode mode)
    : apps_(std::move(apps)), pool_(pool), mode_(mode) {
  switch (mode_) {
    case Mode::kCoordinated:
      break;
    case Mode::kCatOnly:
      params.enable_mba_partitioning = false;
      break;
    case Mode::kMbaOnly:
      params.enable_llc_partitioning = false;
      break;
  }
  manager_ = std::make_unique<ResourceManager>(resctrl, monitor, params);
}

std::string CoPartPolicy::name() const {
  switch (mode_) {
    case Mode::kCoordinated:
      return "CoPart";
    case Mode::kCatOnly:
      return "CAT-only";
    case Mode::kMbaOnly:
      return "MBA-only";
  }
  return "?";
}

void CoPartPolicy::Start() {
  manager_->SetResourcePool(pool_);
  for (AppId app : apps_) {
    Status status = manager_->AddApp(app);
    CHECK(status.ok()) << status.ToString();
  }
}

void CoPartPolicy::Tick() { manager_->Tick(); }

}  // namespace copart
