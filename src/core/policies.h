// The resource allocation policies evaluated in the paper (§6.1):
//
//   EQ        — equal LLC ways and equal MBA share per app, static.
//   ST        — the best static state found by extensive offline search
//               (the state is computed by harness/static_oracle.h).
//   CAT-only  — dynamic LLC partitioning (CoPart machinery restricted to
//               LLC moves), equal static MBA.
//   MBA-only  — dynamic MBA partitioning, equal static LLC.
//   CoPart    — coordinated dynamic partitioning of both resources.
//   NoPart    — no partitioning at all (every app in a full-mask group at
//               MBA 100); the normalization baseline of Figs. 4-6.
//
// All policies actuate through resctrl only, and share a common driving
// convention: Start() once after the apps are launched, then Tick() after
// every control period.
#ifndef COPART_CORE_POLICIES_H_
#define COPART_CORE_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/resource_manager.h"
#include "core/system_state.h"
#include "machine/app_id.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"

namespace copart {

class ConsolidationPolicy {
 public:
  virtual ~ConsolidationPolicy() = default;

  virtual std::string name() const = 0;
  virtual void Start() = 0;
  virtual void Tick() = 0;
};

// Applies a fixed SystemState once; used for EQ and ST. Tick() re-verifies
// the actuated masks/levels/assignments against the machine and re-applies
// any that drifted (a resctrl fault can fail or roll back a write after
// Start() has returned — a static policy that never looks again would run
// the rest of the experiment on the wrong partitioning).
class StaticStatePolicy : public ConsolidationPolicy {
 public:
  StaticStatePolicy(Resctrl* resctrl, std::vector<AppId> apps,
                    SystemState state, std::string name);

  std::string name() const override { return name_; }
  void Start() override;
  void Tick() override;

  // Tick() readback mismatches seen / successfully repaired, cumulative.
  uint64_t drifts_detected() const { return drifts_detected_; }
  uint64_t drifts_repaired() const { return drifts_repaired_; }

 private:
  Resctrl* resctrl_;
  std::vector<AppId> apps_;
  std::vector<ResctrlGroupId> groups_;
  SystemState state_;
  std::string name_;
  uint64_t drifts_detected_ = 0;
  uint64_t drifts_repaired_ = 0;
};

// Builds the EQ baseline: equal ways, MBA level ~= pool_ceiling / num_apps.
std::unique_ptr<ConsolidationPolicy> MakeEqualPolicy(
    Resctrl* resctrl, std::vector<AppId> apps, const ResourcePool& pool);

// Builds the ST baseline from a precomputed offline-best state.
std::unique_ptr<ConsolidationPolicy> MakeStaticOraclePolicy(
    Resctrl* resctrl, std::vector<AppId> apps, SystemState best_state);

// No partitioning: all apps share the full LLC at MBA 100.
class NoPartitionPolicy : public ConsolidationPolicy {
 public:
  NoPartitionPolicy(Resctrl* resctrl, std::vector<AppId> apps);

  std::string name() const override { return "NoPart"; }
  void Start() override;
  void Tick() override {}

 private:
  Resctrl* resctrl_;
  std::vector<AppId> apps_;
};

// Drives a ResourceManager configured with a named partition policy
// (core/partition_policy.h registry: "copart", "lfoc", "lfoc+", "cbp").
// Unlike CoPartPolicy, AddApp failures are tolerated: per-app CoPart
// refuses apps beyond its way/CLOS budget, and this wrapper leaves those
// apps unmanaged in the default group (full mask, MBA 100) and counts
// them — exactly what a consolidation daemon at the CLOS wall would do.
// The A/B harness (harness/policy_ab.h) reports that count per cell.
class ManagedPartitionPolicy : public ConsolidationPolicy {
 public:
  ManagedPartitionPolicy(Resctrl* resctrl, PerfMonitor* monitor,
                         std::vector<AppId> apps, const ResourcePool& pool,
                         ResourceManagerParams params);

  std::string name() const override;
  void Start() override;
  void Tick() override;

  ResourceManager& manager() { return *manager_; }
  size_t unmanaged_apps() const { return unmanaged_apps_; }

 private:
  std::vector<AppId> apps_;
  ResourcePool pool_;
  std::string policy_name_;
  size_t unmanaged_apps_ = 0;
  std::unique_ptr<ResourceManager> manager_;
};

// CoPart and its single-resource ablations, wrapping ResourceManager.
class CoPartPolicy : public ConsolidationPolicy {
 public:
  enum class Mode { kCoordinated, kCatOnly, kMbaOnly };

  CoPartPolicy(Resctrl* resctrl, PerfMonitor* monitor,
               std::vector<AppId> apps, const ResourcePool& pool,
               ResourceManagerParams params, Mode mode = Mode::kCoordinated);

  std::string name() const override;
  void Start() override;
  void Tick() override;

  ResourceManager& manager() { return *manager_; }
  Mode mode() const { return mode_; }

 private:
  std::vector<AppId> apps_;
  ResourcePool pool_;
  Mode mode_;
  std::unique_ptr<ResourceManager> manager_;
};

}  // namespace copart

#endif  // COPART_CORE_POLICIES_H_
