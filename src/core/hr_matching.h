// The coordinated allocation step: CoPart's getNextSystemState
// (paper §5.4.2, Algorithm 2).
//
// The resource allocation problem is formulated as a Hospitals/Residents
// matching: resource types {LLC, MBA, ANY} act as hospitals whose capacity
// is the number of applications willing to supply that type; applications
// demanding resources are the residents. Hospitals prefer consumers with
// HIGHER slowdowns (fairness: feed the most-slowed apps first); when
// reclaiming, producers with LOWER slowdowns are drafted first. Consumers
// demanding one specific type prefer the matching hospital over ANY;
// consumers demanding both randomize which specific type they try first —
// the paper's randomness that keeps the search from converging to a local
// optimum. The matching is resolved with an instability-chaining-style
// displacement pass in O(N_A^2).
#ifndef COPART_CORE_HR_MATCHING_H_
#define COPART_CORE_HR_MATCHING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/classifiers.h"
#include "core/system_state.h"

namespace copart {

// Per-app matching inputs, index-aligned with the SystemState.
struct MatchAppInfo {
  double slowdown = 1.0;
  ResourceClass llc_class = ResourceClass::kMaintain;
  ResourceClass mba_class = ResourceClass::kMaintain;
};

// One resource transfer decided by the matcher (for logging/diagnostics and
// for deriving the per-app ResourceEvents fed back into the FSMs).
struct ResourceTransfer {
  bool is_llc = false;
  size_t producer = 0;
  size_t consumer = 0;
};

struct MatchResult {
  SystemState next_state;
  std::vector<ResourceTransfer> transfers;
};

// Computes the next system state from the current state and the per-app
// classifications. Gates: `enable_llc` / `enable_mba` restrict which
// resource types may move (used by the CAT-only / MBA-only baselines).
// The returned state is always Valid(); it equals `state` when no
// producer/consumer pair can be matched.
MatchResult GetNextSystemState(const SystemState& state,
                               const std::vector<MatchAppInfo>& apps,
                               Rng& rng, bool enable_llc = true,
                               bool enable_mba = true);

}  // namespace copart

#endif  // COPART_CORE_HR_MATCHING_H_
