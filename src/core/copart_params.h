// Design parameters of CoPart (paper §5.2, §5.3, §5.4, Fig. 11).
//
// The values are the ones the paper selected through design-space
// exploration; bench_fig11_param_sensitivity sweeps them.
#ifndef COPART_CORE_COPART_PARAMS_H_
#define COPART_CORE_COPART_PARAMS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "slo/slo_params.h"

namespace copart {

class SystemState;
struct MatchAppInfo;
struct MatchResult;
class Rng;

// Signature of the allocation step (Algorithm 2). Overridable so ablation
// studies can swap the HR matcher for alternatives (bench_ablation_matching).
using MatchFunction = std::function<MatchResult(
    const SystemState& state, const std::vector<MatchAppInfo>& apps, Rng& rng,
    bool enable_llc, bool enable_mba)>;

struct ClassifierParams {
  // alpha: LLC access-rate floor (accesses/s). Below it the app has no use
  // for cache capacity and supplies its ways.
  double llc_access_rate_floor = 1.5e6;
  // beta: "sufficiently low" LLC miss ratio -> the app supplies ways.
  double llc_miss_ratio_low = 0.01;
  // Beta (capital): high LLC miss ratio -> the app demands ways.
  double llc_miss_ratio_high = 0.03;
  // gamma: memory-traffic ratio (vs. STREAM) below which the app supplies
  // memory bandwidth.
  double traffic_ratio_low = 0.10;
  // Gamma (capital): traffic ratio above which the app demands bandwidth.
  double traffic_ratio_high = 0.30;
  // deltaP: relative performance change considered significant.
  double perf_delta = 0.05;
};

// Hardening knobs for the actuation path (retry/backoff, degraded mode,
// counter quarantine). Delays are measured in control periods, not seconds:
// the manager acts only at period boundaries, so that is its native clock.
struct ActuationParams {
  // R: consecutive failed actuation attempts (after per-attempt rollback)
  // before the manager gives up and enters the degraded phase.
  int max_consecutive_failures = 5;

  // Exponential backoff between actuation retries, in control periods.
  double backoff_initial_periods = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_periods = 8.0;
  double backoff_jitter = 0.25;

  // K: consecutive bad counter samples (dropped, stale, or saturated)
  // before an app is quarantined to the conservative class; consecutive
  // good samples required to release it.
  int quarantine_after_bad_samples = 3;
  int quarantine_release_good_samples = 3;

  // Consecutive successful fair-share applies in the degraded phase before
  // the manager declares the substrate healthy and restarts adaptation.
  int degraded_recovery_successes = 3;

  // Instruction-delta ceiling per sample; anything above is a saturated or
  // wrapped counter, never a real reading (16 cores * 2.1 GHz * 0.5 s is
  // ~1.7e10).
  double saturation_instructions = 1e12;
};

// SloParams (the SLO-aware serving mode, paper §6.3, DESIGN.md §9/§15)
// lives in slo/slo_params.h next to the pluggable governors; it is
// re-exported here as ResourceManagerParams::slo.

// Unfairness-trend backoff (an FCP-style OFF/ON/BACKOFF governor over the
// exploration loop; DESIGN.md §10.3). Partitioning does not help every
// consolidation — when the measured unfairness keeps RISING for
// max_increasing_intervals consecutive exploration periods, continuing to
// move ways and MBA levels is thrash, not control. The manager then
// restores the best state seen this exploration, parks on it for
// backoff_periods control periods (no re-adaptation triggers), and only
// then re-probes from profiling.
struct TrendBackoffParams {
  bool enabled = false;

  // Exploration periods observed before the trend detector arms; the first
  // samples after (re)profiling measure transient allocations.
  int warmup_periods = 3;

  // Relative growth that counts as "unfairness increased" (1.02 = +2%);
  // sub-threshold wobble never feeds the streak.
  double increase_factor = 1.02;

  // Consecutive increasing intervals that engage the backoff.
  int max_increasing_intervals = 2;

  // Control periods to hold the best state before re-probing. The chaos
  // property suite pins that a re-probe (or a degraded entry) always
  // happens within this window.
  int backoff_periods = 10;
};

// LFOC / LFOC+ clustering policy (core/lfoc_policy.h; arxiv 2402.07578 and
// its LFOC+ refinement 2402.07693). Apps are classified light / streaming /
// sensitive each period and packed into *shared* CLOSes — one light
// cluster, one streaming cluster, and one or more sensitive clusters — so
// the policy scales past the hardware CLOS limit that per-app CoPart hits.
struct LfocParams {
  // Ways pinned to the light cluster (apps that cannot use cache anyway)
  // and to the streaming cluster (apps that thrash it), when non-empty.
  uint32_t light_ways = 1;
  uint32_t streaming_ways = 1;

  // MBA ceiling for the streaming cluster: bandwidth hogs are throttled so
  // the sensitive clusters' misses see an uncongested controller.
  uint32_t streaming_mba_percent = 40;

  // LFOC+ cluster resizing (only with the "lfoc+" policy): when the
  // max-min slowdown spread inside the sensitive class exceeds
  // split_spread, one more sensitive cluster is opened (isolating the
  // most-slowed apps); when it falls below merge_spread, clusters merge
  // back. resize_cooldown_periods must elapse between resizes.
  double split_spread = 0.15;
  double merge_spread = 0.05;
  int resize_cooldown_periods = 4;
};

// CBP-style prefetch coordination (core/cbp_policy.h; arxiv 2102.11528):
// LFOC clustering plus a third actuator — streaming apps get their
// prefetcher throttled, trading their (speculatively inflated) bandwidth
// demand for a longer per-miss stall, which relieves the memory controller
// for everyone else. Hysteresis: the throttle engages at
// ClassifierParams::traffic_ratio_high and releases only once the app's
// traffic ratio falls below release_traffic_ratio.
struct CbpParams {
  uint32_t throttled_prefetch_percent = 40;
  double release_traffic_ratio = 0.15;
};

struct ResourceManagerParams {
  ClassifierParams classifier;

  // Which PartitionPolicy drives classification/allocation
  // (core/partition_policy.h): "copart" (default; the paper's per-app
  // controller), "lfoc", "lfoc+", or "cbp".
  std::string partition_policy = "copart";

  // CLOS budget the policy may use for its partition slots, on top of the
  // default group (CLOS 0). Clustered policies must respect it; per-app
  // CoPart is additionally bounded by one way per app.
  uint32_t max_clos = 16;

  // Clustering/prefetch rival policy knobs (unused by "copart").
  LfocParams lfoc;
  CbpParams cbp;

  // SLO-aware serving mode; disabled by default (pure batch fairness).
  SloParams slo;

  // Unfairness-trend backoff governor; disabled by default.
  TrendBackoffParams trend;

  // Control period between adaptation steps (Algorithm 1's sleep(period)).
  double control_period_sec = 0.5;

  // theta: neighbor-state retries before transitioning to the idle phase.
  int theta = 3;

  // Profiling probes (§5.4.1): l_P ways at 100% MBA, and all ways at M_P.
  uint32_t profile_ways = 2;
  uint32_t profile_mba_percent = 20;
  // Degradation threshold that sets the initial FSM state to Demand.
  double profile_degradation_threshold = 0.10;

  // Idle phase: relative IPS drift (vs. the value recorded when entering
  // idle) that re-triggers adaptation, e.g. when an outer server manager
  // resizes the pool (§5.4.3, §6.3).
  double idle_ips_drift_threshold = 0.20;

  // Feature gates used to express the paper's baselines: CAT-only freezes
  // MBA moves, MBA-only freezes LLC moves. CoPart enables both.
  bool enable_llc_partitioning = true;
  bool enable_mba_partitioning = true;

  // RNG seed for the randomized pieces (neighbor states, ANY tie-breaks).
  uint64_t seed = 0xC0'FA'27ULL;

  // Allocation step override; null selects the paper's HR matcher
  // (GetNextSystemState). Used only by ablation studies.
  MatchFunction matcher;

  // Retry/backoff/degraded-mode policy for the actuation path.
  ActuationParams actuation;
};

}  // namespace copart

#endif  // COPART_CORE_COPART_PARAMS_H_
