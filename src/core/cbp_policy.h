// CBP-style prefetch coordination on top of LFOC clustering.
//
// Hardware prefetchers speculatively inflate a streaming app's bandwidth
// demand; under consolidation that speculation steals memory controller
// slots from everyone else. CBP ("Coordinated Bandwidth Partitioning")
// adds the prefetch throttle as a third actuator next to CAT and MBA:
// apps classified streaming whose memory-traffic ratio exceeds the
// classifier's Gamma threshold get their prefetcher throttled to
// CbpParams::throttled_prefetch_percent — trading a longer per-miss stall
// for less speculative traffic — and are released only once their traffic
// ratio falls below CbpParams::release_traffic_ratio (hysteresis, so a
// ratio hovering at the threshold cannot flap the MSR every period).
// Cache clustering itself is inherited from LfocPolicy unchanged.
#ifndef COPART_CORE_CBP_POLICY_H_
#define COPART_CORE_CBP_POLICY_H_

#include <string>
#include <vector>

#include "core/lfoc_policy.h"

namespace copart {

class CbpPolicy : public LfocPolicy {
 public:
  explicit CbpPolicy(const ResourceManagerParams& params);

  std::string name() const override { return "cbp"; }

  void OnAppAdded() override;
  void OnAppRemoved(size_t index) override;

  PartitionDecision Allocate(const SystemState& current,
                             const std::vector<PolicySignals>& signals,
                             Rng& rng) override;

 private:
  std::vector<bool> throttled_;
};

}  // namespace copart

#endif  // COPART_CORE_CBP_POLICY_H_
