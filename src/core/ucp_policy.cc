#include "core/ucp_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace copart {

SystemState ComputeUcpAllocation(const SimulatedMachine& machine,
                                 const std::vector<AppId>& apps,
                                 const ResourcePool& pool) {
  CHECK(!apps.empty());
  CHECK_GE(pool.num_ways, apps.size());
  const size_t n = apps.size();
  const uint64_t way_bytes = machine.config().llc.WayBytes();

  // Nominal miss rate (misses/sec) of app i when owning w ways: the
  // stall-free instruction rate times MPI. Using the nominal rate keeps the
  // utility metric monotone and matches UCP's "misses saved" currency.
  auto miss_rate = [&](size_t i, uint32_t ways) {
    const WorkloadDescriptor& d = machine.Descriptor(apps[i]);
    const double nominal_ips =
        machine.AppCores(apps[i]) * machine.config().core_freq_hz /
        d.cpi_exec;
    const double miss_ratio =
        d.reuse_profile.MissRatio(way_bytes * ways, machine.config().mrc_mode);
    return nominal_ips * d.accesses_per_instr * miss_ratio;
  };

  std::vector<AppAllocation> allocations(n);
  const MbaLevel ceiling = MbaLevel::FromPercentChecked(
      pool.max_mba_percent / 10 * 10);
  for (AppAllocation& allocation : allocations) {
    allocation.llc_ways = 1;
    allocation.mba_level = ceiling;
  }
  uint32_t remaining = pool.num_ways - static_cast<uint32_t>(n);
  while (remaining > 0) {
    // Marginal utility of one more way for each app; ties go to the
    // earliest app (deterministic).
    size_t best = 0;
    double best_utility = -1.0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t ways = allocations[i].llc_ways;
      const double utility = miss_rate(i, ways) - miss_rate(i, ways + 1);
      if (utility > best_utility) {
        best_utility = utility;
        best = i;
      }
    }
    ++allocations[best].llc_ways;
    --remaining;
  }
  SystemState state(pool, std::move(allocations));
  CHECK(state.Valid());
  return state;
}

UcpPolicy::UcpPolicy(Resctrl* resctrl, std::vector<AppId> apps,
                     ResourcePool pool)
    : resctrl_(resctrl), apps_(std::move(apps)), pool_(pool) {
  CHECK_NE(resctrl, nullptr);
}

void UcpPolicy::Start() {
  state_ = ComputeUcpAllocation(resctrl_->machine(), apps_, pool_);
  for (size_t i = 0; i < apps_.size(); ++i) {
    Result<ResctrlGroupId> group = resctrl_->CreateGroup(
        "ucp_app_" + std::to_string(apps_[i].value()));
    CHECK(group.ok()) << group.status().ToString();
    Status status = resctrl_->AssignApp(*group, apps_[i]);
    CHECK(status.ok()) << status.ToString();
    status = resctrl_->SetCacheMask(*group, state_.WayMaskBits(i));
    CHECK(status.ok()) << status.ToString();
    status = resctrl_->SetMbaPercent(*group,
                                     state_.allocation(i).mba_level.percent());
    CHECK(status.ok()) << status.ToString();
  }
}

}  // namespace copart
