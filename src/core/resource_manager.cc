#include "core/resource_manager.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "membw/mba_throttle_model.h"

namespace copart {
namespace {

uint64_t ContiguousBits(uint32_t first, uint32_t count) {
  const uint64_t ones = count == 64 ? ~0ULL : ((1ULL << count) - 1ULL);
  return ones << first;
}

// Stream index of the backoff jitter Rng, forked off the manager's seed
// with the const Fork(stream) so the neighbor/matcher draw sequence of
// rng_ is untouched (golden experiment results depend on it).
constexpr uint64_t kBackoffStream = 0xBAC0FFULL;

}  // namespace

ResourceManager::ResourceManager(Resctrl* resctrl, PerfMonitor* monitor,
                                 const ResourceManagerParams& params)
    : resctrl_(resctrl),
      monitor_(monitor),
      params_(params),
      rng_(params.seed),
      backoff_(BackoffOptions{.initial = params.actuation.backoff_initial_periods,
                              .multiplier = params.actuation.backoff_multiplier,
                              .max = params.actuation.backoff_max_periods,
                              .jitter = params.actuation.backoff_jitter},
               rng_.Fork(kBackoffStream)) {
  CHECK_NE(resctrl, nullptr);
  CHECK_NE(monitor, nullptr);
  policy_ = MakePartitionPolicy(params_.partition_policy, params_);
  pool_ = ResourcePool{
      .first_way = 0,
      .num_ways = resctrl_->machine().config().llc.num_ways,
      .max_mba_percent = MbaLevel::kMax,
  };
  base_pool_ = pool_;
  last_seen_generation_ = resctrl_->machine().app_generation();
}

const char* ResourceManager::PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kProfiling:
      return "profiling";
    case Phase::kExploration:
      return "exploration";
    case Phase::kIdle:
      return "idle";
    case Phase::kDegraded:
      return "degraded";
  }
  return "?";
}

const char* ResourceManager::TrendStateName(TrendState state) {
  switch (state) {
    case TrendState::kOff:
      return "off";
    case TrendState::kOn:
      return "on";
    case TrendState::kBackoff:
      return "backoff";
  }
  return "?";
}

Status ResourceManager::AddApp(AppId app) {
  if (!resctrl_->machine().AppExists(app)) {
    return NotFoundError("no such app");
  }
  // An admission can race an unannounced death (a container crashing the
  // instant another launches). StartAdaptation below re-attaches every
  // managed app's monitor, so corpses must go first.
  ReapDeadApps();
  for (const ManagedApp& managed : apps_) {
    if (managed.id == app) {
      return AlreadyExistsError("app already managed");
    }
  }
  ResctrlGroupId app_group;
  if (policy_->per_app_groups()) {
    if (apps_.size() + 1 > pool_.num_ways) {
      // CAT needs at least one way per app; admission control, not a crash.
      return ResourceExhaustedError(
          "resource pool has fewer ways than managed apps");
    }
    Result<ResctrlGroupId> group =
        resctrl_->CreateGroup("copart_app_" + std::to_string(app.value()));
    if (!group.ok()) {
      return group.status();
    }
    Status assigned = resctrl_->AssignApp(*group, app);
    if (!assigned.ok()) {
      // Undo the half-finished admission; a failed removal leaves a zombie
      // group that the tick loop keeps retrying.
      Status removed = resctrl_->RemoveGroup(*group);
      if (!removed.ok()) {
        zombie_groups_.push_back(*group);
      }
      return assigned;
    }
    app_group = *group;
  } else {
    // Clustering policies share CLOSes, so admission is not bounded by the
    // way count. Park the newcomer in the default group; the next decision
    // binds it to its cluster slot.
    Status assigned = resctrl_->AssignApp(resctrl_->DefaultGroup(), app);
    if (!assigned.ok()) {
      return assigned;
    }
    app_group = resctrl_->DefaultGroup();
  }
  monitor_->Attach(app);

  apps_.push_back(ManagedApp{.id = app, .group = app_group});
  policy_->OnAppAdded();
  last_seen_generation_ = resctrl_->machine().app_generation();
  if (phase_ != Phase::kDegraded) {
    StartAdaptation();
  } else {
    // In the degraded phase the next fair-share apply covers the newcomer;
    // adaptation restarts only after the substrate recovers. Keep state_
    // sized to the live app set in the meantime.
    AdoptDecision(policy_->FairShare(pool_, apps_.size()));
  }
  return Status::Ok();
}

Status ResourceManager::RemoveApp(AppId app) {
  for (size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].id == app) {
      monitor_->Detach(app);
      if (policy_->per_app_groups()) {
        Status status = resctrl_->RemoveGroup(apps_[i].group);
        if (!status.ok()) {
          zombie_groups_.push_back(apps_[i].group);
        }
      } else if (resctrl_->machine().AppExists(app)) {
        // Shared cluster group: evict the app so a departed tenant never
        // lingers in a cluster's CLOS (best effort — a failed write leaves
        // it in the default-bound state the next decision would set anyway).
        (void)resctrl_->AssignApp(resctrl_->DefaultGroup(), app);
      }
      apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(i));
      policy_->OnAppRemoved(i);
      last_seen_generation_ = resctrl_->machine().app_generation();
      pending_plan_.reset();  // Plans index the old app set.
      if (apps_.empty()) {
        phase_ = Phase::kIdle;
      } else if (phase_ != Phase::kDegraded) {
        StartAdaptation();
      } else {
        AdoptDecision(policy_->FairShare(pool_, apps_.size()));
      }
      return Status::Ok();
    }
  }
  return NotFoundError("app not managed");
}

void ResourceManager::SetResourcePool(const ResourcePool& pool) {
  CHECK_GE(pool.num_ways, 1u);
  CHECK_LE(pool.first_way + pool.num_ways,
           resctrl_->machine().config().llc.num_ways);
  CHECK_GE(pool.max_mba_percent, MbaLevel::kMin);
  base_pool_ = pool;
  if (params_.slo.enabled && !lc_apps_.empty()) {
    if (phase_ == Phase::kDegraded) {
      // Keep the batch slice clear of the currently actuated LC slices;
      // the governor re-plans properly once the substrate recovers.
      const uint32_t lc_total = lc_total_ways();
      pool_ = ResourcePool{
          .first_way = pool.first_way + lc_total,
          .num_ways = pool.num_ways > lc_total ? pool.num_ways - lc_total : 1,
          .max_mba_percent = pool.max_mba_percent};
      return;
    }
    audit_trigger_ = "slo_pool_change";
    (void)EvaluateSlo(/*force=*/true);
    if (!apps_.empty() && phase_ != Phase::kDegraded) {
      StartAdaptation();
    }
    return;
  }
  pool_ = pool;
  if (!apps_.empty() && phase_ != Phase::kDegraded) {
    StartAdaptation();
  }
}

// --- SLO-aware serving mode ---

size_t ResourceManager::LcIndex(AppId id) const {
  for (size_t i = 0; i < lc_apps_.size(); ++i) {
    if (lc_apps_[i].id == id) {
      return i;
    }
  }
  LOG_FATAL << "app not latency-critical: " << id.value();
  __builtin_unreachable();
}

uint32_t ResourceManager::LcWays(AppId app) const {
  return lc_apps_[LcIndex(app)].ways;
}

double ResourceManager::LcPredictedP95Ms(AppId app) const {
  return lc_apps_[LcIndex(app)].predicted_p95_ms;
}

uint32_t ResourceManager::lc_total_ways() const {
  uint32_t total = 0;
  for (const LcManaged& lc : lc_apps_) {
    total += lc.ways;
  }
  return total;
}

void ResourceManager::SetLcOfferedLoad(AppId app, double rps) {
  lc_apps_[LcIndex(app)].offered_rps = std::max(rps, 0.0);
}

void ResourceManager::ReportLcOutcome(AppId app, double measured_p95_ms,
                                      bool stalled, size_t phase_index) {
  LcManaged& lc = lc_apps_[LcIndex(app)];
  SloOutcome outcome;
  // lc.offered_rps still holds the load the served period was planned
  // for: the harness reports before feeding the next period's load.
  outcome.offered_rps = lc.offered_rps;
  outcome.lc_ways = lc.ways;
  outcome.batch_mba_percent = pool_.max_mba_percent;
  outcome.measured_p95_ms = measured_p95_ms;
  outcome.stalled = stalled;
  outcome.phase_index = phase_index;
  lc.governor->ObserveOutcome(outcome);
  if (AuditLog* audit = ObsAudit(obs_)) {
    AuditRecord record;
    record.kind = AuditKind::kGovernorOutcome;
    record.epoch = ticks_;
    record.time_sec = resctrl_->machine().now();
    record.phase = PhaseName(phase_);
    record.trigger = "slo_outcome";
    record.app_id = static_cast<int32_t>(app.value());
    record.clos = static_cast<int32_t>(lc.group.clos());
    record.new_mask = lc.ways;
    record.new_mba = static_cast<int32_t>(pool_.max_mba_percent);
    record.detail = stalled ? "stalled"
                    : measured_p95_ms <= lc.governor->model().slo_p95_ms
                        ? "meets"
                        : "violation";
    audit->Append(record);
  }
}

Status ResourceManager::SetLatencyCriticalApp(AppId app,
                                              const LcAppModel& model) {
  if (!params_.slo.enabled) {
    return FailedPreconditionError("SLO mode disabled (params.slo.enabled)");
  }
  if (!resctrl_->machine().AppExists(app)) {
    return NotFoundError("no such app");
  }
  for (const LcManaged& lc : lc_apps_) {
    if (lc.id == app) {
      return AlreadyExistsError("app already latency-critical");
    }
  }
  for (const ManagedApp& managed : apps_) {
    if (managed.id == app) {
      return AlreadyExistsError("app is batch-managed");
    }
  }
  // Admission: every LC floor plus one way per batch app (at least one,
  // so batch admission stays possible) must fit in the base pool.
  const uint32_t floors = static_cast<uint32_t>(lc_apps_.size() + 1) *
                          params_.slo.lc_way_floor;
  const uint32_t batch_reserve =
      std::max<uint32_t>(static_cast<uint32_t>(apps_.size()), 1);
  if (floors + batch_reserve > base_pool_.num_ways) {
    return ResourceExhaustedError("resource pool too narrow for LC floors");
  }
  Result<ResctrlGroupId> group =
      resctrl_->CreateGroup("copart_lc_" + std::to_string(app.value()));
  if (!group.ok()) {
    return group.status();
  }
  Status assigned = resctrl_->AssignApp(*group, app);
  if (!assigned.ok()) {
    Status removed = resctrl_->RemoveGroup(*group);
    if (!removed.ok()) {
      zombie_groups_.push_back(*group);
    }
    return assigned;
  }
  lc_apps_.push_back(LcManaged{
      app, *group, MakeSloGovernor(params_.slo.governor, params_.slo, model)});
  lc_apps_.back().offered_rps = std::max(model.initial_offered_rps, 0.0);
  audit_trigger_ = "slo_admit";
  const bool pool_changed = EvaluateSlo(/*force=*/true);
  if (pool_changed && !apps_.empty() && phase_ != Phase::kDegraded) {
    StartAdaptation();
  }
  return Status::Ok();
}

bool ResourceManager::EvaluateSlo(bool force) {
  const ResourcePool old_pool = pool_;
  if (lc_apps_.empty()) {
    pool_ = base_pool_;
    return pool_.first_way != old_pool.first_way ||
           pool_.num_ways != old_pool.num_ways ||
           pool_.max_mba_percent != old_pool.max_mba_percent;
  }

  // Plan every LC slice, carving from the bottom of the base pool in
  // registration order. Later LC apps' floors and one way per batch app
  // stay reserved, so the batch pool can never be squeezed to nothing.
  const uint32_t batch_reserve =
      std::max<uint32_t>(static_cast<uint32_t>(apps_.size()), 1);
  std::vector<SloDecision> decisions(lc_apps_.size());
  std::vector<uint32_t> firsts(lc_apps_.size());
  uint32_t next_first = base_pool_.first_way;
  uint32_t remaining = base_pool_.num_ways;
  uint32_t batch_mba = base_pool_.max_mba_percent;
  bool resize_needed = force;
  bool any_unattainable = false;
  for (size_t i = 0; i < lc_apps_.size(); ++i) {
    uint32_t reserved = batch_reserve;
    for (size_t j = i + 1; j < lc_apps_.size(); ++j) {
      reserved += params_.slo.lc_way_floor;
    }
    const uint32_t max_ways = remaining > reserved ? remaining - reserved : 1;
    decisions[i] = lc_apps_[i].governor->Plan(
        lc_apps_[i].offered_rps, max_ways, lc_apps_[i].ways,
        base_pool_.max_mba_percent);
    firsts[i] = next_first;
    next_first += decisions[i].lc_ways;
    CHECK_GE(remaining, decisions[i].lc_ways);
    remaining -= decisions[i].lc_ways;
    batch_mba = std::min(batch_mba, decisions[i].batch_mba_percent);
    if (decisions[i].lc_ways != lc_apps_[i].ways ||
        firsts[i] != lc_apps_[i].first_way) {
      resize_needed = true;
    }
    any_unattainable = any_unattainable || !decisions[i].attainable;
  }
  CHECK_GE(remaining, 1u);
  batch_mba = std::max(batch_mba, MbaLevel::kMin);

  if (resize_needed) {
    ActuationPlan plan;
    plan.entries.reserve(lc_apps_.size());
    for (size_t i = 0; i < lc_apps_.size(); ++i) {
      plan.entries.push_back(ActuationPlan::Entry{
          .group = lc_apps_[i].group,
          .mask_bits = ContiguousBits(firsts[i], decisions[i].lc_ways),
          .mba_percent = MbaLevel::kMax,
          .app_index = -1,
          .app_id = static_cast<int32_t>(lc_apps_[i].id.value())});
    }
    if (!Actuate(plan)) {
      // The retry machinery (or degraded mode) owns the plan now; keep the
      // old bookkeeping so the governor re-plans from reality next tick.
      return false;
    }
    ++slo_resizes_;
  }
  for (size_t i = 0; i < lc_apps_.size(); ++i) {
    LcManaged& lc = lc_apps_[i];
    if (lc.attainable != decisions[i].attainable) {
      const char* saved_trigger = audit_trigger_;
      audit_trigger_ = "slo_governor";
      EmitPhaseAudit(decisions[i].attainable ? "slo_attainable"
                                             : "slo_unattainable");
      audit_trigger_ = saved_trigger;
    }
    if (resize_needed) {
      lc.ways = decisions[i].lc_ways;
      lc.first_way = firsts[i];
    }
    lc.predicted_p95_ms = decisions[i].predicted_p95_ms;
    lc.attainable = decisions[i].attainable;
  }
  if (any_unattainable) {
    ++slo_unattainable_ticks_;
  }

  pool_ = ResourcePool{.first_way = next_first,
                       .num_ways = remaining,
                       .max_mba_percent = batch_mba};
  return pool_.first_way != old_pool.first_way ||
         pool_.num_ways != old_pool.num_ways ||
         pool_.max_mba_percent != old_pool.max_mba_percent;
}

void ResourceManager::EvaluateSloTick() {
  audit_trigger_ = "slo_resize";
  const bool pool_changed = EvaluateSlo(/*force=*/false);
  if (pool_changed && !apps_.empty() && phase_ != Phase::kDegraded) {
    StartAdaptation();
  }
}

void ResourceManager::ReapDeadLcApps() {
  bool removed = false;
  for (size_t i = lc_apps_.size(); i-- > 0;) {
    if (!resctrl_->machine().AppExists(lc_apps_[i].id)) {
      Status status = resctrl_->RemoveGroup(lc_apps_[i].group);
      if (!status.ok()) {
        zombie_groups_.push_back(lc_apps_[i].group);
      }
      lc_apps_.erase(lc_apps_.begin() + static_cast<ptrdiff_t>(i));
      removed = true;
    }
  }
  if (removed && phase_ != Phase::kDegraded && !pending_plan_.has_value()) {
    audit_trigger_ = "slo_reap";
    const bool pool_changed = EvaluateSlo(/*force=*/true);
    if (pool_changed && !apps_.empty()) {
      StartAdaptation();
    }
  }
}

size_t ResourceManager::AppIndex(AppId id) const {
  for (size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].id == id) {
      return i;
    }
  }
  LOG_FATAL << "app not managed: " << id.value();
  __builtin_unreachable();
}

double ResourceManager::SlowdownEstimate(AppId app) const {
  const ManagedApp& managed = apps_[AppIndex(app)];
  if (managed.ips_full <= 0.0 || managed.prev_ips <= 0.0) {
    return 1.0;
  }
  return std::max(1.0, managed.ips_full / managed.prev_ips);
}

bool ResourceManager::Quarantined(AppId app) const {
  return apps_[AppIndex(app)].quarantined;
}

ResourceClass ResourceManager::LlcClass(AppId app) const {
  return policy_->LlcClassOf(AppIndex(app));
}

ResourceClass ResourceManager::MbaClass(AppId app) const {
  return policy_->MbaClassOf(AppIndex(app));
}

// --- Unfairness-trend governor ---

void ResourceManager::ResetTrend() {
  trend_state_ = TrendState::kOff;
  trend_warmup_remaining_ = params_.trend.warmup_periods;
  trend_increase_streak_ = 0;
  trend_backoff_remaining_ = 0;
  trend_prev_unfairness_ = 0.0;
}

bool ResourceManager::ObserveUnfairnessTrend(double unfairness) {
  if (!params_.trend.enabled) {
    return false;
  }
  switch (trend_state_) {
    case TrendState::kOff:
      if (--trend_warmup_remaining_ <= 0) {
        trend_state_ = TrendState::kOn;
        trend_prev_unfairness_ = unfairness;
        trend_increase_streak_ = 0;
      }
      return false;
    case TrendState::kOn: {
      const bool increased =
          unfairness >
          trend_prev_unfairness_ * params_.trend.increase_factor;
      trend_increase_streak_ = increased ? trend_increase_streak_ + 1 : 0;
      trend_prev_unfairness_ = unfairness;
      return trend_increase_streak_ >= params_.trend.max_increasing_intervals;
    }
    case TrendState::kBackoff:
      // Exploration never runs while parked; nothing to observe.
      return false;
  }
  return false;
}

double ResourceManager::StreamMissRateReference(MbaLevel level) const {
  const MachineConfig& config = resctrl_->machine().config();
  const MbaThrottleModel throttle(config.mba_cap_exponent);
  return throttle.CapFraction(level) * config.total_memory_bandwidth /
         config.llc.line_bytes;
}

// --- Transactional actuation ---

ResourceManager::ActuationPlan ResourceManager::PlanForState(
    const SystemState& state) const {
  CHECK(state.Valid());
  CHECK_EQ(state.NumApps(), apps_.size());
  ActuationPlan plan;
  plan.entries.reserve(apps_.size());
  for (size_t i = 0; i < apps_.size(); ++i) {
    plan.entries.push_back(ActuationPlan::Entry{
        .group = apps_[i].group,
        .mask_bits = state.WayMaskBits(i),
        .mba_percent = state.allocation(i).mba_level.percent(),
        .app_index = static_cast<int32_t>(i),
        .app_id = static_cast<int32_t>(apps_[i].id.value())});
  }
  return plan;
}

void ResourceManager::AdoptDecision(const PartitionDecision& decision) {
  state_ = decision.state;
  app_slot_ = decision.app_slot;
}

Status ResourceManager::EnsureSlotGroups(size_t count) {
  while (slot_groups_.size() < count) {
    Result<ResctrlGroupId> group = resctrl_->CreateGroup(
        "copart_cluster_" + std::to_string(slot_groups_.size()));
    if (!group.ok()) {
      return group.status();
    }
    slot_groups_.push_back(*group);
  }
  return Status::Ok();
}

ResourceManager::ActuationPlan ResourceManager::PlanForDecision(
    const PartitionDecision& decision) const {
  ActuationPlan plan;
  if (policy_->per_app_groups()) {
    plan = PlanForState(decision.state);
  } else {
    CHECK(decision.state.Valid());
    CHECK_EQ(decision.app_slot.size(), apps_.size());
    CHECK_LE(decision.state.NumApps(), slot_groups_.size());
    plan.entries.reserve(decision.state.NumApps());
    for (size_t k = 0; k < decision.state.NumApps(); ++k) {
      plan.entries.push_back(ActuationPlan::Entry{
          .group = slot_groups_[k],
          .mask_bits = decision.state.WayMaskBits(k),
          .mba_percent = decision.state.allocation(k).mba_level.percent(),
          .app_index = -1,
          .app_id = -1});
    }
    const SimulatedMachine& machine = resctrl_->machine();
    for (size_t i = 0; i < apps_.size(); ++i) {
      const ResctrlGroupId target = slot_groups_[decision.app_slot[i]];
      if (machine.AppClos(apps_[i].id) != target.clos()) {
        plan.assignments.push_back(ActuationPlan::Assignment{
            .group = target, .app = apps_[i].id, .app_index = i});
      }
    }
  }
  if (!decision.prefetch_percent.empty()) {
    CHECK_EQ(decision.prefetch_percent.size(), apps_.size());
    const SimulatedMachine& machine = resctrl_->machine();
    for (size_t i = 0; i < apps_.size(); ++i) {
      if (machine.AppPrefetchPercent(apps_[i].id) !=
          decision.prefetch_percent[i]) {
        plan.prefetch.push_back(ActuationPlan::PrefetchEntry{
            .app = apps_[i].id,
            .app_index = i,
            .percent = decision.prefetch_percent[i]});
      }
    }
  }
  return plan;
}

bool ResourceManager::ActuateDecision(const PartitionDecision& decision) {
  if (!policy_->per_app_groups()) {
    Status groups = EnsureSlotGroups(decision.state.NumApps());
    if (!groups.ok()) {
      // Group creation failed before any schemata write: count it as an
      // actuation failure (it gates the same degraded-mode policy) but
      // schedule no retry plan — the next decision re-attempts creation.
      ++actuation_attempts_;
      ++actuation_failures_;
      ++consecutive_actuation_failures_;
      if (consecutive_actuation_failures_ >=
          params_.actuation.max_consecutive_failures) {
        EnterDegraded();
      }
      return false;
    }
  }
  return Actuate(PlanForDecision(decision));
}

ResourceManager::ActuationPlan ResourceManager::PlanForProbe() const {
  // The probed app gets the probe allocation; every co-runner is squeezed
  // to minimal resources (one shared way at the top of the pool, MBA floor)
  // so the probe measures the profiled app itself rather than the
  // co-runners' cache pollution and bandwidth pressure: IPS_full is the
  // Eq. 1 slowdown reference and must approximate the full-resource rate.
  // The co-runners pay for one period per probe — the adaptation transient
  // visible in Fig. 15.
  const uint64_t full_bits = ContiguousBits(pool_.first_way, pool_.num_ways);
  const uint32_t max_mba = state_.pool().max_mba_percent;
  uint64_t mask_bits = full_bits;
  uint32_t mba_percent = max_mba;
  switch (probe_) {
    case Probe::kFull:
      break;  // All pool ways at the pool's MBA ceiling.
    case Probe::kFewWays:
      mask_bits = ContiguousBits(
          pool_.first_way, std::min(params_.profile_ways, pool_.num_ways));
      break;
    case Probe::kLowMba:
      mba_percent = params_.profile_mba_percent;
      break;
  }
  const uint64_t squeeze_bits =
      ContiguousBits(pool_.first_way + pool_.num_ways - 1, 1);
  ActuationPlan plan;
  plan.entries.reserve(apps_.size());
  for (size_t i = 0; i < apps_.size(); ++i) {
    if (i == profile_app_) {
      plan.entries.push_back(ActuationPlan::Entry{
          .group = apps_[i].group,
          .mask_bits = mask_bits,
          .mba_percent = mba_percent,
          .app_index = static_cast<int32_t>(i),
          .app_id = static_cast<int32_t>(apps_[i].id.value())});
    } else {
      plan.entries.push_back(ActuationPlan::Entry{
          .group = apps_[i].group,
          .mask_bits = squeeze_bits,
          .mba_percent = MbaLevel::kMin,
          .app_index = static_cast<int32_t>(i),
          .app_id = static_cast<int32_t>(apps_[i].id.value())});
    }
  }
  return plan;
}

Status ResourceManager::ApplyPlanTransactional(const ActuationPlan& plan) {
  const SimulatedMachine& machine = resctrl_->machine();
  // Snapshot, so a half-applied transaction can be unwound.
  struct Snapshot {
    uint64_t mask_bits = 0;
    uint32_t mba_percent = 100;
  };
  std::vector<Snapshot> before(plan.entries.size());
  for (size_t i = 0; i < plan.entries.size(); ++i) {
    const uint32_t clos = plan.entries[i].group.clos();
    before[i] = Snapshot{machine.ClosWayMask(clos).bits(),
                         machine.ClosMbaLevel(clos).percent()};
  }
  std::vector<uint32_t> before_clos(plan.assignments.size());
  for (size_t i = 0; i < plan.assignments.size(); ++i) {
    before_clos[i] = machine.AppClos(plan.assignments[i].app);
  }
  std::vector<uint32_t> before_prefetch(plan.prefetch.size());
  for (size_t i = 0; i < plan.prefetch.size(); ++i) {
    before_prefetch[i] = machine.AppPrefetchPercent(plan.prefetch[i].app);
  }

  Status failure = Status::Ok();
  size_t applied = 0;
  for (; applied < plan.entries.size(); ++applied) {
    const ActuationPlan::Entry& entry = plan.entries[applied];
    Status status = resctrl_->SetCacheMask(entry.group, entry.mask_bits);
    if (status.ok()) {
      status = resctrl_->SetMbaPercent(entry.group, entry.mba_percent);
    }
    if (!status.ok()) {
      failure = status;
      break;
    }
  }
  size_t assigned = 0;
  if (failure.ok()) {
    for (; assigned < plan.assignments.size(); ++assigned) {
      const ActuationPlan::Assignment& assignment = plan.assignments[assigned];
      Status status = resctrl_->AssignApp(assignment.group, assignment.app);
      if (!status.ok()) {
        failure = status;
        break;
      }
    }
  }
  size_t prefetched = 0;
  if (failure.ok()) {
    for (; prefetched < plan.prefetch.size(); ++prefetched) {
      const ActuationPlan::PrefetchEntry& entry = plan.prefetch[prefetched];
      Status status = resctrl_->SetAppPrefetch(entry.app, entry.percent);
      if (!status.ok()) {
        failure = status;
        break;
      }
    }
  }

  if (failure.ok()) {
    // Verify by readback: a write can report success without taking effect
    // (silent drop); only comparing the machine's actual registers against
    // the plan catches it. A mismatch anywhere rolls back every phase.
    for (const ActuationPlan::Entry& entry : plan.entries) {
      const uint32_t clos = entry.group.clos();
      if (machine.ClosWayMask(clos).bits() != entry.mask_bits ||
          machine.ClosMbaLevel(clos).percent() != entry.mba_percent) {
        failure = UnavailableError("verify-readback mismatch on CLOS " +
                                   std::to_string(clos));
        break;
      }
    }
    if (failure.ok()) {
      for (const ActuationPlan::Assignment& assignment : plan.assignments) {
        if (machine.AppClos(assignment.app) != assignment.group.clos()) {
          failure = UnavailableError(
              "verify-readback mismatch on app binding, CLOS " +
              std::to_string(assignment.group.clos()));
          break;
        }
      }
    }
    if (failure.ok()) {
      for (const ActuationPlan::PrefetchEntry& entry : plan.prefetch) {
        if (machine.AppPrefetchPercent(entry.app) != entry.percent) {
          failure = UnavailableError(
              "verify-readback mismatch on prefetch MSR, app " +
              std::to_string(entry.app.value()));
          break;
        }
      }
    }
    if (!failure.ok()) {
      applied = plan.entries.size();
      assigned = plan.assignments.size();
      prefetched = plan.prefetch.size();
    }
  }
  if (failure.ok()) {
    if (AuditLog* audit = ObsAudit(obs_)) {
      // One record per CLOS whose allocation actually changed. Each entry
      // carries its own audit identity: batch entries index apps_, LC
      // slice entries carry app_index -1 (plans are discarded whenever
      // the app set changes, so a valid index never goes stale).
      for (size_t i = 0; i < plan.entries.size(); ++i) {
        const ActuationPlan::Entry& entry = plan.entries[i];
        if (before[i].mask_bits == entry.mask_bits &&
            before[i].mba_percent == entry.mba_percent) {
          continue;
        }
        AuditRecord record;
        record.kind = AuditKind::kAllocation;
        record.epoch = ticks_;
        record.time_sec = machine.now();
        record.phase = PhaseName(phase_);
        record.trigger = audit_trigger_;
        record.app_index = entry.app_index;
        if (entry.app_id >= 0) {
          record.app_id = entry.app_id;
        }
        if (entry.app_index >= 0 &&
            static_cast<size_t>(entry.app_index) < apps_.size()) {
          record.llc_class = ResourceClassName(
              policy_->LlcClassOf(static_cast<size_t>(entry.app_index)));
          record.quarantined =
              apps_[static_cast<size_t>(entry.app_index)].quarantined;
        }
        record.clos = static_cast<int32_t>(entry.group.clos());
        record.old_mask = before[i].mask_bits;
        record.new_mask = entry.mask_bits;
        record.old_mba = static_cast<int32_t>(before[i].mba_percent);
        record.new_mba = static_cast<int32_t>(entry.mba_percent);
        record.degraded = phase_ == Phase::kDegraded;
        record.failure_streak = consecutive_actuation_failures_;
        audit->Append(record);
      }
    }
    return Status::Ok();
  }

  // Best-effort rollback of everything touched (the failing entry may have
  // applied its L3 line but not its MB line). Rollback writes can
  // themselves fail; the next retry re-snapshots whatever stuck, so a
  // partial rollback only widens the window, never corrupts state.
  ++rollbacks_;
  const size_t touched = std::min(applied + 1, plan.entries.size());
  for (size_t i = 0; i < touched; ++i) {
    const ActuationPlan::Entry& entry = plan.entries[i];
    (void)resctrl_->SetCacheMask(entry.group, before[i].mask_bits);
    (void)resctrl_->SetMbaPercent(entry.group, before[i].mba_percent);
  }
  const size_t touched_assignments =
      std::min(assigned + 1, plan.assignments.size());
  for (size_t i = 0; i < touched_assignments; ++i) {
    (void)resctrl_->AssignApp(ResctrlGroupId(before_clos[i]),
                              plan.assignments[i].app);
  }
  const size_t touched_prefetch =
      std::min(prefetched + 1, plan.prefetch.size());
  for (size_t i = 0; i < touched_prefetch; ++i) {
    (void)resctrl_->SetAppPrefetch(plan.prefetch[i].app, before_prefetch[i]);
  }
  if (AuditLog* audit = ObsAudit(obs_)) {
    AuditRecord record;
    record.kind = AuditKind::kActuationFailure;
    record.epoch = ticks_;
    record.time_sec = machine.now();
    record.phase = PhaseName(phase_);
    record.trigger = audit_trigger_;
    record.rollback = true;
    record.degraded = phase_ == Phase::kDegraded;
    // The streak *before* this failure is accounted (Actuate increments it
    // after the transaction returns).
    record.failure_streak = consecutive_actuation_failures_;
    record.detail = "transaction rolled back";
    audit->Append(record);
  }
  return failure;
}

int ResourceManager::DelayTicks(double periods) const {
  return std::max(1, static_cast<int>(std::lround(periods)));
}

bool ResourceManager::Actuate(const ActuationPlan& plan) {
  TraceTick::Span span(trace_tick_, "apply_schemata");
  span.set_cost(plan.entries.size());
  span.set_arg1("entries", static_cast<int64_t>(plan.entries.size()));
  ++actuation_attempts_;
  Status status = ApplyPlanTransactional(plan);
  span.set_arg2("ok", status.ok() ? 1 : 0);
  if (status.ok()) {
    consecutive_actuation_failures_ = 0;
    backoff_.Reset();
    pending_plan_.reset();
    backoff_ticks_remaining_ = 0;
    return true;
  }
  ++actuation_failures_;
  ++consecutive_actuation_failures_;
  if (consecutive_actuation_failures_ >=
      params_.actuation.max_consecutive_failures) {
    EnterDegraded();
    return false;
  }
  pending_plan_ = plan;
  backoff_ticks_remaining_ = DelayTicks(backoff_.NextDelay());
  return false;
}

bool ResourceManager::RetryPendingActuation() {
  if (!pending_plan_.has_value()) {
    return true;
  }
  if (backoff_ticks_remaining_ > 0) {
    --backoff_ticks_remaining_;
    return false;
  }
  const ActuationPlan plan = *pending_plan_;
  pending_plan_.reset();
  audit_trigger_ = "actuation_retry";
  if (Actuate(plan)) {
    // The periods spent waiting measured whatever allocation happened to be
    // on the machine, not the intended plan — restart the sampling windows
    // and resume the control loop next period.
    for (ManagedApp& app : apps_) {
      monitor_->Attach(app.id);
    }
  }
  return false;
}

void ResourceManager::RetryZombieGroups() {
  for (size_t i = zombie_groups_.size(); i-- > 0;) {
    Status status = resctrl_->RemoveGroup(zombie_groups_[i]);
    if (status.ok() || status.code() != StatusCode::kUnavailable) {
      // Removed, or permanently unremovable — either way stop retrying.
      zombie_groups_.erase(zombie_groups_.begin() +
                           static_cast<ptrdiff_t>(i));
    }
  }
}

// --- Counter health / quarantine ---

ResourceManager::SampleOutcome ResourceManager::SampleApp(ManagedApp& app) {
  SampleOutcome outcome;
  Result<PmcSample> sample = monitor_->TrySample(app.id);
  if (sample.ok()) {
    outcome.sample = *sample;
    // A live app always retires instructions over a period; a zero delta is
    // a stale counter, and an absurd one is saturation or wraparound.
    outcome.healthy = outcome.sample.interval_sec > 0.0 &&
                      outcome.sample.instructions > 0.0 &&
                      outcome.sample.instructions <
                          params_.actuation.saturation_instructions;
  }
  if (outcome.healthy) {
    app.bad_sample_streak = 0;
    ++app.good_sample_streak;
    if (app.quarantined && app.good_sample_streak >=
                               params_.actuation.quarantine_release_good_samples) {
      app.quarantined = false;
      EmitQuarantineAudit(app, /*engaged=*/false);
    }
  } else {
    app.good_sample_streak = 0;
    ++app.bad_sample_streak;
    if (!app.quarantined && app.bad_sample_streak >=
                                params_.actuation.quarantine_after_bad_samples) {
      app.quarantined = true;
      ++quarantines_;
      EmitQuarantineAudit(app, /*engaged=*/true);
    }
  }
  return outcome;
}

// --- Phases ---

void ResourceManager::StartAdaptation() {
  CHECK(!apps_.empty());
  if (policy_->per_app_groups()) {
    CHECK_GE(pool_.num_ways, apps_.size()) << "more apps than pool ways";
  }
  ++adaptations_started_;
  ResetTrend();
  pending_plan_.reset();
  backoff_ticks_remaining_ = 0;
  if (!policy_->needs_profiling()) {
    // Probe-free policies classify from the live signals; adaptation goes
    // straight to the exploration loop.
    EnterExploration();
    return;
  }
  phase_ = Phase::kProfiling;
  profile_app_ = 0;
  probe_ = Probe::kFull;
  AdoptDecision(policy_->FairShare(pool_, apps_.size()));
  audit_trigger_ = "adaptation_start";
  EmitPhaseAudit("enter_profiling");
  // May fail and schedule a retry (or enter the degraded phase); the tick
  // loop picks it up either way.
  (void)Actuate(PlanForProbe());
  // Restart the sampling windows so the first probe reads a clean period.
  for (ManagedApp& app : apps_) {
    monitor_->Attach(app.id);
    app.prev_ips = 0.0;
  }
}

void ResourceManager::TickProfiling() {
  audit_trigger_ = "profiling_probe";
  if (trace_tick_ != nullptr) {
    trace_tick_->Instant("profiling_probe", "app",
                         static_cast<int64_t>(profile_app_));
  }
  ManagedApp& app = apps_[profile_app_];
  bool advance = false;
  bool skip_app = false;
  if (app.quarantined) {
    skip_app = true;
  } else {
    const SampleOutcome outcome = SampleApp(app);
    if (app.quarantined) {
      // The K-th consecutive bad probe sample tipped the app into
      // quarantine: stop burning probe periods on it.
      skip_app = true;
    } else if (outcome.healthy) {
      const PmcSample& sample = outcome.sample;
      const double ips = sample.Ips();
      if (probe_ == Probe::kFull) {
        // The slowdown reference (Eq. 1 numerator) stays driver-side; it
        // feeds the online slowdown estimates, not just the policy.
        app.ips_full = std::max(ips, 1.0);
      }
      const MbaLevel probe_level =
          MbaLevel::FromPercentChecked(params_.profile_mba_percent);
      const ProbeSignal signal{
          .ips = ips,
          .ips_full = app.ips_full,
          .llc_access_rate = sample.LlcAccessesPerSec(),
          .llc_miss_ratio = sample.LlcMissRatio(),
          .llc_misses_per_sec = sample.LlcMissesPerSec(),
          .stream_miss_rate_ref = StreamMissRateReference(probe_level)};
      policy_->ObserveProbe(profile_app_, static_cast<ProbeKind>(probe_),
                            signal);
      advance = true;
    }
    // Unhealthy but below the quarantine threshold: repeat this probe.
  }

  if (skip_app) {
    // Quarantined: no trustworthy probes. Conservative defaults — no
    // slowdown reference (estimate 1.0), and the policy adopts its own
    // safe initial classification.
    app.ips_full = 0.0;
    policy_->ObserveProbeSkipped(profile_app_);
    probe_ = Probe::kLowMba;
    advance = true;
  }

  if (advance) {
    if (probe_ != Probe::kLowMba) {
      probe_ = static_cast<Probe>(static_cast<int>(probe_) + 1);
    } else {
      probe_ = Probe::kFull;
      ++profile_app_;
      if (profile_app_ >= apps_.size()) {
        EnterExploration();
        return;
      }
    }
  }
  if (Actuate(PlanForProbe())) {
    // Restart the profiled app's sampling window so the next read covers
    // exactly this probe period (and none of the time it spent squeezed
    // during the other apps' probes).
    monitor_->Attach(apps_[profile_app_].id);
  }
}

void ResourceManager::EnterExploration() {
  phase_ = Phase::kExploration;
  audit_trigger_ = "exploration_start";
  EmitPhaseAudit("enter_exploration");
  // The policy resets its exploration state (FSM initials, pending events)
  // and returns the opening decision — the fair share it explores from.
  const PartitionDecision start = policy_->StartExploration(pool_,
                                                            apps_.size());
  for (ManagedApp& app : apps_) {
    app.prev_ips = 0.0;
    monitor_->Attach(app.id);  // Fresh sampling window.
  }
  has_best_state_ = false;
  best_unfairness_ = 0.0;
  AdoptDecision(start);
  (void)ActuateDecision(start);
}

void ResourceManager::TickExploration() {
  const size_t n = apps_.size();

  // Phase 1: read every app's PMCs through the fallible path. Sampling is
  // per-app independent and draws no randomness, so hoisting it out of the
  // classification loop changes nothing observable.
  std::vector<SampleOutcome> outcomes(n);
  {
    TraceTick::Span span(trace_tick_, "pmc_sample");
    span.set_cost(n);
    span.set_arg1("apps", static_cast<int64_t>(n));
    for (size_t i = 0; i < n; ++i) {
      outcomes[i] = SampleApp(apps_[i]);
    }
  }

  // Assemble the per-app signal bundle the policy classifies from. Pure
  // arithmetic over the samples — no policy state is touched yet.
  std::vector<PolicySignals> signals(n);
  for (size_t i = 0; i < n; ++i) {
    ManagedApp& app = apps_[i];
    const SampleOutcome& outcome = outcomes[i];
    PolicySignals& s = signals[i];
    s.healthy = outcome.healthy;
    s.quarantined = app.quarantined;
    if (outcome.healthy) {
      const PmcSample& sample = outcome.sample;
      const double ips = sample.Ips();
      s.ips = ips;
      s.perf_delta =
          app.prev_ips > 0.0 ? (ips - app.prev_ips) / app.prev_ips : 0.0;
      s.llc_access_rate = sample.LlcAccessesPerSec();
      s.llc_miss_ratio = sample.LlcMissRatio();
      const MbaLevel level = state_.allocation(app_slot_[i]).mba_level;
      s.traffic_ratio =
          sample.LlcMissesPerSec() / StreamMissRateReference(level);
      app.prev_ips = ips;
    }
    // Unhealthy: keep prev_ips (and the policy keeps its classification)
    // from the last trusted period — garbage must not drive decisions.
    s.slowdown = app.quarantined
                     ? 1.0
                     : (app.ips_full > 0.0 && app.prev_ips > 0.0
                            ? std::max(1.0, app.ips_full / app.prev_ips)
                            : 1.0);
  }

  // Phase 2: the policy updates its per-app classification.
  {
    TraceTick::Span span(trace_tick_, "classify");
    span.set_cost(n);
    policy_->Classify(signals);
  }

  if (MetricsRegistry* metrics = ObsMetrics(obs_)) {
    static constexpr double kSlowdownEdges[] = {1.0, 1.1, 1.25, 1.5,
                                                2.0, 3.0, 5.0,  10.0};
    Histogram* slowdowns =
        metrics->GetHistogram("copart.manager.slowdown", kSlowdownEdges);
    for (size_t i = 0; i < n; ++i) {
      slowdowns->Observe(signals[i].slowdown);
    }
  }

  // These samples measured `state_` (applied at the end of the previous
  // tick); remember it if it is the fairest state seen this exploration.
  {
    std::vector<double> slowdowns(n);
    for (size_t i = 0; i < n; ++i) {
      slowdowns[i] = signals[i].slowdown;
    }
    const double mean = Mean(slowdowns);
    const double unfairness = mean > 0.0 ? StdDev(slowdowns) / mean : 0.0;
    if (!has_best_state_ || unfairness < best_unfairness_) {
      has_best_state_ = true;
      best_unfairness_ = unfairness;
      best_state_ = state_;
    }
    if (ObserveUnfairnessTrend(unfairness)) {
      // Partitioning is making things worse, not better: every further
      // move is thrash. Park on the best state seen and hold it for the
      // backoff window before re-probing.
      trend_state_ = TrendState::kBackoff;
      trend_backoff_remaining_ = params_.trend.backoff_periods;
      ++trend_backoffs_;
      audit_trigger_ = "trend_backoff";
      EmitPhaseAudit("backoff_engage");
      EnterIdle();
      return;
    }
  }

  // Phase 3: ask the policy for the next decision (for CoPart: the HR
  // matcher plus the random neighbor retry of Algorithm 1). The span's
  // duration is the virtual cost (one unit) — the *wall-clock* solve time
  // stays in exploration_time_stats_, outside the deterministic trace
  // surface.
  PartitionDecision decision;
  {
    TraceTick::Span span(trace_tick_, "solve");
    const auto start = std::chrono::steady_clock::now();
    decision = policy_->Allocate(state_, signals, rng_);
    const auto end = std::chrono::steady_clock::now();
    last_exploration_us_ =
        std::chrono::duration<double, std::micro>(end - start).count();
    exploration_time_stats_.Add(last_exploration_us_);
    span.set_arg1("retries", decision.retries);
    span.set_arg2("neighbor", decision.used_neighbor ? 1 : 0);
  }
  if (decision.converged) {
    EnterIdle();
    return;
  }

  AdoptDecision(decision);
  audit_trigger_ =
      decision.used_neighbor ? "exploration_neighbor" : "exploration_match";
  (void)ActuateDecision(decision);

  if (observer_) {
    ManagerTickRecord record;
    record.time = resctrl_->machine().now();
    record.phase = phase_;
    record.state = state_;
    record.exploration_us = last_exploration_us_;
    record.used_neighbor_state = decision.used_neighbor;
    record.consecutive_actuation_failures = consecutive_actuation_failures_;
    for (size_t i = 0; i < n; ++i) {
      record.slowdown_estimates.push_back(signals[i].slowdown);
      record.llc_classes.push_back(i < decision.llc_classes.size()
                                       ? decision.llc_classes[i]
                                       : policy_->LlcClassOf(i));
      record.mba_classes.push_back(i < decision.mba_classes.size()
                                       ? decision.mba_classes[i]
                                       : policy_->MbaClassOf(i));
      record.quarantined.push_back(apps_[i].quarantined);
    }
    observer_(record);
  }
}

void ResourceManager::EnterIdle() {
  phase_ = Phase::kIdle;
  audit_trigger_ = "idle_restore_best";
  EmitPhaseAudit("enter_idle");
  if (policy_->restore_best_state() && has_best_state_ &&
      !(best_state_ == state_)) {
    state_ = best_state_;
    (void)Actuate(PlanForState(state_));
    // The idle IPS baselines are re-read on the first idle tick; prev_ips
    // still reflects the pre-restore state, so clear the baselines to avoid
    // a spurious drift trigger.
    for (ManagedApp& app : apps_) {
      app.idle_baseline_ips = 0.0;
    }
    return;
  }
  for (ManagedApp& app : apps_) {
    app.idle_baseline_ips = app.prev_ips;
  }
}

void ResourceManager::TickIdle() {
  if (apps_.empty()) {
    return;
  }
  // Consolidation change? (New apps are handled synchronously by AddApp;
  // this catches terminations observed through the machine.)
  if (resctrl_->machine().app_generation() != last_seen_generation_) {
    last_seen_generation_ = resctrl_->machine().app_generation();
    StartAdaptation();
    return;
  }
  // Significant IPS drift, e.g. the outer manager squeezed the batch slice
  // or a co-runner changed behaviour.
  for (ManagedApp& app : apps_) {
    const SampleOutcome outcome = SampleApp(app);
    if (!outcome.healthy || app.quarantined) {
      // Untrusted reading: never let it move the drift baseline or trigger
      // a (pointless) re-adaptation.
      continue;
    }
    const double ips = outcome.sample.Ips();
    app.prev_ips = ips;
    if (app.idle_baseline_ips <= 0.0) {
      // First idle tick after a best-state restore: adopt this measurement
      // as the baseline instead of comparing against the pre-restore rate.
      app.idle_baseline_ips = ips;
    } else {
      const double drift =
          std::abs(ips - app.idle_baseline_ips) / app.idle_baseline_ips;
      if (drift > params_.idle_ips_drift_threshold) {
        StartAdaptation();
        return;
      }
    }
  }
}

void ResourceManager::EnterDegraded() {
  if (phase_ == Phase::kDegraded) {
    return;
  }
  phase_ = Phase::kDegraded;
  ++degraded_entries_;
  EmitTransitionRecord();  // Records the failure streak that tripped it.
  EmitPhaseAudit("degraded_enter");
  degraded_success_streak_ = 0;
  consecutive_actuation_failures_ = 0;
  pending_plan_.reset();
  backoff_ticks_remaining_ = 0;
  backoff_.Reset();
}

void ResourceManager::TickDegraded() {
  if (backoff_ticks_remaining_ > 0) {
    --backoff_ticks_remaining_;
    return;
  }
  // Keep trying to pin the static fair share — the safest partition when
  // neither actuation nor feedback can be trusted.
  const PartitionDecision fair = policy_->FairShare(pool_, apps_.size());
  audit_trigger_ = "degraded_fair_share";
  if (!policy_->per_app_groups()) {
    Status groups = EnsureSlotGroups(fair.state.NumApps());
    if (!groups.ok()) {
      ++actuation_attempts_;
      ++actuation_failures_;
      degraded_success_streak_ = 0;
      backoff_ticks_remaining_ = DelayTicks(backoff_.NextDelay());
      return;
    }
  }
  ++actuation_attempts_;
  Status status;
  {
    const ActuationPlan plan = PlanForDecision(fair);
    TraceTick::Span span(trace_tick_, "apply_schemata");
    span.set_cost(plan.entries.size());
    span.set_arg1("entries", static_cast<int64_t>(plan.entries.size()));
    status = ApplyPlanTransactional(plan);
    span.set_arg2("ok", status.ok() ? 1 : 0);
  }
  if (status.ok()) {
    AdoptDecision(fair);
    ++degraded_success_streak_;
    if (degraded_success_streak_ >=
        params_.actuation.degraded_recovery_successes) {
      ++degraded_recoveries_;
      backoff_.Reset();
      StartAdaptation();
      EmitTransitionRecord();  // Phase after recovery (profiling/degraded).
      EmitPhaseAudit("degraded_recovery");
    }
    return;
  }
  ++actuation_failures_;
  degraded_success_streak_ = 0;
  backoff_ticks_remaining_ = DelayTicks(backoff_.NextDelay());
}

void ResourceManager::EmitTransitionRecord() {
  if (!observer_) {
    return;
  }
  ManagerTickRecord record;
  record.time = resctrl_->machine().now();
  record.phase = phase_;
  record.state = state_;
  record.consecutive_actuation_failures = consecutive_actuation_failures_;
  for (const ManagedApp& app : apps_) {
    record.quarantined.push_back(app.quarantined);
  }
  observer_(record);
}

void ResourceManager::EmitPhaseAudit(const char* detail) {
  AuditLog* audit = ObsAudit(obs_);
  if (audit == nullptr) {
    return;
  }
  AuditRecord record;
  record.kind = AuditKind::kPhaseTransition;
  record.epoch = ticks_;
  record.time_sec = resctrl_->machine().now();
  record.phase = PhaseName(phase_);
  record.trigger = audit_trigger_;
  record.degraded = phase_ == Phase::kDegraded;
  record.failure_streak = consecutive_actuation_failures_;
  record.detail = detail;
  audit->Append(record);
}

void ResourceManager::EmitQuarantineAudit(const ManagedApp& app,
                                          bool engaged) {
  AuditLog* audit = ObsAudit(obs_);
  if (audit == nullptr) {
    return;
  }
  AuditRecord record;
  record.kind = AuditKind::kQuarantineChange;
  record.epoch = ticks_;
  record.time_sec = resctrl_->machine().now();
  record.phase = PhaseName(phase_);
  record.trigger = engaged ? "quarantine_engage" : "quarantine_release";
  record.app_index = static_cast<int32_t>(&app - apps_.data());
  record.app_id = static_cast<int32_t>(app.id.value());
  record.clos = static_cast<int32_t>(app.group.clos());
  record.quarantined = engaged;
  record.degraded = phase_ == Phase::kDegraded;
  record.detail = engaged ? "counters untrusted" : "counters recovered";
  audit->Append(record);
}

void ResourceManager::ExportMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) {
    return;
  }
  metrics->GetCounter("copart.manager.ticks")->Increment(ticks_);
  metrics->GetCounter("copart.manager.adaptations_started")
      ->Increment(adaptations_started_);
  metrics->GetCounter("copart.manager.actuation_attempts")
      ->Increment(actuation_attempts_);
  metrics->GetCounter("copart.manager.actuation_failures")
      ->Increment(actuation_failures_);
  metrics->GetCounter("copart.manager.rollbacks")->Increment(rollbacks_);
  metrics->GetCounter("copart.manager.degraded_entries")
      ->Increment(degraded_entries_);
  metrics->GetCounter("copart.manager.degraded_recoveries")
      ->Increment(degraded_recoveries_);
  metrics->GetCounter("copart.manager.quarantines")->Increment(quarantines_);
  metrics->GetCounter("copart.manager.apps")->Increment(apps_.size());
  metrics->GetCounter("copart.pmc.try_samples")
      ->Increment(monitor_->try_samples());
  metrics->GetCounter("copart.pmc.try_sample_failures")
      ->Increment(monitor_->try_sample_failures());
  metrics->GetCounter("copart.resctrl.schemata_writes")
      ->Increment(resctrl_->schemata_writes());
  metrics->GetCounter("copart.resctrl.schemata_write_failures")
      ->Increment(resctrl_->schemata_write_failures());
  // Wall-clock matcher cost (the paper's Fig. 16 overhead metric): real
  // host time, so excluded from the deterministic byte-compared surface.
  metrics->GetGauge("copart.manager.exploration_us_last",
                    /*deterministic=*/false)
      ->Set(last_exploration_us_);
  metrics->GetGauge("copart.manager.exploration_us_mean",
                    /*deterministic=*/false)
      ->Set(exploration_time_stats_.mean());
  metrics->GetCounter("copart.manager.exploration_solves")
      ->Increment(exploration_time_stats_.count());
  if (params_.trend.enabled) {
    metrics->GetCounter("copart.manager.trend_backoffs")
        ->Increment(trend_backoffs_);
    metrics->GetCounter("copart.manager.trend_reprobes")
        ->Increment(trend_reprobes_);
    metrics->GetGauge("copart.manager.trend_state")
        ->Set(static_cast<double>(trend_state_));
  }
  if (monitor_->sensing_params().enabled) {
    metrics->GetCounter("copart.pmc.sensed_samples")
        ->Increment(monitor_->sensed_samples());
    metrics->GetCounter("copart.pmc.estimator_fallbacks")
        ->Increment(monitor_->estimator_fallbacks());
    metrics->GetCounter("copart.pmc.stale_reports")
        ->Increment(monitor_->stale_reports());
  }
  if (params_.slo.enabled) {
    metrics->GetCounter("copart.manager.slo_resizes")->Increment(slo_resizes_);
    metrics->GetCounter("copart.manager.slo_unattainable_ticks")
        ->Increment(slo_unattainable_ticks_);
    metrics->GetGauge("copart.manager.lc_ways_total")
        ->Set(lc_total_ways());
    for (const LcManaged& lc : lc_apps_) {
      const std::string prefix =
          "copart.manager.lc." + std::to_string(lc.id.value());
      metrics->GetGauge(prefix + ".ways")->Set(lc.ways);
      // Unattainable predictions are +inf; dump as -1 to keep the metrics
      // JSON numeric.
      metrics->GetGauge(prefix + ".predicted_p95_ms")
          ->Set(std::isfinite(lc.predicted_p95_ms) ? lc.predicted_p95_ms
                                                   : -1.0);
    }
  }
}

void ResourceManager::Tick() {
  ++ticks_;
  // The virtual trace clock for this control period: simulated time in
  // microseconds as the base, a deterministic intra-tick cursor on top.
  // Stack-scoped; trace_tick_ exposes it to the phase methods.
  TraceTick trace_tick(
      ObsTracer(obs_),
      static_cast<uint64_t>(std::llround(resctrl_->machine().now() * 1e6)));
  trace_tick_ = trace_tick.active() ? &trace_tick : nullptr;
  TickImpl();
  trace_tick_ = nullptr;
  if (Tracer* tracer = ObsTracer(obs_)) {
    // Epoch boundary: move this period's events off the hot-path rings.
    tracer->DrainRings();
  }
}

void ResourceManager::TickImpl() {
  ReapDeadApps();
  ReapDeadLcApps();
  RetryZombieGroups();
  // SLO governor step: re-plan the LC slices for the offered load before
  // the batch phases run, so a grown slice and the resulting batch
  // re-adaptation land in the same period. Skipped while a pending plan
  // is backing off (Actuate would clobber its retry) and in the degraded
  // phase (the substrate can't hold an allocation anyway — the LC masks
  // keep their last actuated, floor-respecting values).
  if (params_.slo.enabled && !lc_apps_.empty() &&
      phase_ != Phase::kDegraded && !pending_plan_.has_value()) {
    EvaluateSloTick();
  }
  if (apps_.empty()) {
    return;
  }
  if (phase_ == Phase::kDegraded) {
    TickDegraded();
    return;
  }
  if (trend_state_ == TrendState::kBackoff) {
    // Parked on the best state: keep retrying any pending plan (the
    // best-state restore must land) but run no adaptation triggers, and
    // count the window down unconditionally so the re-probe bound is
    // exact. A retry that tips the manager into the degraded phase pauses
    // the countdown — degraded recovery restarts adaptation (and re-arms
    // the trend governor) itself.
    (void)RetryPendingActuation();
    if (phase_ == Phase::kDegraded) {
      return;
    }
    if (--trend_backoff_remaining_ <= 0) {
      ++trend_reprobes_;
      audit_trigger_ = "trend_backoff";
      EmitPhaseAudit("backoff_reprobe");
      StartAdaptation();
    }
    return;
  }
  if (!RetryPendingActuation()) {
    return;
  }
  switch (phase_) {
    case Phase::kProfiling:
      TickProfiling();
      break;
    case Phase::kExploration:
      TickExploration();
      break;
    case Phase::kIdle:
      TickIdle();
      break;
    case Phase::kDegraded:
      break;  // Handled above.
  }
}

void ResourceManager::ReapDeadApps() {
  // Apps can terminate without an explicit RemoveApp (a crashed container,
  // a batch job finishing). Sampling a dead app would fault, so reap them
  // first and re-adapt for the survivors — the §5.4.3 "termination of an
  // application" trigger, made robust.
  bool removed = false;
  for (size_t i = apps_.size(); i-- > 0;) {
    if (!resctrl_->machine().AppExists(apps_[i].id)) {
      monitor_->Detach(apps_[i].id);
      if (policy_->per_app_groups()) {
        Status status = resctrl_->RemoveGroup(apps_[i].group);
        if (!status.ok()) {
          zombie_groups_.push_back(apps_[i].group);
        }
      }
      // Clustered: the shared group stays; the machine already dropped the
      // dead app from its CLOS on termination.
      apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(i));
      policy_->OnAppRemoved(i);
      removed = true;
    }
  }
  if (removed) {
    last_seen_generation_ = resctrl_->machine().app_generation();
    pending_plan_.reset();  // Plans index the old app set.
    if (apps_.empty()) {
      phase_ = Phase::kIdle;
    } else if (phase_ != Phase::kDegraded) {
      StartAdaptation();
    } else {
      AdoptDecision(policy_->FairShare(pool_, apps_.size()));
    }
  }
}

}  // namespace copart
