#include "core/dcat_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace copart {

DcatPolicy::DcatPolicy(Resctrl* resctrl, PerfMonitor* monitor,
                       std::vector<AppId> apps, ResourcePool pool)
    : resctrl_(resctrl), monitor_(monitor), pool_(pool) {
  CHECK_NE(resctrl, nullptr);
  CHECK_NE(monitor, nullptr);
  CHECK(!apps.empty());
  CHECK_GE(pool.num_ways, apps.size());
  for (AppId app : apps) {
    AppState state;
    state.id = app;
    apps_.push_back(state);
  }
}

void DcatPolicy::Start() {
  // Equal LLC start; MBA frozen at the equal static share (dCat does not
  // manage bandwidth).
  state_ = SystemState::EqualShareThrottled(pool_, apps_.size());
  for (size_t i = 0; i < apps_.size(); ++i) {
    Result<ResctrlGroupId> group = resctrl_->CreateGroup(
        "dcat_app_" + std::to_string(apps_[i].id.value()));
    CHECK(group.ok()) << group.status().ToString();
    apps_[i].group = *group;
    Status status = resctrl_->AssignApp(*group, apps_[i].id);
    CHECK(status.ok()) << status.ToString();
    monitor_->Attach(apps_[i].id);
  }
  Apply();
}

void DcatPolicy::Apply() {
  CHECK(state_.Valid());
  for (size_t i = 0; i < apps_.size(); ++i) {
    Status status =
        resctrl_->SetCacheMask(apps_[i].group, state_.WayMaskBits(i));
    CHECK(status.ok()) << status.ToString();
    status = resctrl_->SetMbaPercent(
        apps_[i].group, state_.allocation(i).mba_level.percent());
    CHECK(status.ok()) << status.ToString();
  }
}

void DcatPolicy::Tick() {
  // 1. Update benefit estimates from the last period's outcome.
  for (AppState& app : apps_) {
    const PmcSample sample = monitor_->Sample(app.id);
    const double ips = sample.Ips();
    if (app.prev_ips > 0.0 && ips > 0.0) {
      const double relative_change = (ips - app.prev_ips) / app.prev_ips;
      if (app.last_delta_ways != 0) {
        // Observed benefit per way, signed toward "gaining helps".
        const double per_way =
            relative_change / static_cast<double>(app.last_delta_ways);
        app.benefit_estimate = kSmoothing * per_way +
                               (1.0 - kSmoothing) * app.benefit_estimate;
      } else {
        // No change applied: decay toward neutral so stale estimates fade
        // and the policy periodically re-probes.
        app.benefit_estimate *= 1.0 - kSmoothing * 0.25;
      }
    }
    app.prev_ips = ips;
    app.last_delta_ways = 0;
  }

  ++tick_;
  const size_t n = apps_.size();

  // 2a. Cold-start probe: cycle a way to each app in turn (taken from the
  //     currently largest allocation) so every benefit estimate receives a
  //     signed sample before the steady-state policy kicks in.
  if (tick_ <= 2 * n && n > 1) {
    const size_t target = static_cast<size_t>(tick_ % n);
    ssize_t donor = -1;
    for (size_t i = 0; i < n; ++i) {
      if (i == target || state_.allocation(i).llc_ways <= 1) {
        continue;
      }
      if (donor < 0 || state_.allocation(i).llc_ways >
                           state_.allocation(static_cast<size_t>(donor))
                               .llc_ways) {
        donor = static_cast<ssize_t>(i);
      }
    }
    if (donor >= 0) {
      --state_.allocation(static_cast<size_t>(donor)).llc_ways;
      ++state_.allocation(target).llc_ways;
      apps_[static_cast<size_t>(donor)].last_delta_ways = -1;
      apps_[target].last_delta_ways = 1;
      Apply();
    }
    return;
  }

  // 2b. Steepest feasible transfer: the highest estimated gainer takes one
  //     way from the lowest estimated loser.
  ssize_t gainer = -1, loser = -1;
  for (size_t i = 0; i < apps_.size(); ++i) {
    if (gainer < 0 || apps_[i].benefit_estimate >
                          apps_[static_cast<size_t>(gainer)].benefit_estimate) {
      gainer = static_cast<ssize_t>(i);
    }
    if (state_.allocation(i).llc_ways > 1 &&
        (loser < 0 || apps_[i].benefit_estimate <
                          apps_[static_cast<size_t>(loser)].benefit_estimate)) {
      loser = static_cast<ssize_t>(i);
    }
  }
  if (gainer < 0 || loser < 0 || gainer == loser) {
    return;
  }
  AppState& gain_app = apps_[static_cast<size_t>(gainer)];
  AppState& lose_app = apps_[static_cast<size_t>(loser)];
  // Transfer only when the gainer's estimated benefit meaningfully exceeds
  // the loser's (hysteresis against thrash).
  if (gain_app.benefit_estimate - lose_app.benefit_estimate < kMinBenefit) {
    return;
  }
  --state_.allocation(static_cast<size_t>(loser)).llc_ways;
  ++state_.allocation(static_cast<size_t>(gainer)).llc_ways;
  gain_app.last_delta_ways = 1;
  lose_app.last_delta_ways = -1;
  Apply();
}

}  // namespace copart
