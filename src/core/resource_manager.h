// CoPart's resource manager (paper §5.4, Algorithm 1).
//
// The manager is the *driver* half of a driver/policy split
// (core/partition_policy.h): it owns sampling and counter quarantine,
// probe scheduling, transactional actuation with retry/backoff/degraded
// mode, SLO slices, the trend governor, and all telemetry — while the
// installed PartitionPolicy (ResourceManagerParams::partition_policy) owns
// classification and the allocation decisions. With the default "copart"
// policy the loop below is exactly the paper's controller.
//
// The manager runs as a user-level control loop over the resctrl interface
// and the PMC monitor, in three phases:
//
//   1. *Application profiling* (§5.4.1): each consolidated app is briefly
//      run with (a) all pool resources — recording IPS_full, the slowdown
//      reference of Eq. 1 — then (b) (l_P ways, 100%) and (c) (L, M_P) to
//      measure its LLC and bandwidth sensitivity. The probe outcomes select
//      the initial state of the app's two classifier FSMs.
//   2. *System state space exploration* (Algorithm 1): each control period
//      the manager samples the PMCs, updates the FSMs, and asks the HR
//      matcher for the next system state. When the matcher returns the
//      current state it retries with a random neighbor state up to theta
//      times, then transitions to idle.
//   3. *Idle*: no adaptation; the manager watches for consolidation changes
//      (app launch/termination), resource-pool changes from an outer server
//      manager, and significant IPS drift — any of which re-trigger
//      adaptation (§5.4.3).
//
// Hardening (DESIGN.md §7): the actuation path tolerates a faulty
// substrate. Every allocation change is applied as a transaction —
// snapshot, apply, verify by readback, roll back on any failure — and
// retried under exponential backoff (common/backoff.h). After
// ActuationParams::max_consecutive_failures consecutive failed
// transactions the manager enters a fourth phase:
//
//   4. *Degraded*: adaptation stops and the manager keeps trying to pin the
//      static equal-share partition (the best fairness guarantee available
//      without working actuation or trustworthy feedback). Once
//      degraded_recovery_successes consecutive applies succeed, the
//      substrate is declared healthy and adaptation restarts from
//      profiling.
//
// Counter feedback is treated as equally untrustworthy: samples are taken
// through PerfMonitor::TrySample, and an app whose samples are dropped,
// stale, or saturated for quarantine_after_bad_samples consecutive periods
// is quarantined — it participates in matching as a conservative
// (slowdown 1.0, Maintain/Maintain) citizen until its counters come back.
//
// Driving convention: the owner advances the machine by one control period,
// then calls Tick(). Tick() reads the counters accumulated over that period
// and installs the allocations for the next one.
#ifndef COPART_CORE_RESOURCE_MANAGER_H_
#define COPART_CORE_RESOURCE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/classifiers.h"
#include "core/copart_params.h"
#include "core/hr_matching.h"
#include "core/partition_policy.h"
#include "core/system_state.h"
#include "machine/app_id.h"
#include "obs/obs.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "slo/slo_governor.h"

namespace copart {

class ResourceManager;

// Control-loop phase. Namespace-scoped so telemetry consumers can name it
// without dragging in the manager; ResourceManager::Phase aliases it.
enum class ManagerPhase { kProfiling, kExploration, kIdle, kDegraded };

// State of the unfairness-trend governor (ResourceManagerParams::trend):
// kOff until the post-profiling warmup has passed, kOn while watching the
// unfairness trend, kBackoff while parked on the best state waiting to
// re-probe.
enum class TrendState { kOff, kOn, kBackoff };

// Per-control-period diagnostic record. An installed observer receives one
// after every exploration tick and on every degraded-mode transition — the
// hook dashboards and tests use to watch the controller think (see
// tests/core_telemetry_test.cc).
struct ManagerTickRecord {
  double time = 0.0;
  ManagerPhase phase = ManagerPhase::kExploration;
  SystemState state;  // State applied for the NEXT period.
  std::vector<double> slowdown_estimates;
  std::vector<ResourceClass> llc_classes;
  std::vector<ResourceClass> mba_classes;
  double exploration_us = 0.0;
  bool used_neighbor_state = false;
  // Hardening telemetry: per-app quarantine flags (parallel to the
  // slowdown/class vectors) and the actuation-failure streak at emission.
  std::vector<bool> quarantined;
  int consecutive_actuation_failures = 0;
};

using ManagerObserver = std::function<void(const ManagerTickRecord&)>;

class ResourceManager {
 public:
  using Phase = ManagerPhase;

  ResourceManager(Resctrl* resctrl, PerfMonitor* monitor,
                  const ResourceManagerParams& params);

  // Registers an app to manage; creates its resctrl group and (re)starts
  // the adaptation process.
  Status AddApp(AppId app);
  Status RemoveApp(AppId app);
  size_t NumApps() const { return apps_.size(); }

  // Installs a new resource slice (from an outer server manager) and
  // restarts adaptation. The manager repartitions only within this pool.
  // In SLO mode this is the *base* pool: the LC slices are carved off its
  // bottom and the batch apps are matched over the remainder.
  void SetResourcePool(const ResourcePool& pool);
  const ResourcePool& pool() const { return pool_; }

  // --- SLO-aware serving mode (params.slo.enabled; DESIGN.md §9) ---
  //
  // Registers a latency-critical app. The app is NOT fairness-managed:
  // it gets a dedicated CLOS whose width the SLO governor re-plans every
  // control period from the offered load, growing ways (then capping the
  // batch MBA ceiling) until the predicted p95 meets model.slo_p95_ms
  // with headroom. The governor implementation is selected by
  // params.slo.governor (slo/slo_governor.h registry). Batch apps added
  // via AddApp() are matched over the ways left. Fails unless
  // params.slo.enabled.
  Status SetLatencyCriticalApp(AppId app, const LcAppModel& model);
  // Offered load (requests/s) the governor plans the app's NEXT period
  // for. The app must be registered via SetLatencyCriticalApp.
  void SetLcOfferedLoad(AppId app, double rps);
  // Reports the measured outcome of the control period that just ran for
  // a registered LC app: the harness calls it after advancing the served
  // period and before SetLcOfferedLoad/Tick for the next one. The manager
  // pairs the measurement with the decision that served the period and
  // forwards it to the governor's ObserveOutcome (the learning signal of
  // the adaptive governors; the threshold governor ignores it) and, when
  // observability is attached, appends an "slo_outcome" audit record.
  void ReportLcOutcome(AppId app, double measured_p95_ms, bool stalled,
                       size_t phase_index);
  size_t NumLcApps() const { return lc_apps_.size(); }
  // Currently actuated slice width / latest prediction for a registered
  // LC app.
  uint32_t LcWays(AppId app) const;
  double LcPredictedP95Ms(AppId app) const;
  // Total ways currently held by LC slices (0 outside SLO mode).
  uint32_t lc_total_ways() const;
  uint64_t slo_resizes() const { return slo_resizes_; }
  uint64_t slo_unattainable_ticks() const { return slo_unattainable_ticks_; }

  // One control period. The machine must have advanced by
  // params.control_period_sec since the previous Tick().
  void Tick();

  Phase phase() const { return phase_; }
  static const char* PhaseName(Phase phase);

  const SystemState& current_state() const { return state_; }

  // Slot index each managed app currently runs in (index-parallel with
  // admission order). Identity for per-app policies; for clustering
  // policies several apps share a slot. Sized on the first adaptation.
  const std::vector<uint32_t>& app_slots() const { return app_slot_; }

  // The installed classification/allocation policy.
  const PartitionPolicy& partition_policy() const { return *policy_; }

  // Online slowdown estimate (profiled IPS_full / latest IPS); 1.0 before
  // profiling has finished.
  double SlowdownEstimate(AppId app) const;

  // Latest policy classification for a managed app — what the allocator
  // saw (or will see) this period. The sensing accuracy harness compares
  // these across exact/estimated/noisy monitors. CHECK-fails for unmanaged
  // apps.
  ResourceClass LlcClass(AppId app) const;
  ResourceClass MbaClass(AppId app) const;

  bool Quarantined(AppId app) const;

  // --- Unfairness-trend backoff (params.trend) ---
  TrendState trend_state() const { return trend_state_; }
  static const char* TrendStateName(TrendState state);
  uint64_t trend_backoffs() const { return trend_backoffs_; }
  uint64_t trend_reprobes() const { return trend_reprobes_; }

  // Wall-clock cost of the most recent / accumulated getNextSystemState
  // calls — the paper's overhead metric (Fig. 16).
  double last_exploration_us() const { return last_exploration_us_; }
  const RunningStats& exploration_time_stats() const {
    return exploration_time_stats_;
  }

  uint64_t adaptations_started() const { return adaptations_started_; }

  // --- Hardening counters (cumulative over the manager's lifetime) ---
  uint64_t actuation_attempts() const { return actuation_attempts_; }
  uint64_t actuation_failures() const { return actuation_failures_; }
  uint64_t rollbacks() const { return rollbacks_; }
  uint64_t degraded_entries() const { return degraded_entries_; }
  uint64_t degraded_recoveries() const { return degraded_recoveries_; }
  uint64_t quarantines() const { return quarantines_; }

  // Installs (or clears, with nullptr) the telemetry observer.
  void SetObserver(ManagerObserver observer) {
    observer_ = std::move(observer);
  }

  // Attaches (or clears, with nullptr) the observability bundle: spans
  // around the tick phases (PMC sample → classify → solve → apply), one
  // audit record per CLOS allocation change / actuation failure / phase
  // transition / quarantine flip, and a slowdown histogram. Null (the
  // default) keeps the control loop on its uninstrumented path: every site
  // gates on one pointer compare (DESIGN.md §8).
  void SetObservability(Observability* obs) { obs_ = obs; }

  // Control periods processed (the audit/trace epoch counter).
  uint64_t ticks() const { return ticks_; }

  // Dumps the manager's cumulative counters plus the PMC/resctrl substrate
  // tallies into `metrics` (copart.manager.*, copart.pmc.*,
  // copart.resctrl.*). Counters are Incremented by the current totals, so
  // call once per registry, at the end of a run. Wall-clock exploration
  // stats are flagged nondeterministic; everything else derives from the
  // seed. Null `metrics` is a no-op.
  void ExportMetrics(MetricsRegistry* metrics) const;

 private:
  struct ManagedApp {
    AppId id;
    ResctrlGroupId group;
    double ips_full = 0.0;   // Profiled full-resource IPS (Eq. 1 numerator).
    double prev_ips = 0.0;   // IPS over the previous period.
    double idle_baseline_ips = 0.0;
    // Counter-health tracking (quarantine policy).
    int bad_sample_streak = 0;
    int good_sample_streak = 0;
    bool quarantined = false;
  };

  // One transactional actuation: the full set of schemata writes, group
  // re-bindings, and prefetch-MSR writes that must land together for the
  // machine to be in a coherent allocation. Per-app CoPart plans carry
  // entries only; clustering policies add assignments, and prefetch-aware
  // policies add prefetch writes.
  struct ActuationPlan {
    struct Entry {
      ResctrlGroupId group;
      uint64_t mask_bits = 0;
      uint32_t mba_percent = 100;
      // Audit identity, filled by the plan builders: index into apps_
      // (-1 for an LC or cluster-slot entry, which has no unique batch
      // index) and the owning app id (-1 when unknown).
      int32_t app_index = -1;
      int32_t app_id = -1;
    };
    // Bind an app's tasks to a (cluster) group.
    struct Assignment {
      ResctrlGroupId group;
      AppId app;
      size_t app_index = 0;
    };
    // Program an app's prefetch throttle.
    struct PrefetchEntry {
      AppId app;
      size_t app_index = 0;
      uint32_t percent = 100;
    };
    std::vector<Entry> entries;
    std::vector<Assignment> assignments;
    std::vector<PrefetchEntry> prefetch;
  };

  // One SLO-managed latency-critical app (params.slo mode).
  struct LcManaged {
    AppId id;
    ResctrlGroupId group;
    std::unique_ptr<SloGovernor> governor;
    uint32_t ways = 0;       // Actuated slice width (0 until first actuation).
    uint32_t first_way = 0;  // Actuated slice origin.
    double offered_rps = 0.0;
    double predicted_p95_ms = 0.0;
    bool attainable = true;
  };

  // Outcome of sampling one app through the fallible PMC path.
  struct SampleOutcome {
    PmcSample sample;
    bool healthy = false;
  };

  // Profiling probe schedule: 3 probes per app.
  enum class Probe { kFull = 0, kFewWays = 1, kLowMba = 2 };

  void StartAdaptation();
  // Installs a policy decision as the manager's current state/slot map.
  void AdoptDecision(const PartitionDecision& decision);
  // Lazily creates the shared cluster groups ("copart_cluster_<k>") a
  // clustered decision actuates onto. Groups persist once created.
  Status EnsureSlotGroups(size_t count);
  // Re-plans every LC slice from the current offered load and actuates
  // the changed LC masks. Returns true when the batch pool geometry
  // changed (the caller restarts adaptation). `force` actuates even when
  // no width changed (initial installation, base-pool change).
  bool EvaluateSlo(bool force);
  // Governor step of one control period: runs EvaluateSlo and restarts
  // adaptation on batch-pool changes.
  void EvaluateSloTick();
  void ReapDeadLcApps();
  size_t LcIndex(AppId id) const;
  void ReapDeadApps();
  void RetryZombieGroups();
  void TickImpl();
  void TickProfiling();
  void TickExploration();
  void TickIdle();
  void TickDegraded();
  void EnterExploration();
  void EnterIdle();
  void EnterDegraded();
  size_t AppIndex(AppId id) const;

  // Builds the schemata plan realising `state` (one entry per app).
  ActuationPlan PlanForState(const SystemState& state) const;
  // Builds the plan realising a policy decision: per-app delegates to
  // PlanForState; clustered decisions get one entry per slot plus the app
  // re-bindings, and decisions with prefetch state add the MSR writes.
  ActuationPlan PlanForDecision(const PartitionDecision& decision) const;
  // Builds the profiling plan: the probed app gets the probe allocation,
  // every co-runner is squeezed to minimal resources.
  ActuationPlan PlanForProbe() const;

  // Applies `plan` as a transaction: snapshot current allocations, apply
  // every entry, verify each by readback from the machine, and roll back
  // (best effort) on any failure. Returns the first error encountered.
  Status ApplyPlanTransactional(const ActuationPlan& plan);

  // ApplyPlanTransactional plus the retry policy: on success, clears the
  // failure streak; on failure, schedules a retry under backoff and, after
  // max_consecutive_failures in a row, enters the degraded phase. Returns
  // true when the plan is on the machine.
  bool Actuate(const ActuationPlan& plan);

  // Actuate for a policy decision: ensures the cluster groups exist first
  // (for clustered policies), then runs the transactional plan.
  bool ActuateDecision(const PartitionDecision& decision);

  // Retries pending_plan_ once its backoff expires. Returns true when the
  // control loop may run this tick (no pending plan stalls it).
  bool RetryPendingActuation();

  // Samples `app` through TrySample and updates its quarantine streaks.
  SampleOutcome SampleApp(ManagedApp& app);

  // Feeds one exploration-period unfairness measurement to the trend
  // governor. Returns true when the rising streak reached
  // max_increasing_intervals and the caller must engage the backoff.
  bool ObserveUnfairnessTrend(double unfairness);
  // Re-arms the governor (called whenever adaptation restarts).
  void ResetTrend();

  // Converts a backoff delay in periods to whole ticks (at least 1).
  int DelayTicks(double periods) const;

  void EmitTransitionRecord();

  // Appends a kPhaseTransition / kQuarantineChange audit record (no-ops
  // without an attached audit log).
  void EmitPhaseAudit(const char* detail);
  void EmitQuarantineAudit(const ManagedApp& app, bool engaged);

  // STREAM's LLC miss rate at the given MBA level — the denominator of the
  // memory traffic ratio (§5.3). STREAM is bandwidth-bound at every level,
  // so its miss rate equals the MBA cap divided by the line size; the
  // closed form stands in for the paper's offline STREAM measurement.
  double StreamMissRateReference(MbaLevel level) const;

  Resctrl* resctrl_;      // Not owned.
  PerfMonitor* monitor_;  // Not owned.
  ResourceManagerParams params_;
  Rng rng_;
  Backoff backoff_;
  // Batch pool the fairness allocation runs over. Outside SLO mode it is
  // the installed pool verbatim; in SLO mode it is base_pool_ minus the
  // LC slices.
  ResourcePool pool_;
  ResourcePool base_pool_;

  // SLO mode state (empty/inert unless params.slo.enabled).
  std::vector<LcManaged> lc_apps_;
  uint64_t slo_resizes_ = 0;
  uint64_t slo_unattainable_ticks_ = 0;

  Phase phase_ = Phase::kIdle;
  std::vector<ManagedApp> apps_;
  // The classification/allocation policy (params.partition_policy).
  std::unique_ptr<PartitionPolicy> policy_;
  SystemState state_;
  // Slot each app runs in (identity for per-app policies); parallel to
  // apps_, installed by AdoptDecision.
  std::vector<uint32_t> app_slot_;
  // Shared cluster groups, indexed by slot (clustered policies only).
  std::vector<ResctrlGroupId> slot_groups_;

  // Profiling progress.
  size_t profile_app_ = 0;
  Probe probe_ = Probe::kFull;

  // Best state observed during this exploration (lowest unfairness of the
  // online slowdown estimates). Algorithm 1 ends exploration after theta
  // unproductive neighbor perturbations; the perturbations themselves were
  // applied, so on entering the idle phase the manager restores the best
  // state rather than parking on the last random neighbor.
  SystemState best_state_;
  double best_unfairness_ = 0.0;
  bool has_best_state_ = false;

  // Actuation hardening state.
  std::optional<ActuationPlan> pending_plan_;
  int backoff_ticks_remaining_ = 0;
  int consecutive_actuation_failures_ = 0;
  int degraded_success_streak_ = 0;
  // Groups whose RemoveGroup failed transiently; retried every tick.
  std::vector<ResctrlGroupId> zombie_groups_;

  uint64_t actuation_attempts_ = 0;
  uint64_t actuation_failures_ = 0;
  uint64_t rollbacks_ = 0;
  uint64_t degraded_entries_ = 0;
  uint64_t degraded_recoveries_ = 0;
  uint64_t quarantines_ = 0;

  // Unfairness-trend governor state (inert unless params.trend.enabled).
  TrendState trend_state_ = TrendState::kOff;
  int trend_warmup_remaining_ = 0;
  int trend_increase_streak_ = 0;
  int trend_backoff_remaining_ = 0;
  double trend_prev_unfairness_ = 0.0;
  uint64_t trend_backoffs_ = 0;
  uint64_t trend_reprobes_ = 0;

  uint64_t last_seen_generation_ = 0;
  uint64_t adaptations_started_ = 0;
  double last_exploration_us_ = 0.0;
  RunningStats exploration_time_stats_;
  ManagerObserver observer_;

  // Observability (DESIGN.md §8). obs_ is not owned; audit_trigger_ names
  // the decision path that produced the plan currently being actuated, and
  // trace_tick_ points at the stack-scoped virtual clock while Tick() runs.
  Observability* obs_ = nullptr;
  const char* audit_trigger_ = "adaptation_start";
  TraceTick* trace_tick_ = nullptr;
  uint64_t ticks_ = 0;
};

}  // namespace copart

#endif  // COPART_CORE_RESOURCE_MANAGER_H_
