// SLO governor: sizes a latency-critical CLOS from predicted tail latency.
//
// Pure planning logic, shared by the ResourceManager's SLO mode and the
// harness baselines (so "what would the governor do" never needs a second
// implementation). Given the offered load, the governor walks slice
// widths from the floor upward and picks the smallest for which the
// predicted p95 (M/M/1 sojourn tail, serve/queue_model.h) meets the SLO
// with headroom — "grow ways first". If no permitted width attains the
// SLO it takes everything it may and additionally asks for the batch MBA
// ceiling to be capped ("then MBA") — the same protection that engages
// above protect_rps_threshold (DESIGN.md §9).
#ifndef COPART_CORE_SLO_GOVERNOR_H_
#define COPART_CORE_SLO_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/copart_params.h"

namespace copart {

// Model of one latency-critical app, supplied by the outer harness (a
// Heracles-style manager would fit it from profiling).
struct LcAppModel {
  // Tail-latency SLO: 95th percentile sojourn time, milliseconds.
  double slo_p95_ms = 1.0;
  // Mean instructions retired per request (converts IPS into requests/s).
  double instructions_per_request = 60000.0;
  // Predicted IPS capability of the app with `ways` LLC ways at the full
  // MBA level. Must be monotone non-decreasing in `ways` and deterministic
  // (a fixed function of the width): the governor memoizes it per width so
  // every Plan() after the first answers from the cache.
  std::function<double(uint32_t ways)> capability_ips;
  // Offered load (requests/s) the first plan — at registration, before any
  // SetLcOfferedLoad call — is sized for.
  double initial_offered_rps = 0.0;
};

struct SloDecision {
  uint32_t lc_ways = 0;
  // Requested batch-slice MBA ceiling (the pool maximum unless protection
  // engaged).
  uint32_t batch_mba_percent = 100;
  double predicted_p95_ms = 0.0;
  // False when even max_ways cannot meet the SLO with headroom.
  bool attainable = true;
};

class SloGovernor {
 public:
  SloGovernor(const SloParams& params, LcAppModel model);

  // Plans the slice for `offered_rps` with widths in [floor, max_ways].
  // `current_ways` (0 = none yet) engages the shrink hysteresis;
  // `pool_max_mba` is the batch ceiling when protection is off.
  SloDecision Plan(double offered_rps, uint32_t max_ways,
                   uint32_t current_ways, uint32_t pool_max_mba) const;

  const LcAppModel& model() const { return model_; }

 private:
  // The smallest width in [floor, max_ways] meeting the SLO for
  // `offered_rps`; attainable=false (and width max_ways) when none does.
  SloDecision SmallestMeeting(double offered_rps, uint32_t max_ways) const;

  // Service rate (requests/s) at `ways`, memoized: capability_ips may be
  // an expensive model evaluation and Plan probes the same few widths every
  // period.
  double ServiceRps(uint32_t ways) const;

  SloParams params_;
  LcAppModel model_;
  // Per-width memo for ServiceRps; negative entries are unset.
  mutable std::vector<double> service_rps_cache_;
};

}  // namespace copart

#endif  // COPART_CORE_SLO_GOVERNOR_H_
