// The LLC and memory-bandwidth characteristic classifiers (paper §5.2-5.3).
//
// One FSM of each kind is maintained per consolidated application. Each
// control period the FSMs consume the app's PMC-derived rates, its relative
// performance change, and the resource event that CoPart last applied to it,
// and classify the app as a Supply (producer), Maintain, or Demand
// (consumer) of the resource.
//
// The paper's Figures 8 and 9 give the states, the threshold parameters
// (alpha, beta, Beta, gamma, Gamma, deltaP) and examples of the transitions;
// the full transition relation below is reconstructed from the figures plus
// the prose. Both FSMs apply the same priority order:
//
//   1. Direct evidence first: losing the FSM's resource last period AND
//      degrading by > deltaP forces Demand from every state — measured
//      harm outranks any counter heuristic.
//   2. Uselessness second: an LLC access rate below alpha or a miss ratio
//      below beta (resp. a memory traffic ratio below gamma) forces Supply.
//   3. Otherwise state-specific moves:
//
// LLC FSM (Fig. 8):
//   Demand -> Demand    gaining a way improved performance by >= deltaP.
//   Demand -> Maintain  gaining a way improved performance by < deltaP.
//   Maintain -> Demand  miss ratio above Beta.
//   Supply -> Maintain  miss ratio rose above Beta.
//
// MBA FSM (Fig. 9): analogous, keyed on the *memory traffic ratio* — the
// app's LLC miss rate divided by STREAM's miss rate at the same MBA level
// (§3.3) — with gamma/Gamma as the low/high thresholds. Per the paper's
// explicit design note (§5.3), an app in Demand whose performance gain was
// small *stays* in Demand when the recently allocated resource was an LLC
// way: the small gain indicates low LLC sensitivity, not satisfied
// bandwidth demand.
#ifndef COPART_CORE_CLASSIFIERS_H_
#define COPART_CORE_CLASSIFIERS_H_

#include "core/copart_params.h"

namespace copart {

enum class ResourceClass {
  kSupply,
  kMaintain,
  kDemand,
};

const char* ResourceClassName(ResourceClass state);

// What CoPart changed for this app between the previous and current period.
enum class ResourceEvent {
  kNone,
  kGainedLlcWay,
  kLostLlcWay,
  kGainedMba,
  kLostMba,
};

// Per-period observations for one app.
struct ClassifierInput {
  double llc_access_rate = 0.0;   // accesses/s
  double llc_miss_ratio = 0.0;    // misses/accesses
  double traffic_ratio = 0.0;     // miss rate / STREAM miss rate @ same level
  double perf_delta = 0.0;        // (ips_now - ips_prev) / ips_prev
  ResourceEvent last_event = ResourceEvent::kNone;
};

class LlcClassifierFsm {
 public:
  explicit LlcClassifierFsm(const ClassifierParams& params,
                            ResourceClass initial = ResourceClass::kMaintain);

  void Reset(ResourceClass initial);
  ResourceClass Update(const ClassifierInput& input);
  ResourceClass state() const { return state_; }

 private:
  ClassifierParams params_;
  ResourceClass state_;
};

class MbaClassifierFsm {
 public:
  explicit MbaClassifierFsm(const ClassifierParams& params,
                            ResourceClass initial = ResourceClass::kMaintain);

  void Reset(ResourceClass initial);
  ResourceClass Update(const ClassifierInput& input);
  ResourceClass state() const { return state_; }

 private:
  ClassifierParams params_;
  ResourceClass state_;
};

}  // namespace copart

#endif  // COPART_CORE_CLASSIFIERS_H_
